#include "linalg/vector_ops.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace sofia {

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  SOFIA_CHECK_EQ(a.size(), b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double SquaredNorm2(const std::vector<double>& a) { return Dot(a, a); }

double Norm2(const std::vector<double>& a) { return std::sqrt(SquaredNorm2(a)); }

void Axpy(double alpha, const std::vector<double>& x, std::vector<double>* y) {
  SOFIA_CHECK_EQ(x.size(), y->size());
  for (size_t i = 0; i < x.size(); ++i) (*y)[i] += alpha * x[i];
}

void Scale(double alpha, std::vector<double>* x) {
  for (auto& v : *x) v *= alpha;
}

std::vector<double> Add(const std::vector<double>& a,
                        const std::vector<double>& b) {
  SOFIA_CHECK_EQ(a.size(), b.size());
  std::vector<double> c(a.size());
  for (size_t i = 0; i < a.size(); ++i) c[i] = a[i] + b[i];
  return c;
}

std::vector<double> Sub(const std::vector<double>& a,
                        const std::vector<double>& b) {
  SOFIA_CHECK_EQ(a.size(), b.size());
  std::vector<double> c(a.size());
  for (size_t i = 0; i < a.size(); ++i) c[i] = a[i] - b[i];
  return c;
}

std::vector<double> HadamardVec(const std::vector<double>& a,
                                const std::vector<double>& b) {
  SOFIA_CHECK_EQ(a.size(), b.size());
  std::vector<double> c(a.size());
  for (size_t i = 0; i < a.size(); ++i) c[i] = a[i] * b[i];
  return c;
}

double MaxAbsDiffVec(const std::vector<double>& a,
                     const std::vector<double>& b) {
  SOFIA_CHECK_EQ(a.size(), b.size());
  double m = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::fabs(a[i] - b[i]));
  }
  return m;
}

}  // namespace sofia
