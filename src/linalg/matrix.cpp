#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace sofia {

Matrix::Matrix(size_t rows, size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  SOFIA_CHECK(!rows.empty());
  Matrix m(rows.size(), rows[0].size());
  for (size_t i = 0; i < rows.size(); ++i) {
    SOFIA_CHECK_EQ(rows[i].size(), m.cols_);
    std::copy(rows[i].begin(), rows[i].end(), m.Row(i));
  }
  return m;
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Random(size_t rows, size_t cols, Rng& rng, double lo,
                      double hi) {
  Matrix m(rows, cols);
  for (auto& x : m.data_) x = rng.Uniform(lo, hi);
  return m;
}

Matrix Matrix::RandomNormal(size_t rows, size_t cols, Rng& rng,
                            double stddev) {
  Matrix m(rows, cols);
  for (auto& x : m.data_) x = rng.Normal(0.0, stddev);
  return m;
}

std::vector<double> Matrix::RowVector(size_t i) const {
  SOFIA_CHECK_LT(i, rows_);
  return std::vector<double>(Row(i), Row(i) + cols_);
}

std::vector<double> Matrix::ColVector(size_t j) const {
  SOFIA_CHECK_LT(j, cols_);
  std::vector<double> v(rows_);
  for (size_t i = 0; i < rows_; ++i) v[i] = (*this)(i, j);
  return v;
}

void Matrix::SetRow(size_t i, const std::vector<double>& v) {
  SOFIA_CHECK_LT(i, rows_);
  SOFIA_CHECK_EQ(v.size(), cols_);
  std::copy(v.begin(), v.end(), Row(i));
}

void Matrix::SetCol(size_t j, const std::vector<double>& v) {
  SOFIA_CHECK_LT(j, cols_);
  SOFIA_CHECK_EQ(v.size(), rows_);
  for (size_t i = 0; i < rows_; ++i) (*this)(i, j) = v[i];
}

void Matrix::Fill(double v) { std::fill(data_.begin(), data_.end(), v); }

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
  }
  return t;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  SOFIA_CHECK_EQ(rows_, other.rows_);
  SOFIA_CHECK_EQ(cols_, other.cols_);
  for (size_t k = 0; k < data_.size(); ++k) data_[k] += other.data_[k];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  SOFIA_CHECK_EQ(rows_, other.rows_);
  SOFIA_CHECK_EQ(cols_, other.cols_);
  for (size_t k = 0; k < data_.size(); ++k) data_[k] -= other.data_[k];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (auto& x : data_) x *= s;
  return *this;
}

Matrix Matrix::Hadamard(const Matrix& other) const {
  SOFIA_CHECK_EQ(rows_, other.rows_);
  SOFIA_CHECK_EQ(cols_, other.cols_);
  Matrix out(rows_, cols_);
  for (size_t k = 0; k < data_.size(); ++k) {
    out.data_[k] = data_[k] * other.data_[k];
  }
  return out;
}

double Matrix::SquaredFrobeniusNorm() const {
  double s = 0.0;
  for (double x : data_) s += x * x;
  return s;
}

double Matrix::FrobeniusNorm() const { return std::sqrt(SquaredFrobeniusNorm()); }

double Matrix::ColNorm(size_t j) const {
  SOFIA_CHECK_LT(j, cols_);
  double s = 0.0;
  for (size_t i = 0; i < rows_; ++i) s += (*this)(i, j) * (*this)(i, j);
  return std::sqrt(s);
}

double Matrix::MaxAbsDiff(const Matrix& other) const {
  SOFIA_CHECK_EQ(rows_, other.rows_);
  SOFIA_CHECK_EQ(cols_, other.cols_);
  double m = 0.0;
  for (size_t k = 0; k < data_.size(); ++k) {
    m = std::max(m, std::fabs(data_[k] - other.data_[k]));
  }
  return m;
}

std::string Matrix::ToString(int digits) const {
  std::ostringstream out;
  for (size_t i = 0; i < rows_; ++i) {
    out << "[";
    for (size_t j = 0; j < cols_; ++j) {
      out << Table::Num((*this)(i, j), digits);
      if (j + 1 < cols_) out << ", ";
    }
    out << "]\n";
  }
  return out.str();
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  SOFIA_CHECK_EQ(a.cols(), b.rows());
  Matrix c(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      const double* brow = b.Row(k);
      double* crow = c.Row(i);
      for (size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Matrix MatTMul(const Matrix& a, const Matrix& b) {
  SOFIA_CHECK_EQ(a.rows(), b.rows());
  Matrix c(a.cols(), b.cols());
  for (size_t k = 0; k < a.rows(); ++k) {
    const double* arow = a.Row(k);
    const double* brow = b.Row(k);
    for (size_t i = 0; i < a.cols(); ++i) {
      const double aki = arow[i];
      if (aki == 0.0) continue;
      double* crow = c.Row(i);
      for (size_t j = 0; j < b.cols(); ++j) crow[j] += aki * brow[j];
    }
  }
  return c;
}

std::vector<double> MatVec(const Matrix& a, const std::vector<double>& x) {
  SOFIA_CHECK_EQ(a.cols(), x.size());
  std::vector<double> y(a.rows(), 0.0);
  for (size_t i = 0; i < a.rows(); ++i) {
    const double* row = a.Row(i);
    double s = 0.0;
    for (size_t j = 0; j < a.cols(); ++j) s += row[j] * x[j];
    y[i] = s;
  }
  return y;
}

std::vector<double> MatTVec(const Matrix& a, const std::vector<double>& x) {
  SOFIA_CHECK_EQ(a.rows(), x.size());
  std::vector<double> y(a.cols(), 0.0);
  for (size_t i = 0; i < a.rows(); ++i) {
    const double* row = a.Row(i);
    const double xi = x[i];
    if (xi == 0.0) continue;
    for (size_t j = 0; j < a.cols(); ++j) y[j] += row[j] * xi;
  }
  return y;
}

Matrix Gram(const Matrix& a) { return MatTMul(a, a); }

}  // namespace sofia
