#ifndef SOFIA_LINALG_SOLVE_H_
#define SOFIA_LINALG_SOLVE_H_

#include <vector>

#include "linalg/matrix.hpp"

/// \file solve.hpp
/// \brief Dense linear solvers for the small (R x R) systems of Theorems 1–2.
///
/// Every factor-row update solves `B u = c` where `B` is an R x R Gram-like
/// matrix, possibly shifted by smoothness terms. LU with partial pivoting is
/// the workhorse; an SPD Cholesky path exists for symmetric systems and a
/// ridge fallback keeps rank-deficient rows (few observed entries) stable.

namespace sofia {

/// LU factorization with partial pivoting, stored packed.
struct LuFactors {
  Matrix lu;              ///< Combined L (unit lower) and U factors.
  std::vector<int> perm;  ///< Row permutation applied to the input.
  bool singular = false;  ///< True if a zero pivot was hit.
};

/// Factor a square matrix; O(n^3).
LuFactors LuFactorize(const Matrix& a);

/// Solve `A x = b` given factors of A.
std::vector<double> LuSolve(const LuFactors& f, const std::vector<double>& b);

/// Solve `A x = b` for square A via LU. CHECK-fails on exactly singular A.
std::vector<double> SolveLinear(const Matrix& a, const std::vector<double>& b);

/// Solve `A x = b` with a ridge `A + eps*I` retried on singular/ill systems.
/// Used for factor-row updates where a slice may have too few observations.
std::vector<double> SolveRidge(const Matrix& a, const std::vector<double>& b,
                               double eps = 1e-9);

/// Cholesky factor L (lower) with A = L L^T. Returns false if not SPD.
bool CholeskyFactorize(const Matrix& a, Matrix* l);

/// Solve SPD `A x = b` via Cholesky; falls back to LU when not SPD.
std::vector<double> SolveSpd(const Matrix& a, const std::vector<double>& b);

/// Dense inverse via LU (test/diagnostic use; prefer the solve functions).
Matrix Inverse(const Matrix& a);

/// Determinant via LU (diagnostic use).
double Determinant(const Matrix& a);

}  // namespace sofia

#endif  // SOFIA_LINALG_SOLVE_H_
