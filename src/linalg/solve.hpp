#ifndef SOFIA_LINALG_SOLVE_H_
#define SOFIA_LINALG_SOLVE_H_

#include <vector>

#include "linalg/matrix.hpp"

/// \file solve.hpp
/// \brief Dense linear solvers for the small (R x R) systems of Theorems 1–2.
///
/// Every factor-row update solves `B u = c` where `B` is an R x R Gram-like
/// matrix, possibly shifted by smoothness terms. LU with partial pivoting is
/// the workhorse; an SPD Cholesky path exists for symmetric systems and a
/// ridge fallback keeps rank-deficient rows (few observed entries) stable.

namespace sofia {

/// LU factorization with partial pivoting, stored packed.
struct LuFactors {
  Matrix lu;              ///< Combined L (unit lower) and U factors.
  std::vector<int> perm;  ///< Row permutation applied to the input.
  bool singular = false;  ///< True if a zero pivot was hit.
};

/// Factor a square matrix; O(n^3).
LuFactors LuFactorize(const Matrix& a);

/// Solve `A x = b` given factors of A.
std::vector<double> LuSolve(const LuFactors& f, const std::vector<double>& b);

/// Solve `A x = b` for square A via LU. CHECK-fails on exactly singular A.
std::vector<double> SolveLinear(const Matrix& a, const std::vector<double>& b);

/// Solve `A x = b` with a ridge `A + eps*I` retried on singular/ill systems.
/// Used for factor-row updates where a slice may have too few observations.
/// Never returns a non-finite solution: a system containing NaN/Inf (e.g. a
/// Gram matrix accumulated from a poisoned slice) fails soft to the zero
/// vector — the documented failure status — instead of propagating NaN into
/// a factor row, and an overflowing solve retries through the ridge shifts.
std::vector<double> SolveRidge(const Matrix& a, const std::vector<double>& b,
                               double eps = 1e-9);

/// Cholesky factor L (lower) with A = L L^T. Returns false if not SPD
/// (including NaN diagonals, which must not reach sqrt).
bool CholeskyFactorize(const Matrix& a, Matrix* l);

/// Allocation-free SPD solve: factor `a` (row-major n x n, overwritten with
/// L in its lower triangle) and solve into `rhs` in place. Returns false on
/// a non-positive (or NaN) pivot and on a non-finite solution — a finite
/// pivot chain does not rule out a poisoned right-hand side — leaving the
/// caller to fall back to a pivoted/ridge solver. For the hot small-R row
/// solves (one per factor row per sweep) where per-solve heap traffic would
/// dominate the arithmetic.
bool CholeskySolveInPlace(double* a, double* rhs, size_t n);

/// Proximal ridge row solve `out = (B + μI)^{-1} (c + μ prev)` on raw
/// n-sized buffers (B row-major n x n). Single source of the arithmetic
/// shared by the dense and observed-entry MAST / OR-MSTC row updates, so
/// the two kernel paths stay bitwise aligned: an exactly-empty system
/// (B = 0, c = 0, μ != 0) short-circuits to the scalar divide the solve
/// reduces to, the SPD case goes through CholeskySolveInPlace in the
/// caller-provided scratch (each n * n and n doubles), and anything
/// irregular (μ = 0 with rank-deficient B) falls back to SolveRidge.
/// `out` may alias `prev`.
void ProximalRowSolve(const double* b, const double* c, const double* prev,
                      double mu, size_t n, double* a_scratch,
                      double* rhs_scratch, double* out);

/// Solve SPD `A x = b` via Cholesky; falls back to LU when not SPD.
std::vector<double> SolveSpd(const Matrix& a, const std::vector<double>& b);

/// Dense inverse via LU (test/diagnostic use; prefer the solve functions).
Matrix Inverse(const Matrix& a);

/// Determinant via LU (diagnostic use).
double Determinant(const Matrix& a);

}  // namespace sofia

#endif  // SOFIA_LINALG_SOLVE_H_
