#ifndef SOFIA_LINALG_QR_H_
#define SOFIA_LINALG_QR_H_

#include <vector>

#include "linalg/matrix.hpp"

/// \file qr.hpp
/// \brief Householder QR and dense least squares.
///
/// Used by baselines whose row updates are genuine least-squares problems
/// (OLSTEC's recursive least squares re-initialization) and by tests as an
/// independent oracle for the normal-equation solves in the core.

namespace sofia {

/// Thin QR of an m x n matrix (m >= n): A = Q R with Q m x n, R n x n.
struct QrFactors {
  Matrix q;  ///< Orthonormal columns, m x n.
  Matrix r;  ///< Upper triangular, n x n.
};

/// Householder QR (thin). CHECK-fails if m < n.
QrFactors QrFactorize(const Matrix& a);

/// Minimize ||A x - b||_2 for tall A via QR; returns x of length n.
std::vector<double> LeastSquares(const Matrix& a, const std::vector<double>& b);

}  // namespace sofia

#endif  // SOFIA_LINALG_QR_H_
