#ifndef SOFIA_LINALG_VECTOR_OPS_H_
#define SOFIA_LINALG_VECTOR_OPS_H_

#include <cstddef>
#include <vector>

/// \file vector_ops.hpp
/// \brief Free-function kernels on std::vector<double>.
///
/// Temporal vectors u^(N)_t, HW components (l, b, s) and gradients are plain
/// vectors; these helpers keep call sites close to the paper's notation.

namespace sofia {

/// Inner product <a, b>.
double Dot(const std::vector<double>& a, const std::vector<double>& b);
/// Euclidean norm.
double Norm2(const std::vector<double>& a);
/// Squared Euclidean norm.
double SquaredNorm2(const std::vector<double>& a);
/// y += alpha * x.
void Axpy(double alpha, const std::vector<double>& x, std::vector<double>* y);
/// x *= alpha.
void Scale(double alpha, std::vector<double>* x);
/// a + b.
std::vector<double> Add(const std::vector<double>& a,
                        const std::vector<double>& b);
/// a - b.
std::vector<double> Sub(const std::vector<double>& a,
                        const std::vector<double>& b);
/// Element-wise product a ⊛ b.
std::vector<double> HadamardVec(const std::vector<double>& a,
                                const std::vector<double>& b);
/// Max |a_i - b_i|.
double MaxAbsDiffVec(const std::vector<double>& a,
                     const std::vector<double>& b);

}  // namespace sofia

#endif  // SOFIA_LINALG_VECTOR_OPS_H_
