#include "linalg/qr.hpp"

#include <cmath>

#include "util/check.hpp"

namespace sofia {

namespace {

/// Apply the Householder reflector stored in column k of `v` (below the
/// diagonal, with implicit leading 1) to columns [from, to) of `work`.
void ApplyReflector(const Matrix& v, size_t k, double beta, Matrix* work,
                    size_t from) {
  const size_t m = work->rows();
  const size_t n = work->cols();
  for (size_t j = from; j < n; ++j) {
    double s = (*work)(k, j);
    for (size_t i = k + 1; i < m; ++i) s += v(i, k) * (*work)(i, j);
    s *= beta;
    (*work)(k, j) -= s;
    for (size_t i = k + 1; i < m; ++i) (*work)(i, j) -= s * v(i, k);
  }
}

}  // namespace

QrFactors QrFactorize(const Matrix& a) {
  const size_t m = a.rows();
  const size_t n = a.cols();
  SOFIA_CHECK_GE(m, n) << "QrFactorize requires a tall matrix";

  Matrix work = a;          // Becomes R in the upper triangle.
  Matrix v(m, n, 0.0);      // Householder vectors (implicit 1 on diagonal).
  std::vector<double> betas(n, 0.0);

  for (size_t k = 0; k < n; ++k) {
    double norm = 0.0;
    for (size_t i = k; i < m; ++i) norm += work(i, k) * work(i, k);
    norm = std::sqrt(norm);
    if (norm == 0.0) continue;
    const double alpha = work(k, k) >= 0.0 ? -norm : norm;
    const double vk = work(k, k) - alpha;
    // v = (x - alpha e1) / vk  (normalized so v[k] == 1).
    for (size_t i = k + 1; i < m; ++i) v(i, k) = work(i, k) / vk;
    betas[k] = -vk / alpha;
    work(k, k) = alpha;
    for (size_t i = k + 1; i < m; ++i) work(i, k) = 0.0;
    ApplyReflector(v, k, betas[k], &work, k + 1);
  }

  QrFactors f;
  f.r = Matrix(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) f.r(i, j) = work(i, j);
  }
  // Accumulate Q by applying reflectors to the identity (thin form).
  Matrix q(m, n);
  for (size_t i = 0; i < n; ++i) q(i, i) = 1.0;
  for (size_t kk = n; kk-- > 0;) {
    if (betas[kk] == 0.0) continue;
    ApplyReflector(v, kk, betas[kk], &q, 0);
  }
  f.q = q;
  return f;
}

std::vector<double> LeastSquares(const Matrix& a,
                                 const std::vector<double>& b) {
  SOFIA_CHECK_EQ(a.rows(), b.size());
  QrFactors f = QrFactorize(a);
  // x = R^{-1} Q^T b.
  std::vector<double> qtb = MatTVec(f.q, b);
  const size_t n = a.cols();
  std::vector<double> x(n);
  for (size_t ii = n; ii-- > 0;) {
    double s = qtb[ii];
    for (size_t j = ii + 1; j < n; ++j) s -= f.r(ii, j) * x[j];
    SOFIA_CHECK_NE(f.r(ii, ii), 0.0) << "LeastSquares: rank-deficient matrix";
    x[ii] = s / f.r(ii, ii);
  }
  return x;
}

}  // namespace sofia
