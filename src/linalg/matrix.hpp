#ifndef SOFIA_LINALG_MATRIX_H_
#define SOFIA_LINALG_MATRIX_H_

#include <cstddef>
#include <string>
#include <vector>

/// \file matrix.hpp
/// \brief Dense row-major matrix used throughout the library.
///
/// Factor matrices are tall-skinny (I_n x R with R <= ~20), so a simple
/// contiguous row-major layout with loop kernels is the right tool: rows of a
/// factor matrix are exactly the `u^(n)_{i_n}` vectors of the paper and can be
/// handed around as contiguous spans.

namespace sofia {

class Rng;

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;
  /// rows x cols matrix with every entry set to `fill`.
  Matrix(size_t rows, size_t cols, double fill = 0.0);
  /// Build from nested initializer-style data (rows of equal length).
  static Matrix FromRows(const std::vector<std::vector<double>>& rows);
  /// Identity of size n.
  static Matrix Identity(size_t n);
  /// rows x cols with i.i.d. Uniform(lo, hi) entries.
  static Matrix Random(size_t rows, size_t cols, Rng& rng, double lo = 0.0,
                       double hi = 1.0);
  /// rows x cols with i.i.d. Normal(0, stddev) entries.
  static Matrix RandomNormal(size_t rows, size_t cols, Rng& rng,
                             double stddev = 1.0);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(size_t i, size_t j) { return data_[i * cols_ + j]; }
  double operator()(size_t i, size_t j) const { return data_[i * cols_ + j]; }

  /// Pointer to the start of row i (rows are contiguous).
  double* Row(size_t i) { return data_.data() + i * cols_; }
  const double* Row(size_t i) const { return data_.data() + i * cols_; }

  /// Copy of row i / column j as a vector.
  std::vector<double> RowVector(size_t i) const;
  std::vector<double> ColVector(size_t j) const;
  /// Overwrite row i / column j from a vector of matching length.
  void SetRow(size_t i, const std::vector<double>& v);
  void SetCol(size_t j, const std::vector<double>& v);

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Set all entries to `v`.
  void Fill(double v);

  Matrix Transpose() const;

  /// Element-wise operations (shapes must match).
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double s);
  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, double s) { return a *= s; }
  friend Matrix operator*(double s, Matrix a) { return a *= s; }

  /// Hadamard (element-wise) product, the `⊛` of the paper.
  Matrix Hadamard(const Matrix& other) const;

  /// Frobenius norm and its square.
  double FrobeniusNorm() const;
  double SquaredFrobeniusNorm() const;

  /// Euclidean norm of column j.
  double ColNorm(size_t j) const;

  /// Max |a_ij - b_ij| over all entries (shapes must match).
  double MaxAbsDiff(const Matrix& other) const;

  /// Human-readable rendering for debugging.
  std::string ToString(int digits = 4) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// C = A * B (inner dimensions must agree).
Matrix MatMul(const Matrix& a, const Matrix& b);
/// C = A^T * B.
Matrix MatTMul(const Matrix& a, const Matrix& b);
/// y = A * x.
std::vector<double> MatVec(const Matrix& a, const std::vector<double>& x);
/// y = A^T * x.
std::vector<double> MatTVec(const Matrix& a, const std::vector<double>& x);
/// Gram matrix A^T A (cols x cols).
Matrix Gram(const Matrix& a);

}  // namespace sofia

#endif  // SOFIA_LINALG_MATRIX_H_
