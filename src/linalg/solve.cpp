#include "linalg/solve.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace sofia {

namespace {

bool AllFinite(const double* v, size_t n) {
  for (size_t k = 0; k < n; ++k) {
    if (!std::isfinite(v[k])) return false;
  }
  return true;
}

}  // namespace

LuFactors LuFactorize(const Matrix& a) {
  SOFIA_CHECK_EQ(a.rows(), a.cols());
  const size_t n = a.rows();
  LuFactors f;
  f.lu = a;
  f.perm.resize(n);
  for (size_t i = 0; i < n; ++i) f.perm[i] = static_cast<int>(i);

  for (size_t k = 0; k < n; ++k) {
    // Partial pivoting: choose the largest magnitude in column k.
    size_t pivot = k;
    double best = std::fabs(f.lu(k, k));
    for (size_t i = k + 1; i < n; ++i) {
      double v = std::fabs(f.lu(i, k));
      if (v > best) {
        best = v;
        pivot = i;
      }
    }
    if (best == 0.0) {
      f.singular = true;
      return f;
    }
    if (pivot != k) {
      for (size_t j = 0; j < n; ++j) std::swap(f.lu(k, j), f.lu(pivot, j));
      std::swap(f.perm[k], f.perm[pivot]);
    }
    const double pk = f.lu(k, k);
    for (size_t i = k + 1; i < n; ++i) {
      const double m = f.lu(i, k) / pk;
      f.lu(i, k) = m;
      if (m == 0.0) continue;
      for (size_t j = k + 1; j < n; ++j) f.lu(i, j) -= m * f.lu(k, j);
    }
  }
  return f;
}

std::vector<double> LuSolve(const LuFactors& f, const std::vector<double>& b) {
  const size_t n = f.lu.rows();
  SOFIA_CHECK_EQ(b.size(), n);
  SOFIA_CHECK(!f.singular) << "LuSolve on singular factorization";
  std::vector<double> x(n);
  // Apply permutation, then forward substitution with unit lower L.
  for (size_t i = 0; i < n; ++i) x[i] = b[f.perm[i]];
  for (size_t i = 0; i < n; ++i) {
    double s = x[i];
    for (size_t j = 0; j < i; ++j) s -= f.lu(i, j) * x[j];
    x[i] = s;
  }
  // Back substitution with U.
  for (size_t ii = n; ii-- > 0;) {
    double s = x[ii];
    for (size_t j = ii + 1; j < n; ++j) s -= f.lu(ii, j) * x[j];
    x[ii] = s / f.lu(ii, ii);
  }
  return x;
}

std::vector<double> SolveLinear(const Matrix& a, const std::vector<double>& b) {
  LuFactors f = LuFactorize(a);
  SOFIA_CHECK(!f.singular) << "SolveLinear: singular matrix";
  return LuSolve(f, b);
}

std::vector<double> SolveRidge(const Matrix& a, const std::vector<double>& b,
                               double eps) {
  // A non-finite system has no meaningful solution at any shift, and LU's
  // magnitude pivoting cannot flag it (fabs(NaN) compares false against
  // every candidate). Fail soft with the documented zero solution instead
  // of propagating NaN into a factor row or crashing the stream below.
  if (!AllFinite(a.data(), a.size()) || !AllFinite(b.data(), b.size())) {
    return std::vector<double>(b.size(), 0.0);
  }
  LuFactors f = LuFactorize(a);
  if (!f.singular) {
    std::vector<double> x = LuSolve(f, b);
    if (AllFinite(x.data(), x.size())) return x;
  }
  // Shift relative to the matrix magnitude so the regularization survives
  // rounding even for very large (or very small) Gram matrices. An
  // ill-conditioned solve that overflowed above retries here too.
  double scale = 0.0;
  for (size_t k = 0; k < a.size(); ++k) {
    scale = std::max(scale, std::fabs(a.data()[k]));
  }
  Matrix shifted = a;
  double shift = eps * std::max(scale, 1.0);
  for (int attempt = 0; attempt < 8; ++attempt) {
    for (size_t i = 0; i < shifted.rows(); ++i) shifted(i, i) += shift;
    f = LuFactorize(shifted);
    if (!f.singular) {
      std::vector<double> x = LuSolve(f, b);
      if (AllFinite(x.data(), x.size())) return x;
    }
    shift *= 100.0;
  }
  SOFIA_CHECK(false) << "SolveRidge: matrix stayed singular after shifting";
  return {};
}

bool CholeskySolveInPlace(double* a, double* rhs, size_t n) {
  // a = L L^T, L stored in the lower triangle of `a`.
  for (size_t j = 0; j < n; ++j) {
    double d = a[j * n + j];
    for (size_t k = 0; k < j; ++k) d -= a[j * n + k] * a[j * n + k];
    if (!(d > 0.0)) return false;
    const double ljj = std::sqrt(d);
    a[j * n + j] = ljj;
    for (size_t i = j + 1; i < n; ++i) {
      double s = a[i * n + j];
      for (size_t k = 0; k < j; ++k) s -= a[i * n + k] * a[j * n + k];
      a[i * n + j] = s / ljj;
    }
  }
  // Forward substitution L y = rhs.
  for (size_t i = 0; i < n; ++i) {
    double s = rhs[i];
    for (size_t k = 0; k < i; ++k) s -= a[i * n + k] * rhs[k];
    rhs[i] = s / a[i * n + i];
  }
  // Back substitution L^T x = y.
  for (size_t i = n; i-- > 0;) {
    double s = rhs[i];
    for (size_t k = i + 1; k < n; ++k) s -= a[k * n + i] * rhs[k];
    rhs[i] = s / a[i * n + i];
  }
  // Finite pivots do not rule out a poisoned right-hand side (or NaN
  // off-diagonals): report failure instead of handing back a NaN row.
  return AllFinite(rhs, n);
}

void ProximalRowSolve(const double* b, const double* c, const double* prev,
                      double mu, size_t n, double* a_scratch,
                      double* rhs_scratch, double* out) {
  bool empty = mu != 0.0;
  for (size_t e = 0; e < n * n && empty; ++e) empty = b[e] == 0.0;
  for (size_t r = 0; r < n && empty; ++r) empty = c[r] == 0.0;
  if (empty) {
    // (0 + μI) u = 0 + μ prev — the solve collapses to a scalar divide.
    for (size_t r = 0; r < n; ++r) out[r] = (mu * prev[r]) / mu;
    return;
  }

  std::copy(b, b + n * n, a_scratch);
  for (size_t r = 0; r < n; ++r) {
    a_scratch[r * n + r] += mu;
    rhs_scratch[r] = c[r] + mu * prev[r];
  }
  if (CholeskySolveInPlace(a_scratch, rhs_scratch, n)) {
    for (size_t r = 0; r < n; ++r) out[r] = rhs_scratch[r];
    return;
  }
  Matrix shifted(n, n);
  std::copy(b, b + n * n, shifted.data());
  std::vector<double> full_c(c, c + n);
  for (size_t r = 0; r < n; ++r) {
    shifted(r, r) += mu;
    full_c[r] += mu * prev[r];
  }
  const std::vector<double> solved = SolveRidge(shifted, full_c);
  for (size_t r = 0; r < n; ++r) out[r] = solved[r];
}

bool CholeskyFactorize(const Matrix& a, Matrix* l) {
  SOFIA_CHECK_EQ(a.rows(), a.cols());
  const size_t n = a.rows();
  *l = Matrix(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double s = a(i, j);
      for (size_t k = 0; k < j; ++k) s -= (*l)(i, k) * (*l)(j, k);
      if (i == j) {
        // !(s > 0) instead of s <= 0: a NaN diagonal must also fail.
        if (!(s > 0.0)) return false;
        (*l)(i, i) = std::sqrt(s);
      } else {
        (*l)(i, j) = s / (*l)(j, j);
      }
    }
  }
  return true;
}

std::vector<double> SolveSpd(const Matrix& a, const std::vector<double>& b) {
  Matrix l;
  if (!CholeskyFactorize(a, &l)) return SolveRidge(a, b);
  const size_t n = a.rows();
  SOFIA_CHECK_EQ(b.size(), n);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (size_t j = 0; j < i; ++j) s -= l(i, j) * y[j];
    y[i] = s / l(i, i);
  }
  std::vector<double> x(n);
  for (size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (size_t j = ii + 1; j < n; ++j) s -= l(j, ii) * x[j];
    x[ii] = s / l(ii, ii);
  }
  return x;
}

Matrix Inverse(const Matrix& a) {
  const size_t n = a.rows();
  LuFactors f = LuFactorize(a);
  SOFIA_CHECK(!f.singular) << "Inverse: singular matrix";
  Matrix inv(n, n);
  std::vector<double> e(n, 0.0);
  for (size_t j = 0; j < n; ++j) {
    e[j] = 1.0;
    std::vector<double> col = LuSolve(f, e);
    inv.SetCol(j, col);
    e[j] = 0.0;
  }
  return inv;
}

double Determinant(const Matrix& a) {
  LuFactors f = LuFactorize(a);
  if (f.singular) return 0.0;
  double det = 1.0;
  for (size_t i = 0; i < a.rows(); ++i) det *= f.lu(i, i);
  // Sign of the permutation.
  std::vector<int> p = f.perm;
  for (size_t i = 0; i < p.size(); ++i) {
    while (p[i] != static_cast<int>(i)) {
      std::swap(p[i], p[p[i]]);
      det = -det;
    }
  }
  return det;
}

}  // namespace sofia
