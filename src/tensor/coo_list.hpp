#ifndef SOFIA_TENSOR_COO_LIST_H_
#define SOFIA_TENSOR_COO_LIST_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "tensor/dense_tensor.hpp"
#include "tensor/mask.hpp"
#include "tensor/shape.hpp"

/// \file coo_list.hpp
/// \brief Compacted coordinate list of the observed entries of a masked
/// tensor, with per-mode slice bucketing.
///
/// Every hot kernel of the paper is a sum over the observed set Ω (Lemma 1:
/// one ALS sweep is O(|Ω| N R (N + R)); Lemma 2: one dynamic update is
/// O(|Ω_t| N R)). A CooList pays one dense scan to extract Ω from a
/// (DenseTensor, Mask) pair and is then reused across all N modes and all
/// sweeps of a window, so the per-sweep cost scales with |Ω| instead of the
/// tensor volume. The per-mode buckets group records by their mode-n index
/// (the rows of the mode-n unfolding), which is what lets the sparse kernels
/// in tensor/sparse_kernels.hpp parallelize over output rows with no shared
/// mutable state — the SPLATT recipe (Smith et al.) restricted to COO.
///
/// The structure depends only on the mask, not the values: consumers whose
/// mask is fixed while values change (the SOFIA init loop re-subtracts a new
/// outlier tensor every outer iteration; CP-WOPT re-evaluates the loss at
/// every quasi-Newton iterate) build once and re-`Gather` per iteration.

namespace sofia {

class CsfTensor;

/// Flat array of (multi-index, linear index) records for the observed
/// entries of a mask, in ascending linear order, plus per-mode buckets.
class CooList {
 public:
  CooList() = default;

  /// Compact the observed entries of `omega`. One pass over the dense index
  /// space; everything afterwards is O(|Ω|). `with_mode_buckets = false`
  /// skips the N per-mode bucket tables (O(N |Ω|) time and memory) for
  /// consumers that only stream the record list (gradients, norms).
  static CooList Build(const Mask& omega, bool with_mode_buckets = true);

  /// Build directly from already-sorted ascending linear indices — O(|Ω|
  /// order), no dense scan. This is the SparseMask → kernel-layer
  /// conversion and the |Ω|-scaling eval-pattern build of the comparison
  /// runner (which derives its held-out picks from the observed pattern's
  /// gaps instead of re-walking the index space).
  static CooList FromIndices(const Shape& shape, std::vector<size_t> sorted,
                             bool with_mode_buckets = true);

  /// Like Build, but buckets only the given mode — for one-shot kernels
  /// (e.g. a single MaskedMttkrp) that never read the other modes' tables.
  static CooList BuildForMode(const Mask& omega, size_t mode);

  /// True if mode `mode`'s slice bucket was built (required by the
  /// slice-parallel kernels CooMttkrp / CooRowSystems on that mode).
  bool has_mode_bucket(size_t mode) const {
    return mode < slice_ptr_.size() &&
           slice_ptr_[mode].size() == shape_.dim(mode) + 1;
  }

  const Shape& shape() const { return shape_; }
  size_t order() const { return shape_.order(); }
  /// Number of observed entries (|Ω|).
  size_t nnz() const { return linear_.size(); }

  /// Mode-`mode` index of record k (records are ordered by linear index).
  uint32_t Index(size_t record, size_t mode) const {
    return coords_[record * order_ + mode];
  }
  /// Pointer to the order() coordinates of record k.
  const uint32_t* Coords(size_t record) const {
    return coords_.data() + record * order_;
  }
  /// Linear index of record k into the dense tensor.
  size_t LinearIndex(size_t record) const { return linear_[record]; }
  /// All nnz linear indices, ascending (record-aligned).
  const std::vector<size_t>& LinearIndices() const { return linear_; }

  /// Gather x[k] for every record, aligned with record order.
  std::vector<double> Gather(const DenseTensor& x) const;
  /// Gather into a caller-owned buffer (resized to nnz) so per-step
  /// consumers can reuse scratch across steps instead of reallocating.
  void GatherInto(const DenseTensor& x, std::vector<double>* values) const;
  /// Gather (y - o)[k] for every record — the y* of Theorem 1.
  std::vector<double> GatherResidual(const DenseTensor& y,
                                     const DenseTensor& o) const;

  /// Per-mode slice buckets: the records whose mode-`mode` index equals s
  /// are ModeOrder(mode)[SlicePtr(mode)[s] ... SlicePtr(mode)[s + 1]), in
  /// ascending linear order (the bucketing sort is stable).
  const std::vector<uint32_t>& ModeOrder(size_t mode) const {
    return mode_order_[mode];
  }
  /// dim(mode) + 1 offsets into ModeOrder(mode).
  const std::vector<size_t>& SlicePtr(size_t mode) const {
    return slice_ptr_[mode];
  }

  /// Derived CSF storage attached to this pattern (see csf_tensor.hpp's
  /// EnsureCsf): the fiber trees depend only on the records, so they are
  /// built at most once per CooList and ride along with shared patterns —
  /// every method of a comparison run reuses the first build. Null until a
  /// CSF consumer attaches one.
  const std::shared_ptr<const CsfTensor>& csf() const { return csf_; }
  void AttachCsf(std::shared_ptr<const CsfTensor> csf) const {
    csf_ = std::move(csf);
  }

 private:
  /// Shared tail of the factories: delinearize `linear_` into `coords_`
  /// and (optionally) build the per-mode buckets.
  void FinishFromLinear(bool with_mode_buckets);

  Shape shape_;
  size_t order_ = 0;
  std::vector<uint32_t> coords_;  // nnz * order, record-major.
  std::vector<size_t> linear_;    // nnz linear indices, ascending.
  std::vector<std::vector<uint32_t>> mode_order_;  // One permutation per mode.
  std::vector<std::vector<size_t>> slice_ptr_;     // One offset table per mode.
  mutable std::shared_ptr<const CsfTensor> csf_;   // Lazy CSF attachment.
};

}  // namespace sofia

#endif  // SOFIA_TENSOR_COO_LIST_H_
