#include "tensor/sparse_mask.hpp"

#include <utility>

#include "tensor/coo_list.hpp"
#include "util/check.hpp"

namespace sofia {

SparseMask SparseMask::FromMask(const Mask& omega) {
  SparseMask m;
  m.shape_ = omega.shape();
  m.indices_ = omega.ObservedIndices();
  return m;
}

SparseMask SparseMask::FromIndices(Shape shape, std::vector<size_t> sorted) {
  SparseMask m;
  m.shape_ = std::move(shape);
  m.indices_ = std::move(sorted);
  if (!m.indices_.empty()) {
    SOFIA_CHECK_LT(m.indices_.back(), m.shape_.NumElements());
    for (size_t k = 1; k < m.indices_.size(); ++k) {
      SOFIA_CHECK_LT(m.indices_[k - 1], m.indices_[k])
          << "SparseMask indices must be strictly ascending";
    }
  }
  return m;
}

SparseMask SparseMask::FromCoo(const CooList& coo) {
  return FromIndices(coo.shape(), coo.LinearIndices());
}

Mask SparseMask::ToMask() const {
  SOFIA_CHECK(valid());
  Mask out(shape_, false);
  for (size_t idx : indices_) out.Set(idx, true);
  return out;
}

bool SparseMask::Matches(const Mask& omega) const {
  if (!valid() || !(shape_ == omega.shape())) return false;
  if (omega.CountObserved() != indices_.size()) return false;
  for (size_t idx : indices_) {
    if (!omega.Get(idx)) return false;
  }
  return true;
}

size_t SparseMask::DeltaSize(const SparseMask& other) const {
  SOFIA_CHECK(shape_ == other.shape_);
  size_t a = 0, b = 0, delta = 0;
  while (a < indices_.size() && b < other.indices_.size()) {
    if (indices_[a] == other.indices_[b]) {
      ++a;
      ++b;
    } else if (indices_[a] < other.indices_[b]) {
      ++a;
      ++delta;
    } else {
      ++b;
      ++delta;
    }
  }
  return delta + (indices_.size() - a) + (other.indices_.size() - b);
}

}  // namespace sofia
