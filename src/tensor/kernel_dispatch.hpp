#ifndef SOFIA_TENSOR_KERNEL_DISPATCH_H_
#define SOFIA_TENSOR_KERNEL_DISPATCH_H_

#include <algorithm>
#include <type_traits>
#include <vector>

#include "linalg/matrix.hpp"
#include "util/shard_executor.hpp"

/// \file kernel_dispatch.hpp
/// \brief Implementation helpers shared by the observed-entry kernel
/// backends (tensor/sparse_kernels.cpp and tensor/csf_kernels.cpp): raw
/// factor views, compile-time rank dispatch, and rank-sized scratch
/// buffers. Internal to the kernel layer — include from .cpp files only.

namespace sofia {
namespace kernel {

/// Records per task in the blocked reductions. Fixed (never derived from the
/// thread count) so the partial-sum tree is identical for every num_threads.
constexpr size_t kReductionBlock = 4096;

/// Raw row-base view of a factor matrix, snapshotted before the record loop
/// so the inner kernels touch plain pointers instead of Matrix methods.
struct FactorView {
  const double* data;
  size_t cols;
};

inline std::vector<FactorView> MakeViews(const std::vector<Matrix>& factors) {
  std::vector<FactorView> views(factors.size());
  for (size_t n = 0; n < factors.size(); ++n) {
    views[n] = {factors[n].data(), factors[n].cols()};
  }
  return views;
}

/// Invoke fn(integral_constant<size_t, R>) with R a compile-time copy of
/// `rank` for the common small CP ranks, or 0 (= dynamic rank) otherwise.
/// The fixed-rank instantiations let the compiler unroll and vectorize the
/// R-length loops of the record kernels, which dominate the ALS sweep.
template <typename Fn>
void DispatchRank(size_t rank, Fn&& fn) {
  switch (rank) {
    case 1: fn(std::integral_constant<size_t, 1>{}); break;
    case 2: fn(std::integral_constant<size_t, 2>{}); break;
    case 3: fn(std::integral_constant<size_t, 3>{}); break;
    case 4: fn(std::integral_constant<size_t, 4>{}); break;
    case 5: fn(std::integral_constant<size_t, 5>{}); break;
    case 6: fn(std::integral_constant<size_t, 6>{}); break;
    case 8: fn(std::integral_constant<size_t, 8>{}); break;
    case 10: fn(std::integral_constant<size_t, 10>{}); break;
    case 12: fn(std::integral_constant<size_t, 12>{}); break;
    case 16: fn(std::integral_constant<size_t, 16>{}); break;
    default: fn(std::integral_constant<size_t, 0>{}); break;
  }
}

/// Scratch R-vector: stack storage for fixed ranks, heap for dynamic.
/// Fixed storage is 64-byte aligned so the AVX2 instantiations (see
/// tensor/simd.hpp) load the rank block with aligned, cache-line-local
/// accesses.
template <size_t kR>
struct RankBuffer {
  double* get(size_t) { return fixed; }
  alignas(64) double fixed[kR];
};
template <>
struct RankBuffer<0> {
  double* get(size_t rank) {
    dynamic.resize(rank);
    return dynamic.data();
  }
  std::vector<double> dynamic;
};

/// Scratch R x R matrix, same storage policy (and alignment).
template <size_t kR>
struct RankSquareBuffer {
  double* get(size_t) { return fixed; }
  alignas(64) double fixed[kR * kR];
};
template <>
struct RankSquareBuffer<0> {
  double* get(size_t rank) {
    dynamic.resize(rank * rank);
    return dynamic.data();
  }
  std::vector<double> dynamic;
};

/// Scratch behind the blocked reductions (CSF root slabs, COO record
/// blocks): zeroed per-block partial accumulators plus an optional all-ones
/// weight row. Arena-backed when the pool provides one (ShardExecutor) —
/// the buffers then persist across calls and steps, so a steady-state
/// stream step performs zero scratch allocations
/// (ScratchArena::growth_events pins this). Call-local vector otherwise.
/// The block boundaries and combine order never depend on which storage
/// backs the scratch, so results are bitwise identical either way.
struct ReduceScratch {
  std::vector<double> local;
  double* partials = nullptr;
  double* ones = nullptr;

  ReduceScratch(WorkerPool* pool, size_t partial_count, size_t ones_count) {
    ScratchArena* arena = pool == nullptr ? nullptr : pool->arena();
    if (arena != nullptr) {
      partials = arena->Doubles(arena_slots::kReducePartials, partial_count);
      if (ones_count > 0) {
        ones = arena->RawDoubles(arena_slots::kReduceOnes, ones_count);
      }
    } else {
      local.assign(partial_count + ones_count, 0.0);
      partials = local.data();
      if (ones_count > 0) ones = local.data() + partial_count;
    }
    if (ones_count > 0) std::fill(ones, ones + ones_count, 1.0);
  }
};

}  // namespace kernel
}  // namespace sofia

#endif  // SOFIA_TENSOR_KERNEL_DISPATCH_H_
