#ifndef SOFIA_TENSOR_KRUSKAL_H_
#define SOFIA_TENSOR_KRUSKAL_H_

#include <vector>

#include "linalg/matrix.hpp"
#include "tensor/dense_tensor.hpp"

/// \file kruskal.hpp
/// \brief Kruskal operator `[[U^(1),...,U^(N)]]` (Definition 2) and the
/// slice variant used by the streaming model.

namespace sofia {

/// Reconstruct the full tensor `[[U^(1),...,U^(N)]]`:
/// x_{i1..iN} = sum_r prod_n U^(n)(i_n, r). Factors must share R columns.
DenseTensor KruskalTensor(const std::vector<Matrix>& factors);

/// Reconstruct one temporal slice `[[{U^(n)}; u]]` (Eq. (20)/(27)): the
/// (N-1)-way tensor with entries sum_r u_r * prod_n U^(n)(i_n, r).
DenseTensor KruskalSlice(const std::vector<Matrix>& factors,
                         const std::vector<double>& temporal_row);

/// Value of a single entry of `[[{U^(n)}; u]]` without materializing the
/// slice. `idx` indexes the N-1 non-temporal modes.
double KruskalSliceEntry(const std::vector<Matrix>& factors,
                         const std::vector<double>& temporal_row,
                         const std::vector<size_t>& idx);

/// Value of a single entry of the full Kruskal tensor.
double KruskalEntry(const std::vector<Matrix>& factors,
                    const std::vector<size_t>& idx);

}  // namespace sofia

#endif  // SOFIA_TENSOR_KRUSKAL_H_
