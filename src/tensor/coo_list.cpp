#include "tensor/coo_list.hpp"

#include <limits>

#include "util/check.hpp"

namespace sofia {

namespace {

/// Bucket records by their mode-n index with a stable counting sort, so
/// each bucket preserves ascending linear order.
void BucketMode(const CooList& coo, size_t n, std::vector<size_t>* ptr,
                std::vector<uint32_t>* ord) {
  const size_t dim = coo.shape().dim(n);
  const size_t nnz = coo.nnz();
  ptr->assign(dim + 1, 0);
  for (size_t k = 0; k < nnz; ++k) ++(*ptr)[coo.Index(k, n) + 1];
  for (size_t s = 0; s < dim; ++s) (*ptr)[s + 1] += (*ptr)[s];

  ord->resize(nnz);
  std::vector<size_t> fill(ptr->begin(), ptr->end() - 1);
  for (size_t k = 0; k < nnz; ++k) {
    (*ord)[fill[coo.Index(k, n)]++] = static_cast<uint32_t>(k);
  }
}

}  // namespace

CooList CooList::Build(const Mask& omega, bool with_mode_buckets) {
  const Shape& shape = omega.shape();
  CooList coo;
  coo.shape_ = shape;
  coo.order_ = shape.order();
  SOFIA_CHECK_GT(coo.order_, 0u);

  const size_t nnz = omega.CountObserved();
  coo.linear_.reserve(nnz);

  // One dense pass over the mask bits; only the |Ω| hits pay for the
  // multi-index (delinearized by stride division, order() ops per record).
  for (size_t linear = 0; linear < shape.NumElements(); ++linear) {
    if (omega.Get(linear)) coo.linear_.push_back(linear);
  }
  coo.FinishFromLinear(with_mode_buckets);
  return coo;
}

CooList CooList::FromIndices(const Shape& shape, std::vector<size_t> sorted,
                             bool with_mode_buckets) {
  CooList coo;
  coo.shape_ = shape;
  coo.order_ = shape.order();
  SOFIA_CHECK_GT(coo.order_, 0u);
  coo.linear_ = std::move(sorted);
  if (!coo.linear_.empty()) {
    SOFIA_CHECK_LT(coo.linear_.back(), shape.NumElements());
    for (size_t k = 1; k < coo.linear_.size(); ++k) {
      SOFIA_CHECK_LT(coo.linear_[k - 1], coo.linear_[k])
          << "CooList indices must be strictly ascending";
    }
  }
  coo.FinishFromLinear(with_mode_buckets);
  return coo;
}

void CooList::FinishFromLinear(bool with_mode_buckets) {
  const Shape& shape = shape_;
  for (size_t n = 0; n < order_; ++n) {
    SOFIA_CHECK_LT(shape.dim(n), std::numeric_limits<uint32_t>::max())
        << "CooList coordinates are 32-bit";
  }
  const size_t nnz = linear_.size();
  SOFIA_CHECK_LT(nnz, std::numeric_limits<uint32_t>::max())
      << "CooList record indices are 32-bit";

  coords_.resize(nnz * order_);
  for (size_t k = 0; k < nnz; ++k) {
    size_t rest = linear_[k];
    uint32_t* out = &coords_[k * order_];
    for (size_t n = order_; n-- > 0;) {
      const size_t i = rest / shape.stride(n);
      rest -= i * shape.stride(n);
      out[n] = static_cast<uint32_t>(i);
    }
  }

  if (!with_mode_buckets) return;

  mode_order_.resize(order_);
  slice_ptr_.resize(order_);
  for (size_t n = 0; n < order_; ++n) {
    BucketMode(*this, n, &slice_ptr_[n], &mode_order_[n]);
  }
}

CooList CooList::BuildForMode(const Mask& omega, size_t mode) {
  CooList coo = Build(omega, /*with_mode_buckets=*/false);
  SOFIA_CHECK_LT(mode, coo.order_);
  coo.mode_order_.resize(coo.order_);
  coo.slice_ptr_.resize(coo.order_);
  BucketMode(coo, mode, &coo.slice_ptr_[mode], &coo.mode_order_[mode]);
  return coo;
}

std::vector<double> CooList::Gather(const DenseTensor& x) const {
  std::vector<double> values;
  GatherInto(x, &values);
  return values;
}

void CooList::GatherInto(const DenseTensor& x,
                         std::vector<double>* values) const {
  SOFIA_CHECK(x.shape() == shape_);
  values->resize(nnz());
  for (size_t k = 0; k < linear_.size(); ++k) (*values)[k] = x[linear_[k]];
}

std::vector<double> CooList::GatherResidual(const DenseTensor& y,
                                            const DenseTensor& o) const {
  SOFIA_CHECK(y.shape() == shape_);
  SOFIA_CHECK(o.shape() == shape_);
  std::vector<double> values(nnz());
  for (size_t k = 0; k < linear_.size(); ++k) {
    values[k] = y[linear_[k]] - o[linear_[k]];
  }
  return values;
}

}  // namespace sofia
