#include "tensor/sparse_kernels.hpp"
#include "obs/kernel_stats.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/solve.hpp"
#include "tensor/kernel_dispatch.hpp"
#include "tensor/kruskal.hpp"
#include "tensor/simd.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"

namespace sofia {

namespace {

using kernel::DispatchRank;
using kernel::FactorView;
using kernel::MakeViews;
using kernel::RankBuffer;
using kernel::RankSquareBuffer;
using kernel::ReduceScratch;
using kernel::kReductionBlock;

void CheckFactors(const CooList& coo, const std::vector<Matrix>& factors,
                  size_t rank) {
  SOFIA_CHECK_EQ(factors.size(), coo.order());
  for (size_t n = 0; n < factors.size(); ++n) {
    SOFIA_CHECK_EQ(factors[n].rows(), coo.shape().dim(n));
    SOFIA_CHECK_EQ(factors[n].cols(), rank);
  }
}

template <size_t kR>
void CooMttkrpImpl(const CooList& coo, const std::vector<double>& values,
                   const std::vector<FactorView>& views, size_t mode,
                   size_t num_threads, WorkerPool* pool, size_t rank,
                   Matrix* out) {
  const std::vector<uint32_t>& order = coo.ModeOrder(mode);
  const std::vector<size_t>& ptr = coo.SlicePtr(mode);
  const size_t num_modes = views.size();
  // One task per mode slice: each task owns one output row, so no two
  // threads ever write the same accumulator and the per-row order is the
  // bucket order regardless of thread count.
  auto task = [&](size_t slice) {
    const size_t R = kR == 0 ? rank : kR;
    RankBuffer<kR> buf;
    double* SOFIA_RESTRICT h = buf.get(R);
    double* SOFIA_RESTRICT orow = out->Row(slice);
    for (size_t p = ptr[slice]; p < ptr[slice + 1]; ++p) {
      const size_t k = order[p];
      const double v = values[k];
      if (v == 0.0) continue;
      const uint32_t* idx = coo.Coords(k);
      simd::Fill(h, R, v);
      for (size_t l = 0; l < num_modes; ++l) {
        if (l == mode) continue;
        const double* row = views[l].data + idx[l] * views[l].cols;
        simd::MulIn(h, row, R);
      }
      simd::AddIn(orow, h, R);
    }
  };
  RunTasks(pool, num_threads, out->rows(), simd::Select(task));
}

/// Accumulate one mode slice's normal equations into raw b/c buffers
/// (assumed zeroed by the caller): h = weights ⊛ leave-one-out product
/// (weights == nullptr starts h at 1 — the plain Theorem-1 systems), rank-1
/// updates on the upper triangle, mirrored once at the end. The single
/// source of this arithmetic for both the materialized row-system kernels
/// and the fused proximal updates, so the two stay bitwise aligned.
template <size_t kR>
void AccumulateSliceRowSystem(const CooList& coo,
                              const std::vector<double>& values,
                              const std::vector<FactorView>& views,
                              const double* weights, size_t mode,
                              size_t slice, size_t rank,
                              double* SOFIA_RESTRICT h,
                              double* SOFIA_RESTRICT bdata,
                              double* SOFIA_RESTRICT c) {
  const std::vector<uint32_t>& order = coo.ModeOrder(mode);
  const std::vector<size_t>& ptr = coo.SlicePtr(mode);
  const size_t num_modes = views.size();
  const size_t R = kR == 0 ? rank : kR;
  for (size_t p = ptr[slice]; p < ptr[slice + 1]; ++p) {
    const size_t k = order[p];
    const uint32_t* idx = coo.Coords(k);
    if (weights != nullptr) {
      simd::Copy(h, weights, R);
    } else {
      simd::Fill(h, R, 1.0);
    }
    for (size_t l = 0; l < num_modes; ++l) {
      if (l == mode) continue;
      const double* row = views[l].data + idx[l] * views[l].cols;
      simd::MulIn(h, row, R);
    }
    // c and each triangle row of B are independent accumulators: hoisting
    // the c update out of the row loop changes no sum's order.
    const double ystar = values[k];
    simd::MulAddIn(c, ystar, h, R);
    for (size_t r = 0; r < R; ++r) {
      simd::MulAddIn(bdata + r * R + r, h[r], h + r, R - r);
    }
  }
  for (size_t r = 0; r < R; ++r) {
    for (size_t q = r + 1; q < R; ++q) bdata[q * R + r] = bdata[r * R + q];
  }
}

/// Shared accumulation of CooRowSystems / CooWeightedRowSystems: one task
/// per mode slice (= one output row system), so no two threads ever write
/// the same accumulator.
template <size_t kR>
void CooRowSystemsImpl(const CooList& coo, const std::vector<double>& values,
                       const std::vector<FactorView>& views,
                       const double* weights, size_t mode, size_t num_threads,
                       WorkerPool* pool, size_t rank, RowSystems* sys) {
  auto task = [&](size_t slice) {
    const size_t R = kR == 0 ? rank : kR;
    RankBuffer<kR> buf;
    AccumulateSliceRowSystem<kR>(coo, values, views, weights, mode, slice,
                                 rank, buf.get(R), sys->b[slice].data(),
                                 sys->c[slice].data());
  };
  RunTasks(pool, num_threads, sys->b.size(), simd::Select(task));
}

/// Fused row-system accumulation + proximal solve of one mode. Per task
/// (= one mode slice = one output row): accumulate B/c via the shared
/// AccumulateSliceRowSystem, then hand the system to the shared
/// ProximalRowSolve in stack buffers — the same routines the materialized
/// kernels and the dense path's ApplyProximalRowUpdates run, so the paths
/// stay bitwise aligned.
template <size_t kR>
void CooProximalRowUpdatesImpl(const CooList& coo,
                               const std::vector<double>& values,
                               const std::vector<FactorView>& views,
                               const double* weights, size_t mode,
                               const Matrix& previous, double mu,
                               size_t num_threads, WorkerPool* pool,
                               size_t rank, Matrix* u) {
  auto task = [&](size_t slice) {
    const size_t R = kR == 0 ? rank : kR;
    RankBuffer<kR> hbuf, cbuf, rhsbuf;
    RankSquareBuffer<kR> bbuf, abuf;
    double* b = bbuf.get(R);
    double* c = cbuf.get(R);
    for (size_t e = 0; e < R * R; ++e) b[e] = 0.0;
    for (size_t r = 0; r < R; ++r) c[r] = 0.0;
    AccumulateSliceRowSystem<kR>(coo, values, views, weights, mode, slice,
                                 rank, hbuf.get(R), b, c);
    // ProximalRowSolve is an out-of-line call: its arithmetic stays scalar
    // under both instantiations; only the B/c accumulation vectorizes.
    ProximalRowSolve(b, c, previous.Row(slice), mu, R, abuf.get(R),
                     rhsbuf.get(R), u->Row(slice));
  };
  RunTasks(pool, num_threads, u->rows(), simd::Select(task));
}

/// Blocked accumulation of the slice-global temporal system: each block owns
/// a packed [B | c] accumulator of R*R + R doubles, combined in block order
/// by the caller. Per record the full R x R matrix is accumulated in the
/// dense-scan order (c then each row of B), so a single-block run matches
/// baselines/common.hpp's SolveTemporalRow accumulation bitwise. That pin
/// is why this kernel stays scalar-only (no simd::Select): FMA contraction
/// would break the bit-for-bit match.
template <size_t kR>
void CooNormalSystemImpl(const CooList& coo, const std::vector<double>& values,
                         const std::vector<FactorView>& views,
                         size_t num_threads, WorkerPool* pool, size_t rank,
                         double* partial) {
  const size_t num_modes = views.size();
  const size_t num_blocks = (coo.nnz() + kReductionBlock - 1) / kReductionBlock;
  RunTasks(pool, num_threads, num_blocks, [&](size_t block) {
    const size_t R = kR == 0 ? rank : kR;
    RankBuffer<kR> buf;
    double* h = buf.get(R);
    double* out = partial + block * (R * R + R);  // [B rows | c].
    const size_t begin = block * kReductionBlock;
    const size_t end = std::min(begin + kReductionBlock, coo.nnz());
    for (size_t k = begin; k < end; ++k) {
      const uint32_t* idx = coo.Coords(k);
      for (size_t r = 0; r < R; ++r) h[r] = 1.0;
      for (size_t l = 0; l < num_modes; ++l) {
        const double* row = views[l].data + idx[l] * views[l].cols;
        for (size_t r = 0; r < R; ++r) h[r] *= row[r];
      }
      const double v = values[k];
      double* c = out + R * R;
      for (size_t r = 0; r < R; ++r) {
        const double hr = h[r];
        c[r] += v * hr;
        double* brow = out + r * R;
        for (size_t q = 0; q < R; ++q) brow[q] += hr * h[q];
      }
    }
  });
}

template <size_t kR>
void CooResidualBlocksImpl(const CooList& coo,
                           const std::vector<double>& values,
                           const std::vector<FactorView>& views,
                           size_t num_threads, WorkerPool* pool, size_t rank,
                           size_t num_blocks, double* partial) {
  const size_t num_modes = views.size();
  RunTasks(pool, num_threads, num_blocks, [&](size_t block) {
    const size_t R = kR == 0 ? rank : kR;
    RankBuffer<kR> buf;
    double* prod = buf.get(R);
    const size_t begin = block * kReductionBlock;
    const size_t end = std::min(begin + kReductionBlock, coo.nnz());
    double s = 0.0;
    for (size_t k = begin; k < end; ++k) {
      const uint32_t* idx = coo.Coords(k);
      for (size_t r = 0; r < R; ++r) prod[r] = 1.0;
      for (size_t l = 0; l < num_modes; ++l) {
        const double* row = views[l].data + idx[l] * views[l].cols;
        for (size_t r = 0; r < R; ++r) prod[r] *= row[r];
      }
      double recon = 0.0;
      for (size_t r = 0; r < R; ++r) recon += prod[r];
      const double d = values[k] - recon;
      s += d * d;
    }
    partial[block] = s;
  });
}

template <size_t kR>
void CooKruskalGatherImpl(const CooList& coo,
                          const std::vector<FactorView>& views,
                          const double* temporal_row, size_t num_threads,
                          WorkerPool* pool, size_t rank,
                          std::vector<double>* out) {
  const size_t num_modes = views.size();
  const size_t num_blocks = (coo.nnz() + kReductionBlock - 1) / kReductionBlock;
  auto task = [&](size_t block) {
    const size_t R = kR == 0 ? rank : kR;
    RankBuffer<kR> buf;
    double* SOFIA_RESTRICT h = buf.get(R);
    const size_t begin = block * kReductionBlock;
    const size_t end = std::min(begin + kReductionBlock, coo.nnz());
    for (size_t k = begin; k < end; ++k) {
      const uint32_t* idx = coo.Coords(k);
      simd::Copy(h, temporal_row, R);
      for (size_t l = 0; l < num_modes; ++l) {
        const double* row = views[l].data + idx[l] * views[l].cols;
        simd::MulIn(h, row, R);
      }
      // The final fold is a reduction: scalar ascending, never vectorized.
      double v = 0.0;
      for (size_t r = 0; r < R; ++r) v += h[r];
      (*out)[k] = v;
    }
  };
  RunTasks(pool, num_threads, num_blocks, simd::Select(task));
}

/// KruskalSlice-order gather: chain = fold of the non-leading modes from
/// highest to lowest (KhatriRaoChain's accumulation order), then
/// u^(0) · (w ⊛ chain) — bit-for-bit the arithmetic of KruskalFromChain.
/// Scalar-only (no simd::Select): the lazy StepResult pipeline pins this
/// gather bitwise against the dense KruskalSlice chain.
template <size_t kR>
void CooKruskalSliceGatherImpl(const CooList& coo,
                               const std::vector<FactorView>& views,
                               const double* temporal_row, size_t num_threads,
                               WorkerPool* pool, size_t rank,
                               std::vector<double>* out) {
  const size_t num_modes = views.size();
  const size_t num_blocks = (coo.nnz() + kReductionBlock - 1) / kReductionBlock;
  RunTasks(pool, num_threads, num_blocks, [&](size_t block) {
    const size_t R = kR == 0 ? rank : kR;
    RankBuffer<kR> buf;
    double* chain = buf.get(R);
    const size_t begin = block * kReductionBlock;
    const size_t end = std::min(begin + kReductionBlock, coo.nnz());
    for (size_t k = begin; k < end; ++k) {
      const uint32_t* idx = coo.Coords(k);
      for (size_t r = 0; r < R; ++r) chain[r] = 1.0;
      for (size_t l = num_modes; l-- > 1;) {
        const double* row = views[l].data + idx[l] * views[l].cols;
        for (size_t r = 0; r < R; ++r) chain[r] *= row[r];
      }
      const double* lead = views[0].data + idx[0] * views[0].cols;
      double v = 0.0;
      for (size_t r = 0; r < R; ++r) {
        v += lead[r] * (temporal_row[r] * chain[r]);
      }
      (*out)[k] = v;
    }
  });
}

/// Gradient + curvature trace of one non-temporal mode: each task owns one
/// mode slice (= one gradient row and one trace scalar), with records in
/// ascending linear order within the slice. `kTrace = false` compiles out
/// the curvature accumulation for consumers that only want gradients
/// (BRST's gated MAP step).
template <size_t kR, bool kTrace = true>
void CooModeGradientImpl(const CooList& coo,
                         const std::vector<double>& residuals,
                         const std::vector<FactorView>& views,
                         const double* temporal_row, size_t mode,
                         size_t num_threads, WorkerPool* pool, size_t rank,
                         Matrix* grad, std::vector<double>* trace) {
  const std::vector<uint32_t>& order = coo.ModeOrder(mode);
  const std::vector<size_t>& ptr = coo.SlicePtr(mode);
  const size_t num_modes = views.size();
  auto task = [&](size_t slice) {
    const size_t R = kR == 0 ? rank : kR;
    RankBuffer<kR> buf;
    double* SOFIA_RESTRICT h = buf.get(R);
    double* SOFIA_RESTRICT grow = grad->Row(slice);
    double tr = 0.0;
    for (size_t p = ptr[slice]; p < ptr[slice + 1]; ++p) {
      const size_t k = order[p];
      const uint32_t* idx = coo.Coords(k);
      simd::Copy(h, temporal_row, R);
      for (size_t l = 0; l < num_modes; ++l) {
        if (l == mode) continue;
        const double* row = views[l].data + idx[l] * views[l].cols;
        simd::MulIn(h, row, R);
      }
      const double resid = residuals[k];
      // Trace (scalar reduction) and gradient row are independent
      // accumulators: split loops, same sums, same order.
      if constexpr (kTrace) {
        for (size_t r = 0; r < R; ++r) tr += h[r] * h[r];
      }
      if (resid != 0.0) simd::MulAddIn(grow, resid, h, R);
    }
    if constexpr (kTrace) (*trace)[slice] = tr;
  };
  RunTasks(pool, num_threads, grad->rows(), simd::Select(task));
}

/// Temporal gradient + trace: fixed-size record blocks, each owning R + 1
/// partial accumulators, combined in block order after the batch.
template <size_t kR>
void CooTemporalGradientImpl(const CooList& coo,
                             const std::vector<double>& residuals,
                             const std::vector<FactorView>& views,
                             size_t num_threads, WorkerPool* pool, size_t rank,
                             std::vector<double>* temporal_grad,
                             double* temporal_trace) {
  const size_t num_modes = views.size();
  const size_t num_blocks = (coo.nnz() + kReductionBlock - 1) / kReductionBlock;
  ReduceScratch scratch(pool, num_blocks * (rank + 1), 0);
  double* partial = scratch.partials;
  auto task = [&](size_t block) {
    const size_t R = kR == 0 ? rank : kR;
    RankBuffer<kR> buf;
    double* SOFIA_RESTRICT full = buf.get(R);
    double* SOFIA_RESTRICT out = partial + block * (R + 1);
    const size_t begin = block * kReductionBlock;
    const size_t end = std::min(begin + kReductionBlock, coo.nnz());
    for (size_t k = begin; k < end; ++k) {
      const uint32_t* idx = coo.Coords(k);
      simd::Fill(full, R, 1.0);
      for (size_t l = 0; l < num_modes; ++l) {
        const double* row = views[l].data + idx[l] * views[l].cols;
        simd::MulIn(full, row, R);
      }
      const double resid = residuals[k];
      // out[R] (the trace) is a scalar reduction; out[0..R) are
      // independent slots — split loops, same sums, same order.
      for (size_t r = 0; r < R; ++r) out[R] += full[r] * full[r];
      if (resid != 0.0) simd::MulAddIn(out, resid, full, R);
    }
  };
  RunTasks(pool, num_threads, num_blocks, simd::Select(task));
  for (size_t block = 0; block < num_blocks; ++block) {
    const double* out = partial + block * (rank + 1);
    for (size_t r = 0; r < rank; ++r) (*temporal_grad)[r] += out[r];
    *temporal_trace += out[rank];
  }
}

}  // namespace

Matrix CooMttkrp(const CooList& coo, const std::vector<double>& values,
                 const std::vector<Matrix>& factors, size_t mode,
                 size_t num_threads, WorkerPool* pool) {
  static const obs::KernelStats kStats = obs::MakeKernelStats("coo.mttkrp");
  obs::CountKernel(kStats, coo.nnz(), 2 * (factors.empty() ? 0 : factors[0].cols()) * coo.order());
  SOFIA_CHECK_LT(mode, coo.order());
  SOFIA_CHECK_EQ(values.size(), coo.nnz());
  SOFIA_CHECK(coo.has_mode_bucket(mode));
  const size_t rank = factors.empty() ? 0 : factors[0].cols();
  CheckFactors(coo, factors, rank);

  Matrix out(coo.shape().dim(mode), rank, 0.0);
  const std::vector<FactorView> views = MakeViews(factors);
  DispatchRank(rank, [&](auto tag) {
    CooMttkrpImpl<decltype(tag)::value>(coo, values, views, mode, num_threads,
                                        pool, rank, &out);
  });
  return out;
}

RowSystems CooRowSystems(const CooList& coo, const std::vector<double>& values,
                         const std::vector<Matrix>& factors, size_t mode,
                         size_t num_threads, WorkerPool* pool) {
  static const obs::KernelStats kStats = obs::MakeKernelStats("coo.row_systems");
  obs::CountKernel(kStats, coo.nnz(), (factors.empty() ? 0 : factors[0].cols()) * (coo.order() + 2 * (factors.empty() ? 0 : factors[0].cols())));
  SOFIA_CHECK_LT(mode, coo.order());
  SOFIA_CHECK_EQ(values.size(), coo.nnz());
  SOFIA_CHECK(coo.has_mode_bucket(mode));
  const size_t rank = factors.empty() ? 0 : factors[0].cols();
  CheckFactors(coo, factors, rank);

  RowSystems sys;
  sys.b.assign(coo.shape().dim(mode), Matrix(rank, rank));
  sys.c.assign(coo.shape().dim(mode), std::vector<double>(rank, 0.0));
  const std::vector<FactorView> views = MakeViews(factors);
  DispatchRank(rank, [&](auto tag) {
    CooRowSystemsImpl<decltype(tag)::value>(coo, values, views,
                                            /*weights=*/nullptr, mode,
                                            num_threads, pool, rank, &sys);
  });
  return sys;
}

RowSystems CooWeightedRowSystems(const CooList& coo,
                                 const std::vector<double>& values,
                                 const std::vector<Matrix>& factors,
                                 const std::vector<double>& temporal_row,
                                 size_t mode, size_t num_threads,
                                 WorkerPool* pool) {
  static const obs::KernelStats kStats = obs::MakeKernelStats("coo.weighted_row_systems");
  obs::CountKernel(kStats, coo.nnz(), (factors.empty() ? 0 : factors[0].cols()) * (coo.order() + 2 * (factors.empty() ? 0 : factors[0].cols())));
  SOFIA_CHECK_LT(mode, coo.order());
  SOFIA_CHECK_EQ(values.size(), coo.nnz());
  SOFIA_CHECK(coo.has_mode_bucket(mode));
  const size_t rank = factors.empty() ? 0 : factors[0].cols();
  CheckFactors(coo, factors, rank);
  SOFIA_CHECK_EQ(temporal_row.size(), rank);

  RowSystems sys;
  sys.b.assign(coo.shape().dim(mode), Matrix(rank, rank));
  sys.c.assign(coo.shape().dim(mode), std::vector<double>(rank, 0.0));
  const std::vector<FactorView> views = MakeViews(factors);
  DispatchRank(rank, [&](auto tag) {
    CooRowSystemsImpl<decltype(tag)::value>(coo, values, views,
                                            temporal_row.data(), mode,
                                            num_threads, pool, rank, &sys);
  });
  return sys;
}

void CooProximalRowUpdates(const CooList& coo,
                           const std::vector<double>& values,
                           const std::vector<Matrix>& factors,
                           const std::vector<double>& temporal_row,
                           size_t mode, const Matrix& previous, double mu,
                           Matrix* u, size_t num_threads, WorkerPool* pool) {
  SOFIA_CHECK_LT(mode, coo.order());
  SOFIA_CHECK_EQ(values.size(), coo.nnz());
  SOFIA_CHECK(coo.has_mode_bucket(mode));
  const size_t rank = factors.empty() ? 0 : factors[0].cols();
  CheckFactors(coo, factors, rank);
  SOFIA_CHECK_EQ(temporal_row.size(), rank);
  SOFIA_CHECK_EQ(u->rows(), coo.shape().dim(mode));
  SOFIA_CHECK_EQ(u->cols(), rank);
  SOFIA_CHECK_EQ(previous.rows(), u->rows());
  SOFIA_CHECK_EQ(previous.cols(), rank);

  const std::vector<FactorView> views = MakeViews(factors);
  DispatchRank(rank, [&](auto tag) {
    CooProximalRowUpdatesImpl<decltype(tag)::value>(
        coo, values, views, temporal_row.data(), mode, previous, mu,
        num_threads, pool, rank, u);
  });
}

NormalSystem CooNormalSystem(const CooList& coo,
                             const std::vector<double>& values,
                             const std::vector<Matrix>& factors,
                             size_t num_threads, WorkerPool* pool) {
  SOFIA_CHECK_EQ(values.size(), coo.nnz());
  const size_t rank = factors.empty() ? 0 : factors[0].cols();
  CheckFactors(coo, factors, rank);

  const size_t num_blocks = (coo.nnz() + kReductionBlock - 1) / kReductionBlock;
  ReduceScratch scratch(pool, num_blocks * (rank * rank + rank), 0);
  const std::vector<FactorView> views = MakeViews(factors);
  DispatchRank(rank, [&](auto tag) {
    CooNormalSystemImpl<decltype(tag)::value>(coo, values, views, num_threads,
                                              pool, rank, scratch.partials);
  });

  NormalSystem sys;
  sys.b = Matrix(rank, rank);
  sys.c.assign(rank, 0.0);
  for (size_t block = 0; block < num_blocks; ++block) {
    const double* out = scratch.partials + block * (rank * rank + rank);
    double* bdata = sys.b.data();
    for (size_t e = 0; e < rank * rank; ++e) bdata[e] += out[e];
    for (size_t r = 0; r < rank; ++r) sys.c[r] += out[rank * rank + r];
  }
  return sys;
}

ModeGradients CooModeGradients(const CooList& coo,
                               const std::vector<double>& residuals,
                               const std::vector<Matrix>& factors,
                               const std::vector<double>& temporal_row,
                               size_t num_threads, WorkerPool* pool,
                               bool with_traces) {
  SOFIA_CHECK_EQ(residuals.size(), coo.nnz());
  const size_t rank = factors.empty() ? 0 : factors[0].cols();
  CheckFactors(coo, factors, rank);
  SOFIA_CHECK_EQ(temporal_row.size(), rank);

  ModeGradients g;
  g.row_grads.reserve(factors.size());
  g.row_trace.resize(factors.size());
  for (size_t n = 0; n < factors.size(); ++n) {
    g.row_grads.emplace_back(factors[n].rows(), rank, 0.0);
    if (with_traces) g.row_trace[n].assign(factors[n].rows(), 0.0);
  }

  const std::vector<FactorView> views = MakeViews(factors);
  DispatchRank(rank, [&](auto tag) {
    for (size_t mode = 0; mode < factors.size(); ++mode) {
      SOFIA_CHECK(coo.has_mode_bucket(mode));
      if (with_traces) {
        CooModeGradientImpl<decltype(tag)::value, true>(
            coo, residuals, views, temporal_row.data(), mode, num_threads,
            pool, rank, &g.row_grads[mode], &g.row_trace[mode]);
      } else {
        CooModeGradientImpl<decltype(tag)::value, false>(
            coo, residuals, views, temporal_row.data(), mode, num_threads,
            pool, rank, &g.row_grads[mode], nullptr);
      }
    }
  });
  return g;
}

double CooResidualSquaredNorm(const CooList& coo,
                              const std::vector<double>& values,
                              const std::vector<Matrix>& factors,
                              size_t num_threads, WorkerPool* pool) {
  SOFIA_CHECK_EQ(values.size(), coo.nnz());
  const size_t rank = factors.empty() ? 0 : factors[0].cols();
  CheckFactors(coo, factors, rank);

  // Fixed-size record blocks -> per-block partial sums, combined in block
  // order; both the block boundaries and the combine order are independent
  // of the thread count.
  const size_t num_blocks = (coo.nnz() + kReductionBlock - 1) / kReductionBlock;
  ReduceScratch scratch(pool, num_blocks, 0);
  const std::vector<FactorView> views = MakeViews(factors);
  DispatchRank(rank, [&](auto tag) {
    CooResidualBlocksImpl<decltype(tag)::value>(
        coo, values, views, num_threads, pool, rank, num_blocks,
        scratch.partials);
  });
  double total = 0.0;
  for (size_t block = 0; block < num_blocks; ++block) {
    total += scratch.partials[block];
  }
  return total;
}

double CooResidualNorm(const CooList& coo, const std::vector<double>& values,
                       const std::vector<Matrix>& factors, size_t num_threads,
                       WorkerPool* pool) {
  return std::sqrt(
      CooResidualSquaredNorm(coo, values, factors, num_threads, pool));
}

std::vector<double> CooKruskalGather(const CooList& coo,
                                     const std::vector<Matrix>& factors,
                                     const std::vector<double>& temporal_row,
                                     size_t num_threads, WorkerPool* pool) {
  const size_t rank = factors.empty() ? 0 : factors[0].cols();
  CheckFactors(coo, factors, rank);
  SOFIA_CHECK_EQ(temporal_row.size(), rank);

  std::vector<double> out(coo.nnz());
  const std::vector<FactorView> views = MakeViews(factors);
  DispatchRank(rank, [&](auto tag) {
    CooKruskalGatherImpl<decltype(tag)::value>(
        coo, views, temporal_row.data(), num_threads, pool, rank, &out);
  });
  return out;
}

std::vector<double> CooKruskalSliceGather(
    const CooList& coo, const std::vector<Matrix>& factors,
    const std::vector<double>& temporal_row, size_t num_threads,
    WorkerPool* pool) {
  std::vector<double> out;
  CooKruskalSliceGather(coo, factors, temporal_row, &out, num_threads, pool);
  return out;
}

void CooKruskalSliceGather(const CooList& coo,
                           const std::vector<Matrix>& factors,
                           const std::vector<double>& temporal_row,
                           std::vector<double>* out, size_t num_threads,
                           WorkerPool* pool) {
  static const obs::KernelStats kStats = obs::MakeKernelStats("coo.kruskal_gather");
  obs::CountKernel(kStats, coo.nnz(), 2 * (factors.empty() ? 0 : factors[0].cols()) * coo.order());
  const size_t rank = factors.empty() ? 0 : factors[0].cols();
  CheckFactors(coo, factors, rank);
  SOFIA_CHECK_EQ(temporal_row.size(), rank);

  out->resize(coo.nnz());
  const std::vector<FactorView> views = MakeViews(factors);
  DispatchRank(rank, [&](auto tag) {
    CooKruskalSliceGatherImpl<decltype(tag)::value>(
        coo, views, temporal_row.data(), num_threads, pool, rank, out);
  });
}

StepGradients CooStepGradients(const CooList& coo,
                               const std::vector<double>& residuals,
                               const std::vector<Matrix>& factors,
                               const std::vector<double>& temporal_row,
                               size_t num_threads, WorkerPool* pool) {
  static const obs::KernelStats kStats = obs::MakeKernelStats("coo.step_gradients");
  obs::CountKernel(kStats, coo.nnz(), 2 * (factors.empty() ? 0 : factors[0].cols()) * coo.order() * (coo.order() + 1));
  SOFIA_CHECK_EQ(residuals.size(), coo.nnz());
  const size_t rank = factors.empty() ? 0 : factors[0].cols();
  CheckFactors(coo, factors, rank);
  SOFIA_CHECK_EQ(temporal_row.size(), rank);

  StepGradients g;
  g.row_grads.reserve(factors.size());
  g.row_trace.resize(factors.size());
  for (size_t n = 0; n < factors.size(); ++n) {
    g.row_grads.emplace_back(factors[n].rows(), rank, 0.0);
    g.row_trace[n].assign(factors[n].rows(), 0.0);
  }
  g.temporal_grad.assign(rank, 0.0);

  const std::vector<FactorView> views = MakeViews(factors);
  DispatchRank(rank, [&](auto tag) {
    for (size_t mode = 0; mode < factors.size(); ++mode) {
      SOFIA_CHECK(coo.has_mode_bucket(mode));
      CooModeGradientImpl<decltype(tag)::value>(
          coo, residuals, views, temporal_row.data(), mode, num_threads, pool,
          rank, &g.row_grads[mode], &g.row_trace[mode]);
    }
    CooTemporalGradientImpl<decltype(tag)::value>(
        coo, residuals, views, num_threads, pool, rank, &g.temporal_grad,
        &g.temporal_trace);
  });
  return g;
}

StepGradients DenseStepGradients(const DenseTensor& y, const Mask& omega,
                                 const DenseTensor& outliers,
                                 const DenseTensor& forecast,
                                 const std::vector<Matrix>& factors,
                                 const std::vector<double>& temporal_row) {
  SOFIA_CHECK(y.shape() == omega.shape());
  SOFIA_CHECK(y.shape() == outliers.shape());
  SOFIA_CHECK(y.shape() == forecast.shape());
  const size_t num_modes = factors.size();
  const size_t rank = factors.empty() ? 0 : factors[0].cols();
  SOFIA_CHECK_EQ(temporal_row.size(), rank);

  StepGradients g;
  g.row_grads.reserve(num_modes);
  g.row_trace.resize(num_modes);
  for (size_t n = 0; n < num_modes; ++n) {
    g.row_grads.emplace_back(factors[n].rows(), rank, 0.0);
    g.row_trace[n].assign(factors[n].rows(), 0.0);
  }
  g.temporal_grad.assign(rank, 0.0);

  // One pass over the dense index space; prefix/suffix products give every
  // leave-one-out Hadamard product in O(N R) per observed entry.
  const Shape& shape = y.shape();
  std::vector<size_t> idx(shape.order(), 0);
  std::vector<double> prefix((num_modes + 1) * rank);
  std::vector<double> suffix((num_modes + 1) * rank);
  for (size_t linear = 0; linear < shape.NumElements(); ++linear) {
    if (omega.Get(linear)) {
      const double resid = y[linear] - outliers[linear] - forecast[linear];
      for (size_t r = 0; r < rank; ++r) prefix[r] = 1.0;
      for (size_t l = 0; l < num_modes; ++l) {
        const double* row = factors[l].Row(idx[l]);
        double* cur = &prefix[l * rank];
        double* nxt = &prefix[(l + 1) * rank];
        for (size_t r = 0; r < rank; ++r) nxt[r] = cur[r] * row[r];
      }
      for (size_t r = 0; r < rank; ++r) {
        suffix[num_modes * rank + r] = 1.0;
      }
      for (size_t l = num_modes; l-- > 0;) {
        const double* row = factors[l].Row(idx[l]);
        double* cur = &suffix[(l + 1) * rank];
        double* nxt = &suffix[l * rank];
        for (size_t r = 0; r < rank; ++r) nxt[r] = cur[r] * row[r];
      }
      // Full product (all non-temporal modes) feeds the temporal gradient.
      const double* full = &prefix[num_modes * rank];
      for (size_t r = 0; r < rank; ++r) {
        g.temporal_trace += full[r] * full[r];
        if (resid != 0.0) g.temporal_grad[r] += resid * full[r];
      }
      for (size_t l = 0; l < num_modes; ++l) {
        double* grow = g.row_grads[l].Row(idx[l]);
        double& trace = g.row_trace[l][idx[l]];
        const double* pre = &prefix[l * rank];
        const double* suf = &suffix[(l + 1) * rank];
        for (size_t r = 0; r < rank; ++r) {
          const double reg = pre[r] * suf[r] * temporal_row[r];
          trace += reg * reg;
          if (resid != 0.0) grow[r] += resid * reg;
        }
      }
    }
    shape.Next(&idx);
  }
  return g;
}

double CooDataNorm(const std::vector<double>& values) {
  double s = 0.0;
  for (double v : values) s += v * v;
  return std::sqrt(s);
}

RowSystems DenseRowSystems(const DenseTensor& y, const Mask& omega,
                           const DenseTensor& o,
                           const std::vector<Matrix>& factors, size_t mode) {
  SOFIA_CHECK(y.shape() == omega.shape());
  SOFIA_CHECK(y.shape() == o.shape());
  const Shape& shape = y.shape();
  const size_t rank = factors[0].cols();
  const size_t rows = shape.dim(mode);

  RowSystems sys;
  sys.b.assign(rows, Matrix(rank, rank));
  sys.c.assign(rows, std::vector<double>(rank, 0.0));

  std::vector<size_t> idx(shape.order(), 0);
  std::vector<double> h(rank);
  for (size_t linear = 0; linear < shape.NumElements(); ++linear) {
    if (omega.Get(linear)) {
      for (size_t r = 0; r < rank; ++r) h[r] = 1.0;
      for (size_t l = 0; l < factors.size(); ++l) {
        if (l == mode) continue;
        const double* row = factors[l].Row(idx[l]);
        for (size_t r = 0; r < rank; ++r) h[r] *= row[r];
      }
      const double ystar = y[linear] - o[linear];
      Matrix& b = sys.b[idx[mode]];
      std::vector<double>& c = sys.c[idx[mode]];
      for (size_t r = 0; r < rank; ++r) {
        const double hr = h[r];
        c[r] += ystar * hr;
        double* brow = b.Row(r);
        for (size_t q = r; q < rank; ++q) brow[q] += hr * h[q];
      }
    }
    shape.Next(&idx);
  }
  for (size_t i = 0; i < rows; ++i) {
    Matrix& b = sys.b[i];
    for (size_t r = 0; r < rank; ++r) {
      for (size_t q = r + 1; q < rank; ++q) b(q, r) = b(r, q);
    }
  }
  return sys;
}

double DenseResidualNorm(const DenseTensor& y, const Mask& omega,
                         const DenseTensor& o,
                         const std::vector<Matrix>& factors) {
  const Shape& shape = y.shape();
  std::vector<size_t> idx(shape.order(), 0);
  double s = 0.0;
  for (size_t linear = 0; linear < shape.NumElements(); ++linear) {
    if (omega.Get(linear)) {
      const double r = (y[linear] - o[linear]) - KruskalEntry(factors, idx);
      s += r * r;
    }
    shape.Next(&idx);
  }
  return std::sqrt(s);
}

double DenseDataNorm(const DenseTensor& y, const Mask& omega,
                     const DenseTensor& o) {
  double s = 0.0;
  for (size_t linear = 0; linear < y.NumElements(); ++linear) {
    if (omega.Get(linear)) {
      const double v = y[linear] - o[linear];
      s += v * v;
    }
  }
  return std::sqrt(s);
}

}  // namespace sofia
