#include "tensor/shape.hpp"

#include <sstream>

#include "util/check.hpp"

namespace sofia {

Shape::Shape(std::vector<size_t> dims) : dims_(std::move(dims)) {
  strides_.resize(dims_.size());
  size_t stride = 1;
  for (size_t n = 0; n < dims_.size(); ++n) {
    strides_[n] = stride;
    stride *= dims_[n];
  }
  num_elements_ = dims_.empty() ? 0 : stride;
}

size_t Shape::Linearize(const std::vector<size_t>& idx) const {
  SOFIA_DCHECK(idx.size() == dims_.size());
  size_t linear = 0;
  for (size_t n = 0; n < dims_.size(); ++n) {
    SOFIA_DCHECK(idx[n] < dims_[n]);
    linear += idx[n] * strides_[n];
  }
  return linear;
}

std::vector<size_t> Shape::Delinearize(size_t linear) const {
  std::vector<size_t> idx(dims_.size());
  DelinearizeInto(linear, &idx);
  return idx;
}

void Shape::DelinearizeInto(size_t linear, std::vector<size_t>* idx) const {
  SOFIA_DCHECK(linear < num_elements_);
  idx->resize(dims_.size());
  for (size_t n = 0; n < dims_.size(); ++n) {
    (*idx)[n] = linear % dims_[n];
    linear /= dims_[n];
  }
}

bool Shape::Next(std::vector<size_t>* idx) const {
  for (size_t n = 0; n < dims_.size(); ++n) {
    if (++(*idx)[n] < dims_[n]) return true;
    (*idx)[n] = 0;
  }
  return false;
}

Shape Shape::RemoveMode(size_t n) const {
  SOFIA_CHECK_LT(n, dims_.size());
  std::vector<size_t> d;
  d.reserve(dims_.size() - 1);
  for (size_t k = 0; k < dims_.size(); ++k) {
    if (k != n) d.push_back(dims_[k]);
  }
  return Shape(std::move(d));
}

Shape Shape::AppendMode(size_t len) const {
  std::vector<size_t> d = dims_;
  d.push_back(len);
  return Shape(std::move(d));
}

std::string Shape::ToString() const {
  std::ostringstream out;
  for (size_t n = 0; n < dims_.size(); ++n) {
    out << dims_[n];
    if (n + 1 < dims_.size()) out << "x";
  }
  return out.str();
}

}  // namespace sofia
