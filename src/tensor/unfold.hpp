#ifndef SOFIA_TENSOR_UNFOLD_H_
#define SOFIA_TENSOR_UNFOLD_H_

#include "linalg/matrix.hpp"
#include "tensor/dense_tensor.hpp"

/// \file unfold.hpp
/// \brief Mode-n matricization (Section III-A) and its inverse.
///
/// The mode-n unfolding X_(n) is the I_n x (prod_{k != n} I_k) matrix whose
/// (i_n, j) entry is x_{i_1...i_N} with j enumerating the remaining modes in
/// increasing-mode order, first listed mode fastest. Under this convention
/// `Unfold(Kruskal(U_1..U_N), n) == U_n * KhatriRaoSkip(U_1..U_N, n)^T`.

namespace sofia {

/// Mode-n unfolding of a dense tensor.
Matrix Unfold(const DenseTensor& t, size_t mode);

/// Inverse of Unfold: rebuild a tensor of `shape` from its mode-n unfolding.
DenseTensor Fold(const Matrix& m, const Shape& shape, size_t mode);

}  // namespace sofia

#endif  // SOFIA_TENSOR_UNFOLD_H_
