#include "tensor/csf_tensor.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <numeric>

#include "util/check.hpp"

namespace sofia {

namespace csf {

namespace {
bool g_auto_leaf = false;
double g_delta_max_churn = 0.25;
std::atomic<size_t> g_full_builds{0};
std::atomic<size_t> g_delta_builds{0};
}  // namespace

bool AutoLeaf() { return g_auto_leaf; }
void SetAutoLeaf(bool enabled) { g_auto_leaf = enabled; }

double DeltaMaxChurn() { return g_delta_max_churn; }
void SetDeltaMaxChurn(double fraction) { g_delta_max_churn = fraction; }

BuildStats GetBuildStats() {
  return {g_full_builds.load(), g_delta_builds.load()};
}
void ResetBuildStats() {
  g_full_builds.store(0);
  g_delta_builds.store(0);
}

}  // namespace csf

namespace {

/// The legacy level order of a tree rooted at `mode`: root first, then the
/// remaining modes by descending index (the lexicographic significance
/// order of the column-major linearization).
std::vector<size_t> DefaultLevels(size_t order, size_t mode) {
  std::vector<size_t> levels;
  levels.reserve(order);
  levels.push_back(mode);
  for (size_t n = order; n-- > 0;) {
    if (n != mode) levels.push_back(n);
  }
  return levels;
}

/// One linear pass over a depth-first leaf permutation (see the CsfTree
/// doc): a new node opens at every level from the first coordinate that
/// differs from the previous record's path, and every fiber's leaves are
/// consecutive. `perm` must be sorted lexicographically by the level-order
/// coordinates — the mode bucket already is for the default order; custom
/// orders pass a re-sorted permutation.
CsfTree BuildTreeFrom(const CooList& coo, std::vector<size_t> level_mode,
                      const uint32_t* perm, size_t nnz) {
  const size_t order = coo.order();
  CsfTree tree;
  tree.root_mode = level_mode[0];
  tree.level_mode = std::move(level_mode);

  tree.ids.resize(order);
  tree.ptr.resize(order >= 1 ? order - 1 : 0);
  tree.ids[order - 1].reserve(nnz);
  tree.record.reserve(nnz);

  std::vector<uint32_t> open(order, 0);  // Coordinates of the open path.
  for (size_t p = 0; p < nnz; ++p) {
    const uint32_t* c = coo.Coords(perm[p]);
    // First level whose coordinate leaves the open path (0 on the first
    // record: everything opens). Distinct records always differ somewhere,
    // so `split` lands at a real level for every p > 0 too.
    size_t split = 0;
    if (p > 0) {
      while (split + 1 < order && c[tree.level_mode[split]] == open[split]) {
        ++split;
      }
    }
    for (size_t l = split; l < order; ++l) {
      const uint32_t id = c[tree.level_mode[l]];
      // A node's children start at the current end of the level below,
      // recorded at open time (before any child is appended).
      if (l + 1 < order) tree.ptr[l].push_back(tree.ids[l + 1].size());
      tree.ids[l].push_back(id);
      open[l] = id;
    }
    tree.record.push_back(perm[p]);
  }
  // Closing sentinels: past-the-end child offset of the last node per level.
  for (size_t l = 0; l + 1 < order; ++l) {
    tree.ptr[l].push_back(tree.ids[l + 1].size());
  }
  return tree;
}

/// D(¬l) per mode l: the number of distinct projections of Ω onto the
/// modes excluding l — exactly the number of length-l fibers, i.e. the
/// leaf-parent count a tree pays when mode l is its leaf level,
/// independent of how the internal levels are ordered.
std::vector<size_t> DistinctFibersPerLeafMode(const CooList& coo) {
  const size_t order = coo.order();
  const Shape& shape = coo.shape();
  std::vector<size_t> distinct(order, 0);
  std::vector<size_t> keys(coo.nnz());
  for (size_t l = 0; l < order; ++l) {
    for (size_t k = 0; k < coo.nnz(); ++k) {
      const uint32_t* c = coo.Coords(k);
      size_t key = 0;
      size_t stride = 1;
      for (size_t n = 0; n < order; ++n) {
        if (n == l) continue;
        key += static_cast<size_t>(c[n]) * stride;
        stride *= shape.dim(n);
      }
      keys[k] = key;
    }
    std::sort(keys.begin(), keys.end());
    size_t count = 0;
    for (size_t k = 0; k < keys.size(); ++k) {
      if (k == 0 || keys[k] != keys[k - 1]) ++count;
    }
    distinct[l] = count;
  }
  return distinct;
}

/// Stable LSD counting sort of all records by the tree's level coordinates
/// (most significant = level 0). O(N(|Ω| + max I_n)), deterministic.
std::vector<uint32_t> LexPermutation(const CooList& coo,
                                     const std::vector<size_t>& level_mode) {
  const size_t order = coo.order();
  std::vector<uint32_t> perm(coo.nnz());
  std::iota(perm.begin(), perm.end(), 0u);
  std::vector<uint32_t> next(perm.size());
  std::vector<size_t> count;
  for (size_t l = order; l-- > 0;) {
    const size_t mode = level_mode[l];
    const size_t dim = coo.shape().dim(mode);
    count.assign(dim + 1, 0);
    for (uint32_t k : perm) ++count[coo.Coords(k)[mode] + 1];
    for (size_t d = 0; d < dim; ++d) count[d + 1] += count[d];
    for (uint32_t k : perm) next[count[coo.Coords(k)[mode]]++] = k;
    perm.swap(next);
  }
  return perm;
}

CsfTree BuildTree(const CooList& coo, size_t mode, bool auto_leaf,
                  const std::vector<size_t>& distinct_fibers) {
  const size_t order = coo.order();
  std::vector<size_t> levels = DefaultLevels(order, mode);
  if (auto_leaf && order >= 3) {
    // Leaf = the non-root mode with the fewest distinct parent fibers
    // (ties to the smallest mode index). The legacy order's leaf is the
    // smallest non-root mode; when the argmin lands there the custom sort
    // is skipped and the tree is byte-identical to the legacy build.
    size_t leaf = mode == 0 ? 1 : 0;
    for (size_t l = 0; l < order; ++l) {
      if (l != mode && distinct_fibers[l] < distinct_fibers[leaf]) leaf = l;
    }
    if (leaf != levels.back()) {
      std::vector<size_t> custom;
      custom.reserve(order);
      custom.push_back(mode);
      for (size_t n = order; n-- > 0;) {
        if (n != mode && n != leaf) custom.push_back(n);
      }
      custom.push_back(leaf);
      const std::vector<uint32_t> perm = LexPermutation(coo, custom);
      return BuildTreeFrom(coo, std::move(custom), perm.data(), perm.size());
    }
  }
  const std::vector<uint32_t>& perm = coo.ModeOrder(mode);
  return BuildTreeFrom(coo, std::move(levels), perm.data(), perm.size());
}

constexpr uint32_t kRemoved = std::numeric_limits<uint32_t>::max();

/// Patch one tree onto the new pattern: new-pattern roots in ascending
/// order; unchanged roots span-copied from the old tree (records remapped
/// via `old_to_new`), changed roots recompiled from the new bucket
/// segment (re-sorted when the tree's level order is not the default).
CsfTree PatchTree(const CsfTree& old_t, const CooList& coo,
                  const std::vector<uint32_t>& old_to_new,
                  const std::vector<char>& root_changed) {
  const size_t order = coo.order();
  const size_t mode = old_t.root_mode;
  const bool custom_order =
      old_t.level_mode != DefaultLevels(order, mode);

  CsfTree t;
  t.root_mode = mode;
  t.level_mode = old_t.level_mode;
  t.ids.resize(order);
  t.ptr.resize(order >= 1 ? order - 1 : 0);
  const std::vector<uint32_t>& perm = coo.ModeOrder(mode);
  const std::vector<size_t>& sptr = coo.SlicePtr(mode);
  t.ids[order - 1].reserve(perm.size());
  t.record.reserve(perm.size());

  std::vector<uint32_t> seg;  // Re-sort scratch for custom-order rebuilds.
  std::vector<uint32_t> open(order, 0);
  std::vector<size_t> lo(order), hi(order);
  size_t a = 0;  // Old-root cursor; both root walks ascend.
  const size_t old_roots = old_t.num_roots();
  for (size_t s = 0; s + 1 < sptr.size(); ++s) {
    if (sptr[s] == sptr[s + 1]) continue;  // Slice empty: no root.
    if (!root_changed[s]) {
      // Unchanged root: it must exist in the old tree with an identical
      // subtree. Locate it, then copy whole per-level node spans.
      while (a < old_roots && old_t.ids[0][a] < s) ++a;
      SOFIA_CHECK(a < old_roots && old_t.ids[0][a] == s);
      lo[0] = a;
      hi[0] = a + 1;
      for (size_t l = 0; l + 1 < order; ++l) {
        lo[l + 1] = old_t.ptr[l][lo[l]];
        hi[l + 1] = old_t.ptr[l][hi[l]];
      }
      for (size_t l = 0; l < order; ++l) {
        if (l + 1 < order) {
          // Rebase child offsets onto the new level-(l+1) span start
          // (t.ids[l+1] has not been appended for this root yet).
          const size_t base = t.ids[l + 1].size();
          for (size_t v = lo[l]; v < hi[l]; ++v) {
            t.ptr[l].push_back(old_t.ptr[l][v] - lo[l + 1] + base);
          }
        }
        t.ids[l].insert(t.ids[l].end(), old_t.ids[l].begin() + lo[l],
                        old_t.ids[l].begin() + hi[l]);
      }
      for (size_t v = lo[order - 1]; v < hi[order - 1]; ++v) {
        t.record.push_back(old_to_new[old_t.record[v]]);
      }
      continue;
    }
    // Changed (or new) root: recompile from the new bucket segment, which
    // is already in depth-first leaf order for default-order trees.
    const uint32_t* recs = perm.data() + sptr[s];
    const size_t nseg = sptr[s + 1] - sptr[s];
    if (custom_order) {
      seg.assign(recs, recs + nseg);
      std::sort(seg.begin(), seg.end(), [&](uint32_t x, uint32_t y) {
        const uint32_t* cx = coo.Coords(x);
        const uint32_t* cy = coo.Coords(y);
        for (size_t l = 1; l < order; ++l) {
          const size_t n = t.level_mode[l];
          if (cx[n] != cy[n]) return cx[n] < cy[n];
        }
        return false;
      });
      recs = seg.data();
    }
    for (size_t p = 0; p < nseg; ++p) {
      const uint32_t* c = coo.Coords(recs[p]);
      size_t split = 0;  // First record of the root opens every level.
      if (p > 0) {
        while (split + 1 < order && c[t.level_mode[split]] == open[split]) {
          ++split;
        }
      }
      for (size_t l = split; l < order; ++l) {
        const uint32_t id = c[t.level_mode[l]];
        if (l + 1 < order) t.ptr[l].push_back(t.ids[l + 1].size());
        t.ids[l].push_back(id);
        open[l] = id;
      }
      t.record.push_back(recs[p]);
    }
  }
  for (size_t l = 0; l + 1 < order; ++l) {
    t.ptr[l].push_back(t.ids[l + 1].size());
  }
  return t;
}

bool SortedStrict(const std::vector<size_t>& v) {
  for (size_t k = 1; k < v.size(); ++k) {
    if (v[k - 1] >= v[k]) return false;
  }
  return true;
}

}  // namespace

CsfTensor CsfTensor::Build(const CooList& coo) {
  return Build(coo, csf::AutoLeaf());
}

CsfTensor CsfTensor::Build(const CooList& coo, bool auto_leaf) {
  SOFIA_CHECK_GT(coo.order(), 0u);
  CsfTensor csf;
  csf.shape_ = coo.shape();
  csf.nnz_ = coo.nnz();
  csf.trees_.reserve(coo.order());
  std::vector<size_t> distinct_fibers;
  if (auto_leaf && coo.order() >= 3) {
    distinct_fibers = DistinctFibersPerLeafMode(coo);
  }
  for (size_t mode = 0; mode < coo.order(); ++mode) {
    SOFIA_CHECK(coo.has_mode_bucket(mode))
        << "CsfTensor::Build needs full mode buckets";
    csf.trees_.push_back(BuildTree(coo, mode, auto_leaf, distinct_fibers));
  }
  ++csf::g_full_builds;
  return csf;
}

bool CsfTensor::BuildDelta(const CsfTensor& previous,
                           const CooList& previous_coo, const CooList& coo,
                           double max_churn_fraction, CsfTensor* out) {
  const size_t order = coo.order();
  if (order == 0 || previous.order() != order) return false;
  if (!(previous_coo.shape() == coo.shape())) return false;
  if (previous.nnz() != previous_coo.nnz()) return false;
  for (size_t n = 0; n < order; ++n) {
    if (!coo.has_mode_bucket(n)) return false;
  }
  const std::vector<size_t>& oldlin = previous_coo.LinearIndices();
  const std::vector<size_t>& newlin = coo.LinearIndices();
  // Every CooList factory emits strictly ascending records; the merge walk
  // and the span-copy identity both rely on it, so verify cheaply.
  if (!SortedStrict(oldlin) || !SortedStrict(newlin)) return false;

  // Merge walk: remap kept records, collect adds/removes per root mode.
  std::vector<uint32_t> old_to_new(oldlin.size(), kRemoved);
  std::vector<uint32_t> added;
  size_t removed = 0;
  {
    size_t i = 0, j = 0;
    while (i < oldlin.size() || j < newlin.size()) {
      if (j == newlin.size() ||
          (i < oldlin.size() && oldlin[i] < newlin[j])) {
        ++removed;
        ++i;
      } else if (i == oldlin.size() || newlin[j] < oldlin[i]) {
        added.push_back(static_cast<uint32_t>(j));
        ++j;
      } else {
        old_to_new[i] = static_cast<uint32_t>(j);
        ++i;
        ++j;
      }
    }
  }
  const size_t churn = removed + added.size();
  const size_t denom = std::max<size_t>(
      1, std::max(oldlin.size(), newlin.size()));
  if (static_cast<double>(churn) >
      max_churn_fraction * static_cast<double>(denom)) {
    return false;
  }

  // Per-mode changed-root flags: a root is touched iff any added or
  // removed record lands in its slice.
  std::vector<std::vector<char>> root_changed(order);
  for (size_t n = 0; n < order; ++n) {
    root_changed[n].assign(coo.shape().dim(n), 0);
  }
  for (size_t i = 0; i < old_to_new.size(); ++i) {
    if (old_to_new[i] != kRemoved) continue;
    const uint32_t* c = previous_coo.Coords(i);
    for (size_t n = 0; n < order; ++n) root_changed[n][c[n]] = 1;
  }
  for (uint32_t j : added) {
    const uint32_t* c = coo.Coords(j);
    for (size_t n = 0; n < order; ++n) root_changed[n][c[n]] = 1;
  }

  CsfTensor next;
  next.shape_ = coo.shape();
  next.nnz_ = coo.nnz();
  next.trees_.reserve(order);
  for (size_t mode = 0; mode < order; ++mode) {
    next.trees_.push_back(
        PatchTree(previous.tree(mode), coo, old_to_new, root_changed[mode]));
  }
  *out = std::move(next);
  ++csf::g_delta_builds;
  return true;
}

const CsfTensor& EnsureCsf(const CooList& coo) { return *EnsureCsfShared(coo); }

std::shared_ptr<const CsfTensor> EnsureCsfShared(const CooList& coo) {
  if (coo.csf() == nullptr) {
    coo.AttachCsf(std::make_shared<const CsfTensor>(CsfTensor::Build(coo)));
  }
  return coo.csf();
}

std::shared_ptr<const CsfTensor> EnsureCsfDelta(
    const CooList& coo, const std::shared_ptr<const CooList>& previous) {
  if (coo.csf() != nullptr) return coo.csf();
  if (previous != nullptr && previous->csf() != nullptr) {
    CsfTensor patched;
    if (CsfTensor::BuildDelta(*previous->csf(), *previous, coo,
                              csf::DeltaMaxChurn(), &patched)) {
      coo.AttachCsf(
          std::make_shared<const CsfTensor>(std::move(patched)));
      return coo.csf();
    }
  }
  return EnsureCsfShared(coo);
}

const CsfTensor* BindCsf(const std::shared_ptr<const CooList>& coo,
                         PatternStorage storage,
                         std::shared_ptr<const CsfTensor>* cache,
                         std::shared_ptr<const CooList>* cache_source) {
  if (coo->csf() != nullptr) {
    *cache = coo->csf();
    *cache_source = coo;
    return cache->get();
  }
  const auto has_all_buckets = [&] {
    for (size_t n = 0; n < coo->order(); ++n) {
      if (!coo->has_mode_bucket(n)) return false;
    }
    return true;
  };
  if (storage != PatternStorage::kCsf || !has_all_buckets()) {
    cache->reset();
    cache_source->reset();
    return nullptr;
  }
  if (*cache == nullptr || *cache_source != coo) {
    // Pattern changed under a live cache: patch the cached trees forward
    // when the churn allows, else recompile.
    CsfTensor patched;
    if (*cache != nullptr && *cache_source != nullptr &&
        CsfTensor::BuildDelta(**cache, **cache_source, *coo,
                              csf::DeltaMaxChurn(), &patched)) {
      *cache = std::make_shared<const CsfTensor>(std::move(patched));
    } else {
      *cache = std::make_shared<const CsfTensor>(CsfTensor::Build(*coo));
    }
    *cache_source = coo;
  }
  return cache->get();
}

}  // namespace sofia
