#include "tensor/csf_tensor.hpp"

#include "util/check.hpp"

namespace sofia {

namespace {

/// One linear pass over the mode-`mode` bucket permutation: the bucket sort
/// is stable over ascending linear indices, and the linearization is
/// column-major (mode 0 has stride 1), so within a bucket the records are
/// sorted lexicographically by the remaining modes in *descending* mode
/// index. Ordering the tree levels the same way makes the permutation
/// exactly the depth-first leaf order of the tree — a new node opens at
/// every level from the first coordinate that differs from the previous
/// record's path, and every fiber's leaves are consecutive. (The leaf
/// level is therefore the lowest-index non-root mode; streams whose
/// stride-1 mode is long get the deepest fiber reuse.)
CsfTree BuildTree(const CooList& coo, size_t mode) {
  const size_t order = coo.order();
  CsfTree tree;
  tree.root_mode = mode;
  tree.level_mode.reserve(order);
  tree.level_mode.push_back(mode);
  for (size_t n = order; n-- > 0;) {
    if (n != mode) tree.level_mode.push_back(n);
  }

  tree.ids.resize(order);
  tree.ptr.resize(order >= 1 ? order - 1 : 0);
  const std::vector<uint32_t>& perm = coo.ModeOrder(mode);
  tree.ids[order - 1].reserve(perm.size());
  tree.record.reserve(perm.size());

  std::vector<uint32_t> open(order, 0);  // Coordinates of the open path.
  for (size_t p = 0; p < perm.size(); ++p) {
    const uint32_t* c = coo.Coords(perm[p]);
    // First level whose coordinate leaves the open path (0 on the first
    // record: everything opens). Distinct records always differ somewhere,
    // so `split` lands at a real level for every p > 0 too.
    size_t split = 0;
    if (p > 0) {
      while (split + 1 < order && c[tree.level_mode[split]] == open[split]) {
        ++split;
      }
    }
    for (size_t l = split; l < order; ++l) {
      const uint32_t id = c[tree.level_mode[l]];
      // A node's children start at the current end of the level below,
      // recorded at open time (before any child is appended).
      if (l + 1 < order) tree.ptr[l].push_back(tree.ids[l + 1].size());
      tree.ids[l].push_back(id);
      open[l] = id;
    }
    tree.record.push_back(perm[p]);
  }
  // Closing sentinels: past-the-end child offset of the last node per level.
  for (size_t l = 0; l + 1 < order; ++l) {
    tree.ptr[l].push_back(tree.ids[l + 1].size());
  }
  return tree;
}

}  // namespace

CsfTensor CsfTensor::Build(const CooList& coo) {
  SOFIA_CHECK_GT(coo.order(), 0u);
  CsfTensor csf;
  csf.shape_ = coo.shape();
  csf.nnz_ = coo.nnz();
  csf.trees_.reserve(coo.order());
  for (size_t mode = 0; mode < coo.order(); ++mode) {
    SOFIA_CHECK(coo.has_mode_bucket(mode))
        << "CsfTensor::Build needs full mode buckets";
    csf.trees_.push_back(BuildTree(coo, mode));
  }
  return csf;
}

const CsfTensor& EnsureCsf(const CooList& coo) { return *EnsureCsfShared(coo); }

std::shared_ptr<const CsfTensor> EnsureCsfShared(const CooList& coo) {
  if (coo.csf() == nullptr) {
    coo.AttachCsf(std::make_shared<const CsfTensor>(CsfTensor::Build(coo)));
  }
  return coo.csf();
}

const CsfTensor* BindCsf(const std::shared_ptr<const CooList>& coo,
                         PatternStorage storage,
                         std::shared_ptr<const CsfTensor>* cache,
                         std::shared_ptr<const CooList>* cache_source) {
  if (coo->csf() != nullptr) {
    *cache = coo->csf();
    *cache_source = coo;
    return cache->get();
  }
  const auto has_all_buckets = [&] {
    for (size_t n = 0; n < coo->order(); ++n) {
      if (!coo->has_mode_bucket(n)) return false;
    }
    return true;
  };
  if (storage != PatternStorage::kCsf || !has_all_buckets()) {
    cache->reset();
    cache_source->reset();
    return nullptr;
  }
  if (*cache == nullptr || *cache_source != coo) {
    *cache = std::make_shared<const CsfTensor>(CsfTensor::Build(*coo));
    *cache_source = coo;
  }
  return cache->get();
}

}  // namespace sofia
