#include "tensor/unfold.hpp"

#include "util/check.hpp"

namespace sofia {

namespace {

/// Column strides of the unfolding: for each mode k != n, the step in the
/// unfolded column index when i_k increments.
std::vector<size_t> ColumnStrides(const Shape& shape, size_t mode) {
  std::vector<size_t> strides(shape.order(), 0);
  size_t stride = 1;
  for (size_t k = 0; k < shape.order(); ++k) {
    if (k == mode) continue;
    strides[k] = stride;
    stride *= shape.dim(k);
  }
  return strides;
}

}  // namespace

Matrix Unfold(const DenseTensor& t, size_t mode) {
  const Shape& shape = t.shape();
  SOFIA_CHECK_LT(mode, shape.order());
  const size_t rows = shape.dim(mode);
  const size_t cols = shape.NumElements() / rows;
  Matrix out(rows, cols);

  const std::vector<size_t> col_strides = ColumnStrides(shape, mode);
  std::vector<size_t> idx(shape.order(), 0);
  // March through the tensor in linear order, tracking the unfolded column.
  size_t col = 0;
  for (size_t linear = 0; linear < shape.NumElements(); ++linear) {
    out(idx[mode], col) = t[linear];
    // Increment the multi-index and keep `col` in sync.
    for (size_t n = 0; n < shape.order(); ++n) {
      if (n != mode) col += col_strides[n];
      if (++idx[n] < shape.dim(n)) break;
      idx[n] = 0;
      if (n != mode) col -= col_strides[n] * shape.dim(n);
    }
  }
  return out;
}

DenseTensor Fold(const Matrix& m, const Shape& shape, size_t mode) {
  SOFIA_CHECK_LT(mode, shape.order());
  SOFIA_CHECK_EQ(m.rows(), shape.dim(mode));
  SOFIA_CHECK_EQ(m.cols(), shape.NumElements() / shape.dim(mode));
  DenseTensor out(shape);

  const std::vector<size_t> col_strides = ColumnStrides(shape, mode);
  std::vector<size_t> idx(shape.order(), 0);
  size_t col = 0;
  for (size_t linear = 0; linear < shape.NumElements(); ++linear) {
    out[linear] = m(idx[mode], col);
    for (size_t n = 0; n < shape.order(); ++n) {
      if (n != mode) col += col_strides[n];
      if (++idx[n] < shape.dim(n)) break;
      idx[n] = 0;
      if (n != mode) col -= col_strides[n] * shape.dim(n);
    }
  }
  return out;
}

}  // namespace sofia
