#ifndef SOFIA_TENSOR_PRODUCTS_H_
#define SOFIA_TENSOR_PRODUCTS_H_

#include <vector>

#include "linalg/matrix.hpp"
#include "tensor/dense_tensor.hpp"
#include "tensor/mask.hpp"

/// \file products.hpp
/// \brief Standard tensor-matrix kernels: TTM and MTTKRP.
///
/// These are the two workhorses of every CP/Tucker toolkit:
///  - TTM (tensor-times-matrix): contracts one mode with a matrix,
///    X ×_n M, giving a tensor whose mode-n length is M's row count.
///  - MTTKRP (matricized tensor times Khatri-Rao product):
///    X_(n) · (⊙_{l != n} U^(l)), the gradient core of CP-ALS. The masked
///    variant restricts the sum to observed entries, which is exactly the
///    `c` side of Theorem 1's normal equations stacked over rows.

namespace sofia {

/// X ×_n M: result(i_1,..,j,..,i_N) = Σ_{i_n} M(j, i_n) X(i_1,..,i_n,..).
/// M must have X.dim(mode) columns.
DenseTensor Ttm(const DenseTensor& x, const Matrix& m, size_t mode);

/// MTTKRP: returns the I_n x R matrix X_(n) · KhatriRaoSkip(factors, n).
/// `factors` supplies every mode's matrix (mode n's entries are ignored,
/// but its shape must match X).
Matrix Mttkrp(const DenseTensor& x, const std::vector<Matrix>& factors,
              size_t mode);

/// Masked MTTKRP: only observed entries contribute, i.e. the stacked
/// right-hand sides c^(n)_{i_n} of Theorem 1 (Eq. (15)) with y* = x.
/// Internally compacts the observed entries into a CooList and runs the
/// observed-entry kernel (tensor/sparse_kernels.hpp) — callers that need
/// several modes or repeated products against one mask should build the
/// CooList themselves and call CooMttkrp directly to amortize the scan.
Matrix MaskedMttkrp(const DenseTensor& x, const Mask& omega,
                    const std::vector<Matrix>& factors, size_t mode,
                    size_t num_threads = 1);

}  // namespace sofia

#endif  // SOFIA_TENSOR_PRODUCTS_H_
