#include "tensor/mask.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "util/check.hpp"

namespace sofia {

namespace {
/// Full byte-scan equality compares (the O(volume) operator== fallback).
std::atomic<size_t> g_deep_equality_scans{0};
}  // namespace

Mask::Mask(Shape shape, bool observed)
    : shape_(std::move(shape)),
      bits_(shape_.NumElements(), observed ? 1 : 0),
      count_(observed ? bits_.size() : 0) {}

uint64_t Mask::ContentHash() const {
  if (!hash_valid_) {
    // FNV-1a over the indicator bytes: cheap, order-sensitive, and stable
    // across processes (no seeding) so hashes are comparable anywhere.
    uint64_t h = 1469598103934665603ull;
    for (uint8_t b : bits_) {
      h ^= b;
      h *= 1099511628211ull;
    }
    hash_ = h;
    hash_valid_ = true;
  }
  return hash_;
}

bool Mask::operator==(const Mask& other) const {
  if (!(shape_ == other.shape_)) return false;
  if (count_ != kCountUnknown && other.count_ != kCountUnknown &&
      count_ != other.count_) {
    return false;
  }
  if (hash_valid_ && other.hash_valid_ && hash_ != other.hash_) return false;
  g_deep_equality_scans.fetch_add(1, std::memory_order_relaxed);
  return bits_ == other.bits_;
}

size_t Mask::deep_equality_scans() {
  return g_deep_equality_scans.load(std::memory_order_relaxed);
}

void Mask::ResetDeepEqualityScans() {
  g_deep_equality_scans.store(0, std::memory_order_relaxed);
}

size_t Mask::CountObserved() const {
  if (count_ == kCountUnknown) {
    size_t c = 0;
    for (uint8_t b : bits_) c += b;
    count_ = c;
  }
  return count_;
}

double Mask::ObservedFraction() const {
  if (bits_.empty()) return 0.0;
  return static_cast<double>(CountObserved()) /
         static_cast<double>(bits_.size());
}

std::vector<size_t> Mask::ObservedIndices() const {
  std::vector<size_t> idx;
  idx.reserve(CountObserved());
  for (size_t k = 0; k < bits_.size(); ++k) {
    if (bits_[k]) idx.push_back(k);
  }
  return idx;
}

DenseTensor Mask::Apply(const DenseTensor& t) const {
  SOFIA_CHECK(t.shape() == shape_);
  DenseTensor out(shape_);
  for (size_t k = 0; k < bits_.size(); ++k) {
    if (bits_[k]) out[k] = t[k];
  }
  return out;
}

double Mask::MaskedFrobeniusNorm(const DenseTensor& t) const {
  SOFIA_CHECK(t.shape() == shape_);
  double s = 0.0;
  for (size_t k = 0; k < bits_.size(); ++k) {
    if (bits_[k]) s += t[k] * t[k];
  }
  return std::sqrt(s);
}

Mask Mask::StackSlices(const std::vector<Mask>& slices) {
  SOFIA_CHECK(!slices.empty());
  const Shape& slice_shape = slices[0].shape();
  const size_t slice_elems = slice_shape.NumElements();
  Mask out(slice_shape.AppendMode(slices.size()), false);
  for (size_t t = 0; t < slices.size(); ++t) {
    SOFIA_CHECK(slices[t].shape() == slice_shape);
    std::copy(slices[t].bits_.begin(), slices[t].bits_.end(),
              out.bits_.begin() + t * slice_elems);
  }
  out.count_ = kCountUnknown;  // Bits were written behind Set()'s back.
  out.hash_valid_ = false;
  return out;
}

Mask Mask::SliceLastMode(size_t t) const {
  SOFIA_CHECK_GE(shape_.order(), 1u);
  const size_t last = shape_.order() - 1;
  SOFIA_CHECK_LT(t, shape_.dim(last));
  Shape slice_shape = shape_.RemoveMode(last);
  const size_t slice_elems = slice_shape.NumElements();
  Mask out(slice_shape, false);
  std::copy(bits_.begin() + t * slice_elems,
            bits_.begin() + (t + 1) * slice_elems, out.bits_.begin());
  out.count_ = kCountUnknown;  // Bits were written behind Set()'s back.
  out.hash_valid_ = false;
  return out;
}

}  // namespace sofia
