#include "tensor/products.hpp"

#include "tensor/coo_list.hpp"
#include "tensor/sparse_kernels.hpp"
#include "util/check.hpp"

namespace sofia {

DenseTensor Ttm(const DenseTensor& x, const Matrix& m, size_t mode) {
  const Shape& shape = x.shape();
  SOFIA_CHECK_LT(mode, shape.order());
  SOFIA_CHECK_EQ(m.cols(), shape.dim(mode));

  std::vector<size_t> out_dims = shape.dims();
  out_dims[mode] = m.rows();
  DenseTensor out(Shape(out_dims), 0.0);
  const Shape& out_shape = out.shape();

  // For every input entry, scatter into all output rows of the contracted
  // mode. The linear offsets of the two tensors differ only in the mode
  // stride, so we walk both with one multi-index.
  std::vector<size_t> idx(shape.order(), 0);
  for (size_t linear = 0; linear < shape.NumElements(); ++linear) {
    const double v = x[linear];
    if (v != 0.0) {
      const size_t in_mode_index = idx[mode];
      // Base output offset with mode index 0.
      size_t base = 0;
      for (size_t n = 0; n < shape.order(); ++n) {
        base += (n == mode ? 0 : idx[n]) * out_shape.stride(n);
      }
      for (size_t j = 0; j < m.rows(); ++j) {
        out[base + j * out_shape.stride(mode)] += m(j, in_mode_index) * v;
      }
    }
    shape.Next(&idx);
  }
  return out;
}

namespace {

Matrix MttkrpImpl(const DenseTensor& x,
                  const std::vector<Matrix>& factors, size_t mode) {
  const Shape& shape = x.shape();
  SOFIA_CHECK_LT(mode, shape.order());
  SOFIA_CHECK_EQ(factors.size(), shape.order());
  const size_t rank = factors[0].cols();
  for (size_t n = 0; n < factors.size(); ++n) {
    SOFIA_CHECK_EQ(factors[n].rows(), shape.dim(n));
    SOFIA_CHECK_EQ(factors[n].cols(), rank);
  }

  Matrix out(shape.dim(mode), rank, 0.0);
  std::vector<size_t> idx(shape.order(), 0);
  std::vector<double> h(rank);
  for (size_t linear = 0; linear < shape.NumElements(); ++linear) {
    const double v = x[linear];
    if (v != 0.0) {
      for (size_t r = 0; r < rank; ++r) h[r] = v;
      for (size_t l = 0; l < factors.size(); ++l) {
        if (l == mode) continue;
        const double* row = factors[l].Row(idx[l]);
        for (size_t r = 0; r < rank; ++r) h[r] *= row[r];
      }
      double* orow = out.Row(idx[mode]);
      for (size_t r = 0; r < rank; ++r) orow[r] += h[r];
    }
    shape.Next(&idx);
  }
  return out;
}

}  // namespace

Matrix Mttkrp(const DenseTensor& x, const std::vector<Matrix>& factors,
              size_t mode) {
  return MttkrpImpl(x, factors, mode);
}

Matrix MaskedMttkrp(const DenseTensor& x, const Mask& omega,
                    const std::vector<Matrix>& factors, size_t mode,
                    size_t num_threads) {
  SOFIA_CHECK(omega.shape() == x.shape());
  const CooList coo = CooList::BuildForMode(omega, mode);
  return CooMttkrp(coo, coo.Gather(x), factors, mode, num_threads);
}

}  // namespace sofia
