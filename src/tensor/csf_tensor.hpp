#ifndef SOFIA_TENSOR_CSF_TENSOR_H_
#define SOFIA_TENSOR_CSF_TENSOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "tensor/coo_list.hpp"
#include "tensor/pattern_storage.hpp"
#include "tensor/shape.hpp"

/// \file csf_tensor.hpp
/// \brief Compressed-sparse-fiber storage of an observation pattern — the
/// SPLATT recipe (Smith et al.) on top of the CooList layer.
///
/// A CooList answers "which entries are observed" as a flat record array;
/// every COO kernel therefore recomputes the full leave-one-out Hadamard
/// product per record, even though consecutive records usually share all but
/// their last coordinate. A CsfTensor stores one fiber tree per mode: level
/// 0 holds the (nonempty) root slices of that mode, each deeper level the
/// distinct coordinate prefixes below it, and the leaves point back at the
/// CooList records — so values stay record-aligned and shared with every
/// other consumer of the pattern. The kernels in tensor/csf_kernels.hpp
/// walk these trees and reuse the partial Hadamard products along shared
/// fibers instead of rebuilding them per entry.
///
/// Like the CooList it is built from, a CsfTensor depends only on the mask:
/// build once per distinct pattern (O(N |Ω|) — the record permutations are
/// the CooList's existing mode buckets), reuse across steps and sweeps. The
/// per-root-slab task partition of the kernels makes the trees the natural
/// unit for multi-worker sharding (see ROADMAP).
///
/// Two build-time levers on top of the PR 5 layout:
///  * *Incremental updates* (CsfTensor::BuildDelta): real streams mutate a
///    small fraction of Ω per mask change (PR 5's delta telemetry), so the
///    trees of the previous pattern are patched — root subtrees containing
///    no added/removed record are span-copied with records remapped, only
///    touched roots are recompiled — instead of rebuilt from scratch.
///    Falls back to a full build past a churn-fraction threshold
///    (csf::DeltaMaxChurn). A patched tensor is structurally identical to
///    a fresh build of the new pattern, so downstream results are bitwise
///    unchanged.
///  * *Per-tree leaf-mode selection* (csf::SetAutoLeaf): by default every
///    tree orders its non-root levels by descending mode index (the
///    linearization significance order — builds are then one pass over the
///    existing mode bucket). With auto-leaf on, each tree instead puts the
///    mode with the fewest distinct parent fibers deepest, maximizing
///    leaves per fiber and hence prefix reuse; such trees are built from a
///    custom stable LSD counting-sort permutation. Kernels are level-order
///    agnostic (they read `level_mode`), so this reorders products only
///    within each record's Hadamard chain (≤1e-12 vs the default order).

namespace sofia {

/// One fiber tree, rooted at `root_mode`. Levels map to tensor modes via
/// `level_mode`: root mode first, then (by default) the remaining modes by
/// descending mode index — the lexicographic significance order of the
/// column-major linearization, so the CooList's mode-bucket permutation is
/// already the depth-first leaf order and building is one linear pass.
/// Auto-leaf builds may end the list with a different leaf mode (see file
/// comment); consumers must index factors via `level_mode`, never assume
/// the default order. For a tree of `order` levels:
///  - `ids[l]` holds the coordinate (in mode level_mode[l]) of every node
///    at level l, in traversal order;
///  - `ptr[l]` (levels 0 .. order-2) holds ids[l].size() + 1 offsets into
///    level l + 1: the children of node v are [ptr[l][v], ptr[l][v + 1]);
///  - `record[v]` maps leaf v (level order-1) back to the CooList record
///    whose value arrays the kernels read.
struct CsfTree {
  size_t root_mode = 0;
  std::vector<size_t> level_mode;           ///< Level → tensor mode.
  std::vector<std::vector<uint32_t>> ids;   ///< Per-level node coordinates.
  std::vector<std::vector<size_t>> ptr;     ///< Per-level child offsets.
  std::vector<uint32_t> record;             ///< Leaf → CooList record.

  size_t num_roots() const { return ids.empty() ? 0 : ids[0].size(); }
};

/// Process-wide knobs and telemetry of the CSF build layer. Like
/// simd::SetEnabled these are configuration, not per-call state: flip them
/// between runs (CLI --csf-leaf / --csf-churn), not while kernels execute.
namespace csf {

/// Per-tree leaf-mode selection for *new* full builds (default off: the
/// legacy descending-mode order, which tests pin structurally). Patched
/// tensors always keep their trees' existing level orders.
bool AutoLeaf();
void SetAutoLeaf(bool enabled);

/// BuildDelta churn threshold: patch when |Ω_old Δ Ω_new| ≤ this fraction
/// of max(|Ω_old|, |Ω_new|), else recompile (default 0.25 — past that the
/// touched-root rebuilds approach the cost of a clean build).
double DeltaMaxChurn();
void SetDeltaMaxChurn(double fraction);

/// Process-wide counters: full tree compilations vs incremental patches
/// (the routing tests and stream telemetry read these).
struct BuildStats {
  size_t full_builds = 0;
  size_t delta_builds = 0;
};
BuildStats GetBuildStats();
void ResetBuildStats();

}  // namespace csf

/// Per-mode CSF trees over one observation pattern.
class CsfTensor {
 public:
  CsfTensor() = default;

  /// Build all order() trees from a CooList with full mode buckets —
  /// O(N |Ω|) total, no dense scan (each tree is one pass over the
  /// corresponding bucket permutation; auto-leaf trees with a non-default
  /// level order pay one O(N(|Ω| + max I_n)) LSD counting sort instead).
  /// The one-argument flavor uses the process-wide csf::AutoLeaf() knob.
  static CsfTensor Build(const CooList& coo);
  static CsfTensor Build(const CooList& coo, bool auto_leaf);

  /// Incremental build: patch `previous`'s fiber trees (compiled over
  /// `previous_coo`) into the pattern of `coo`. A merge walk of the two
  /// sorted record lists classifies every entry; per tree, roots whose
  /// subtree saw no added/removed record are span-copied (child offsets
  /// rebased, leaf records remapped old→new), touched roots are recompiled
  /// from the new pattern's bucket segment. Each tree keeps its existing
  /// `level_mode`, and the result is structurally identical to a fresh
  /// Build of `coo` with the same level orders. Returns false — leaving
  /// `*out` untouched — when the shapes differ, `coo` lacks full mode
  /// buckets, either record list is unsorted, or the churn fraction
  /// exceeds `max_churn_fraction`; callers then fall back to Build. Cost
  /// O(N(|Ω_old| + |Ω_new|)) worst-case but touched-root work only beyond
  /// the merge walk and the untouched span copies.
  static bool BuildDelta(const CsfTensor& previous,
                         const CooList& previous_coo, const CooList& coo,
                         double max_churn_fraction, CsfTensor* out);

  const Shape& shape() const { return shape_; }
  size_t order() const { return trees_.size(); }
  /// Number of observed entries (|Ω|), equal to every tree's leaf count.
  size_t nnz() const { return nnz_; }

  /// The tree rooted at `mode` (kernels targeting mode-n rows walk tree n).
  const CsfTree& tree(size_t mode) const { return trees_[mode]; }

 private:
  Shape shape_;
  size_t nnz_ = 0;
  std::vector<CsfTree> trees_;
};

/// The CSF attachment of `coo`, built on first use and cached on the
/// CooList (CooList::csf), so shared patterns are compiled to CSF at most
/// once per distinct mask no matter how many methods adopt them. Requires
/// full mode buckets.
const CsfTensor& EnsureCsf(const CooList& coo);

/// Shared-pointer flavor of EnsureCsf for consumers that outlive the coo.
std::shared_ptr<const CsfTensor> EnsureCsfShared(const CooList& coo);

/// EnsureCsfShared that patches forward from the previous pattern's
/// attached trees instead of recompiling, when `previous` carries a CSF
/// attachment and the churn stays under csf::DeltaMaxChurn(). The stream
/// runner's pattern cache calls this on every mask change; a null or
/// tree-less `previous` (or a failed patch) degrades to the full build.
std::shared_ptr<const CsfTensor> EnsureCsfDelta(
    const CooList& coo, const std::shared_ptr<const CooList>& previous);

/// Bind the CSF backend for a freshly bound pattern — the policy shared by
/// SofiaModel::Step and ObservedSweep::BeginStep. Adopts the trees already
/// attached to the pattern (the comparison runner's broadcast knob);
/// otherwise, when `storage` is kCsf and the pattern carries full mode
/// buckets, compiles a private copy into (*cache, *cache_source), keyed on
/// shared_ptr identity so mask reuse and shared-pattern repeats skip the
/// rebuild; on a pattern change with a cached predecessor the private copy
/// is patched forward via CsfTensor::BuildDelta when the churn allows —
/// deliberately *not* attached to the (possibly shared) CooList,
/// which would leak this consumer's storage choice into every other
/// adopting method. Returns null for the COO backend, including
/// bucket-less patterns, which the fiber build cannot compile.
const CsfTensor* BindCsf(const std::shared_ptr<const CooList>& coo,
                         PatternStorage storage,
                         std::shared_ptr<const CsfTensor>* cache,
                         std::shared_ptr<const CooList>* cache_source);

}  // namespace sofia

#endif  // SOFIA_TENSOR_CSF_TENSOR_H_
