#include "tensor/khatri_rao.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace sofia {

Matrix KhatriRao(const Matrix& a, const Matrix& b) {
  SOFIA_CHECK_EQ(a.cols(), b.cols());
  const size_t r = a.cols();
  Matrix out(a.rows() * b.rows(), r);
  for (size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.Row(i);
    for (size_t j = 0; j < b.rows(); ++j) {
      const double* brow = b.Row(j);
      double* orow = out.Row(i * b.rows() + j);
      for (size_t c = 0; c < r; ++c) orow[c] = arow[c] * brow[c];
    }
  }
  return out;
}

Matrix KhatriRaoChain(const std::vector<Matrix>& factors) {
  SOFIA_CHECK(!factors.empty());
  // U^(N) (kr) ... (kr) U^(1): fold from the highest mode down so that the
  // mode-1 row index ends up fastest. The final ∏ rows x R output is
  // allocated once and each fold expands the accumulated block in place,
  // back to front: block ia of the current accumulator spreads to rows
  // [ia * frows, (ia + 1) * frows), all at or past ia, so processing ia in
  // descending order never clobbers an unread row (the current row itself
  // is staged in `arow` before its block is written).
  const size_t r = factors[0].cols();
  size_t total_rows = 1;
  for (const Matrix& f : factors) {
    SOFIA_CHECK_EQ(f.cols(), r);
    total_rows *= f.rows();
  }
  Matrix out(total_rows, r);
  if (total_rows == 0) return out;
  const Matrix& last = factors.back();
  for (size_t i = 0; i < last.rows(); ++i) {
    const double* src = last.Row(i);
    std::copy(src, src + r, out.Row(i));
  }
  size_t acc_rows = last.rows();
  std::vector<double> arow(r);
  for (size_t n = factors.size() - 1; n-- > 0;) {
    const Matrix& f = factors[n];
    const size_t frows = f.rows();
    for (size_t ia = acc_rows; ia-- > 0;) {
      const double* src = out.Row(ia);
      std::copy(src, src + r, arow.begin());
      for (size_t ib = frows; ib-- > 0;) {
        const double* brow = f.Row(ib);
        double* orow = out.Row(ia * frows + ib);
        for (size_t c = 0; c < r; ++c) orow[c] = arow[c] * brow[c];
      }
    }
    acc_rows *= frows;
  }
  return out;
}

Matrix KhatriRaoSkip(const std::vector<Matrix>& factors, size_t skip) {
  SOFIA_CHECK_LT(skip, factors.size());
  std::vector<Matrix> rest;
  rest.reserve(factors.size() - 1);
  for (size_t n = 0; n < factors.size(); ++n) {
    if (n != skip) rest.push_back(factors[n]);
  }
  SOFIA_CHECK(!rest.empty());
  return KhatriRaoChain(rest);
}

}  // namespace sofia
