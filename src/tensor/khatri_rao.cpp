#include "tensor/khatri_rao.hpp"

#include "util/check.hpp"

namespace sofia {

Matrix KhatriRao(const Matrix& a, const Matrix& b) {
  SOFIA_CHECK_EQ(a.cols(), b.cols());
  const size_t r = a.cols();
  Matrix out(a.rows() * b.rows(), r);
  for (size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.Row(i);
    for (size_t j = 0; j < b.rows(); ++j) {
      const double* brow = b.Row(j);
      double* orow = out.Row(i * b.rows() + j);
      for (size_t c = 0; c < r; ++c) orow[c] = arow[c] * brow[c];
    }
  }
  return out;
}

Matrix KhatriRaoChain(const std::vector<Matrix>& factors) {
  SOFIA_CHECK(!factors.empty());
  // U^(N) (kr) ... (kr) U^(1): fold from the highest mode down so that the
  // mode-1 row index ends up fastest.
  Matrix acc = factors.back();
  for (size_t n = factors.size() - 1; n-- > 0;) {
    acc = KhatriRao(acc, factors[n]);
  }
  return acc;
}

Matrix KhatriRaoSkip(const std::vector<Matrix>& factors, size_t skip) {
  SOFIA_CHECK_LT(skip, factors.size());
  std::vector<Matrix> rest;
  rest.reserve(factors.size() - 1);
  for (size_t n = 0; n < factors.size(); ++n) {
    if (n != skip) rest.push_back(factors[n]);
  }
  SOFIA_CHECK(!rest.empty());
  return KhatriRaoChain(rest);
}

}  // namespace sofia
