#ifndef SOFIA_TENSOR_SHAPE_H_
#define SOFIA_TENSOR_SHAPE_H_

#include <cstddef>
#include <string>
#include <vector>

/// \file shape.hpp
/// \brief Tensor shapes and multi-index <-> linear-index conversion.
///
/// Linearization follows the tensor-literature (Kolda) convention: the
/// *first* mode index varies fastest. With this layout, the mode-n unfolding
/// of the paper's Section III-A maps element (i_1,...,i_N) to row i_n and
/// column sum_{k != n} i_k * J_k with J_k = prod_{m<k, m != n} I_m, and the
/// Kruskal/Khatri-Rao identities hold with the paper's product order
/// `U^(N) (kr) ... (kr) U^(1)`.

namespace sofia {

/// Dimensions of an N-way tensor plus cached strides.
class Shape {
 public:
  Shape() = default;
  explicit Shape(std::vector<size_t> dims);

  size_t order() const { return dims_.size(); }
  size_t dim(size_t n) const { return dims_[n]; }
  const std::vector<size_t>& dims() const { return dims_; }

  /// Total number of entries (product of dims; 0 for empty shapes).
  size_t NumElements() const { return num_elements_; }

  /// Stride of mode n in the linearization (mode 0 has stride 1).
  size_t stride(size_t n) const { return strides_[n]; }

  /// Linear index of a multi-index (bounds DCHECKed).
  size_t Linearize(const std::vector<size_t>& idx) const;

  /// Multi-index of a linear index.
  std::vector<size_t> Delinearize(size_t linear) const;

  /// In-place variant of Delinearize (avoids allocation in hot loops).
  void DelinearizeInto(size_t linear, std::vector<size_t>* idx) const;

  /// Advance a multi-index by one in linearization order; returns false when
  /// the iteration wraps past the last element.
  bool Next(std::vector<size_t>* idx) const;

  /// Shape with mode n removed (the shape of a temporal slice when n is the
  /// temporal mode).
  Shape RemoveMode(size_t n) const;

  /// Shape with an extra trailing mode of length `len` appended.
  Shape AppendMode(size_t len) const;

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  /// e.g. "30x30x90".
  std::string ToString() const;

 private:
  std::vector<size_t> dims_;
  std::vector<size_t> strides_;
  size_t num_elements_ = 0;
};

}  // namespace sofia

#endif  // SOFIA_TENSOR_SHAPE_H_
