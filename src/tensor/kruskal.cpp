#include "tensor/kruskal.hpp"

#include "tensor/khatri_rao.hpp"
#include "util/check.hpp"

namespace sofia {

namespace {

Shape FactorShape(const std::vector<Matrix>& factors) {
  SOFIA_CHECK(!factors.empty());
  std::vector<size_t> dims(factors.size());
  for (size_t n = 0; n < factors.size(); ++n) {
    SOFIA_CHECK_EQ(factors[n].cols(), factors[0].cols());
    dims[n] = factors[n].rows();
  }
  return Shape(dims);
}

/// Shared core of KruskalTensor / KruskalSlice: with the mode-1 unfolding
/// identity X_(1) = U^(1) W (kr-chain of the remaining modes)^T and the
/// library's first-mode-fastest linearization, out[j * I_1 + i] is the dot
/// product of U^(1) row i and chain row j — two contiguous R-vectors. The
/// optional `weights` scale each rank-1 component (the temporal row of a
/// slice reconstruction).
DenseTensor KruskalFromChain(const std::vector<Matrix>& factors,
                             const double* weights) {
  const Shape shape = FactorShape(factors);
  const size_t rank = factors[0].cols();
  DenseTensor out(shape);
  const Matrix& u1 = factors[0];
  const size_t i1 = u1.rows();

  Matrix chain;
  if (factors.size() > 1) {
    chain = KhatriRaoSkip(factors, 0);
  } else {
    chain = Matrix(1, rank, 1.0);
  }
  std::vector<double> wrow(rank);
  for (size_t j = 0; j < chain.rows(); ++j) {
    const double* krow = chain.Row(j);
    if (weights != nullptr) {
      for (size_t r = 0; r < rank; ++r) wrow[r] = weights[r] * krow[r];
      krow = wrow.data();
    }
    double* block = out.data() + j * i1;
    for (size_t i = 0; i < i1; ++i) {
      const double* urow = u1.Row(i);
      double v = 0.0;
      for (size_t r = 0; r < rank; ++r) v += urow[r] * krow[r];
      block[i] = v;
    }
  }
  return out;
}

}  // namespace

DenseTensor KruskalTensor(const std::vector<Matrix>& factors) {
  return KruskalFromChain(factors, nullptr);
}

DenseTensor KruskalSlice(const std::vector<Matrix>& factors,
                         const std::vector<double>& temporal_row) {
  SOFIA_CHECK_EQ(temporal_row.size(), factors[0].cols());
  return KruskalFromChain(factors, temporal_row.data());
}

double KruskalSliceEntry(const std::vector<Matrix>& factors,
                         const std::vector<double>& temporal_row,
                         const std::vector<size_t>& idx) {
  const size_t rank = factors[0].cols();
  SOFIA_DCHECK(idx.size() == factors.size());
  double v = 0.0;
  for (size_t r = 0; r < rank; ++r) {
    double p = temporal_row[r];
    for (size_t n = 0; n < factors.size(); ++n) p *= factors[n](idx[n], r);
    v += p;
  }
  return v;
}

double KruskalEntry(const std::vector<Matrix>& factors,
                    const std::vector<size_t>& idx) {
  const size_t rank = factors[0].cols();
  SOFIA_DCHECK(idx.size() == factors.size());
  double v = 0.0;
  for (size_t r = 0; r < rank; ++r) {
    double p = 1.0;
    for (size_t n = 0; n < factors.size(); ++n) p *= factors[n](idx[n], r);
    v += p;
  }
  return v;
}

}  // namespace sofia
