#include "tensor/kruskal.hpp"

#include "util/check.hpp"

namespace sofia {

namespace {

Shape FactorShape(const std::vector<Matrix>& factors) {
  SOFIA_CHECK(!factors.empty());
  std::vector<size_t> dims(factors.size());
  for (size_t n = 0; n < factors.size(); ++n) {
    SOFIA_CHECK_EQ(factors[n].cols(), factors[0].cols());
    dims[n] = factors[n].rows();
  }
  return Shape(dims);
}

}  // namespace

DenseTensor KruskalTensor(const std::vector<Matrix>& factors) {
  const Shape shape = FactorShape(factors);
  const size_t rank = factors[0].cols();
  DenseTensor out(shape);
  std::vector<size_t> idx(shape.order(), 0);
  std::vector<double> partial(rank);
  for (size_t linear = 0; linear < shape.NumElements(); ++linear) {
    double v = 0.0;
    for (size_t r = 0; r < rank; ++r) {
      double p = 1.0;
      for (size_t n = 0; n < factors.size(); ++n) p *= factors[n](idx[n], r);
      v += p;
    }
    out[linear] = v;
    shape.Next(&idx);
  }
  return out;
}

DenseTensor KruskalSlice(const std::vector<Matrix>& factors,
                         const std::vector<double>& temporal_row) {
  const Shape shape = FactorShape(factors);
  const size_t rank = factors[0].cols();
  SOFIA_CHECK_EQ(temporal_row.size(), rank);
  DenseTensor out(shape);
  std::vector<size_t> idx(shape.order(), 0);
  for (size_t linear = 0; linear < shape.NumElements(); ++linear) {
    double v = 0.0;
    for (size_t r = 0; r < rank; ++r) {
      double p = temporal_row[r];
      for (size_t n = 0; n < factors.size(); ++n) p *= factors[n](idx[n], r);
      v += p;
    }
    out[linear] = v;
    shape.Next(&idx);
  }
  return out;
}

double KruskalSliceEntry(const std::vector<Matrix>& factors,
                         const std::vector<double>& temporal_row,
                         const std::vector<size_t>& idx) {
  const size_t rank = factors[0].cols();
  SOFIA_DCHECK(idx.size() == factors.size());
  double v = 0.0;
  for (size_t r = 0; r < rank; ++r) {
    double p = temporal_row[r];
    for (size_t n = 0; n < factors.size(); ++n) p *= factors[n](idx[n], r);
    v += p;
  }
  return v;
}

double KruskalEntry(const std::vector<Matrix>& factors,
                    const std::vector<size_t>& idx) {
  const size_t rank = factors[0].cols();
  SOFIA_DCHECK(idx.size() == factors.size());
  double v = 0.0;
  for (size_t r = 0; r < rank; ++r) {
    double p = 1.0;
    for (size_t n = 0; n < factors.size(); ++n) p *= factors[n](idx[n], r);
    v += p;
  }
  return v;
}

}  // namespace sofia
