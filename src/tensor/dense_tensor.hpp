#ifndef SOFIA_TENSOR_DENSE_TENSOR_H_
#define SOFIA_TENSOR_DENSE_TENSOR_H_

#include <memory>
#include <vector>

#include "tensor/shape.hpp"

/// \file dense_tensor.hpp
/// \brief N-way dense tensor of doubles (the `X`, `Y`, `O` of the paper).

namespace sofia {

class Rng;

/// Dense tensor with Kolda-style (first index fastest) linearization.
class DenseTensor {
 public:
  DenseTensor() = default;
  explicit DenseTensor(Shape shape, double fill = 0.0);

  const Shape& shape() const { return shape_; }
  size_t order() const { return shape_.order(); }
  size_t dim(size_t n) const { return shape_.dim(n); }
  size_t NumElements() const { return shape_.NumElements(); }

  double& operator[](size_t linear) { return data_[linear]; }
  double operator[](size_t linear) const { return data_[linear]; }

  double& At(const std::vector<size_t>& idx) {
    return data_[shape_.Linearize(idx)];
  }
  double At(const std::vector<size_t>& idx) const {
    return data_[shape_.Linearize(idx)];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  void Fill(double v);

  /// Element-wise arithmetic; shapes must match.
  DenseTensor& operator+=(const DenseTensor& other);
  DenseTensor& operator-=(const DenseTensor& other);
  DenseTensor& operator*=(double s);
  friend DenseTensor operator+(DenseTensor a, const DenseTensor& b) {
    return a += b;
  }
  friend DenseTensor operator-(DenseTensor a, const DenseTensor& b) {
    return a -= b;
  }

  double FrobeniusNorm() const;
  double SquaredFrobeniusNorm() const;
  /// Largest |entry|; 0 for empty tensors.
  double MaxAbs() const;
  /// Number of entries with |entry| > tol.
  size_t CountNonZero(double tol = 0.0) const;

  /// i.i.d. Normal(0, stddev) entries.
  static DenseTensor RandomNormal(const Shape& shape, Rng& rng,
                                  double stddev = 1.0);

  /// Concatenate (N-1)-way slices along a new trailing temporal mode. All
  /// slices must share a shape; the result has order N.
  static DenseTensor StackSlices(const std::vector<DenseTensor>& slices);
  /// StackSlices over shared slices (one copy into the stack, none to
  /// adapt the container) — for consumers that hold their history through
  /// shared_ptr so lazy views can reference it (CPHW).
  static DenseTensor StackSlices(
      const std::vector<std::shared_ptr<const DenseTensor>>& slices);

  /// Extract the t-th slice of the trailing mode as an (N-1)-way tensor.
  DenseTensor SliceLastMode(size_t t) const;

 private:
  Shape shape_;
  std::vector<double> data_;
};

}  // namespace sofia

#endif  // SOFIA_TENSOR_DENSE_TENSOR_H_
