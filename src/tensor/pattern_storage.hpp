#ifndef SOFIA_TENSOR_PATTERN_STORAGE_H_
#define SOFIA_TENSOR_PATTERN_STORAGE_H_

#include <string>

#include "util/check.hpp"

/// \file pattern_storage.hpp
/// \brief Selector for the observed-entry storage backend of a step pattern.

namespace sofia {

/// Which sparse representation the per-step kernels traverse.
///
/// `kCoo` is the flat coordinate list of tensor/coo_list.hpp — the reference
/// backend every kernel is parity-tested against. `kCsf` additionally builds
/// the per-mode compressed-sparse-fiber trees of tensor/csf_tensor.hpp on
/// top of the same CooList and routes the bucketed kernels through the
/// fiber-reuse traversals of tensor/csf_kernels.hpp. The CooList itself is
/// always present (the CSF attaches to it), so mixed consumers — e.g. the
/// bitwise-pinned KruskalSlice-order gathers — keep reading the COO records.
enum class PatternStorage {
  kCoo,
  kCsf,
};

/// "coo" / "csf" — the `--storage=` flag values of the examples and benches.
inline std::string PatternStorageName(PatternStorage storage) {
  return storage == PatternStorage::kCsf ? "csf" : "coo";
}

/// Parse a `--storage=` flag value. Unknown names fail loudly: the flag
/// exists to compare backends, so a typo silently running the default
/// would corrupt the comparison.
inline PatternStorage ParsePatternStorage(const std::string& name) {
  SOFIA_CHECK(name == "coo" || name == "csf")
      << "unknown pattern storage '" << name << "' (expected coo|csf)";
  return name == "csf" ? PatternStorage::kCsf : PatternStorage::kCoo;
}

}  // namespace sofia

#endif  // SOFIA_TENSOR_PATTERN_STORAGE_H_
