#ifndef SOFIA_TENSOR_MASK_H_
#define SOFIA_TENSOR_MASK_H_

#include <cstdint>
#include <vector>

#include "tensor/dense_tensor.hpp"
#include "tensor/shape.hpp"

/// \file mask.hpp
/// \brief Observation indicator tensors (the `Ω` of Definition 3).

namespace sofia {

/// Binary indicator over a tensor shape marking which entries are observed.
class Mask {
 public:
  Mask() = default;
  /// All-observed (if `observed`) or all-missing mask of the given shape.
  explicit Mask(Shape shape, bool observed = true);

  const Shape& shape() const { return shape_; }

  bool Get(size_t linear) const { return bits_[linear] != 0; }
  void Set(size_t linear, bool observed) {
    bits_[linear] = observed ? 1 : 0;
    count_ = kCountUnknown;
    hash_valid_ = false;
  }

  bool At(const std::vector<size_t>& idx) const {
    return Get(shape_.Linearize(idx));
  }

  /// Number of observed entries (|Ω|). Computed once and cached; any Set()
  /// invalidates the cache, so repeated counts on a frozen mask are O(1).
  size_t CountObserved() const;

  /// Fraction of observed entries in [0, 1].
  double ObservedFraction() const;

  /// Linear indices of all observed entries, ascending.
  std::vector<size_t> ObservedIndices() const;

  /// Ω ⊛ T: zero out unobserved entries of a tensor (shape-checked copy).
  DenseTensor Apply(const DenseTensor& t) const;

  /// Frobenius norm of Ω ⊛ T without materializing the product.
  double MaskedFrobeniusNorm(const DenseTensor& t) const;

  /// Stack (N-1)-way masks along a new trailing temporal mode.
  static Mask StackSlices(const std::vector<Mask>& slices);

  /// Slice of the trailing mode (mirrors DenseTensor::SliceLastMode).
  Mask SliceLastMode(size_t t) const;

  /// 64-bit hash of the observed set (FNV-1a over the indicator bytes).
  /// Computed once and cached; any Set() invalidates the cache. Equal masks
  /// always hash equal; unequal masks collide with probability ~2^-64.
  /// The operator== fast path below only fires when *both* sides carry a
  /// cached hash, so producers of long-lived masks should prime it once at
  /// construction time (the corruption stream builders do).
  uint64_t ContentHash() const;

  /// Same shape and same observed set. Two O(1) rejects run before the
  /// element scan whenever both sides carry the corresponding cache:
  /// unequal observed counts (any prior CountObserved() on a frozen mask),
  /// then unequal content hashes (any prior ContentHash()) — so masks that
  /// differ only near the end of the index space, which the count check
  /// cannot separate, still reject without the almost-full byte scan. Only
  /// masks that actually match (or collide, ~2^-64) pay the byte compare.
  bool operator==(const Mask& other) const;
  bool operator!=(const Mask& other) const { return !(*this == other); }

  /// Process-wide count of full byte-scan equality compares (the O(volume)
  /// fallback of operator==). The steady-state streaming loops hold their
  /// mask caches as SparseMask and must keep this flat — test-pinned in
  /// tests/csf_test.cc, mirroring StepResult::materializations().
  static size_t deep_equality_scans();
  static void ResetDeepEqualityScans();

 private:
  /// Sentinel for "observed count not computed yet".
  static constexpr size_t kCountUnknown = static_cast<size_t>(-1);

  Shape shape_;
  std::vector<uint8_t> bits_;
  mutable size_t count_ = kCountUnknown;  ///< CountObserved() cache.
  mutable uint64_t hash_ = 0;             ///< ContentHash() cache.
  mutable bool hash_valid_ = false;
};

}  // namespace sofia

#endif  // SOFIA_TENSOR_MASK_H_
