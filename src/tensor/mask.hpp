#ifndef SOFIA_TENSOR_MASK_H_
#define SOFIA_TENSOR_MASK_H_

#include <cstdint>
#include <vector>

#include "tensor/dense_tensor.hpp"
#include "tensor/shape.hpp"

/// \file mask.hpp
/// \brief Observation indicator tensors (the `Ω` of Definition 3).

namespace sofia {

/// Binary indicator over a tensor shape marking which entries are observed.
class Mask {
 public:
  Mask() = default;
  /// All-observed (if `observed`) or all-missing mask of the given shape.
  explicit Mask(Shape shape, bool observed = true);

  const Shape& shape() const { return shape_; }

  bool Get(size_t linear) const { return bits_[linear] != 0; }
  void Set(size_t linear, bool observed) { bits_[linear] = observed ? 1 : 0; }

  bool At(const std::vector<size_t>& idx) const {
    return Get(shape_.Linearize(idx));
  }

  /// Number of observed entries (|Ω|).
  size_t CountObserved() const;

  /// Fraction of observed entries in [0, 1].
  double ObservedFraction() const;

  /// Linear indices of all observed entries, ascending.
  std::vector<size_t> ObservedIndices() const;

  /// Ω ⊛ T: zero out unobserved entries of a tensor (shape-checked copy).
  DenseTensor Apply(const DenseTensor& t) const;

  /// Frobenius norm of Ω ⊛ T without materializing the product.
  double MaskedFrobeniusNorm(const DenseTensor& t) const;

  /// Stack (N-1)-way masks along a new trailing temporal mode.
  static Mask StackSlices(const std::vector<Mask>& slices);

  /// Slice of the trailing mode (mirrors DenseTensor::SliceLastMode).
  Mask SliceLastMode(size_t t) const;

  /// Same shape and same observed set. Cheap (one memcmp-style pass over the
  /// indicator bytes); lets consumers that cache mask-derived structures
  /// (e.g. the streaming CooList of SofiaModel::Step) detect reuse.
  bool operator==(const Mask& other) const {
    return shape_ == other.shape_ && bits_ == other.bits_;
  }
  bool operator!=(const Mask& other) const { return !(*this == other); }

 private:
  Shape shape_;
  std::vector<uint8_t> bits_;
};

}  // namespace sofia

#endif  // SOFIA_TENSOR_MASK_H_
