#ifndef SOFIA_TENSOR_MASK_H_
#define SOFIA_TENSOR_MASK_H_

#include <cstdint>
#include <vector>

#include "tensor/dense_tensor.hpp"
#include "tensor/shape.hpp"

/// \file mask.hpp
/// \brief Observation indicator tensors (the `Ω` of Definition 3).

namespace sofia {

/// Binary indicator over a tensor shape marking which entries are observed.
class Mask {
 public:
  Mask() = default;
  /// All-observed (if `observed`) or all-missing mask of the given shape.
  explicit Mask(Shape shape, bool observed = true);

  const Shape& shape() const { return shape_; }

  bool Get(size_t linear) const { return bits_[linear] != 0; }
  void Set(size_t linear, bool observed) {
    bits_[linear] = observed ? 1 : 0;
    count_ = kCountUnknown;
  }

  bool At(const std::vector<size_t>& idx) const {
    return Get(shape_.Linearize(idx));
  }

  /// Number of observed entries (|Ω|). Computed once and cached; any Set()
  /// invalidates the cache, so repeated counts on a frozen mask are O(1).
  size_t CountObserved() const;

  /// Fraction of observed entries in [0, 1].
  double ObservedFraction() const;

  /// Linear indices of all observed entries, ascending.
  std::vector<size_t> ObservedIndices() const;

  /// Ω ⊛ T: zero out unobserved entries of a tensor (shape-checked copy).
  DenseTensor Apply(const DenseTensor& t) const;

  /// Frobenius norm of Ω ⊛ T without materializing the product.
  double MaskedFrobeniusNorm(const DenseTensor& t) const;

  /// Stack (N-1)-way masks along a new trailing temporal mode.
  static Mask StackSlices(const std::vector<Mask>& slices);

  /// Slice of the trailing mode (mirrors DenseTensor::SliceLastMode).
  Mask SliceLastMode(size_t t) const;

  /// Same shape and same observed set. When both sides carry a cached
  /// observed count (any prior CountObserved() on a frozen mask), unequal
  /// counts reject in O(1) before the element scan — so the mask-reuse
  /// caches (SofiaModel::Step, ObservedSweep::BeginStep, the comparison
  /// runner) pay the byte compare only for masks that could actually match.
  bool operator==(const Mask& other) const {
    if (!(shape_ == other.shape_)) return false;
    if (count_ != kCountUnknown && other.count_ != kCountUnknown &&
        count_ != other.count_) {
      return false;
    }
    return bits_ == other.bits_;
  }
  bool operator!=(const Mask& other) const { return !(*this == other); }

 private:
  /// Sentinel for "observed count not computed yet".
  static constexpr size_t kCountUnknown = static_cast<size_t>(-1);

  Shape shape_;
  std::vector<uint8_t> bits_;
  mutable size_t count_ = kCountUnknown;  ///< CountObserved() cache.
};

}  // namespace sofia

#endif  // SOFIA_TENSOR_MASK_H_
