#ifndef SOFIA_TENSOR_CSF_KERNELS_H_
#define SOFIA_TENSOR_CSF_KERNELS_H_

#include <vector>

#include "linalg/matrix.hpp"
#include "tensor/csf_tensor.hpp"
#include "tensor/sparse_kernels.hpp"
#include "util/parallel.hpp"

/// \file csf_kernels.hpp
/// \brief Fiber-tree (CSF) versions of the observed-entry kernels.
///
/// Same contracts as the Coo* kernels of tensor/sparse_kernels.hpp — same
/// result structs, record-aligned `values`/`residuals` arrays shared with
/// the CooList the CsfTensor was built from — but the traversal walks the
/// per-mode fiber trees and reuses partial Hadamard products along shared
/// fibers: an internal node's row product is computed once and reused by
/// every leaf below it, instead of once per observed entry.
///
/// Determinism: every kernel partitions work into root-node tasks or
/// fixed-size root slabs of the target tree (owner-per-fiber-slab — a root
/// node owns its output row and its subtree's leaves), and reductions
/// combine slab partials in slab order, so results are bitwise identical
/// for every thread count. Against the Coo backend the kernels agree to
/// floating-point reassociation (≤1e-12, tests/csf_test.cc): the fiber
/// traversal multiplies factor rows in tree-level order (descending mode
/// index — the fiber grouping order) and hoists partial sums per fiber,
/// both of which regroup the Coo kernels' per-record arithmetic.

namespace sofia {

/// MTTKRP over observed entries via the mode-rooted fiber tree: row i of
/// the result accumulates Σ values·(⊛ other rows) with the inner sums
/// hoisted per fiber. Contract of CooMttkrp.
Matrix CsfMttkrp(const CsfTensor& csf, const std::vector<double>& values,
                 const std::vector<Matrix>& factors, size_t mode,
                 size_t num_threads = 1, WorkerPool* pool = nullptr);

/// Theorem-1 per-row normal equations of one mode (contract of
/// CooRowSystems); the regressor prefix is shared along fibers.
RowSystems CsfRowSystems(const CsfTensor& csf,
                         const std::vector<double>& values,
                         const std::vector<Matrix>& factors, size_t mode,
                         size_t num_threads = 1, WorkerPool* pool = nullptr);

/// CsfRowSystems with the temporal weight folded into the regressor
/// prefix (contract of CooWeightedRowSystems).
RowSystems CsfWeightedRowSystems(const CsfTensor& csf,
                                 const std::vector<double>& values,
                                 const std::vector<Matrix>& factors,
                                 const std::vector<double>& temporal_row,
                                 size_t mode, size_t num_threads = 1,
                                 WorkerPool* pool = nullptr);

/// Fused weighted row systems + proximal row solve (contract of
/// CooProximalRowUpdates; same ProximalRowSolve tail, one task per output
/// row so empty rows run the same short-circuit). `u` may alias
/// `factors[mode]`.
void CsfProximalRowUpdates(const CsfTensor& csf,
                           const std::vector<double>& values,
                           const std::vector<Matrix>& factors,
                           const std::vector<double>& temporal_row,
                           size_t mode, const Matrix& previous, double mu,
                           Matrix* u, size_t num_threads = 1,
                           WorkerPool* pool = nullptr);

/// Slice-global temporal normal equations (contract of CooNormalSystem);
/// fiber-hoisted prefixes, root-slab partials combined in slab order.
NormalSystem CsfNormalSystem(const CsfTensor& csf,
                             const std::vector<double>& values,
                             const std::vector<Matrix>& factors,
                             size_t num_threads = 1,
                             WorkerPool* pool = nullptr);

/// Per-mode gradients + curvature traces (contract of CooModeGradients).
ModeGradients CsfModeGradients(const CsfTensor& csf,
                               const std::vector<double>& residuals,
                               const std::vector<Matrix>& factors,
                               const std::vector<double>& temporal_row,
                               size_t num_threads = 1,
                               WorkerPool* pool = nullptr,
                               bool with_traces = true);

/// Kruskal evaluation at the observed entries, record-aligned (contract of
/// CooKruskalGather). The fiber prefix is shared by every leaf of a fiber.
std::vector<double> CsfKruskalGather(const CsfTensor& csf,
                                     const std::vector<Matrix>& factors,
                                     const std::vector<double>& temporal_row,
                                     size_t num_threads = 1,
                                     WorkerPool* pool = nullptr);
void CsfKruskalGather(const CsfTensor& csf,
                      const std::vector<Matrix>& factors,
                      const std::vector<double>& temporal_row,
                      std::vector<double>* out, size_t num_threads = 1,
                      WorkerPool* pool = nullptr);

/// The Algorithm-3 per-step accumulation (contract of CooStepGradients):
/// per-mode gradient rows via the mode-rooted trees plus the temporal
/// gradient/trace via a fiber-hoisted reduction over the mode-0 tree.
StepGradients CsfStepGradients(const CsfTensor& csf,
                               const std::vector<double>& residuals,
                               const std::vector<Matrix>& factors,
                               const std::vector<double>& temporal_row,
                               size_t num_threads = 1,
                               WorkerPool* pool = nullptr);

}  // namespace sofia

#endif  // SOFIA_TENSOR_CSF_KERNELS_H_
