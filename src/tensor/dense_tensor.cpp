#include "tensor/dense_tensor.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace sofia {

DenseTensor::DenseTensor(Shape shape, double fill)
    : shape_(std::move(shape)), data_(shape_.NumElements(), fill) {}

void DenseTensor::Fill(double v) { std::fill(data_.begin(), data_.end(), v); }

DenseTensor& DenseTensor::operator+=(const DenseTensor& other) {
  SOFIA_CHECK(shape_ == other.shape_);
  for (size_t k = 0; k < data_.size(); ++k) data_[k] += other.data_[k];
  return *this;
}

DenseTensor& DenseTensor::operator-=(const DenseTensor& other) {
  SOFIA_CHECK(shape_ == other.shape_);
  for (size_t k = 0; k < data_.size(); ++k) data_[k] -= other.data_[k];
  return *this;
}

DenseTensor& DenseTensor::operator*=(double s) {
  for (auto& x : data_) x *= s;
  return *this;
}

double DenseTensor::SquaredFrobeniusNorm() const {
  double s = 0.0;
  for (double x : data_) s += x * x;
  return s;
}

double DenseTensor::FrobeniusNorm() const {
  return std::sqrt(SquaredFrobeniusNorm());
}

double DenseTensor::MaxAbs() const {
  double m = 0.0;
  for (double x : data_) m = std::max(m, std::fabs(x));
  return m;
}

size_t DenseTensor::CountNonZero(double tol) const {
  size_t c = 0;
  for (double x : data_) {
    if (std::fabs(x) > tol) ++c;
  }
  return c;
}

DenseTensor DenseTensor::RandomNormal(const Shape& shape, Rng& rng,
                                      double stddev) {
  DenseTensor t(shape);
  for (auto& x : t.data_) x = rng.Normal(0.0, stddev);
  return t;
}

DenseTensor DenseTensor::StackSlices(const std::vector<DenseTensor>& slices) {
  SOFIA_CHECK(!slices.empty());
  const Shape& slice_shape = slices[0].shape();
  const size_t slice_elems = slice_shape.NumElements();
  DenseTensor out(slice_shape.AppendMode(slices.size()));
  for (size_t t = 0; t < slices.size(); ++t) {
    SOFIA_CHECK(slices[t].shape() == slice_shape);
    std::copy(slices[t].data_.begin(), slices[t].data_.end(),
              out.data_.begin() + t * slice_elems);
  }
  return out;
}

DenseTensor DenseTensor::StackSlices(
    const std::vector<std::shared_ptr<const DenseTensor>>& slices) {
  SOFIA_CHECK(!slices.empty());
  SOFIA_CHECK(slices[0] != nullptr);
  const Shape& slice_shape = slices[0]->shape();
  const size_t slice_elems = slice_shape.NumElements();
  DenseTensor out(slice_shape.AppendMode(slices.size()));
  for (size_t t = 0; t < slices.size(); ++t) {
    SOFIA_CHECK(slices[t] != nullptr);
    SOFIA_CHECK(slices[t]->shape() == slice_shape);
    std::copy(slices[t]->data_.begin(), slices[t]->data_.end(),
              out.data_.begin() + t * slice_elems);
  }
  return out;
}

DenseTensor DenseTensor::SliceLastMode(size_t t) const {
  SOFIA_CHECK_GE(order(), 1u);
  const size_t last = order() - 1;
  SOFIA_CHECK_LT(t, dim(last));
  Shape slice_shape = shape_.RemoveMode(last);
  const size_t slice_elems = slice_shape.NumElements();
  DenseTensor out(slice_shape);
  std::copy(data_.begin() + t * slice_elems,
            data_.begin() + (t + 1) * slice_elems, out.data_.begin());
  return out;
}

}  // namespace sofia
