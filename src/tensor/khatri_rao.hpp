#ifndef SOFIA_TENSOR_KHATRI_RAO_H_
#define SOFIA_TENSOR_KHATRI_RAO_H_

#include <vector>

#include "linalg/matrix.hpp"

/// \file khatri_rao.hpp
/// \brief Khatri-Rao (column-wise Kronecker) products, Eq. (1).

namespace sofia {

/// `a (kr) b` per Eq. (1): result is (I*J) x R with
/// (a (kr) b)(i*J + j, r) = a(i, r) * b(j, r). Column counts must match.
Matrix KhatriRao(const Matrix& a, const Matrix& b);

/// Chain product `U^(N) (kr) ... (kr) U^(1)` for factors given in mode order
/// [U^(1), ..., U^(N)]. The mode-1 index varies fastest in the result rows,
/// matching the unfolding convention of unfold.hpp.
Matrix KhatriRaoChain(const std::vector<Matrix>& factors);

/// Chain product over all factors except mode `skip`; the factor order is the
/// one required by the CP identity `X_(n) = U^(n) * KhatriRaoSkip(U, n)^T`.
Matrix KhatriRaoSkip(const std::vector<Matrix>& factors, size_t skip);

}  // namespace sofia

#endif  // SOFIA_TENSOR_KHATRI_RAO_H_
