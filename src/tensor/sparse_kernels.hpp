#ifndef SOFIA_TENSOR_SPARSE_KERNELS_H_
#define SOFIA_TENSOR_SPARSE_KERNELS_H_

#include <vector>

#include "linalg/matrix.hpp"
#include "tensor/coo_list.hpp"
#include "tensor/dense_tensor.hpp"
#include "tensor/mask.hpp"
#include "util/parallel.hpp"

/// \file sparse_kernels.hpp
/// \brief Observed-entry (COO-driven) versions of the hot ALS kernels, plus
/// their dense-scan reference implementations.
///
/// The COO kernels realize the complexity claims of Lemmas 1-2: they touch
/// only the |Ω| records of a prebuilt CooList instead of rescanning the full
/// dense index space once per mode per sweep. All of them parallelize over
/// disjoint work units (mode slices, or fixed-size record blocks for the
/// reductions) so results are bitwise identical for every `num_threads`:
/// only the assignment of units to threads varies, never the accumulation
/// order within a unit or the order units are combined in.
///
/// `values` arguments are record-aligned (see CooList::Gather); passing the
/// gathered y* = y - o of Theorem 1 yields the paper's robust updates.

namespace sofia {

/// Per-row normal equations of Theorem 1 for one mode: B[i] = Σ h h^T and
/// c[i] = Σ y* h over the observed entries of row i, where h is the
/// Hadamard product of the other modes' factor rows.
struct RowSystems {
  std::vector<Matrix> b;               // One R x R matrix per row.
  std::vector<std::vector<double>> c;  // One R vector per row.
};

/// Slice-global normal equations: B = Σ h h^T and c = Σ values[k] h over all
/// observed entries, with h the full Hadamard product of the factor rows at
/// the entry. This is the regressor system of every baseline's temporal-row
/// solve (see baselines/common.hpp's SolveTemporalRow).
struct NormalSystem {
  Matrix b;
  std::vector<double> c;
};

/// Per-mode factor gradients of 0.5 ||Ω ⊛ (Y* - [[factors; w]])||^2 at the
/// current iterate, plus the per-row Gauss-Newton curvature traces used to
/// cap SGD steps — the observed-entry counterpart of baselines/common.hpp's
/// FactorGradients.
struct ModeGradients {
  std::vector<Matrix> row_grads;               ///< One (rows x R) per mode.
  std::vector<std::vector<double>> row_trace;  ///< Σ reg² per mode row.
};

/// MTTKRP over observed entries: row i of the result accumulates
/// values[k] * h_k for every record k in mode-`mode` slice i. Equals
/// MaskedMttkrp on the dense pair the CooList was built from. Requires a
/// CooList built with mode buckets. Callers issuing many kernel calls pass
/// a long-lived `pool` (which overrides `num_threads`) to avoid re-spawning
/// workers per call.
Matrix CooMttkrp(const CooList& coo, const std::vector<double>& values,
                 const std::vector<Matrix>& factors, size_t mode,
                 size_t num_threads = 1, WorkerPool* pool = nullptr);

/// Accumulate the Theorem-1 row systems for `mode` from observed entries.
/// The rank-1 updates touch only the upper triangle of each B and mirror it
/// once per row at the end. Requires a CooList built with mode buckets.
RowSystems CooRowSystems(const CooList& coo, const std::vector<double>& values,
                         const std::vector<Matrix>& factors, size_t mode,
                         size_t num_threads = 1, WorkerPool* pool = nullptr);

/// Accumulate the slice-global temporal normal equations from observed
/// entries: h_k is the Hadamard product over *all* modes' factor rows at
/// record k (multiplied in mode order, matching the dense scan), and the
/// full R x R matrix is accumulated per record in the dense order so the
/// result matches baselines/common.hpp's SolveTemporalRow accumulation.
/// Blocked over fixed-size record ranges with partials combined in block
/// order — bitwise identical for every thread count. Works on bucket-less
/// CooLists.
NormalSystem CooNormalSystem(const CooList& coo,
                             const std::vector<double>& values,
                             const std::vector<Matrix>& factors,
                             size_t num_threads = 1, WorkerPool* pool = nullptr);

/// CooRowSystems with the temporal weight folded into the regressor:
/// h = temporal_row ⊛ (⊛_{l != mode} u^(l)_{i_l}) — the per-row systems of
/// the MAST / OR-MSTC closed-form row updates (baselines/common.hpp's
/// BuildSliceRowSystems). Requires a CooList built with mode buckets.
RowSystems CooWeightedRowSystems(const CooList& coo,
                                 const std::vector<double>& values,
                                 const std::vector<Matrix>& factors,
                                 const std::vector<double>& temporal_row,
                                 size_t mode, size_t num_threads = 1,
                                 WorkerPool* pool = nullptr);

/// Fused CooWeightedRowSystems + proximal row solve: for every row i of
/// `mode`, accumulate B_i = Σ h h^T and c_i = Σ vals h from the row's
/// records and immediately solve u_i <- (B_i + μI)^{-1} (c_i + μ u_i^prev)
/// in stack buffers, writing the rows of `u` in place — the MAST / OR-MSTC
/// closed-form row update (baselines/common.hpp's ApplyProximalRowUpdates,
/// replicated bitwise: empty-system short-circuit, in-place Cholesky,
/// SolveRidge fallback) without materializing the row-system table, whose
/// Σ_n I_n per-sweep heap allocations dominate sparse slices. `u` may alias
/// `factors[mode]`: the regressors only read the *other* modes' rows, and
/// each task owns exactly its output row. Requires mode buckets.
void CooProximalRowUpdates(const CooList& coo,
                           const std::vector<double>& values,
                           const std::vector<Matrix>& factors,
                           const std::vector<double>& temporal_row,
                           size_t mode, const Matrix& previous, double mu,
                           Matrix* u, size_t num_threads = 1,
                           WorkerPool* pool = nullptr);

/// Accumulate every mode's gradient rows and curvature traces from
/// record-aligned residuals: grow[r] += residuals[k] * h_r and
/// trace += h_r² with h = temporal_row ⊛ leave-one-out product — the
/// observed-entry FactorGradients of the SGD-style baselines. One mode
/// slice per task (owner-per-unit), so results are bitwise identical for
/// every thread count. Requires a CooList built with mode buckets.
/// `with_traces = false` skips the curvature accumulation entirely
/// (row_trace stays empty) for consumers that only need gradients.
ModeGradients CooModeGradients(const CooList& coo,
                               const std::vector<double>& residuals,
                               const std::vector<Matrix>& factors,
                               const std::vector<double>& temporal_row,
                               size_t num_threads = 1,
                               WorkerPool* pool = nullptr,
                               bool with_traces = true);

/// ||Ω ⊛ (Y* - X̂)||_F^2 with X̂ = [[factors]], without materializing X̂.
/// `values` holds the gathered Y* entries. Works on bucket-less CooLists.
double CooResidualSquaredNorm(const CooList& coo,
                              const std::vector<double>& values,
                              const std::vector<Matrix>& factors,
                              size_t num_threads = 1,
                              WorkerPool* pool = nullptr);

/// sqrt(CooResidualSquaredNorm(...)).
double CooResidualNorm(const CooList& coo, const std::vector<double>& values,
                       const std::vector<Matrix>& factors,
                       size_t num_threads = 1, WorkerPool* pool = nullptr);

/// Gather of the Kruskal slice [[{factors}; temporal_row]] at the observed
/// entries: out[k] = sum_r temporal_row[r] * prod_l factors[l](i_l, r) for
/// every record k — the Eq. (20) forecast evaluated only on Ω_t. Blocked
/// over records; each record's value is independent of the partition, so
/// results are bitwise identical for every thread count.
std::vector<double> CooKruskalGather(const CooList& coo,
                                     const std::vector<Matrix>& factors,
                                     const std::vector<double>& temporal_row,
                                     size_t num_threads = 1,
                                     WorkerPool* pool = nullptr);

/// CooKruskalGather variant that replicates the KruskalSlice (Khatri-Rao
/// chain) evaluation order bitwise: out[k] = Σ_r u^(0)_r (w_r ((u^(N-1) ⊛
/// u^(N-2)) ⊛ ... ⊛ u^(1))_r). Use when a dense reference path thresholds a
/// materialized KruskalSlice residual (e.g. OR-MSTC's outlier slab), so the
/// sparse path reproduces the exact same bits at the observed entries.
std::vector<double> CooKruskalSliceGather(const CooList& coo,
                                          const std::vector<Matrix>& factors,
                                          const std::vector<double>& temporal_row,
                                          size_t num_threads = 1,
                                          WorkerPool* pool = nullptr);

/// CooKruskalSliceGather into a caller-owned buffer (resized to nnz): hot
/// per-step consumers (OR-MSTC's slab loop, the lazy StepResult gathers of
/// the eval protocols) reuse one scratch vector across steps instead of
/// allocating a fresh result per call.
void CooKruskalSliceGather(const CooList& coo,
                           const std::vector<Matrix>& factors,
                           const std::vector<double>& temporal_row,
                           std::vector<double>* out, size_t num_threads = 1,
                           WorkerPool* pool = nullptr);

/// Everything the dynamic update (Algorithm 3 lines 7-9) accumulates over
/// the observed entries of one incoming slice: per-row gradients of the
/// non-temporal factors (Eq. (24)), the data gradient of the temporal row
/// (Eq. (25)), and the Gauss-Newton curvature traces that drive the
/// normalized-step cap (see SofiaConfig::normalized_step).
struct StepGradients {
  std::vector<Matrix> row_grads;  ///< One (rows x R) gradient per mode.
  std::vector<std::vector<double>> row_trace;  ///< tr(H_row) per mode row.
  std::vector<double> temporal_grad;           ///< Length R.
  double temporal_trace = 0.0;                 ///< tr(H) of the row solve.
};

/// Accumulate StepGradients from a slice CooList (`factors` are the
/// non-temporal factor matrices; `residuals` holds the record-aligned
/// Ω ⊛ (Y - O - Ŷ) values). One O(|Ω_t| N R) pass per mode plus a blocked
/// reduction for the temporal terms — Lemma 2's per-step cost. Row blocks
/// are owned by mode slices and the reduction combines fixed-size record
/// blocks in order, so results are bitwise identical for every thread
/// count. Requires a CooList built with mode buckets.
StepGradients CooStepGradients(const CooList& coo,
                               const std::vector<double>& residuals,
                               const std::vector<Matrix>& factors,
                               const std::vector<double>& temporal_row,
                               size_t num_threads = 1,
                               WorkerPool* pool = nullptr);

/// Dense-scan reference for CooStepGradients (and the fallback selected by
/// SofiaConfig::use_sparse_kernels = false): one pass over the full index
/// space with prefix/suffix leave-one-out products, exactly the seed
/// implementation of SofiaModel::Step.
StepGradients DenseStepGradients(const DenseTensor& y, const Mask& omega,
                                 const DenseTensor& outliers,
                                 const DenseTensor& forecast,
                                 const std::vector<Matrix>& factors,
                                 const std::vector<double>& temporal_row);

/// ||values||_2 — e.g. the masked data norm ||Ω ⊛ Y*||_F of the fitness
/// denominator when `values` is a GatherResidual result.
double CooDataNorm(const std::vector<double>& values);

/// Dense-scan reference implementations (and the fallback selected by
/// SofiaConfig::use_sparse_kernels = false). DenseRowSystems also uses the
/// symmetric upper-triangle accumulation.
RowSystems DenseRowSystems(const DenseTensor& y, const Mask& omega,
                           const DenseTensor& o,
                           const std::vector<Matrix>& factors, size_t mode);
double DenseResidualNorm(const DenseTensor& y, const Mask& omega,
                         const DenseTensor& o,
                         const std::vector<Matrix>& factors);
double DenseDataNorm(const DenseTensor& y, const Mask& omega,
                     const DenseTensor& o);

}  // namespace sofia

#endif  // SOFIA_TENSOR_SPARSE_KERNELS_H_
