#ifndef SOFIA_TENSOR_SIMD_H_
#define SOFIA_TENSOR_SIMD_H_

#include <cstddef>
#include <functional>

/// \file simd.hpp
/// \brief Runtime-dispatched AVX2+FMA instantiation of the sparse kernels.
///
/// The hot Coo/Csf kernels split work into per-task lambdas (one mode slice,
/// root node, or record block per task — see sparse_kernels.cpp). Each such
/// body is compiled twice:
///
///  * the *scalar* instantiation — the plain lambda, built under the
///    project-wide flags, bit-identical to the pre-SIMD kernels; and
///  * the *AVX2+FMA* instantiation — the same lambda inlined (flattened)
///    into a `target("avx2,fma")` trampoline, where the explicit Vec4
///    helpers below lower to 256-bit lanes and fused multiply-adds over
///    the rank-blocked inner loops.
///
/// `simd::Select(body)` picks one per kernel call from a process-wide
/// switch that defaults to on when the CPU supports AVX2+FMA. The choice is
/// hoisted out of the task loop, so every task of a call — and hence every
/// thread — runs the same instantiation: the bitwise thread-determinism
/// contract of the kernel layer (owner-per-task writes, fixed combine
/// order) is unaffected by vectorization. Results *between* the two
/// instantiations differ by reassociation/contraction ulps only; the
/// scalar path is the ≤1e-12 parity reference (tests/simd_test.cc).
///
/// Kernels whose outputs are bitwise-pinned against a differently-ordered
/// reference chain (CooKruskalSliceGather vs the dense KruskalSlice fold,
/// CooNormalSystem vs SolveTemporalRow) intentionally stay scalar-only.

#if defined(__GNUC__) && defined(__x86_64__)
#define SOFIA_SIMD_X86 1
#else
#define SOFIA_SIMD_X86 0
#endif

/// Marks the AVX2+FMA trampoline: `flatten` pulls the task body (and its
/// inline callees) into the trampoline so the vectorizer sees the loops
/// under the wider ISA. Out-of-line callees (e.g. ProximalRowSolve) stay
/// calls and keep their scalar code — only the accumulation around them
/// vectorizes.
#if SOFIA_SIMD_X86
#define SOFIA_TARGET_AVX2 __attribute__((target("avx2,fma"), flatten))
#else
#define SOFIA_TARGET_AVX2
#endif

#if defined(__GNUC__) || defined(__clang__)
#define SOFIA_RESTRICT __restrict__
#define SOFIA_ALWAYS_INLINE inline __attribute__((always_inline))
#else
#define SOFIA_RESTRICT
#define SOFIA_ALWAYS_INLINE inline
#endif

namespace sofia::simd {

/// True when this build carries AVX2+FMA instantiations and the CPU
/// executes them (`__builtin_cpu_supports`).
bool Available();

/// Process-wide switch, initialized to Available(). Toggle via SetEnabled
/// (CLI `--simd=on|off`); never enabled beyond Available(). Not
/// synchronized — flip it between runs, not while kernels execute.
bool Enabled();
void SetEnabled(bool enabled);

/// "avx2+fma" when Enabled(), else "scalar" — for bench/CLI banners.
const char* IsaName();

#if SOFIA_SIMD_X86
template <typename Body>
SOFIA_TARGET_AVX2 void RunAvx2(const Body& body, size_t task) {
  body(task);
}
#endif

/// Wraps a kernel task body in the ISA choice. The returned callable
/// borrows `body` — pass it straight to RunTasks within the same full
/// expression; do not store it.
template <typename Body>
std::function<void(size_t)> Select(const Body& body) {
#if SOFIA_SIMD_X86
  if (Enabled()) {
    return [&body](size_t task) { RunAvx2(body, task); };
  }
#endif
  return [&body](size_t task) { body(task); };
}

// ---------------------------------------------------------------------
// Element-wise rank-vector helpers.
//
// GCC fully unrolls the compile-time-rank inner loops and scalarizes the
// rank buffers into individual registers, which defeats its own
// vectorizer inside the AVX2 trampolines (every op compiles to a scalar
// vmulsd/vaddsd on both paths). These helpers make the data-parallel
// shape explicit with GCC vector extensions: four double lanes whose
// element-wise ops lower to two 128-bit SSE2 ops on the default target —
// bit-identical to the plain scalar loops, since the per-element
// multiplies and adds are unchanged and the baseline ISA has no FMA to
// contract into — and to single 256-bit ymm ops (with mul+add contracted
// to vfmadd) once always_inline pulls them into the target("avx2,fma")
// instantiation. Strictly element-wise by design: reductions (curvature
// traces, leaf dot products) stay scalar ascending loops at the call
// sites, so vectorization never reorders a summation. The lanes live
// only in locals (loads/stores spelled as memcpy), so no vector type
// ever crosses a function-call ABI boundary.

#if SOFIA_SIMD_X86
typedef double Vec4 __attribute__((vector_size(32)));
#endif

/// h[r] = v for r in [0, n).
SOFIA_ALWAYS_INLINE void Fill(double* SOFIA_RESTRICT h, size_t n, double v) {
  size_t r = 0;
#if SOFIA_SIMD_X86
  const Vec4 vv = {v, v, v, v};
  const size_t m = n & ~static_cast<size_t>(3);
  for (; r < m; r += 4) __builtin_memcpy(h + r, &vv, sizeof(vv));
#endif
  for (; r < n; ++r) h[r] = v;
}

/// h[r] = a[r].
SOFIA_ALWAYS_INLINE void Copy(double* SOFIA_RESTRICT h,
                              const double* SOFIA_RESTRICT a, size_t n) {
  size_t r = 0;
#if SOFIA_SIMD_X86
  const size_t m = n & ~static_cast<size_t>(3);
  for (; r < m; r += 4) {
    Vec4 x;
    __builtin_memcpy(&x, a + r, sizeof(x));
    __builtin_memcpy(h + r, &x, sizeof(x));
  }
#endif
  for (; r < n; ++r) h[r] = a[r];
}

/// h[r] *= a[r].
SOFIA_ALWAYS_INLINE void MulIn(double* SOFIA_RESTRICT h,
                               const double* SOFIA_RESTRICT a, size_t n) {
  size_t r = 0;
#if SOFIA_SIMD_X86
  const size_t m = n & ~static_cast<size_t>(3);
  for (; r < m; r += 4) {
    Vec4 x, y;
    __builtin_memcpy(&x, h + r, sizeof(x));
    __builtin_memcpy(&y, a + r, sizeof(y));
    x *= y;
    __builtin_memcpy(h + r, &x, sizeof(x));
  }
#endif
  for (; r < n; ++r) h[r] *= a[r];
}

/// out[r] += h[r].
SOFIA_ALWAYS_INLINE void AddIn(double* SOFIA_RESTRICT out,
                               const double* SOFIA_RESTRICT h, size_t n) {
  size_t r = 0;
#if SOFIA_SIMD_X86
  const size_t m = n & ~static_cast<size_t>(3);
  for (; r < m; r += 4) {
    Vec4 x, y;
    __builtin_memcpy(&x, out + r, sizeof(x));
    __builtin_memcpy(&y, h + r, sizeof(y));
    x += y;
    __builtin_memcpy(out + r, &x, sizeof(x));
  }
#endif
  for (; r < n; ++r) out[r] += h[r];
}

/// out[r] += s * h[r] — the axpy shape FMA contraction targets.
SOFIA_ALWAYS_INLINE void MulAddIn(double* SOFIA_RESTRICT out, double s,
                                  const double* SOFIA_RESTRICT h, size_t n) {
  size_t r = 0;
#if SOFIA_SIMD_X86
  const Vec4 sv = {s, s, s, s};
  const size_t m = n & ~static_cast<size_t>(3);
  for (; r < m; r += 4) {
    Vec4 x, y;
    __builtin_memcpy(&x, out + r, sizeof(x));
    __builtin_memcpy(&y, h + r, sizeof(y));
    x += sv * y;
    __builtin_memcpy(out + r, &x, sizeof(x));
  }
#endif
  for (; r < n; ++r) out[r] += s * h[r];
}

/// out[r] = a[r] * b[r].
SOFIA_ALWAYS_INLINE void MulTo(double* SOFIA_RESTRICT out,
                               const double* SOFIA_RESTRICT a,
                               const double* SOFIA_RESTRICT b, size_t n) {
  size_t r = 0;
#if SOFIA_SIMD_X86
  const size_t m = n & ~static_cast<size_t>(3);
  for (; r < m; r += 4) {
    Vec4 x, y;
    __builtin_memcpy(&x, a + r, sizeof(x));
    __builtin_memcpy(&y, b + r, sizeof(y));
    x *= y;
    __builtin_memcpy(out + r, &x, sizeof(x));
  }
#endif
  for (; r < n; ++r) out[r] = a[r] * b[r];
}

/// acc[r] += a[r] * b[r].
SOFIA_ALWAYS_INLINE void MulArrAddIn(double* SOFIA_RESTRICT acc,
                                     const double* SOFIA_RESTRICT a,
                                     const double* SOFIA_RESTRICT b,
                                     size_t n) {
  size_t r = 0;
#if SOFIA_SIMD_X86
  const size_t m = n & ~static_cast<size_t>(3);
  for (; r < m; r += 4) {
    Vec4 x, y, z;
    __builtin_memcpy(&x, acc + r, sizeof(x));
    __builtin_memcpy(&y, a + r, sizeof(y));
    __builtin_memcpy(&z, b + r, sizeof(z));
    x += y * z;
    __builtin_memcpy(acc + r, &x, sizeof(x));
  }
#endif
  for (; r < n; ++r) acc[r] += a[r] * b[r];
}

}  // namespace sofia::simd

#endif  // SOFIA_TENSOR_SIMD_H_
