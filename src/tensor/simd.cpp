#include "tensor/simd.hpp"

namespace sofia::simd {

namespace {

bool Detect() {
#if SOFIA_SIMD_X86
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool& EnabledFlag() {
  static bool enabled = Detect();
  return enabled;
}

}  // namespace

bool Available() { return Detect(); }

bool Enabled() { return EnabledFlag(); }

void SetEnabled(bool enabled) { EnabledFlag() = enabled && Available(); }

const char* IsaName() { return Enabled() ? "avx2+fma" : "scalar"; }

}  // namespace sofia::simd
