#include "tensor/csf_kernels.hpp"

#include "obs/kernel_stats.hpp"

#include <algorithm>

#include "linalg/solve.hpp"
#include "tensor/kernel_dispatch.hpp"
#include "tensor/simd.hpp"
#include "util/check.hpp"

namespace sofia {

namespace {

using kernel::DispatchRank;
using kernel::FactorView;
using kernel::MakeViews;
using kernel::RankBuffer;
using kernel::RankSquareBuffer;
using kernel::ReduceScratch;

/// Root nodes per task in the slab-blocked reductions (normal system,
/// temporal gradient, gathers). Fixed — never derived from the thread
/// count — so the partial-sum tree is identical for every num_threads.
constexpr size_t kRootSlab = 256;

void CheckFactors(const CsfTensor& csf, const std::vector<Matrix>& factors,
                  size_t rank) {
  SOFIA_CHECK_EQ(factors.size(), csf.order());
  for (size_t n = 0; n < factors.size(); ++n) {
    SOFIA_CHECK_EQ(factors[n].rows(), csf.shape().dim(n));
    SOFIA_CHECK_EQ(factors[n].cols(), rank);
  }
}

/// Per-task traversal scratch: one R-vector per tree level (plus the base
/// prefix). Stack storage for the common small (order, rank) pairs.
struct LevelBuffer {
  double* get(size_t doubles) {
    if (doubles <= sizeof(fixed) / sizeof(fixed[0])) return fixed;
    dynamic.resize(doubles);
    return dynamic.data();
  }
  alignas(64) double fixed[5 * 16];  // Up to order-4 trees at rank 16.
  std::vector<double> dynamic;
};

/// Flattened per-level view of one tree: node ids, child offsets, and the
/// row base of the factor matrix this level multiplies — hoisted out of
/// the traversal loops so the inner nests touch only raw pointers.
struct LevelView {
  const uint32_t* ids;
  const size_t* ptr;   // Null at the leaf level.
  const double* fdata;
  size_t fcols;
};

std::vector<LevelView> MakeLevelViews(const CsfTree& t,
                                      const FactorView* views) {
  const size_t order = t.level_mode.size();
  std::vector<LevelView> lv(order);
  for (size_t l = 0; l < order; ++l) {
    const FactorView& f = views[t.level_mode[l]];
    lv[l] = {t.ids[l].data(), l + 1 < order ? t.ptr[l].data() : nullptr,
             f.data, f.cols};
  }
  return lv;
}

// The traversals come in two flavors per kernel family: a compile-time
// nest for the common tree depths (kOrder 1..4 — the template recursion
// unrolls into plain nested loops the compiler inlines and vectorizes) and
// a dynamic-depth fallback for deeper tensors. Both execute the identical
// arithmetic in the identical order, so they are bitwise interchangeable.

// ------------------------------------------------ upward (MTTKRP) walks

/// Adds the subtree sum Σ values · (⊛ rows below the root) into `acc`: an
/// internal node's child sum is computed once and multiplied by the node's
/// row once — the fiber reuse this storage exists for.
template <size_t kR, size_t kLevel, size_t kOrder>
inline void MttkrpSubtreeFixed(const LevelView* lv, const double* values,
                               const uint32_t* record, size_t v, size_t rank,
                               double* levels, double* acc) {
  const size_t R = kR == 0 ? rank : kR;
  const LevelView& L = lv[kLevel];
  const double* row = L.fdata + static_cast<size_t>(L.ids[v]) * L.fcols;
  if constexpr (kLevel + 1 == kOrder) {
    const double val = values[record[v]];
    if (val == 0.0) return;
    simd::MulAddIn(acc, val, row, R);
  } else {
    double* child = levels + (kLevel + 1) * R;
    simd::Fill(child, R, 0.0);
    const size_t end = L.ptr[v + 1];
    for (size_t w = L.ptr[v]; w < end; ++w) {
      MttkrpSubtreeFixed<kR, kLevel + 1, kOrder>(lv, values, record, w, rank,
                                                 levels, child);
    }
    simd::MulArrAddIn(acc, row, child, R);
  }
}

template <size_t kR>
void MttkrpSubtreeDyn(const LevelView* lv, const double* values,
                      const uint32_t* record, size_t l, size_t v,
                      size_t order, size_t rank, double* levels,
                      double* acc) {
  const size_t R = kR == 0 ? rank : kR;
  const LevelView& L = lv[l];
  const double* row = L.fdata + static_cast<size_t>(L.ids[v]) * L.fcols;
  if (l + 1 == order) {
    const double val = values[record[v]];
    if (val == 0.0) return;
    simd::MulAddIn(acc, val, row, R);
    return;
  }
  double* child = levels + (l + 1) * R;
  simd::Fill(child, R, 0.0);
  for (size_t w = L.ptr[v]; w < L.ptr[v + 1]; ++w) {
    MttkrpSubtreeDyn<kR>(lv, values, record, l + 1, w, order, rank, levels,
                         child);
  }
  simd::MulArrAddIn(acc, row, child, R);
}

/// MTTKRP accumulation of one root node into its output row (the root
/// mode's own row is excluded from the product).
template <size_t kR>
inline void MttkrpRoot(const LevelView* lv, const double* values,
                       const uint32_t* record, size_t a, size_t order,
                       size_t rank, double* levels, double* orow) {
  const size_t R = kR == 0 ? rank : kR;
  if (order == 1) {
    const double val = values[record[a]];
    for (size_t r = 0; r < R; ++r) orow[r] += val;
    return;
  }
  const size_t begin = lv[0].ptr[a];
  const size_t end = lv[0].ptr[a + 1];
  switch (order) {
    case 2:
      for (size_t w = begin; w < end; ++w) {
        MttkrpSubtreeFixed<kR, 1, 2>(lv, values, record, w, rank, levels,
                                     orow);
      }
      break;
    case 3:
      for (size_t w = begin; w < end; ++w) {
        MttkrpSubtreeFixed<kR, 1, 3>(lv, values, record, w, rank, levels,
                                     orow);
      }
      break;
    case 4:
      for (size_t w = begin; w < end; ++w) {
        MttkrpSubtreeFixed<kR, 1, 4>(lv, values, record, w, rank, levels,
                                     orow);
      }
      break;
    default:
      for (size_t w = begin; w < end; ++w) {
        MttkrpSubtreeDyn<kR>(lv, values, record, 1, w, order, rank, levels,
                             orow);
      }
  }
}

// ------------------------------------------- downward (prefix) walks

/// Extends `prefix` by the node's factor row at every internal level and
/// hands each leaf the pair (prefix through the leaf's parent, leaf row):
/// consumers form h = prefix ⊛ row in registers instead of a per-leaf
/// round-trip through the scratch buffer. A null row means h = prefix (the
/// order-1 excluded-root degenerate). Per-level products are computed once
/// per fiber node and shared by the whole subtree; rows multiply in
/// tree-level order (the fiber grouping order), a reassociation of the Coo
/// kernels' ascending-mode product (≤1e-12 parity).
template <size_t kR, size_t kLevel, size_t kOrder, typename LeafFn>
inline void PrefixDownFixed(const LevelView* lv, size_t v, size_t rank,
                            const double* prefix, double* levels,
                            const LeafFn& leaf_fn) {
  const size_t R = kR == 0 ? rank : kR;
  const LevelView& L = lv[kLevel];
  const double* row = L.fdata + static_cast<size_t>(L.ids[v]) * L.fcols;
  if constexpr (kLevel + 1 == kOrder) {
    leaf_fn(v, prefix, row);
  } else {
    double* next = levels + (kLevel + 1) * R;
    simd::MulTo(next, prefix, row, R);
    const size_t end = L.ptr[v + 1];
    for (size_t w = L.ptr[v]; w < end; ++w) {
      PrefixDownFixed<kR, kLevel + 1, kOrder>(lv, w, rank, next, levels,
                                              leaf_fn);
    }
  }
}

template <size_t kR, typename LeafFn>
void PrefixDownDyn(const LevelView* lv, size_t l, size_t v, size_t order,
                   size_t rank, const double* prefix, double* levels,
                   const LeafFn& leaf_fn) {
  const size_t R = kR == 0 ? rank : kR;
  const LevelView& L = lv[l];
  const double* row = L.fdata + static_cast<size_t>(L.ids[v]) * L.fcols;
  if (l + 1 == order) {
    leaf_fn(v, prefix, row);
    return;
  }
  double* next = levels + (l + 1) * R;
  simd::MulTo(next, prefix, row, R);
  for (size_t w = L.ptr[v]; w < L.ptr[v + 1]; ++w) {
    PrefixDownDyn<kR>(lv, l + 1, w, order, rank, next, levels, leaf_fn);
  }
}

/// Full walk of one root's subtree with the root row included in the
/// prefix (the global kernels: normal system, gathers, temporal terms).
template <size_t kR, typename LeafFn>
inline void RootIncludedWalk(const LevelView* lv, size_t a, size_t order,
                             size_t rank, const double* base, double* levels,
                             const LeafFn& leaf_fn) {
  switch (order) {
    case 1: PrefixDownFixed<kR, 0, 1>(lv, a, rank, base, levels, leaf_fn);
      break;
    case 2: PrefixDownFixed<kR, 0, 2>(lv, a, rank, base, levels, leaf_fn);
      break;
    case 3: PrefixDownFixed<kR, 0, 3>(lv, a, rank, base, levels, leaf_fn);
      break;
    case 4: PrefixDownFixed<kR, 0, 4>(lv, a, rank, base, levels, leaf_fn);
      break;
    default:
      PrefixDownDyn<kR>(lv, 0, a, order, rank, base, levels, leaf_fn);
  }
}

/// Walk of one root's subtree with the root row excluded — the regressor h
/// of the row-targeted kernels omits the root mode. Order-1 trees have no
/// non-root level: h degenerates to `base` at the root's own leaf.
template <size_t kR, typename LeafFn>
inline void RootExcludedWalk(const LevelView* lv, size_t a, size_t order,
                             size_t rank, const double* base, double* levels,
                             const LeafFn& leaf_fn) {
  if (order == 1) {
    leaf_fn(a, base, /*row=*/nullptr);
    return;
  }
  const size_t begin = lv[0].ptr[a];
  const size_t end = lv[0].ptr[a + 1];
  switch (order) {
    case 2:
      for (size_t w = begin; w < end; ++w) {
        PrefixDownFixed<kR, 1, 2>(lv, w, rank, base, levels, leaf_fn);
      }
      break;
    case 3:
      for (size_t w = begin; w < end; ++w) {
        PrefixDownFixed<kR, 1, 3>(lv, w, rank, base, levels, leaf_fn);
      }
      break;
    case 4:
      for (size_t w = begin; w < end; ++w) {
        PrefixDownFixed<kR, 1, 4>(lv, w, rank, base, levels, leaf_fn);
      }
      break;
    default:
      for (size_t w = begin; w < end; ++w) {
        PrefixDownDyn<kR>(lv, 1, w, order, rank, base, levels, leaf_fn);
      }
  }
}

// ------------------------------------------------------- kernel bodies

template <size_t kR>
void CsfMttkrpImpl(const CsfTensor& csf, const std::vector<double>& values,
                   const std::vector<FactorView>& views, size_t mode,
                   size_t num_threads, WorkerPool* pool, size_t rank,
                   Matrix* out) {
  const CsfTree& t = csf.tree(mode);
  const size_t order = csf.order();
  const std::vector<LevelView> lv = MakeLevelViews(t, views.data());
  const uint32_t* record = t.record.data();
  // One task per root node: each owns exactly its output row.
  auto task = [&](size_t a) {
    const size_t R = kR == 0 ? rank : kR;
    LevelBuffer buf;
    double* levels = buf.get((order + 1) * R);
    MttkrpRoot<kR>(lv.data(), values.data(), record, a, order, rank, levels,
                   out->Row(t.ids[0][a]));
  };
  RunTasks(pool, num_threads, t.num_roots(), simd::Select(task));
}

/// h = prefix ⊛ row, or h = prefix for the null-row degenerate — computed
/// into a stack buffer the compiler keeps in registers.
template <size_t kR>
inline void LeafProduct(const double* prefix, const double* row, size_t rank,
                        double* h) {
  const size_t R = kR == 0 ? rank : kR;
  if (row != nullptr) {
    simd::MulTo(h, prefix, row, R);
  } else {
    simd::Copy(h, prefix, R);
  }
}

/// Rank-1 update of one leaf into a packed [B | c] system — the
/// AccumulateSliceRowSystem leaf step of sparse_kernels on a fiber-shared
/// regressor prefix.
template <size_t kR>
inline void RowSystemLeaf(double ystar, const double* h, size_t rank,
                          double* bdata, double* c) {
  const size_t R = kR == 0 ? rank : kR;
  // c and each triangle row of B are independent accumulators: hoisting
  // the c update out of the row loop changes no sum's order.
  simd::MulAddIn(c, ystar, h, R);
  for (size_t r = 0; r < R; ++r) {
    simd::MulAddIn(bdata + r * R + r, h[r], h + r, R - r);
  }
}

template <size_t kR>
void MirrorUpper(size_t rank, double* bdata) {
  const size_t R = kR == 0 ? rank : kR;
  for (size_t r = 0; r < R; ++r) {
    for (size_t q = r + 1; q < R; ++q) bdata[q * R + r] = bdata[r * R + q];
  }
}

template <size_t kR>
void CsfRowSystemsImpl(const CsfTensor& csf, const std::vector<double>& values,
                       const std::vector<FactorView>& views,
                       const double* weights, size_t mode, size_t num_threads,
                       WorkerPool* pool, size_t rank, RowSystems* sys) {
  const CsfTree& t = csf.tree(mode);
  const size_t order = csf.order();
  const std::vector<LevelView> lv = MakeLevelViews(t, views.data());
  const uint32_t* record = t.record.data();
  auto task = [&](size_t a) {
    const size_t R = kR == 0 ? rank : kR;
    LevelBuffer buf;
    RankBuffer<kR> hbuf;
    double* levels = buf.get((order + 1) * R);
    double* SOFIA_RESTRICT h = hbuf.get(R);
    double* base = levels;
    if (weights != nullptr) {
      simd::Copy(base, weights, R);
    } else {
      simd::Fill(base, R, 1.0);
    }
    const size_t row = t.ids[0][a];
    double* bdata = sys->b[row].data();
    double* c = sys->c[row].data();
    RootExcludedWalk<kR>(
        lv.data(), a, order, rank, base, levels,
        [&](size_t leaf, const double* prefix, const double* frow) {
          LeafProduct<kR>(prefix, frow, rank, h);
          RowSystemLeaf<kR>(values[record[leaf]], h, rank, bdata, c);
        });
    MirrorUpper<kR>(rank, bdata);
  };
  RunTasks(pool, num_threads, t.num_roots(), simd::Select(task));
}

template <size_t kR>
void CsfProximalRowUpdatesImpl(const CsfTensor& csf,
                               const std::vector<double>& values,
                               const std::vector<FactorView>& views,
                               const double* weights, size_t mode,
                               const Matrix& previous, double mu,
                               size_t num_threads, WorkerPool* pool,
                               size_t rank, Matrix* u) {
  const CsfTree& t = csf.tree(mode);
  const size_t order = csf.order();
  const std::vector<LevelView> lv = MakeLevelViews(t, views.data());
  const uint32_t* record = t.record.data();
  const std::vector<uint32_t>& roots = t.ids[0];  // Ascending root ids.
  // One task per output row (not per root node): rows without observations
  // still run the empty-system short-circuit of ProximalRowSolve, exactly
  // like the Coo kernel's one-task-per-slice partition.
  auto task = [&](size_t row) {
    const size_t R = kR == 0 ? rank : kR;
    LevelBuffer buf;
    double* levels = buf.get((order + 1) * R);
    RankBuffer<kR> cbuf, rhsbuf, hbuf;
    RankSquareBuffer<kR> bbuf, abuf;
    double* b = bbuf.get(R);
    double* c = cbuf.get(R);
    double* h = hbuf.get(R);
    for (size_t e = 0; e < R * R; ++e) b[e] = 0.0;
    for (size_t r = 0; r < R; ++r) c[r] = 0.0;
    const auto it = std::lower_bound(roots.begin(), roots.end(),
                                     static_cast<uint32_t>(row));
    if (it != roots.end() && *it == row) {
      const size_t a = static_cast<size_t>(it - roots.begin());
      double* base = levels;
      if (weights != nullptr) {
        simd::Copy(base, weights, R);
      } else {
        simd::Fill(base, R, 1.0);
      }
      RootExcludedWalk<kR>(
          lv.data(), a, order, rank, base, levels,
          [&](size_t leaf, const double* prefix, const double* frow) {
            LeafProduct<kR>(prefix, frow, rank, h);
            RowSystemLeaf<kR>(values[record[leaf]], h, rank, b, c);
          });
      MirrorUpper<kR>(rank, b);
    }
    ProximalRowSolve(b, c, previous.Row(row), mu, R, abuf.get(R),
                     rhsbuf.get(R), u->Row(row));
  };
  RunTasks(pool, num_threads, u->rows(), simd::Select(task));
}

template <size_t kR, bool kTrace>
void CsfModeGradientImpl(const CsfTensor& csf,
                         const std::vector<double>& residuals,
                         const std::vector<FactorView>& views,
                         const double* temporal_row, size_t mode,
                         size_t num_threads, WorkerPool* pool, size_t rank,
                         Matrix* grad, std::vector<double>* trace) {
  const CsfTree& t = csf.tree(mode);
  const size_t order = csf.order();
  const std::vector<LevelView> lv = MakeLevelViews(t, views.data());
  const uint32_t* record = t.record.data();
  auto task = [&](size_t a) {
    const size_t R = kR == 0 ? rank : kR;
    LevelBuffer buf;
    RankBuffer<kR> hbuf;
    double* levels = buf.get((order + 1) * R);
    double* SOFIA_RESTRICT h = hbuf.get(R);
    double* base = levels;
    simd::Copy(base, temporal_row, R);
    const size_t row = t.ids[0][a];
    double* grow = grad->Row(row);
    double tr = 0.0;
    RootExcludedWalk<kR>(
        lv.data(), a, order, rank, base, levels,
        [&](size_t leaf, const double* prefix, const double* frow) {
          LeafProduct<kR>(prefix, frow, rank, h);
          const double resid = residuals[record[leaf]];
          // Trace and gradient accumulate into independent slots, so the
          // loops split (and vectorize) without changing any sum's order.
          if constexpr (kTrace) {
            for (size_t r = 0; r < R; ++r) tr += h[r] * h[r];
          }
          if (resid != 0.0) simd::MulAddIn(grow, resid, h, R);
        });
    if constexpr (kTrace) (*trace)[row] = tr;
  };
  RunTasks(pool, num_threads, t.num_roots(), simd::Select(task));
}

/// Slab-blocked full-product reduction over the mode-0 tree: each slab of
/// root nodes owns a packed partial accumulator, combined in slab order by
/// the caller. `LeafFn(record, h, partial)` accumulates one leaf; h is
/// formed here in a task-scoped buffer (no per-leaf scratch construction).
template <size_t kR, typename LeafFn>
void RootSlabReduce(const CsfTensor& csf, const std::vector<FactorView>& views,
                    const double* base_prefix, size_t num_threads,
                    WorkerPool* pool, size_t rank, size_t partial_stride,
                    double* partials, const LeafFn& leaf_fn) {
  const CsfTree& t = csf.tree(0);
  const size_t order = csf.order();
  const std::vector<LevelView> lv = MakeLevelViews(t, views.data());
  const uint32_t* record = t.record.data();
  const size_t num_slabs = (t.num_roots() + kRootSlab - 1) / kRootSlab;
  auto task = [&](size_t slab) {
    const size_t R = kR == 0 ? rank : kR;
    LevelBuffer buf;
    RankBuffer<kR> hbuf;
    double* levels = buf.get((order + 1) * R);
    double* SOFIA_RESTRICT h = hbuf.get(R);
    double* base = levels;
    simd::Copy(base, base_prefix, R);
    double* out = partials + slab * partial_stride;
    const size_t begin = slab * kRootSlab;
    const size_t end = std::min(begin + kRootSlab, t.num_roots());
    for (size_t a = begin; a < end; ++a) {
      RootIncludedWalk<kR>(
          lv.data(), a, order, rank, base, levels,
          [&](size_t leaf, const double* prefix, const double* frow) {
            LeafProduct<kR>(prefix, frow, rank, h);
            leaf_fn(record[leaf], h, out);
          });
    }
  };
  RunTasks(pool, num_threads, num_slabs, simd::Select(task));
}

template <size_t kR>
void CsfKruskalGatherImpl(const CsfTensor& csf,
                          const std::vector<FactorView>& views,
                          const double* temporal_row, size_t num_threads,
                          WorkerPool* pool, size_t rank,
                          std::vector<double>* out) {
  const CsfTree& t = csf.tree(0);
  const size_t order = csf.order();
  const std::vector<LevelView> lv = MakeLevelViews(t, views.data());
  const uint32_t* record = t.record.data();
  const size_t num_slabs = (t.num_roots() + kRootSlab - 1) / kRootSlab;
  // Slab tasks; every leaf owns its distinct out[record] slot.
  auto task = [&](size_t slab) {
    const size_t R = kR == 0 ? rank : kR;
    LevelBuffer buf;
    double* levels = buf.get((order + 1) * R);
    double* base = levels;
    simd::Copy(base, temporal_row, R);
    const size_t begin = slab * kRootSlab;
    const size_t end = std::min(begin + kRootSlab, t.num_roots());
    double* outp = out->data();
    for (size_t a = begin; a < end; ++a) {
      RootIncludedWalk<kR>(
          lv.data(), a, order, rank, base, levels,
          [&](size_t leaf, const double* prefix, const double* frow) {
            double v = 0.0;
            for (size_t r = 0; r < R; ++r) v += prefix[r] * frow[r];
            outp[record[leaf]] = v;
          });
    }
  };
  RunTasks(pool, num_threads, num_slabs, simd::Select(task));
}

}  // namespace

Matrix CsfMttkrp(const CsfTensor& csf, const std::vector<double>& values,
                 const std::vector<Matrix>& factors, size_t mode,
                 size_t num_threads, WorkerPool* pool) {
  static const obs::KernelStats kStats = obs::MakeKernelStats("csf.mttkrp");
  obs::CountKernel(kStats, csf.nnz(), 2 * (factors.empty() ? 0 : factors[0].cols()) * csf.order());
  SOFIA_CHECK_LT(mode, csf.order());
  SOFIA_CHECK_EQ(values.size(), csf.nnz());
  const size_t rank = factors.empty() ? 0 : factors[0].cols();
  CheckFactors(csf, factors, rank);

  Matrix out(csf.shape().dim(mode), rank, 0.0);
  const std::vector<FactorView> views = MakeViews(factors);
  DispatchRank(rank, [&](auto tag) {
    CsfMttkrpImpl<decltype(tag)::value>(csf, values, views, mode, num_threads,
                                        pool, rank, &out);
  });
  return out;
}

RowSystems CsfRowSystems(const CsfTensor& csf,
                         const std::vector<double>& values,
                         const std::vector<Matrix>& factors, size_t mode,
                         size_t num_threads, WorkerPool* pool) {
  static const obs::KernelStats kStats = obs::MakeKernelStats("csf.row_systems");
  obs::CountKernel(kStats, csf.nnz(), (factors.empty() ? 0 : factors[0].cols()) * (csf.order() + 2 * (factors.empty() ? 0 : factors[0].cols())));
  SOFIA_CHECK_LT(mode, csf.order());
  SOFIA_CHECK_EQ(values.size(), csf.nnz());
  const size_t rank = factors.empty() ? 0 : factors[0].cols();
  CheckFactors(csf, factors, rank);

  RowSystems sys;
  sys.b.assign(csf.shape().dim(mode), Matrix(rank, rank));
  sys.c.assign(csf.shape().dim(mode), std::vector<double>(rank, 0.0));
  const std::vector<FactorView> views = MakeViews(factors);
  DispatchRank(rank, [&](auto tag) {
    CsfRowSystemsImpl<decltype(tag)::value>(csf, values, views,
                                            /*weights=*/nullptr, mode,
                                            num_threads, pool, rank, &sys);
  });
  return sys;
}

RowSystems CsfWeightedRowSystems(const CsfTensor& csf,
                                 const std::vector<double>& values,
                                 const std::vector<Matrix>& factors,
                                 const std::vector<double>& temporal_row,
                                 size_t mode, size_t num_threads,
                                 WorkerPool* pool) {
  SOFIA_CHECK_LT(mode, csf.order());
  SOFIA_CHECK_EQ(values.size(), csf.nnz());
  const size_t rank = factors.empty() ? 0 : factors[0].cols();
  CheckFactors(csf, factors, rank);
  SOFIA_CHECK_EQ(temporal_row.size(), rank);

  RowSystems sys;
  sys.b.assign(csf.shape().dim(mode), Matrix(rank, rank));
  sys.c.assign(csf.shape().dim(mode), std::vector<double>(rank, 0.0));
  const std::vector<FactorView> views = MakeViews(factors);
  DispatchRank(rank, [&](auto tag) {
    CsfRowSystemsImpl<decltype(tag)::value>(csf, values, views,
                                            temporal_row.data(), mode,
                                            num_threads, pool, rank, &sys);
  });
  return sys;
}

void CsfProximalRowUpdates(const CsfTensor& csf,
                           const std::vector<double>& values,
                           const std::vector<Matrix>& factors,
                           const std::vector<double>& temporal_row,
                           size_t mode, const Matrix& previous, double mu,
                           Matrix* u, size_t num_threads, WorkerPool* pool) {
  SOFIA_CHECK_LT(mode, csf.order());
  SOFIA_CHECK_EQ(values.size(), csf.nnz());
  const size_t rank = factors.empty() ? 0 : factors[0].cols();
  CheckFactors(csf, factors, rank);
  SOFIA_CHECK_EQ(temporal_row.size(), rank);
  SOFIA_CHECK_EQ(u->rows(), csf.shape().dim(mode));
  SOFIA_CHECK_EQ(u->cols(), rank);
  SOFIA_CHECK_EQ(previous.rows(), u->rows());
  SOFIA_CHECK_EQ(previous.cols(), rank);

  const std::vector<FactorView> views = MakeViews(factors);
  DispatchRank(rank, [&](auto tag) {
    CsfProximalRowUpdatesImpl<decltype(tag)::value>(
        csf, values, views, temporal_row.data(), mode, previous, mu,
        num_threads, pool, rank, u);
  });
}

NormalSystem CsfNormalSystem(const CsfTensor& csf,
                             const std::vector<double>& values,
                             const std::vector<Matrix>& factors,
                             size_t num_threads, WorkerPool* pool) {
  static const obs::KernelStats kStats = obs::MakeKernelStats("csf.normal_system");
  obs::CountKernel(kStats, csf.nnz(), (factors.empty() ? 0 : factors[0].cols()) * (2 + 2 * (factors.empty() ? 0 : factors[0].cols())));
  SOFIA_CHECK_EQ(values.size(), csf.nnz());
  const size_t rank = factors.empty() ? 0 : factors[0].cols();
  CheckFactors(csf, factors, rank);

  const size_t num_slabs =
      (csf.tree(0).num_roots() + kRootSlab - 1) / kRootSlab;
  const size_t stride = rank * rank + rank;
  ReduceScratch scratch(pool, num_slabs * stride, rank);
  const std::vector<FactorView> views = MakeViews(factors);
  DispatchRank(rank, [&](auto tag) {
    constexpr size_t kR = decltype(tag)::value;
    RootSlabReduce<kR>(
        csf, views, scratch.ones, num_threads, pool, rank, stride,
        scratch.partials,
        [&](uint32_t record, const double* h, double* out) {
          const size_t R = kR == 0 ? rank : kR;
          const double v = values[record];
          // c and each full row of B are independent accumulators:
          // hoisting c out of the row loop changes no sum's order.
          simd::MulAddIn(out + R * R, v, h, R);
          for (size_t r = 0; r < R; ++r) {
            simd::MulAddIn(out + r * R, h[r], h, R);
          }
        });
  });

  NormalSystem sys;
  sys.b = Matrix(rank, rank);
  sys.c.assign(rank, 0.0);
  for (size_t slab = 0; slab < num_slabs; ++slab) {
    const double* out = scratch.partials + slab * stride;
    double* bdata = sys.b.data();
    for (size_t e = 0; e < rank * rank; ++e) bdata[e] += out[e];
    for (size_t r = 0; r < rank; ++r) sys.c[r] += out[rank * rank + r];
  }
  return sys;
}

ModeGradients CsfModeGradients(const CsfTensor& csf,
                               const std::vector<double>& residuals,
                               const std::vector<Matrix>& factors,
                               const std::vector<double>& temporal_row,
                               size_t num_threads, WorkerPool* pool,
                               bool with_traces) {
  SOFIA_CHECK_EQ(residuals.size(), csf.nnz());
  const size_t rank = factors.empty() ? 0 : factors[0].cols();
  CheckFactors(csf, factors, rank);
  SOFIA_CHECK_EQ(temporal_row.size(), rank);

  ModeGradients g;
  g.row_grads.reserve(factors.size());
  g.row_trace.resize(factors.size());
  for (size_t n = 0; n < factors.size(); ++n) {
    g.row_grads.emplace_back(factors[n].rows(), rank, 0.0);
    if (with_traces) g.row_trace[n].assign(factors[n].rows(), 0.0);
  }

  const std::vector<FactorView> views = MakeViews(factors);
  DispatchRank(rank, [&](auto tag) {
    for (size_t mode = 0; mode < factors.size(); ++mode) {
      if (with_traces) {
        CsfModeGradientImpl<decltype(tag)::value, true>(
            csf, residuals, views, temporal_row.data(), mode, num_threads,
            pool, rank, &g.row_grads[mode], &g.row_trace[mode]);
      } else {
        CsfModeGradientImpl<decltype(tag)::value, false>(
            csf, residuals, views, temporal_row.data(), mode, num_threads,
            pool, rank, &g.row_grads[mode], nullptr);
      }
    }
  });
  return g;
}

std::vector<double> CsfKruskalGather(const CsfTensor& csf,
                                     const std::vector<Matrix>& factors,
                                     const std::vector<double>& temporal_row,
                                     size_t num_threads, WorkerPool* pool) {
  std::vector<double> out;
  CsfKruskalGather(csf, factors, temporal_row, &out, num_threads, pool);
  return out;
}

void CsfKruskalGather(const CsfTensor& csf, const std::vector<Matrix>& factors,
                      const std::vector<double>& temporal_row,
                      std::vector<double>* out, size_t num_threads,
                      WorkerPool* pool) {
  static const obs::KernelStats kStats = obs::MakeKernelStats("csf.kruskal_gather");
  obs::CountKernel(kStats, csf.nnz(), 2 * (factors.empty() ? 0 : factors[0].cols()) * csf.order());
  const size_t rank = factors.empty() ? 0 : factors[0].cols();
  CheckFactors(csf, factors, rank);
  SOFIA_CHECK_EQ(temporal_row.size(), rank);

  out->resize(csf.nnz());
  const std::vector<FactorView> views = MakeViews(factors);
  DispatchRank(rank, [&](auto tag) {
    CsfKruskalGatherImpl<decltype(tag)::value>(
        csf, views, temporal_row.data(), num_threads, pool, rank, out);
  });
}

StepGradients CsfStepGradients(const CsfTensor& csf,
                               const std::vector<double>& residuals,
                               const std::vector<Matrix>& factors,
                               const std::vector<double>& temporal_row,
                               size_t num_threads, WorkerPool* pool) {
  static const obs::KernelStats kStats = obs::MakeKernelStats("csf.step_gradients");
  obs::CountKernel(kStats, csf.nnz(), 2 * (factors.empty() ? 0 : factors[0].cols()) * csf.order() * (csf.order() + 1));
  SOFIA_CHECK_EQ(residuals.size(), csf.nnz());
  const size_t rank = factors.empty() ? 0 : factors[0].cols();
  CheckFactors(csf, factors, rank);
  SOFIA_CHECK_EQ(temporal_row.size(), rank);

  StepGradients g;
  g.row_grads.reserve(factors.size());
  g.row_trace.resize(factors.size());
  for (size_t n = 0; n < factors.size(); ++n) {
    g.row_grads.emplace_back(factors[n].rows(), rank, 0.0);
    g.row_trace[n].assign(factors[n].rows(), 0.0);
  }
  g.temporal_grad.assign(rank, 0.0);

  const std::vector<FactorView> views = MakeViews(factors);
  const size_t num_slabs =
      (csf.tree(0).num_roots() + kRootSlab - 1) / kRootSlab;
  const size_t stride = rank + 1;
  ReduceScratch scratch(pool, num_slabs * stride, rank);
  DispatchRank(rank, [&](auto tag) {
    constexpr size_t kR = decltype(tag)::value;
    for (size_t mode = 0; mode < factors.size(); ++mode) {
      CsfModeGradientImpl<kR, true>(csf, residuals, views,
                                    temporal_row.data(), mode, num_threads,
                                    pool, rank, &g.row_grads[mode],
                                    &g.row_trace[mode]);
    }
    // Temporal gradient + trace: full-product reduction over the mode-0
    // tree, slab partials combined in slab order below.
    RootSlabReduce<kR>(
        csf, views, scratch.ones, num_threads, pool, rank, stride,
        scratch.partials,
        [&](uint32_t record, const double* h, double* out) {
          const size_t R = kR == 0 ? rank : kR;
          const double resid = residuals[record];
          // Independent accumulators: split loops, same sums, same order.
          for (size_t r = 0; r < R; ++r) out[R] += h[r] * h[r];
          if (resid != 0.0) simd::MulAddIn(out, resid, h, R);
        });
  });
  for (size_t slab = 0; slab < num_slabs; ++slab) {
    const double* out = scratch.partials + slab * stride;
    for (size_t r = 0; r < rank; ++r) g.temporal_grad[r] += out[r];
    g.temporal_trace += out[rank];
  }
  return g;
}

}  // namespace sofia
