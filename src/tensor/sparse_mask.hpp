#ifndef SOFIA_TENSOR_SPARSE_MASK_H_
#define SOFIA_TENSOR_SPARSE_MASK_H_

#include <cstddef>
#include <vector>

#include "tensor/mask.hpp"
#include "tensor/shape.hpp"

/// \file sparse_mask.hpp
/// \brief Sorted-coordinate observation indicator — the |Ω|-scaling twin of
/// the dense Mask.
///
/// The mask-reuse caches (SofiaModel::Step, ObservedSweep::BeginStep, the
/// comparison runner's per-mask pattern map) only ever ask one question of
/// their cached indicator: "is the incoming mask the same observed set?".
/// Holding the cache as a dense Mask makes that answer an O(volume) byte
/// compare — at 1% observed, ~100× more work than the kernels the cache
/// feeds. A SparseMask stores only the sorted linear indices of the observed
/// entries, so the cache costs O(|Ω|) to store, O(min(|Ω_a|, |Ω_b|)) to
/// compare against another SparseMask, and O(|Ω|) to compare against an
/// incoming dense Mask (given the mask's cached observed count) — never the
/// volume. Conversions to/from Mask and CooList close the loop with the
/// dense layer and the kernel layer.

namespace sofia {

class CooList;

/// Sorted linear indices of the observed entries of a tensor shape.
class SparseMask {
 public:
  /// Empty (shapeless) mask; valid() is false until assigned from a factory.
  SparseMask() = default;

  /// Compact a dense mask: one pass over the index space (the same pass a
  /// CooList build pays); everything afterwards is O(|Ω|).
  static SparseMask FromMask(const Mask& omega);

  /// Adopt already-sorted linear indices — O(|Ω|), no dense scan. This is
  /// how the pattern caches build their indicator from the CooList they
  /// just compacted (CooList::LinearIndices is the same sorted array).
  static SparseMask FromIndices(Shape shape, std::vector<size_t> sorted);

  /// FromIndices over a CooList's record array (copies the indices).
  static SparseMask FromCoo(const CooList& coo);

  /// Whether this mask was produced by a factory (a Shape is attached).
  /// An empty observed set over a real shape is still valid.
  bool valid() const { return shape_.order() > 0; }

  const Shape& shape() const { return shape_; }
  /// |Ω|: number of observed entries.
  size_t nnz() const { return indices_.size(); }
  /// Sorted linear indices of the observed entries (the iteration order).
  const std::vector<size_t>& indices() const { return indices_; }

  /// Inflate back to a dense Mask (O(volume) output, as any densify is).
  Mask ToMask() const;

  /// Same shape and same observed set. Unequal sizes reject in O(1); equal
  /// sizes stop at the first differing index, so the scan is bounded by
  /// O(min(|Ω_a|, |Ω_b|)).
  bool operator==(const SparseMask& other) const {
    return shape_ == other.shape_ && indices_ == other.indices_;
  }
  bool operator!=(const SparseMask& other) const { return !(*this == other); }

  /// Same observed set as the dense mask: the count comparison rules out
  /// extra entries, then the index walk verifies every cached entry is
  /// observed — equal sizes plus containment is equality, and the walk
  /// never touches the volume − |Ω| unobserved entries. O(|Ω|) when
  /// omega's observed count is already cached; a cold mask pays its one
  /// CountObserved() scan here, so stream producers should prime the
  /// cache at generation time (Corrupt() does) to keep steady-state step
  /// loops free of full-index-space work.
  bool Matches(const Mask& omega) const;

  /// Size of the symmetric difference |Ω_a Δ Ω_b| via one merge walk,
  /// O(|Ω_a| + |Ω_b|) — the bitmap-delta telemetry of the pattern caches
  /// (see StreamRunResult::pattern_delta_sizes). Shapes must match.
  size_t DeltaSize(const SparseMask& other) const;

 private:
  Shape shape_;
  std::vector<size_t> indices_;  ///< Sorted ascending, no duplicates.
};

}  // namespace sofia

#endif  // SOFIA_TENSOR_SPARSE_MASK_H_
