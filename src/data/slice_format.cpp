#include "data/slice_format.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/check.hpp"
#include "util/durable_io.hpp"
#include "util/fault_injection.hpp"

namespace sofia {
namespace slicefmt {

namespace {

constexpr uint32_t kFileMagic = 0x4C534653u;    // "SFSL"
constexpr uint32_t kRecordMagic = 0x43455253u;  // "SREC"
constexpr uint32_t kFormatVersion = 1;
// magic + version + order + flags + sequence.
constexpr size_t kHeaderFixedBytes = 4 + 4 + 4 + 4 + 8;
// Record prefix: magic + pad + step + nnz.
constexpr size_t kRecordPrefixBytes = 4 + 4 + 8 + 8;
// Record suffix: crc + pad.
constexpr size_t kRecordSuffixBytes = 4 + 4;

void PutU32(std::string* out, uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  out->append(b, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char b[8];
  std::memcpy(b, &v, 8);
  out->append(b, 8);
}

uint32_t GetU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

/// Full write with fault hooks; on a torn-write decision persists a prefix
/// and throws SimulatedCrash via fault::Crash.
bool WriteAllFd(int fd, const char* data, size_t size, const char* site) {
  if (fault::Enabled()) {
    const fault::Decision decision = fault::OnIo(site, size);
    if (decision.io_error) {
      errno = EIO;
      return false;
    }
    if (decision.crash) {
      if (decision.torn) {
        size_t torn = std::min(decision.torn_bytes, size);
        const char* p = data;
        while (torn > 0) {
          const ssize_t n = ::write(fd, p, torn);
          if (n <= 0) break;
          p += n;
          torn -= static_cast<size_t>(n);
        }
      }
      ::close(fd);
      fault::Crash(site);
    }
  }
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

void EncodeRecord(uint64_t step, const DenseTensor& slice, const Mask& mask,
                  std::string* out) {
  SOFIA_CHECK(slice.shape() == mask.shape())
      << "slice/mask shape mismatch in journal encode";
  out->clear();
  const std::vector<size_t> observed = mask.ObservedIndices();
  PutU32(out, kRecordMagic);
  PutU32(out, 0);  // pad
  PutU64(out, step);
  PutU64(out, observed.size());
  for (const size_t idx : observed) {
    PutU64(out, static_cast<uint64_t>(idx));
    const double v = slice[idx];
    char b[8];
    std::memcpy(b, &v, 8);
    out->append(b, 8);
  }
  PutU32(out, durable::Crc32(out->data(), out->size()));
  PutU32(out, 0);  // pad (keeps the next record 8-byte aligned)
}

SliceFileWriter::~SliceFileWriter() { Close(); }

bool SliceFileWriter::Create(const std::string& path,
                             const Shape& slice_shape, uint64_t sequence) {
  Close();
  if (fault::Enabled()) {
    const fault::Decision decision = fault::OnIo("journal.open", 0);
    if (decision.io_error) {
      errno = EIO;
      return false;
    }
    if (decision.crash) fault::Crash("journal.open");
  }
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) return false;
  path_ = path;
  slice_shape_ = slice_shape;

  std::string header;
  header.reserve(kHeaderFixedBytes + 8 * slice_shape.order() + 8);
  PutU32(&header, kFileMagic);
  PutU32(&header, kFormatVersion);
  PutU32(&header, static_cast<uint32_t>(slice_shape.order()));
  PutU32(&header, 0);  // flags
  PutU64(&header, sequence);
  for (size_t n = 0; n < slice_shape.order(); ++n) {
    PutU64(&header, static_cast<uint64_t>(slice_shape.dim(n)));
  }
  PutU32(&header, durable::Crc32(header.data(), header.size()));
  PutU32(&header, 0);  // pad
  if (!WriteAllFd(fd_, header.data(), header.size(), "journal.append")) {
    const int fd = fd_;
    fd_ = -1;
    ::close(fd);
    ::unlink(path.c_str());
    return false;
  }
  bytes_written_ += header.size();
  return true;
}

bool SliceFileWriter::Append(uint64_t step, const DenseTensor& slice,
                             const Mask& mask) {
  SOFIA_CHECK(fd_ >= 0) << "Append on a closed slice writer";
  SOFIA_CHECK(slice.shape() == slice_shape_)
      << "journal slice shape changed mid-file: expected "
      << slice_shape_.ToString() << " got " << slice.shape().ToString();
  EncodeRecord(step, slice, mask, &scratch_);
  return AppendEncoded(scratch_);
}

bool SliceFileWriter::AppendEncoded(const std::string& encoded) {
  SOFIA_CHECK(fd_ >= 0) << "Append on a closed slice writer";
  if (!WriteAllFd(fd_, encoded.data(), encoded.size(), "journal.append")) {
    Close();
    return false;
  }
  ++records_written_;
  bytes_written_ += encoded.size();
  return true;
}

bool SliceFileWriter::Sync() {
  if (fd_ < 0) return false;
  if (fault::Enabled()) {
    const fault::Decision decision = fault::OnIo("journal.fsync", 0);
    if (decision.io_error) {
      errno = EIO;
      return false;
    }
    if (decision.crash) {
      const int fd = fd_;
      fd_ = -1;
      ::close(fd);
      fault::Crash("journal.fsync");
    }
  }
  if (::fsync(fd_) != 0 && errno != EINVAL && errno != ENOTSUP &&
      errno != EROFS) {
    return false;
  }
  return true;
}

void SliceFileWriter::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

SliceFileReader::~SliceFileReader() { Close(); }

void SliceFileReader::Close() {
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), size_);
  }
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
  buffer_.clear();
  records_.clear();
  truncated_ = false;
}

bool SliceFileReader::Open(const std::string& path, std::string* error) {
  Close();
  const auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = path + ": " + message;
    Close();
    return false;
  };

  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return fail("cannot open");
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return fail("cannot stat");
  }
  size_ = static_cast<size_t>(st.st_size);
  if (size_ > 0) {
    void* map = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map != MAP_FAILED) {
      data_ = static_cast<const char*>(map);
      mapped_ = true;
    } else {
      // Filesystems without mmap (or exotic sandboxes): fall back to a
      // heap buffer; the record views point into it the same way.
      buffer_.resize(size_);
      size_t got = 0;
      while (got < size_) {
        const ssize_t n = ::read(fd, &buffer_[got], size_ - got);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) break;
        got += static_cast<size_t>(n);
      }
      if (got != size_) {
        ::close(fd);
        return fail("short read");
      }
      data_ = buffer_.data();
    }
  }
  ::close(fd);

  // --- Header ---
  if (size_ < kHeaderFixedBytes + 8) return fail("truncated header");
  if (GetU32(data_) != kFileMagic) return fail("bad magic");
  version_ = GetU32(data_ + 4);
  if (version_ != kFormatVersion) {
    return fail("unsupported version " + std::to_string(version_));
  }
  const uint32_t order = GetU32(data_ + 8);
  if (order == 0 || order > 16) return fail("implausible order");
  const size_t header_bytes = kHeaderFixedBytes + 8 * order + 8;
  if (size_ < header_bytes) return fail("truncated header dims");
  if (GetU32(data_ + header_bytes - 8) !=
      durable::Crc32(data_, header_bytes - 8)) {
    return fail("header CRC mismatch");
  }
  std::vector<size_t> dims(order);
  for (uint32_t n = 0; n < order; ++n) {
    const uint64_t d = GetU64(data_ + kHeaderFixedBytes + 8 * n);
    if (d == 0 || d > (1ull << 32)) return fail("implausible dimension");
    dims[n] = static_cast<size_t>(d);
  }
  slice_shape_ = Shape(std::move(dims));
  sequence_ = GetU64(data_ + 16);
  const uint64_t volume = slice_shape_.NumElements();

  // --- Valid-prefix record scan ---
  size_t offset = header_bytes;
  while (offset < size_) {
    if (size_ - offset < kRecordPrefixBytes + kRecordSuffixBytes) break;
    const char* rec = data_ + offset;
    if (GetU32(rec) != kRecordMagic) break;
    const uint64_t nnz = GetU64(rec + 16);
    if (nnz > volume) break;  // Bit-flipped count: cap before sizing.
    const size_t record_bytes =
        kRecordPrefixBytes + static_cast<size_t>(nnz) * sizeof(SliceEntry) +
        kRecordSuffixBytes;
    if (size_ - offset < record_bytes) break;  // Torn tail.
    const size_t crc_offset = record_bytes - kRecordSuffixBytes;
    if (GetU32(rec + crc_offset) != durable::Crc32(rec, crc_offset)) break;
    // Indices must be in range and strictly ascending (canonical form).
    const SliceEntry* entries =
        reinterpret_cast<const SliceEntry*>(rec + kRecordPrefixBytes);
    bool entries_ok = true;
    for (uint64_t k = 0; k < nnz; ++k) {
      if (entries[k].index >= volume ||
          (k > 0 && entries[k].index <= entries[k - 1].index)) {
        entries_ok = false;
        break;
      }
    }
    if (!entries_ok) break;
    SliceRecordView view;
    view.step = GetU64(rec + 8);
    view.entries = entries;
    view.nnz = static_cast<size_t>(nnz);
    records_.push_back(view);
    offset += record_bytes;
  }
  truncated_ = offset != size_;
  return true;
}

void SliceFileReader::Decode(size_t i, DenseTensor* slice,
                             Mask* mask) const {
  SOFIA_CHECK(i < records_.size()) << "slice record index out of range";
  const SliceRecordView& view = records_[i];
  *slice = DenseTensor(slice_shape_, 0.0);
  *mask = Mask(slice_shape_, /*observed=*/false);
  for (size_t k = 0; k < view.nnz; ++k) {
    const size_t idx = static_cast<size_t>(view.entries[k].index);
    (*slice)[idx] = view.entries[k].value;
    mask->Set(idx, true);
  }
}

bool WriteSliceFile(const std::string& path, const TensorStream& stream,
                    uint64_t sequence, std::string* error) {
  const auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = path + ": " + message;
    return false;
  };
  if (stream.slices.empty()) return fail("empty stream");
  if (stream.slices.size() != stream.masks.size()) {
    return fail("slice/mask count mismatch");
  }
  SliceFileWriter writer;
  if (!writer.Create(path, stream.slices[0].shape(), sequence)) {
    return fail("cannot create");
  }
  for (size_t t = 0; t < stream.slices.size(); ++t) {
    if (stream.slices[t].shape() != stream.slices[0].shape()) {
      return fail("slice " + std::to_string(t) + " changes shape");
    }
    if (!writer.Append(t, stream.slices[t], stream.masks[t])) {
      return fail("append failed at slice " + std::to_string(t));
    }
  }
  if (!writer.Sync()) return fail("fsync failed");
  return true;
}

bool ReadSliceFile(const std::string& path, TensorStream* stream,
                   std::string* error) {
  SliceFileReader reader;
  if (!reader.Open(path, error)) return false;
  stream->slices.clear();
  stream->masks.clear();
  stream->slices.reserve(reader.num_records());
  stream->masks.reserve(reader.num_records());
  for (size_t i = 0; i < reader.num_records(); ++i) {
    DenseTensor slice;
    Mask mask;
    reader.Decode(i, &slice, &mask);
    stream->slices.push_back(std::move(slice));
    stream->masks.push_back(std::move(mask));
  }
  return true;
}

}  // namespace slicefmt
}  // namespace sofia
