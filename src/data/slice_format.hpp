#ifndef SOFIA_DATA_SLICE_FORMAT_H_
#define SOFIA_DATA_SLICE_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "data/stream_io.hpp"
#include "tensor/dense_tensor.hpp"
#include "tensor/mask.hpp"
#include "tensor/shape.hpp"

/// \file slice_format.hpp
/// \brief Append-only binary slice files (the write-ahead journal format).
///
/// The durability layer journals every ingested slice before the model sees
/// it, so recovery can replay exactly the inputs the crashed process
/// consumed. CSV is the wrong tool for that: parsing dominates replay, and
/// a torn text tail is ambiguous. This format is designed for the journal's
/// access pattern instead:
///
///  - **Append-only records, each independently CRC-framed.** A crash mid-
///    append leaves a torn final record; the reader validates records
///    front-to-back and exposes exactly the valid prefix — no torn record
///    is ever replayed, and no byte after one is trusted.
///  - **Zero-copy, mmap-friendly layout.** All fields are little-endian and
///    8-byte aligned; observed entries are (u64 linear index, f64 value)
///    pairs readable in place from the mapping — replay decodes straight
///    from the page cache without a parse step.
///  - **Sparse, canonical encoding.** Only observed entries are stored
///    (ascending index order), and decoding zero-fills the rest — so the
///    decoded (slice, mask) pair is a pure function of the record bytes,
///    which is what makes replayed runs bitwise-identical to live ones.
///  - **Versioned file header** carrying the slice shape and the journal
///    sequence number that ties a segment to the snapshot it follows.
///
/// Layout (all integers little-endian):
///
///     file   := file_header record*
///     file_header := magic:u32 version:u32 order:u32 flags:u32
///                    sequence:u64 dim:u64^order crc:u32 pad:u32
///     record := magic:u32 pad:u32 step:u64 nnz:u64
///               (index:u64 value:f64)^nnz crc:u32 pad:u32
///
/// Header/record CRCs are durable::Crc32 over every preceding byte of the
/// header/record respectively.

namespace sofia {
namespace slicefmt {

/// One observed entry, exactly as laid out on disk (16 bytes).
struct SliceEntry {
  uint64_t index;  ///< Linear index into the slice shape.
  double value;
};
static_assert(sizeof(SliceEntry) == 16, "entries must be 16 bytes on disk");

/// A record exposed in place from the file mapping.
struct SliceRecordView {
  uint64_t step = 0;                  ///< Stream step this slice arrived at.
  const SliceEntry* entries = nullptr;  ///< nnz observed entries, ascending.
  size_t nnz = 0;
};

/// Serializes one record (step + observed entries of `slice` under `mask`)
/// into `out` (cleared first). Pure encode — no IO — so the journal can
/// reuse one buffer per append.
void EncodeRecord(uint64_t step, const DenseTensor& slice, const Mask& mask,
                  std::string* out);

/// Append-only writer. Creates the file (truncating any previous content)
/// and writes the header; Append adds one record. Every write consults the
/// fault-injection sites "journal.open" / "journal.append" /
/// "journal.fsync", which is how the crash matrix tears journal tails.
class SliceFileWriter {
 public:
  SliceFileWriter() = default;
  ~SliceFileWriter();
  SliceFileWriter(const SliceFileWriter&) = delete;
  SliceFileWriter& operator=(const SliceFileWriter&) = delete;

  /// Creates `path` with the given slice shape and journal sequence.
  /// Returns false on open/write failure (file is removed).
  bool Create(const std::string& path, const Shape& slice_shape,
              uint64_t sequence);

  /// Appends one record. `mask` selects the entries stored; shape must
  /// match Create's. Returns false on IO failure (the file is closed —
  /// a half-written tail is exactly what the reader's valid-prefix scan
  /// handles).
  bool Append(uint64_t step, const DenseTensor& slice, const Mask& mask);

  /// Appends bytes already produced by EncodeRecord. The durable guard
  /// encodes on the ingest thread (cheap, O(|Ω|)) and ships the bytes to
  /// the ShardExecutor aux lane, where this performs the actual write.
  bool AppendEncoded(const std::string& encoded);

  /// fsyncs the file. Append does NOT sync per record (group commit is the
  /// caller's policy); the durable guard syncs at snapshot boundaries.
  bool Sync();

  void Close();
  bool is_open() const { return fd_ >= 0; }
  uint64_t records_written() const { return records_written_; }
  uint64_t bytes_written() const { return bytes_written_; }

 private:
  int fd_ = -1;
  std::string path_;
  Shape slice_shape_;
  std::string scratch_;  ///< Reused encode buffer.
  uint64_t records_written_ = 0;
  uint64_t bytes_written_ = 0;
};

/// Read-only view of a slice file, mmap'ed when possible (falling back to a
/// heap buffer). Construction validates the header and scans records
/// front-to-back, stopping at the first invalid one: `num_records()` is the
/// valid prefix, `truncated()` reports whether bytes were dropped.
class SliceFileReader {
 public:
  SliceFileReader() = default;
  ~SliceFileReader();
  SliceFileReader(const SliceFileReader&) = delete;
  SliceFileReader& operator=(const SliceFileReader&) = delete;

  /// Opens and validates. Returns false (with `error` filled) only when
  /// the file is unreadable or its header is invalid — torn/corrupt
  /// *records* are not an error, they truncate the valid prefix.
  bool Open(const std::string& path, std::string* error = nullptr);
  void Close();

  const Shape& slice_shape() const { return slice_shape_; }
  uint64_t sequence() const { return sequence_; }
  uint32_t version() const { return version_; }
  size_t num_records() const { return records_.size(); }
  const SliceRecordView& record(size_t i) const { return records_[i]; }
  /// True when the file held bytes past the last valid record (torn tail
  /// or bit rot) that the scan dropped.
  bool truncated() const { return truncated_; }

  /// Materializes record `i` as a zero-filled slice + mask (the canonical
  /// decoded form every consumer — live or replay — sees).
  void Decode(size_t i, DenseTensor* slice, Mask* mask) const;

 private:
  const char* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;    ///< data_ is an mmap (else owned by buffer_).
  std::string buffer_;
  Shape slice_shape_;
  uint64_t sequence_ = 0;
  uint32_t version_ = 0;
  std::vector<SliceRecordView> records_;
  bool truncated_ = false;
};

/// Whole-stream conversions (tools/slice_convert and tests).
/// WriteSliceFile stores every slice of `stream`, steps 0..T-1; fails on IO
/// error or shape mismatch. ReadSliceFile decodes the valid prefix.
bool WriteSliceFile(const std::string& path, const TensorStream& stream,
                    uint64_t sequence = 0, std::string* error = nullptr);
bool ReadSliceFile(const std::string& path, TensorStream* stream,
                   std::string* error = nullptr);

}  // namespace slicefmt
}  // namespace sofia

#endif  // SOFIA_DATA_SLICE_FORMAT_H_
