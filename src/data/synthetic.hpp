#ifndef SOFIA_DATA_SYNTHETIC_H_
#define SOFIA_DATA_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.hpp"
#include "tensor/dense_tensor.hpp"

/// \file synthetic.hpp
/// \brief Synthetic low-rank seasonal tensors (Fig. 2 and Fig. 7 workloads).

namespace sofia {

/// A ground-truth CP tensor together with its generating factors.
struct SyntheticTensor {
  std::vector<Matrix> factors;  ///< Generating factor matrices.
  DenseTensor tensor;           ///< [[U^(1),...,U^(N)]] (plus noise if any).
  size_t period = 0;            ///< Seasonal period of the temporal factor.
};

/// The Fig. 2 workload: an I1 x I2 x T rank-R tensor whose temporal factor
/// columns are `a_r sin((2*pi/m) i + b_r) + c_r` with a_r, c_r ~ U[-2, 2]
/// and b_r ~ U[0, 2*pi]; non-temporal factors are U[0, 1).
SyntheticTensor MakeSinusoidTensor(size_t i1, size_t i2, size_t duration,
                                   size_t rank, size_t period, uint64_t seed);

/// Seasonal temporal factor with harmonics, linear trend, and a smooth AR(1)
/// wander — the temporal column generator shared by the dataset simulators.
std::vector<double> MakeSeasonalSeries(size_t duration, size_t period,
                                       double amplitude, double trend,
                                       double wander, uint64_t seed);

/// The Fig. 7 scalability workload: a stream of I1 x I2 slices over
/// `duration` steps generated from a rank-R seasonal CP model with period m.
/// Returned as ground-truth slices (no corruption).
std::vector<DenseTensor> MakeScalabilityStream(size_t i1, size_t i2,
                                               size_t duration, size_t rank,
                                               size_t period, uint64_t seed);

}  // namespace sofia

#endif  // SOFIA_DATA_SYNTHETIC_H_
