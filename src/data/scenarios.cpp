#include "data/scenarios.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace sofia {

namespace {

// Stage salts: every stochastic stage draws from its own generator so the
// scenarios stay bitwise reproducible from one seed and adding a stage
// never perturbs the others.
constexpr uint64_t kOutageSalt = 0x0a17a6eULL;
constexpr uint64_t kBurstSalt = 0x0b1257ULL;

/// Re-prime the mask caches after post-Corrupt() mutations (the Set()s
/// invalidate them); same rationale as the corruption builders.
void PrimeMaskCaches(CorruptedStream* stream) {
  for (const Mask& m : stream->masks) {
    m.CountObserved();
    m.ContentHash();
  }
}

/// Markov bursty outages: each mode-0 row is an up/down chain; down rows
/// are fully missing. Records the per-step flip counts in `out`.
void ApplyMarkovOutages(ScenarioStream* out, const ScenarioOptions& options,
                       uint64_t seed) {
  CorruptedStream& stream = out->stream;
  SOFIA_CHECK(!stream.slices.empty());
  const Shape& slice_shape = stream.slices[0].shape();
  SOFIA_CHECK_GE(slice_shape.order(), 1u);
  const size_t rows = slice_shape.dim(0);

  Rng rng(seed ^ kOutageSalt);
  std::vector<uint8_t> down(rows, 0);
  std::vector<size_t> idx(slice_shape.order(), 0);
  out->outage_flips.assign(stream.slices.size(), 0);
  for (size_t t = 0; t < stream.slices.size(); ++t) {
    size_t flips = 0;
    bool any_down = false;
    for (size_t i = 0; i < rows; ++i) {
      if (down[i] == 0) {
        if (rng.Bernoulli(options.outage_fail_prob)) {
          down[i] = 1;
          ++flips;
        }
      } else if (rng.Bernoulli(options.outage_recover_prob)) {
        down[i] = 0;
        ++flips;
      }
      any_down = any_down || down[i] != 0;
    }
    out->outage_flips[t] = flips;
    if (!any_down) continue;
    Mask& mask = stream.masks[t];
    idx.assign(slice_shape.order(), 0);
    for (size_t linear = 0; linear < slice_shape.NumElements(); ++linear) {
      if (down[idx[0]] != 0) mask.Set(linear, false);
      slice_shape.Next(&idx);
    }
  }
}

/// Mode-aligned outlier bursts: a row in a burst offsets every observed
/// entry by the burst's ±magnitude for its whole duration.
void ApplyStructuredOutliers(ScenarioStream* out,
                             const ScenarioOptions& options, uint64_t seed) {
  CorruptedStream& stream = out->stream;
  const Shape& slice_shape = stream.slices[0].shape();
  SOFIA_CHECK_GE(slice_shape.order(), 1u);
  const size_t rows = slice_shape.dim(0);
  const double magnitude = options.burst_magnitude * stream.max_abs;

  Rng rng(seed ^ kBurstSalt);
  std::vector<size_t> remaining(rows, 0);
  std::vector<double> offset(rows, 0.0);
  std::vector<size_t> idx(slice_shape.order(), 0);
  for (size_t t = 0; t < stream.slices.size(); ++t) {
    bool any_burst = false;
    for (size_t i = 0; i < rows; ++i) {
      if (remaining[i] == 0 && rng.Bernoulli(options.burst_start_prob)) {
        remaining[i] = options.burst_length;
        offset[i] = rng.Bernoulli(0.5) ? magnitude : -magnitude;
      }
      any_burst = any_burst || remaining[i] > 0;
    }
    if (any_burst) {
      DenseTensor& y = stream.slices[t];
      const Mask& mask = stream.masks[t];
      Mask& outlier = stream.outlier_positions[t];
      idx.assign(slice_shape.order(), 0);
      for (size_t linear = 0; linear < slice_shape.NumElements(); ++linear) {
        if (remaining[idx[0]] > 0) {
          y[linear] += offset[idx[0]];
          // An outlier is only "injected" where it is observable.
          if (mask.Get(linear)) outlier.Set(linear, true);
        }
        slice_shape.Next(&idx);
      }
    }
    for (size_t i = 0; i < rows; ++i) {
      if (remaining[i] > 0) --remaining[i];
    }
  }
}

/// Periodic malformed payloads past the init window, alternating NaN
/// slices (input-validation faults) and huge-but-finite slices
/// (health-watch faults). Only observed entries are poisoned — missing
/// entries never reach a method anyway.
void InjectGarbageSlices(ScenarioStream* out, const ScenarioOptions& options) {
  CorruptedStream& stream = out->stream;
  const double huge =
      options.garbage_magnitude * std::max(stream.max_abs, 1.0);
  bool use_nan = true;
  for (size_t t = options.garbage_offset; t < stream.slices.size();
       t += std::max<size_t>(1, options.garbage_every)) {
    DenseTensor& y = stream.slices[t];
    const Mask& mask = stream.masks[t];
    const double payload =
        use_nan ? std::numeric_limits<double>::quiet_NaN() : huge;
    for (size_t k = 0; k < y.NumElements(); ++k) {
      if (mask.Get(k)) y[k] = payload;
    }
    out->fault_steps.push_back(t);
    use_nan = !use_nan;
  }
}

/// Amplitude regime change on the ground truth itself, from `regime_step`
/// on. The caller scores against the transformed truth.
void ApplyRegimeChange(std::vector<DenseTensor>* truth, size_t regime_step,
                       double amplitude) {
  for (size_t t = regime_step; t < truth->size(); ++t) {
    DenseTensor& slice = (*truth)[t];
    for (size_t k = 0; k < slice.NumElements(); ++k) slice[k] *= amplitude;
  }
}

}  // namespace

const char* ScenarioName(ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::kClean:
      return "clean";
    case ScenarioKind::kBurstyOutage:
      return "bursty-outage";
    case ScenarioKind::kRegimeChange:
      return "regime-change";
    case ScenarioKind::kStructuredOutliers:
      return "structured-outliers";
    case ScenarioKind::kGarbageSlices:
      return "garbage-slices";
    case ScenarioKind::kCombinedStress:
      return "combined-stress";
  }
  return "unknown";
}

ScenarioKind ParseScenario(const std::string& name) {
  for (ScenarioKind kind : ScenarioCatalog()) {
    if (name == ScenarioName(kind)) return kind;
  }
  SOFIA_CHECK(false) << "unknown scenario '" << name
                     << "' (expected clean | bursty-outage | regime-change | "
                        "structured-outliers | garbage-slices | "
                        "combined-stress)";
  return ScenarioKind::kClean;
}

std::vector<ScenarioKind> ScenarioCatalog() {
  return {ScenarioKind::kClean,
          ScenarioKind::kBurstyOutage,
          ScenarioKind::kRegimeChange,
          ScenarioKind::kStructuredOutliers,
          ScenarioKind::kGarbageSlices,
          ScenarioKind::kCombinedStress};
}

ScenarioStream MakeScenario(ScenarioKind kind,
                            const std::vector<DenseTensor>& truth,
                            const ScenarioOptions& options, uint64_t seed) {
  SOFIA_CHECK(!truth.empty());
  ScenarioStream out;
  out.name = ScenarioName(kind);
  out.kind = kind;
  out.truth = truth;

  // Regime change transforms the ground truth itself, before corruption.
  if (kind == ScenarioKind::kRegimeChange ||
      kind == ScenarioKind::kCombinedStress) {
    out.regime_step = std::max<size_t>(
        1, static_cast<size_t>(options.regime_fraction *
                               static_cast<double>(truth.size())));
    ApplyRegimeChange(&out.truth, out.regime_step, options.regime_amplitude);
  }

  // Element-wise substrate. Structured-outlier scenarios replace the
  // i.i.d. outliers with their bursts and keep only the missingness.
  CorruptionSetting element = options.element;
  if (kind == ScenarioKind::kStructuredOutliers ||
      kind == ScenarioKind::kCombinedStress) {
    element.outlier_percent = 0.0;
    element.magnitude = 0.0;
  }
  out.stream = Corrupt(out.truth, element, seed);

  if (kind == ScenarioKind::kBurstyOutage ||
      kind == ScenarioKind::kCombinedStress) {
    ApplyMarkovOutages(&out, options, seed);
  }
  if (kind == ScenarioKind::kStructuredOutliers ||
      kind == ScenarioKind::kCombinedStress) {
    ApplyStructuredOutliers(&out, options, seed);
  }
  if (kind == ScenarioKind::kGarbageSlices ||
      kind == ScenarioKind::kCombinedStress) {
    InjectGarbageSlices(&out, options);
  }

  PrimeMaskCaches(&out.stream);
  return out;
}

}  // namespace sofia
