#ifndef SOFIA_DATA_SCENARIOS_H_
#define SOFIA_DATA_SCENARIOS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/corruption.hpp"
#include "tensor/dense_tensor.hpp"

/// \file scenarios.hpp
/// \brief Adversarial corruption/drift scenario suite.
///
/// Corrupt() models one benign world: fixed Bernoulli missingness plus
/// i.i.d. element outliers. Real streams fail in structured ways, and a
/// robust-streaming comparison is only credible when methods are stressed
/// with them (Hawkins & Zhang 2018; Zhao et al. 2015). Each scenario
/// composes one structured failure mode on top of the element-wise
/// protocol:
///
///  - kClean: element-wise corruption only (the Corrupt() baseline).
///  - kBurstyOutage: every mode-0 row (sensor) follows a two-state Markov
///    chain (up -> down with `outage_fail_prob`, down -> up with
///    `outage_recover_prob`); down rows are fully missing. The drifting
///    masks exercise the runner's SparseMask delta path under realistic
///    churn — `outage_flips` records the per-step flip counts so tests can
///    pin the delta telemetry to the generated churn exactly.
///  - kRegimeChange: at step `regime_step` the ground truth's amplitude
///    scales by `regime_amplitude` — a mid-stream seasonal regime change
///    that invalidates every learned level/season. Scoring targets the
///    *transformed* truth (returned in `truth`).
///  - kStructuredOutliers: mode-aligned outlier bursts — a row starts a
///    burst with `burst_start_prob`, and for `burst_length` steps every
///    observed entry of that row carries the same ±magnitude offset (the
///    adversarial structure OR-MSTC targets and i.i.d. injection never
///    produces).
///  - kGarbageSlices: periodic malformed payloads past `garbage_offset`,
///    alternating NaN slices (caught by StreamGuard's input validation)
///    and huge-but-finite slices at `garbage_magnitude` x max|X| (caught
///    by the post-step health watch) — `fault_steps` records where.
///  - kCombinedStress: all of the above at once.
///
/// Generation is deterministic: the same (truth, options, seed) produces a
/// bitwise-identical stream (test-pinned), with every stage salted off the
/// one seed. All masks leave with primed count/hash caches, like Corrupt().

namespace sofia {

/// The scenario catalog (see file comment for semantics).
enum class ScenarioKind {
  kClean,
  kBurstyOutage,
  kRegimeChange,
  kStructuredOutliers,
  kGarbageSlices,
  kCombinedStress,
};

/// "clean", "bursty-outage", "regime-change", "structured-outliers",
/// "garbage-slices", "combined-stress".
const char* ScenarioName(ScenarioKind kind);
/// Inverse of ScenarioName (SOFIA_CHECK-fails on unknown names).
ScenarioKind ParseScenario(const std::string& name);
/// Every scenario, catalog order.
std::vector<ScenarioKind> ScenarioCatalog();

/// Knobs of MakeScenario. Defaults give each scenario a clearly visible
/// failure mode on the small synthetic streams of the bench/tests.
struct ScenarioOptions {
  /// Element-wise substrate applied by every scenario (kClean is exactly
  /// this). Structured-outlier scenarios drop its i.i.d. outlier part and
  /// keep only the missingness.
  CorruptionSetting element{20.0, 5.0, 2.0};

  // kBurstyOutage: the per-row two-state Markov chain.
  double outage_fail_prob = 0.05;    ///< P(up -> down) per row, per step.
  double outage_recover_prob = 0.5;  ///< P(down -> up) per row, per step.

  // kRegimeChange.
  double regime_fraction = 0.5;    ///< Change point as a fraction of T.
  double regime_amplitude = 3.0;   ///< Truth scale factor after the change.

  // kStructuredOutliers.
  double burst_start_prob = 0.03;  ///< Per-row, per-step burst start.
  size_t burst_length = 3;         ///< Steps a burst lasts.
  double burst_magnitude = 4.0;    ///< Offset in units of max|X|.

  // kGarbageSlices.
  size_t garbage_offset = 16;      ///< First garbage step (choose it past
                                   ///< every method's init window).
  size_t garbage_every = 12;       ///< Spacing between garbage slices.
  double garbage_magnitude = 1e6;  ///< Scale of the huge-finite payloads.
};

/// One generated scenario: the corrupted stream plus the ground truth to
/// score against and the injection bookkeeping the recovery metrics need.
struct ScenarioStream {
  std::string name;                 ///< ScenarioName(kind).
  ScenarioKind kind = ScenarioKind::kClean;
  CorruptedStream stream;           ///< What the methods consume.
  std::vector<DenseTensor> truth;   ///< Scoring target (regime-transformed
                                    ///< for kRegimeChange/kCombinedStress).
  std::vector<size_t> fault_steps;  ///< Garbage-slice indices, ascending.
  /// Per step: number of rows whose Markov outage state flipped (empty for
  /// scenarios without outages). Flips x the mode-0 row volume is exactly
  /// the mask delta the runner's telemetry must report.
  std::vector<size_t> outage_flips;
  size_t regime_step = 0;           ///< First transformed step (0 = none).
};

/// Generates `kind` over a ground-truth stream. Deterministic in
/// (truth, options, seed).
ScenarioStream MakeScenario(ScenarioKind kind,
                            const std::vector<DenseTensor>& truth,
                            const ScenarioOptions& options, uint64_t seed);

}  // namespace sofia

#endif  // SOFIA_DATA_SCENARIOS_H_
