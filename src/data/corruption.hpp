#ifndef SOFIA_DATA_CORRUPTION_H_
#define SOFIA_DATA_CORRUPTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/dense_tensor.hpp"
#include "tensor/mask.hpp"

/// \file corruption.hpp
/// \brief The (X, Y, Z) missing/outlier injection protocol of Section VI-A.
///
/// X% of entries are dropped (treated as missing), Y% are corrupted by
/// outliers of magnitude ±Z * max|X| (sign equiprobable), where max|X| is
/// taken over the entire ground-truth stream. The two samples are drawn
/// independently, as in the paper.

namespace sofia {

/// One experimental setting, e.g. {70, 20, 5} for the harshest grid point.
struct CorruptionSetting {
  double missing_percent = 0.0;  ///< X: percentage of missing entries.
  double outlier_percent = 0.0;  ///< Y: percentage of outlier entries.
  double magnitude = 0.0;        ///< Z: outlier size in units of max|X|.

  /// "(X,Y,Z)" rendering used in figures.
  std::string ToString() const;
};

/// The four settings of Figs. 3-5, mildest to harshest.
std::vector<CorruptionSetting> PaperSettingGrid();

/// A corrupted stream: observed values, indicator masks, and bookkeeping.
struct CorruptedStream {
  std::vector<DenseTensor> slices;      ///< Y_t (corrupted; missing as-is).
  std::vector<Mask> masks;              ///< Ω_t.
  std::vector<Mask> outlier_positions;  ///< Entries carrying injected outliers.
  double max_abs = 0.0;                 ///< max|X| used for the magnitude.
};

/// Applies `setting` to a ground-truth stream.
CorruptedStream Corrupt(const std::vector<DenseTensor>& truth,
                        const CorruptionSetting& setting, uint64_t seed);

/// Structured missingness on top of the element-wise protocol: sensor
/// outages. At every step each mode-0 row (a sensor / network node / taxi
/// zone) independently *starts* an outage with probability
/// `outage_start_prob`; for the next `outage_length` steps every entry in
/// that row is missing. This is the "network disconnection" pattern the
/// paper's introduction motivates, as opposed to i.i.d. missingness.
struct OutageSetting {
  double outage_start_prob = 0.02;  ///< Per-row, per-step start probability.
  size_t outage_length = 5;         ///< Steps a started outage lasts.
};

/// Applies element-wise corruption, then whole-row outages.
CorruptedStream CorruptWithOutages(const std::vector<DenseTensor>& truth,
                                   const CorruptionSetting& setting,
                                   const OutageSetting& outages,
                                   uint64_t seed);

}  // namespace sofia

#endif  // SOFIA_DATA_CORRUPTION_H_
