#ifndef SOFIA_DATA_DATASET_SIM_H_
#define SOFIA_DATA_DATASET_SIM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/dense_tensor.hpp"

/// \file dataset_sim.hpp
/// \brief Simulators for the four evaluation datasets of Table III.
///
/// The real datasets (Intel Lab Sensor, Network Traffic, Chicago Taxi,
/// NYC Taxi) are served from live portals and are not redistributable here.
/// Each simulator produces a stream with the structural properties the
/// algorithms interact with — mode arities and semantics, seasonal period,
/// low CP rank with smooth seasonal temporal factors, heavy-tailed
/// mode-loading scale variation (hubs), trend, and measurement noise. The
/// (X, Y, Z) missing/outlier protocol of Section VI-A is then applied by
/// data/corruption.hpp, so the phenomena under test run on the same code
/// paths as the paper's experiments. See DESIGN.md §3.

namespace sofia {

/// Scale of a simulated dataset.
enum class DatasetScale {
  kSmall,  ///< CI-friendly: shrunken modes, ~170-step streams (default).
  kPaper,  ///< Table III dimensions and periods.
};

/// A simulated tensor stream with ground truth.
struct Dataset {
  std::string name;
  std::vector<DenseTensor> slices;  ///< Clean ground-truth subtensors X_t.
  size_t period = 0;                ///< Seasonal period m (Table III).
  size_t rank = 0;                  ///< CP rank used in the paper's runs.
  size_t forecast_steps = 0;        ///< t_f of the Fig. 6 protocol.
};

/// 4 environmental sensors at I1 positions, 10-minute granularity, daily
/// period (paper: 54 x 4 x 1152, m = 144, R = 4). Values standardized per
/// sensor like the paper's preprocessing.
Dataset MakeIntelLabSensor(DatasetScale scale, uint64_t seed = 101);

/// Router-to-router traffic volumes, hourly, weekly period (paper:
/// 23 x 23 x 2000, m = 168, R = 5). log2(x + 1)-scaled counts.
Dataset MakeNetworkTraffic(DatasetScale scale, uint64_t seed = 202);

/// Zone-to-zone taxi trips, hourly, weekly period (paper: 77 x 77 x 2016,
/// m = 168, R = 10). log2(x + 1)-scaled counts.
Dataset MakeChicagoTaxi(DatasetScale scale, uint64_t seed = 303);

/// Zone-to-zone taxi trips, daily, weekly period (paper: 265 x 265 x 904,
/// m = 7, R = 5). log2(x + 1)-scaled counts.
Dataset MakeNycTaxi(DatasetScale scale, uint64_t seed = 404);

/// All four datasets in the paper's presentation order.
std::vector<Dataset> MakeAllDatasets(DatasetScale scale);

/// Dataset by short name ("intel", "network", "chicago", "nyc").
Dataset MakeDatasetByName(const std::string& name, DatasetScale scale);

}  // namespace sofia

#endif  // SOFIA_DATA_DATASET_SIM_H_
