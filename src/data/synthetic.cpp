#include "data/synthetic.hpp"

#include <cmath>

#include "tensor/kruskal.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace sofia {

namespace {
constexpr double kTwoPi = 6.283185307179586;
}  // namespace

SyntheticTensor MakeSinusoidTensor(size_t i1, size_t i2, size_t duration,
                                   size_t rank, size_t period, uint64_t seed) {
  Rng rng(seed);
  SyntheticTensor out;
  out.period = period;
  out.factors.push_back(Matrix::Random(i1, rank, rng, 0.0, 1.0));
  out.factors.push_back(Matrix::Random(i2, rank, rng, 0.0, 1.0));

  Matrix temporal(duration, rank);
  for (size_t r = 0; r < rank; ++r) {
    const double a = rng.Uniform(-2.0, 2.0);
    const double b = rng.Uniform(0.0, kTwoPi);
    const double c = rng.Uniform(-2.0, 2.0);
    for (size_t i = 0; i < duration; ++i) {
      temporal(i, r) =
          a * std::sin(kTwoPi / static_cast<double>(period) *
                           static_cast<double>(i) +
                       b) +
          c;
    }
  }
  out.factors.push_back(std::move(temporal));
  out.tensor = KruskalTensor(out.factors);
  return out;
}

std::vector<double> MakeSeasonalSeries(size_t duration, size_t period,
                                       double amplitude, double trend,
                                       double wander, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> series(duration);
  const double phase1 = rng.Uniform(0.0, kTwoPi);
  const double phase2 = rng.Uniform(0.0, kTwoPi);
  const double harmonic = rng.Uniform(0.2, 0.6);
  const double base = rng.Uniform(0.5, 1.5);
  double ar = 0.0;
  for (size_t i = 0; i < duration; ++i) {
    const double angle = kTwoPi * static_cast<double>(i % period) /
                         static_cast<double>(period);
    ar = 0.95 * ar + wander * rng.Normal();
    series[i] = base + amplitude * (std::sin(angle + phase1) +
                                    harmonic * std::sin(2.0 * angle + phase2)) +
                trend * static_cast<double>(i) / static_cast<double>(period) +
                ar;
  }
  return series;
}

std::vector<DenseTensor> MakeScalabilityStream(size_t i1, size_t i2,
                                               size_t duration, size_t rank,
                                               size_t period, uint64_t seed) {
  Rng rng(seed);
  Matrix a = Matrix::Random(i1, rank, rng, 0.0, 1.0);
  Matrix b = Matrix::Random(i2, rank, rng, 0.0, 1.0);
  std::vector<Matrix> factors = {std::move(a), std::move(b)};

  std::vector<std::vector<double>> temporal_cols(rank);
  for (size_t r = 0; r < rank; ++r) {
    temporal_cols[r] = MakeSeasonalSeries(duration, period, /*amplitude=*/1.0,
                                          /*trend=*/0.05, /*wander=*/0.0,
                                          seed + 17 * (r + 1));
  }

  std::vector<DenseTensor> slices;
  slices.reserve(duration);
  std::vector<double> row(rank);
  for (size_t t = 0; t < duration; ++t) {
    for (size_t r = 0; r < rank; ++r) row[r] = temporal_cols[r][t];
    slices.push_back(KruskalSlice(factors, row));
  }
  return slices;
}

}  // namespace sofia
