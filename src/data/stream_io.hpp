#ifndef SOFIA_DATA_STREAM_IO_H_
#define SOFIA_DATA_STREAM_IO_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "tensor/dense_tensor.hpp"
#include "tensor/mask.hpp"

/// \file stream_io.hpp
/// \brief CSV import/export of tensor streams.
///
/// Real deployments feed SOFIA from event logs shaped like the paper's
/// datasets: one record per observed entry,
///     t, i_1, ..., i_{N-1}, value
/// (0-based indices; unobserved entries are simply absent). This module
/// converts between that format and the in-memory slice/mask streams, so
/// the experiment harness runs unchanged on real data.

namespace sofia {

/// A tensor stream with observation masks (what the CSV format encodes).
struct TensorStream {
  std::vector<DenseTensor> slices;
  std::vector<Mask> masks;
};

/// Writes `stream` in the record format above. Only observed entries are
/// emitted. The first line is a header: "# shape I1 ... I(N-1) T".
void WriteStreamCsv(std::ostream& out, const TensorStream& stream);
bool WriteStreamCsvFile(const std::string& path, const TensorStream& stream);

/// Parses the record format. The shape header is required; records may
/// arrive in any order; duplicate records keep the last value. Malformed
/// records CHECK-fail with the offending line number: out-of-range or
/// non-numeric indices, unparsable values, extra trailing fields, and —
/// because streaming methods must never see them — NaN/Inf values (reported
/// with the line number and slice index).
TensorStream ReadStreamCsv(std::istream& in);
TensorStream ReadStreamCsvFile(const std::string& path);

}  // namespace sofia

#endif  // SOFIA_DATA_STREAM_IO_H_
