#include "data/stream_io.hpp"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/check.hpp"

namespace sofia {

namespace {

/// strtoull with full validation: the whole field must be one non-negative
/// integer — no sign, no trailing garbage, no empty field. std::stoull would
/// throw on garbage (an unhelpful uncaught exception), silently accept
/// "3abc", and wrap "-1" to a huge index.
size_t ParseIndexField(const std::string& field, size_t line_number) {
  SOFIA_CHECK(!field.empty() && field[0] != '-' && field[0] != '+')
      << "bad index field '" << field << "' at line " << line_number;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(field.c_str(), &end, 10);
  SOFIA_CHECK(end == field.c_str() + field.size())
      << "bad index field '" << field << "' at line " << line_number;
  return static_cast<size_t>(v);
}

/// strtod with full validation plus the finiteness contract: streaming
/// methods must never see NaN/Inf payloads from the loader, so "nan"/"inf"
/// (which strtod happily parses) are rejected here with the line and slice
/// index instead of surfacing steps later as a poisoned factor row.
double ParseValueField(const std::string& field, size_t line_number,
                       size_t slice) {
  SOFIA_CHECK(!field.empty()) << "empty value at line " << line_number;
  char* end = nullptr;
  const double v = std::strtod(field.c_str(), &end);
  SOFIA_CHECK(end == field.c_str() + field.size())
      << "bad value '" << field << "' at line " << line_number;
  SOFIA_CHECK(std::isfinite(v))
      << "non-finite value '" << field << "' at line " << line_number
      << " (slice " << slice << ")";
  return v;
}

}  // namespace

void WriteStreamCsv(std::ostream& out, const TensorStream& stream) {
  SOFIA_CHECK(!stream.slices.empty());
  SOFIA_CHECK_EQ(stream.slices.size(), stream.masks.size());
  const Shape& slice_shape = stream.slices[0].shape();

  out << "# shape";
  for (size_t n = 0; n < slice_shape.order(); ++n) {
    out << ' ' << slice_shape.dim(n);
  }
  out << ' ' << stream.slices.size() << '\n';
  out.precision(17);

  std::vector<size_t> idx(slice_shape.order(), 0);
  for (size_t t = 0; t < stream.slices.size(); ++t) {
    SOFIA_CHECK(stream.slices[t].shape() == slice_shape);
    idx.assign(slice_shape.order(), 0);
    for (size_t linear = 0; linear < slice_shape.NumElements(); ++linear) {
      if (stream.masks[t].Get(linear)) {
        out << t;
        for (size_t n = 0; n < slice_shape.order(); ++n) out << ',' << idx[n];
        out << ',' << stream.slices[t][linear] << '\n';
      }
      slice_shape.Next(&idx);
    }
  }
}

bool WriteStreamCsvFile(const std::string& path, const TensorStream& stream) {
  std::ofstream f(path);
  if (!f) return false;
  WriteStreamCsv(f, stream);
  return static_cast<bool>(f);
}

TensorStream ReadStreamCsv(std::istream& in) {
  std::string line;
  SOFIA_CHECK(static_cast<bool>(std::getline(in, line)))
      << "empty stream file";
  std::istringstream header(line);
  std::string hash, word;
  SOFIA_CHECK(static_cast<bool>(header >> hash >> word) && hash == "#" &&
              word == "shape")
      << "missing '# shape ...' header";
  std::vector<size_t> dims;
  size_t d = 0;
  while (header >> d) dims.push_back(d);
  SOFIA_CHECK_GE(dims.size(), 2u) << "header needs slice dims plus T";
  const size_t duration = dims.back();
  dims.pop_back();
  Shape slice_shape(dims);

  TensorStream stream;
  stream.slices.assign(duration, DenseTensor(slice_shape, 0.0));
  stream.masks.assign(duration, Mask(slice_shape, false));

  std::vector<size_t> idx(slice_shape.order(), 0);
  size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream record(line);
    std::string field;
    SOFIA_CHECK(static_cast<bool>(std::getline(record, field, ',')))
        << "bad record at line " << line_number;
    const size_t t = ParseIndexField(field, line_number);
    SOFIA_CHECK_LT(t, duration) << "time index out of range at line "
                                << line_number;
    for (size_t n = 0; n < slice_shape.order(); ++n) {
      SOFIA_CHECK(static_cast<bool>(std::getline(record, field, ',')))
          << "bad record at line " << line_number;
      idx[n] = ParseIndexField(field, line_number);
      SOFIA_CHECK_LT(idx[n], slice_shape.dim(n))
          << "index out of range at line " << line_number;
    }
    SOFIA_CHECK(static_cast<bool>(std::getline(record, field, ',')))
        << "missing value at line " << line_number;
    const size_t linear = slice_shape.Linearize(idx);
    stream.slices[t][linear] = ParseValueField(field, line_number, t);
    stream.masks[t].Set(linear, true);
    SOFIA_CHECK(!static_cast<bool>(std::getline(record, field)))
        << "extra fields after value at line " << line_number;
  }
  return stream;
}

TensorStream ReadStreamCsvFile(const std::string& path) {
  std::ifstream f(path);
  SOFIA_CHECK(static_cast<bool>(f)) << "cannot open " << path;
  return ReadStreamCsv(f);
}

}  // namespace sofia
