#include "data/dataset_sim.hpp"

#include <cmath>

#include "data/synthetic.hpp"
#include "linalg/matrix.hpp"
#include "tensor/kruskal.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace sofia {

namespace {

/// Shared recipe behind the four simulators. Values are generated directly
/// in the paper's *post-preprocessing* space (standardized sensor readings /
/// log2(1+count) traffic volumes), so the low-rank-plus-seasonality
/// structure the algorithms exploit is present without an extra nonlinearity.
struct SimSpec {
  std::string name;
  size_t i1 = 0, i2 = 0;
  size_t duration = 0;
  size_t period = 0;
  size_t rank = 0;
  size_t forecast_steps = 0;
  double base_level = 0.0;   ///< Offset of temporal columns.
  double amplitude = 1.0;    ///< Seasonal swing of temporal columns.
  double trend = 0.05;       ///< Per-season drift of temporal columns.
  double wander = 0.01;      ///< Smooth AR(1) wiggle (non-seasonal drift).
  double hubness = 0.6;      ///< Lognormal sigma of mode-loading scales.
  double noise = 0.05;       ///< Stddev of i.i.d. entry noise.
};

Matrix MakeLoadings(size_t rows, size_t rank, double hubness, Rng& rng) {
  // Nonnegative loadings with heavy-tailed row scales: a few "hub" rows
  // (busy taxi zones, chatty routers) dominate, like real origin-destination
  // matrices.
  Matrix m(rows, rank);
  for (size_t i = 0; i < rows; ++i) {
    const double row_scale = std::exp(rng.Normal(0.0, hubness));
    for (size_t r = 0; r < rank; ++r) {
      m(i, r) = row_scale * std::fabs(rng.Normal(0.4, 0.35));
    }
  }
  return m;
}

Dataset MakeFromSpec(const SimSpec& spec, uint64_t seed) {
  Rng rng(seed);
  Dataset out;
  out.name = spec.name;
  out.period = spec.period;
  out.rank = spec.rank;
  out.forecast_steps = spec.forecast_steps;

  std::vector<Matrix> factors = {
      MakeLoadings(spec.i1, spec.rank, spec.hubness, rng),
      MakeLoadings(spec.i2, spec.rank, spec.hubness, rng)};

  std::vector<std::vector<double>> temporal(spec.rank);
  for (size_t r = 0; r < spec.rank; ++r) {
    temporal[r] = MakeSeasonalSeries(
        spec.duration, spec.period, spec.amplitude * rng.Uniform(0.6, 1.4),
        spec.trend * rng.Uniform(-1.0, 1.0), spec.wander, seed + 31 * (r + 1));
    for (auto& v : temporal[r]) v += spec.base_level;
  }

  out.slices.reserve(spec.duration);
  std::vector<double> row(spec.rank);
  for (size_t t = 0; t < spec.duration; ++t) {
    for (size_t r = 0; r < spec.rank; ++r) row[r] = temporal[r][t];
    DenseTensor slice = KruskalSlice(factors, row);
    for (size_t k = 0; k < slice.NumElements(); ++k) {
      slice[k] += rng.Normal(0.0, spec.noise);
    }
    out.slices.push_back(std::move(slice));
  }
  return out;
}

}  // namespace

Dataset MakeIntelLabSensor(DatasetScale scale, uint64_t seed) {
  SimSpec spec;
  spec.name = "IntelLabSensor";
  spec.rank = 4;
  // Standardized sensor readings: zero-centred, unit-ish swing, strong daily
  // cycle, almost no hub structure (sensors share the building climate).
  spec.base_level = 0.0;
  spec.amplitude = 1.0;
  spec.trend = 0.02;
  spec.wander = 0.02;
  spec.hubness = 0.2;
  spec.noise = 0.08;
  if (scale == DatasetScale::kPaper) {
    spec.i1 = 54, spec.i2 = 4, spec.duration = 1152, spec.period = 144;
    spec.forecast_steps = 200;
  } else {
    spec.i1 = 18, spec.i2 = 4, spec.duration = 216, spec.period = 24;
    spec.forecast_steps = 48;
  }
  return MakeFromSpec(spec, seed);
}

Dataset MakeNetworkTraffic(DatasetScale scale, uint64_t seed) {
  SimSpec spec;
  spec.name = "NetworkTraffic";
  spec.rank = 5;
  // log2(bytes+1)-style volumes: positive levels, weekly cycle, hubby
  // backbone routers.
  spec.base_level = 4.0;
  spec.amplitude = 1.2;
  spec.trend = 0.05;
  spec.wander = 0.015;
  spec.hubness = 0.7;
  spec.noise = 0.10;
  if (scale == DatasetScale::kPaper) {
    spec.i1 = 23, spec.i2 = 23, spec.duration = 2000, spec.period = 168;
    spec.forecast_steps = 200;
  } else {
    spec.i1 = 12, spec.i2 = 12, spec.duration = 216, spec.period = 24;
    spec.forecast_steps = 48;
  }
  return MakeFromSpec(spec, seed);
}

Dataset MakeChicagoTaxi(DatasetScale scale, uint64_t seed) {
  SimSpec spec;
  spec.name = "ChicagoTaxi";
  spec.rank = 10;
  spec.base_level = 2.0;
  spec.amplitude = 1.0;
  spec.trend = 0.03;
  spec.wander = 0.02;
  spec.hubness = 0.8;
  spec.noise = 0.12;
  if (scale == DatasetScale::kPaper) {
    spec.i1 = 77, spec.i2 = 77, spec.duration = 2016, spec.period = 168;
    spec.forecast_steps = 200;
  } else {
    spec.i1 = 16, spec.i2 = 16, spec.duration = 216, spec.period = 24;
    spec.forecast_steps = 48;
  }
  return MakeFromSpec(spec, seed);
}

Dataset MakeNycTaxi(DatasetScale scale, uint64_t seed) {
  SimSpec spec;
  spec.name = "NycTaxi";
  spec.rank = 5;
  // Daily granularity with a weekly period: short season, strong weekday/
  // weekend contrast, the hubbiest zone structure of the four.
  spec.base_level = 3.0;
  spec.amplitude = 1.2;
  spec.trend = 0.04;
  spec.wander = 0.02;
  spec.hubness = 0.9;
  spec.noise = 0.10;
  if (scale == DatasetScale::kPaper) {
    spec.i1 = 265, spec.i2 = 265, spec.duration = 904, spec.period = 7;
    spec.forecast_steps = 100;
  } else {
    spec.i1 = 24, spec.i2 = 24, spec.duration = 150, spec.period = 7;
    spec.forecast_steps = 35;
  }
  return MakeFromSpec(spec, seed);
}

std::vector<Dataset> MakeAllDatasets(DatasetScale scale) {
  std::vector<Dataset> all;
  all.push_back(MakeIntelLabSensor(scale));
  all.push_back(MakeNetworkTraffic(scale));
  all.push_back(MakeChicagoTaxi(scale));
  all.push_back(MakeNycTaxi(scale));
  return all;
}

Dataset MakeDatasetByName(const std::string& name, DatasetScale scale) {
  if (name == "intel") return MakeIntelLabSensor(scale);
  if (name == "network") return MakeNetworkTraffic(scale);
  if (name == "chicago") return MakeChicagoTaxi(scale);
  if (name == "nyc") return MakeNycTaxi(scale);
  SOFIA_CHECK(false) << "unknown dataset: " << name
                     << " (expected intel|network|chicago|nyc)";
  return {};
}

}  // namespace sofia
