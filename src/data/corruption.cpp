#include "data/corruption.hpp"

#include <algorithm>
#include <cstdio>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace sofia {

namespace {

/// Prime each mask's observed-count and content-hash caches at generation
/// time, where the O(volume) pass folds into building the mask anyway.
/// The streaming loops' mask-reuse checks (SparseMask::Matches needs the
/// count; Mask::operator== uses count + hash for its O(1) rejects) then
/// stay O(|Ω|) per step — a stream whose masks arrive cold would instead
/// pay one full bit scan per step object inside the step loop.
void PrimeMaskCaches(CorruptedStream* stream) {
  for (const Mask& m : stream->masks) {
    m.CountObserved();
    m.ContentHash();
  }
}

}  // namespace

std::string CorruptionSetting::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "(%g,%g,%g)", missing_percent,
                outlier_percent, magnitude);
  return buf;
}

std::vector<CorruptionSetting> PaperSettingGrid() {
  return {{20.0, 10.0, 2.0},
          {30.0, 15.0, 3.0},
          {50.0, 20.0, 4.0},
          {70.0, 20.0, 5.0}};
}

CorruptedStream Corrupt(const std::vector<DenseTensor>& truth,
                        const CorruptionSetting& setting, uint64_t seed) {
  SOFIA_CHECK(!truth.empty());
  SOFIA_CHECK_GE(setting.missing_percent, 0.0);
  SOFIA_CHECK_LE(setting.missing_percent, 100.0);
  SOFIA_CHECK_GE(setting.outlier_percent, 0.0);
  SOFIA_CHECK_LE(setting.outlier_percent, 100.0);

  Rng rng(seed);
  CorruptedStream out;
  out.slices.reserve(truth.size());
  out.masks.reserve(truth.size());
  out.outlier_positions.reserve(truth.size());

  for (const DenseTensor& slice : truth) {
    out.max_abs = std::max(out.max_abs, slice.MaxAbs());
  }
  const double magnitude = setting.magnitude * out.max_abs;
  const double p_missing = setting.missing_percent / 100.0;
  const double p_outlier = setting.outlier_percent / 100.0;

  for (const DenseTensor& slice : truth) {
    DenseTensor y = slice;
    Mask omega(slice.shape(), true);
    Mask outlier(slice.shape(), false);
    for (size_t k = 0; k < y.NumElements(); ++k) {
      // Outliers add ±Z*max|X| on top of the clean value (Y = X + O).
      if (p_outlier > 0.0 && rng.Bernoulli(p_outlier)) {
        y[k] += rng.Bernoulli(0.5) ? magnitude : -magnitude;
        outlier.Set(k, true);
      }
      // Missingness is sampled independently; a corrupted entry that is
      // also dropped simply ends up missing.
      if (p_missing > 0.0 && rng.Bernoulli(p_missing)) {
        omega.Set(k, false);
      }
    }
    out.slices.push_back(std::move(y));
    out.masks.push_back(std::move(omega));
    out.outlier_positions.push_back(std::move(outlier));
  }
  PrimeMaskCaches(&out);
  return out;
}

CorruptedStream CorruptWithOutages(const std::vector<DenseTensor>& truth,
                                   const CorruptionSetting& setting,
                                   const OutageSetting& outages,
                                   uint64_t seed) {
  CorruptedStream out = Corrupt(truth, setting, seed);
  SOFIA_CHECK(!truth.empty());
  SOFIA_CHECK_GE(truth[0].order(), 1u);
  Rng rng(seed ^ 0x07a6eULL);

  const Shape& slice_shape = truth[0].shape();
  const size_t rows = slice_shape.dim(0);
  // remaining[i] = steps left in row i's current outage.
  std::vector<size_t> remaining(rows, 0);
  std::vector<size_t> idx(slice_shape.order(), 0);
  for (size_t t = 0; t < truth.size(); ++t) {
    for (size_t i = 0; i < rows; ++i) {
      if (remaining[i] == 0 && rng.Bernoulli(outages.outage_start_prob)) {
        remaining[i] = outages.outage_length;
      }
    }
    Mask& mask = out.masks[t];
    idx.assign(slice_shape.order(), 0);
    for (size_t linear = 0; linear < slice_shape.NumElements(); ++linear) {
      if (remaining[idx[0]] > 0) mask.Set(linear, false);
      slice_shape.Next(&idx);
    }
    for (size_t i = 0; i < rows; ++i) {
      if (remaining[i] > 0) --remaining[i];
    }
  }
  PrimeMaskCaches(&out);  // The outage Set()s invalidated Corrupt's primes.
  return out;
}

}  // namespace sofia
