#ifndef SOFIA_CORE_SOFIA_ALS_H_
#define SOFIA_CORE_SOFIA_ALS_H_

#include <vector>

#include "core/sofia_config.hpp"
#include "linalg/matrix.hpp"
#include "tensor/coo_list.hpp"
#include "tensor/dense_tensor.hpp"
#include "tensor/mask.hpp"

/// \file sofia_als.hpp
/// \brief SOFIA_ALS (Algorithm 2): batch ALS with temporal/seasonal
/// smoothness on the last (temporal) mode of an incomplete tensor.
///
/// Non-temporal rows are the exact minimizers of Theorem 1; temporal rows
/// follow Theorem 2 / Eq. (17), generalized to 0-based indices by counting
/// the in-range +-1 and +-m neighbours of each row (which reproduces every
/// branch of the paper's piecewise rule and additionally covers streams
/// shorter than 2m). After each non-temporal mode update the column norms
/// are folded into the temporal factor (Algorithm 2 lines 7-9).

namespace sofia {

/// Result of one SOFIA_ALS run.
struct SofiaAlsResult {
  DenseTensor completed;  ///< Low-rank reconstruction [[U^(1),...,U^(N)]].
  double fitness = 0.0;   ///< 1 - ||Ω ⊛ (Y* - X̂)||_F / ||Ω ⊛ Y*||_F.
  int sweeps = 0;         ///< ALS sweeps executed.
  /// True if a sweep produced non-finite values (heavy corruption can blow
  /// up the unregularized fit — the paper's Fig. 2(b) phenomenon). The
  /// factors are rolled back to the last finite sweep.
  bool diverged = false;
};

/// Runs Algorithm 2 on `y` (last mode = time) with outliers `o` subtracted.
/// `factors` holds one matrix per mode (I_n x R) and is updated in place.
/// If `smooth_temporal` is false the λ1/λ2 penalties are dropped, which
/// turns the routine into vanilla ALS for incomplete tensors (the Fig. 2
/// baseline) while keeping the identical sweep schedule.
SofiaAlsResult SofiaAls(const DenseTensor& y, const Mask& omega,
                        const DenseTensor& o, const SofiaConfig& config,
                        std::vector<Matrix>* factors,
                        bool smooth_temporal = true);

/// Observed-entry overload: runs the sweeps through the COO sparse kernel
/// layer against a CooList prebuilt from the window's mask. Callers that
/// solve the same window repeatedly with a fixed mask (the Algorithm 1 init
/// loop re-estimates outliers around the same Ω) build the CooList once and
/// amortize the dense compaction scan across all calls, modes, and sweeps.
SofiaAlsResult SofiaAls(const CooList& coo, const DenseTensor& y,
                        const DenseTensor& o, const SofiaConfig& config,
                        std::vector<Matrix>* factors,
                        bool smooth_temporal = true);

/// Objective (10) evaluated at the given state (used by tests and the
/// monotonicity checks): data term + smoothness penalties + λ3 ||O||_1.
double SofiaObjective(const DenseTensor& y, const Mask& omega,
                      const DenseTensor& o, const SofiaConfig& config,
                      const std::vector<Matrix>& factors);

/// Element-wise soft-thresholding (Eq. (12)).
double SoftThreshold(double x, double threshold);

}  // namespace sofia

#endif  // SOFIA_CORE_SOFIA_ALS_H_
