#ifndef SOFIA_CORE_SOFIA_MODEL_H_
#define SOFIA_CORE_SOFIA_MODEL_H_

#include <iosfwd>
#include <vector>

#include "core/sofia_config.hpp"
#include "core/sofia_init.hpp"
#include "linalg/matrix.hpp"
#include "tensor/dense_tensor.hpp"
#include "tensor/mask.hpp"
#include "timeseries/holt_winters.hpp"

/// \file sofia_model.hpp
/// \brief The streaming SOFIA model: HW fitting (Section V-B), dynamic
/// updates (Algorithm 3), and forecasting (Section V-D).

namespace sofia {

/// Per-step output of the dynamic update.
struct SofiaStepResult {
  DenseTensor imputed;   ///< X̂_t = [[{U^(n)_t}; u^(N)_t]] (Eq. (27)).
  DenseTensor outliers;  ///< O_t estimated by Eq. (21) (0 where unobserved).
  DenseTensor forecast;  ///< Ŷ_{t|t-1} (Eq. (20)), the pre-update prediction.
};

/// Options controlling which ingredients of the dynamic update run; the
/// defaults are the full algorithm. Used by the ablation benches.
struct SofiaAblation {
  bool reject_outliers = true;  ///< Apply Eq. (21); off = O_t ≡ 0.
  bool scale_before_reject = false;  ///< Gelper ordering (update Σ̂ first).
  bool temporal_smoothness = true;   ///< λ1/λ2 terms in Eq. (25).
};

/// Streaming SOFIA. Construct via Initialize() on the first t_i slices,
/// then call Step() for every incoming subtensor.
class SofiaModel {
 public:
  /// Runs Algorithm 1 on the start-up slices, fits one Holt-Winters model
  /// per temporal-factor column (Section V-B), and seeds the error-scale
  /// tensor with λ3/100 (Algorithm 3 line 1).
  static SofiaModel Initialize(const std::vector<DenseTensor>& slices,
                               const std::vector<Mask>& masks,
                               const SofiaConfig& config,
                               const SofiaAblation& ablation = {});

  /// Processes the subtensor Y_t with indicator Ω_t (Algorithm 3 lines 3-11).
  SofiaStepResult Step(const DenseTensor& y, const Mask& omega);

  /// h-step-ahead forecast Ŷ_{t+h|t} (Eq. (28)); h >= 1.
  DenseTensor Forecast(size_t h) const;

  /// Reconstruction [[{U^(n)}; u]] for the given temporal row (diagnostics).
  DenseTensor Reconstruct(const std::vector<double>& temporal_row) const;

  const SofiaConfig& config() const { return config_; }
  const std::vector<Matrix>& nontemporal_factors() const { return factors_; }
  /// Completed batch tensor from the initialization phase (X̂_init).
  const DenseTensor& init_completed() const { return init_completed_; }
  /// Level / trend vectors of the vector HW model (length R).
  const std::vector<double>& level() const { return level_; }
  const std::vector<double>& trend() const { return trend_; }
  /// Most recent temporal row u^(N)_t.
  const std::vector<double>& last_temporal_row() const { return last_row_; }
  /// Error-scale tensor Σ̂_t.
  const DenseTensor& error_scale() const { return sigma_; }
  /// Fitted smoothing parameters per factor column.
  const std::vector<HwParams>& hw_params() const { return hw_params_; }
  /// Seasonal component that the next Step()/Forecast(1) will use (s_{t+1-m}).
  const std::vector<double>& next_season() const { return season_[season_pos_]; }

  /// Checkpoints the full streaming state (config, factors, HW components,
  /// temporal-row history, error-scale tensor) to a text stream. Restoring
  /// with Deserialize() resumes Step()/Forecast() bit-for-bit.
  void Serialize(std::ostream& out) const;
  static SofiaModel Deserialize(std::istream& in);

 private:
  SofiaModel() = default;

  SofiaConfig config_;
  SofiaAblation ablation_;
  std::vector<Matrix> factors_;  ///< Non-temporal factor matrices.
  DenseTensor init_completed_;

  // Vector Holt-Winters state (Eq. (26)): one scalar model per column r.
  std::vector<HwParams> hw_params_;
  std::vector<double> level_;              ///< l_{t} (length R).
  std::vector<double> trend_;              ///< b_{t}.
  std::vector<std::vector<double>> season_;  ///< Ring of m seasonal vectors.
  size_t season_pos_ = 0;                  ///< Slot of s_{t+1-m}.

  // Temporal-row history: ring of the last m rows u^(N)_{t-m+1..t}.
  std::vector<std::vector<double>> row_history_;
  size_t row_pos_ = 0;  ///< Slot of the oldest row (u_{t-m+1}).
  std::vector<double> last_row_;  ///< u^(N)_t.

  DenseTensor sigma_;  ///< Error-scale tensor Σ̂_t (slice shape).
};

}  // namespace sofia

#endif  // SOFIA_CORE_SOFIA_MODEL_H_
