#ifndef SOFIA_CORE_SOFIA_MODEL_H_
#define SOFIA_CORE_SOFIA_MODEL_H_

#include <iosfwd>
#include <memory>
#include <optional>
#include <vector>

#include "core/sofia_config.hpp"
#include "core/sofia_init.hpp"
#include "linalg/matrix.hpp"
#include "tensor/coo_list.hpp"
#include "tensor/dense_tensor.hpp"
#include "tensor/mask.hpp"
#include "tensor/sparse_mask.hpp"
#include "timeseries/holt_winters.hpp"
#include "util/parallel.hpp"
#include "util/shard_executor.hpp"

/// \file sofia_model.hpp
/// \brief The streaming SOFIA model: HW fitting (Section V-B), dynamic
/// updates (Algorithm 3), and forecasting (Section V-D).

namespace sofia {

struct StepGradients;

/// Per-step output of the dynamic update.
///
/// The dense slice tensors are materialized lazily: the sparse Step path
/// (SofiaConfig::use_sparse_kernels) works entirely on observed entries, so
/// consumers that only need the observed-entry views (outlier detection,
/// metrics at observed entries, pure forecasting) never pay an O(volume)
/// reconstruction. The first call to imputed()/outliers()/forecast()
/// materializes and caches the corresponding dense tensor.
class SofiaStepResult {
 public:
  SofiaStepResult() = default;

  /// X̂_t = [[{U^(n)_t}; u^(N)_t]] (Eq. (27)).
  const DenseTensor& imputed() const;
  /// O_t estimated by Eq. (21) (0 where unobserved).
  const DenseTensor& outliers() const;
  /// Ŷ_{t|t-1} (Eq. (20)), the pre-update prediction.
  const DenseTensor& forecast() const;

  /// Whether the corresponding dense tensor has been materialized (the
  /// sparse Step path leaves all three unmaterialized until first access).
  bool imputed_materialized() const { return imputed_.has_value(); }
  bool outliers_materialized() const { return outliers_.has_value(); }
  bool forecast_materialized() const { return forecast_.has_value(); }

  /// Shape of the incoming slice.
  const Shape& slice_shape() const { return shape_; }
  /// |Ω_t|: number of observed entries in this step's mask.
  size_t num_observed() const { return observed_.size(); }
  /// Linear indices of the observed entries, ascending.
  const std::vector<size_t>& observed_indices() const { return observed_; }
  /// O_t at the observed entries, aligned with observed_indices().
  const std::vector<double>& observed_outliers() const {
    return observed_outliers_;
  }
  /// Ŷ_{t|t-1} at the observed entries, aligned with observed_indices().
  const std::vector<double>& observed_forecast() const {
    return observed_forecast_;
  }
  /// The updated temporal row u^(N)_t.
  const std::vector<double>& temporal_row() const { return u_new_; }
  /// Post-update non-temporal factor snapshot — together with
  /// temporal_row() this is the Kruskal structure of imputed(), which the
  /// pipeline-wide lazy StepResult carries instead of the dense tensor.
  const std::vector<Matrix>& factors() const { return factors_after_; }

 private:
  friend class SofiaModel;

  Shape shape_;
  // Snapshots backing the lazy reconstructions: the factors before the
  // gradient step (forecast) and after it (imputed). O(sum_n I_n R) per
  // step — small next to the O(prod_n I_n) slice they replace.
  std::vector<Matrix> factors_before_;
  std::vector<Matrix> factors_after_;
  std::vector<double> u_hat_;
  std::vector<double> u_new_;
  std::vector<size_t> observed_;
  std::vector<double> observed_outliers_;
  std::vector<double> observed_forecast_;
  mutable std::optional<DenseTensor> imputed_;
  mutable std::optional<DenseTensor> outliers_;
  mutable std::optional<DenseTensor> forecast_;
};

/// Options controlling which ingredients of the dynamic update run; the
/// defaults are the full algorithm. Used by the ablation benches.
struct SofiaAblation {
  bool reject_outliers = true;  ///< Apply Eq. (21); off = O_t ≡ 0.
  bool scale_before_reject = false;  ///< Gelper ordering (update Σ̂ first).
  bool temporal_smoothness = true;   ///< λ1/λ2 terms in Eq. (25).
};

/// Streaming SOFIA. Construct via Initialize() on the first t_i slices,
/// then call Step() for every incoming subtensor.
class SofiaModel {
 public:
  /// Runs Algorithm 1 on the start-up slices, fits one Holt-Winters model
  /// per temporal-factor column (Section V-B), and seeds the error-scale
  /// tensor with λ3/100 (Algorithm 3 line 1).
  static SofiaModel Initialize(const std::vector<DenseTensor>& slices,
                               const std::vector<Mask>& masks,
                               const SofiaConfig& config,
                               const SofiaAblation& ablation = {});

  /// Processes the subtensor Y_t with indicator Ω_t (Algorithm 3 lines
  /// 3-11). With SofiaConfig::use_sparse_kernels the per-step cost is
  /// O(|Ω_t| N R) (Lemma 2): forecast evaluation, outlier rejection, scale
  /// update, and gradient accumulation all run on the observed entries
  /// only, via a CooList that is cached across steps with identical masks.
  /// The dense-scan path is kept as the parity-tested reference.
  SofiaStepResult Step(const DenseTensor& y, const Mask& omega);

  /// Step with an externally built coordinate pattern of `omega`: the
  /// internal cache is a shared_ptr, so SOFIA adopts the comparison
  /// runner's per-step build outright instead of re-compacting the same
  /// mask itself. Null `pattern` behaves exactly like the two-arg Step.
  SofiaStepResult Step(const DenseTensor& y, const Mask& omega,
                       std::shared_ptr<const CooList> pattern);

  /// h-step-ahead forecast Ŷ_{t+h|t} (Eq. (28)); h >= 1.
  DenseTensor Forecast(size_t h) const;

  /// Temporal row û_{t+h|t} of the Eq. (28) forecast — the Kruskal weights
  /// of Forecast(h), for consumers that keep the forecast lazy.
  std::vector<double> ForecastRow(size_t h) const;

  /// Reconstruction [[{U^(n)}; u]] for the given temporal row (diagnostics).
  DenseTensor Reconstruct(const std::vector<double>& temporal_row) const;

  const SofiaConfig& config() const { return config_; }
  const std::vector<Matrix>& nontemporal_factors() const { return factors_; }
  /// Completed batch tensor from the initialization phase (X̂_init).
  const DenseTensor& init_completed() const { return init_completed_; }
  /// Level / trend vectors of the vector HW model (length R).
  const std::vector<double>& level() const { return level_; }
  const std::vector<double>& trend() const { return trend_; }
  /// Most recent temporal row u^(N)_t.
  const std::vector<double>& last_temporal_row() const { return last_row_; }
  /// Error-scale tensor Σ̂_t.
  const DenseTensor& error_scale() const { return sigma_; }
  /// Fitted smoothing parameters per factor column.
  const std::vector<HwParams>& hw_params() const { return hw_params_; }
  /// Seasonal component that the next Step()/Forecast(1) will use (s_{t+1-m}).
  const std::vector<double>& next_season() const { return season_[season_pos_]; }

  /// Runtime kernel knobs (not learned state): flip the Step kernel path or
  /// worker count of a live model, e.g. to parity-test the dense and sparse
  /// paths from one identical checkpoint.
  void set_use_sparse_kernels(bool v) { config_.use_sparse_kernels = v; }
  void set_num_threads(size_t n) {
    config_.num_threads = n;
    pool_.reset();
  }
  /// Number of CooList builds Step() has performed; with reuse_step_pattern
  /// a run of identical masks costs one build total, and steps that adopt a
  /// shared pattern never build at all.
  size_t step_pattern_builds() const { return step_pattern_builds_; }
  /// Unshared Step() calls that hit the mask-reuse cache instead of
  /// rebuilding (the steady-state path; the compare is O(|Ω_t|)).
  size_t step_pattern_reuses() const { return step_pattern_reuses_; }

  /// Adopt an externally owned worker pool for the sparse Step kernels (one
  /// shared pool per comparison run). Bitwise-neutral; nullptr restores the
  /// internal pool.
  void AdoptPool(std::shared_ptr<WorkerPool> pool) {
    external_pool_ = std::move(pool);
  }

  /// Checkpoints the full streaming state (config, factors, HW components,
  /// temporal-row history, error-scale tensor) to a text stream. Restoring
  /// with Deserialize() resumes Step()/Forecast() bit-for-bit.
  void Serialize(std::ostream& out) const;
  static SofiaModel Deserialize(std::istream& in);

  /// Copying branches the stream: learned state is duplicated while the
  /// derived working state (pattern cache, worker pool) resets and is
  /// rebuilt lazily — so copies still step bit-for-bit like the original.
  SofiaModel(const SofiaModel& other);
  SofiaModel& operator=(const SofiaModel& other);
  SofiaModel(SofiaModel&&) = default;
  SofiaModel& operator=(SofiaModel&&) = default;

 private:
  SofiaModel() = default;

  /// Dense-scan reference accumulation: full forecast/outlier tensors plus
  /// DenseStepGradients; fills the result's dense caches eagerly.
  void AccumulateDense(const DenseTensor& y, const Mask& omega,
                       const std::vector<double>& u_hat, StepGradients* grads,
                       SofiaStepResult* result);
  /// Observed-entry accumulation via the CooList layer; fills only the
  /// result's observed-entry views.
  void AccumulateSparse(const DenseTensor& y, const Mask& omega,
                        const std::vector<double>& u_hat,
                        std::shared_ptr<const CooList> pattern,
                        StepGradients* grads, SofiaStepResult* result);
  /// The cached (or freshly built) coordinate list of `omega`; adopts
  /// `shared` outright when given.
  const CooList& StepPattern(const Mask& omega,
                             std::shared_ptr<const CooList> shared);
  WorkerPool* StepPool();

  SofiaConfig config_;
  SofiaAblation ablation_;
  std::vector<Matrix> factors_;  ///< Non-temporal factor matrices.
  DenseTensor init_completed_;

  // Vector Holt-Winters state (Eq. (26)): one scalar model per column r.
  std::vector<HwParams> hw_params_;
  std::vector<double> level_;              ///< l_{t} (length R).
  std::vector<double> trend_;              ///< b_{t}.
  std::vector<std::vector<double>> season_;  ///< Ring of m seasonal vectors.
  size_t season_pos_ = 0;                  ///< Slot of s_{t+1-m}.

  // Temporal-row history: ring of the last m rows u^(N)_{t-m+1..t}.
  std::vector<std::vector<double>> row_history_;
  size_t row_pos_ = 0;  ///< Slot of the oldest row (u_{t-m+1}).
  std::vector<double> last_row_;  ///< u^(N)_t.

  DenseTensor sigma_;  ///< Error-scale tensor Σ̂_t (slice shape).

  // Working state of the sparse Step path (derived, never serialized): the
  // last mask's indicator as a SparseMask (O(|Ω_t|) to store and compare —
  // the dense Mask cache this replaces paid an O(volume) byte scan per
  // reuse check), its coordinate list (a shared_ptr, so comparison runners
  // can hand their per-step build straight in) and the kernel worker pool.
  SparseMask step_mask_;
  std::shared_ptr<const CooList> step_coo_;
  std::shared_ptr<const CsfTensor> step_csf_;  ///< Own-knob CSF cache.
  /// Pattern step_csf_ was built for: shared_ptr identity, so a freed
  /// pattern's reused address can never alias a stale tree cache.
  std::shared_ptr<const CooList> step_csf_source_;
  size_t step_pattern_builds_ = 0;
  size_t step_pattern_reuses_ = 0;
  std::unique_ptr<ShardExecutor> pool_;
  std::shared_ptr<WorkerPool> external_pool_;
};

}  // namespace sofia

#endif  // SOFIA_CORE_SOFIA_MODEL_H_
