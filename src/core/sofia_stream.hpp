#ifndef SOFIA_CORE_SOFIA_STREAM_H_
#define SOFIA_CORE_SOFIA_STREAM_H_

#include <memory>
#include <string>
#include <vector>

#include "core/sofia_model.hpp"
#include "eval/streaming_method.hpp"

/// \file sofia_stream.hpp
/// \brief StreamingMethod adapter for SOFIA (used by the experiment
/// harness alongside the baselines).

namespace sofia {

/// Wraps SofiaModel behind the common streaming interface. Initialize()
/// consumes the start-up window (t_i = 3m slices), then Step()/Forecast()
/// delegate to the dynamic-update and HW-forecast phases.
class SofiaStream : public StreamingMethod {
 public:
  explicit SofiaStream(SofiaConfig config, SofiaAblation ablation = {},
                       std::string display_name = "SOFIA")
      : config_(config), ablation_(ablation), name_(std::move(display_name)) {}

  std::string name() const override { return name_; }
  size_t init_window() const override { return config_.InitWindow(); }

  std::vector<DenseTensor> Initialize(
      const std::vector<DenseTensor>& slices,
      const std::vector<Mask>& masks) override;

  /// Lazy step: the model's post-update Kruskal structure (factors +
  /// temporal row) wrapped as a StepResult — no dense reconstruction. A
  /// shared pattern is adopted by the model's shared_ptr pattern cache, so
  /// comparison runs never re-compact the mask inside SOFIA either.
  StepResult StepLazy(const DenseTensor& y, const Mask& omega,
                      std::shared_ptr<const CooList> pattern =
                          nullptr) override;

  /// Advances the model without materializing the dense reconstruction —
  /// with the sparse kernel path this keeps a forecast-only pass at
  /// O(|Ω_t| N R) per slice.
  void Observe(const DenseTensor& y, const Mask& omega) override;

  bool SupportsForecast() const override { return true; }
  StepResult ForecastLazy(size_t h) const override;

  void AdoptWorkerPool(std::shared_ptr<WorkerPool> pool) override;

  /// Checkpointing delegates to SofiaModel::Serialize/Deserialize behind a
  /// model-present flag, so a pre-Initialize snapshot restores cleanly too.
  bool SupportsStateCheckpoint() const override { return true; }
  void SaveState(std::ostream& out) const override;
  void RestoreState(std::istream& in) override;

  /// The underlying model (valid after Initialize()).
  const SofiaModel& model() const;

 private:
  SofiaConfig config_;
  SofiaAblation ablation_;
  std::string name_;
  std::unique_ptr<SofiaModel> model_;
  std::shared_ptr<WorkerPool> adopted_pool_;  ///< Applied to the model.
};

}  // namespace sofia

#endif  // SOFIA_CORE_SOFIA_STREAM_H_
