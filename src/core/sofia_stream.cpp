#include "core/sofia_stream.hpp"

#include <istream>
#include <ostream>
#include <utility>

#include "util/check.hpp"
#include "util/state_io.hpp"

namespace sofia {

std::vector<DenseTensor> SofiaStream::Initialize(
    const std::vector<DenseTensor>& slices, const std::vector<Mask>& masks) {
  model_ = std::make_unique<SofiaModel>(
      SofiaModel::Initialize(slices, masks, config_, ablation_));
  if (adopted_pool_ != nullptr) model_->AdoptPool(adopted_pool_);
  std::vector<DenseTensor> completed;
  completed.reserve(slices.size());
  const DenseTensor& batch = model_->init_completed();
  for (size_t t = 0; t < slices.size(); ++t) {
    completed.push_back(batch.SliceLastMode(t));
  }
  return completed;
}

StepResult SofiaStream::StepLazy(const DenseTensor& y, const Mask& omega,
                                 std::shared_ptr<const CooList> pattern) {
  SOFIA_CHECK(model_ != nullptr) << "SofiaStream::Initialize must run first";
  SofiaStepResult out = model_->Step(y, omega, std::move(pattern));
  return StepResult::Kruskal(out.factors(), out.temporal_row());
}

void SofiaStream::Observe(const DenseTensor& y, const Mask& omega) {
  SOFIA_CHECK(model_ != nullptr) << "SofiaStream::Initialize must run first";
  model_->Step(y, omega);  // The lazy result never materializes a slice.
}

StepResult SofiaStream::ForecastLazy(size_t h) const {
  SOFIA_CHECK(model_ != nullptr) << "SofiaStream::Initialize must run first";
  return StepResult::Kruskal(model_->nontemporal_factors(),
                             model_->ForecastRow(h));
}

void SofiaStream::AdoptWorkerPool(std::shared_ptr<WorkerPool> pool) {
  adopted_pool_ = std::move(pool);
  if (model_ != nullptr) model_->AdoptPool(adopted_pool_);
}

void SofiaStream::SaveState(std::ostream& out) const {
  state_io::BeginState(out, "sofia-stream", 1);
  out << (model_ != nullptr ? 1 : 0) << '\n';
  if (model_ != nullptr) model_->Serialize(out);
}

void SofiaStream::RestoreState(std::istream& in) {
  state_io::ReadStateHeader(in, "sofia-stream", 1);
  int has_model = 0;
  state_io::Require(static_cast<bool>(in >> has_model),
                    "corrupt sofia-stream checkpoint");
  if (has_model == 0) {
    model_.reset();
    return;
  }
  model_ = std::make_unique<SofiaModel>(SofiaModel::Deserialize(in));
  if (adopted_pool_ != nullptr) model_->AdoptPool(adopted_pool_);
}

const SofiaModel& SofiaStream::model() const {
  SOFIA_CHECK(model_ != nullptr) << "SofiaStream::Initialize must run first";
  return *model_;
}

}  // namespace sofia
