#include "core/sofia_stream.hpp"

#include "util/check.hpp"

namespace sofia {

std::vector<DenseTensor> SofiaStream::Initialize(
    const std::vector<DenseTensor>& slices, const std::vector<Mask>& masks) {
  model_ = std::make_unique<SofiaModel>(
      SofiaModel::Initialize(slices, masks, config_, ablation_));
  std::vector<DenseTensor> completed;
  completed.reserve(slices.size());
  const DenseTensor& batch = model_->init_completed();
  for (size_t t = 0; t < slices.size(); ++t) {
    completed.push_back(batch.SliceLastMode(t));
  }
  return completed;
}

DenseTensor SofiaStream::Step(const DenseTensor& y, const Mask& omega) {
  SOFIA_CHECK(model_ != nullptr) << "SofiaStream::Initialize must run first";
  return model_->Step(y, omega).imputed();
}

void SofiaStream::Observe(const DenseTensor& y, const Mask& omega) {
  SOFIA_CHECK(model_ != nullptr) << "SofiaStream::Initialize must run first";
  model_->Step(y, omega);  // The lazy result never materializes a slice.
}

DenseTensor SofiaStream::Forecast(size_t h) const {
  SOFIA_CHECK(model_ != nullptr) << "SofiaStream::Initialize must run first";
  return model_->Forecast(h);
}

const SofiaModel& SofiaStream::model() const {
  SOFIA_CHECK(model_ != nullptr) << "SofiaStream::Initialize must run first";
  return *model_;
}

}  // namespace sofia
