#include "core/sofia_als.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/solve.hpp"
#include "linalg/vector_ops.hpp"
#include "tensor/kruskal.hpp"
#include "util/check.hpp"

namespace sofia {

namespace {

/// Per-mode accumulation of the normal equations of Theorem 1: for every row
/// i_n of mode `mode`, B[i_n] += h h^T and c[i_n] += y* h where
/// h = ⊛_{l != mode} u^(l)_{i_l}, summed over observed entries in that slice.
struct RowSystems {
  std::vector<Matrix> b;               // One R x R matrix per row.
  std::vector<std::vector<double>> c;  // One R vector per row.
};

RowSystems AccumulateRowSystems(const DenseTensor& y, const Mask& omega,
                                const DenseTensor& o,
                                const std::vector<Matrix>& factors,
                                size_t mode) {
  const Shape& shape = y.shape();
  const size_t rank = factors[0].cols();
  const size_t rows = shape.dim(mode);

  RowSystems sys;
  sys.b.assign(rows, Matrix(rank, rank));
  sys.c.assign(rows, std::vector<double>(rank, 0.0));

  std::vector<size_t> idx(shape.order(), 0);
  std::vector<double> h(rank);
  for (size_t linear = 0; linear < shape.NumElements(); ++linear) {
    if (omega.Get(linear)) {
      for (size_t r = 0; r < rank; ++r) {
        double p = 1.0;
        for (size_t l = 0; l < factors.size(); ++l) {
          if (l != mode) p *= factors[l](idx[l], r);
        }
        h[r] = p;
      }
      const double ystar = y[linear] - o[linear];
      Matrix& b = sys.b[idx[mode]];
      std::vector<double>& c = sys.c[idx[mode]];
      for (size_t r = 0; r < rank; ++r) {
        const double hr = h[r];
        c[r] += ystar * hr;
        double* brow = b.Row(r);
        for (size_t q = 0; q < rank; ++q) brow[q] += hr * h[q];
      }
    }
    shape.Next(&idx);
  }
  return sys;
}

/// Masked residual norm ||Ω ⊛ (Y* - X̂)||_F without materializing X̂.
double MaskedResidualNorm(const DenseTensor& y, const Mask& omega,
                          const DenseTensor& o,
                          const std::vector<Matrix>& factors) {
  const Shape& shape = y.shape();
  std::vector<size_t> idx(shape.order(), 0);
  double s = 0.0;
  for (size_t linear = 0; linear < shape.NumElements(); ++linear) {
    if (omega.Get(linear)) {
      const double r = (y[linear] - o[linear]) - KruskalEntry(factors, idx);
      s += r * r;
    }
    shape.Next(&idx);
  }
  return std::sqrt(s);
}

double MaskedDataNorm(const DenseTensor& y, const Mask& omega,
                      const DenseTensor& o) {
  double s = 0.0;
  for (size_t linear = 0; linear < y.NumElements(); ++linear) {
    if (omega.Get(linear)) {
      const double v = y[linear] - o[linear];
      s += v * v;
    }
  }
  return std::sqrt(s);
}

}  // namespace

double SoftThreshold(double x, double threshold) {
  const double mag = std::fabs(x) - threshold;
  if (mag <= 0.0) return 0.0;
  return x >= 0.0 ? mag : -mag;
}

SofiaAlsResult SofiaAls(const DenseTensor& y, const Mask& omega,
                        const DenseTensor& o, const SofiaConfig& config,
                        std::vector<Matrix>* factors, bool smooth_temporal) {
  SOFIA_CHECK(y.shape() == omega.shape());
  SOFIA_CHECK(y.shape() == o.shape());
  SOFIA_CHECK_EQ(factors->size(), y.order());
  const size_t num_modes = y.order();
  const size_t temporal = num_modes - 1;
  const size_t rank = (*factors)[0].cols();
  const size_t duration = y.dim(temporal);
  const double lambda1 = smooth_temporal ? config.lambda1 : 0.0;
  const double lambda2 = smooth_temporal ? config.lambda2 : 0.0;
  const long period = static_cast<long>(config.period);

  const double data_norm = MaskedDataNorm(y, omega, o);
  double fitness = 0.0;
  bool have_fitness = false;

  auto all_finite = [&]() {
    // 1e100 as "sane" bound: entries beyond it would overflow the h·h^T
    // accumulation of the next sweep even though they are still finite.
    for (const Matrix& f : *factors) {
      for (size_t k = 0; k < f.size(); ++k) {
        if (!std::isfinite(f.data()[k]) || std::fabs(f.data()[k]) > 1e100) {
          return false;
        }
      }
    }
    return true;
  };

  // True if the accumulated normal equations of a row are numerically sane.
  auto system_finite = [](const Matrix& b, const std::vector<double>& c) {
    for (size_t k = 0; k < b.size(); ++k) {
      if (!std::isfinite(b.data()[k])) return false;
    }
    for (double v : c) {
      if (!std::isfinite(v)) return false;
    }
    return true;
  };

  // Scale-aware Tikhonov ridge (see SofiaConfig::factor_ridge): shifts a
  // row system by factor_ridge * tr(B)/R, damping degenerate directions
  // without distorting well-conditioned solves by more than ~factor_ridge.
  auto apply_ridge = [&](Matrix* b) {
    if (config.factor_ridge <= 0.0) return;
    double trace = 0.0;
    for (size_t r = 0; r < rank; ++r) trace += (*b)(r, r);
    const double shift = config.factor_ridge * trace / static_cast<double>(rank);
    for (size_t r = 0; r < rank; ++r) (*b)(r, r) += shift;
  };

  SofiaAlsResult result;
  std::vector<Matrix> last_finite = *factors;
  for (int sweep = 0; sweep < config.max_als_iterations && !result.diverged;
       ++sweep) {
    result.sweeps = sweep + 1;
    // --- Non-temporal modes: exact row minimizers (Theorem 1). ---
    for (size_t n = 0; n < temporal && !result.diverged; ++n) {
      RowSystems sys = AccumulateRowSystems(y, omega, o, *factors, n);
      Matrix& u = (*factors)[n];
      for (size_t i = 0; i < u.rows(); ++i) {
        if (!system_finite(sys.b[i], sys.c[i])) {
          result.diverged = true;
          break;
        }
        apply_ridge(&sys.b[i]);
        std::vector<double> row = SolveRidge(sys.b[i], sys.c[i]);
        u.SetRow(i, row);
      }
      if (result.diverged) break;
      // Fold the new column norms into the temporal factor and normalize
      // (Algorithm 2 lines 7-9). Zero columns are left untouched.
      Matrix& ut = (*factors)[temporal];
      for (size_t r = 0; r < rank; ++r) {
        const double norm = u.ColNorm(r);
        if (norm <= 0.0) continue;
        for (size_t t = 0; t < ut.rows(); ++t) ut(t, r) *= norm;
        for (size_t i = 0; i < u.rows(); ++i) u(i, r) /= norm;
      }
    }

    // --- Temporal mode: smoothness-coupled row solves (Eq. (17)). ---
    if (!result.diverged) {
      RowSystems sys = AccumulateRowSystems(y, omega, o, *factors, temporal);
      Matrix& ut = (*factors)[temporal];
      for (size_t i = 0; i < duration; ++i) {
        if (!system_finite(sys.b[i], sys.c[i])) {
          result.diverged = true;
          break;
        }
        Matrix b = sys.b[i];
        std::vector<double> c = sys.c[i];
        apply_ridge(&b);
        const long ii = static_cast<long>(i);
        double diag = 0.0;
        // λ1-coupling with in-range +-1 neighbours; λ2 with +-m. Rows are
        // solved in order, so earlier neighbours already hold new values
        // (Gauss-Seidel), matching the paper's row-by-row schedule.
        for (long j : {ii - 1, ii + 1}) {
          if (j < 0 || j >= static_cast<long>(duration)) continue;
          diag += lambda1;
          const double* nrow = ut.Row(static_cast<size_t>(j));
          for (size_t r = 0; r < rank; ++r) c[r] += lambda1 * nrow[r];
        }
        for (long j : {ii - period, ii + period}) {
          if (j < 0 || j >= static_cast<long>(duration)) continue;
          diag += lambda2;
          const double* nrow = ut.Row(static_cast<size_t>(j));
          for (size_t r = 0; r < rank; ++r) c[r] += lambda2 * nrow[r];
        }
        for (size_t r = 0; r < rank; ++r) b(r, r) += diag;
        std::vector<double> row = SolveRidge(b, c);
        ut.SetRow(i, row);
      }
    }

    // Divergence guard: under heavy corruption the unregularized fit can
    // blow past double range within a few sweeps (the paper's Fig. 2(b)
    // phenomenon). Roll back to the last finite state and stop.
    if (result.diverged || !all_finite()) {
      *factors = std::move(last_finite);
      result.diverged = true;
      break;
    }
    last_finite = *factors;

    // --- Fitness-based convergence test (Algorithm 2 lines 13-15). ---
    const double residual = MaskedResidualNorm(y, omega, o, *factors);
    const double new_fitness =
        data_norm > 0.0 ? 1.0 - residual / data_norm : 1.0;
    if (have_fitness &&
        std::fabs(new_fitness - fitness) < config.tolerance) {
      fitness = new_fitness;
      break;
    }
    fitness = new_fitness;
    have_fitness = true;
  }

  result.fitness = fitness;
  result.completed = KruskalTensor(*factors);
  return result;
}

double SofiaObjective(const DenseTensor& y, const Mask& omega,
                      const DenseTensor& o, const SofiaConfig& config,
                      const std::vector<Matrix>& factors) {
  const double residual = MaskedResidualNorm(y, omega, o, factors);
  double obj = residual * residual;

  const Matrix& ut = factors.back();
  const size_t duration = ut.rows();
  const size_t rank = ut.cols();
  // ||L_1 U^(N)||_F^2 and ||L_m U^(N)||_F^2.
  auto smoothness = [&](size_t gap) {
    if (gap >= duration) return 0.0;
    double s = 0.0;
    for (size_t i = 0; i + gap < duration; ++i) {
      for (size_t r = 0; r < rank; ++r) {
        const double d = ut(i, r) - ut(i + gap, r);
        s += d * d;
      }
    }
    return s;
  };
  obj += config.lambda1 * smoothness(1);
  obj += config.lambda2 * smoothness(config.period);

  double l1 = 0.0;
  for (size_t k = 0; k < o.NumElements(); ++k) l1 += std::fabs(o[k]);
  obj += config.lambda3 * l1;
  return obj;
}

}  // namespace sofia
