#include "core/sofia_als.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "linalg/solve.hpp"
#include "linalg/vector_ops.hpp"
#include "tensor/kruskal.hpp"
#include "tensor/sparse_kernels.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"

namespace sofia {

namespace {

/// The Algorithm-2 sweep loop, parameterized over the accumulation and
/// residual kernels so the COO (observed-entry) and dense-scan paths share
/// one implementation. `accumulate(mode)` returns the Theorem-1 row systems
/// for that mode; `residual_norm()` evaluates ||Ω ⊛ (Y* - X̂)||_F at the
/// current factors.
SofiaAlsResult SofiaAlsLoop(
    const std::function<RowSystems(size_t)>& accumulate,
    const std::function<double()>& residual_norm, double data_norm,
    const SofiaConfig& config, std::vector<Matrix>* factors,
    bool smooth_temporal) {
  const size_t num_modes = factors->size();
  const size_t temporal = num_modes - 1;
  const size_t rank = (*factors)[0].cols();
  const size_t duration = (*factors)[temporal].rows();
  const double lambda1 = smooth_temporal ? config.lambda1 : 0.0;
  const double lambda2 = smooth_temporal ? config.lambda2 : 0.0;
  const long period = static_cast<long>(config.period);

  double fitness = 0.0;
  bool have_fitness = false;

  auto all_finite = [&]() {
    // 1e100 as "sane" bound: entries beyond it would overflow the h·h^T
    // accumulation of the next sweep even though they are still finite.
    for (const Matrix& f : *factors) {
      for (size_t k = 0; k < f.size(); ++k) {
        if (!std::isfinite(f.data()[k]) || std::fabs(f.data()[k]) > 1e100) {
          return false;
        }
      }
    }
    return true;
  };

  // True if the accumulated normal equations of a row are numerically sane.
  auto system_finite = [](const Matrix& b, const std::vector<double>& c) {
    for (size_t k = 0; k < b.size(); ++k) {
      if (!std::isfinite(b.data()[k])) return false;
    }
    for (double v : c) {
      if (!std::isfinite(v)) return false;
    }
    return true;
  };

  // Scale-aware Tikhonov ridge (see SofiaConfig::factor_ridge): shifts a
  // row system by factor_ridge * tr(B)/R, damping degenerate directions
  // without distorting well-conditioned solves by more than ~factor_ridge.
  auto apply_ridge = [&](Matrix* b) {
    if (config.factor_ridge <= 0.0) return;
    double trace = 0.0;
    for (size_t r = 0; r < rank; ++r) trace += (*b)(r, r);
    const double shift = config.factor_ridge * trace / static_cast<double>(rank);
    for (size_t r = 0; r < rank; ++r) (*b)(r, r) += shift;
  };

  SofiaAlsResult result;
  std::vector<Matrix> last_finite = *factors;
  for (int sweep = 0; sweep < config.max_als_iterations && !result.diverged;
       ++sweep) {
    result.sweeps = sweep + 1;
    // --- Non-temporal modes: exact row minimizers (Theorem 1). ---
    for (size_t n = 0; n < temporal && !result.diverged; ++n) {
      RowSystems sys = accumulate(n);
      Matrix& u = (*factors)[n];
      for (size_t i = 0; i < u.rows(); ++i) {
        if (!system_finite(sys.b[i], sys.c[i])) {
          result.diverged = true;
          break;
        }
        apply_ridge(&sys.b[i]);
        std::vector<double> row = SolveRidge(sys.b[i], sys.c[i]);
        u.SetRow(i, row);
      }
      if (result.diverged) break;
      // Fold the new column norms into the temporal factor and normalize
      // (Algorithm 2 lines 7-9). Zero columns are left untouched.
      Matrix& ut = (*factors)[temporal];
      for (size_t r = 0; r < rank; ++r) {
        const double norm = u.ColNorm(r);
        if (norm <= 0.0) continue;
        for (size_t t = 0; t < ut.rows(); ++t) ut(t, r) *= norm;
        for (size_t i = 0; i < u.rows(); ++i) u(i, r) /= norm;
      }
    }

    // --- Temporal mode: smoothness-coupled row solves (Eq. (17)). ---
    if (!result.diverged) {
      RowSystems sys = accumulate(temporal);
      Matrix& ut = (*factors)[temporal];
      for (size_t i = 0; i < duration; ++i) {
        if (!system_finite(sys.b[i], sys.c[i])) {
          result.diverged = true;
          break;
        }
        Matrix b = sys.b[i];
        std::vector<double> c = sys.c[i];
        apply_ridge(&b);
        const long ii = static_cast<long>(i);
        double diag = 0.0;
        // λ1-coupling with in-range +-1 neighbours; λ2 with +-m. Rows are
        // solved in order, so earlier neighbours already hold new values
        // (Gauss-Seidel), matching the paper's row-by-row schedule.
        for (long j : {ii - 1, ii + 1}) {
          if (j < 0 || j >= static_cast<long>(duration)) continue;
          diag += lambda1;
          const double* nrow = ut.Row(static_cast<size_t>(j));
          for (size_t r = 0; r < rank; ++r) c[r] += lambda1 * nrow[r];
        }
        for (long j : {ii - period, ii + period}) {
          if (j < 0 || j >= static_cast<long>(duration)) continue;
          diag += lambda2;
          const double* nrow = ut.Row(static_cast<size_t>(j));
          for (size_t r = 0; r < rank; ++r) c[r] += lambda2 * nrow[r];
        }
        for (size_t r = 0; r < rank; ++r) b(r, r) += diag;
        std::vector<double> row = SolveRidge(b, c);
        ut.SetRow(i, row);
      }
    }

    // Divergence guard: under heavy corruption the unregularized fit can
    // blow past double range within a few sweeps (the paper's Fig. 2(b)
    // phenomenon). Roll back to the last finite state and stop.
    if (result.diverged || !all_finite()) {
      *factors = std::move(last_finite);
      result.diverged = true;
      break;
    }
    last_finite = *factors;

    // --- Fitness-based convergence test (Algorithm 2 lines 13-15). ---
    const double residual = residual_norm();
    const double new_fitness =
        data_norm > 0.0 ? 1.0 - residual / data_norm : 1.0;
    if (have_fitness &&
        std::fabs(new_fitness - fitness) < config.tolerance) {
      fitness = new_fitness;
      break;
    }
    fitness = new_fitness;
    have_fitness = true;
  }

  result.fitness = fitness;
  result.completed = KruskalTensor(*factors);
  return result;
}

}  // namespace

double SoftThreshold(double x, double threshold) {
  const double mag = std::fabs(x) - threshold;
  if (mag <= 0.0) return 0.0;
  return x >= 0.0 ? mag : -mag;
}

SofiaAlsResult SofiaAls(const CooList& coo, const DenseTensor& y,
                        const DenseTensor& o, const SofiaConfig& config,
                        std::vector<Matrix>* factors, bool smooth_temporal) {
  SOFIA_CHECK(y.shape() == coo.shape());
  SOFIA_CHECK(y.shape() == o.shape());
  SOFIA_CHECK_EQ(factors->size(), y.order());
  // Gather y* = y - o once: the CooList structure and these values are
  // shared by all N modes of every sweep (Lemma 1's O(|Ω| N R (N+R))).
  const std::vector<double> ystar = coo.GatherResidual(y, o);
  // One pool for the whole run: a sweep issues N+2 kernel calls and there
  // can be hundreds of sweeps, so workers are spawned once, not per call.
  ThreadPool pool(ResolveNumThreads(config.num_threads));
  auto accumulate = [&](size_t mode) {
    return CooRowSystems(coo, ystar, *factors, mode, 1, &pool);
  };
  auto residual = [&]() {
    return CooResidualNorm(coo, ystar, *factors, 1, &pool);
  };
  return SofiaAlsLoop(accumulate, residual, CooDataNorm(ystar), config,
                      factors, smooth_temporal);
}

SofiaAlsResult SofiaAls(const DenseTensor& y, const Mask& omega,
                        const DenseTensor& o, const SofiaConfig& config,
                        std::vector<Matrix>* factors, bool smooth_temporal) {
  SOFIA_CHECK(y.shape() == omega.shape());
  SOFIA_CHECK(y.shape() == o.shape());
  SOFIA_CHECK_EQ(factors->size(), y.order());
  if (config.use_sparse_kernels) {
    const CooList coo = CooList::Build(omega);
    return SofiaAls(coo, y, o, config, factors, smooth_temporal);
  }
  auto accumulate = [&](size_t mode) {
    return DenseRowSystems(y, omega, o, *factors, mode);
  };
  auto residual = [&]() { return DenseResidualNorm(y, omega, o, *factors); };
  return SofiaAlsLoop(accumulate, residual, DenseDataNorm(y, omega, o),
                      config, factors, smooth_temporal);
}

double SofiaObjective(const DenseTensor& y, const Mask& omega,
                      const DenseTensor& o, const SofiaConfig& config,
                      const std::vector<Matrix>& factors) {
  const double residual = DenseResidualNorm(y, omega, o, factors);
  double obj = residual * residual;

  const Matrix& ut = factors.back();
  const size_t duration = ut.rows();
  const size_t rank = ut.cols();
  // ||L_1 U^(N)||_F^2 and ||L_m U^(N)||_F^2.
  auto smoothness = [&](size_t gap) {
    if (gap >= duration) return 0.0;
    double s = 0.0;
    for (size_t i = 0; i + gap < duration; ++i) {
      for (size_t r = 0; r < rank; ++r) {
        const double d = ut(i, r) - ut(i + gap, r);
        s += d * d;
      }
    }
    return s;
  };
  obj += config.lambda1 * smoothness(1);
  obj += config.lambda2 * smoothness(config.period);

  double l1 = 0.0;
  for (size_t k = 0; k < o.NumElements(); ++k) l1 += std::fabs(o[k]);
  obj += config.lambda3 * l1;
  return obj;
}

}  // namespace sofia
