#ifndef SOFIA_CORE_SOFIA_INIT_H_
#define SOFIA_CORE_SOFIA_INIT_H_

#include <vector>

#include "core/sofia_als.hpp"
#include "core/sofia_config.hpp"
#include "linalg/matrix.hpp"
#include "tensor/dense_tensor.hpp"
#include "tensor/mask.hpp"

/// \file sofia_init.hpp
/// \brief Initialization step of SOFIA (Algorithm 1).
///
/// The first t_i = 3m subtensors are stacked into a batch tensor and
/// alternately (a) factorized with SOFIA_ALS on the outlier-removed data and
/// (b) de-noised by soft-thresholding the residual into the outlier tensor,
/// with the threshold λ3 decayed by d = 0.85 per round (floored at λ3/100).

namespace sofia {

/// Output of the initialization phase.
struct SofiaInitResult {
  DenseTensor completed;        ///< X̂_init: low-rank completion of the batch.
  DenseTensor outliers;         ///< O_init: estimated sparse outliers.
  std::vector<Matrix> factors;  ///< {U^(n)}: all N factor matrices.
  int outer_iterations = 0;     ///< Rounds of (ALS, soft-threshold) executed.
};

/// Runs Algorithm 1 on the first slices of a stream. `slices` and `masks`
/// must contain t_i = config.InitWindow() aligned (N-1)-way subtensors.
/// Set `smooth_temporal` to false to initialize with vanilla ALS instead of
/// SOFIA_ALS (the Fig. 2 ablation).
SofiaInitResult SofiaInitialize(const std::vector<DenseTensor>& slices,
                                const std::vector<Mask>& masks,
                                const SofiaConfig& config,
                                bool smooth_temporal = true);

}  // namespace sofia

#endif  // SOFIA_CORE_SOFIA_INIT_H_
