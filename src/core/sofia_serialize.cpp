#include <iomanip>
#include <istream>
#include <ostream>
#include <string>

#include "core/sofia_model.hpp"
#include "util/check.hpp"

/// \file sofia_serialize.cpp
/// \brief Text checkpointing of SofiaModel (Serialize / Deserialize).
///
/// Format: a "sofia-model v2" header followed by whitespace-separated
/// fields in a fixed order (v2 appends the kernel-path knobs to the config
/// block; v1 checkpoints still load, with the current defaults for those
/// knobs). Doubles round-trip via max_digits10 so the restored model
/// continues the stream bit-for-bit.

namespace sofia {

namespace {

void WriteVector(std::ostream& out, const std::vector<double>& v) {
  out << v.size();
  for (double x : v) out << ' ' << x;
  out << '\n';
}

std::vector<double> ReadVector(std::istream& in) {
  size_t n = 0;
  SOFIA_CHECK(static_cast<bool>(in >> n)) << "corrupt checkpoint (vector)";
  std::vector<double> v(n);
  for (double& x : v) SOFIA_CHECK(static_cast<bool>(in >> x));
  return v;
}

void WriteMatrix(std::ostream& out, const Matrix& m) {
  out << m.rows() << ' ' << m.cols();
  for (size_t k = 0; k < m.size(); ++k) out << ' ' << m.data()[k];
  out << '\n';
}

Matrix ReadMatrix(std::istream& in) {
  size_t rows = 0, cols = 0;
  SOFIA_CHECK(static_cast<bool>(in >> rows >> cols))
      << "corrupt checkpoint (matrix)";
  Matrix m(rows, cols);
  for (size_t k = 0; k < m.size(); ++k) {
    SOFIA_CHECK(static_cast<bool>(in >> m.data()[k]));
  }
  return m;
}

void WriteTensor(std::ostream& out, const DenseTensor& t) {
  out << t.order();
  for (size_t n = 0; n < t.order(); ++n) out << ' ' << t.dim(n);
  for (size_t k = 0; k < t.NumElements(); ++k) out << ' ' << t[k];
  out << '\n';
}

DenseTensor ReadTensor(std::istream& in) {
  size_t order = 0;
  SOFIA_CHECK(static_cast<bool>(in >> order))
      << "corrupt checkpoint (tensor)";
  std::vector<size_t> dims(order);
  for (size_t& d : dims) SOFIA_CHECK(static_cast<bool>(in >> d));
  DenseTensor t((Shape(dims)));
  for (size_t k = 0; k < t.NumElements(); ++k) {
    SOFIA_CHECK(static_cast<bool>(in >> t[k]));
  }
  return t;
}

}  // namespace

void SofiaModel::Serialize(std::ostream& out) const {
  out << "sofia-model v2\n";
  out << std::setprecision(17);
  out << config_.rank << ' ' << config_.period << ' '
      << config_.init_seasons << ' ' << config_.lambda1 << ' '
      << config_.lambda2 << ' ' << config_.lambda3 << ' ' << config_.mu
      << ' ' << config_.phi << ' ' << config_.factor_ridge << ' '
      << (config_.normalized_step ? 1 : 0) << ' ' << config_.huber_k << ' '
      << config_.biweight_ck << '\n';
  // Kernel-path knobs (v2): Step's summation order differs between the
  // dense and sparse paths at the ulp level, so the selected path must
  // round-trip for Deserialize() to resume the stream bit-for-bit.
  // num_threads stays runtime-only — results are bitwise identical for
  // every thread count, and the right worker count is a property of the
  // restoring machine, not the checkpoint.
  out << (config_.use_sparse_kernels ? 1 : 0) << ' '
      << (config_.reuse_step_pattern ? 1 : 0) << '\n';
  out << (ablation_.reject_outliers ? 1 : 0) << ' '
      << (ablation_.scale_before_reject ? 1 : 0) << ' '
      << (ablation_.temporal_smoothness ? 1 : 0) << '\n';

  out << factors_.size() << '\n';
  for (const Matrix& f : factors_) WriteMatrix(out, f);

  out << hw_params_.size() << '\n';
  for (const HwParams& p : hw_params_) {
    out << p.alpha << ' ' << p.beta << ' ' << p.gamma << '\n';
  }
  WriteVector(out, level_);
  WriteVector(out, trend_);
  out << season_.size() << ' ' << season_pos_ << '\n';
  for (const auto& s : season_) WriteVector(out, s);
  out << row_history_.size() << ' ' << row_pos_ << '\n';
  for (const auto& r : row_history_) WriteVector(out, r);
  WriteVector(out, last_row_);
  WriteTensor(out, sigma_);
}

SofiaModel SofiaModel::Deserialize(std::istream& in) {
  std::string tag, version;
  SOFIA_CHECK(static_cast<bool>(in >> tag >> version) &&
              tag == "sofia-model" && (version == "v1" || version == "v2"))
      << "not a sofia-model checkpoint";

  SofiaModel model;
  int normalized = 0;
  SOFIA_CHECK(static_cast<bool>(
      in >> model.config_.rank >> model.config_.period >>
      model.config_.init_seasons >> model.config_.lambda1 >>
      model.config_.lambda2 >> model.config_.lambda3 >> model.config_.mu >>
      model.config_.phi >> model.config_.factor_ridge >> normalized >>
      model.config_.huber_k >> model.config_.biweight_ck));
  model.config_.normalized_step = normalized != 0;
  if (version == "v2") {
    int sparse = 1, reuse = 1;
    SOFIA_CHECK(static_cast<bool>(in >> sparse >> reuse));
    model.config_.use_sparse_kernels = sparse != 0;
    model.config_.reuse_step_pattern = reuse != 0;
  }  // v1 checkpoints keep the SofiaConfig defaults for the kernel knobs.
  int reject = 1, scale_first = 0, smooth = 1;
  SOFIA_CHECK(static_cast<bool>(in >> reject >> scale_first >> smooth));
  model.ablation_.reject_outliers = reject != 0;
  model.ablation_.scale_before_reject = scale_first != 0;
  model.ablation_.temporal_smoothness = smooth != 0;

  size_t num_factors = 0;
  SOFIA_CHECK(static_cast<bool>(in >> num_factors));
  for (size_t n = 0; n < num_factors; ++n) {
    model.factors_.push_back(ReadMatrix(in));
  }

  size_t num_params = 0;
  SOFIA_CHECK(static_cast<bool>(in >> num_params));
  model.hw_params_.resize(num_params);
  for (HwParams& p : model.hw_params_) {
    SOFIA_CHECK(static_cast<bool>(in >> p.alpha >> p.beta >> p.gamma));
  }
  model.level_ = ReadVector(in);
  model.trend_ = ReadVector(in);
  size_t seasons = 0;
  SOFIA_CHECK(static_cast<bool>(in >> seasons >> model.season_pos_));
  model.season_.resize(seasons);
  for (auto& s : model.season_) s = ReadVector(in);
  size_t history = 0;
  SOFIA_CHECK(static_cast<bool>(in >> history >> model.row_pos_));
  model.row_history_.resize(history);
  for (auto& r : model.row_history_) r = ReadVector(in);
  model.last_row_ = ReadVector(in);
  model.sigma_ = ReadTensor(in);

  SOFIA_CHECK_EQ(model.season_.size(), model.config_.period);
  SOFIA_CHECK_EQ(model.row_history_.size(), model.config_.period);
  SOFIA_CHECK_EQ(model.level_.size(), model.config_.rank);
  return model;
}

}  // namespace sofia
