#include <istream>
#include <ostream>
#include <string>

#include "core/sofia_model.hpp"
#include "util/check.hpp"
#include "util/state_io.hpp"

/// \file sofia_serialize.cpp
/// \brief Text checkpointing of SofiaModel (Serialize / Deserialize).
///
/// Format: a "sofia-model v2" header followed by whitespace-separated
/// fields in a fixed order (v2 appends the kernel-path knobs to the config
/// block; v1 checkpoints still load, with the current defaults for those
/// knobs). Doubles round-trip via max_digits10 so the restored model
/// continues the stream bit-for-bit. The field primitives live in
/// util/state_io and are shared with every StreamingMethod::SaveState
/// implementation.

namespace sofia {

void SofiaModel::Serialize(std::ostream& out) const {
  state_io::BeginState(out, "sofia-model", 2);
  out << config_.rank << ' ' << config_.period << ' '
      << config_.init_seasons << ' ' << config_.lambda1 << ' '
      << config_.lambda2 << ' ' << config_.lambda3 << ' ' << config_.mu
      << ' ' << config_.phi << ' ' << config_.factor_ridge << ' '
      << (config_.normalized_step ? 1 : 0) << ' ' << config_.huber_k << ' '
      << config_.biweight_ck << '\n';
  // Kernel-path knobs (v2): Step's summation order differs between the
  // dense and sparse paths at the ulp level, so the selected path must
  // round-trip for Deserialize() to resume the stream bit-for-bit.
  // num_threads stays runtime-only — results are bitwise identical for
  // every thread count, and the right worker count is a property of the
  // restoring machine, not the checkpoint.
  out << (config_.use_sparse_kernels ? 1 : 0) << ' '
      << (config_.reuse_step_pattern ? 1 : 0) << '\n';
  out << (ablation_.reject_outliers ? 1 : 0) << ' '
      << (ablation_.scale_before_reject ? 1 : 0) << ' '
      << (ablation_.temporal_smoothness ? 1 : 0) << '\n';

  out << factors_.size() << '\n';
  for (const Matrix& f : factors_) state_io::WriteMatrix(out, f);

  out << hw_params_.size() << '\n';
  for (const HwParams& p : hw_params_) {
    out << p.alpha << ' ' << p.beta << ' ' << p.gamma << '\n';
  }
  state_io::WriteVector(out, level_);
  state_io::WriteVector(out, trend_);
  out << season_.size() << ' ' << season_pos_ << '\n';
  for (const auto& s : season_) state_io::WriteVector(out, s);
  out << row_history_.size() << ' ' << row_pos_ << '\n';
  for (const auto& r : row_history_) state_io::WriteVector(out, r);
  state_io::WriteVector(out, last_row_);
  state_io::WriteTensor(out, sigma_);
}

SofiaModel SofiaModel::Deserialize(std::istream& in) {
  const int version = state_io::ReadStateHeader(in, "sofia-model", 2);

  const char* what = "corrupt sofia-model checkpoint";
  SofiaModel model;
  int normalized = 0;
  state_io::Require(
      static_cast<bool>(
          in >> model.config_.rank >> model.config_.period >>
          model.config_.init_seasons >> model.config_.lambda1 >>
          model.config_.lambda2 >> model.config_.lambda3 >>
          model.config_.mu >> model.config_.phi >>
          model.config_.factor_ridge >> normalized >>
          model.config_.huber_k >> model.config_.biweight_ck),
      what);
  model.config_.normalized_step = normalized != 0;
  if (version >= 2) {
    int sparse = 1, reuse = 1;
    state_io::Require(static_cast<bool>(in >> sparse >> reuse), what);
    model.config_.use_sparse_kernels = sparse != 0;
    model.config_.reuse_step_pattern = reuse != 0;
  }  // v1 checkpoints keep the SofiaConfig defaults for the kernel knobs.
  int reject = 1, scale_first = 0, smooth = 1;
  state_io::Require(static_cast<bool>(in >> reject >> scale_first >> smooth),
                    what);
  model.ablation_.reject_outliers = reject != 0;
  model.ablation_.scale_before_reject = scale_first != 0;
  model.ablation_.temporal_smoothness = smooth != 0;

  size_t num_factors = 0;
  state_io::Require(
      static_cast<bool>(in >> num_factors) && num_factors <= 16, what);
  for (size_t n = 0; n < num_factors; ++n) {
    model.factors_.push_back(state_io::ReadMatrix(in));
  }

  size_t num_params = 0;
  state_io::Require(static_cast<bool>(in >> num_params) &&
                        num_params <= state_io::kMaxStateElements,
                    what);
  model.hw_params_.resize(num_params);
  for (HwParams& p : model.hw_params_) {
    state_io::Require(static_cast<bool>(in >> p.alpha >> p.beta >> p.gamma),
                      what);
  }
  model.level_ = state_io::ReadVector(in);
  model.trend_ = state_io::ReadVector(in);
  size_t seasons = 0;
  state_io::Require(static_cast<bool>(in >> seasons >> model.season_pos_) &&
                        seasons <= (size_t{1} << 20),
                    what);
  model.season_.resize(seasons);
  for (auto& s : model.season_) s = state_io::ReadVector(in);
  size_t history = 0;
  state_io::Require(static_cast<bool>(in >> history >> model.row_pos_) &&
                        history <= (size_t{1} << 20),
                    what);
  model.row_history_.resize(history);
  for (auto& r : model.row_history_) r = state_io::ReadVector(in);
  model.last_row_ = state_io::ReadVector(in);
  model.sigma_ = state_io::ReadTensor(in);

  // Cross-field consistency: a parseable checkpoint whose structures
  // disagree is still corrupt (single flipped digit in a count).
  state_io::Require(model.season_.size() == model.config_.period, what);
  state_io::Require(model.row_history_.size() == model.config_.period, what);
  state_io::Require(model.level_.size() == model.config_.rank, what);
  state_io::Require(seasons == 0 || model.season_pos_ < seasons, what);
  state_io::Require(history == 0 || model.row_pos_ < history, what);
  return model;
}

}  // namespace sofia
