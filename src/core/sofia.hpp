#ifndef SOFIA_CORE_SOFIA_H_
#define SOFIA_CORE_SOFIA_H_

/// \file sofia.hpp
/// \brief Umbrella header for the SOFIA library.
///
/// SOFIA (Seasonality-aware Outlier-robust Factorization of Incomplete
/// streAming tensors; Lee & Shin, ICDE 2021) factorizes a stream of
/// (N-1)-way subtensors that may contain missing entries and outliers,
/// imputes the missing values, and forecasts future subtensors.
///
/// Typical usage:
/// \code
///   sofia::SofiaConfig config;
///   config.rank = 5;
///   config.period = 24;
///   // Feed the first 3 seasons to Initialize(), then stream.
///   auto model = sofia::SofiaModel::Initialize(init_slices, init_masks,
///                                              config);
///   for (...) {
///     sofia::SofiaStepResult out = model.Step(y_t, omega_t);
///     // out.imputed() recovers the missing entries of y_t; the dense
///     // slice is materialized lazily, so skip the call if you only need
///     // the observed-entry views (out.observed_outliers(), ...).
///   }
///   sofia::DenseTensor tomorrow = model.Forecast(1);
/// \endcode

#include "core/sofia_als.hpp"     // IWYU pragma: export
#include "core/sofia_config.hpp"  // IWYU pragma: export
#include "core/sofia_init.hpp"    // IWYU pragma: export
#include "core/sofia_model.hpp"   // IWYU pragma: export

#endif  // SOFIA_CORE_SOFIA_H_
