#ifndef SOFIA_CORE_SOFIA_CONFIG_H_
#define SOFIA_CORE_SOFIA_CONFIG_H_

#include <cstddef>
#include <cstdint>

#include "tensor/pattern_storage.hpp"
#include "timeseries/robust.hpp"

/// \file sofia_config.hpp
/// \brief Hyperparameters of SOFIA (defaults follow Section VI-A).

namespace sofia {

/// Configuration shared by the initialization and streaming phases.
struct SofiaConfig {
  size_t rank = 5;          ///< CP rank R.
  size_t period = 7;        ///< Seasonal period m.
  size_t init_seasons = 3;  ///< Start-up horizon t_i = init_seasons * m.

  double lambda1 = 1e-3;  ///< Temporal smoothness weight.
  double lambda2 = 1e-3;  ///< Seasonal smoothness weight.
  double lambda3 = 10.0;  ///< Outlier sparsity weight (soft threshold).
  double mu = 0.1;        ///< Gradient step size of the dynamic update.
  double phi = 0.01;      ///< Error-scale smoothing parameter.

  /// Tikhonov ridge added to every ALS row solve, scaled by the row's own
  /// curvature: the system becomes (B + factor_ridge * tr(B)/R * I) u = c.
  /// This controls the classic CP two-component degeneracy (cancelling
  /// components with diverging norms), which the L1/Lm smoothness penalties
  /// cannot: a *smooth* diverging temporal column lies in their null space.
  /// The relative scaling keeps the distortion at ~factor_ridge regardless
  /// of data scale. Set to 0 for the verbatim Theorem 1/2 updates.
  double factor_ridge = 1e-2;

  /// Cap the dynamic-update step at 0.5 / trace(H_row), where H_row is the
  /// instantaneous Gauss-Newton Hessian of the row being updated. Eq. (24)
  /// and (25) are plain gradient steps whose stability depends on the data
  /// scale; the cap is inactive exactly when the paper's raw step is stable
  /// (small curvature) and prevents oscillation otherwise. Disable to run
  /// the verbatim update (see bench/ablation_design).
  bool normalized_step = true;

  /// Worker threads for the sparse (observed-entry) kernels; 0 = use the
  /// hardware concurrency. The kernels partition work into units owned by a
  /// single thread, so results are bitwise identical for every setting.
  size_t num_threads = 0;

  /// Route the ALS inner loop and the dynamic update (SofiaModel::Step)
  /// through the COO sparse kernel layer (tensor/sparse_kernels.hpp): one
  /// ALS sweep costs O(|Ω| N R (N+R)) per Lemma 1 and one Step costs
  /// O(|Ω_t| N R) per Lemma 2 instead of scaling with the dense tensor
  /// volume. The dense scan path is kept as a reference/fallback (see
  /// bench/micro_kernels and tests/sofia_step_sparse_test).
  bool use_sparse_kernels = true;

  /// Reuse the Step() coordinate list when the incoming mask is identical to
  /// the previous step's (the common case for fixed sensor outages): the
  /// rebuild — the only O(volume) term of a sparse step — is replaced by an
  /// O(|Ω_t|) SparseMask comparison. Structure depends only on the mask, so
  /// the reuse is exact. Disable to force a rebuild every step.
  bool reuse_step_pattern = true;

  /// Storage backend of the sparse Step pattern: kCsf compiles the cached
  /// CooList into per-mode compressed-sparse-fiber trees
  /// (tensor/csf_tensor.hpp) and runs the Step accumulations through the
  /// fiber-reuse kernels (tensor/csf_kernels.hpp) — same O(|Ω_t| N R) bound
  /// with partial Hadamard products hoisted per fiber. Agrees with the COO
  /// backend to floating-point reassociation (≤1e-12, tests/csf_test.cc).
  /// Runtime kernel knob like num_threads: not serialized; restore it by
  /// hand when resuming a checkpoint that should keep the CSF bits.
  PatternStorage pattern_storage = PatternStorage::kCoo;

  double lambda3_decay = 0.85;  ///< `d` of Algorithm 1 (threshold decay).
  double tolerance = 1e-4;      ///< Convergence tolerance (ALS + init loop).
  int max_als_iterations = 300;   ///< Inner ALS sweep cap (Algorithm 2).
  int max_init_iterations = 50;   ///< Outer init iteration cap (Algorithm 1).

  double huber_k = kHuberK;        ///< Cap of the Huber Ψ-function.
  double biweight_ck = kBiweightCk;  ///< Plateau of the biweight ρ-function.

  uint64_t seed = 1;  ///< Seed for the random factor initialization.

  /// Start-up period t_i = init_seasons * m (Section V-A).
  size_t InitWindow() const { return init_seasons * period; }
};

}  // namespace sofia

#endif  // SOFIA_CORE_SOFIA_CONFIG_H_
