#include "core/sofia_init.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/coo_list.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace sofia {

SofiaInitResult SofiaInitialize(const std::vector<DenseTensor>& slices,
                                const std::vector<Mask>& masks,
                                const SofiaConfig& config,
                                bool smooth_temporal) {
  SOFIA_CHECK_EQ(slices.size(), masks.size());
  SOFIA_CHECK_EQ(slices.size(), config.InitWindow())
      << "initialization expects t_i = init_seasons * period slices";

  // Lines 1-3: stack the start-up slices into batch tensors.
  DenseTensor y = DenseTensor::StackSlices(slices);
  Mask omega = Mask::StackSlices(masks);
  DenseTensor outliers(y.shape(), 0.0);

  // The mask is fixed for the whole init window while the outlier estimate
  // changes, so the observed-entry structure is compacted once here and
  // reused by every SOFIA_ALS call of the outer loop (only the y - O values
  // are re-gathered per call).
  CooList coo;
  if (config.use_sparse_kernels) coo = CooList::Build(omega);

  // Line 4: random factor initialization.
  Rng rng(config.seed);
  std::vector<Matrix> factors;
  factors.reserve(y.order());
  for (size_t n = 0; n < y.order(); ++n) {
    factors.push_back(Matrix::Random(y.dim(n), config.rank, rng, 0.0, 1.0));
  }

  // Lines 5-12: alternate SOFIA_ALS and soft-thresholding with λ3 decay.
  const double lambda3_init = config.lambda3;
  const double lambda3_floor = lambda3_init / 100.0;
  double lambda3 = lambda3_init;

  SofiaInitResult result;
  DenseTensor previous;
  bool have_previous = false;
  for (int outer = 0; outer < config.max_init_iterations; ++outer) {
    result.outer_iterations = outer + 1;

    SofiaAlsResult als =
        config.use_sparse_kernels
            ? SofiaAls(coo, y, outliers, config, &factors, smooth_temporal)
            : SofiaAls(y, omega, outliers, config, &factors, smooth_temporal);

    // Line 8: O <- SoftThresholding(Ω ⊛ (Y - X̂), λ3).
    for (size_t k = 0; k < y.NumElements(); ++k) {
      outliers[k] = omega.Get(k)
                        ? SoftThreshold(y[k] - als.completed[k], lambda3)
                        : 0.0;
    }

    // Lines 9-11: decay the threshold, floored at λ3/100.
    lambda3 = std::max(lambda3 * config.lambda3_decay, lambda3_floor);

    // Line 12: stop when the recovered tensor stabilizes.
    if (have_previous) {
      const double prev_norm = previous.FrobeniusNorm();
      DenseTensor diff = als.completed;
      diff -= previous;
      const double rel =
          prev_norm > 0.0 ? diff.FrobeniusNorm() / prev_norm : 0.0;
      if (rel < config.tolerance) {
        result.completed = std::move(als.completed);
        break;
      }
    }
    previous = als.completed;
    have_previous = true;
    result.completed = std::move(als.completed);
  }

  result.outliers = std::move(outliers);
  result.factors = std::move(factors);
  return result;
}

}  // namespace sofia
