#include "core/sofia_model.hpp"

#include <cmath>

#include "tensor/kruskal.hpp"
#include "timeseries/hw_fit.hpp"
#include "timeseries/robust.hpp"
#include "util/check.hpp"

namespace sofia {

SofiaModel SofiaModel::Initialize(const std::vector<DenseTensor>& slices,
                                  const std::vector<Mask>& masks,
                                  const SofiaConfig& config,
                                  const SofiaAblation& ablation) {
  SofiaModel model;
  model.config_ = config;
  model.ablation_ = ablation;

  // Phase 1 (Algorithm 1): batch factorization of the start-up window.
  SofiaInitResult init = SofiaInitialize(slices, masks, config,
                                         ablation.temporal_smoothness);
  const size_t num_modes = init.factors.size();
  const size_t rank = config.rank;
  const size_t m = config.period;
  const size_t ti = config.InitWindow();
  Matrix temporal = init.factors.back();
  init.factors.pop_back();
  model.factors_ = std::move(init.factors);
  model.init_completed_ = std::move(init.completed);
  SOFIA_CHECK_EQ(temporal.rows(), ti);
  SOFIA_CHECK_EQ(num_modes - 1, model.factors_.size());

  // Phase 2 (Section V-B): fit one additive HW model per factor column.
  model.level_.resize(rank);
  model.trend_.resize(rank);
  model.season_.assign(m, std::vector<double>(rank, 0.0));
  model.season_pos_ = 0;
  model.hw_params_.resize(rank);
  for (size_t r = 0; r < rank; ++r) {
    HwFit fit = FitHoltWinters(temporal.ColVector(r), m);
    model.hw_params_[r] = fit.params;
    model.level_[r] = fit.level;
    model.trend_[r] = fit.trend;
    // fit.seasonal[j] is the component for time ti + 1 + j.
    for (size_t j = 0; j < m; ++j) model.season_[j][r] = fit.seasonal[j];
  }

  // Temporal-row history u_{ti-m+1..ti}; oldest (u_{ti+1-m}) at slot 0.
  model.row_history_.assign(m, std::vector<double>(rank, 0.0));
  model.row_pos_ = 0;
  for (size_t j = 0; j < m; ++j) {
    model.row_history_[j] = temporal.RowVector(ti - m + j);
  }
  model.last_row_ = temporal.RowVector(ti - 1);

  // Algorithm 3 line 1: Σ̂ seeded with λ3 / 100.
  Shape slice_shape = slices[0].shape();
  model.sigma_ = DenseTensor(slice_shape, config.lambda3 / 100.0);
  return model;
}

SofiaStepResult SofiaModel::Step(const DenseTensor& y, const Mask& omega) {
  SOFIA_CHECK(y.shape() == omega.shape());
  SOFIA_CHECK(y.shape() == sigma_.shape());
  const size_t rank = config_.rank;
  const size_t m = config_.period;
  const double k_huber = config_.huber_k;
  const double ck = config_.biweight_ck;
  const size_t num_nontemporal = factors_.size();

  // Line 3: one-step-ahead HW forecast of the temporal row (Eq. (19)).
  std::vector<double> u_hat(rank);
  const std::vector<double>& s_prev = season_[season_pos_];  // s_{t-m}
  for (size_t r = 0; r < rank; ++r) {
    u_hat[r] = level_[r] + trend_[r] + s_prev[r];
  }

  // Line 4: predicted subtensor Ŷ_{t|t-1} (Eq. (20)).
  DenseTensor forecast = KruskalSlice(factors_, u_hat);

  // Lines 5-6: outlier estimation (Eq. (21)) and scale update (Eq. (22)).
  // The paper rejects outliers *first* so extreme values cannot inflate the
  // scale; the Gelper ordering is available as an ablation.
  DenseTensor outliers(y.shape(), 0.0);
  auto update_scale = [&]() {
    for (size_t k = 0; k < y.NumElements(); ++k) {
      if (!omega.Get(k)) continue;
      sigma_[k] = UpdateErrorScale(y[k], forecast[k], sigma_[k], config_.phi,
                                   k_huber, ck);
    }
  };
  auto reject = [&]() {
    if (!ablation_.reject_outliers) return;
    for (size_t k = 0; k < y.NumElements(); ++k) {
      if (!omega.Get(k)) continue;
      const double resid = y[k] - forecast[k];
      outliers[k] =
          resid - HuberPsi(resid / sigma_[k], k_huber) * sigma_[k];
    }
  };
  if (ablation_.scale_before_reject) {
    update_scale();
    reject();
  } else {
    reject();
    update_scale();
  }

  // Residual subtensor R_t = Ω ⊛ (Y_t - O_t - Ŷ_{t|t-1}).
  // A single pass over observed entries accumulates both the non-temporal
  // factor gradients (Eq. (24)) and the temporal data gradient (Eq. (25));
  // prefix/suffix products give every leave-one-out product in O(N R).
  std::vector<Matrix> grads;
  grads.reserve(num_nontemporal);
  for (size_t n = 0; n < num_nontemporal; ++n) {
    grads.emplace_back(factors_[n].rows(), rank, 0.0);
  }
  std::vector<double> temporal_grad(rank, 0.0);
  // Curvature traces for the normalized-step cap: tr(H) of the temporal
  // solve and of every non-temporal row block (rows decouple exactly in the
  // Gauss-Newton approximation, so per-row caps are sound).
  double temporal_trace = 0.0;
  std::vector<std::vector<double>> row_trace(num_nontemporal);
  for (size_t n = 0; n < num_nontemporal; ++n) {
    row_trace[n].assign(factors_[n].rows(), 0.0);
  }

  const Shape& shape = y.shape();
  std::vector<size_t> idx(shape.order(), 0);
  std::vector<double> prefix((num_nontemporal + 1) * rank);
  std::vector<double> suffix((num_nontemporal + 1) * rank);
  for (size_t linear = 0; linear < shape.NumElements(); ++linear) {
    if (omega.Get(linear)) {
      const double resid = y[linear] - outliers[linear] - forecast[linear];
      // prefix[l] = prod_{l' < l} U^(l')(i_{l'}, r); suffix symmetric.
      for (size_t r = 0; r < rank; ++r) prefix[r] = 1.0;
      for (size_t l = 0; l < num_nontemporal; ++l) {
        const double* row = factors_[l].Row(idx[l]);
        double* cur = &prefix[l * rank];
        double* nxt = &prefix[(l + 1) * rank];
        for (size_t r = 0; r < rank; ++r) nxt[r] = cur[r] * row[r];
      }
      for (size_t r = 0; r < rank; ++r) {
        suffix[num_nontemporal * rank + r] = 1.0;
      }
      for (size_t l = num_nontemporal; l-- > 0;) {
        const double* row = factors_[l].Row(idx[l]);
        double* cur = &suffix[(l + 1) * rank];
        double* nxt = &suffix[l * rank];
        for (size_t r = 0; r < rank; ++r) nxt[r] = cur[r] * row[r];
      }
      // Full product (all non-temporal modes) feeds the temporal gradient.
      const double* full = &prefix[num_nontemporal * rank];
      for (size_t r = 0; r < rank; ++r) {
        temporal_trace += full[r] * full[r];
        if (resid != 0.0) temporal_grad[r] += resid * full[r];
      }
      for (size_t l = 0; l < num_nontemporal; ++l) {
        double* grow = grads[l].Row(idx[l]);
        double& trace = row_trace[l][idx[l]];
        const double* pre = &prefix[l * rank];
        const double* suf = &suffix[(l + 1) * rank];
        for (size_t r = 0; r < rank; ++r) {
          const double reg = pre[r] * suf[r] * u_hat[r];
          trace += reg * reg;
          if (resid != 0.0) grow[r] += resid * reg;
        }
      }
    }
    shape.Next(&idx);
  }

  // Step-size cap: µ_row = min(µ, 0.5 / tr(H_row)) keeps every block update
  // inside its stability region while matching the paper's raw step when
  // the curvature is small. See SofiaConfig::normalized_step.
  auto capped_mu = [&](double trace) {
    if (!config_.normalized_step || trace <= 0.0) return config_.mu;
    return std::min(config_.mu, 0.5 / trace);
  };

  // Lines 7-8: gradient step on the non-temporal factors (Eq. (24)).
  for (size_t n = 0; n < num_nontemporal; ++n) {
    Matrix& u = factors_[n];
    const Matrix& g = grads[n];
    for (size_t i = 0; i < u.rows(); ++i) {
      const double step = 2.0 * capped_mu(row_trace[n][i]);
      double* urow = u.Row(i);
      const double* grow = g.Row(i);
      for (size_t r = 0; r < rank; ++r) urow[r] += step * grow[r];
    }
  }

  // Line 9: temporal row update (Eq. (25)).
  const std::vector<double>& u_prev = last_row_;             // u_{t-1}
  const std::vector<double>& u_season = row_history_[row_pos_];  // u_{t-m}
  std::vector<double> u_new(rank);
  const double lambda1 = ablation_.temporal_smoothness ? config_.lambda1 : 0.0;
  const double lambda2 = ablation_.temporal_smoothness ? config_.lambda2 : 0.0;
  const double temporal_step = 2.0 * capped_mu(temporal_trace);
  for (size_t r = 0; r < rank; ++r) {
    u_new[r] = u_hat[r] +
               temporal_step * (temporal_grad[r] + lambda1 * u_prev[r] +
                                lambda2 * u_season[r] -
                                (lambda1 + lambda2) * u_hat[r]);
  }

  // Line 10: vector HW smoothing update (Eq. (26)).
  std::vector<double> s_new(rank);
  for (size_t r = 0; r < rank; ++r) {
    const double alpha = hw_params_[r].alpha;
    const double beta = hw_params_[r].beta;
    const double gamma = hw_params_[r].gamma;
    const double l_prev = level_[r];
    const double b_prev = trend_[r];
    const double s_old = s_prev[r];
    const double l_new = alpha * (u_new[r] - s_old) +
                         (1.0 - alpha) * (l_prev + b_prev);
    const double b_new = beta * (l_new - l_prev) + (1.0 - beta) * b_prev;
    s_new[r] = gamma * (u_new[r] - l_prev - b_prev) + (1.0 - gamma) * s_old;
    level_[r] = l_new;
    trend_[r] = b_new;
  }
  season_[season_pos_] = std::move(s_new);
  season_pos_ = (season_pos_ + 1) % m;

  row_history_[row_pos_] = u_new;
  row_pos_ = (row_pos_ + 1) % m;
  last_row_ = std::move(u_new);

  // Line 11: reconstruction X̂_t (Eq. (27)).
  SofiaStepResult result;
  result.imputed = KruskalSlice(factors_, last_row_);
  result.outliers = std::move(outliers);
  result.forecast = std::move(forecast);
  return result;
}

DenseTensor SofiaModel::Forecast(size_t h) const {
  SOFIA_CHECK_GE(h, 1u);
  const size_t rank = config_.rank;
  const size_t m = config_.period;
  // Eq. (6) applied element-wise: the seasonal slot wraps into the last
  // observed season, exactly as the floor term of the paper prescribes.
  std::vector<double> u_hat(rank);
  const std::vector<double>& s = season_[(season_pos_ + (h - 1)) % m];
  for (size_t r = 0; r < rank; ++r) {
    u_hat[r] = level_[r] + static_cast<double>(h) * trend_[r] + s[r];
  }
  return KruskalSlice(factors_, u_hat);
}

DenseTensor SofiaModel::Reconstruct(
    const std::vector<double>& temporal_row) const {
  return KruskalSlice(factors_, temporal_row);
}

}  // namespace sofia
