#include "core/sofia_model.hpp"

#include <cmath>
#include <utility>

#include "obs/obs.hpp"
#include "tensor/csf_kernels.hpp"
#include "tensor/kruskal.hpp"
#include "tensor/sparse_kernels.hpp"
#include "timeseries/hw_fit.hpp"
#include "timeseries/robust.hpp"
#include "util/check.hpp"

namespace sofia {

const DenseTensor& SofiaStepResult::imputed() const {
  if (!imputed_) imputed_ = KruskalSlice(factors_after_, u_new_);
  return *imputed_;
}

const DenseTensor& SofiaStepResult::outliers() const {
  if (!outliers_) {
    DenseTensor o(shape_, 0.0);
    for (size_t k = 0; k < observed_.size(); ++k) {
      o[observed_[k]] = observed_outliers_[k];
    }
    outliers_ = std::move(o);
  }
  return *outliers_;
}

const DenseTensor& SofiaStepResult::forecast() const {
  if (!forecast_) forecast_ = KruskalSlice(factors_before_, u_hat_);
  return *forecast_;
}

SofiaModel::SofiaModel(const SofiaModel& other)
    : config_(other.config_),
      ablation_(other.ablation_),
      factors_(other.factors_),
      init_completed_(other.init_completed_),
      hw_params_(other.hw_params_),
      level_(other.level_),
      trend_(other.trend_),
      season_(other.season_),
      season_pos_(other.season_pos_),
      row_history_(other.row_history_),
      row_pos_(other.row_pos_),
      last_row_(other.last_row_),
      sigma_(other.sigma_) {
  // step_mask_/step_coo_/pool_ are derived caches: left empty, rebuilt on
  // the copy's first sparse Step().
}

SofiaModel& SofiaModel::operator=(const SofiaModel& other) {
  SofiaModel tmp(other);
  *this = std::move(tmp);
  return *this;
}

SofiaModel SofiaModel::Initialize(const std::vector<DenseTensor>& slices,
                                  const std::vector<Mask>& masks,
                                  const SofiaConfig& config,
                                  const SofiaAblation& ablation) {
  SofiaModel model;
  model.config_ = config;
  model.ablation_ = ablation;

  // Phase 1 (Algorithm 1): batch factorization of the start-up window.
  SofiaInitResult init = SofiaInitialize(slices, masks, config,
                                         ablation.temporal_smoothness);
  const size_t num_modes = init.factors.size();
  const size_t rank = config.rank;
  const size_t m = config.period;
  const size_t ti = config.InitWindow();
  Matrix temporal = init.factors.back();
  init.factors.pop_back();
  model.factors_ = std::move(init.factors);
  model.init_completed_ = std::move(init.completed);
  SOFIA_CHECK_EQ(temporal.rows(), ti);
  SOFIA_CHECK_EQ(num_modes - 1, model.factors_.size());

  // Phase 2 (Section V-B): fit one additive HW model per factor column.
  model.level_.resize(rank);
  model.trend_.resize(rank);
  model.season_.assign(m, std::vector<double>(rank, 0.0));
  model.season_pos_ = 0;
  model.hw_params_.resize(rank);
  for (size_t r = 0; r < rank; ++r) {
    HwFit fit = FitHoltWinters(temporal.ColVector(r), m);
    model.hw_params_[r] = fit.params;
    model.level_[r] = fit.level;
    model.trend_[r] = fit.trend;
    // fit.seasonal[j] is the component for time ti + 1 + j.
    for (size_t j = 0; j < m; ++j) model.season_[j][r] = fit.seasonal[j];
  }

  // Temporal-row history u_{ti-m+1..ti}; oldest (u_{ti+1-m}) at slot 0.
  model.row_history_.assign(m, std::vector<double>(rank, 0.0));
  model.row_pos_ = 0;
  for (size_t j = 0; j < m; ++j) {
    model.row_history_[j] = temporal.RowVector(ti - m + j);
  }
  model.last_row_ = temporal.RowVector(ti - 1);

  // Algorithm 3 line 1: Σ̂ seeded with λ3 / 100.
  Shape slice_shape = slices[0].shape();
  model.sigma_ = DenseTensor(slice_shape, config.lambda3 / 100.0);
  return model;
}

WorkerPool* SofiaModel::StepPool() {
  if (external_pool_ != nullptr) return external_pool_.get();
  if (!pool_) {
    // ShardExecutor, not ThreadPool: standalone Step() loops then keep
    // stable slab ownership (and arena scratch) across steps too.
    pool_ = std::make_unique<ShardExecutor>(
        ResolveNumThreads(config_.num_threads));
  }
  return pool_.get();
}

const CooList& SofiaModel::StepPattern(const Mask& omega,
                                       std::shared_ptr<const CooList> shared) {
  if (shared != nullptr) {
    SOFIA_CHECK(shared->shape() == omega.shape());
    step_coo_ = std::move(shared);
    // Seed the reuse cache so a later unshared step with the same mask
    // still skips its rebuild (same guard as ObservedSweep::BeginStep;
    // both the staleness check and the reseed are O(|Ω_t|) on the
    // SparseMask cache — never a dense indicator copy or byte scan).
    if (!step_mask_.Matches(omega)) {
      step_mask_ = SparseMask::FromCoo(*step_coo_);
    }
    return *step_coo_;
  }
  const bool reusable = config_.reuse_step_pattern && step_coo_ != nullptr &&
                        step_mask_.Matches(omega);
  if (!reusable) {
    step_coo_ = std::make_shared<const CooList>(CooList::Build(omega));
    step_mask_ = SparseMask::FromCoo(*step_coo_);
    ++step_pattern_builds_;
  } else {
    ++step_pattern_reuses_;
  }
  return *step_coo_;
}

void SofiaModel::AccumulateDense(const DenseTensor& y, const Mask& omega,
                                 const std::vector<double>& u_hat,
                                 StepGradients* grads,
                                 SofiaStepResult* result) {
  const double k_huber = config_.huber_k;
  const double ck = config_.biweight_ck;

  // Line 4: predicted subtensor Ŷ_{t|t-1} (Eq. (20)).
  DenseTensor forecast = KruskalSlice(factors_, u_hat);

  // Lines 5-6: outlier estimation (Eq. (21)) and scale update (Eq. (22)).
  // The paper rejects outliers *first* so extreme values cannot inflate the
  // scale; the Gelper ordering is available as an ablation.
  DenseTensor outliers(y.shape(), 0.0);
  auto update_scale = [&]() {
    for (size_t k = 0; k < y.NumElements(); ++k) {
      if (!omega.Get(k)) continue;
      sigma_[k] = UpdateErrorScale(y[k], forecast[k], sigma_[k], config_.phi,
                                   k_huber, ck);
    }
  };
  auto reject = [&]() {
    if (!ablation_.reject_outliers) return;
    for (size_t k = 0; k < y.NumElements(); ++k) {
      if (!omega.Get(k)) continue;
      const double resid = y[k] - forecast[k];
      outliers[k] =
          resid - HuberPsi(resid / sigma_[k], k_huber) * sigma_[k];
    }
  };
  if (ablation_.scale_before_reject) {
    update_scale();
    reject();
  } else {
    reject();
    update_scale();
  }

  // Residual subtensor R_t = Ω ⊛ (Y_t - O_t - Ŷ_{t|t-1}) feeds the Eq.
  // (24)/(25) gradients and curvature traces.
  *grads = DenseStepGradients(y, omega, outliers, forecast, factors_, u_hat);

  // Observed-entry views (one cheap pass next to the dense scans above).
  const size_t nnz = omega.CountObserved();
  result->observed_.reserve(nnz);
  result->observed_outliers_.reserve(nnz);
  result->observed_forecast_.reserve(nnz);
  for (size_t k = 0; k < y.NumElements(); ++k) {
    if (!omega.Get(k)) continue;
    result->observed_.push_back(k);
    result->observed_outliers_.push_back(outliers[k]);
    result->observed_forecast_.push_back(forecast[k]);
  }
  result->forecast_ = std::move(forecast);
  result->outliers_ = std::move(outliers);
}

void SofiaModel::AccumulateSparse(const DenseTensor& y, const Mask& omega,
                                  const std::vector<double>& u_hat,
                                  std::shared_ptr<const CooList> pattern,
                                  StepGradients* grads,
                                  SofiaStepResult* result) {
  const double k_huber = config_.huber_k;
  const double ck = config_.biweight_ck;
  WorkerPool* pool = StepPool();
  const CooList& coo = StepPattern(omega, std::move(pattern));
  const size_t nnz = coo.nnz();
  // CSF backend: shared patterns arrive pre-compiled when the comparison
  // runner selected csf storage; a kCsf config compiles its own private
  // trees (see BindCsf for the adopt/build/fallback policy).
  const CsfTensor* csf =
      BindCsf(step_coo_, config_.pattern_storage, &step_csf_,
              &step_csf_source_);

  // Line 4 restricted to Ω_t: the Eq. (20) forecast at observed entries.
  std::vector<double> yv = coo.Gather(y);
  std::vector<double> fv =
      csf != nullptr ? CsfKruskalGather(*csf, factors_, u_hat, 1, pool)
                     : CooKruskalGather(coo, factors_, u_hat, 1, pool);

  // Lines 5-6 per record (entries are independent, so the ablation ordering
  // applies record-wise exactly as in the dense reference).
  std::vector<double> ov(nnz, 0.0);
  auto update_scale = [&]() {
    for (size_t k = 0; k < nnz; ++k) {
      const size_t lin = coo.LinearIndex(k);
      sigma_[lin] = UpdateErrorScale(yv[k], fv[k], sigma_[lin], config_.phi,
                                     k_huber, ck);
    }
  };
  auto reject = [&]() {
    if (!ablation_.reject_outliers) return;
    for (size_t k = 0; k < nnz; ++k) {
      const double sig = sigma_[coo.LinearIndex(k)];
      const double resid = yv[k] - fv[k];
      ov[k] = resid - HuberPsi(resid / sig, k_huber) * sig;
    }
  };
  if (ablation_.scale_before_reject) {
    update_scale();
    reject();
  } else {
    reject();
    update_scale();
  }

  // R_t at observed entries, then the O(|Ω_t| N R) gradient pass (Lemma 2).
  std::vector<double> resid(nnz);
  for (size_t k = 0; k < nnz; ++k) resid[k] = yv[k] - ov[k] - fv[k];
  *grads = csf != nullptr
               ? CsfStepGradients(*csf, resid, factors_, u_hat, 1, pool)
               : CooStepGradients(coo, resid, factors_, u_hat, 1, pool);

  result->factors_before_ = factors_;
  result->observed_ = coo.LinearIndices();
  result->observed_outliers_ = std::move(ov);
  result->observed_forecast_ = std::move(fv);
}

SofiaStepResult SofiaModel::Step(const DenseTensor& y, const Mask& omega) {
  return Step(y, omega, nullptr);
}

SofiaStepResult SofiaModel::Step(const DenseTensor& y, const Mask& omega,
                                 std::shared_ptr<const CooList> pattern) {
  static obs::Counter* steps =
      obs::Registry::Global().FindOrCreateCounter("sofia.steps");
  static obs::Counter* step_us =
      obs::Registry::Global().FindOrCreateCounter("time.sofia.step_us");
  steps->Add(1);
  obs::ObsSpan span("sofia.step", step_us);
  SOFIA_CHECK(y.shape() == omega.shape());
  SOFIA_CHECK(y.shape() == sigma_.shape());
  const size_t rank = config_.rank;
  const size_t m = config_.period;
  const size_t num_nontemporal = factors_.size();

  // Line 3: one-step-ahead HW forecast of the temporal row (Eq. (19)).
  std::vector<double> u_hat(rank);
  const std::vector<double>& s_prev = season_[season_pos_];  // s_{t-m}
  for (size_t r = 0; r < rank; ++r) {
    u_hat[r] = level_[r] + trend_[r] + s_prev[r];
  }

  SofiaStepResult result;
  result.shape_ = y.shape();
  result.u_hat_ = u_hat;

  // Lines 4-6 and the Eq. (24)/(25) accumulations, on the kernel path the
  // config selects. Both paths fill the same StepGradients contract, so
  // everything below is shared.
  StepGradients grads;
  if (config_.use_sparse_kernels) {
    AccumulateSparse(y, omega, u_hat, std::move(pattern), &grads, &result);
  } else {
    AccumulateDense(y, omega, u_hat, &grads, &result);
  }

  // Step-size cap: µ_row = min(µ, 0.5 / tr(H_row)) keeps every block update
  // inside its stability region while matching the paper's raw step when
  // the curvature is small. See SofiaConfig::normalized_step.
  auto capped_mu = [&](double trace) {
    if (!config_.normalized_step || trace <= 0.0) return config_.mu;
    return std::min(config_.mu, 0.5 / trace);
  };

  // Lines 7-8: gradient step on the non-temporal factors (Eq. (24)).
  for (size_t n = 0; n < num_nontemporal; ++n) {
    Matrix& u = factors_[n];
    const Matrix& g = grads.row_grads[n];
    for (size_t i = 0; i < u.rows(); ++i) {
      const double step = 2.0 * capped_mu(grads.row_trace[n][i]);
      double* urow = u.Row(i);
      const double* grow = g.Row(i);
      for (size_t r = 0; r < rank; ++r) urow[r] += step * grow[r];
    }
  }

  // Line 9: temporal row update (Eq. (25)).
  const std::vector<double>& u_prev = last_row_;             // u_{t-1}
  const std::vector<double>& u_season = row_history_[row_pos_];  // u_{t-m}
  std::vector<double> u_new(rank);
  const double lambda1 = ablation_.temporal_smoothness ? config_.lambda1 : 0.0;
  const double lambda2 = ablation_.temporal_smoothness ? config_.lambda2 : 0.0;
  const double temporal_step = 2.0 * capped_mu(grads.temporal_trace);
  for (size_t r = 0; r < rank; ++r) {
    u_new[r] = u_hat[r] +
               temporal_step * (grads.temporal_grad[r] + lambda1 * u_prev[r] +
                                lambda2 * u_season[r] -
                                (lambda1 + lambda2) * u_hat[r]);
  }

  // Line 10: vector HW smoothing update (Eq. (26)).
  std::vector<double> s_new(rank);
  for (size_t r = 0; r < rank; ++r) {
    const double alpha = hw_params_[r].alpha;
    const double beta = hw_params_[r].beta;
    const double gamma = hw_params_[r].gamma;
    const double l_prev = level_[r];
    const double b_prev = trend_[r];
    const double s_old = s_prev[r];
    const double l_new = alpha * (u_new[r] - s_old) +
                         (1.0 - alpha) * (l_prev + b_prev);
    const double b_new = beta * (l_new - l_prev) + (1.0 - beta) * b_prev;
    s_new[r] = gamma * (u_new[r] - l_prev - b_prev) + (1.0 - gamma) * s_old;
    level_[r] = l_new;
    trend_[r] = b_new;
  }
  season_[season_pos_] = std::move(s_new);
  season_pos_ = (season_pos_ + 1) % m;

  row_history_[row_pos_] = u_new;
  row_pos_ = (row_pos_ + 1) % m;
  last_row_ = std::move(u_new);

  // Line 11: the reconstruction X̂_t (Eq. (27)) stays lazy — the snapshots
  // below let result.imputed() materialize it on demand.
  result.u_new_ = last_row_;
  result.factors_after_ = factors_;
  return result;
}

DenseTensor SofiaModel::Forecast(size_t h) const {
  return KruskalSlice(factors_, ForecastRow(h));
}

std::vector<double> SofiaModel::ForecastRow(size_t h) const {
  SOFIA_CHECK_GE(h, 1u);
  const size_t rank = config_.rank;
  const size_t m = config_.period;
  // Eq. (6) applied element-wise: the seasonal slot wraps into the last
  // observed season, exactly as the floor term of the paper prescribes.
  std::vector<double> u_hat(rank);
  const std::vector<double>& s = season_[(season_pos_ + (h - 1)) % m];
  for (size_t r = 0; r < rank; ++r) {
    u_hat[r] = level_[r] + static_cast<double>(h) * trend_[r] + s[r];
  }
  return u_hat;
}

DenseTensor SofiaModel::Reconstruct(
    const std::vector<double>& temporal_row) const {
  return KruskalSlice(factors_, temporal_row);
}

}  // namespace sofia
