#ifndef SOFIA_UTIL_FLAGS_H_
#define SOFIA_UTIL_FLAGS_H_

#include <map>
#include <string>
#include <vector>

/// \file flags.hpp
/// \brief Minimal `--name=value` command-line flag parsing for benches and
/// examples. Unknown flags are kept so callers can validate or ignore them.

namespace sofia {

/// Parses `--name=value` (and bare `--name`, stored as "true") arguments.
class Flags {
 public:
  Flags() = default;
  Flags(int argc, char** argv);

  /// True if the flag was present on the command line.
  bool Has(const std::string& name) const;

  /// Typed getters returning `def` when the flag is absent.
  std::string GetString(const std::string& name, const std::string& def) const;
  int64_t GetInt(const std::string& name, int64_t def) const;
  double GetDouble(const std::string& name, double def) const;
  bool GetBool(const std::string& name, bool def) const;

  /// Positional (non-flag) arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace sofia

#endif  // SOFIA_UTIL_FLAGS_H_
