#include "util/durable_io.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "obs/obs.hpp"
#include "util/fault_injection.hpp"
#include "util/rng.hpp"

namespace sofia {
namespace durable {

namespace {

/// Reflected CRC-32 table (polynomial 0xEDB88320), built once.
const uint32_t* CrcTable() {
  static uint32_t table[256];
  static const bool built = [] {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
    return true;
  }();
  (void)built;
  return table;
}

/// Frame header preceding every atomic payload. Fixed-width little-endian
/// fields; header_crc covers the fields before it, so a bit flip anywhere
/// in the frame (header or payload) is detected before any payload byte is
/// trusted.
constexpr uint32_t kFrameMagic = 0x52444653u;  // "SFDR" little-endian.
constexpr size_t kHeaderBytes = 4 + 4 + 8 + 4 + 4;

void PutU32(std::string* out, uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  out->append(b, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char b[8];
  std::memcpy(b, &v, 8);
  out->append(b, 8);
}

uint32_t GetU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

/// Writes `data` fully to `fd`, honoring an armed torn-write/crash/error
/// decision at `site`. Returns false on (real or injected) IO error.
bool WriteAll(int fd, const char* data, size_t size, const char* site) {
  if (fault::Enabled()) {
    const fault::Decision decision = fault::OnIo(site, size);
    if (decision.io_error) {
      errno = EIO;
      return false;
    }
    if (decision.crash) {
      if (decision.torn) {
        size_t torn = std::min(decision.torn_bytes, size);
        const char* p = data;
        while (torn > 0) {
          const ssize_t n = ::write(fd, p, torn);
          if (n <= 0) break;
          p += n;
          torn -= static_cast<size_t>(n);
        }
      }
      ::close(fd);
      fault::Crash(site);
    }
  }
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  return true;
}

/// fsync with fault hooks; EINVAL/ENOTSUP (fs without fsync) counts as ok.
bool SyncFd(int fd, const char* site) {
  if (fault::Enabled()) {
    const fault::Decision decision = fault::OnIo(site, 0);
    if (decision.io_error) {
      errno = EIO;
      return false;
    }
    if (decision.crash) {
      ::close(fd);
      fault::Crash(site);
    }
  }
  static obs::Histogram* fsync_us =
      obs::Registry::Global().FindOrCreateHistogram("durable.fsync_us");
  const bool measured = obs::Enabled();
  const uint64_t start = measured ? obs::NowNs() : 0;
  if (::fsync(fd) != 0 && errno != EINVAL && errno != ENOTSUP &&
      errno != EROFS) {
    return false;
  }
  if (measured) {
    fsync_us->Observe(static_cast<double>(obs::NowNs() - start) / 1e3);
  }
  return true;
}

/// One complete atomic-write attempt. Returns false on transient failure
/// (the caller retries); throws SimulatedCrash when a crash fault fires.
bool WriteAttempt(const std::string& path, const std::string& frame) {
  const std::string tmp = path + ".tmp";
  if (fault::Enabled()) {
    const fault::Decision decision = fault::OnIo("atomic.open", frame.size());
    if (decision.io_error) {
      errno = EIO;
      return false;
    }
    if (decision.crash) fault::Crash("atomic.open");
  }
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  if (!WriteAll(fd, frame.data(), frame.size(), "atomic.write")) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  if (!SyncFd(fd, "atomic.fsync")) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  ::close(fd);

  if (fault::Enabled()) {
    const fault::Decision decision = fault::OnIo("atomic.rename", 0);
    if (decision.io_error) {
      ::unlink(tmp.c_str());
      errno = EIO;
      return false;
    }
    // A crash here leaves the complete tmp next to the intact old file —
    // recovery must see the OLD file (rename never happened).
    if (decision.crash) fault::Crash("atomic.rename");
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }

  // Make the rename itself durable: fsync the parent directory.
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY);
  if (dfd >= 0) {
    const bool ok = SyncFd(dfd, "atomic.dirfsync");
    ::close(dfd);
    if (!ok) return false;
  }
  return true;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  const uint32_t* table = CrcTable();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

const char* IoStatusName(IoStatus status) {
  switch (status) {
    case IoStatus::kOk:
      return "ok";
    case IoStatus::kNotFound:
      return "not-found";
    case IoStatus::kCorrupt:
      return "corrupt";
    case IoStatus::kIoError:
      return "io-error";
  }
  return "unknown";
}

bool EnsureDir(const std::string& path) {
  if (path.empty()) return false;
  std::string prefix;
  size_t pos = 0;
  while (pos != std::string::npos) {
    const size_t next = path.find('/', pos + 1);
    prefix = next == std::string::npos ? path : path.substr(0, next);
    pos = next;
    if (prefix.empty() || prefix == "." || prefix == "/") continue;
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) return false;
  }
  return true;
}

IoStatus WriteFileAtomic(const std::string& path, const std::string& payload,
                         uint32_t version, const RetryPolicy& retry,
                         IoTelemetry* telemetry) {
  if (telemetry != nullptr) ++telemetry->writes;

  std::string frame;
  frame.reserve(kHeaderBytes + payload.size());
  PutU32(&frame, kFrameMagic);
  PutU32(&frame, version);
  PutU64(&frame, payload.size());
  PutU32(&frame, Crc32(payload.data(), payload.size()));
  PutU32(&frame, Crc32(frame.data(), frame.size()));  // Header CRC.
  frame += payload;

  // Jittered exponential backoff across attempts: deterministic from the
  // policy seed, so retry storms neither synchronize nor surprise tests.
  Rng jitter(retry.jitter_seed);
  const size_t attempts = std::max<size_t>(1, retry.max_attempts);
  for (size_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      if (telemetry != nullptr) ++telemetry->write_retries;
      if (retry.sleep) {
        double delay = retry.base_delay_ms;
        for (size_t k = 1; k < attempt; ++k) delay *= 2.0;
        delay = std::min(delay, retry.max_delay_ms);
        delay *= 0.5 + 0.5 * jitter.Uniform();
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(delay));
      } else {
        jitter.Uniform();  // Keep the jitter sequence schedule-independent.
      }
    }
    if (WriteAttempt(path, frame)) {
      if (telemetry != nullptr) telemetry->bytes_written += payload.size();
      return IoStatus::kOk;
    }
  }
  if (telemetry != nullptr) ++telemetry->write_failures;
  return IoStatus::kIoError;
}

IoStatus ReadFramedFile(const std::string& path, std::string* payload,
                        uint32_t* version, IoTelemetry* telemetry) {
  if (telemetry != nullptr) ++telemetry->reads;
  if (fault::Enabled()) {
    const fault::Decision decision = fault::OnIo("atomic.read", 0);
    if (decision.io_error) return IoStatus::kIoError;
    if (decision.crash) fault::Crash("atomic.read");
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return IoStatus::kNotFound;
  std::string frame;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) frame.append(buf, n);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return IoStatus::kIoError;

  const auto corrupt = [&] {
    if (telemetry != nullptr) ++telemetry->corrupt_reads;
    return IoStatus::kCorrupt;
  };
  if (frame.size() < kHeaderBytes) return corrupt();
  if (GetU32(frame.data()) != kFrameMagic) return corrupt();
  if (GetU32(frame.data() + 20) != Crc32(frame.data(), 20)) return corrupt();
  const uint64_t size = GetU64(frame.data() + 8);
  if (size != frame.size() - kHeaderBytes) return corrupt();
  if (GetU32(frame.data() + 16) !=
      Crc32(frame.data() + kHeaderBytes, size)) {
    return corrupt();
  }
  if (version != nullptr) *version = GetU32(frame.data() + 4);
  payload->assign(frame, kHeaderBytes, size);
  return IoStatus::kOk;
}

SnapshotStore::SnapshotStore(std::string dir, std::string base,
                             Options options)
    : dir_(std::move(dir)), base_(std::move(base)), options_(options) {
  if (options_.generations == 0) options_.generations = 1;
}

std::string SnapshotStore::GenerationPath(uint64_t seq) const {
  return dir_ + "/" + base_ + "-" + std::to_string(seq) + ".snap";
}

IoStatus SnapshotStore::Write(uint64_t seq, const std::string& payload) {
  EnsureDir(dir_);
  const IoStatus status =
      WriteFileAtomic(GenerationPath(seq), payload, options_.version,
                      options_.retry, &telemetry_);
  if (status != IoStatus::kOk) return status;
  // Prune generations that fell out of the retention window. Failures are
  // ignored — stale files cost disk, not correctness (LoadNewest prefers
  // the highest seq).
  for (uint64_t old : ListGenerations()) {
    if (old + options_.generations <= seq) {
      ::unlink(GenerationPath(old).c_str());
    }
  }
  return IoStatus::kOk;
}

IoStatus SnapshotStore::LoadNewest(std::string* payload,
                                   uint64_t* seq) const {
  std::vector<uint64_t> generations = ListGenerations();
  for (auto it = generations.rbegin(); it != generations.rend(); ++it) {
    const IoStatus status =
        ReadFramedFile(GenerationPath(*it), payload, nullptr, &telemetry_);
    if (status == IoStatus::kOk) {
      if (seq != nullptr) *seq = *it;
      return IoStatus::kOk;
    }
    // Corrupt, torn, or unreadable: fall back to the next-older
    // generation (already counted by ReadFramedFile telemetry).
  }
  return IoStatus::kNotFound;
}

std::vector<uint64_t> SnapshotStore::ListGenerations() const {
  std::vector<uint64_t> out;
  DIR* dir = ::opendir(dir_.c_str());
  if (dir == nullptr) return out;
  const std::string prefix = base_ + "-";
  const std::string suffix = ".snap";
  while (struct dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (name.size() <= prefix.size() + suffix.size()) continue;
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
        0) {
      continue;
    }
    const std::string digits =
        name.substr(prefix.size(), name.size() - prefix.size() -
                                       suffix.size());
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    out.push_back(std::strtoull(digits.c_str(), nullptr, 10));
  }
  ::closedir(dir);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace durable
}  // namespace sofia
