#ifndef SOFIA_UTIL_BENCH_JSON_H_
#define SOFIA_UTIL_BENCH_JSON_H_

#include <cstdio>

/// \file bench_json.hpp
/// \brief Shared fragments for the hand-rolled BENCH_*.json writers.
///
/// Every bench binary stamps the same machine block so numbers can be
/// compared across hosts; one helper keeps the block identical (the seven
/// copies it replaces had already started to drift in whitespace) and
/// extends it with the SIMD level the kernels *actually dispatched* —
/// cpus alone cannot explain an avx2-vs-scalar gap between two files.

namespace sofia {
namespace bench {

/// Writes `"machine": { "cpus": N, "simd": "<IsaName()>" },\n` to `f`
/// at the two-space indent the BENCH writers use.
void WriteMachineBlock(std::FILE* f);

}  // namespace bench
}  // namespace sofia

#endif  // SOFIA_UTIL_BENCH_JSON_H_
