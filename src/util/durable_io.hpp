#ifndef SOFIA_UTIL_DURABLE_IO_H_
#define SOFIA_UTIL_DURABLE_IO_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

/// \file durable_io.hpp
/// \brief Crash-atomic file primitives under the durability layer.
///
/// A long-running ingest daemon outlives any single process: its model
/// state must survive crashes, OOM kills, and node restarts. This module
/// provides the two disk primitives the durable layer
/// (eval/durable_guard.hpp) is built on:
///
///  - WriteFileAtomic: payload framed by a versioned, CRC32-checked binary
///    header, written to `<path>.tmp`, fsync'd, renamed over `path`, parent
///    directory fsync'd. A crash at ANY point leaves either the complete
///    old file or the complete new file — never a torn mix — and a torn
///    tmp or bit-rotted final file is detected by size/CRC on read.
///    Transient IO errors (EIO, ENOSPC) are retried under jittered
///    exponential backoff before the write is reported failed.
///
///  - SnapshotStore: WriteFileAtomic rotated across N numbered generations
///    (`<base>-<seq>.snap`), pruning the oldest past the retention window.
///    LoadNewest walks generations newest-first and *skips* corrupt or
///    torn files instead of failing — the fail-soft path the recovery
///    protocol leans on when the newest snapshot died with the process
///    that was writing it.
///
/// Every IO syscall consults the fault-injection hooks
/// (util/fault_injection.hpp) first, which is how the kill-and-recover
/// test matrix drives crashes, torn writes, and transient errors into
/// every site deterministically.

namespace sofia {
namespace durable {

/// CRC-32 (IEEE 802.3, reflected) of `size` bytes. `seed` chains
/// incremental updates: Crc32(b, n2, Crc32(a, n1)) == Crc32(a+b, n1+n2).
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

enum class IoStatus {
  kOk,
  kNotFound,  ///< No file (or no generation) to read.
  kCorrupt,   ///< Frame present but size/magic/CRC validation failed.
  kIoError,   ///< Syscall failure that survived the retry budget.
};
const char* IoStatusName(IoStatus status);

/// Retry/backoff knobs for transient IO errors. Delays are exponential
/// with deterministic seeded jitter (so two retry storms do not
/// synchronize); tests set `sleep=false` to keep the schedule logic
/// exercised without wall-clock waits.
struct RetryPolicy {
  size_t max_attempts = 5;
  double base_delay_ms = 1.0;   ///< First retry delay (doubles per attempt).
  double max_delay_ms = 100.0;  ///< Backoff ceiling.
  uint64_t jitter_seed = 0x5eed;
  bool sleep = true;
};

/// Counters of one store/writer (all monotone; snapshots of cheap values).
struct IoTelemetry {
  uint64_t writes = 0;          ///< Atomic writes attempted.
  uint64_t write_retries = 0;   ///< Extra attempts consumed by backoff.
  uint64_t write_failures = 0;  ///< Writes that exhausted the retry budget.
  uint64_t reads = 0;           ///< Framed reads attempted.
  uint64_t corrupt_reads = 0;   ///< Reads rejected by size/magic/CRC.
  uint64_t bytes_written = 0;   ///< Payload bytes durably written.
};

/// Creates `path` (and missing parents) as directories. Returns false on
/// failure (other than already existing).
bool EnsureDir(const std::string& path);

/// Writes `payload` to `path` crash-atomically (see file comment).
/// `version` is stored in the frame and returned by ReadFramedFile.
/// `telemetry` may be null.
IoStatus WriteFileAtomic(const std::string& path, const std::string& payload,
                         uint32_t version, const RetryPolicy& retry = {},
                         IoTelemetry* telemetry = nullptr);

/// Reads and validates a WriteFileAtomic frame. On kOk fills `payload`
/// (and `version` when non-null); on kCorrupt/kNotFound leaves them
/// untouched.
IoStatus ReadFramedFile(const std::string& path, std::string* payload,
                        uint32_t* version = nullptr,
                        IoTelemetry* telemetry = nullptr);

/// Knobs for SnapshotStore (namespace scope so it can serve as a default
/// argument — nested-class member initializers cannot).
struct SnapshotOptions {
  size_t generations = 3;  ///< Files retained (>= 1).
  uint32_t version = 1;    ///< Frame version stamped on writes.
  RetryPolicy retry;
};

/// Atomic snapshot rotation across N generations.
class SnapshotStore {
 public:
  using Options = SnapshotOptions;

  /// Snapshots live at `<dir>/<base>-<seq>.snap`. The directory is created
  /// on the first write.
  SnapshotStore(std::string dir, std::string base,
                Options options = Options());

  /// Atomically writes generation `seq`, then prunes generations older
  /// than the retention window. Write failures are reported (fail-soft:
  /// the previous generations are untouched); prune failures are ignored.
  IoStatus Write(uint64_t seq, const std::string& payload);

  /// Loads the newest generation whose frame validates, skipping corrupt
  /// or torn ones (counted in telemetry().corrupt_reads). kNotFound when
  /// no generation validates.
  IoStatus LoadNewest(std::string* payload, uint64_t* seq) const;

  /// Existing generation numbers, ascending (corrupt files included —
  /// validation happens at load).
  std::vector<uint64_t> ListGenerations() const;

  std::string GenerationPath(uint64_t seq) const;
  const std::string& dir() const { return dir_; }
  const IoTelemetry& telemetry() const { return telemetry_; }

 private:
  std::string dir_;
  std::string base_;
  Options options_;
  mutable IoTelemetry telemetry_;
};

}  // namespace durable
}  // namespace sofia

#endif  // SOFIA_UTIL_DURABLE_IO_H_
