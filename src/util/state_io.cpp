#include "util/state_io.hpp"

#include <istream>
#include <limits>
#include <ostream>
#include <string>

namespace sofia {
namespace state_io {

namespace {

/// Reads one size field under the plausibility cap. A stream in a failed
/// state, a negative number, or an implausibly huge count all throw — the
/// caller never allocates from an untrusted size.
size_t ReadCount(std::istream& in, const char* what, size_t cap) {
  long long n = 0;
  Require(static_cast<bool>(in >> n), what);
  Require(n >= 0 && static_cast<unsigned long long>(n) <= cap, what);
  return static_cast<size_t>(n);
}

double ReadDouble(std::istream& in, const char* what) {
  double x = 0.0;
  Require(static_cast<bool>(in >> x), what);
  return x;
}

}  // namespace

void BeginState(std::ostream& out, const char* tag, int version) {
  out << tag << " v" << version << '\n';
  out.precision(std::numeric_limits<double>::max_digits10);
}

int ReadStateHeader(std::istream& in, const char* tag, int max_version) {
  std::string got_tag, got_version;
  if (!(in >> got_tag >> got_version) || got_tag != tag) {
    throw StateError(std::string("not a ") + tag + " checkpoint");
  }
  if (got_version.size() < 2 || got_version[0] != 'v' ||
      got_version.find_first_not_of("0123456789", 1) != std::string::npos ||
      got_version.size() > 10) {
    throw StateError(std::string("malformed ") + tag +
                     " checkpoint version '" + got_version + "'");
  }
  const int version = std::stoi(got_version.substr(1));
  if (version < 1 || version > max_version) {
    throw StateError(std::string(tag) + " checkpoint version " +
                     std::to_string(version) + " unsupported (max " +
                     std::to_string(max_version) + ")");
  }
  return version;
}

void WriteVector(std::ostream& out, const std::vector<double>& v) {
  out << v.size();
  for (double x : v) out << ' ' << x;
  out << '\n';
}

std::vector<double> ReadVector(std::istream& in) {
  const char* what = "corrupt checkpoint (vector)";
  const size_t n = ReadCount(in, what, kMaxStateElements);
  std::vector<double> v(n);
  for (double& x : v) x = ReadDouble(in, what);
  return v;
}

void WriteMatrix(std::ostream& out, const Matrix& m) {
  out << m.rows() << ' ' << m.cols();
  for (size_t k = 0; k < m.size(); ++k) out << ' ' << m.data()[k];
  out << '\n';
}

Matrix ReadMatrix(std::istream& in) {
  const char* what = "corrupt checkpoint (matrix)";
  const size_t rows = ReadCount(in, what, kMaxStateElements);
  const size_t cols = ReadCount(in, what, kMaxStateElements);
  Require(rows == 0 || cols <= kMaxStateElements / rows, what);
  Matrix m(rows, cols);
  for (size_t k = 0; k < m.size(); ++k) m.data()[k] = ReadDouble(in, what);
  return m;
}

void WriteMatrixList(std::ostream& out, const std::vector<Matrix>& ms) {
  out << ms.size() << '\n';
  for (const Matrix& m : ms) WriteMatrix(out, m);
}

std::vector<Matrix> ReadMatrixList(std::istream& in) {
  const size_t n =
      ReadCount(in, "corrupt checkpoint (matrix list)", /*cap=*/4096);
  std::vector<Matrix> ms;
  ms.reserve(n);
  for (size_t i = 0; i < n; ++i) ms.push_back(ReadMatrix(in));
  return ms;
}

void WriteTensor(std::ostream& out, const DenseTensor& t) {
  out << t.order();
  for (size_t n = 0; n < t.order(); ++n) out << ' ' << t.dim(n);
  for (size_t k = 0; k < t.NumElements(); ++k) out << ' ' << t[k];
  out << '\n';
}

DenseTensor ReadTensor(std::istream& in) {
  const char* what = "corrupt checkpoint (tensor)";
  const size_t order = ReadCount(in, what, /*cap=*/16);
  std::vector<size_t> dims(order);
  size_t volume = 1;
  for (size_t& d : dims) {
    d = ReadCount(in, what, kMaxStateElements);
    Require(d == 0 || volume <= kMaxStateElements / d, what);
    volume *= d;
  }
  DenseTensor t((Shape(dims)));
  for (size_t k = 0; k < t.NumElements(); ++k) t[k] = ReadDouble(in, what);
  return t;
}

void WriteShape(std::ostream& out, const Shape& shape) {
  out << shape.order();
  for (size_t n = 0; n < shape.order(); ++n) out << ' ' << shape.dim(n);
  out << '\n';
}

Shape ReadShape(std::istream& in) {
  const char* what = "corrupt checkpoint (shape)";
  const size_t order = ReadCount(in, what, /*cap=*/16);
  std::vector<size_t> dims(order);
  size_t volume = 1;
  for (size_t& d : dims) {
    d = ReadCount(in, what, kMaxStateElements);
    Require(d == 0 || volume <= kMaxStateElements / d, what);
    volume *= d;
  }
  return Shape(dims);
}

void WriteMask(std::ostream& out, const Mask& mask) {
  WriteShape(out, mask.shape());
  const std::vector<size_t> observed = mask.ObservedIndices();
  out << observed.size();
  for (size_t k : observed) out << ' ' << k;
  out << '\n';
}

Mask ReadMask(std::istream& in) {
  const char* what = "corrupt checkpoint (mask)";
  const Shape shape = ReadShape(in);
  const size_t nnz = ReadCount(in, what, shape.NumElements());
  Mask mask(shape, /*observed=*/false);
  for (size_t i = 0; i < nnz; ++i) {
    const size_t linear = ReadCount(in, what, kMaxStateElements);
    Require(linear < shape.NumElements(),
            "corrupt checkpoint (mask index out of range)");
    mask.Set(linear, true);
  }
  return mask;
}

}  // namespace state_io
}  // namespace sofia
