#include "util/state_io.hpp"

#include <istream>
#include <limits>
#include <ostream>
#include <string>

#include "util/check.hpp"

namespace sofia {
namespace state_io {

void BeginState(std::ostream& out, const char* tag, int version) {
  out << tag << " v" << version << '\n';
  out.precision(std::numeric_limits<double>::max_digits10);
}

int ReadStateHeader(std::istream& in, const char* tag, int max_version) {
  std::string got_tag, got_version;
  SOFIA_CHECK(static_cast<bool>(in >> got_tag >> got_version) &&
              got_tag == tag)
      << "not a " << tag << " checkpoint";
  SOFIA_CHECK(got_version.size() >= 2 && got_version[0] == 'v')
      << "malformed " << tag << " checkpoint version '" << got_version << "'";
  const int version = std::stoi(got_version.substr(1));
  SOFIA_CHECK(version >= 1 && version <= max_version)
      << tag << " checkpoint version " << version << " unsupported (max "
      << max_version << ")";
  return version;
}

void WriteVector(std::ostream& out, const std::vector<double>& v) {
  out << v.size();
  for (double x : v) out << ' ' << x;
  out << '\n';
}

std::vector<double> ReadVector(std::istream& in) {
  size_t n = 0;
  SOFIA_CHECK(static_cast<bool>(in >> n)) << "corrupt checkpoint (vector)";
  std::vector<double> v(n);
  for (double& x : v) {
    SOFIA_CHECK(static_cast<bool>(in >> x)) << "corrupt checkpoint (vector)";
  }
  return v;
}

void WriteMatrix(std::ostream& out, const Matrix& m) {
  out << m.rows() << ' ' << m.cols();
  for (size_t k = 0; k < m.size(); ++k) out << ' ' << m.data()[k];
  out << '\n';
}

Matrix ReadMatrix(std::istream& in) {
  size_t rows = 0, cols = 0;
  SOFIA_CHECK(static_cast<bool>(in >> rows >> cols))
      << "corrupt checkpoint (matrix)";
  Matrix m(rows, cols);
  for (size_t k = 0; k < m.size(); ++k) {
    SOFIA_CHECK(static_cast<bool>(in >> m.data()[k]))
        << "corrupt checkpoint (matrix)";
  }
  return m;
}

void WriteMatrixList(std::ostream& out, const std::vector<Matrix>& ms) {
  out << ms.size() << '\n';
  for (const Matrix& m : ms) WriteMatrix(out, m);
}

std::vector<Matrix> ReadMatrixList(std::istream& in) {
  size_t n = 0;
  SOFIA_CHECK(static_cast<bool>(in >> n))
      << "corrupt checkpoint (matrix list)";
  std::vector<Matrix> ms;
  ms.reserve(n);
  for (size_t i = 0; i < n; ++i) ms.push_back(ReadMatrix(in));
  return ms;
}

void WriteTensor(std::ostream& out, const DenseTensor& t) {
  out << t.order();
  for (size_t n = 0; n < t.order(); ++n) out << ' ' << t.dim(n);
  for (size_t k = 0; k < t.NumElements(); ++k) out << ' ' << t[k];
  out << '\n';
}

DenseTensor ReadTensor(std::istream& in) {
  size_t order = 0;
  SOFIA_CHECK(static_cast<bool>(in >> order)) << "corrupt checkpoint (tensor)";
  std::vector<size_t> dims(order);
  for (size_t& d : dims) {
    SOFIA_CHECK(static_cast<bool>(in >> d)) << "corrupt checkpoint (tensor)";
  }
  DenseTensor t((Shape(dims)));
  for (size_t k = 0; k < t.NumElements(); ++k) {
    SOFIA_CHECK(static_cast<bool>(in >> t[k]))
        << "corrupt checkpoint (tensor)";
  }
  return t;
}

void WriteShape(std::ostream& out, const Shape& shape) {
  out << shape.order();
  for (size_t n = 0; n < shape.order(); ++n) out << ' ' << shape.dim(n);
  out << '\n';
}

Shape ReadShape(std::istream& in) {
  size_t order = 0;
  SOFIA_CHECK(static_cast<bool>(in >> order)) << "corrupt checkpoint (shape)";
  std::vector<size_t> dims(order);
  for (size_t& d : dims) {
    SOFIA_CHECK(static_cast<bool>(in >> d)) << "corrupt checkpoint (shape)";
  }
  return Shape(dims);
}

void WriteMask(std::ostream& out, const Mask& mask) {
  WriteShape(out, mask.shape());
  const std::vector<size_t> observed = mask.ObservedIndices();
  out << observed.size();
  for (size_t k : observed) out << ' ' << k;
  out << '\n';
}

Mask ReadMask(std::istream& in) {
  const Shape shape = ReadShape(in);
  size_t nnz = 0;
  SOFIA_CHECK(static_cast<bool>(in >> nnz)) << "corrupt checkpoint (mask)";
  Mask mask(shape, /*observed=*/false);
  for (size_t i = 0; i < nnz; ++i) {
    size_t linear = 0;
    SOFIA_CHECK(static_cast<bool>(in >> linear))
        << "corrupt checkpoint (mask)";
    SOFIA_CHECK(linear < shape.NumElements())
        << "corrupt checkpoint (mask index out of range)";
    mask.Set(linear, true);
  }
  return mask;
}

}  // namespace state_io
}  // namespace sofia
