#include "util/shard_executor.hpp"

#include <algorithm>
#include <cstring>
#include <string>
#include <utility>

#include "obs/obs.hpp"

namespace sofia {

namespace {

/// Aux-lane registry handles (the compute lane uses per-worker counters
/// looked up at thread start instead — see WorkerLoop).
struct AuxMetrics {
  obs::Counter* jobs;
  obs::Counter* busy_us;
  obs::Gauge* queue_depth;
};

AuxMetrics& Aux() {
  obs::Registry& r = obs::Registry::Global();
  static AuxMetrics m{
      r.FindOrCreateCounter("executor.aux.jobs"),
      r.FindOrCreateCounter("executor.aux.busy_us"),
      r.FindOrCreateGauge("executor.aux.queue_depth"),
  };
  return m;
}

obs::Counter* WorkerBusyCounter(size_t worker_index) {
  return obs::Registry::Global().FindOrCreateCounter(
      "executor.w" + std::to_string(worker_index) + ".busy_us");
}

}  // namespace

double* ScratchArena::RawDoubles(size_t slot, size_t count) {
  if (slot >= slots_.size()) slots_.resize(slot + 1);
  std::vector<double>& buf = slots_[slot];
  if (buf.size() < count) {
    buf.resize(std::max(count, buf.size() * 2));
    ++growth_events_;
  }
  return buf.data();
}

double* ScratchArena::Doubles(size_t slot, size_t count) {
  double* ptr = RawDoubles(slot, count);
  std::memset(ptr, 0, count * sizeof(double));
  return ptr;
}

ShardExecutor::ShardExecutor(size_t num_threads) {
  const size_t n = num_threads == 0 ? 1 : num_threads;
  workers_.reserve(n - 1);
  for (size_t i = 0; i + 1 < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i + 1); });
  }
}

ShardExecutor::~ShardExecutor() {
  DrainAux();
  {
    std::lock_guard<std::mutex> lock(aux_mutex_);
    aux_stop_ = true;
  }
  aux_ready_.notify_all();
  if (aux_thread_.joinable()) aux_thread_.join();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::pair<size_t, size_t> ShardExecutor::OwnedRange(size_t num_tasks,
                                                    size_t num_threads,
                                                    size_t w) {
  const size_t q = num_tasks / num_threads;
  const size_t r = num_tasks % num_threads;
  const size_t begin = w * q + std::min(w, r);
  const size_t len = q + (w < r ? 1 : 0);
  return {begin, begin + len};
}

void ShardExecutor::RunOwnedBlock(size_t w) {
  const auto range = OwnedRange(num_tasks_, num_threads(), w);
  const std::function<void(size_t)>& fn = *fn_;
  for (size_t task = range.first; task < range.second; ++task) fn(task);
}

void ShardExecutor::WorkerLoop(size_t worker_index) {
  obs::SetThreadName("shard-worker-" + std::to_string(worker_index));
  obs::Counter* busy_us = WorkerBusyCounter(worker_index);
  size_t seen_generation = 0;
  for (;;) {
    size_t tasks = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [&] {
        return stop_ || generation_ != seen_generation;
      });
      if (stop_) return;
      seen_generation = generation_;
      tasks = num_tasks_;
    }
    // Busy time per batch; the trace span per batch is the highest-volume
    // event in the system, so it honors the worker_spans session option.
    const bool measured = obs::Enabled() || obs::TraceActive();
    const uint64_t start = measured ? obs::NowNs() : 0;
    RunOwnedBlock(worker_index);
    if (measured) {
      const uint64_t dur = obs::NowNs() - start;
      busy_us->Add(dur / 1000);
      if (obs::TraceWorkerSpans()) {
        obs::TraceRecord("executor.batch", start, dur, tasks, "tasks");
      }
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--busy_workers_ == 0) batch_done_.notify_one();
    }
  }
}

void ShardExecutor::Run(size_t num_tasks,
                        const std::function<void(size_t)>& fn) {
  if (num_tasks == 0) return;
  ++runs_;
  static obs::Counter* batches =
      obs::Registry::Global().FindOrCreateCounter("executor.batches");
  static obs::Counter* w0_busy_us = WorkerBusyCounter(0);
  batches->Add(1);
  const bool measured = obs::Enabled() || obs::TraceActive();
  if (workers_.empty() || num_tasks == 1) {
    const uint64_t start = measured ? obs::NowNs() : 0;
    for (size_t task = 0; task < num_tasks; ++task) fn(task);
    if (measured) w0_busy_us->Add((obs::NowNs() - start) / 1000);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    num_tasks_ = num_tasks;
    fn_ = &fn;
    busy_workers_ = workers_.size();
    ++generation_;
  }
  work_ready_.notify_all();
  {
    const uint64_t start = measured ? obs::NowNs() : 0;
    RunOwnedBlock(0);
    if (measured) {
      const uint64_t dur = obs::NowNs() - start;
      w0_busy_us->Add(dur / 1000);
      if (obs::TraceWorkerSpans()) {
        obs::TraceRecord("executor.batch", start, dur, num_tasks, "tasks");
      }
    }
  }
  std::unique_lock<std::mutex> lock(mutex_);
  batch_done_.wait(lock, [&] { return busy_workers_ == 0; });
  fn_ = nullptr;
}

void ShardExecutor::AuxLoop() {
  obs::SetThreadName("aux-lane");
  AuxMetrics& metrics = Aux();
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(aux_mutex_);
      aux_ready_.wait(lock, [&] { return aux_stop_ || !aux_queue_.empty(); });
      if (aux_queue_.empty()) return;  // aux_stop_ with an empty queue.
      job = std::move(aux_queue_.front());
      aux_queue_.pop_front();
      metrics.queue_depth->Set(static_cast<double>(aux_queue_.size()));
    }
    {
      // Aux jobs are rare (window prefetch, checkpoint serialization), so
      // their spans are always recorded when a trace session is active.
      obs::ObsSpan span("executor.aux.job", metrics.busy_us);
      job();
    }
    metrics.jobs->Add(1);
    {
      std::lock_guard<std::mutex> lock(aux_mutex_);
      ++aux_completed_;
    }
    aux_done_.notify_all();
  }
}

uint64_t ShardExecutor::Submit(std::function<void()> job) {
  std::unique_lock<std::mutex> lock(aux_mutex_);
  if (!aux_started_) {
    aux_started_ = true;
    aux_thread_ = std::thread([this] { AuxLoop(); });
  }
  aux_queue_.push_back(std::move(job));
  Aux().queue_depth->Set(static_cast<double>(aux_queue_.size()));
  const uint64_t ticket = ++aux_submitted_;
  lock.unlock();
  aux_ready_.notify_one();
  return ticket;
}

void ShardExecutor::Wait(uint64_t ticket) {
  std::unique_lock<std::mutex> lock(aux_mutex_);
  aux_done_.wait(lock, [&] { return aux_completed_ >= ticket; });
}

void ShardExecutor::DrainAux() {
  std::unique_lock<std::mutex> lock(aux_mutex_);
  aux_done_.wait(lock, [&] { return aux_completed_ >= aux_submitted_; });
}

}  // namespace sofia
