#ifndef SOFIA_UTIL_RNG_H_
#define SOFIA_UTIL_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

/// \file rng.hpp
/// \brief Seedable random-number utilities used by generators and tests.
///
/// All stochastic behaviour in the library flows through Rng so experiments
/// are reproducible from a single seed.

namespace sofia {

/// Thin deterministic wrapper over std::mt19937_64.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eedULL) : gen_(seed) {}

  /// Uniform real in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0);
  /// Gaussian with the given mean and standard deviation.
  double Normal(double mean = 0.0, double stddev = 1.0);
  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);
  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// k distinct indices drawn uniformly from [0, n) (Floyd's algorithm).
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Vector of n i.i.d. Uniform(lo, hi) values.
  std::vector<double> UniformVector(size_t n, double lo = 0.0, double hi = 1.0);
  /// Vector of n i.i.d. Normal(mean, stddev) values.
  std::vector<double> NormalVector(size_t n, double mean = 0.0,
                                   double stddev = 1.0);

  std::mt19937_64& generator() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

}  // namespace sofia

#endif  // SOFIA_UTIL_RNG_H_
