#ifndef SOFIA_UTIL_CHECK_H_
#define SOFIA_UTIL_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

/// \file check.hpp
/// \brief CHECK-style invariant macros.
///
/// A failed check prints the condition, location, and an optional streamed
/// message, then aborts. These guard programmer errors (bad shapes, index
/// bounds, invalid configuration); they are not a recoverable error channel.

namespace sofia::internal {

/// Sink that collects a streamed failure message and aborts on destruction.
class CheckFailure {
 public:
  CheckFailure(const char* cond, const char* file, int line) {
    stream_ << "CHECK failed: " << cond << " at " << file << ":" << line
            << " ";
  }
  [[noreturn]] ~CheckFailure() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  template <typename T>
  CheckFailure& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace sofia::internal

#define SOFIA_CHECK(cond)                                          \
  if (cond) {                                                      \
  } else                                                           \
    ::sofia::internal::CheckFailure(#cond, __FILE__, __LINE__)

#define SOFIA_CHECK_EQ(a, b) \
  SOFIA_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define SOFIA_CHECK_NE(a, b) \
  SOFIA_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define SOFIA_CHECK_LT(a, b) \
  SOFIA_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define SOFIA_CHECK_LE(a, b) \
  SOFIA_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define SOFIA_CHECK_GT(a, b) \
  SOFIA_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define SOFIA_CHECK_GE(a, b) \
  SOFIA_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#ifdef NDEBUG
#define SOFIA_DCHECK(cond) SOFIA_CHECK(true)
#else
#define SOFIA_DCHECK(cond) SOFIA_CHECK(cond)
#endif

#endif  // SOFIA_UTIL_CHECK_H_
