#ifndef SOFIA_UTIL_TABLE_H_
#define SOFIA_UTIL_TABLE_H_

#include <string>
#include <vector>

/// \file table.hpp
/// \brief Aligned console tables and CSV emission for benchmark output.
///
/// Every bench binary prints one aligned table per paper figure/table so the
/// output can be compared line-by-line with the paper, and optionally mirrors
/// the rows to a CSV file for plotting.

namespace sofia {

/// Accumulates rows of strings and renders them column-aligned.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append one row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Render with padded columns, a header rule, and two-space gutters.
  std::string ToString() const;

  /// Comma-separated rendering (header first).
  std::string ToCsv() const;

  /// Write ToCsv() to `path`; returns false on I/O failure.
  bool WriteCsv(const std::string& path) const;

  /// Format a double with `digits` significant digits (helper for rows).
  static std::string Num(double v, int digits = 4);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sofia

#endif  // SOFIA_UTIL_TABLE_H_
