#ifndef SOFIA_UTIL_STATE_IO_H_
#define SOFIA_UTIL_STATE_IO_H_

#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "tensor/dense_tensor.hpp"
#include "tensor/mask.hpp"
#include "tensor/shape.hpp"

/// \file state_io.hpp
/// \brief Text-serialization primitives shared by every streaming method's
/// checkpoint format (StreamingMethod::SaveState/RestoreState and the
/// SofiaModel v2 checkpoints).
///
/// All writers emit whitespace-separated fields; doubles round-trip via
/// max_digits10 (the caller sets the stream precision once through
/// BeginState), so a restored method continues the stream bit-for-bit.
///
/// Readers throw StateError (never abort, never construct partial state) on
/// truncated or malformed input. Checkpoints cross a disk boundary: a
/// truncated file, a torn write, or a flipped bit is an *environment*
/// fault the durability layer must recover from by falling back to an
/// older generation — which it can only do if the parse failure surfaces
/// as a catchable error rather than a process abort. Size fields are also
/// plausibility-capped before any allocation, so a bit-flipped count reads
/// as "corrupt checkpoint", not a multi-terabyte allocation.

namespace sofia {
namespace state_io {

/// Thrown by every reader on malformed input. Deliberately a distinct type
/// (not SOFIA_CHECK abort): restore-from-disk is a recoverable operation,
/// and callers (StreamGuard, DurableGuard, recovery tools) catch this to
/// fall back to an older checkpoint generation.
class StateError : public std::runtime_error {
 public:
  explicit StateError(const std::string& what) : std::runtime_error(what) {}
};

/// Throws StateError unless `ok`. The message should name the structure
/// being parsed ("corrupt checkpoint (matrix)").
inline void Require(bool ok, const char* what) {
  if (!ok) throw StateError(what);
}

/// Plausibility cap applied to every size field before allocation:
/// 2^28 doubles = 2 GiB, far above any real checkpoint and far below what
/// a flipped high bit in a count would request.
constexpr size_t kMaxStateElements = size_t{1} << 28;

/// Writes the "<tag> v<version>" header and sets the stream precision so
/// every following double survives the text roundtrip exactly.
void BeginState(std::ostream& out, const char* tag, int version);
/// Reads and validates the header written by BeginState; returns the
/// version. `max_version` guards against checkpoints from the future.
int ReadStateHeader(std::istream& in, const char* tag, int max_version);

void WriteVector(std::ostream& out, const std::vector<double>& v);
std::vector<double> ReadVector(std::istream& in);

void WriteMatrix(std::ostream& out, const Matrix& m);
Matrix ReadMatrix(std::istream& in);

/// Count-prefixed list of matrices (the factor set of a CP method).
void WriteMatrixList(std::ostream& out, const std::vector<Matrix>& ms);
std::vector<Matrix> ReadMatrixList(std::istream& in);

void WriteTensor(std::ostream& out, const DenseTensor& t);
DenseTensor ReadTensor(std::istream& in);

void WriteShape(std::ostream& out, const Shape& shape);
Shape ReadShape(std::istream& in);

/// Masks serialize as the shape plus the ascending observed indices —
/// O(|Ω|) text instead of one character per entry.
void WriteMask(std::ostream& out, const Mask& mask);
Mask ReadMask(std::istream& in);

}  // namespace state_io
}  // namespace sofia

#endif  // SOFIA_UTIL_STATE_IO_H_
