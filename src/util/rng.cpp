#include "util/rng.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/check.hpp"

namespace sofia {

double Rng::Uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(gen_);
}

double Rng::Normal(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(gen_);
}

bool Rng::Bernoulli(double p) {
  std::bernoulli_distribution dist(p);
  return dist(gen_);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(gen_);
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  SOFIA_CHECK_LE(k, n);
  // Floyd's algorithm: expected O(k) inserts regardless of n.
  std::unordered_set<size_t> chosen;
  chosen.reserve(k * 2);
  for (size_t j = n - k; j < n; ++j) {
    size_t t = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(j)));
    if (!chosen.insert(t).second) chosen.insert(j);
  }
  std::vector<size_t> out(chosen.begin(), chosen.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<double> Rng::UniformVector(size_t n, double lo, double hi) {
  std::vector<double> v(n);
  for (auto& x : v) x = Uniform(lo, hi);
  return v;
}

std::vector<double> Rng::NormalVector(size_t n, double mean, double stddev) {
  std::vector<double> v(n);
  for (auto& x : v) x = Normal(mean, stddev);
  return v;
}

}  // namespace sofia
