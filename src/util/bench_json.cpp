#include "util/bench_json.hpp"

#include <thread>

#include "tensor/simd.hpp"

namespace sofia {
namespace bench {

void WriteMachineBlock(std::FILE* f) {
  std::fprintf(f,
               "  \"machine\": {\n    \"cpus\": %u,\n    \"simd\": \"%s\"\n"
               "  },\n",
               std::thread::hardware_concurrency(), simd::IsaName());
}

}  // namespace bench
}  // namespace sofia
