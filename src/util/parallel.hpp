#ifndef SOFIA_UTIL_PARALLEL_H_
#define SOFIA_UTIL_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

/// \file parallel.hpp
/// \brief Worker-pool abstraction for the sparse kernel layer.
///
/// The sparse kernels (see tensor/sparse_kernels.hpp) split work into tasks
/// that write *disjoint* state keyed by task index (mode slices, fixed-size
/// record blocks, CSF root slabs). Under that contract the results are
/// bitwise identical for every thread count and every task-to-thread
/// assignment, because only the mapping of tasks to threads — not the
/// per-task accumulation order — varies. Two pool implementations exploit
/// that freedom differently:
///
///  - ThreadPool (here): tasks are claimed dynamically from a shared
///    counter — best load balance for irregular one-shot batches;
///  - ShardExecutor (util/shard_executor.hpp): tasks are assigned by a
///    static contiguous partition that is identical on every Run — each
///    worker re-touches the same task range (CSF root slabs) step after
///    step, keeping its private-cache working set warm across a stream.

namespace sofia {

class ScratchArena;

/// Resolve a `num_threads` knob: 0 means "use the hardware concurrency",
/// anything else is clamped below by 1.
size_t ResolveNumThreads(size_t requested);

/// Abstract executor of indexed task batches — the seam every kernel and
/// every StreamingMethod::AdoptWorkerPool site is written against.
///
/// `Run(num_tasks, fn)` invokes `fn(task)` for every task in [0, num_tasks)
/// and blocks until all tasks finish. `fn` must not throw and must only
/// write state owned by its task index. Run is not reentrant: one batch at
/// a time per pool instance, driven from one thread.
class WorkerPool {
 public:
  virtual ~WorkerPool() = default;

  /// Total number of executing threads (workers + the caller of Run).
  virtual size_t num_threads() const = 0;

  /// Run fn(0) .. fn(num_tasks - 1), blocking until every task returns.
  virtual void Run(size_t num_tasks,
                   const std::function<void(size_t)>& fn) = 0;

  /// Reusable caller-side scratch storage, or nullptr when this pool offers
  /// none (kernels then fall back to call-local vectors). Pools that return
  /// an arena (ShardExecutor) make the kernels' blocked-reduction scratch
  /// allocation-free in steady state: slot-keyed buffers grow monotonically
  /// and are reused across calls and steps.
  virtual ScratchArena* arena() { return nullptr; }
};

/// Fixed-size pool of worker threads executing indexed task batches with
/// dynamic task claiming: tasks are taken from a shared atomic counter, so
/// the task-to-thread assignment varies call to call (the results do not —
/// see the file comment). The calling thread participates; a pool
/// constructed with `num_threads = 1` spawns no workers and runs serially.
class ThreadPool : public WorkerPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool() override;

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const override { return workers_.size() + 1; }

  void Run(size_t num_tasks, const std::function<void(size_t)>& fn) override;

 private:
  void WorkerLoop();
  /// Claim and run tasks from the current batch until the counter runs out.
  void DrainTasks();

  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable batch_done_;
  bool stop_ = false;
  size_t generation_ = 0;        // Bumped once per Run() batch.
  size_t num_tasks_ = 0;
  const std::function<void(size_t)>* fn_ = nullptr;
  std::atomic<size_t> next_task_{0};
  size_t busy_workers_ = 0;
};

/// One-shot convenience: run fn(0) .. fn(num_tasks - 1) on a lazily
/// constructed, process-local cached pool of `ResolveNumThreads(num_threads)`
/// threads. Serial (no pool touched) when a single thread is requested or
/// there is at most one task.
///
/// The pool behind a given thread count is built on first use and cached
/// for the life of the process — the previous implementation spawned (and
/// joined) a fresh ephemeral pool of OS threads on *every call*, which
/// dominated small-batch kernels whenever no long-lived pool had been
/// adopted. Distinct thread counts cache distinct pools; a caller that
/// finds its cached pool busy (a concurrent ParallelFor of the same size on
/// another thread) runs the batch serially instead of blocking — bitwise
/// identical either way, per the task-ownership contract.
void ParallelFor(size_t num_threads, size_t num_tasks,
                 const std::function<void(size_t)>& fn);

/// Run a task batch on `pool` if one is supplied, otherwise fall back to
/// ParallelFor's cached process-local pool with `num_threads`. Lets kernels
/// accept an optional long-lived pool without duplicating the dispatch at
/// every call site.
void RunTasks(WorkerPool* pool, size_t num_threads, size_t num_tasks,
              const std::function<void(size_t)>& fn);

}  // namespace sofia

#endif  // SOFIA_UTIL_PARALLEL_H_
