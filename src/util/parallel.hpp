#ifndef SOFIA_UTIL_PARALLEL_H_
#define SOFIA_UTIL_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

/// \file parallel.hpp
/// \brief Small std::thread pool for the sparse kernel layer.
///
/// The sparse kernels (see tensor/sparse_kernels.hpp) split work into tasks
/// that write *disjoint* state keyed by task index (mode slices, fixed-size
/// record blocks). Under that contract the results are bitwise identical for
/// every thread count, because only the assignment of tasks to threads — not
/// the per-task accumulation order — varies.

namespace sofia {

/// Resolve a `num_threads` knob: 0 means "use the hardware concurrency",
/// anything else is clamped below by 1.
size_t ResolveNumThreads(size_t requested);

/// Fixed-size pool of worker threads executing indexed task batches.
///
/// `Run(num_tasks, fn)` invokes `fn(task)` for every task in [0, num_tasks)
/// and blocks until all tasks finish. Tasks are claimed dynamically from a
/// shared counter; the calling thread participates, so a pool constructed
/// with `num_threads = 1` spawns no workers and runs serially.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total number of executing threads (workers + the caller of Run).
  size_t num_threads() const { return workers_.size() + 1; }

  /// Run fn(0) .. fn(num_tasks - 1), blocking until every task returns.
  /// `fn` must not throw and must only write state owned by its task index.
  void Run(size_t num_tasks, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();
  /// Claim and run tasks from the current batch until the counter runs out.
  void DrainTasks();

  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable batch_done_;
  bool stop_ = false;
  size_t generation_ = 0;        // Bumped once per Run() batch.
  size_t num_tasks_ = 0;
  const std::function<void(size_t)>* fn_ = nullptr;
  std::atomic<size_t> next_task_{0};
  size_t busy_workers_ = 0;
};

/// One-shot convenience: run fn(0) .. fn(num_tasks - 1) on an ephemeral pool
/// of `ResolveNumThreads(num_threads)` threads. Serial (no threads spawned)
/// when a single thread is requested or there is at most one task.
void ParallelFor(size_t num_threads, size_t num_tasks,
                 const std::function<void(size_t)>& fn);

/// Run a task batch on `pool` if one is supplied, otherwise fall back to an
/// ephemeral ParallelFor with `num_threads`. Lets kernels accept an optional
/// long-lived pool without duplicating the dispatch at every call site.
void RunTasks(ThreadPool* pool, size_t num_threads, size_t num_tasks,
              const std::function<void(size_t)>& fn);

}  // namespace sofia

#endif  // SOFIA_UTIL_PARALLEL_H_
