#include "util/fault_injection.hpp"

#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <map>
#include <mutex>

namespace sofia {
namespace fault {

namespace {

/// All armed-plan state behind one mutex. IO sites are consulted from both
/// the compute thread and the ShardExecutor aux lane (async journal
/// appends), so the counters must be coherent across threads.
struct PlanState {
  std::mutex mutex;
  std::vector<FaultSpec> specs;
  std::map<std::string, uint64_t> ops;  // Per-site operation counters.
  uint64_t injected = 0;
};

PlanState& State() {
  static PlanState state;
  return state;
}

/// Fast-path flag: OnIo is on every durable write, and an unarmed process
/// must not take a mutex per IO op.
std::atomic<bool> g_enabled{false};

}  // namespace

void Arm(const FaultSpec& spec) {
  PlanState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.specs.push_back(spec);
  g_enabled.store(true, std::memory_order_release);
}

void Reset() {
  PlanState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.specs.clear();
  state.ops.clear();
  state.injected = 0;
  g_enabled.store(false, std::memory_order_release);
}

bool Enabled() { return g_enabled.load(std::memory_order_acquire); }

Decision OnIo(const char* site, size_t payload_bytes) {
  Decision decision;
  if (!Enabled()) return decision;
  PlanState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  const uint64_t op = state.ops[site]++;
  for (const FaultSpec& spec : state.specs) {
    if (!spec.site.empty() && spec.site != site) continue;
    if (op < spec.at) continue;
    switch (spec.kind) {
      case FaultKind::kCrash:
        if (op == spec.at) {
          decision.crash = true;
          ++state.injected;
        }
        break;
      case FaultKind::kTornWrite:
        if (op == spec.at) {
          decision.torn = true;
          decision.crash = true;  // A torn write is a death mid-write.
          double fraction = spec.fraction;
          if (fraction < 0.0) fraction = 0.0;
          if (fraction > 1.0) fraction = 1.0;
          decision.torn_bytes =
              static_cast<size_t>(fraction *
                                  static_cast<double>(payload_bytes));
          ++state.injected;
        }
        break;
      case FaultKind::kIoError:
        if (op < spec.at + spec.count) {
          decision.io_error = true;
          ++state.injected;
        }
        break;
    }
  }
  return decision;
}

void Crash(const char* site) { throw SimulatedCrash{site}; }

uint64_t OpsAt(const std::string& site) {
  PlanState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  auto it = state.ops.find(site);
  return it == state.ops.end() ? 0 : it->second;
}

uint64_t InjectedCount() {
  PlanState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  return state.injected;
}

bool FlipFileBit(const std::string& path, size_t offset, unsigned bit) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) return false;
  unsigned char byte = 0;
  if (std::fseek(f, static_cast<long>(offset), SEEK_SET) != 0 ||
      std::fread(&byte, 1, 1, f) != 1) {
    std::fclose(f);
    return false;
  }
  byte = static_cast<unsigned char>(byte ^ (1u << (bit & 7u)));
  if (std::fseek(f, static_cast<long>(offset), SEEK_SET) != 0 ||
      std::fwrite(&byte, 1, 1, f) != 1) {
    std::fclose(f);
    return false;
  }
  std::fclose(f);
  return true;
}

bool TruncateFile(const std::string& path, size_t new_size) {
  return ::truncate(path.c_str(), static_cast<off_t>(new_size)) == 0;
}

size_t FileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return SIZE_MAX;
  return static_cast<size_t>(st.st_size);
}

}  // namespace fault
}  // namespace sofia
