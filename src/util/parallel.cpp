#include "util/parallel.hpp"

#include <map>
#include <memory>

namespace sofia {

size_t ResolveNumThreads(size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = num_threads == 0 ? 1 : num_threads;
  workers_.reserve(n - 1);
  for (size_t i = 0; i + 1 < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::DrainTasks() {
  const size_t num_tasks = num_tasks_;
  const std::function<void(size_t)>& fn = *fn_;
  for (;;) {
    const size_t task = next_task_.fetch_add(1, std::memory_order_relaxed);
    if (task >= num_tasks) break;
    fn(task);
  }
}

void ThreadPool::WorkerLoop() {
  size_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [&] {
        return stop_ || generation_ != seen_generation;
      });
      if (stop_) return;
      seen_generation = generation_;
    }
    DrainTasks();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--busy_workers_ == 0) batch_done_.notify_one();
    }
  }
}

void ThreadPool::Run(size_t num_tasks, const std::function<void(size_t)>& fn) {
  if (num_tasks == 0) return;
  if (workers_.empty() || num_tasks == 1) {
    for (size_t task = 0; task < num_tasks; ++task) fn(task);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    num_tasks_ = num_tasks;
    fn_ = &fn;
    next_task_.store(0, std::memory_order_relaxed);
    busy_workers_ = workers_.size();
    ++generation_;
  }
  work_ready_.notify_all();
  DrainTasks();
  std::unique_lock<std::mutex> lock(mutex_);
  batch_done_.wait(lock, [&] { return busy_workers_ == 0; });
  fn_ = nullptr;
}

namespace {

// Process-local cache of fallback pools, one per requested thread count.
// A pool's Run is single-driver, so each cached pool carries a mutex: the
// first ParallelFor caller of a given size drives the pool, a concurrent
// caller of the same size falls back to a serial loop (identical results —
// the task-ownership contract makes the outcome independent of the thread
// count). Pools live until process exit; their worker threads are idle
// (condition-variable parked) between calls.
struct CachedPool {
  std::mutex in_use;
  ThreadPool pool;
  explicit CachedPool(size_t n) : pool(n) {}
};

CachedPool* GetCachedPool(size_t num_threads) {
  static std::mutex registry_mutex;
  // Raw-pointer map: intentionally leaked so worker threads never race
  // static destruction order at process exit.
  static std::map<size_t, CachedPool*>* registry =
      new std::map<size_t, CachedPool*>();
  std::lock_guard<std::mutex> lock(registry_mutex);
  auto it = registry->find(num_threads);
  if (it == registry->end()) {
    it = registry->emplace(num_threads, new CachedPool(num_threads)).first;
  }
  return it->second;
}

}  // namespace

void ParallelFor(size_t num_threads, size_t num_tasks,
                 const std::function<void(size_t)>& fn) {
  const size_t n = ResolveNumThreads(num_threads);
  if (n <= 1 || num_tasks <= 1) {
    for (size_t task = 0; task < num_tasks; ++task) fn(task);
    return;
  }
  CachedPool* cached = GetCachedPool(n);
  std::unique_lock<std::mutex> lock(cached->in_use, std::try_to_lock);
  if (!lock.owns_lock()) {
    // Pool of this size already driven by another thread (or a nested
    // ParallelFor from inside a task): run serially rather than block.
    for (size_t task = 0; task < num_tasks; ++task) fn(task);
    return;
  }
  cached->pool.Run(num_tasks, fn);
}

void RunTasks(WorkerPool* pool, size_t num_threads, size_t num_tasks,
              const std::function<void(size_t)>& fn) {
  if (pool != nullptr) {
    pool->Run(num_tasks, fn);
  } else {
    ParallelFor(num_threads, num_tasks, fn);
  }
}

}  // namespace sofia
