#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/check.hpp"

namespace sofia {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> row) {
  SOFIA_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::ToString() const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << row[c] << std::string(width[c] - row[c].size(), ' ');
      if (c + 1 < row.size()) out << "  ";
    }
    out << "\n";
  };
  emit(header_);
  size_t total = 0;
  for (size_t c = 0; c < width.size(); ++c) total += width[c] + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string Table::ToCsv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << row[c];
      if (c + 1 < row.size()) out << ",";
    }
    out << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

bool Table::WriteCsv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << ToCsv();
  return static_cast<bool>(f);
}

std::string Table::Num(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, v);
  return buf;
}

}  // namespace sofia
