#ifndef SOFIA_UTIL_FAULT_INJECTION_H_
#define SOFIA_UTIL_FAULT_INJECTION_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

/// \file fault_injection.hpp
/// \brief Deterministic fault-injection hooks under the durability layer.
///
/// Crash consistency cannot be tested by waiting for real crashes: the
/// durable IO paths (util/durable_io, data/slice_format, eval/durable_guard)
/// consult this hook layer at every IO site, and tests *arm* faults that
/// fire on the k-th operation at a named site — the same plan always hits
/// the same write, so every kill-and-recover run is reproducible from its
/// arm list alone. Three fault kinds cover the crash matrix:
///
///  - kCrash: the process "dies" at the site — modeled as a thrown
///    SimulatedCrash that the test catches where main() would have exited.
///    Whatever the filesystem held at that instant is what recovery sees.
///  - kTornWrite: the write persists only a prefix of its payload, then the
///    process dies — the classic torn page / partial append.
///  - kIoError: the operation reports failure (EIO/ENOSPC stand-in) without
///    side effects; armed with a count, it fails that many consecutive
///    operations and then lets the site succeed — exactly the transient
///    window durable_io's retry/backoff must ride out.
///
/// Sites are plain string literals owned by the IO layer (e.g.
/// "snapshot.write", "journal.append", "snapshot.rename"); per-site op
/// counters double as test telemetry. The whole layer is a no-op (one
/// relaxed atomic load) when nothing is armed, so production builds pay
/// nothing for carrying the hooks.

namespace sofia {
namespace fault {

/// Thrown at an armed kCrash/kTornWrite site. Deliberately NOT derived from
/// std::exception: generic catch(const std::exception&) recovery code must
/// not be able to swallow a simulated process death by accident.
struct SimulatedCrash {
  std::string site;  ///< The IO site that "died".
};

enum class FaultKind {
  kCrash,      ///< Die at the site (before the op takes effect).
  kTornWrite,  ///< Persist a prefix of the payload, then die.
  kIoError,    ///< Fail the op cleanly (transient EIO/ENOSPC stand-in).
};

/// One armed fault. Fires on the (at+1)-th matching operation at `site`;
/// kIoError affects `count` consecutive operations from there.
struct FaultSpec {
  std::string site;      ///< Exact site name; "" matches every site.
  FaultKind kind = FaultKind::kCrash;
  uint64_t at = 0;       ///< Zero-based index of the first affected op.
  uint64_t count = 1;    ///< kIoError: consecutive failing ops.
  double fraction = 0.5; ///< kTornWrite: fraction of the payload persisted.
};

/// What the IO layer must do for the current operation.
struct Decision {
  bool io_error = false;  ///< Report failure, move no data.
  bool crash = false;     ///< Throw SimulatedCrash (after torn prefix, if any).
  bool torn = false;      ///< Persist only `torn_bytes` of the payload.
  size_t torn_bytes = 0;
};

/// Arms a fault. Multiple specs stack; each op consults all of them.
void Arm(const FaultSpec& spec);

/// Disarms everything and zeroes the per-site op counters.
void Reset();

/// True when at least one fault is armed (fast path check).
bool Enabled();

/// Consulted by the IO layer at each site, advancing that site's op
/// counter. `payload_bytes` sizes torn writes. Never throws — the caller
/// applies the decision (and throws SimulatedCrash itself via Crash()).
Decision OnIo(const char* site, size_t payload_bytes);

/// Throws SimulatedCrash{site}. The IO layer calls this when a Decision
/// says crash, after persisting any torn prefix.
[[noreturn]] void Crash(const char* site);

/// Operations seen at `site` since the last Reset (test telemetry).
uint64_t OpsAt(const std::string& site);

/// Total faults injected (of any kind) since the last Reset.
uint64_t InjectedCount();

/// RAII: Reset() on construction and destruction, so a test's plan can
/// never leak into the next test.
class ScopedFaultPlan {
 public:
  ScopedFaultPlan() { Reset(); }
  explicit ScopedFaultPlan(const FaultSpec& spec) {
    Reset();
    Arm(spec);
  }
  ~ScopedFaultPlan() { Reset(); }
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;
};

// --- At-rest corruption helpers (bit rot / torn tails on disk) -----------

/// Flips one bit of the byte at `offset` in `path`. Returns false when the
/// file cannot be opened or is shorter than offset+1.
bool FlipFileBit(const std::string& path, size_t offset, unsigned bit);

/// Truncates `path` to `new_size` bytes (a torn tail at rest). Returns
/// false on failure.
bool TruncateFile(const std::string& path, size_t new_size);

/// Size of `path` in bytes, or SIZE_MAX when it cannot be stat'ed.
size_t FileSize(const std::string& path);

}  // namespace fault
}  // namespace sofia

#endif  // SOFIA_UTIL_FAULT_INJECTION_H_
