#ifndef SOFIA_UTIL_STOPWATCH_H_
#define SOFIA_UTIL_STOPWATCH_H_

#include <chrono>

/// \file stopwatch.hpp
/// \brief Monotonic wall-clock stopwatch for the ART metric and benches.

namespace sofia {

/// Starts on construction; ElapsedSeconds() may be read repeatedly.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Reset the epoch to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sofia

#endif  // SOFIA_UTIL_STOPWATCH_H_
