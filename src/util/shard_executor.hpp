#ifndef SOFIA_UTIL_SHARD_EXECUTOR_H_
#define SOFIA_UTIL_SHARD_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/parallel.hpp"

/// \file shard_executor.hpp
/// \brief Persistent sharded worker runtime with stable task ownership.
///
/// The streaming step loop calls the same kernels on the same CSF fiber
/// trees hundreds of times. ThreadPool's dynamic task claiming re-rolls the
/// task-to-thread mapping every call, so a worker's cache lines migrate
/// between cores step to step. ShardExecutor instead assigns tasks by a
/// *static contiguous block partition* that depends only on (num_tasks,
/// num_threads): worker w always executes the same contiguous task range.
/// Because kernel tasks are keyed to CSF root slabs, each worker re-touches
/// the same slab range of every fiber tree across an entire stream — its
/// private-cache working set stays warm. Results are bitwise identical to
/// single-threaded execution at any worker count: task outputs are disjoint
/// and slab partials are combined in slab order by the kernels themselves
/// (see tensor/csf_kernels.cpp, RootSlabReduce).
///
/// On top of the sharded compute lane the executor adds:
///  - per-slot ScratchArena buffers, so kernels' blocked-reduction scratch
///    is allocation-free in steady state (growth is counter-pinned);
///  - an auxiliary lane: a dedicated background thread running FIFO jobs
///    (Submit/Wait tickets). The streaming pipeline uses it to overlap
///    slice t+1's ingest (pattern + CSF-delta build) and StreamGuard's
///    checkpoint serialization with slice t's compute.

namespace sofia {

/// Slot-keyed reusable scratch buffers. A slot identifies a *purpose*
/// (e.g. "MTTKRP slab partials"); the buffer behind each slot grows
/// monotonically and is reused across calls, so after warm-up a steady-state
/// stream step performs zero scratch allocations. `growth_events()` counts
/// every (re)allocation — tests pin it flat over steady-state windows.
///
/// Not thread-safe: each arena belongs to one thread (the executor keeps
/// one for the Run caller).
class ScratchArena {
 public:
  /// Buffer of at least `count` doubles behind `slot`, zero-filled on every
  /// call (kernels accumulate into scratch and expect zeros, exactly like
  /// the local vectors they replace).
  double* Doubles(size_t slot, size_t count);

  /// Same, but contents preserved (uninitialized where grown).
  double* RawDoubles(size_t slot, size_t count);

  uint64_t growth_events() const { return growth_events_; }

 private:
  std::vector<std::vector<double>> slots_;
  uint64_t growth_events_ = 0;
};

/// Well-known arena slots used by the kernel layer (tensor/csf_kernels.cpp,
/// tensor/sparse_kernels.cpp). New users take slots beyond kFirstFreeSlot.
namespace arena_slots {
constexpr size_t kReducePartials = 0;  // Blocked-reduction partial sums.
constexpr size_t kReduceOnes = 1;      // All-ones weight vector.
constexpr size_t kFirstFreeSlot = 8;
}  // namespace arena_slots

/// Persistent sharded executor. `ShardExecutor(n)` spawns n-1 worker
/// threads; the Run caller acts as worker 0 and owns the first task block.
///
/// Partition: with T tasks and W threads, worker w executes the contiguous
/// range [w*q + min(w, r), ...) of length q + (w < r), where q = T / W and
/// r = T % W — the same mapping on every Run with the same (T, W), which is
/// what makes slab ownership stable across stream steps.
class ShardExecutor : public WorkerPool {
 public:
  explicit ShardExecutor(size_t num_threads);
  ~ShardExecutor() override;

  ShardExecutor(const ShardExecutor&) = delete;
  ShardExecutor& operator=(const ShardExecutor&) = delete;

  size_t num_threads() const override { return workers_.size() + 1; }

  /// Execute fn(0) .. fn(num_tasks - 1) under the static block partition;
  /// blocks until all tasks finish. Caller-driven, not reentrant.
  void Run(size_t num_tasks, const std::function<void(size_t)>& fn) override;

  /// Caller-thread arena (worker 0 / the Run driver).
  ScratchArena* arena() override { return &caller_arena_; }

  /// The static partition, exposed for tests and for callers that shard
  /// data structures to match ownership: returns [begin, end) of worker w.
  static std::pair<size_t, size_t> OwnedRange(size_t num_tasks,
                                              size_t num_threads, size_t w);

  // --- Auxiliary lane -----------------------------------------------------

  /// Enqueue a background job on the aux thread (spawned lazily on first
  /// Submit). Jobs run FIFO, one at a time, concurrently with Run batches.
  /// Returns a ticket; Wait(ticket) blocks until that job has finished.
  uint64_t Submit(std::function<void()> job);

  /// Block until the job behind `ticket` (and all earlier jobs) completed.
  /// A ticket from before the last drain is already satisfied.
  void Wait(uint64_t ticket);

  /// Wait for every submitted job. Called by the destructor.
  void DrainAux();

  /// Total Run batches executed (tests pin ownership stability per batch).
  uint64_t runs() const { return runs_; }

 private:
  void WorkerLoop(size_t worker_index);
  void RunOwnedBlock(size_t w);
  void AuxLoop();

  std::vector<std::thread> workers_;
  ScratchArena caller_arena_;

  // Compute-lane batch state (same protocol as ThreadPool, minus the
  // claiming counter: each worker's range is fixed by the partition).
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable batch_done_;
  bool stop_ = false;
  size_t generation_ = 0;
  size_t num_tasks_ = 0;
  const std::function<void(size_t)>* fn_ = nullptr;
  size_t busy_workers_ = 0;
  uint64_t runs_ = 0;

  // Aux-lane state.
  std::mutex aux_mutex_;
  std::condition_variable aux_ready_;
  std::condition_variable aux_done_;
  std::thread aux_thread_;
  bool aux_started_ = false;
  bool aux_stop_ = false;
  std::deque<std::function<void()>> aux_queue_;
  uint64_t aux_submitted_ = 0;
  uint64_t aux_completed_ = 0;
};

}  // namespace sofia

#endif  // SOFIA_UTIL_SHARD_EXECUTOR_H_
