#ifndef SOFIA_EVAL_STREAMING_METHOD_H_
#define SOFIA_EVAL_STREAMING_METHOD_H_

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "eval/step_result.hpp"
#include "tensor/coo_list.hpp"
#include "tensor/dense_tensor.hpp"
#include "tensor/mask.hpp"
#include "util/parallel.hpp"

/// \file streaming_method.hpp
/// \brief Common interface for SOFIA and all streaming competitors.
///
/// A method consumes subtensors one at a time and returns a lazy StepResult
/// handle for each — the estimate's *structure* (factors + temporal row,
/// loadings + weights, masked data), not an O(volume R) materialized
/// tensor. Consumers that need the dense estimate call imputed() on the
/// handle; the eval protocols instead read it only at the entries they
/// score, through the handle's gather accessors. Methods with a start-up
/// phase (SOFIA, MAST, OR-MSTC) declare an init window; the runner feeds
/// those slices to Initialize() and excludes the time spent there from the
/// ART metric, as the paper does.

namespace sofia {

/// Abstract streaming tensor factorization/completion method.
class StreamingMethod {
 public:
  virtual ~StreamingMethod() = default;

  /// Display name used in result tables.
  virtual std::string name() const = 0;

  /// Number of start-up slices consumed by Initialize() (0 = none).
  virtual size_t init_window() const { return 0; }

  /// Consumes the first init_window() slices at once; returns completed
  /// estimates for them (same count and shapes). Only called when
  /// init_window() > 0.
  virtual std::vector<DenseTensor> Initialize(
      const std::vector<DenseTensor>& slices, const std::vector<Mask>& masks);

  /// Primary per-step API: consume one subtensor, return the lazy estimate
  /// handle. `pattern` may hold an externally built coordinate pattern of
  /// `omega` (with mode buckets) — comparison runners build each slice's
  /// CooList once and share it across every method per step; methods on the
  /// ObservedSweep core (and SOFIA's shared_ptr pattern cache) adopt it to
  /// skip their own build, others ignore it.
  virtual StepResult StepLazy(const DenseTensor& y, const Mask& omega,
                              std::shared_ptr<const CooList> pattern =
                                  nullptr) = 0;

  /// Thin materializing wrappers for compatibility: StepLazy + imputed().
  virtual DenseTensor Step(const DenseTensor& y, const Mask& omega);
  virtual DenseTensor Step(const DenseTensor& y, const Mask& omega,
                           std::shared_ptr<const CooList> pattern);

  /// Consumes one subtensor when the caller does not need the estimate at
  /// all (the forecasting protocol): methods override this to also skip the
  /// output-only tail work (final temporal re-solves) that even a lazy
  /// handle requires. Default discards the StepLazy handle unmaterialized.
  virtual void Observe(const DenseTensor& y, const Mask& omega) {
    StepLazy(y, omega);
  }

  /// Whether Forecast() is implemented.
  virtual bool SupportsForecast() const { return false; }

  /// h-step-ahead forecast past the last consumed subtensor (h >= 1).
  /// Thin materializing wrapper over ForecastLazy().
  virtual DenseTensor Forecast(size_t h) const;

  /// Lazy h-step-ahead forecast handle; the forecast protocol scores it at
  /// held-out entries only. Must be overridden (together with
  /// SupportsForecast) by forecast-capable methods.
  virtual StepResult ForecastLazy(size_t h) const;

  /// Whether SaveState/RestoreState are implemented. All in-tree methods
  /// support checkpointing; the default is false so external methods opt in
  /// explicitly (StreamGuard's rollback/reinit policies require it).
  virtual bool SupportsStateCheckpoint() const { return false; }

  /// Serializes the method's complete mutable state as text (util/state_io
  /// primitives; doubles via max_digits10). A later RestoreState on the
  /// *same configuration* must continue the stream bit-for-bit — this is
  /// the contract StreamGuard's rollback policy is built on. Configuration
  /// (rank, period, solver options) is NOT part of the state; a checkpoint
  /// only makes sense on a method constructed with the same options.
  virtual void SaveState(std::ostream& out) const;

  /// Inverse of SaveState: replaces the method's mutable state with the
  /// checkpoint's. Throws state_io::StateError on malformed input
  /// (truncated, bit-flipped, or wrong-method checkpoints) without
  /// constructing partial state — the durability layer catches it to fall
  /// back to an older checkpoint generation.
  virtual void RestoreState(std::istream& in);

  /// Adopt a shared worker pool for the observed-entry kernels (one pool
  /// per comparison run instead of one lazily spawned pool per method).
  /// Results are bitwise identical with or without it — the kernels'
  /// work units are owner-partitioned for every thread count. Default:
  /// ignore (dense-only methods have no kernel work to thread).
  virtual void AdoptWorkerPool(std::shared_ptr<WorkerPool> pool) {
    (void)pool;
  }
};

}  // namespace sofia

#endif  // SOFIA_EVAL_STREAMING_METHOD_H_
