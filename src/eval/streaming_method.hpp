#ifndef SOFIA_EVAL_STREAMING_METHOD_H_
#define SOFIA_EVAL_STREAMING_METHOD_H_

#include <memory>
#include <string>
#include <vector>

#include "tensor/coo_list.hpp"
#include "tensor/dense_tensor.hpp"
#include "tensor/mask.hpp"

/// \file streaming_method.hpp
/// \brief Common interface for SOFIA and all streaming competitors.
///
/// A method consumes subtensors one at a time and returns an imputed
/// estimate for each. Methods with a start-up phase (SOFIA, MAST, OR-MSTC)
/// declare an init window; the runner feeds those slices to Initialize() and
/// excludes the time spent there from the ART metric, as the paper does.

namespace sofia {

/// Abstract streaming tensor factorization/completion method.
class StreamingMethod {
 public:
  virtual ~StreamingMethod() = default;

  /// Display name used in result tables.
  virtual std::string name() const = 0;

  /// Number of start-up slices consumed by Initialize() (0 = none).
  virtual size_t init_window() const { return 0; }

  /// Consumes the first init_window() slices at once; returns completed
  /// estimates for them (same count and shapes). Only called when
  /// init_window() > 0.
  virtual std::vector<DenseTensor> Initialize(
      const std::vector<DenseTensor>& slices, const std::vector<Mask>& masks);

  /// Consumes one subtensor; returns the imputed (completed) estimate.
  virtual DenseTensor Step(const DenseTensor& y, const Mask& omega) = 0;

  /// Step with an externally built coordinate pattern of `omega` (with mode
  /// buckets). Comparison runners build each slice's CooList once and share
  /// it across every method per step; methods on the ObservedSweep core
  /// override this to skip their own build. The default ignores the hint.
  virtual DenseTensor Step(const DenseTensor& y, const Mask& omega,
                           std::shared_ptr<const CooList> pattern) {
    (void)pattern;
    return Step(y, omega);
  }

  /// Consumes one subtensor when the caller does not need the imputed
  /// estimate (the forecasting protocol): methods with a lazy step result
  /// (SOFIA's sparse path) override this to skip materializing the dense
  /// reconstruction. Default delegates to Step().
  virtual void Observe(const DenseTensor& y, const Mask& omega) {
    Step(y, omega);
  }

  /// Whether Forecast() is implemented.
  virtual bool SupportsForecast() const { return false; }

  /// h-step-ahead forecast past the last consumed subtensor (h >= 1).
  virtual DenseTensor Forecast(size_t h) const;
};

}  // namespace sofia

#endif  // SOFIA_EVAL_STREAMING_METHOD_H_
