#ifndef SOFIA_EVAL_STREAM_PIPELINE_H_
#define SOFIA_EVAL_STREAM_PIPELINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "data/corruption.hpp"
#include "eval/stream_runner.hpp"
#include "eval/streaming_method.hpp"
#include "tensor/coo_list.hpp"
#include "tensor/sparse_mask.hpp"
#include "util/shard_executor.hpp"

/// \file stream_pipeline.hpp
/// \brief The sharded, pipelined streaming runtime behind the comparison
/// protocol.
///
/// RunImputationComparison's loop interleaves three kinds of work per
/// slice: *ingest* (mask compare, shared CooList/CSF pattern build,
/// held-out eval-pattern sampling, truth gathers), *compute* (every
/// method's StepLazy), and *scoring* (estimate gathers + NRE). The
/// StreamPipeline splits them across a persistent ShardExecutor:
///
///  - Compute and scoring gathers run on the executor's sharded lane.
///    Every kernel task is keyed to a CSF root slab, and the executor's
///    static partition hands worker w the same contiguous slab range on
///    every call — slab ownership is stable across the whole stream, so a
///    worker's private-cache working set stays warm step after step.
///  - Ingest runs in batches of `window` slices. At pipeline_depth >= 2 the
///    batches execute on the executor's aux lane up to depth-1 windows
///    ahead of compute: slice t+1's pattern/CSF-delta build overlaps slice
///    t's solves. Ingest batches are FIFO on one thread, so the sequential
///    mask-cache and CSF-delta-chain dependencies hold unchanged.
///  - Kernel reduction scratch comes from the executor's slot-keyed arena;
///    after warm-up a steady-state step allocates nothing
///    (PipelineTelemetry::arena_growth_steady pins zero).
///
/// Scores are bitwise identical across every (workers, pipeline_depth,
/// window) combination, and identical to the pre-pipeline sequential
/// runner: kernel tasks write disjoint state and slab partials combine in
/// slab order, so only wall-clock shape moves (pinned by
/// tests/stream_pipeline_test.cc).

namespace sofia {

/// Persistent sharded runtime for one stream + truth pair. Owns the
/// ShardExecutor, the ingest ring, and the shared pattern cache; Run()
/// drives a set of methods through the stream under the options' knobs.
/// Reusable: consecutive Run() calls share the executor (and its warm
/// arena), which is how windowed re-runs and mid-stream drains are tested.
class StreamPipeline {
 public:
  StreamPipeline(const CorruptedStream& stream,
                 const std::vector<DenseTensor>& truth,
                 StreamEvalOptions options = {});
  /// Drains in-flight ingest work before tearing down the ring.
  ~StreamPipeline();

  StreamPipeline(const StreamPipeline&) = delete;
  StreamPipeline& operator=(const StreamPipeline&) = delete;

  /// Drive `methods` through slices [0, limit) — limit 0 means the whole
  /// stream. A limit that stops mid-stream still returns cleanly: prefetched
  /// ingest jobs beyond the limit are drained, never leaked. Each call
  /// resets the pattern cache and telemetry (methods keep their own state;
  /// initialize/step semantics match RunImputationComparison exactly).
  std::vector<MethodRunResult> Run(
      const std::vector<StreamingMethod*>& methods, size_t limit = 0);

  /// The shared runtime, e.g. for arena/ownership inspection in tests.
  ShardExecutor* executor() { return executor_.get(); }
  const PipelineTelemetry& telemetry() const { return telemetry_; }

 private:
  /// Everything compute needs about one ingested slice.
  struct SliceIngest {
    std::shared_ptr<const CooList> pattern;
    std::shared_ptr<const CooList> eval_pattern;
    std::vector<double> truth_observed;
    std::vector<double> truth_missing;
  };

  /// Ingest one batch of slices into its ring slot. Runs inline at depth 1,
  /// as an aux-lane job otherwise (FIFO — the mask cache and CSF delta
  /// chain advance strictly in stream order either way).
  void IngestWindow(size_t w, size_t limit);
  void SubmitIngest(size_t w, size_t limit);
  size_t NumWindows(size_t limit) const;

  const CorruptedStream& stream_;
  const std::vector<DenseTensor>& truth_;
  StreamEvalOptions options_;
  PipelineTelemetry telemetry_;

  // Ingest ring: pipeline_depth window slots, each `window` slices.
  std::vector<std::vector<SliceIngest>> ring_;
  std::vector<uint64_t> tickets_;

  // Shared pattern cache, advanced only by ingest (one thread at a time:
  // the aux thread at depth >= 2, the driver at depth 1; Wait() barriers
  // order every hand-off).
  SparseMask cache_mask_;
  std::shared_ptr<const CooList> cache_pattern_;
  std::shared_ptr<const CooList> cache_eval_;
  size_t pattern_builds_ = 0;
  size_t pattern_reuses_ = 0;
  std::vector<size_t> pattern_delta_sizes_;

  // Declared last: destroyed first, draining aux jobs that reference the
  // ring and cache members above.
  std::unique_ptr<ShardExecutor> executor_;
};

/// One-shot wrapper: construct a StreamPipeline and Run the methods through
/// the whole stream. RunImputationComparison delegates here.
std::vector<MethodRunResult> RunStreamPipeline(
    const std::vector<StreamingMethod*>& methods,
    const CorruptedStream& stream, const std::vector<DenseTensor>& truth,
    const StreamEvalOptions& options = {});

}  // namespace sofia

#endif  // SOFIA_EVAL_STREAM_PIPELINE_H_
