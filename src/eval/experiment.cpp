#include "eval/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace sofia {

double ObservedRms(const CorruptedStream& stream) {
  double sum = 0.0;
  size_t count = 0;
  for (size_t t = 0; t < stream.slices.size(); ++t) {
    const DenseTensor& slice = stream.slices[t];
    const Mask& mask = stream.masks[t];
    for (size_t k = 0; k < slice.NumElements(); ++k) {
      if (mask.Get(k)) {
        sum += slice[k] * slice[k];
        ++count;
      }
    }
  }
  return count > 0 ? std::sqrt(sum / static_cast<double>(count)) : 0.0;
}

double ObservedAbsQuantile(const CorruptedStream& stream, double q) {
  std::vector<double> values;
  for (size_t t = 0; t < stream.slices.size(); ++t) {
    const DenseTensor& slice = stream.slices[t];
    const Mask& mask = stream.masks[t];
    for (size_t k = 0; k < slice.NumElements(); ++k) {
      if (mask.Get(k)) values.push_back(std::fabs(slice[k]));
    }
  }
  if (values.empty()) return 0.0;
  const size_t pos = std::min(
      values.size() - 1,
      static_cast<size_t>(q * static_cast<double>(values.size())));
  auto it = values.begin() + static_cast<long>(pos);
  std::nth_element(values.begin(), it, values.end());
  return *it;
}

SofiaConfig MakeExperimentConfig(const Dataset& dataset,
                                 const CorruptedStream& stream) {
  SofiaConfig config;
  config.rank = dataset.rank;
  config.period = dataset.period;
  config.lambda1 = 0.5;
  config.lambda2 = 0.5;
  config.lambda3 = 3.0 * ObservedAbsQuantile(stream, 0.75);
  if (config.lambda3 <= 0.0) config.lambda3 = 10.0;
  config.max_init_iterations = 25;
  return config;
}

}  // namespace sofia
