#ifndef SOFIA_EVAL_STEP_RESULT_H_
#define SOFIA_EVAL_STEP_RESULT_H_

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "linalg/matrix.hpp"
#include "tensor/coo_list.hpp"
#include "tensor/dense_tensor.hpp"
#include "tensor/mask.hpp"
#include "util/parallel.hpp"

/// \file step_result.hpp
/// \brief Pipeline-wide lazy per-step estimate handle.
///
/// Every streaming method's per-step estimate is a *structured* object — a
/// Kruskal slice [[{U^(n)}; w]], a linear map A w (SMF), or the masked input
/// itself (CPHW) — whose dense materialization costs O(volume R) while the
/// eval protocols only ever read a few observed/held-out entries. StepResult
/// carries the structure instead of the materialized tensor: the gather
/// accessors evaluate the estimate only where it is read (O(|pattern| N R)
/// via the observed-entry kernels), and the dense tensor is materialized at
/// most once, on the first imputed() call. A process-wide materialization
/// counter lets the protocols *prove* they stayed on the lazy path (see
/// tests/step_result_test.cc).
///
/// The gather accessors replicate the dense materialization's arithmetic
/// bitwise (CooKruskalSliceGather mirrors KruskalSlice's Khatri-Rao chain
/// order; the linear-map and masked kinds share their loops with the dense
/// writers), so scoring from gathers and scoring from a materialized tensor
/// produce identical bits — the lazy ≡ forced-dense parity the eval
/// protocols assert.

namespace sofia {

/// Lazy handle to one step's (or forecast's) dense estimate.
class StepResult {
 public:
  /// Empty handle (no estimate — e.g. an Observe-style advance).
  StepResult() = default;

  /// Kruskal view [[{factors}; temporal_row]] — SOFIA and every CP baseline.
  static StepResult Kruskal(std::vector<Matrix> factors,
                            std::vector<double> temporal_row);

  /// Linear-map view vec(X̂) = loadings · weights over `shape` — SMF's
  /// matrix-stream estimate (one loading row per linear entry index). The
  /// loading matrix is shared, not copied: producers whose loadings mutate
  /// in place snapshot copy-on-write (clone only while a handle is alive),
  /// so the steady-state step never pays the O(volume R) matrix copy.
  static StepResult LinearMap(std::shared_ptr<const Matrix> loadings,
                              std::vector<double> weights, Shape shape);

  /// Masked-data view Ω ⊛ Y — CPHW's "estimate" is the observed data
  /// itself. Shares `y` (no copy); zero at unobserved entries.
  static StepResult Masked(std::shared_ptr<const DenseTensor> y, Mask omega);

  /// Pre-materialized estimate (compatibility fallback: methods that have
  /// not adopted the lazy pipeline, or a forced-dense eval path). Reading
  /// imputed() on a Dense result does not count as a materialization.
  static StepResult Dense(DenseTensor value);

  /// Whether this handle carries an estimate at all.
  bool valid() const { return kind_ != Kind::kEmpty; }
  /// Shape of the estimated slice.
  const Shape& shape() const { return shape_; }

  /// The dense estimate, materialized and cached on first call. Counts
  /// toward materializations() unless the result was constructed Dense.
  const DenseTensor& imputed() const;
  /// imputed() moved out of the handle (avoids the copy in the thin
  /// Step-compatibility wrappers). The handle is empty afterwards.
  DenseTensor ReleaseImputed();
  /// Whether the dense tensor exists (Dense kind, or imputed() was called).
  bool materialized() const { return dense_.has_value(); }

  /// Estimate at one multi-index (lazy spot read; may differ from the
  /// materialized entry in the last bit — the chain evaluation order of the
  /// bulk kernels is not the per-entry order).
  double at(const std::vector<size_t>& indices) const;

  /// Estimate at every record of `pattern`, record-aligned — the bulk read
  /// the eval protocols score from. Bitwise identical to gathering from
  /// imputed(). An optional pool threads the Kruskal gathers.
  std::vector<double> GatherAt(const CooList& pattern,
                               WorkerPool* pool = nullptr) const;
  /// GatherAt into a caller-owned buffer (resized) — scratch reuse across
  /// steps for the protocol loops.
  void GatherAtInto(const CooList& pattern, std::vector<double>* out,
                    WorkerPool* pool = nullptr) const;
  /// Convenience overload for the shared per-step pattern handed around by
  /// the comparison runner.
  std::vector<double> GatherObserved(
      const std::shared_ptr<const CooList>& pattern,
      WorkerPool* pool = nullptr) const;

  /// Largest |entry| across the handle's low-dimensional structure: the
  /// factor matrices and combination weights of a Kruskal view, or the
  /// weights of a linear-map view (its loadings are volume-sized and are
  /// not scanned). 0 for masked/dense/empty handles — those carry data, not
  /// learned parameters. StreamGuard's divergence watch reads this as an
  /// O(sum I_n R) health probe without touching the dense estimate.
  double MaxAbsComponent() const;

  /// Process-wide count of dense materializations triggered by imputed() on
  /// lazy (non-Dense) results. The lazy eval protocols assert this stays
  /// flat across a run.
  static size_t materializations();
  static void ResetMaterializations();

 private:
  enum class Kind { kEmpty, kKruskal, kLinearMap, kMasked, kDense };

  Kind kind_ = Kind::kEmpty;
  Shape shape_;
  // Kruskal view.
  std::vector<Matrix> factors_;
  std::vector<double> row_;
  // Linear-map view (factors_ unused; row_ holds the weights).
  std::shared_ptr<const Matrix> loadings_;
  // Masked view.
  std::shared_ptr<const DenseTensor> data_;
  Mask omega_;
  // Materialization cache (eager for Kind::kDense).
  mutable std::optional<DenseTensor> dense_;
};

}  // namespace sofia

#endif  // SOFIA_EVAL_STEP_RESULT_H_
