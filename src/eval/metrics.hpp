#ifndef SOFIA_EVAL_METRICS_H_
#define SOFIA_EVAL_METRICS_H_

#include <vector>

#include "tensor/dense_tensor.hpp"

/// \file metrics.hpp
/// \brief Evaluation metrics of Section VI-A.

namespace sofia {

/// Normalized residual error ||X̂ - X||_F / ||X||_F.
double NormalizedResidualError(const DenseTensor& estimate,
                               const DenseTensor& truth);

class Mask;

/// NRE restricted to the entries where `scope` is *unset* — the imputation
/// error measured only over the values the method never observed. The
/// denominator is the truth's norm over the same entries.
double MissingOnlyResidualError(const DenseTensor& estimate,
                                const DenseTensor& truth, const Mask& scope);

/// Running average error: mean of per-step NREs.
double RunningAverageError(const std::vector<double>& nre);

/// Squared-error accumulator over a gathered (record-aligned) entry set —
/// the scoring primitive of the lazy eval protocols, which read estimates
/// only at observed / held-out entries via CooList gathers instead of
/// densifying them.
struct GatheredError {
  double err_sq = 0.0;    ///< Σ (estimate - reference)².
  double ref_sq = 0.0;    ///< Σ reference².
  size_t count = 0;       ///< Entries accumulated.

  /// Merge another accumulator (e.g. observed + held-out partitions).
  GatheredError& operator+=(const GatheredError& other) {
    err_sq += other.err_sq;
    ref_sq += other.ref_sq;
    count += other.count;
    return *this;
  }
};

/// Accumulate estimate-vs-reference squared errors over aligned gathers.
GatheredError AccumulateGatheredError(const std::vector<double>& estimate,
                                      const std::vector<double>& reference);

/// NRE of an accumulator: sqrt(err_sq / ref_sq), with the same degenerate
/// conventions as the dense metrics (empty set → 0; zero reference norm →
/// 0 if the error is 0, else 1).
double GatheredNre(const GatheredError& error);

/// Average forecasting error: mean NRE of h-step-ahead forecasts.
double AverageForecastingError(const std::vector<DenseTensor>& forecasts,
                               const std::vector<DenseTensor>& truth);

/// Mean of a vector (0 for empty input); shared by ART computations.
double Mean(const std::vector<double>& values);

/// Precision/recall of an outlier detector against injected ground truth.
struct DetectionScore {
  size_t true_positives = 0;
  size_t false_positives = 0;
  size_t false_negatives = 0;
  double Precision() const;
  double Recall() const;
  double F1() const;
};

/// Scores a detected-outlier tensor against the injected positions: an
/// observed entry counts as flagged when |detected| > threshold. Entries
/// outside `observed` are skipped (nothing to detect there).
DetectionScore ScoreOutlierDetection(const DenseTensor& detected,
                                     const Mask& injected,
                                     const Mask& observed, double threshold);

/// Accumulates `rhs` into `lhs` (streaming aggregation across steps).
void Accumulate(DetectionScore* lhs, const DetectionScore& rhs);

}  // namespace sofia

#endif  // SOFIA_EVAL_METRICS_H_
