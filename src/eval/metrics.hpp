#ifndef SOFIA_EVAL_METRICS_H_
#define SOFIA_EVAL_METRICS_H_

#include <vector>

#include "tensor/dense_tensor.hpp"

/// \file metrics.hpp
/// \brief Evaluation metrics of Section VI-A.

namespace sofia {

/// Normalized residual error ||X̂ - X||_F / ||X||_F.
double NormalizedResidualError(const DenseTensor& estimate,
                               const DenseTensor& truth);

class Mask;

/// NRE restricted to the entries where `scope` is *unset* — the imputation
/// error measured only over the values the method never observed. The
/// denominator is the truth's norm over the same entries.
double MissingOnlyResidualError(const DenseTensor& estimate,
                                const DenseTensor& truth, const Mask& scope);

/// Running average error: mean of per-step NREs.
double RunningAverageError(const std::vector<double>& nre);

/// Average forecasting error: mean NRE of h-step-ahead forecasts.
double AverageForecastingError(const std::vector<DenseTensor>& forecasts,
                               const std::vector<DenseTensor>& truth);

/// Mean of a vector (0 for empty input); shared by ART computations.
double Mean(const std::vector<double>& values);

/// Precision/recall of an outlier detector against injected ground truth.
struct DetectionScore {
  size_t true_positives = 0;
  size_t false_positives = 0;
  size_t false_negatives = 0;
  double Precision() const;
  double Recall() const;
  double F1() const;
};

/// Scores a detected-outlier tensor against the injected positions: an
/// observed entry counts as flagged when |detected| > threshold. Entries
/// outside `observed` are skipped (nothing to detect there).
DetectionScore ScoreOutlierDetection(const DenseTensor& detected,
                                     const Mask& injected,
                                     const Mask& observed, double threshold);

/// Accumulates `rhs` into `lhs` (streaming aggregation across steps).
void Accumulate(DetectionScore* lhs, const DetectionScore& rhs);

}  // namespace sofia

#endif  // SOFIA_EVAL_METRICS_H_
