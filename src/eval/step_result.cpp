#include "eval/step_result.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <utility>

#include "obs/obs.hpp"
#include "tensor/kruskal.hpp"
#include "tensor/sparse_kernels.hpp"
#include "util/check.hpp"

namespace sofia {

namespace {

/// Dense materializations triggered on lazy results since the last reset.
/// Atomic: workflow runners may drive several streams from worker threads.
std::atomic<size_t> g_materializations{0};

Shape KruskalShape(const std::vector<Matrix>& factors) {
  SOFIA_CHECK(!factors.empty());
  std::vector<size_t> dims(factors.size());
  for (size_t n = 0; n < factors.size(); ++n) dims[n] = factors[n].rows();
  return Shape(dims);
}

}  // namespace

StepResult StepResult::Kruskal(std::vector<Matrix> factors,
                               std::vector<double> temporal_row) {
  SOFIA_CHECK(!factors.empty());
  SOFIA_CHECK_EQ(factors[0].cols(), temporal_row.size());
  StepResult r;
  r.kind_ = Kind::kKruskal;
  r.shape_ = KruskalShape(factors);
  r.factors_ = std::move(factors);
  r.row_ = std::move(temporal_row);
  return r;
}

StepResult StepResult::LinearMap(std::shared_ptr<const Matrix> loadings,
                                 std::vector<double> weights, Shape shape) {
  SOFIA_CHECK(loadings != nullptr);
  SOFIA_CHECK_EQ(loadings->rows(), shape.NumElements());
  SOFIA_CHECK_EQ(loadings->cols(), weights.size());
  StepResult r;
  r.kind_ = Kind::kLinearMap;
  r.shape_ = std::move(shape);
  r.loadings_ = std::move(loadings);
  r.row_ = std::move(weights);
  return r;
}

StepResult StepResult::Masked(std::shared_ptr<const DenseTensor> y,
                              Mask omega) {
  SOFIA_CHECK(y != nullptr);
  SOFIA_CHECK(y->shape() == omega.shape());
  StepResult r;
  r.kind_ = Kind::kMasked;
  r.shape_ = y->shape();
  r.data_ = std::move(y);
  r.omega_ = std::move(omega);
  return r;
}

StepResult StepResult::Dense(DenseTensor value) {
  StepResult r;
  r.kind_ = Kind::kDense;
  r.shape_ = value.shape();
  r.dense_ = std::move(value);
  return r;
}

const DenseTensor& StepResult::imputed() const {
  SOFIA_CHECK(valid()) << "StepResult carries no estimate";
  if (!dense_) {
    g_materializations.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter* materializations =
        obs::Registry::Global().FindOrCreateCounter("eval.materializations");
    materializations->Add(1);
    switch (kind_) {
      case Kind::kKruskal:
        dense_ = KruskalSlice(factors_, row_);
        break;
      case Kind::kLinearMap: {
        DenseTensor out(shape_);
        const size_t rank = row_.size();
        for (size_t k = 0; k < out.NumElements(); ++k) {
          const double* arow = loadings_->Row(k);
          double v = 0.0;
          for (size_t r = 0; r < rank; ++r) v += arow[r] * row_[r];
          out[k] = v;
        }
        dense_ = std::move(out);
        break;
      }
      case Kind::kMasked:
        dense_ = omega_.Apply(*data_);
        break;
      default:
        SOFIA_CHECK(false) << "unreachable";
    }
  }
  return *dense_;
}

DenseTensor StepResult::ReleaseImputed() {
  imputed();
  DenseTensor out = std::move(*dense_);
  *this = StepResult();
  return out;
}

double StepResult::at(const std::vector<size_t>& indices) const {
  SOFIA_CHECK(valid()) << "StepResult carries no estimate";
  if (dense_) return (*dense_)[shape_.Linearize(indices)];
  switch (kind_) {
    case Kind::kKruskal:
      return KruskalSliceEntry(factors_, row_, indices);
    case Kind::kLinearMap: {
      const double* arow = loadings_->Row(shape_.Linearize(indices));
      double v = 0.0;
      for (size_t r = 0; r < row_.size(); ++r) v += arow[r] * row_[r];
      return v;
    }
    case Kind::kMasked: {
      const size_t lin = shape_.Linearize(indices);
      return omega_.Get(lin) ? (*data_)[lin] : 0.0;
    }
    default:
      SOFIA_CHECK(false) << "unreachable";
      return 0.0;
  }
}

void StepResult::GatherAtInto(const CooList& pattern,
                              std::vector<double>* out,
                              WorkerPool* pool) const {
  SOFIA_CHECK(valid()) << "StepResult carries no estimate";
  SOFIA_CHECK(pattern.shape() == shape_);
  if (dense_) {
    pattern.GatherInto(*dense_, out);
    return;
  }
  switch (kind_) {
    case Kind::kKruskal:
      // Replicates KruskalSlice's chain evaluation order bitwise, so lazy
      // gathers match reads from the materialized tensor exactly.
      CooKruskalSliceGather(pattern, factors_, row_, out, 1, pool);
      break;
    case Kind::kLinearMap: {
      const size_t rank = row_.size();
      out->resize(pattern.nnz());
      for (size_t k = 0; k < pattern.nnz(); ++k) {
        const double* arow = loadings_->Row(pattern.LinearIndex(k));
        double v = 0.0;
        for (size_t r = 0; r < rank; ++r) v += arow[r] * row_[r];
        (*out)[k] = v;
      }
      break;
    }
    case Kind::kMasked: {
      out->resize(pattern.nnz());
      for (size_t k = 0; k < pattern.nnz(); ++k) {
        const size_t lin = pattern.LinearIndex(k);
        (*out)[k] = omega_.Get(lin) ? (*data_)[lin] : 0.0;
      }
      break;
    }
    default:
      SOFIA_CHECK(false) << "unreachable";
  }
}

std::vector<double> StepResult::GatherAt(const CooList& pattern,
                                         WorkerPool* pool) const {
  std::vector<double> out;
  GatherAtInto(pattern, &out, pool);
  return out;
}

std::vector<double> StepResult::GatherObserved(
    const std::shared_ptr<const CooList>& pattern, WorkerPool* pool) const {
  SOFIA_CHECK(pattern != nullptr);
  return GatherAt(*pattern, pool);
}

double StepResult::MaxAbsComponent() const {
  // NaN-propagating max: once a NaN is seen the result stays NaN, so a
  // poisoned factor can never be masked by a later finite entry.
  double max_abs = 0.0;
  const auto acc = [&max_abs](double v) {
    const double a = std::fabs(v);
    if (a > max_abs || std::isnan(a)) max_abs = a;
  };
  switch (kind_) {
    case Kind::kKruskal:
      for (const Matrix& f : factors_) {
        for (size_t k = 0; k < f.size(); ++k) acc(f.data()[k]);
      }
      for (double v : row_) acc(v);
      break;
    case Kind::kLinearMap:
      for (double v : row_) acc(v);
      break;
    case Kind::kMasked:
    case Kind::kDense:
    case Kind::kEmpty:
      break;  // Data-carrying or empty handles: no learned parameters.
  }
  return max_abs;
}

size_t StepResult::materializations() {
  return g_materializations.load(std::memory_order_relaxed);
}

void StepResult::ResetMaterializations() {
  g_materializations.store(0, std::memory_order_relaxed);
}

}  // namespace sofia
