#include "eval/metrics.hpp"

#include <cmath>

#include "tensor/mask.hpp"
#include "util/check.hpp"

namespace sofia {

double NormalizedResidualError(const DenseTensor& estimate,
                               const DenseTensor& truth) {
  SOFIA_CHECK(estimate.shape() == truth.shape());
  DenseTensor diff = estimate;
  diff -= truth;
  const double denom = truth.FrobeniusNorm();
  if (denom == 0.0) return diff.FrobeniusNorm() == 0.0 ? 0.0 : 1.0;
  return diff.FrobeniusNorm() / denom;
}

double MissingOnlyResidualError(const DenseTensor& estimate,
                                const DenseTensor& truth, const Mask& scope) {
  SOFIA_CHECK(estimate.shape() == truth.shape());
  SOFIA_CHECK(estimate.shape() == scope.shape());
  double err2 = 0.0, truth2 = 0.0;
  bool any = false;
  for (size_t k = 0; k < truth.NumElements(); ++k) {
    if (scope.Get(k)) continue;  // Observed: not an imputation target.
    any = true;
    const double d = estimate[k] - truth[k];
    err2 += d * d;
    truth2 += truth[k] * truth[k];
  }
  if (!any) return 0.0;
  if (truth2 == 0.0) return err2 == 0.0 ? 0.0 : 1.0;
  return std::sqrt(err2 / truth2);
}

double RunningAverageError(const std::vector<double>& nre) {
  return Mean(nre);
}

GatheredError AccumulateGatheredError(const std::vector<double>& estimate,
                                      const std::vector<double>& reference) {
  SOFIA_CHECK_EQ(estimate.size(), reference.size());
  GatheredError e;
  for (size_t k = 0; k < estimate.size(); ++k) {
    const double d = estimate[k] - reference[k];
    e.err_sq += d * d;
    e.ref_sq += reference[k] * reference[k];
  }
  e.count = estimate.size();
  return e;
}

double GatheredNre(const GatheredError& error) {
  if (error.count == 0) return 0.0;
  if (error.ref_sq == 0.0) return error.err_sq == 0.0 ? 0.0 : 1.0;
  return std::sqrt(error.err_sq / error.ref_sq);
}

double AverageForecastingError(const std::vector<DenseTensor>& forecasts,
                               const std::vector<DenseTensor>& truth) {
  SOFIA_CHECK_EQ(forecasts.size(), truth.size());
  SOFIA_CHECK(!forecasts.empty());
  double sum = 0.0;
  for (size_t h = 0; h < forecasts.size(); ++h) {
    sum += NormalizedResidualError(forecasts[h], truth[h]);
  }
  return sum / static_cast<double>(forecasts.size());
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double s = 0.0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

double DetectionScore::Precision() const {
  const size_t flagged = true_positives + false_positives;
  return flagged > 0 ? static_cast<double>(true_positives) /
                           static_cast<double>(flagged)
                     : 0.0;
}

double DetectionScore::Recall() const {
  const size_t actual = true_positives + false_negatives;
  return actual > 0 ? static_cast<double>(true_positives) /
                          static_cast<double>(actual)
                    : 0.0;
}

double DetectionScore::F1() const {
  const double p = Precision();
  const double r = Recall();
  return p + r > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
}

DetectionScore ScoreOutlierDetection(const DenseTensor& detected,
                                     const Mask& injected,
                                     const Mask& observed, double threshold) {
  SOFIA_CHECK(detected.shape() == injected.shape());
  SOFIA_CHECK(detected.shape() == observed.shape());
  DetectionScore score;
  for (size_t k = 0; k < detected.NumElements(); ++k) {
    if (!observed.Get(k)) continue;
    const bool flagged = std::fabs(detected[k]) > threshold;
    const bool actual = injected.Get(k);
    if (flagged && actual) ++score.true_positives;
    if (flagged && !actual) ++score.false_positives;
    if (!flagged && actual) ++score.false_negatives;
  }
  return score;
}

void Accumulate(DetectionScore* lhs, const DetectionScore& rhs) {
  lhs->true_positives += rhs.true_positives;
  lhs->false_positives += rhs.false_positives;
  lhs->false_negatives += rhs.false_negatives;
}

}  // namespace sofia
