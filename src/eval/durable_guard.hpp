#ifndef SOFIA_EVAL_DURABLE_GUARD_H_
#define SOFIA_EVAL_DURABLE_GUARD_H_

#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "data/slice_format.hpp"
#include "eval/streaming_method.hpp"
#include "util/durable_io.hpp"
#include "util/shard_executor.hpp"

/// \file durable_guard.hpp
/// \brief Crash-consistent persistence wrapper for streaming methods.
///
/// StreamGuard (eval/stream_guard.hpp) keeps a method healthy *within* a
/// process; DurableGuard keeps it alive *across* processes. It wraps any
/// StreamingMethod (typically an already-guarded one) with the classic
/// WAL + snapshot protocol:
///
///  1. **Write-ahead slice journal.** Every ingested slice is appended to
///     the current journal segment (`wal-<seq>.slices`, data/slice_format)
///     before the inner method consumes it. With an adopted ShardExecutor
///     the append bytes are encoded on the ingest thread and written on the
///     executor's aux lane, off the step path.
///  2. **Atomic snapshots.** Every `snapshot_every` accepted steps (and
///     once right after Initialize) the inner state is serialized and
///     written through durable::SnapshotStore — write-temp/fsync/rename,
///     rotated generations. Each snapshot `seq` then opens a fresh journal
///     segment `wal-<seq>`, so a segment always holds exactly the steps
///     after the snapshot it is named for.
///  3. **Recovery = newest valid snapshot + journal tail.** Recover() walks
///     snapshot generations newest-first, skipping corrupt frames AND
///     frames whose payload fails RestoreState (state_io::StateError), then
///     replays journal records in step order, stopping at the first torn
///     record or step gap. Because the journal stores the canonical decoded
///     slice (observed entries only, zero elsewhere) and the live path
///     feeds the inner method that same decoded form, a recovered run is
///     bitwise identical to one that never crashed. Recovery ends by
///     writing a *fresh* snapshot + segment — it never appends to a torn
///     file — which makes a crash during recovery itself re-recoverable.
///
/// Fault semantics: a SimulatedCrash (util/fault_injection) raised by an
/// aux-lane write is captured and rethrown on the ingest thread at the next
/// step — the process "dies" where main() would have seen it. Real IO
/// errors degrade: the journal stops (journal_lost in telemetry) but the
/// stream continues, and the next snapshot re-establishes durability.

namespace sofia {

struct DurableGuardOptions {
  std::string state_dir;       ///< Directory for snapshots + journal.
  size_t snapshot_every = 16;  ///< Steps between snapshots (0 = only init).
  size_t generations = 3;      ///< Snapshot generations retained.
  /// Write-ahead journal every slice. Off = snapshots only: recovery then
  /// loses the (up to snapshot_every - 1) steps after the last snapshot.
  bool journal = true;
  bool sync_each_append = false;  ///< fsync the journal after every record.
  durable::RetryPolicy retry;  ///< Transient-error policy for snapshots.
};

/// Counters of one durable run.
struct DurableTelemetry {
  uint64_t steps = 0;              ///< Slices ingested through the guard.
  uint64_t journal_appends = 0;    ///< Records shipped to the journal.
  uint64_t journal_bytes = 0;      ///< Encoded bytes shipped.
  uint64_t journal_failures = 0;   ///< Appends lost to IO errors.
  uint64_t snapshots_written = 0;  ///< Snapshot generations that landed.
  uint64_t snapshot_failures = 0;  ///< Snapshot writes that exhausted retry.
  uint64_t async_appends = 0;      ///< Appends performed on the aux lane.
};

/// What Recover() found and did.
struct RecoveryReport {
  bool restored = false;        ///< A snapshot was loaded into the method.
  uint64_t snapshot_seq = 0;    ///< Generation restored from.
  uint64_t snapshot_step = 0;   ///< Stream step the snapshot captured.
  uint64_t resume_step = 0;     ///< First step the driver must feed next.
  size_t replayed_records = 0;  ///< Journal records re-consumed.
  size_t skipped_generations = 0;  ///< Corrupt/unreadable snapshots passed.
  bool journal_truncated = false;  ///< A torn/invalid tail was dropped.
};

class DurableGuard : public StreamingMethod {
 public:
  DurableGuard(std::unique_ptr<StreamingMethod> inner,
               DurableGuardOptions options);
  /// Drains in-flight aux IO (swallowing a pending simulated crash — the
  /// "process" is gone either way) and closes the journal.
  ~DurableGuard() override;

  std::string name() const override { return inner_->name() + "+durable"; }
  size_t init_window() const override { return inner_->init_window(); }

  /// Forwards to the inner method, then takes the initial snapshot (seq 0)
  /// and opens the first journal segment.
  std::vector<DenseTensor> Initialize(
      const std::vector<DenseTensor>& slices,
      const std::vector<Mask>& masks) override;

  /// Journal-then-step: appends the canonical decoded slice to the WAL,
  /// feeds the same decoded slice to the inner method, and snapshots on
  /// cadence. Rethrows a pending aux-lane SimulatedCrash first.
  StepResult StepLazy(const DenseTensor& y, const Mask& omega,
                      std::shared_ptr<const CooList> pattern =
                          nullptr) override;
  void Observe(const DenseTensor& y, const Mask& omega) override;

  bool SupportsForecast() const override {
    return inner_->SupportsForecast();
  }
  StepResult ForecastLazy(size_t h) const override {
    return inner_->ForecastLazy(h);
  }
  bool SupportsStateCheckpoint() const override {
    return inner_->SupportsStateCheckpoint();
  }
  void SaveState(std::ostream& out) const override;
  void RestoreState(std::istream& in) override;

  /// Forwards the pool inner-ward and, when it is a ShardExecutor, moves
  /// journal/snapshot writes onto its aux lane.
  void AdoptWorkerPool(std::shared_ptr<WorkerPool> pool) override;

  /// Restores from disk: newest usable snapshot + journal replay (see file
  /// comment). Must run on a freshly constructed guard (same inner
  /// configuration) before any Initialize/Step. After Recover() the driver
  /// resumes feeding slices from report.resume_step. When nothing usable
  /// is on disk, returns restored=false and the caller runs from scratch.
  RecoveryReport Recover();

  /// Lands all pending aux IO and fsyncs the journal (a consistency point
  /// the kill-matrix uses before ripping the "power" out).
  void Drain();

  const DurableTelemetry& telemetry() const { return telemetry_; }
  const StreamingMethod& inner() const { return *inner_; }
  const DurableGuardOptions& options() const { return options_; }
  /// Path of journal segment `seq` (test introspection).
  std::string SegmentPath(uint64_t seq) const;

 private:
  /// Rethrows a SimulatedCrash captured on the aux lane, on this thread.
  void RethrowPendingCrash();
  /// Waits for the in-flight aux job (if any); captures its crash.
  void SyncAux();
  /// Runs `job` on the aux lane when an executor is adopted, else inline.
  /// Aux exceptions are captured into pending_crash_.
  void SubmitIo(std::function<void()> job);
  /// Serializes inner state (+ step counter) and writes snapshot `seq`,
  /// then rotates the journal to segment `seq`. Serialization is
  /// synchronous (the state must be captured before the next mutation);
  /// the disk write rides the aux lane.
  void TakeSnapshot();
  /// Opens journal segment `seq`, closing the previous one. Aux-lane side.
  void RotateJournalLocked(uint64_t seq);
  /// Deletes journal segments older than the retained snapshot window.
  void PruneSegmentsLocked();
  /// Flags the current segment dead and counts the loss (either thread).
  void MarkJournalLost();
  /// Journal segments on disk, ascending seq.
  std::vector<uint64_t> ListSegments() const;
  /// Shared step path of StepLazy/Observe up to the inner call.
  void JournalSlice(const DenseTensor& decoded, const Mask& omega);

  std::unique_ptr<StreamingMethod> inner_;
  DurableGuardOptions options_;
  DurableTelemetry telemetry_;
  durable::SnapshotStore snapshots_;
  slicefmt::SliceFileWriter journal_;  ///< Touched only via SubmitIo jobs.
  /// Guards journal_lost_ and the telemetry counters aux jobs increment
  /// (journal_failures, snapshots_written, snapshot_failures) — the ingest
  /// thread reads/writes them between aux sync points.
  std::mutex io_mutex_;
  bool journal_lost_ = false;  ///< IO error stopped the current segment.

  Shape slice_shape_;       ///< Locked in by Initialize/first slice.
  uint64_t step_ = 0;       ///< Stream steps consumed (init window excluded).
  uint64_t next_seq_ = 0;   ///< Next snapshot generation number.
  size_t steps_since_snapshot_ = 0;

  std::shared_ptr<WorkerPool> adopted_pool_;
  ShardExecutor* executor_ = nullptr;  ///< Non-owning view of adopted_pool_.
  uint64_t pending_ticket_ = 0;        ///< 0 = no aux IO in flight.
  std::mutex crash_mutex_;             ///< Guards pending_crash_.
  std::exception_ptr pending_crash_;   ///< Captured aux-lane crash.

  std::string encode_buf_;  ///< Reused EncodeRecord scratch.
};

}  // namespace sofia

#endif  // SOFIA_EVAL_DURABLE_GUARD_H_
