#include "eval/durable_guard.hpp"

#include <dirent.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/fault_injection.hpp"
#include "util/state_io.hpp"

namespace sofia {

namespace {

/// Registry mirrors of DurabilityTelemetry (the struct stays as the
/// per-run compatibility view).
struct DurableMetrics {
  obs::Counter* steps;
  obs::Counter* journal_appends;
  obs::Counter* journal_bytes;
  obs::Counter* async_appends;
  obs::Counter* journal_failures;
  obs::Counter* snapshots_written;
  obs::Counter* snapshot_failures;
  obs::Counter* snapshot_time_us;
  obs::Histogram* snapshot_us;
};

DurableMetrics& Dm() {
  obs::Registry& r = obs::Registry::Global();
  static DurableMetrics m{
      r.FindOrCreateCounter("durable.steps"),
      r.FindOrCreateCounter("durable.journal_appends"),
      r.FindOrCreateCounter("durable.journal_bytes"),
      r.FindOrCreateCounter("durable.async_appends"),
      r.FindOrCreateCounter("durable.journal_failures"),
      r.FindOrCreateCounter("durable.snapshots_written"),
      r.FindOrCreateCounter("durable.snapshot_failures"),
      r.FindOrCreateCounter("time.durable.snapshot_us"),
      r.FindOrCreateHistogram("durable.snapshot_us"),
  };
  return m;
}

}  // namespace

DurableGuard::DurableGuard(std::unique_ptr<StreamingMethod> inner,
                           DurableGuardOptions options)
    : inner_(std::move(inner)),
      options_(std::move(options)),
      snapshots_(options_.state_dir, "snap",
                 durable::SnapshotOptions{options_.generations, 1,
                                          options_.retry}) {
  SOFIA_CHECK(!options_.state_dir.empty())
      << "DurableGuard needs a state_dir";
  SOFIA_CHECK(inner_->SupportsStateCheckpoint())
      << inner_->name() << " cannot be made durable without checkpoints";
  durable::EnsureDir(options_.state_dir);
}

DurableGuard::~DurableGuard() {
  // Land in-flight aux IO so no job outlives its captured `this`. A crash
  // captured here is dropped on purpose: the "process" is being torn down
  // either way, and a destructor cannot throw.
  if (executor_ != nullptr && pending_ticket_ != 0) {
    executor_->Wait(pending_ticket_);
    pending_ticket_ = 0;
  }
  journal_.Close();
}

std::string DurableGuard::SegmentPath(uint64_t seq) const {
  return options_.state_dir + "/wal-" + std::to_string(seq) + ".slices";
}

void DurableGuard::RethrowPendingCrash() {
  std::exception_ptr crash;
  {
    std::lock_guard<std::mutex> lock(crash_mutex_);
    crash = std::exchange(pending_crash_, nullptr);
  }
  if (crash) std::rethrow_exception(crash);
}

void DurableGuard::SyncAux() {
  if (executor_ != nullptr && pending_ticket_ != 0) {
    executor_->Wait(pending_ticket_);
    pending_ticket_ = 0;
  }
}

void DurableGuard::SubmitIo(std::function<void()> job) {
  if (executor_ == nullptr) {
    // Inline: a SimulatedCrash propagates straight out of the ingest call,
    // exactly where a real synchronous-IO death would surface.
    job();
    return;
  }
  pending_ticket_ = executor_->Submit([this, job = std::move(job)] {
    try {
      job();
    } catch (...) {
      // Includes SimulatedCrash (deliberately not a std::exception).
      // Escaping an executor thread would std::terminate; park it for the
      // ingest thread to rethrow at its next step.
      std::lock_guard<std::mutex> lock(crash_mutex_);
      if (!pending_crash_) pending_crash_ = std::current_exception();
    }
  });
}

void DurableGuard::MarkJournalLost() {
  std::lock_guard<std::mutex> lock(io_mutex_);
  journal_lost_ = true;
  ++telemetry_.journal_failures;
  Dm().journal_failures->Add(1);
}

void DurableGuard::RotateJournalLocked(uint64_t seq) {
  journal_.Close();
  if (!options_.journal) return;  // Snapshot-only mode: no segments.
  if (slice_shape_.order() == 0) return;  // No slice seen yet; no segment.
  const bool lost = !journal_.Create(SegmentPath(seq), slice_shape_, seq);
  if (lost) {
    MarkJournalLost();
  } else {
    std::lock_guard<std::mutex> lock(io_mutex_);
    journal_lost_ = false;
  }
}

std::vector<uint64_t> DurableGuard::ListSegments() const {
  std::vector<uint64_t> out;
  DIR* dir = ::opendir(options_.state_dir.c_str());
  if (dir == nullptr) return out;
  const std::string prefix = "wal-";
  const std::string suffix = ".slices";
  while (struct dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (name.size() <= prefix.size() + suffix.size()) continue;
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
        0) {
      continue;
    }
    const std::string digits = name.substr(
        prefix.size(), name.size() - prefix.size() - suffix.size());
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    out.push_back(std::strtoull(digits.c_str(), nullptr, 10));
  }
  ::closedir(dir);
  std::sort(out.begin(), out.end());
  return out;
}

void DurableGuard::PruneSegmentsLocked() {
  // A segment is needed as long as some retained snapshot might replay
  // through it: keep every segment >= the oldest snapshot generation.
  const std::vector<uint64_t> gens = snapshots_.ListGenerations();
  if (gens.empty()) return;
  for (const uint64_t seq : ListSegments()) {
    if (seq < gens.front()) ::unlink(SegmentPath(seq).c_str());
  }
}

void DurableGuard::TakeSnapshot() {
  // Serialize synchronously — the bytes must capture the state *now*,
  // before the next step mutates it. The disk write rides the aux lane.
  std::ostringstream out;
  out << step_ << '\n';
  inner_->SaveState(out);
  std::string payload = out.str();
  const uint64_t seq = next_seq_++;
  SubmitIo([this, seq, payload = std::move(payload)] {
    // Group-commit point: everything journaled so far becomes durable
    // before the snapshot that supersedes it lands.
    if (journal_.is_open()) journal_.Sync();
    const bool measured = obs::Enabled() || obs::TraceActive();
    const uint64_t start = measured ? obs::NowNs() : 0;
    const durable::IoStatus status = snapshots_.Write(seq, payload);
    if (measured) {
      const uint64_t dur = obs::NowNs() - start;
      Dm().snapshot_time_us->Add(dur / 1000);
      Dm().snapshot_us->Observe(static_cast<double>(dur) / 1e3);
      if (obs::TraceActive()) {
        obs::TraceRecord("durable.snapshot", start, dur, payload.size(),
                         "bytes");
      }
    }
    const bool landed = status == durable::IoStatus::kOk;
    {
      std::lock_guard<std::mutex> lock(io_mutex_);
      if (landed) {
        ++telemetry_.snapshots_written;
        Dm().snapshots_written->Add(1);
      } else {
        ++telemetry_.snapshot_failures;
        Dm().snapshot_failures->Add(1);
      }
    }
    // Fail-soft: older generations remain, and the journal keeps
    // accumulating into the *current* segment so they can still replay.
    if (!landed) return;
    RotateJournalLocked(seq);
    PruneSegmentsLocked();
  });
  steps_since_snapshot_ = 0;
}

void DurableGuard::JournalSlice(const DenseTensor& decoded,
                                const Mask& omega) {
  if (!options_.journal) return;
  {
    std::lock_guard<std::mutex> lock(io_mutex_);
    if (journal_lost_) {
      ++telemetry_.journal_failures;
      Dm().journal_failures->Add(1);
      return;
    }
  }
  slicefmt::EncodeRecord(step_, decoded, omega, &encode_buf_);
  ++telemetry_.journal_appends;
  telemetry_.journal_bytes += encode_buf_.size();
  Dm().journal_appends->Add(1);
  Dm().journal_bytes->Add(encode_buf_.size());
  if (executor_ != nullptr) {
    ++telemetry_.async_appends;
    Dm().async_appends->Add(1);
  }
  const bool sync_each = options_.sync_each_append;
  SubmitIo([this, bytes = encode_buf_, sync_each] {
    if (!journal_.is_open() || !journal_.AppendEncoded(bytes)) {
      MarkJournalLost();
      return;
    }
    if (sync_each && !journal_.Sync()) MarkJournalLost();
  });
}

std::vector<DenseTensor> DurableGuard::Initialize(
    const std::vector<DenseTensor>& slices, const std::vector<Mask>& masks) {
  RethrowPendingCrash();
  SOFIA_CHECK(!slices.empty());
  slice_shape_ = slices[0].shape();
  std::vector<DenseTensor> out = inner_->Initialize(slices, masks);
  // Baseline generation: recovery needs the post-init state even when the
  // process dies before the first cadence snapshot.
  TakeSnapshot();
  return out;
}

StepResult DurableGuard::StepLazy(const DenseTensor& y, const Mask& omega,
                                  std::shared_ptr<const CooList> pattern) {
  RethrowPendingCrash();
  if (slice_shape_.order() == 0) slice_shape_ = y.shape();
  // Init-less methods skip Initialize: write the pristine baseline
  // generation before the first slice, for the same reason as above.
  if (next_seq_ == 0) TakeSnapshot();
  // The journal stores — and the inner method consumes — the canonical
  // decoded form: observed entries only, zero elsewhere. Live and replayed
  // runs therefore feed the model byte-identical inputs even if a method
  // peeks at unobserved entries.
  DenseTensor decoded = omega.Apply(y);
  JournalSlice(decoded, omega);
  StepResult result = inner_->StepLazy(decoded, omega, std::move(pattern));
  ++step_;
  ++telemetry_.steps;
  Dm().steps->Add(1);
  if (options_.snapshot_every > 0 &&
      ++steps_since_snapshot_ >= options_.snapshot_every) {
    TakeSnapshot();
  }
  return result;
}

void DurableGuard::Observe(const DenseTensor& y, const Mask& omega) {
  RethrowPendingCrash();
  if (slice_shape_.order() == 0) slice_shape_ = y.shape();
  if (next_seq_ == 0) TakeSnapshot();
  DenseTensor decoded = omega.Apply(y);
  JournalSlice(decoded, omega);
  inner_->Observe(decoded, omega);
  ++step_;
  ++telemetry_.steps;
  Dm().steps->Add(1);
  if (options_.snapshot_every > 0 &&
      ++steps_since_snapshot_ >= options_.snapshot_every) {
    TakeSnapshot();
  }
}

void DurableGuard::SaveState(std::ostream& out) const {
  const_cast<DurableGuard*>(this)->SyncAux();
  inner_->SaveState(out);
}

void DurableGuard::RestoreState(std::istream& in) {
  SyncAux();
  inner_->RestoreState(in);
}

void DurableGuard::AdoptWorkerPool(std::shared_ptr<WorkerPool> pool) {
  SyncAux();
  adopted_pool_ = pool;
  executor_ = dynamic_cast<ShardExecutor*>(pool.get());
  inner_->AdoptWorkerPool(std::move(pool));
}

void DurableGuard::Drain() {
  SubmitIo([this] {
    if (journal_.is_open()) journal_.Sync();
  });
  SyncAux();
  RethrowPendingCrash();
}

RecoveryReport DurableGuard::Recover() {
  SOFIA_CHECK(step_ == 0 && next_seq_ == 0)
      << "Recover must run on a fresh guard, before any step";
  RecoveryReport report;

  // --- 1. Newest snapshot whose frame AND payload both validate ---------
  const std::vector<uint64_t> gens = snapshots_.ListGenerations();
  for (auto it = gens.rbegin(); it != gens.rend(); ++it) {
    std::string payload;
    if (durable::ReadFramedFile(snapshots_.GenerationPath(*it), &payload) !=
        durable::IoStatus::kOk) {
      ++report.skipped_generations;  // Torn or bit-rotted frame.
      continue;
    }
    std::istringstream in(payload);
    uint64_t saved_step = 0;
    if (!(in >> saved_step)) {
      ++report.skipped_generations;
      continue;
    }
    try {
      inner_->RestoreState(in);
    } catch (const state_io::StateError&) {
      // CRC-valid frame, corrupt state (e.g. flipped bit pre-framing):
      // fall back to the next-older generation, which re-assigns every
      // field and erases any partial parse.
      ++report.skipped_generations;
      continue;
    }
    report.restored = true;
    report.snapshot_seq = *it;
    report.snapshot_step = saved_step;
    step_ = saved_step;
    break;
  }
  if (!report.restored) {
    // Nothing usable on disk: the caller streams from scratch. Journal
    // segments (if any) are useless without their base state — leave them
    // for the first snapshot's prune.
    report.resume_step = 0;
    return report;
  }

  // --- 2. Replay the journal tail in step order --------------------------
  // Segments >= the restored generation can hold steps at/after the
  // snapshot — including newer segments when we fell back past a corrupt
  // newest snapshot. Expected-step chaining skips the overlap and stops at
  // the first gap or torn record; nothing after a torn record is trusted.
  uint64_t expected = report.snapshot_step;
  bool stop = false;
  for (const uint64_t seq : ListSegments()) {
    if (stop || seq < report.snapshot_seq) continue;
    slicefmt::SliceFileReader reader;
    if (!reader.Open(SegmentPath(seq))) {
      report.journal_truncated = true;
      break;
    }
    if (slice_shape_.order() == 0) slice_shape_ = reader.slice_shape();
    for (size_t i = 0; i < reader.num_records(); ++i) {
      const uint64_t record_step = reader.record(i).step;
      if (record_step < expected) continue;  // Pre-snapshot overlap.
      if (record_step > expected) {          // Gap: lost record(s).
        report.journal_truncated = true;
        stop = true;
        break;
      }
      if (fault::Enabled()) {
        const fault::Decision decision = fault::OnIo("recover.replay", 0);
        if (decision.crash) fault::Crash("recover.replay");
      }
      DenseTensor slice;
      Mask mask;
      reader.Decode(i, &slice, &mask);
      inner_->StepLazy(slice, mask);
      ++expected;
      ++report.replayed_records;
    }
    if (reader.truncated()) {
      report.journal_truncated = true;
      stop = true;
    }
  }
  step_ = expected;
  report.resume_step = expected;
  telemetry_.steps = expected;

  // --- 3. Fresh consistency point ---------------------------------------
  // Never append to an old (possibly torn) segment: write a new snapshot
  // and start a clean segment past every existing generation. A crash
  // anywhere above re-runs against unchanged files (idempotent); a crash
  // in here leaves the restored snapshot + journal intact.
  uint64_t max_seq = gens.empty() ? 0 : gens.back();
  const std::vector<uint64_t> segments = ListSegments();
  if (!segments.empty()) max_seq = std::max(max_seq, segments.back());
  next_seq_ = max_seq + 1;
  TakeSnapshot();
  return report;
}

}  // namespace sofia
