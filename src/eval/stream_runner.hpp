#ifndef SOFIA_EVAL_STREAM_RUNNER_H_
#define SOFIA_EVAL_STREAM_RUNNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/corruption.hpp"
#include "eval/stream_guard.hpp"
#include "eval/streaming_method.hpp"
#include "tensor/dense_tensor.hpp"
#include "tensor/pattern_storage.hpp"

/// \file stream_runner.hpp
/// \brief Drives a StreamingMethod through a corrupted stream and collects
/// the Section VI-A metrics (NRE series, RAE, ART, AFE).
///
/// Two protocol generations coexist:
///  - RunImputation keeps the original dense protocol (materialize every
///    estimate, full-volume NRE) for the paper-figure benches.
///  - RunImputationComparison and the options-taking RunForecast are the
///    lazy pipeline: methods return StepResult handles, and all scoring
///    reads estimates only at observed and held-out entries through CooList
///    gathers — per step, one shared pattern build per distinct mask is the
///    only full-index-space work anywhere in the loop, and no method's
///    estimate is ever densified (counter-verified in
///    tests/step_result_test.cc).

namespace sofia {

/// Knobs of the lazy eval protocols.
struct StreamEvalOptions {
  /// Drive the materializing Step()/Forecast() wrappers and score from the
  /// dense estimates (gathered at the same entries). The scores are bitwise
  /// identical to the lazy path — this exists as the parity/benchmark
  /// reference, not as a better answer.
  bool force_dense = false;
  /// Per-step cap on the *held-out* (missing) entries scored: when a step
  /// has more missing entries than this, an evenly strided deterministic
  /// subset of that size is scored instead (the OLSTEC-style sampled
  /// evaluation). 0 scores every missing entry.
  size_t max_eval_entries = 1024;
  /// Size of the one shared kernel worker pool of a comparison run (0 =
  /// hardware concurrency), offered to every method via AdoptWorkerPool and
  /// used for the scoring gathers. Results are bitwise identical for every
  /// setting.
  size_t num_threads = 1;
  /// Storage backend broadcast to every method: kCsf compiles each shared
  /// per-step pattern into CSF fiber trees (once per distinct mask, outside
  /// the per-method timers) and attaches them to the shared CooList, so
  /// every adopting method's kernels walk the fiber-reuse backend. Scoring
  /// gathers stay on the COO records either way (they are bitwise-pinned
  /// to the dense materialization). Method outputs agree with the kCoo run
  /// to floating-point reassociation (≤1e-12, tests/csf_test.cc).
  PatternStorage pattern_storage = PatternStorage::kCoo;

  // Streaming-runtime knobs (eval/stream_pipeline.hpp). Scores are bitwise
  // identical for every (workers, pipeline_depth, window) combination —
  // these trade wall-clock shape only (tests/stream_pipeline_test.cc).
  /// Workers of the persistent ShardExecutor driving kernels + gathers
  /// (0 = fall back to num_threads). Each worker owns a stable contiguous
  /// root-slab range of every CSF tree across the whole run.
  size_t workers = 0;
  /// Ingest ring depth: 1 runs slice ingest (pattern compare/build,
  /// CSF delta, eval-pattern sampling, truth gathers) synchronously before
  /// each compute window; 2+ runs it on the executor's aux lane up to
  /// depth-1 windows ahead, overlapping window w+1's ingest with window w's
  /// solves.
  size_t pipeline_depth = 1;
  /// Slices ingested per batch (the windowed mode): one ingest job covers
  /// `window` consecutive slices, amortizing job dispatch and keeping the
  /// mask-reuse cache hot across the batch. Compute stays per-slice.
  size_t window = 1;
};

/// What the sharded pipeline did, beyond the per-method metrics: knob
/// echo, ingest/compute overlap accounting, and the executor arena's
/// allocation watch (identical for every method of a run).
struct PipelineTelemetry {
  size_t workers = 1;         ///< Executor threads (incl. the driver).
  size_t pipeline_depth = 1;  ///< Ingest ring depth (1 = synchronous).
  size_t window = 1;          ///< Slices per ingest batch.
  size_t steps = 0;           ///< Slices driven through the pipeline.
  size_t ingest_jobs = 0;     ///< Ingest batches executed.
  /// Summed wall time inside ingest batches (on the aux thread at depth
  /// >= 2). With overlap, most of it hides under compute:
  /// hidden fraction = 1 - ingest_stall_seconds / ingest_seconds.
  double ingest_seconds = 0.0;
  /// Main-thread time blocked waiting for a not-yet-ingested window.
  double ingest_stall_seconds = 0.0;
  /// ScratchArena growth events over the whole run, and over the run
  /// excluding the first compute window. A steady-state stream (stable
  /// mask) holds arena_growth_steady == 0: every post-warm-up step runs
  /// allocation-free through the kernel scratch (test-pinned).
  uint64_t arena_growth_total = 0;
  uint64_t arena_growth_steady = 0;
};

/// Per-run measurements.
struct StreamRunResult {
  /// NRE at every time step (incl. init) over the *scored* entry set: for
  /// the dense protocol the full slice, for the lazy protocols observed ∪
  /// sampled-missing entries.
  std::vector<double> nre;
  /// Lazy protocols only: NRE restricted to the observed entries Ω_t, and
  /// to the held-out (sampled missing) entries — the imputation targets.
  std::vector<double> observed_nre;
  std::vector<double> missing_nre;
  double rae = 0.0;                  ///< Mean NRE over the whole stream.
  double rae_post_init = 0.0;        ///< Mean NRE excluding the init window.
  double art_seconds = 0.0;          ///< Mean per-step time, init excluded.
  double init_seconds = 0.0;         ///< Wall time of the init phase.
  std::vector<double> step_seconds;  ///< Per-step wall times (post-init).
  /// Step-latency order statistics over step_seconds, in microseconds,
  /// read from an obs::Histogram (log-linear buckets, <= 12.5% relative
  /// error). 0 when the run had no post-init steps or obs is disabled.
  double step_latency_p50_us = 0.0;
  double step_latency_p99_us = 0.0;

  // Pattern-rebuild telemetry of the comparison runner's shared per-mask
  // cache (identical for every method of a run — the cache is shared).
  // Steady-state streams (fixed sensor outages) show builds == 1 and
  // reuses == steps - 1; mask churn is no longer silent: every rebuild
  // after the first logs how far the mask actually moved.
  size_t pattern_builds = 0;   ///< Shared pattern compactions performed.
  size_t pattern_reuses = 0;   ///< Steps served by the cached pattern.
  /// |Ω_prev Δ Ω_new| of every rebuild after the first (one entry per
  /// rebuild) — the bitmap delta between the outgoing and incoming masks,
  /// computed by an O(|Ω_prev| + |Ω_new|) merge walk.
  std::vector<size_t> pattern_delta_sizes;

  // Fault-tolerance telemetry, populated when the method is a StreamGuard
  // wrapper. `guarded` distinguishes an unguarded run from a guarded run
  // that simply saw zero trips.
  bool guarded = false;
  GuardTelemetry guard;

  // Sharded-runtime telemetry, populated by the pipeline drivers
  // (identical for every method of a run — the runtime is shared).
  bool pipelined = false;
  PipelineTelemetry pipeline;
};

/// Imputation protocol (Figs. 3-5), dense generation: run `method` over the
/// corrupted stream, compare each materialized imputed slice against the
/// ground truth over the full volume. The init window (if any) is timed
/// separately and its slices are scored from Initialize()'s completions.
StreamRunResult RunImputation(StreamingMethod* method,
                              const CorruptedStream& stream,
                              const std::vector<DenseTensor>& truth);

/// Forecasting protocol (Fig. 6), dense generation: feed all but the last
/// `horizon` slices, then forecast h = 1..horizon and return the AFE
/// against the held-out ground truth over the full volume.
double RunForecast(StreamingMethod* method, const CorruptedStream& stream,
                   const std::vector<DenseTensor>& truth, size_t horizon);

/// Forecasting protocol, lazy generation: the training prefix advances via
/// Observe(), and each ForecastLazy(h) handle is scored against the held-out
/// truth only at a deterministic sample of ≤ max_eval_entries entries per
/// slice, gathered through one CooList shared by every horizon. With
/// force_dense the same entries are read from materialized forecasts — the
/// AFE is bitwise identical.
double RunForecast(StreamingMethod* method, const CorruptedStream& stream,
                   const std::vector<DenseTensor>& truth, size_t horizon,
                   const StreamEvalOptions& options);

/// One method's measurements within a comparison run.
struct MethodRunResult {
  std::string name;    ///< StreamingMethod::name() at run time.
  StreamRunResult run; ///< Same metrics as StreamRunResult above.
};

/// Multi-method imputation comparison — the lazy pipeline. Every method
/// consumes the same corrupted stream, slice by slice:
///  - per distinct consecutive mask, the runner builds the observed-entry
///    CooList once and a held-out eval pattern (≤ max_eval_entries sampled
///    missing entries) once, and shares both across all methods — the only
///    O(volume) work in the loop;
///  - each method due a step returns a lazy StepResult via StepLazy(y,
///    omega, pattern) (or a materialized estimate when force_dense), and is
///    scored by gathering the estimate at the observed and held-out
///    patterns: per-step NRE over observed, held-out, and their union, with
///    zero full-volume reconstructions on the lazy path;
///  - one shared worker pool (options.num_threads) is adopted by every
///    method and drives the scoring gathers, instead of one lazily spawned
///    pool per method;
///  - methods with an init window are initialized on their own window
///    prefix first; their init slices are scored from Initialize()'s
///    completions at the same entry sets.
/// The shared builds happen outside the per-method timers, so `art_seconds`
/// measures each method's own step cost.
std::vector<MethodRunResult> RunImputationComparison(
    const std::vector<StreamingMethod*>& methods,
    const CorruptedStream& stream, const std::vector<DenseTensor>& truth,
    const StreamEvalOptions& options = {});

}  // namespace sofia

#endif  // SOFIA_EVAL_STREAM_RUNNER_H_
