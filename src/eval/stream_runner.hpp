#ifndef SOFIA_EVAL_STREAM_RUNNER_H_
#define SOFIA_EVAL_STREAM_RUNNER_H_

#include <string>
#include <vector>

#include "data/corruption.hpp"
#include "eval/streaming_method.hpp"
#include "tensor/dense_tensor.hpp"

/// \file stream_runner.hpp
/// \brief Drives a StreamingMethod through a corrupted stream and collects
/// the Section VI-A metrics (NRE series, RAE, ART, AFE). The comparison
/// runner drives several methods through the *same* stream, compacting each
/// slice's observed-entry pattern once and sharing it across all methods.

namespace sofia {

/// Per-run measurements.
struct StreamRunResult {
  std::vector<double> nre;           ///< NRE at every time step (incl. init).
  double rae = 0.0;                  ///< Mean NRE over the whole stream.
  double rae_post_init = 0.0;        ///< Mean NRE excluding the init window.
  double art_seconds = 0.0;          ///< Mean per-step time, init excluded.
  double init_seconds = 0.0;         ///< Wall time of the init phase.
  std::vector<double> step_seconds;  ///< Per-step wall times (post-init).
};

/// Imputation protocol (Figs. 3-5): run `method` over the corrupted stream,
/// compare each imputed slice against the ground truth. The init window (if
/// any) is timed separately and its slices are scored from Initialize()'s
/// completions.
StreamRunResult RunImputation(StreamingMethod* method,
                              const CorruptedStream& stream,
                              const std::vector<DenseTensor>& truth);

/// Forecasting protocol (Fig. 6): feed all but the last `horizon` slices,
/// then forecast h = 1..horizon and return the AFE against the held-out
/// ground truth.
double RunForecast(StreamingMethod* method, const CorruptedStream& stream,
                   const std::vector<DenseTensor>& truth, size_t horizon);

/// One method's measurements within a comparison run.
struct MethodRunResult {
  std::string name;    ///< StreamingMethod::name() at run time.
  StreamRunResult run; ///< Same metrics as RunImputation.
};

/// Multi-method imputation comparison: every method consumes the same
/// corrupted stream, slice by slice. Each slice's CooList is built at most
/// once (with the mask-reuse cache of the sparse streaming step: identical
/// consecutive masks skip even that single build) and shared across the
/// methods via StreamingMethod::Step(y, omega, pattern), so for every
/// method on the ObservedSweep core the per-step O(volume) compaction cost
/// is paid once per distinct mask instead of once per method per step.
/// Methods that ignore the hint (SOFIA, whose model keeps its own internal
/// pattern cache; dense-path baselines) still run correctly — any pattern
/// work they do themselves simply counts toward their own step time. The
/// shared build happens outside the per-method timers, so `art_seconds`
/// measures each method's own step cost; methods with an init window are
/// initialized on their own window prefix first and scored identically to
/// RunImputation.
std::vector<MethodRunResult> RunImputationComparison(
    const std::vector<StreamingMethod*>& methods,
    const CorruptedStream& stream, const std::vector<DenseTensor>& truth);

}  // namespace sofia

#endif  // SOFIA_EVAL_STREAM_RUNNER_H_
