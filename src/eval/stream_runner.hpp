#ifndef SOFIA_EVAL_STREAM_RUNNER_H_
#define SOFIA_EVAL_STREAM_RUNNER_H_

#include <vector>

#include "data/corruption.hpp"
#include "eval/streaming_method.hpp"
#include "tensor/dense_tensor.hpp"

/// \file stream_runner.hpp
/// \brief Drives a StreamingMethod through a corrupted stream and collects
/// the Section VI-A metrics (NRE series, RAE, ART, AFE).

namespace sofia {

/// Per-run measurements.
struct StreamRunResult {
  std::vector<double> nre;           ///< NRE at every time step (incl. init).
  double rae = 0.0;                  ///< Mean NRE over the whole stream.
  double rae_post_init = 0.0;        ///< Mean NRE excluding the init window.
  double art_seconds = 0.0;          ///< Mean per-step time, init excluded.
  double init_seconds = 0.0;         ///< Wall time of the init phase.
  std::vector<double> step_seconds;  ///< Per-step wall times (post-init).
};

/// Imputation protocol (Figs. 3-5): run `method` over the corrupted stream,
/// compare each imputed slice against the ground truth. The init window (if
/// any) is timed separately and its slices are scored from Initialize()'s
/// completions.
StreamRunResult RunImputation(StreamingMethod* method,
                              const CorruptedStream& stream,
                              const std::vector<DenseTensor>& truth);

/// Forecasting protocol (Fig. 6): feed all but the last `horizon` slices,
/// then forecast h = 1..horizon and return the AFE against the held-out
/// ground truth.
double RunForecast(StreamingMethod* method, const CorruptedStream& stream,
                   const std::vector<DenseTensor>& truth, size_t horizon);

}  // namespace sofia

#endif  // SOFIA_EVAL_STREAM_RUNNER_H_
