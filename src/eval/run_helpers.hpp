#ifndef SOFIA_EVAL_RUN_HELPERS_H_
#define SOFIA_EVAL_RUN_HELPERS_H_

#include <memory>
#include <vector>

#include "data/corruption.hpp"
#include "eval/stream_runner.hpp"
#include "eval/streaming_method.hpp"
#include "tensor/coo_list.hpp"
#include "util/parallel.hpp"

/// \file run_helpers.hpp
/// \brief Internals shared by the eval drivers (stream_runner.cpp and
/// stream_pipeline.cpp): init-window handling, metric finalization, eval
/// pattern sampling, and per-step scoring. Include from .cpp files only.

namespace sofia {
namespace eval_detail {

/// Shared init-window phase of the imputation protocols: feed the first
/// `window` slices to Initialize(), time it, and return the completions.
/// Empty when window == 0.
std::vector<DenseTensor> RunInitWindow(StreamingMethod* method,
                                       const CorruptedStream& stream,
                                       size_t window,
                                       StreamRunResult* result);

/// Shared aggregate metrics: RAE over everything, RAE excluding the init
/// window, mean per-step time.
void FinalizeRunMetrics(size_t window, StreamRunResult* result);

/// Copies a StreamGuard's trip/recovery counters into the run result (a
/// no-op for unguarded methods).
void AttachGuardTelemetry(const StreamingMethod* method,
                          StreamRunResult* result);

/// Held-out eval pattern derived from the observed pattern: the missing
/// entries, capped at `max_entries` by an evenly strided deterministic pick
/// (0 = no cap). O(|Ω| + picks) — never a dense index-space walk.
std::shared_ptr<const CooList> BuildEvalPattern(const CooList& observed,
                                                size_t max_entries);

/// Per-step estimate-gather scratch, reused across methods and steps.
struct ScoreScratch {
  std::vector<double> est_observed, est_missing;
};

/// Score one estimate handle at the observed + held-out patterns against
/// the pre-gathered truth values; appends the three NRE series entries.
void ScoreStep(const StepResult& estimate, const CooList& observed,
               const CooList& held_out,
               const std::vector<double>& truth_observed,
               const std::vector<double>& truth_missing, WorkerPool* pool,
               ScoreScratch* scratch, StreamRunResult* result);

}  // namespace eval_detail
}  // namespace sofia

#endif  // SOFIA_EVAL_RUN_HELPERS_H_
