#ifndef SOFIA_EVAL_EXPERIMENT_H_
#define SOFIA_EVAL_EXPERIMENT_H_

#include "core/sofia_config.hpp"
#include "data/corruption.hpp"
#include "data/dataset_sim.hpp"

/// \file experiment.hpp
/// \brief Shared configuration policy for the paper-reproduction harness.
///
/// The paper's absolute defaults (λ3 = 10, λ1 = λ2 = 1e-3) were tuned to the
/// authors' preprocessed data scales. Two of them must track the data to
/// transfer across workloads (see DESIGN.md §5):
///  - λ3 thresholds the residual between the clean-noise scale and the
///    outlier scale; we set it to 3x the 75th percentile of |observed
///    entries| (a robust stand-in for 3x the clean RMS that the injected
///    outlier mass cannot inflate).
///  - λ1/λ2 act against the temporal normal-equation curvature, which (with
///    unit-norm non-temporal columns) is bounded by the observed fraction of
///    a slice and is *data-scale independent*; a fixed 0.5 works across all
///    our workloads.

namespace sofia {

/// Root-mean-square of the observed entries of a corrupted stream.
/// NOTE: inflated by injected outliers; prefer ObservedMedianAbs for
/// scale estimation under corruption.
double ObservedRms(const CorruptedStream& stream);

/// q-quantile of |observed entries| (0 < q < 1) — a robust scale estimate.
/// q = 0.75 stays below the paper's worst-case 20% outlier mass while
/// still capturing the bulk scale of heavy-tailed (hub-dominated) data.
double ObservedAbsQuantile(const CorruptedStream& stream, double q);

/// Data-scaled SOFIA configuration for running `dataset` under `stream`'s
/// corruption: rank/period from the dataset, λ3 = 3 * ObservedRms, λ1 = λ2
/// = 0.5, 25 initialization rounds, paper defaults elsewhere.
SofiaConfig MakeExperimentConfig(const Dataset& dataset,
                                 const CorruptedStream& stream);

}  // namespace sofia

#endif  // SOFIA_EVAL_EXPERIMENT_H_
