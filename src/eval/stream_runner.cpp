#include "eval/stream_runner.hpp"

#include "eval/metrics.hpp"
#include "util/check.hpp"
#include "util/stopwatch.hpp"

namespace sofia {

StreamRunResult RunImputation(StreamingMethod* method,
                              const CorruptedStream& stream,
                              const std::vector<DenseTensor>& truth) {
  SOFIA_CHECK_EQ(stream.slices.size(), truth.size());
  const size_t total = truth.size();
  const size_t window = method->init_window();
  SOFIA_CHECK_LE(window, total);

  StreamRunResult result;
  result.nre.reserve(total);

  if (window > 0) {
    std::vector<DenseTensor> init_slices(stream.slices.begin(),
                                         stream.slices.begin() + window);
    std::vector<Mask> init_masks(stream.masks.begin(),
                                 stream.masks.begin() + window);
    Stopwatch init_timer;
    std::vector<DenseTensor> completed =
        method->Initialize(init_slices, init_masks);
    result.init_seconds = init_timer.ElapsedSeconds();
    SOFIA_CHECK_EQ(completed.size(), window);
    for (size_t t = 0; t < window; ++t) {
      result.nre.push_back(NormalizedResidualError(completed[t], truth[t]));
    }
  }

  result.step_seconds.reserve(total - window);
  for (size_t t = window; t < total; ++t) {
    Stopwatch timer;
    DenseTensor imputed = method->Step(stream.slices[t], stream.masks[t]);
    result.step_seconds.push_back(timer.ElapsedSeconds());
    result.nre.push_back(NormalizedResidualError(imputed, truth[t]));
  }

  result.rae = Mean(result.nre);
  result.rae_post_init = Mean(std::vector<double>(
      result.nre.begin() + static_cast<long>(window), result.nre.end()));
  result.art_seconds = Mean(result.step_seconds);
  return result;
}

double RunForecast(StreamingMethod* method, const CorruptedStream& stream,
                   const std::vector<DenseTensor>& truth, size_t horizon) {
  SOFIA_CHECK_EQ(stream.slices.size(), truth.size());
  SOFIA_CHECK_LT(horizon, truth.size());
  SOFIA_CHECK(method->SupportsForecast())
      << method->name() << " cannot forecast";
  const size_t train = truth.size() - horizon;
  const size_t window = method->init_window();
  SOFIA_CHECK_LE(window, train);

  if (window > 0) {
    std::vector<DenseTensor> init_slices(stream.slices.begin(),
                                         stream.slices.begin() + window);
    std::vector<Mask> init_masks(stream.masks.begin(),
                                 stream.masks.begin() + window);
    method->Initialize(init_slices, init_masks);
  }
  // The imputed estimates are not scored here, so let methods with a lazy
  // step result skip the dense reconstruction entirely.
  for (size_t t = window; t < train; ++t) {
    method->Observe(stream.slices[t], stream.masks[t]);
  }

  std::vector<DenseTensor> forecasts;
  std::vector<DenseTensor> future;
  forecasts.reserve(horizon);
  future.reserve(horizon);
  for (size_t h = 1; h <= horizon; ++h) {
    forecasts.push_back(method->Forecast(h));
    future.push_back(truth[train + h - 1]);
  }
  return AverageForecastingError(forecasts, future);
}

}  // namespace sofia
