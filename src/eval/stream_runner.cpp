#include "eval/stream_runner.hpp"

#include <memory>
#include <utility>

#include "baselines/observed_sweep.hpp"
#include "eval/metrics.hpp"
#include "tensor/csf_tensor.hpp"
#include "tensor/sparse_mask.hpp"
#include "util/check.hpp"
#include "util/stopwatch.hpp"

namespace sofia {

namespace {

/// Shared init-window phase of the imputation protocols: feed the first
/// `window` slices to Initialize(), time it, and return the completions.
/// Empty when window == 0.
std::vector<DenseTensor> RunInitWindow(StreamingMethod* method,
                                       const CorruptedStream& stream,
                                       size_t window,
                                       StreamRunResult* result) {
  if (window == 0) return {};
  std::vector<DenseTensor> init_slices(stream.slices.begin(),
                                       stream.slices.begin() + window);
  std::vector<Mask> init_masks(stream.masks.begin(),
                               stream.masks.begin() + window);
  Stopwatch init_timer;
  std::vector<DenseTensor> completed =
      method->Initialize(init_slices, init_masks);
  result->init_seconds = init_timer.ElapsedSeconds();
  SOFIA_CHECK_EQ(completed.size(), window);
  return completed;
}

/// Shared aggregate metrics: RAE over everything, RAE excluding the init
/// window, mean per-step time.
void FinalizeRunMetrics(size_t window, StreamRunResult* result) {
  result->rae = Mean(result->nre);
  result->rae_post_init = Mean(std::vector<double>(
      result->nre.begin() + static_cast<long>(window), result->nre.end()));
  result->art_seconds = Mean(result->step_seconds);
}

/// Copies a StreamGuard's trip/recovery counters into the run result (a
/// no-op for unguarded methods).
void AttachGuardTelemetry(const StreamingMethod* method,
                          StreamRunResult* result) {
  if (const auto* guard = dynamic_cast<const StreamGuard*>(method)) {
    result->guarded = true;
    result->guard = guard->telemetry();
  }
}

/// Held-out eval pattern derived from the observed pattern: the missing
/// entries, capped at `max_entries` by an evenly strided deterministic pick
/// (0 = no cap). Missing entries are enumerated as the *gaps* between the
/// observed pattern's sorted records, so the build costs O(|Ω| + picks) —
/// never a dense index-space walk (the old dense-mask build was the last
/// O(volume) term of a mask-reuse step). Picks are missing-enumeration
/// positions 0, stride, 2·stride, … with a ceil stride, identical to the
/// dense walk it replaces. Bucket-less — only the gather kernels touch it.
std::shared_ptr<const CooList> BuildEvalPattern(const CooList& observed,
                                                size_t max_entries) {
  const size_t volume = observed.shape().NumElements();
  const size_t missing = volume - observed.nnz();
  std::vector<size_t> picks;
  if (missing > 0) {
    // Ceil stride so the picks span the full missing set (a floor stride
    // would cluster them at the low linear indices whenever max_entries <
    // missing < 2 * max_entries), at the cost of sometimes taking slightly
    // fewer than max_entries.
    const size_t stride = (max_entries == 0 || missing <= max_entries)
                              ? 1
                              : (missing + max_entries - 1) / max_entries;
    const size_t cap = stride == 1 ? missing : max_entries;
    picks.reserve(cap);
    size_t next = 0;    // Missing-enumeration position of the next pick.
    size_t seen = 0;    // Missing entries enumerated so far.
    size_t cursor = 0;  // Next linear index not yet classified.
    auto scan_gap = [&](size_t begin, size_t end) {
      const size_t len = end - begin;
      while (picks.size() < cap && next < seen + len) {
        picks.push_back(begin + (next - seen));
        next += stride;
      }
      seen += len;
    };
    for (size_t k = 0; k < observed.nnz() && picks.size() < cap; ++k) {
      const size_t obs = observed.LinearIndex(k);
      scan_gap(cursor, obs);
      cursor = obs + 1;
    }
    if (picks.size() < cap) scan_gap(cursor, volume);
  }
  return std::make_shared<const CooList>(CooList::FromIndices(
      observed.shape(), std::move(picks), /*with_mode_buckets=*/false));
}

/// Per-step scoring scratch shared across methods and steps.
struct ScoreScratch {
  std::vector<double> est_observed, est_missing;
  std::vector<double> truth_observed, truth_missing;
};

/// Score one estimate handle at the observed + held-out patterns; appends
/// the three NRE series entries.
void ScoreStep(const StepResult& estimate, const CooList& observed,
               const CooList& held_out, ThreadPool* pool,
               ScoreScratch* scratch, StreamRunResult* result) {
  estimate.GatherAtInto(observed, &scratch->est_observed, pool);
  estimate.GatherAtInto(held_out, &scratch->est_missing, pool);
  const GatheredError obs_err = AccumulateGatheredError(
      scratch->est_observed, scratch->truth_observed);
  const GatheredError miss_err = AccumulateGatheredError(
      scratch->est_missing, scratch->truth_missing);
  GatheredError total = obs_err;
  total += miss_err;
  result->observed_nre.push_back(GatheredNre(obs_err));
  result->missing_nre.push_back(GatheredNre(miss_err));
  result->nre.push_back(GatheredNre(total));
}

}  // namespace

StreamRunResult RunImputation(StreamingMethod* method,
                              const CorruptedStream& stream,
                              const std::vector<DenseTensor>& truth) {
  SOFIA_CHECK_EQ(stream.slices.size(), truth.size());
  const size_t total = truth.size();
  const size_t window = method->init_window();
  SOFIA_CHECK_LE(window, total);

  StreamRunResult result;
  result.nre.reserve(total);
  std::vector<DenseTensor> completed =
      RunInitWindow(method, stream, window, &result);
  for (size_t t = 0; t < window; ++t) {
    result.nre.push_back(NormalizedResidualError(completed[t], truth[t]));
  }

  result.step_seconds.reserve(total - window);
  for (size_t t = window; t < total; ++t) {
    Stopwatch timer;
    DenseTensor imputed = method->Step(stream.slices[t], stream.masks[t]);
    result.step_seconds.push_back(timer.ElapsedSeconds());
    result.nre.push_back(NormalizedResidualError(imputed, truth[t]));
  }

  FinalizeRunMetrics(window, &result);
  AttachGuardTelemetry(method, &result);
  return result;
}

std::vector<MethodRunResult> RunImputationComparison(
    const std::vector<StreamingMethod*>& methods,
    const CorruptedStream& stream, const std::vector<DenseTensor>& truth,
    const StreamEvalOptions& options) {
  SOFIA_CHECK_EQ(stream.slices.size(), truth.size());
  const size_t total = truth.size();

  // One worker pool for the whole run: adopted by every method (instead of
  // one lazily spawned pool each) and used for the scoring gathers. A
  // 1-thread pool degrades to the serial path inside the consumers.
  auto pool = std::make_shared<ThreadPool>(
      ResolveNumThreads(options.num_threads));
  ThreadPool* gather_pool = pool->num_threads() > 1 ? pool.get() : nullptr;

  std::vector<MethodRunResult> out(methods.size());
  std::vector<size_t> windows(methods.size(), 0);
  std::vector<std::vector<DenseTensor>> completions(methods.size());
  for (size_t m = 0; m < methods.size(); ++m) {
    StreamingMethod* method = methods[m];
    method->AdoptWorkerPool(pool);
    out[m].name = method->name();
    const size_t window = method->init_window();
    SOFIA_CHECK_LE(window, total);
    windows[m] = window;
    out[m].run.nre.reserve(total);
    out[m].run.step_seconds.reserve(total - window);
    completions[m] = RunInitWindow(method, stream, window, &out[m].run);
  }

  // Shared step loop: per distinct consecutive mask, one observed CooList
  // (with mode buckets, for the methods' kernels), its CSF compilation
  // when the run's storage backend asks for one, and one held-out eval
  // pattern (derived from the observed records, O(|Ω| + picks)) — the
  // CooList compaction is the only O(volume) work of the loop, and only
  // on mask change: the reuse cache is a SparseMask, so steady-state steps
  // compare in O(|Ω_t|) (test-pinned via the telemetry below and
  // Mask::deep_equality_scans). Truth values at both patterns are gathered
  // once per step and shared across methods.
  std::shared_ptr<const CooList> pattern;
  std::shared_ptr<const CooList> eval_pattern;
  SparseMask pattern_mask;
  size_t pattern_builds = 0;
  size_t pattern_reuses = 0;
  std::vector<size_t> pattern_delta_sizes;
  ScoreScratch scratch;
  for (size_t t = 0; t < total; ++t) {
    const Mask& omega = stream.masks[t];
    if (!pattern_mask.valid() || !pattern_mask.Matches(omega)) {
      std::shared_ptr<const CooList> previous = std::move(pattern);
      pattern = MakeSharedPattern(omega);
      if (options.pattern_storage == PatternStorage::kCsf) {
        // Attach once (every method adopts it), patching the previous
        // pattern's trees forward on low-churn mask changes instead of
        // recompiling from scratch.
        EnsureCsfDelta(*pattern, previous);
      }
      eval_pattern = BuildEvalPattern(*pattern, options.max_eval_entries);
      SparseMask next = SparseMask::FromCoo(*pattern);
      // Rebuild telemetry: how far did the mask actually move? (The first
      // build has no predecessor and logs no delta.)
      if (pattern_mask.valid()) {
        pattern_delta_sizes.push_back(pattern_mask.DeltaSize(next));
      }
      pattern_mask = std::move(next);
      ++pattern_builds;
    } else {
      ++pattern_reuses;
    }
    pattern->GatherInto(truth[t], &scratch.truth_observed);
    eval_pattern->GatherInto(truth[t], &scratch.truth_missing);
    for (size_t m = 0; m < methods.size(); ++m) {
      if (t < windows[m]) {
        // Init-window slice: score the stored completion at the same entry
        // sets (Dense handles do not count as lazy materializations).
        StepResult completed =
            StepResult::Dense(std::move(completions[m][t]));
        ScoreStep(completed, *pattern, *eval_pattern, gather_pool, &scratch,
                  &out[m].run);
        continue;
      }
      StepResult estimate;
      Stopwatch timer;
      if (options.force_dense) {
        estimate =
            StepResult::Dense(methods[m]->Step(stream.slices[t], omega,
                                               pattern));
      } else {
        estimate = methods[m]->StepLazy(stream.slices[t], omega, pattern);
      }
      out[m].run.step_seconds.push_back(timer.ElapsedSeconds());
      ScoreStep(estimate, *pattern, *eval_pattern, gather_pool, &scratch,
                &out[m].run);
    }
  }

  for (size_t m = 0; m < methods.size(); ++m) {
    FinalizeRunMetrics(windows[m], &out[m].run);
    // The pattern cache is shared, so every method reports the same
    // rebuild telemetry.
    out[m].run.pattern_builds = pattern_builds;
    out[m].run.pattern_reuses = pattern_reuses;
    out[m].run.pattern_delta_sizes = pattern_delta_sizes;
    AttachGuardTelemetry(methods[m], &out[m].run);
    methods[m]->AdoptWorkerPool(nullptr);
  }
  return out;
}

double RunForecast(StreamingMethod* method, const CorruptedStream& stream,
                   const std::vector<DenseTensor>& truth, size_t horizon) {
  SOFIA_CHECK_EQ(stream.slices.size(), truth.size());
  SOFIA_CHECK_LT(horizon, truth.size());
  SOFIA_CHECK(method->SupportsForecast())
      << method->name() << " cannot forecast";
  const size_t train = truth.size() - horizon;
  const size_t window = method->init_window();
  SOFIA_CHECK_LE(window, train);

  if (window > 0) {
    std::vector<DenseTensor> init_slices(stream.slices.begin(),
                                         stream.slices.begin() + window);
    std::vector<Mask> init_masks(stream.masks.begin(),
                                 stream.masks.begin() + window);
    method->Initialize(init_slices, init_masks);
  }
  // The imputed estimates are not scored here, so let methods with a lazy
  // step result skip the dense reconstruction entirely.
  for (size_t t = window; t < train; ++t) {
    method->Observe(stream.slices[t], stream.masks[t]);
  }

  std::vector<DenseTensor> forecasts;
  std::vector<DenseTensor> future;
  forecasts.reserve(horizon);
  future.reserve(horizon);
  for (size_t h = 1; h <= horizon; ++h) {
    forecasts.push_back(method->Forecast(h));
    future.push_back(truth[train + h - 1]);
  }
  return AverageForecastingError(forecasts, future);
}

double RunForecast(StreamingMethod* method, const CorruptedStream& stream,
                   const std::vector<DenseTensor>& truth, size_t horizon,
                   const StreamEvalOptions& options) {
  SOFIA_CHECK_EQ(stream.slices.size(), truth.size());
  SOFIA_CHECK_LT(horizon, truth.size());
  SOFIA_CHECK(method->SupportsForecast())
      << method->name() << " cannot forecast";
  const size_t train = truth.size() - horizon;
  const size_t window = method->init_window();
  SOFIA_CHECK_LE(window, train);

  if (window > 0) {
    std::vector<DenseTensor> init_slices(stream.slices.begin(),
                                         stream.slices.begin() + window);
    std::vector<Mask> init_masks(stream.masks.begin(),
                                 stream.masks.begin() + window);
    method->Initialize(init_slices, init_masks);
  }
  for (size_t t = window; t < train; ++t) {
    method->Observe(stream.slices[t], stream.masks[t]);
  }

  // Held-out scoring pattern: a deterministic ≤ max_eval_entries sample of
  // the slice index space, shared by every horizon (an all-observed
  // pattern's "missing" set is empty, so sample the complement of an empty
  // one — i.e. every entry, strided).
  const CooList nothing_observed = CooList::FromIndices(
      truth[train].shape(), {}, /*with_mode_buckets=*/false);
  std::shared_ptr<const CooList> eval_pattern =
      BuildEvalPattern(nothing_observed, options.max_eval_entries);

  std::vector<double> est, ref;
  double sum = 0.0;
  for (size_t h = 1; h <= horizon; ++h) {
    const DenseTensor& future = truth[train + h - 1];
    eval_pattern->GatherInto(future, &ref);
    if (options.force_dense) {
      StepResult forecast = StepResult::Dense(method->Forecast(h));
      forecast.GatherAtInto(*eval_pattern, &est);
    } else {
      method->ForecastLazy(h).GatherAtInto(*eval_pattern, &est);
    }
    sum += GatheredNre(AccumulateGatheredError(est, ref));
  }
  return sum / static_cast<double>(horizon);
}

}  // namespace sofia
