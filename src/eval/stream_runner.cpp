#include "eval/stream_runner.hpp"

#include <memory>

#include "baselines/observed_sweep.hpp"
#include "eval/metrics.hpp"
#include "util/check.hpp"
#include "util/stopwatch.hpp"

namespace sofia {

namespace {

/// Shared init-window phase of RunImputation / RunImputationComparison:
/// feed the first `window` slices to Initialize(), time it, and score the
/// returned completions into `result->nre`. No-op when window == 0.
void ScoreInitWindow(StreamingMethod* method, const CorruptedStream& stream,
                     const std::vector<DenseTensor>& truth, size_t window,
                     StreamRunResult* result) {
  if (window == 0) return;
  std::vector<DenseTensor> init_slices(stream.slices.begin(),
                                       stream.slices.begin() + window);
  std::vector<Mask> init_masks(stream.masks.begin(),
                               stream.masks.begin() + window);
  Stopwatch init_timer;
  std::vector<DenseTensor> completed =
      method->Initialize(init_slices, init_masks);
  result->init_seconds = init_timer.ElapsedSeconds();
  SOFIA_CHECK_EQ(completed.size(), window);
  for (size_t t = 0; t < window; ++t) {
    result->nre.push_back(NormalizedResidualError(completed[t], truth[t]));
  }
}

/// Shared aggregate metrics: RAE over everything, RAE excluding the init
/// window, mean per-step time.
void FinalizeRunMetrics(size_t window, StreamRunResult* result) {
  result->rae = Mean(result->nre);
  result->rae_post_init = Mean(std::vector<double>(
      result->nre.begin() + static_cast<long>(window), result->nre.end()));
  result->art_seconds = Mean(result->step_seconds);
}

}  // namespace

StreamRunResult RunImputation(StreamingMethod* method,
                              const CorruptedStream& stream,
                              const std::vector<DenseTensor>& truth) {
  SOFIA_CHECK_EQ(stream.slices.size(), truth.size());
  const size_t total = truth.size();
  const size_t window = method->init_window();
  SOFIA_CHECK_LE(window, total);

  StreamRunResult result;
  result.nre.reserve(total);
  ScoreInitWindow(method, stream, truth, window, &result);

  result.step_seconds.reserve(total - window);
  for (size_t t = window; t < total; ++t) {
    Stopwatch timer;
    DenseTensor imputed = method->Step(stream.slices[t], stream.masks[t]);
    result.step_seconds.push_back(timer.ElapsedSeconds());
    result.nre.push_back(NormalizedResidualError(imputed, truth[t]));
  }

  FinalizeRunMetrics(window, &result);
  return result;
}

std::vector<MethodRunResult> RunImputationComparison(
    const std::vector<StreamingMethod*>& methods,
    const CorruptedStream& stream, const std::vector<DenseTensor>& truth) {
  SOFIA_CHECK_EQ(stream.slices.size(), truth.size());
  const size_t total = truth.size();

  std::vector<MethodRunResult> out(methods.size());
  std::vector<size_t> windows(methods.size(), 0);
  for (size_t m = 0; m < methods.size(); ++m) {
    StreamingMethod* method = methods[m];
    out[m].name = method->name();
    const size_t window = method->init_window();
    SOFIA_CHECK_LE(window, total);
    windows[m] = window;
    out[m].run.nre.reserve(total);
    out[m].run.step_seconds.reserve(total - window);
    ScoreInitWindow(method, stream, truth, window, &out[m].run);
  }

  // Shared step loop: one CooList per distinct consecutive mask, handed to
  // every method due a step at time t. Built lazily against the cached
  // mask, so steps that fall inside every method's init window (where
  // nobody consumes the hint) never pay the compaction.
  std::shared_ptr<const CooList> pattern;
  Mask pattern_mask;
  for (size_t t = 0; t < total; ++t) {
    const Mask& omega = stream.masks[t];
    bool due = false;
    for (size_t m = 0; m < methods.size() && !due; ++m) due = t >= windows[m];
    if (!due) continue;
    if (pattern == nullptr || pattern_mask != omega) {
      pattern = MakeSharedPattern(omega);
      pattern_mask = omega;
    }
    for (size_t m = 0; m < methods.size(); ++m) {
      if (t < windows[m]) continue;
      Stopwatch timer;
      DenseTensor imputed =
          methods[m]->Step(stream.slices[t], omega, pattern);
      out[m].run.step_seconds.push_back(timer.ElapsedSeconds());
      out[m].run.nre.push_back(NormalizedResidualError(imputed, truth[t]));
    }
  }

  for (size_t m = 0; m < methods.size(); ++m) {
    FinalizeRunMetrics(windows[m], &out[m].run);
  }
  return out;
}

double RunForecast(StreamingMethod* method, const CorruptedStream& stream,
                   const std::vector<DenseTensor>& truth, size_t horizon) {
  SOFIA_CHECK_EQ(stream.slices.size(), truth.size());
  SOFIA_CHECK_LT(horizon, truth.size());
  SOFIA_CHECK(method->SupportsForecast())
      << method->name() << " cannot forecast";
  const size_t train = truth.size() - horizon;
  const size_t window = method->init_window();
  SOFIA_CHECK_LE(window, train);

  if (window > 0) {
    std::vector<DenseTensor> init_slices(stream.slices.begin(),
                                         stream.slices.begin() + window);
    std::vector<Mask> init_masks(stream.masks.begin(),
                                 stream.masks.begin() + window);
    method->Initialize(init_slices, init_masks);
  }
  // The imputed estimates are not scored here, so let methods with a lazy
  // step result skip the dense reconstruction entirely.
  for (size_t t = window; t < train; ++t) {
    method->Observe(stream.slices[t], stream.masks[t]);
  }

  std::vector<DenseTensor> forecasts;
  std::vector<DenseTensor> future;
  forecasts.reserve(horizon);
  future.reserve(horizon);
  for (size_t h = 1; h <= horizon; ++h) {
    forecasts.push_back(method->Forecast(h));
    future.push_back(truth[train + h - 1]);
  }
  return AverageForecastingError(forecasts, future);
}

}  // namespace sofia
