#include "eval/stream_runner.hpp"

#include <memory>
#include <utility>

#include "eval/metrics.hpp"
#include "eval/run_helpers.hpp"
#include "eval/stream_pipeline.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/stopwatch.hpp"

namespace sofia {

namespace eval_detail {

std::vector<DenseTensor> RunInitWindow(StreamingMethod* method,
                                       const CorruptedStream& stream,
                                       size_t window,
                                       StreamRunResult* result) {
  if (window == 0) return {};
  std::vector<DenseTensor> init_slices(stream.slices.begin(),
                                       stream.slices.begin() + window);
  std::vector<Mask> init_masks(stream.masks.begin(),
                               stream.masks.begin() + window);
  Stopwatch init_timer;
  std::vector<DenseTensor> completed =
      method->Initialize(init_slices, init_masks);
  result->init_seconds = init_timer.ElapsedSeconds();
  SOFIA_CHECK_EQ(completed.size(), window);
  return completed;
}

void FinalizeRunMetrics(size_t window, StreamRunResult* result) {
  result->rae = Mean(result->nre);
  result->rae_post_init = Mean(std::vector<double>(
      result->nre.begin() + static_cast<long>(window), result->nre.end()));
  result->art_seconds = Mean(result->step_seconds);
  // Per-run latency percentiles from a private histogram (the registry's
  // pipeline.step_latency_us accumulates across methods and runs, so it
  // cannot serve per-run order statistics).
  obs::Histogram latency;
  for (const double seconds : result->step_seconds) {
    latency.Observe(seconds * 1e6);
  }
  result->step_latency_p50_us = latency.Percentile(50.0);
  result->step_latency_p99_us = latency.Percentile(99.0);
}

void AttachGuardTelemetry(const StreamingMethod* method,
                          StreamRunResult* result) {
  if (const auto* guard = dynamic_cast<const StreamGuard*>(method)) {
    result->guarded = true;
    result->guard = guard->telemetry();
  }
}

/// Missing entries are enumerated as the *gaps* between the observed
/// pattern's sorted records (the old dense-mask build was the last
/// O(volume) term of a mask-reuse step). Picks are missing-enumeration
/// positions 0, stride, 2·stride, … with a ceil stride, identical to the
/// dense walk it replaces. Bucket-less — only the gather kernels touch it.
std::shared_ptr<const CooList> BuildEvalPattern(const CooList& observed,
                                                size_t max_entries) {
  const size_t volume = observed.shape().NumElements();
  const size_t missing = volume - observed.nnz();
  std::vector<size_t> picks;
  if (missing > 0) {
    // Ceil stride so the picks span the full missing set (a floor stride
    // would cluster them at the low linear indices whenever max_entries <
    // missing < 2 * max_entries), at the cost of sometimes taking slightly
    // fewer than max_entries.
    const size_t stride = (max_entries == 0 || missing <= max_entries)
                              ? 1
                              : (missing + max_entries - 1) / max_entries;
    const size_t cap = stride == 1 ? missing : max_entries;
    picks.reserve(cap);
    size_t next = 0;    // Missing-enumeration position of the next pick.
    size_t seen = 0;    // Missing entries enumerated so far.
    size_t cursor = 0;  // Next linear index not yet classified.
    auto scan_gap = [&](size_t begin, size_t end) {
      const size_t len = end - begin;
      while (picks.size() < cap && next < seen + len) {
        picks.push_back(begin + (next - seen));
        next += stride;
      }
      seen += len;
    };
    for (size_t k = 0; k < observed.nnz() && picks.size() < cap; ++k) {
      const size_t obs = observed.LinearIndex(k);
      scan_gap(cursor, obs);
      cursor = obs + 1;
    }
    if (picks.size() < cap) scan_gap(cursor, volume);
  }
  return std::make_shared<const CooList>(CooList::FromIndices(
      observed.shape(), std::move(picks), /*with_mode_buckets=*/false));
}

void ScoreStep(const StepResult& estimate, const CooList& observed,
               const CooList& held_out,
               const std::vector<double>& truth_observed,
               const std::vector<double>& truth_missing, WorkerPool* pool,
               ScoreScratch* scratch, StreamRunResult* result) {
  estimate.GatherAtInto(observed, &scratch->est_observed, pool);
  estimate.GatherAtInto(held_out, &scratch->est_missing, pool);
  const GatheredError obs_err = AccumulateGatheredError(
      scratch->est_observed, truth_observed);
  const GatheredError miss_err = AccumulateGatheredError(
      scratch->est_missing, truth_missing);
  GatheredError total = obs_err;
  total += miss_err;
  result->observed_nre.push_back(GatheredNre(obs_err));
  result->missing_nre.push_back(GatheredNre(miss_err));
  result->nre.push_back(GatheredNre(total));
}

}  // namespace eval_detail

using eval_detail::AttachGuardTelemetry;
using eval_detail::BuildEvalPattern;
using eval_detail::FinalizeRunMetrics;
using eval_detail::RunInitWindow;

StreamRunResult RunImputation(StreamingMethod* method,
                              const CorruptedStream& stream,
                              const std::vector<DenseTensor>& truth) {
  SOFIA_CHECK_EQ(stream.slices.size(), truth.size());
  const size_t total = truth.size();
  const size_t window = method->init_window();
  SOFIA_CHECK_LE(window, total);

  StreamRunResult result;
  result.nre.reserve(total);
  std::vector<DenseTensor> completed =
      RunInitWindow(method, stream, window, &result);
  for (size_t t = 0; t < window; ++t) {
    result.nre.push_back(NormalizedResidualError(completed[t], truth[t]));
  }

  result.step_seconds.reserve(total - window);
  for (size_t t = window; t < total; ++t) {
    Stopwatch timer;
    DenseTensor imputed = method->Step(stream.slices[t], stream.masks[t]);
    result.step_seconds.push_back(timer.ElapsedSeconds());
    result.nre.push_back(NormalizedResidualError(imputed, truth[t]));
  }

  FinalizeRunMetrics(window, &result);
  AttachGuardTelemetry(method, &result);
  return result;
}

std::vector<MethodRunResult> RunImputationComparison(
    const std::vector<StreamingMethod*>& methods,
    const CorruptedStream& stream, const std::vector<DenseTensor>& truth,
    const StreamEvalOptions& options) {
  // The comparison protocol is now a configuration of the sharded
  // streaming runtime: default knobs (workers = num_threads, depth 1,
  // window 1) reproduce the former sequential loop exactly — same scores,
  // same telemetry — while --workers/--pipeline-depth/--window open the
  // persistent-shard and ingest-overlap paths.
  return RunStreamPipeline(methods, stream, truth, options);
}

double RunForecast(StreamingMethod* method, const CorruptedStream& stream,
                   const std::vector<DenseTensor>& truth, size_t horizon) {
  SOFIA_CHECK_EQ(stream.slices.size(), truth.size());
  SOFIA_CHECK_LT(horizon, truth.size());
  SOFIA_CHECK(method->SupportsForecast())
      << method->name() << " cannot forecast";
  const size_t train = truth.size() - horizon;
  const size_t window = method->init_window();
  SOFIA_CHECK_LE(window, train);

  if (window > 0) {
    std::vector<DenseTensor> init_slices(stream.slices.begin(),
                                         stream.slices.begin() + window);
    std::vector<Mask> init_masks(stream.masks.begin(),
                                 stream.masks.begin() + window);
    method->Initialize(init_slices, init_masks);
  }
  // The imputed estimates are not scored here, so let methods with a lazy
  // step result skip the dense reconstruction entirely.
  for (size_t t = window; t < train; ++t) {
    method->Observe(stream.slices[t], stream.masks[t]);
  }

  std::vector<DenseTensor> forecasts;
  std::vector<DenseTensor> future;
  forecasts.reserve(horizon);
  future.reserve(horizon);
  for (size_t h = 1; h <= horizon; ++h) {
    forecasts.push_back(method->Forecast(h));
    future.push_back(truth[train + h - 1]);
  }
  return AverageForecastingError(forecasts, future);
}

double RunForecast(StreamingMethod* method, const CorruptedStream& stream,
                   const std::vector<DenseTensor>& truth, size_t horizon,
                   const StreamEvalOptions& options) {
  SOFIA_CHECK_EQ(stream.slices.size(), truth.size());
  SOFIA_CHECK_LT(horizon, truth.size());
  SOFIA_CHECK(method->SupportsForecast())
      << method->name() << " cannot forecast";
  const size_t train = truth.size() - horizon;
  const size_t window = method->init_window();
  SOFIA_CHECK_LE(window, train);

  if (window > 0) {
    std::vector<DenseTensor> init_slices(stream.slices.begin(),
                                         stream.slices.begin() + window);
    std::vector<Mask> init_masks(stream.masks.begin(),
                                 stream.masks.begin() + window);
    method->Initialize(init_slices, init_masks);
  }
  for (size_t t = window; t < train; ++t) {
    method->Observe(stream.slices[t], stream.masks[t]);
  }

  // Held-out scoring pattern: a deterministic ≤ max_eval_entries sample of
  // the slice index space, shared by every horizon (an all-observed
  // pattern's "missing" set is empty, so sample the complement of an empty
  // one — i.e. every entry, strided).
  const CooList nothing_observed = CooList::FromIndices(
      truth[train].shape(), {}, /*with_mode_buckets=*/false);
  std::shared_ptr<const CooList> eval_pattern =
      BuildEvalPattern(nothing_observed, options.max_eval_entries);

  std::vector<double> est, ref;
  double sum = 0.0;
  for (size_t h = 1; h <= horizon; ++h) {
    const DenseTensor& future = truth[train + h - 1];
    eval_pattern->GatherInto(future, &ref);
    if (options.force_dense) {
      StepResult forecast = StepResult::Dense(method->Forecast(h));
      forecast.GatherAtInto(*eval_pattern, &est);
    } else {
      method->ForecastLazy(h).GatherAtInto(*eval_pattern, &est);
    }
    sum += GatheredNre(AccumulateGatheredError(est, ref));
  }
  return sum / static_cast<double>(horizon);
}

}  // namespace sofia
