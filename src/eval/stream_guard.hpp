#ifndef SOFIA_EVAL_STREAM_GUARD_H_
#define SOFIA_EVAL_STREAM_GUARD_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "eval/streaming_method.hpp"
#include "util/shard_executor.hpp"

/// \file stream_guard.hpp
/// \brief Fault-tolerance wrapper for any StreamingMethod.
///
/// A long-running stream eventually delivers bad input — NaN payloads from a
/// broken sensor, an all-missing blackout slice, a mis-shaped record — and a
/// single such slice silently poisons every downstream factor of an
/// unprotected method. StreamGuard wraps a method with three layers:
///
///  1. *Input validation*: every incoming slice pays one O(|Ω|) pass that
///     rejects NaN/Inf payloads, empty Ω, shape mismatches, and payload
///     scale explosions (max |y| beyond `payload_explosion_factor` x the
///     rolling max — huge-but-finite garbage) BEFORE the inner method sees
///     them, so invalid input can never corrupt state. A rejected slice
///     still advances the inner method's clock with an empty-Ω step, so
///     seasonal phase stays aligned with the stream.
///  2. *Health watch*: after each accepted step, the factor norms
///     (StepResult::MaxAbsComponent, O(sum I_n R)) and a strided ≤
///     `health_probe_entries` observed-NRE probe are compared against
///     rolling baselines; explosions and spikes trip the guard.
///  3. *Degradation policy* on trip: `kSkipSlice` returns a forecast-imputed
///     estimate and moves on; `kRollback` additionally restores the newest
///     ring-buffer checkpoint (StreamingMethod::RestoreState); `kReinit`
///     restores the post-Initialize snapshot. Input-validation trips never
///     reach the inner method, so state stays clean under every policy and
///     only the returned estimate degrades.
///
/// Clean-stream overhead is one O(|Ω|) validation scan per slice plus
/// O(probe N R) health probes and an O(state) checkpoint serialization —
/// never an extra pattern build, estimate materialization, or O(volume)
/// pass (counter-verified in tests/stream_guard_test.cc).
///
/// Recovery metric: a trip opens a fault episode; each later slice
/// increments the episode's step count (renewed trips reset it); the
/// episode closes when an accepted step's NRE probe returns to
/// `recover_factor` x the pre-fault baseline, recording steps-to-recover.

namespace sofia {

/// What the guard does to the inner method's state when it trips on a
/// *health* fault (input faults never touch state).
enum class GuardPolicy {
  kSkipSlice,  ///< Keep state as-is; only the returned estimate degrades.
  kRollback,   ///< Restore the newest ring-buffer checkpoint.
  kReinit,     ///< Restore the post-Initialize snapshot.
};

const char* GuardPolicyName(GuardPolicy policy);
/// Parses "skip" / "rollback" / "reinit" (SOFIA_CHECK-fails otherwise).
GuardPolicy ParseGuardPolicy(const std::string& name);

/// Knobs of StreamGuard.
struct StreamGuardOptions {
  GuardPolicy policy = GuardPolicy::kRollback;

  // Health watch.
  /// Trip when the NRE probe exceeds this factor x the rolling baseline.
  double nre_spike_factor = 10.0;
  /// Rolling window (accepted steps) behind the NRE/norm baselines.
  size_t health_window = 8;
  /// Accepted steps required before health trips can fire (warm-up).
  size_t min_history = 3;
  /// Baseline floor: spike thresholds never drop below spike_factor x this,
  /// so near-perfect streams don't trip on harmless wiggle.
  double nre_floor = 0.05;
  /// Trip when MaxAbsComponent exceeds this factor x the rolling norm max.
  double norm_explosion_factor = 1e3;
  /// Cap on entries read by the per-step NRE probe (strided over Ω).
  size_t health_probe_entries = 256;
  /// Input-layer payload-scale watch: a slice whose max |y| exceeds this
  /// factor x the rolling max of accepted slices is garbage and is rejected
  /// before the inner method sees it (0 disables). This catches
  /// huge-but-finite payloads the NRE probe cannot — against a huge
  /// reference the probe NRE saturates near 1, inside the spike threshold
  /// of any noisy baseline.
  double payload_explosion_factor = 100.0;

  // Checkpointing (kRollback / kReinit; ignored when the inner method
  // does not support state checkpoints).
  /// Save a ring checkpoint every k-th accepted step. A rollback then loses
  /// at most `checkpoint_every - 1` accepted steps; the default trades that
  /// bounded loss for 1/4 the O(state) serialization traffic (per-step
  /// checkpointing dominated guarded wall time for history-refit methods).
  size_t checkpoint_every = 4;
  /// Ring-buffer slots (oldest overwritten). The first rollback of a fault
  /// episode restores the newest slot; repeated trips within the episode
  /// walk back to strictly older slots before falling to the reinit
  /// snapshot, so a poisoned checkpoint is never restored twice in a row.
  size_t checkpoint_slots = 4;

  /// A fault episode ends when the NRE probe returns under this factor x
  /// the frozen pre-fault baseline.
  double recover_factor = 2.0;
};

/// Trip/recovery counters of one guarded run (all zero on clean streams
/// except steps/validation_passes/checkpoints_saved).
struct GuardTelemetry {
  size_t steps = 0;             ///< StepLazy calls seen by the guard.
  size_t validation_passes = 0; ///< O(|Ω|) input scans (== slices seen).
  size_t input_trips = 0;       ///< NaN/Inf payload, empty Ω, shape mismatch.
  size_t health_trips = 0;      ///< Norm explosion or NRE spike post-step.
  size_t skips = 0;             ///< Trips resolved by skip (incl. input trips).
  size_t rollbacks = 0;         ///< Ring-checkpoint restores.
  size_t reinits = 0;           ///< Post-Initialize snapshot restores.
  size_t checkpoints_saved = 0; ///< Ring writes (wraps after slots).
  size_t recoveries = 0;        ///< Fault episodes closed.
  /// Per closed episode: slices from the last trip until the NRE probe
  /// returned to baseline (1 = the very next slice was already healthy).
  std::vector<size_t> steps_to_recover;
};

/// Wraps (and owns) a StreamingMethod, adding validation, health watch,
/// checkpoint rotation, and degrade-on-trip. Forwards everything else.
class StreamGuard : public StreamingMethod {
 public:
  explicit StreamGuard(std::unique_ptr<StreamingMethod> inner,
                       StreamGuardOptions options = {});
  /// Waits for an in-flight async checkpoint before tearing down.
  ~StreamGuard() override;

  std::string name() const override { return inner_->name() + "+guard"; }
  size_t init_window() const override { return inner_->init_window(); }

  /// Forwards to the inner method after fail-fast validating the window
  /// (init is offline — bad input there is a data bug, not a stream fault),
  /// then captures the kReinit snapshot and seeds the checkpoint ring.
  std::vector<DenseTensor> Initialize(
      const std::vector<DenseTensor>& slices,
      const std::vector<Mask>& masks) override;

  StepResult StepLazy(const DenseTensor& y, const Mask& omega,
                      std::shared_ptr<const CooList> pattern =
                          nullptr) override;

  bool SupportsForecast() const override {
    return inner_->SupportsForecast();
  }
  StepResult ForecastLazy(size_t h) const override {
    return inner_->ForecastLazy(h);
  }

  /// Forwards the pool to the inner method and, when it is a ShardExecutor,
  /// keeps a handle so ring-checkpoint serialization moves onto the
  /// executor's aux lane: the O(state) write then overlaps the caller's
  /// scoring and next-slice ingest instead of serializing with them.
  void AdoptWorkerPool(std::shared_ptr<WorkerPool> pool) override;

  /// The guard itself checkpoints by delegating to the inner method (its
  /// own counters are telemetry, not model state).
  bool SupportsStateCheckpoint() const override {
    return inner_->SupportsStateCheckpoint();
  }
  void SaveState(std::ostream& out) const override {
    SyncCheckpoint();
    inner_->SaveState(out);
  }
  void RestoreState(std::istream& in) override {
    SyncCheckpoint();
    inner_->RestoreState(in);
  }

  const GuardTelemetry& telemetry() const { return telemetry_; }
  const StreamingMethod& inner() const { return *inner_; }

 private:
  /// True when checkpoint/restore degradation is available.
  bool CanCheckpoint() const;
  /// Serializes the inner state into the next ring slot — asynchronously on
  /// the adopted executor's aux lane when one is available.
  void SaveCheckpoint();
  /// Blocks until the in-flight async checkpoint (if any) has landed.
  /// Called before every inner-state mutation or read-back (next step,
  /// restore, external SaveState, pool swap, destruction), which is what
  /// keeps async saves bitwise identical to synchronous ones.
  void SyncCheckpoint() const;
  /// Captures the snapshot kReinit restores (post-Initialize state, or the
  /// pristine pre-first-step state of init-less methods).
  void CaptureReinitSnapshot();
  /// Applies the degradation policy to the inner state after a health trip.
  /// Returns true when a ring checkpoint was restored (the inner clock then
  /// lags the stream by one slice and must be advanced).
  bool DegradeState();
  /// Advances the inner method over a faulted slice with an empty-Ω step
  /// (zero data): the slice contributes nothing, but the method's temporal
  /// state keeps its phase — skipping the time slot entirely would
  /// desynchronize every seasonal model behind it.
  void AdvanceInnerClock();
  /// The estimate returned for a faulted slice: forecast-impute when the
  /// inner method can, else an all-zero slice (NRE <= 1, always finite).
  StepResult DegradedEstimate(const Shape& shape);
  /// Post-step health verdict from the probe NRE and factor norm.
  bool Healthy(double probe_nre, double norm) const;
  /// Rolling-baseline bookkeeping of an accepted step + recovery tracking.
  void AcceptStep(double probe_nre, double norm);
  /// Trip bookkeeping shared by input and health faults.
  void BeginFault();

  std::unique_ptr<StreamingMethod> inner_;
  StreamGuardOptions options_;
  GuardTelemetry telemetry_;

  // Async-checkpoint state: set when the adopted pool is a ShardExecutor.
  std::shared_ptr<WorkerPool> adopted_pool_;
  ShardExecutor* executor_ = nullptr;  ///< Non-owning view of adopted_pool_.
  mutable uint64_t pending_ticket_ = 0;  ///< 0 = no save in flight.

  Shape expected_shape_;  ///< Slice shape locked in by the first valid slice.

  // Rolling health baselines over the last health_window accepted steps.
  std::deque<double> nre_window_;
  std::deque<double> norm_window_;
  std::deque<double> payload_window_;  ///< max |y| of accepted slices.
  size_t accepted_steps_ = 0;

  // Checkpoint ring (serialized inner states) + the kReinit snapshot.
  // Slot strings are reused across saves (clear keeps capacity), so
  // steady-state checkpointing is a serialize-in-place, not an allocate +
  // deep-copy per step.
  std::vector<std::string> ring_;
  std::string reinit_snapshot_;
  size_t steps_since_checkpoint_ = 0;

  // Fault-episode tracking.
  bool in_fault_ = false;
  size_t steps_since_fault_ = 0;  ///< Slices since the episode's last trip.
  double frozen_baseline_ = 0.0;  ///< Pre-fault NRE baseline of the episode.
  /// Ring slots already consumed by rollbacks of the current episode: the
  /// next rollback restores `checkpoints_saved - 1 - depth`. Reset when a
  /// fresh (health-accepted) checkpoint lands or the episode closes.
  size_t episode_rollback_depth_ = 0;

  std::vector<double> probe_scratch_;  ///< Probe y-values (reused).
  std::vector<size_t> probe_linear_;   ///< Probe linear indices (reused).
  std::vector<size_t> probe_idx_;      ///< Delinearize scratch.
};

}  // namespace sofia

#endif  // SOFIA_EVAL_STREAM_GUARD_H_
