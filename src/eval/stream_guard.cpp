#include "eval/stream_guard.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "eval/metrics.hpp"
#include "obs/obs.hpp"
#include "tensor/coo_list.hpp"
#include "util/check.hpp"

namespace sofia {

namespace {

/// Registry mirrors of GuardTelemetry (the struct stays as the per-run
/// compatibility view; these accumulate process-wide for the stats
/// emitter and obs_report).
struct GuardMetrics {
  obs::Counter* steps;
  obs::Counter* validation_passes;
  obs::Counter* input_trips;
  obs::Counter* health_trips;
  obs::Counter* skips;
  obs::Counter* rollbacks;
  obs::Counter* reinits;
  obs::Counter* checkpoints;
  obs::Counter* recoveries;
  obs::Counter* checkpoint_time_us;
  obs::Histogram* checkpoint_us;
};

GuardMetrics& Gm() {
  obs::Registry& r = obs::Registry::Global();
  static GuardMetrics m{
      r.FindOrCreateCounter("guard.steps"),
      r.FindOrCreateCounter("guard.validation_passes"),
      r.FindOrCreateCounter("guard.input_trips"),
      r.FindOrCreateCounter("guard.health_trips"),
      r.FindOrCreateCounter("guard.skips"),
      r.FindOrCreateCounter("guard.rollbacks"),
      r.FindOrCreateCounter("guard.reinits"),
      r.FindOrCreateCounter("guard.checkpoints"),
      r.FindOrCreateCounter("guard.recoveries"),
      r.FindOrCreateCounter("time.guard.checkpoint_us"),
      r.FindOrCreateHistogram("guard.checkpoint_us"),
  };
  return m;
}

/// streambuf that appends straight into a caller-owned string. Checkpoint
/// slots pass their ring string here so a save serializes in place and
/// reuses the slot's capacity — the previous ostringstream + `out.str()`
/// deep copy allocated twice per accepted step and dominated guarded wall
/// time for O(state)-heavy methods.
class StringSink : public std::streambuf {
 public:
  explicit StringSink(std::string* out) : out_(out) {}

 protected:
  int_type overflow(int_type ch) override {
    if (!traits_type::eq_int_type(ch, traits_type::eof())) {
      out_->push_back(traits_type::to_char_type(ch));
    }
    return traits_type::not_eof(ch);
  }
  std::streamsize xsputn(const char* s, std::streamsize n) override {
    out_->append(s, static_cast<size_t>(n));
    return n;
  }

 private:
  std::string* out_;
};

/// Serializes `method` state into `slot`, reusing its capacity. Runs on
/// the caller thread or the executor's aux lane — the timing lands in the
/// same histogram either way, so checkpoint cost is visible even when it
/// is hidden off the critical path.
void SerializeInto(const StreamingMethod& method, std::string* slot) {
  const bool measured = obs::Enabled() || obs::TraceActive();
  const uint64_t start = measured ? obs::NowNs() : 0;
  slot->clear();
  StringSink sink(slot);
  std::ostream out(&sink);
  method.SaveState(out);
  if (measured) {
    const uint64_t dur = obs::NowNs() - start;
    Gm().checkpoint_time_us->Add(dur / 1000);
    Gm().checkpoint_us->Observe(static_cast<double>(dur) / 1e3);
    if (obs::TraceActive()) {
      obs::TraceRecord("guard.checkpoint", start, dur, slot->size(), "bytes");
    }
  }
}

double WindowMean(const std::deque<double>& window) {
  if (window.empty()) return 0.0;
  double sum = 0.0;
  for (double v : window) sum += v;
  return sum / static_cast<double>(window.size());
}

double WindowMax(const std::deque<double>& window) {
  double max_v = 0.0;
  for (double v : window) max_v = std::max(max_v, v);
  return max_v;
}

}  // namespace

const char* GuardPolicyName(GuardPolicy policy) {
  switch (policy) {
    case GuardPolicy::kSkipSlice:
      return "skip";
    case GuardPolicy::kRollback:
      return "rollback";
    case GuardPolicy::kReinit:
      return "reinit";
  }
  return "unknown";
}

GuardPolicy ParseGuardPolicy(const std::string& name) {
  if (name == "skip") return GuardPolicy::kSkipSlice;
  if (name == "rollback") return GuardPolicy::kRollback;
  if (name == "reinit") return GuardPolicy::kReinit;
  SOFIA_CHECK(false) << "unknown guard policy '" << name
                     << "' (expected skip | rollback | reinit)";
  return GuardPolicy::kSkipSlice;
}

StreamGuard::StreamGuard(std::unique_ptr<StreamingMethod> inner,
                         StreamGuardOptions options)
    : inner_(std::move(inner)), options_(options) {
  SOFIA_CHECK(inner_ != nullptr) << "StreamGuard needs a method to wrap";
  ring_.resize(options_.checkpoint_slots);
}

StreamGuard::~StreamGuard() {
  // An in-flight aux-lane save reads inner_ and writes a ring slot; both
  // die with this object, so land it first.
  SyncCheckpoint();
}

void StreamGuard::AdoptWorkerPool(std::shared_ptr<WorkerPool> pool) {
  SyncCheckpoint();  // A pool swap must not orphan an in-flight save.
  adopted_pool_ = pool;
  executor_ = dynamic_cast<ShardExecutor*>(pool.get());
  inner_->AdoptWorkerPool(std::move(pool));
}

bool StreamGuard::CanCheckpoint() const {
  return inner_->SupportsStateCheckpoint() && options_.checkpoint_slots > 0;
}

void StreamGuard::SaveCheckpoint() {
  const size_t slot = telemetry_.checkpoints_saved % ring_.size();
  ++telemetry_.checkpoints_saved;
  Gm().checkpoints->Add(1);
  // A fresh health-accepted checkpoint is the new best rollback target:
  // restart any in-episode walk-back from it.
  episode_rollback_depth_ = 0;
  if (executor_ != nullptr) {
    // Serialize on the executor's aux lane: the O(state) write overlaps the
    // caller's scoring of this step and the next slice's ingest. The job
    // only *reads* inner state, and every inner-state mutation first passes
    // SyncCheckpoint(), so the serialized bytes match a synchronous save
    // exactly (checkpoint_test.cc pins restore parity).
    StreamingMethod* inner = inner_.get();
    std::string* dst = &ring_[slot];
    pending_ticket_ =
        executor_->Submit([inner, dst] { SerializeInto(*inner, dst); });
    return;
  }
  SerializeInto(*inner_, &ring_[slot]);
}

void StreamGuard::SyncCheckpoint() const {
  if (executor_ != nullptr && pending_ticket_ != 0) {
    executor_->Wait(pending_ticket_);
    pending_ticket_ = 0;
  }
}

void StreamGuard::CaptureReinitSnapshot() {
  SerializeInto(*inner_, &reinit_snapshot_);
}

std::vector<DenseTensor> StreamGuard::Initialize(
    const std::vector<DenseTensor>& slices, const std::vector<Mask>& masks) {
  // Init is an offline batch: a non-finite value here is a data bug the
  // caller must fix (the stream_io loader rejects them too), not a stream
  // fault to degrade around — so validation fails fast.
  for (size_t t = 0; t < slices.size(); ++t) {
    SOFIA_CHECK(t >= masks.size() ||
                slices[t].shape() == masks[t].shape())
        << name() << ": init slice " << t << " shape "
        << slices[t].shape().ToString() << " != mask shape";
    ++telemetry_.validation_passes;
    Gm().validation_passes->Add(1);
    const DenseTensor& slice = slices[t];
    const Mask& mask = masks[t];
    double slice_max = 0.0;
    for (size_t k = 0; k < slice.NumElements(); ++k) {
      SOFIA_CHECK(!mask.Get(k) || std::isfinite(slice[k]))
          << name() << ": init slice " << t
          << " contains a non-finite observed value";
      if (mask.Get(k)) slice_max = std::max(slice_max, std::fabs(slice[k]));
    }
    // Seed the payload-scale baseline so the watch is armed from the very
    // first streamed slice.
    payload_window_.push_back(slice_max);
    if (payload_window_.size() > options_.health_window) {
      payload_window_.pop_front();
    }
  }
  SyncCheckpoint();  // Initialize mutates inner state.
  std::vector<DenseTensor> completed = inner_->Initialize(slices, masks);
  if (!slices.empty()) expected_shape_ = slices.front().shape();
  if (CanCheckpoint()) CaptureReinitSnapshot();
  return completed;
}

void StreamGuard::BeginFault() {
  if (!in_fault_) {
    frozen_baseline_ = nre_window_.empty() ? options_.nre_floor
                                           : WindowMean(nre_window_);
    in_fault_ = true;
  }
  steps_since_fault_ = 0;
}

bool StreamGuard::DegradeState() {
  SyncCheckpoint();  // Restores mutate inner state and read ring slots.
  switch (options_.policy) {
    case GuardPolicy::kSkipSlice:
      ++telemetry_.skips;
      Gm().skips->Add(1);
      return false;
    case GuardPolicy::kRollback: {
      // Walk back through the ring across consecutive trips of one fault
      // episode: the first trip restores the newest slot, a renewed trip
      // (the restored checkpoint was itself poisoned, so the next step
      // tripped again) the one before it, and so on until the ring's
      // history is exhausted — then fall through to the reinit snapshot.
      const size_t available =
          std::min(telemetry_.checkpoints_saved, ring_.size());
      if (CanCheckpoint() && episode_rollback_depth_ < available) {
        const size_t slot =
            (telemetry_.checkpoints_saved - 1 - episode_rollback_depth_) %
            ring_.size();
        ++episode_rollback_depth_;
        std::istringstream in(ring_[slot]);
        inner_->RestoreState(in);
        ++telemetry_.rollbacks;
        Gm().rollbacks->Add(1);
        // The restored state predates the steps accepted since that save.
        steps_since_checkpoint_ = 0;
        return true;  // The restored clock lags the stream by one slice.
      }
      break;  // History exhausted: fall through to the reinit snapshot.
    }
    case GuardPolicy::kReinit:
      break;
  }
  if (!reinit_snapshot_.empty()) {
    std::istringstream in(reinit_snapshot_);
    inner_->RestoreState(in);
    if (options_.policy == GuardPolicy::kRollback) {
      ++telemetry_.rollbacks;
      Gm().rollbacks->Add(1);
    } else {
      ++telemetry_.reinits;
      Gm().reinits->Add(1);
    }
    return false;  // A reinit resets the phase; there is nothing to align.
  }
  ++telemetry_.skips;  // Nothing to restore: state keeps whatever it has.
  Gm().skips->Add(1);
  return false;
}

void StreamGuard::AdvanceInnerClock() {
  if (expected_shape_.order() == 0) return;  // No valid slice seen yet.
  inner_->StepLazy(DenseTensor(expected_shape_), Mask(expected_shape_, false));
}

StepResult StreamGuard::DegradedEstimate(const Shape& shape) {
  // Forecast-imputation needs a method that both forecasts and has seen
  // data; otherwise an all-zero estimate keeps the score finite (NRE <= 1).
  // The horizon is always 1: faulted slices advance the inner clock, so
  // the model's "now" tracks the stream even across fault runs.
  const bool has_state = accepted_steps_ > 0 || inner_->init_window() > 0;
  if (inner_->SupportsForecast() && has_state) {
    return inner_->ForecastLazy(1);
  }
  return StepResult::Dense(DenseTensor(shape));
}

bool StreamGuard::Healthy(double probe_nre, double norm) const {
  if (!std::isfinite(probe_nre) || !std::isfinite(norm)) return false;
  if (accepted_steps_ < options_.min_history) return true;  // Warm-up.
  const double nre_base =
      std::max(WindowMean(nre_window_), options_.nre_floor);
  if (probe_nre > options_.nre_spike_factor * nre_base) return false;
  const double norm_base = WindowMax(norm_window_);
  if (norm_base > 0.0 &&
      norm > options_.norm_explosion_factor * norm_base) {
    return false;
  }
  return true;
}

void StreamGuard::AcceptStep(double probe_nre, double norm) {
  nre_window_.push_back(probe_nre);
  if (nre_window_.size() > options_.health_window) nre_window_.pop_front();
  norm_window_.push_back(norm);
  if (norm_window_.size() > options_.health_window) norm_window_.pop_front();
  ++accepted_steps_;
  if (in_fault_) {
    ++steps_since_fault_;
    const double threshold = options_.recover_factor *
                             std::max(frozen_baseline_, options_.nre_floor);
    if (probe_nre <= threshold) {
      in_fault_ = false;
      ++telemetry_.recoveries;
      Gm().recoveries->Add(1);
      telemetry_.steps_to_recover.push_back(steps_since_fault_);
      steps_since_fault_ = 0;
      episode_rollback_depth_ = 0;  // The episode's walk-back is over.
    }
  }
}

StepResult StreamGuard::StepLazy(const DenseTensor& y, const Mask& omega,
                                 std::shared_ptr<const CooList> pattern) {
  ++telemetry_.steps;
  Gm().steps->Add(1);
  // Land the previous step's async checkpoint before anything below can
  // mutate inner state (the inner step, clock advances, restores).
  SyncCheckpoint();
  // Init-less methods: their pristine state is the kReinit target, captured
  // before the first slice can touch it.
  if (reinit_snapshot_.empty() && CanCheckpoint()) CaptureReinitSnapshot();

  // --- Layer 1a: shape validation (O(1)) -------------------------------
  const bool shape_ok =
      y.shape() == omega.shape() &&
      (expected_shape_.order() == 0 || y.shape() == expected_shape_) &&
      (pattern == nullptr || pattern->shape() == y.shape());
  if (!shape_ok) {
    ++telemetry_.input_trips;
    Gm().input_trips->Add(1);
    BeginFault();
    ++telemetry_.skips;
    Gm().skips->Add(1);
    StepResult degraded = DegradedEstimate(
        expected_shape_.order() != 0 ? expected_shape_ : y.shape());
    AdvanceInnerClock();  // Keep the inner phase aligned with the stream.
    return degraded;
  }
  if (expected_shape_.order() == 0) expected_shape_ = y.shape();

  // Standalone use (no comparison runner): build the pattern once here and
  // hand it to the inner method, replacing — not duplicating — its own
  // build.
  if (pattern == nullptr) {
    pattern = std::make_shared<const CooList>(CooList::Build(omega));
  }

  // --- Layer 1b: the single O(|Ω|) payload scan ------------------------
  // Doubles as the collection pass of the strided health probe, so the
  // probe values come for free.
  ++telemetry_.validation_passes;
  Gm().validation_passes->Add(1);
  const size_t nnz = pattern->nnz();
  const size_t probe_cap = std::max<size_t>(1, options_.health_probe_entries);
  const size_t stride = std::max<size_t>(1, nnz / probe_cap);
  probe_linear_.clear();
  probe_scratch_.clear();
  bool finite = true;
  double slice_max = 0.0;
  for (size_t k = 0; k < nnz; ++k) {
    const double v = y[pattern->LinearIndex(k)];
    if (!std::isfinite(v)) {
      finite = false;
      break;
    }
    slice_max = std::max(slice_max, std::fabs(v));
    if (k % stride == 0 && probe_linear_.size() < probe_cap) {
      probe_linear_.push_back(pattern->LinearIndex(k));
      probe_scratch_.push_back(v);
    }
  }
  // Payload-scale watch: huge-but-finite garbage saturates the NRE probe
  // near 1 (the garbage is the *reference*), so it must be caught here by
  // magnitude, before the inner method sees it.
  const double payload_base = WindowMax(payload_window_);
  const bool payload_ok =
      options_.payload_explosion_factor <= 0.0 || payload_base <= 0.0 ||
      slice_max <= options_.payload_explosion_factor * payload_base;
  if (!finite || nnz == 0 || !payload_ok) {
    ++telemetry_.input_trips;
    Gm().input_trips->Add(1);
    BeginFault();
    ++telemetry_.skips;  // Input never reached the inner method: state is
                         // clean, every policy degrades by skipping.
    Gm().skips->Add(1);
    StepResult degraded = DegradedEstimate(y.shape());
    AdvanceInnerClock();  // Keep the inner phase aligned with the stream.
    return degraded;
  }

  // --- The actual step --------------------------------------------------
  StepResult result = inner_->StepLazy(y, omega, pattern);

  // --- Layer 2: health watch -------------------------------------------
  const double norm = result.MaxAbsComponent();
  GatheredError probe;
  for (size_t i = 0; i < probe_linear_.size(); ++i) {
    expected_shape_.DelinearizeInto(probe_linear_[i], &probe_idx_);
    const double estimate = result.at(probe_idx_);
    const double reference = probe_scratch_[i];
    probe.err_sq += (estimate - reference) * (estimate - reference);
    probe.ref_sq += reference * reference;
    ++probe.count;
  }
  const double probe_nre = GatheredNre(probe);
  if (!Healthy(probe_nre, norm)) {
    ++telemetry_.health_trips;
    Gm().health_trips->Add(1);
    BeginFault();
    const bool rolled_back = DegradeState();
    StepResult degraded = DegradedEstimate(y.shape());
    // A rollback restores a clock that has not yet consumed this slice;
    // advance it (kSkipSlice's inner already consumed it, and kReinit
    // deliberately resets phase).
    if (rolled_back) AdvanceInnerClock();
    return degraded;
  }

  // --- Layer 3: accept + checkpoint cadence ----------------------------
  AcceptStep(probe_nre, norm);
  payload_window_.push_back(slice_max);
  if (payload_window_.size() > options_.health_window) {
    payload_window_.pop_front();
  }
  if (CanCheckpoint()) {
    ++steps_since_checkpoint_;
    if (steps_since_checkpoint_ >= options_.checkpoint_every) {
      SaveCheckpoint();
      steps_since_checkpoint_ = 0;
    }
  }
  return result;
}

}  // namespace sofia
