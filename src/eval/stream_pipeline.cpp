#include "eval/stream_pipeline.hpp"

#include <algorithm>
#include <utility>

#include "baselines/observed_sweep.hpp"
#include "eval/run_helpers.hpp"
#include "obs/obs.hpp"
#include "tensor/csf_tensor.hpp"
#include "util/check.hpp"
#include "util/stopwatch.hpp"

namespace sofia {

using eval_detail::AttachGuardTelemetry;
using eval_detail::BuildEvalPattern;
using eval_detail::FinalizeRunMetrics;
using eval_detail::RunInitWindow;
using eval_detail::ScoreScratch;
using eval_detail::ScoreStep;

namespace {

/// Registry handles for the pipeline stages, looked up once. The time.*
/// counters partition the driver thread's wall clock: init + ingest +
/// stall + compute + score must account for time.pipeline.wall_us
/// (ingest_async runs on the aux lane and overlaps, so it is reported but
/// not part of the driver identity — tools/obs_report pins the sum).
struct PipelineMetrics {
  obs::Counter* init_us;
  obs::Counter* ingest_us;
  obs::Counter* ingest_async_us;
  obs::Counter* stall_us;
  obs::Counter* compute_us;
  obs::Counter* score_us;
  obs::Counter* wall_us;
  obs::Counter* steps;
  obs::Counter* windows;
  obs::Counter* pattern_builds;
  obs::Counter* pattern_reuses;
  obs::Histogram* step_latency_us;
  obs::Gauge* arena_growth;
};

PipelineMetrics& Metrics() {
  obs::Registry& r = obs::Registry::Global();
  static PipelineMetrics m{
      r.FindOrCreateCounter("time.pipeline.init_us"),
      r.FindOrCreateCounter("time.pipeline.ingest_us"),
      r.FindOrCreateCounter("time.pipeline.ingest_async_us"),
      r.FindOrCreateCounter("time.pipeline.stall_us"),
      r.FindOrCreateCounter("time.pipeline.compute_us"),
      r.FindOrCreateCounter("time.pipeline.score_us"),
      r.FindOrCreateCounter("time.pipeline.wall_us"),
      r.FindOrCreateCounter("pipeline.steps"),
      r.FindOrCreateCounter("pipeline.windows"),
      r.FindOrCreateCounter("pipeline.pattern_builds"),
      r.FindOrCreateCounter("pipeline.pattern_reuses"),
      r.FindOrCreateHistogram("pipeline.step_latency_us"),
      r.FindOrCreateGauge("pipeline.arena_growth_events"),
  };
  return m;
}

}  // namespace

StreamPipeline::StreamPipeline(const CorruptedStream& stream,
                               const std::vector<DenseTensor>& truth,
                               StreamEvalOptions options)
    : stream_(stream), truth_(truth), options_(std::move(options)) {
  SOFIA_CHECK_EQ(stream_.slices.size(), truth_.size());
  if (options_.pipeline_depth == 0) options_.pipeline_depth = 1;
  if (options_.window == 0) options_.window = 1;
  const size_t workers = ResolveNumThreads(
      options_.workers != 0 ? options_.workers : options_.num_threads);
  ring_.resize(options_.pipeline_depth);
  for (std::vector<SliceIngest>& slot : ring_) slot.resize(options_.window);
  tickets_.assign(options_.pipeline_depth, 0);
  executor_ = std::make_unique<ShardExecutor>(workers);
}

StreamPipeline::~StreamPipeline() {
  // executor_ is declared last, so it is destroyed first — its destructor
  // drains the aux lane while the ring and cache it references still exist.
}

size_t StreamPipeline::NumWindows(size_t limit) const {
  return (limit + options_.window - 1) / options_.window;
}

void StreamPipeline::IngestWindow(size_t w, size_t limit) {
  Stopwatch timer;
  std::vector<SliceIngest>& slot = ring_[w % ring_.size()];
  const size_t begin = w * options_.window;
  const size_t end = std::min(begin + options_.window, limit);
  for (size_t t = begin; t < end; ++t) {
    SliceIngest& ingest = slot[t - begin];
    const Mask& omega = stream_.masks[t];
    if (!cache_mask_.valid() || !cache_mask_.Matches(omega)) {
      std::shared_ptr<const CooList> previous = std::move(cache_pattern_);
      cache_pattern_ = MakeSharedPattern(omega);
      if (options_.pattern_storage == PatternStorage::kCsf) {
        // Attach once (every method adopts it), patching the previous
        // pattern's trees forward on low-churn mask changes instead of
        // recompiling from scratch.
        EnsureCsfDelta(*cache_pattern_, previous);
      }
      cache_eval_ = BuildEvalPattern(*cache_pattern_,
                                     options_.max_eval_entries);
      SparseMask next = SparseMask::FromCoo(*cache_pattern_);
      // Rebuild telemetry: how far did the mask actually move? (The first
      // build has no predecessor and logs no delta.)
      if (cache_mask_.valid()) {
        pattern_delta_sizes_.push_back(cache_mask_.DeltaSize(next));
      }
      cache_mask_ = std::move(next);
      ++pattern_builds_;
    } else {
      ++pattern_reuses_;
    }
    ingest.pattern = cache_pattern_;
    ingest.eval_pattern = cache_eval_;
    cache_pattern_->GatherInto(truth_[t], &ingest.truth_observed);
    cache_eval_->GatherInto(truth_[t], &ingest.truth_missing);
  }
  ++telemetry_.ingest_jobs;
  telemetry_.ingest_seconds += timer.ElapsedSeconds();
}

void StreamPipeline::SubmitIngest(size_t w, size_t limit) {
  tickets_[w % tickets_.size()] = executor_->Submit([this, w, limit] {
    obs::ObsSpan span("pipeline.ingest_async", Metrics().ingest_async_us, w,
                      "window");
    IngestWindow(w, limit);
  });
}

std::vector<MethodRunResult> StreamPipeline::Run(
    const std::vector<StreamingMethod*>& methods, size_t limit) {
  obs::ObsSpan run_span("pipeline.run", Metrics().wall_us);
  const size_t total =
      limit == 0 ? truth_.size() : std::min(limit, truth_.size());
  const size_t depth = options_.pipeline_depth;

  // Fresh cache + telemetry per Run; the executor (and its warm arena)
  // persists across calls.
  cache_mask_ = SparseMask();
  cache_pattern_.reset();
  cache_eval_.reset();
  pattern_builds_ = 0;
  pattern_reuses_ = 0;
  pattern_delta_sizes_.clear();
  telemetry_ = PipelineTelemetry{};
  telemetry_.workers = executor_->num_threads();
  telemetry_.pipeline_depth = depth;
  telemetry_.window = options_.window;
  telemetry_.steps = total;
  const uint64_t arena_base = executor_->arena()->growth_events();
  uint64_t arena_after_first_window = arena_base;

  // The executor is shared with every method (via the AdoptWorkerPool seam)
  // and drives the scoring gathers; serial consumers ignore a 1-thread
  // pool. Aliasing shared_ptr: the pipeline owns the executor, adoption is
  // borrowed and revoked (AdoptWorkerPool(nullptr)) before Run returns.
  std::shared_ptr<WorkerPool> adopted(executor_.get(),
                                      [](WorkerPool*) {});
  WorkerPool* gather_pool =
      executor_->num_threads() > 1 ? executor_.get() : nullptr;

  std::vector<MethodRunResult> out(methods.size());
  std::vector<size_t> windows(methods.size(), 0);
  std::vector<std::vector<DenseTensor>> completions(methods.size());
  {
    obs::ObsSpan init_span("pipeline.init", Metrics().init_us,
                           methods.size(), "methods");
    for (size_t m = 0; m < methods.size(); ++m) {
      StreamingMethod* method = methods[m];
      method->AdoptWorkerPool(adopted);
      out[m].name = method->name();
      const size_t window = method->init_window();
      SOFIA_CHECK_LE(window, total);
      windows[m] = window;
      out[m].run.nre.reserve(total);
      out[m].run.step_seconds.reserve(total - window);
      completions[m] = RunInitWindow(method, stream_, window, &out[m].run);
    }
  }

  const size_t num_windows = NumWindows(total);
  if (depth > 1) {
    for (size_t w = 0; w < std::min(depth - 1, num_windows); ++w) {
      SubmitIngest(w, total);
    }
  }

  ScoreScratch scratch;
  for (size_t w = 0; w < num_windows; ++w) {
    Metrics().windows->Add(1);
    if (depth == 1) {
      obs::ObsSpan ingest_span("pipeline.ingest", Metrics().ingest_us, w,
                               "window");
      IngestWindow(w, total);
    } else {
      Stopwatch stall;
      {
        obs::ObsSpan stall_span("pipeline.stall", Metrics().stall_us, w,
                                "window");
        executor_->Wait(tickets_[w % depth]);
      }
      telemetry_.ingest_stall_seconds += stall.ElapsedSeconds();
      // Keep the ring full: window w's slot frees up after this compute
      // pass; w + depth - 1 is the furthest window the ring can hold.
      if (w + depth - 1 < num_windows) SubmitIngest(w + depth - 1, total);
    }
    const std::vector<SliceIngest>& slot = ring_[w % ring_.size()];
    const size_t begin = w * options_.window;
    const size_t end = std::min(begin + options_.window, total);
    for (size_t t = begin; t < end; ++t) {
      const SliceIngest& ingest = slot[t - begin];
      for (size_t m = 0; m < methods.size(); ++m) {
        if (t < windows[m]) {
          // Init-window slice: score the stored completion at the same
          // entry sets (Dense handles are not lazy materializations).
          StepResult completed =
              StepResult::Dense(std::move(completions[m][t]));
          obs::ObsSpan score_span("pipeline.score", Metrics().score_us, t,
                                  "slice");
          ScoreStep(completed, *ingest.pattern, *ingest.eval_pattern,
                    ingest.truth_observed, ingest.truth_missing, gather_pool,
                    &scratch, &out[m].run);
          continue;
        }
        StepResult estimate;
        Stopwatch timer;
        {
          obs::ObsSpan compute_span("pipeline.step.compute",
                                    Metrics().compute_us, t, "slice");
          if (options_.force_dense) {
            estimate = StepResult::Dense(
                methods[m]->Step(stream_.slices[t], stream_.masks[t],
                                 ingest.pattern));
          } else {
            estimate = methods[m]->StepLazy(stream_.slices[t],
                                            stream_.masks[t], ingest.pattern);
          }
        }
        const double step_seconds = timer.ElapsedSeconds();
        out[m].run.step_seconds.push_back(step_seconds);
        Metrics().steps->Add(1);
        Metrics().step_latency_us->Observe(step_seconds * 1e6);
        {
          obs::ObsSpan score_span("pipeline.score", Metrics().score_us, t,
                                  "slice");
          ScoreStep(estimate, *ingest.pattern, *ingest.eval_pattern,
                    ingest.truth_observed, ingest.truth_missing, gather_pool,
                    &scratch, &out[m].run);
        }
        obs::StatsTick();
      }
    }
    if (w == 0) {
      arena_after_first_window = executor_->arena()->growth_events();
    }
  }

  // Land every in-flight aux job (tail ingest prefetches on an early
  // limit, async guard checkpoints) before reading shared telemetry.
  {
    // Draining counts as stall: the driver is blocked on the aux lane
    // (tail prefetches, async guard checkpoints).
    obs::ObsSpan drain_span("pipeline.drain", Metrics().stall_us);
    executor_->DrainAux();
  }
  telemetry_.arena_growth_total =
      executor_->arena()->growth_events() - arena_base;
  telemetry_.arena_growth_steady =
      executor_->arena()->growth_events() - arena_after_first_window;

  // Mirror the per-run pattern/arena telemetry onto the registry (the
  // struct fields stay as the per-run compatibility view).
  Metrics().pattern_builds->Add(pattern_builds_);
  Metrics().pattern_reuses->Add(pattern_reuses_);
  Metrics().arena_growth->Set(
      static_cast<double>(executor_->arena()->growth_events()));

  for (size_t m = 0; m < methods.size(); ++m) {
    FinalizeRunMetrics(windows[m], &out[m].run);
    // The pattern cache and runtime are shared, so every method reports
    // the same rebuild + pipeline telemetry.
    out[m].run.pattern_builds = pattern_builds_;
    out[m].run.pattern_reuses = pattern_reuses_;
    out[m].run.pattern_delta_sizes = pattern_delta_sizes_;
    out[m].run.pipelined = true;
    out[m].run.pipeline = telemetry_;
    AttachGuardTelemetry(methods[m], &out[m].run);
    methods[m]->AdoptWorkerPool(nullptr);
  }
  return out;
}

std::vector<MethodRunResult> RunStreamPipeline(
    const std::vector<StreamingMethod*>& methods,
    const CorruptedStream& stream, const std::vector<DenseTensor>& truth,
    const StreamEvalOptions& options) {
  StreamPipeline pipeline(stream, truth, options);
  return pipeline.Run(methods);
}

}  // namespace sofia
