#include "eval/streaming_method.hpp"

#include "util/check.hpp"

namespace sofia {

std::vector<DenseTensor> StreamingMethod::Initialize(
    const std::vector<DenseTensor>& slices, const std::vector<Mask>& masks) {
  (void)slices;
  (void)masks;
  SOFIA_CHECK(false) << name() << " declared no init window";
  return {};
}

DenseTensor StreamingMethod::Forecast(size_t h) const {
  (void)h;
  SOFIA_CHECK(false) << name() << " does not support forecasting";
  return {};
}

}  // namespace sofia
