#include "eval/streaming_method.hpp"

#include <utility>

#include "util/check.hpp"

namespace sofia {

std::vector<DenseTensor> StreamingMethod::Initialize(
    const std::vector<DenseTensor>& slices, const std::vector<Mask>& masks) {
  (void)slices;
  (void)masks;
  SOFIA_CHECK(false) << name() << " declared no init window";
  return {};
}

void StreamingMethod::SaveState(std::ostream& out) const {
  (void)out;
  SOFIA_CHECK(false) << name() << " does not support state checkpoints";
}

void StreamingMethod::RestoreState(std::istream& in) {
  (void)in;
  SOFIA_CHECK(false) << name() << " does not support state checkpoints";
}

DenseTensor StreamingMethod::Step(const DenseTensor& y, const Mask& omega) {
  return StepLazy(y, omega).ReleaseImputed();
}

DenseTensor StreamingMethod::Step(const DenseTensor& y, const Mask& omega,
                                  std::shared_ptr<const CooList> pattern) {
  return StepLazy(y, omega, std::move(pattern)).ReleaseImputed();
}

DenseTensor StreamingMethod::Forecast(size_t h) const {
  return ForecastLazy(h).ReleaseImputed();
}

StepResult StreamingMethod::ForecastLazy(size_t h) const {
  (void)h;
  SOFIA_CHECK(false) << name() << " does not support forecasting";
  return {};
}

}  // namespace sofia
