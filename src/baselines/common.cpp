#include "baselines/common.hpp"

#include "linalg/solve.hpp"
#include "tensor/kruskal.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace sofia {

namespace {

/// Walks the observed entries of a slice, handing the callback the
/// multi-index, the entry value (minus `subtract`), and the per-rank factor
/// products h_r = ⊛_l u^(l)_{i_l}.
template <typename Fn>
void ForEachObserved(const DenseTensor& y, const Mask& omega,
                     const DenseTensor* subtract,
                     const std::vector<Matrix>& factors, Fn&& fn) {
  const Shape& shape = y.shape();
  const size_t rank = factors[0].cols();
  std::vector<size_t> idx(shape.order(), 0);
  std::vector<double> h(rank);
  for (size_t linear = 0; linear < shape.NumElements(); ++linear) {
    if (omega.Get(linear)) {
      for (size_t r = 0; r < rank; ++r) h[r] = 1.0;
      for (size_t l = 0; l < factors.size(); ++l) {
        const double* row = factors[l].Row(idx[l]);
        for (size_t r = 0; r < rank; ++r) h[r] *= row[r];
      }
      const double value = y[linear] - (subtract ? (*subtract)[linear] : 0.0);
      fn(idx, linear, value, h);
    }
    shape.Next(&idx);
  }
}

}  // namespace

std::vector<double> SolveTemporalRow(const DenseTensor& y, const Mask& omega,
                                     const DenseTensor* subtract,
                                     const std::vector<Matrix>& factors,
                                     double ridge) {
  const size_t rank = factors[0].cols();
  Matrix b(rank, rank);
  std::vector<double> c(rank, 0.0);
  ForEachObserved(y, omega, subtract, factors,
                  [&](const std::vector<size_t>&, size_t, double value,
                      const std::vector<double>& h) {
                    for (size_t r = 0; r < rank; ++r) {
                      c[r] += value * h[r];
                      double* brow = b.Row(r);
                      for (size_t q = 0; q < rank; ++q) {
                        brow[q] += h[r] * h[q];
                      }
                    }
                  });
  for (size_t r = 0; r < rank; ++r) b(r, r) += ridge;
  return SolveRidge(b, c);
}

std::vector<Matrix> FactorGradients(
    const DenseTensor& y, const Mask& omega, const DenseTensor* subtract,
    const std::vector<Matrix>& factors, const std::vector<double>& w,
    std::vector<std::vector<double>>* row_traces) {
  const Shape& shape = y.shape();
  const size_t rank = factors[0].cols();
  const size_t num_modes = factors.size();
  std::vector<Matrix> grads;
  grads.reserve(num_modes);
  for (const Matrix& f : factors) grads.emplace_back(f.rows(), rank, 0.0);
  if (row_traces != nullptr) {
    row_traces->assign(num_modes, {});
    for (size_t l = 0; l < num_modes; ++l) {
      (*row_traces)[l].assign(factors[l].rows(), 0.0);
    }
  }

  std::vector<size_t> idx(shape.order(), 0);
  std::vector<double> prefix((num_modes + 1) * rank);
  std::vector<double> suffix((num_modes + 1) * rank);
  for (size_t linear = 0; linear < shape.NumElements(); ++linear) {
    if (omega.Get(linear)) {
      for (size_t r = 0; r < rank; ++r) prefix[r] = 1.0;
      for (size_t l = 0; l < num_modes; ++l) {
        const double* row = factors[l].Row(idx[l]);
        const double* cur = &prefix[l * rank];
        double* nxt = &prefix[(l + 1) * rank];
        for (size_t r = 0; r < rank; ++r) nxt[r] = cur[r] * row[r];
      }
      for (size_t r = 0; r < rank; ++r) suffix[num_modes * rank + r] = 1.0;
      for (size_t l = num_modes; l-- > 0;) {
        const double* row = factors[l].Row(idx[l]);
        const double* cur = &suffix[(l + 1) * rank];
        double* nxt = &suffix[l * rank];
        for (size_t r = 0; r < rank; ++r) nxt[r] = cur[r] * row[r];
      }
      // Residual of this entry at the current state.
      double recon = 0.0;
      const double* full = &prefix[num_modes * rank];
      for (size_t r = 0; r < rank; ++r) recon += full[r] * w[r];
      const double value = y[linear] - (subtract ? (*subtract)[linear] : 0.0);
      const double resid = value - recon;
      for (size_t l = 0; l < num_modes; ++l) {
        double* grow = grads[l].Row(idx[l]);
        double* trace =
            row_traces ? &(*row_traces)[l][idx[l]] : nullptr;
        const double* pre = &prefix[l * rank];
        const double* suf = &suffix[(l + 1) * rank];
        for (size_t r = 0; r < rank; ++r) {
          const double reg = pre[r] * suf[r] * w[r];
          if (trace != nullptr) *trace += reg * reg;
          if (resid != 0.0) grow[r] += resid * reg;
        }
      }
    }
    shape.Next(&idx);
  }
  return grads;
}

std::vector<Matrix> RandomNontemporalFactors(const Shape& slice_shape,
                                             size_t rank, uint64_t seed) {
  Rng rng(seed);
  std::vector<Matrix> factors;
  factors.reserve(slice_shape.order());
  for (size_t n = 0; n < slice_shape.order(); ++n) {
    factors.push_back(
        Matrix::Random(slice_shape.dim(n), rank, rng, 0.0, 1.0));
  }
  return factors;
}

SliceRowSystems BuildSliceRowSystems(const DenseTensor& y, const Mask& omega,
                                     const DenseTensor* subtract,
                                     const std::vector<Matrix>& factors,
                                     const std::vector<double>& w,
                                     size_t mode) {
  const size_t rank = factors[0].cols();
  SliceRowSystems sys;
  sys.b.assign(factors[mode].rows(), Matrix(rank, rank));
  sys.c.assign(factors[mode].rows(), std::vector<double>(rank, 0.0));
  std::vector<double> h(rank);
  ForEachObserved(
      y, omega, subtract, factors,
      [&](const std::vector<size_t>& idx, size_t, double value,
          const std::vector<double>&) {
        // Leave-one-out regressor h = w ⊛ (⊛_{l != mode} u^(l)), seeded
        // with w and multiplied through in mode order — the exact
        // accumulation the observed-entry kernel (CooWeightedRowSystems)
        // performs, so the two paths agree bitwise.
        for (size_t r = 0; r < rank; ++r) h[r] = w[r];
        for (size_t l = 0; l < factors.size(); ++l) {
          if (l == mode) continue;
          const double* row = factors[l].Row(idx[l]);
          for (size_t r = 0; r < rank; ++r) h[r] *= row[r];
        }
        Matrix& b = sys.b[idx[mode]];
        std::vector<double>& c = sys.c[idx[mode]];
        for (size_t r = 0; r < rank; ++r) {
          c[r] += value * h[r];
          double* brow = b.Row(r);
          for (size_t q = 0; q < rank; ++q) brow[q] += h[r] * h[q];
        }
      });
  return sys;
}

}  // namespace sofia
