#include "baselines/batch_als.hpp"

#include "core/sofia_als.hpp"
#include "util/rng.hpp"

namespace sofia {

BatchAlsResult BatchAls(const DenseTensor& y, const Mask& omega,
                        const BatchAlsOptions& options) {
  Rng rng(options.seed);
  std::vector<Matrix> factors;
  factors.reserve(y.order());
  for (size_t n = 0; n < y.order(); ++n) {
    factors.push_back(Matrix::Random(y.dim(n), options.rank, rng, 0.0, 1.0));
  }

  // SOFIA_ALS with the smoothness penalties disabled *is* vanilla ALS for
  // incomplete tensors; reuse the sweep engine instead of duplicating it.
  SofiaConfig config;
  config.rank = options.rank;
  config.max_als_iterations = options.max_iterations;
  config.tolerance = options.tolerance;
  DenseTensor no_outliers(y.shape(), 0.0);
  SofiaAlsResult als = SofiaAls(y, omega, no_outliers, config, &factors,
                                /*smooth_temporal=*/false);

  BatchAlsResult result;
  result.factors = std::move(factors);
  result.completed = std::move(als.completed);
  result.fitness = als.fitness;
  result.sweeps = als.sweeps;
  return result;
}

}  // namespace sofia
