#include "baselines/olstec.hpp"

#include <utility>

#include "baselines/common.hpp"
#include "linalg/vector_ops.hpp"
#include "util/check.hpp"
#include "util/state_io.hpp"

namespace sofia {

void Olstec::SaveState(std::ostream& out) const {
  state_io::BeginState(out, "olstec", 1);
  state_io::WriteMatrixList(out, factors_);
  out << cov_.size() << '\n';
  for (const auto& mode_cov : cov_) state_io::WriteMatrixList(out, mode_cov);
}

void Olstec::RestoreState(std::istream& in) {
  state_io::ReadStateHeader(in, "olstec", 1);
  factors_ = state_io::ReadMatrixList(in);
  size_t modes = 0;
  state_io::Require(static_cast<bool>(in >> modes) && modes <= 16,
                    "corrupt olstec checkpoint");
  cov_.clear();
  cov_.reserve(modes);
  for (size_t n = 0; n < modes; ++n) {
    cov_.push_back(state_io::ReadMatrixList(in));
  }
}

/// One entry's RLS update, applied to every mode's factor row: the regressor
/// is h = w ⊛ (⊛_{l != mode} u^(l)) and the target is the entry value; P and
/// the row are updated with exponential forgetting. Entries must be visited
/// in the same (ascending linear) order on both paths — the update is
/// order-dependent, which is also why the sweep stays sequential.
template <typename IndexArray>
void Olstec::RlsUpdate(const IndexArray& idx, double value,
                       const std::vector<double>& w, std::vector<double>* h_buf,
                       std::vector<double>* ph_buf) {
  const size_t rank = options_.rank;
  const double lambda_f = options_.forgetting;
  std::vector<double>& h = *h_buf;
  std::vector<double>& ph = *ph_buf;
  for (size_t mode = 0; mode < factors_.size(); ++mode) {
    for (size_t r = 0; r < rank; ++r) {
      double p = w[r];
      for (size_t l = 0; l < factors_.size(); ++l) {
        if (l != mode) p *= factors_[l](idx[l], r);
      }
      h[r] = p;
    }
    Matrix& p_mat = cov_[mode][idx[mode]];
    // Gain k = P h / (λ_f + h^T P h); P <- (P - k h^T P) / λ_f.
    for (size_t r = 0; r < rank; ++r) {
      const double* prow = p_mat.Row(r);
      double s = 0.0;
      for (size_t q = 0; q < rank; ++q) s += prow[q] * h[q];
      ph[r] = s;
    }
    const double denom = lambda_f + Dot(h, ph);
    double* urow = factors_[mode].Row(idx[mode]);
    double pred = 0.0;
    for (size_t r = 0; r < rank; ++r) pred += urow[r] * h[r];
    const double err = value - pred;
    for (size_t r = 0; r < rank; ++r) {
      const double gain = ph[r] / denom;
      urow[r] += gain * err;
      double* prow = p_mat.Row(r);
      for (size_t q = 0; q < rank; ++q) {
        prow[q] = (prow[q] - gain * ph[q]) / lambda_f;
      }
    }
  }
}

StepResult Olstec::StepLazy(const DenseTensor& y, const Mask& omega,
                            std::shared_ptr<const CooList> pattern) {
  return StepShared(y, omega, std::move(pattern), /*want_result=*/true);
}

void Olstec::Observe(const DenseTensor& y, const Mask& omega) {
  StepShared(y, omega, nullptr, /*want_result=*/false);
}

StepResult Olstec::StepShared(const DenseTensor& y, const Mask& omega,
                              std::shared_ptr<const CooList> pattern,
                              bool want_result) {
  const size_t rank = options_.rank;
  if (factors_.empty()) {
    factors_ = RandomNontemporalFactors(y.shape(), rank, options_.seed);
    cov_.resize(factors_.size());
    for (size_t l = 0; l < factors_.size(); ++l) {
      cov_[l].assign(factors_[l].rows(), Matrix::Identity(rank) *
                                             options_.delta);
    }
  }
  if (!sweep_.sparse()) return StepDense(y, omega, want_result);

  sweep_.BeginStep(y, omega, std::move(pattern));
  const CooList& coo = sweep_.pattern();
  const std::vector<double>& values = sweep_.values();

  std::vector<double> w =
      sweep_.SolveTemporalRow(factors_, values, options_.ridge);

  // Row-wise RLS sweep over the compacted records, in ascending linear
  // order (the bucket-free record order) — exactly the dense scan's visit
  // order restricted to Ω_t.
  std::vector<double> h(rank), ph(rank);
  for (size_t k = 0; k < coo.nnz(); ++k) {
    RlsUpdate(coo.Coords(k), values[k], w, &h, &ph);
  }

  if (!want_result) return StepResult();
  // Re-solve the temporal row against the refreshed factors; the estimate
  // stays lazy as the (factors, row) Kruskal structure.
  w = sweep_.SolveTemporalRow(factors_, values, options_.ridge);
  return StepResult::Kruskal(factors_, std::move(w));
}

StepResult Olstec::StepDense(const DenseTensor& y, const Mask& omega,
                             bool want_result) {
  const size_t rank = options_.rank;
  std::vector<double> w =
      SolveTemporalRow(y, omega, nullptr, factors_, options_.ridge);

  const Shape& shape = y.shape();
  std::vector<size_t> idx(shape.order(), 0);
  std::vector<double> h(rank), ph(rank);
  for (size_t linear = 0; linear < shape.NumElements(); ++linear) {
    if (omega.Get(linear)) {
      RlsUpdate(idx, y[linear], w, &h, &ph);
    }
    shape.Next(&idx);
  }

  if (!want_result) return StepResult();
  // Re-solve the temporal row against the refreshed factors.
  w = SolveTemporalRow(y, omega, nullptr, factors_, options_.ridge);
  return StepResult::Kruskal(factors_, std::move(w));
}

}  // namespace sofia
