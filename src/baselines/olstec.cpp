#include "baselines/olstec.hpp"

#include "baselines/common.hpp"
#include "linalg/vector_ops.hpp"
#include "tensor/kruskal.hpp"
#include "util/check.hpp"

namespace sofia {

DenseTensor Olstec::Step(const DenseTensor& y, const Mask& omega) {
  const size_t rank = options_.rank;
  if (factors_.empty()) {
    factors_ = RandomNontemporalFactors(y.shape(), rank, options_.seed);
    cov_.resize(factors_.size());
    for (size_t l = 0; l < factors_.size(); ++l) {
      cov_[l].assign(factors_[l].rows(), Matrix::Identity(rank) *
                                             options_.delta);
    }
  }

  std::vector<double> w =
      SolveTemporalRow(y, omega, nullptr, factors_, options_.ridge);

  // Row-wise RLS sweep over the observed entries: for each entry and each
  // mode, the regressor is h = w ⊛ (⊛_{l != mode} u^(l)) and the target is
  // the entry value; P and the row are updated with exponential forgetting.
  const Shape& shape = y.shape();
  const double lambda_f = options_.forgetting;
  std::vector<size_t> idx(shape.order(), 0);
  std::vector<double> h(rank), ph(rank);
  for (size_t linear = 0; linear < shape.NumElements(); ++linear) {
    if (omega.Get(linear)) {
      for (size_t mode = 0; mode < factors_.size(); ++mode) {
        for (size_t r = 0; r < rank; ++r) {
          double p = w[r];
          for (size_t l = 0; l < factors_.size(); ++l) {
            if (l != mode) p *= factors_[l](idx[l], r);
          }
          h[r] = p;
        }
        Matrix& p_mat = cov_[mode][idx[mode]];
        // Gain k = P h / (λ_f + h^T P h); P <- (P - k h^T P) / λ_f.
        for (size_t r = 0; r < rank; ++r) {
          const double* prow = p_mat.Row(r);
          double s = 0.0;
          for (size_t q = 0; q < rank; ++q) s += prow[q] * h[q];
          ph[r] = s;
        }
        const double denom = lambda_f + Dot(h, ph);
        double* urow = factors_[mode].Row(idx[mode]);
        double pred = 0.0;
        for (size_t r = 0; r < rank; ++r) pred += urow[r] * h[r];
        const double err = y[linear] - pred;
        for (size_t r = 0; r < rank; ++r) {
          const double gain = ph[r] / denom;
          urow[r] += gain * err;
          double* prow = p_mat.Row(r);
          for (size_t q = 0; q < rank; ++q) {
            prow[q] = (prow[q] - gain * ph[q]) / lambda_f;
          }
        }
      }
    }
    shape.Next(&idx);
  }

  // Re-solve the temporal row against the refreshed factors.
  w = SolveTemporalRow(y, omega, nullptr, factors_, options_.ridge);
  return KruskalSlice(factors_, w);
}

}  // namespace sofia
