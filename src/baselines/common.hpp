#ifndef SOFIA_BASELINES_COMMON_H_
#define SOFIA_BASELINES_COMMON_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/solve.hpp"
#include "tensor/dense_tensor.hpp"
#include "tensor/mask.hpp"

/// \file common.hpp
/// \brief Shared dense-scan kernels for the streaming baselines.
///
/// Every streaming CP method repeats the same two motifs on each incoming
/// slice: (a) solve for the temporal row w_t given the non-temporal factors
/// (a ridge-regularized R x R normal-equation solve over the observed
/// entries), and (b) push the factors toward the residual (gradient or
/// closed-form row updates). These helpers implement both motifs once, with
/// leave-one-out factor products computed via prefix/suffix arrays.
///
/// They walk the full dense index space and now serve as the parity-tested
/// reference path (`use_sparse_kernels = false`) for the observed-entry
/// implementations in baselines/observed_sweep.hpp, which realize the same
/// motifs in O(|Ω_t|) per pass.

namespace sofia {

/// Solves `min_w ||Ω ⊛ (Y - O - [[factors; w]])||^2 + ridge ||w||^2`.
/// `subtract` may be null (treated as zero, the common case).
std::vector<double> SolveTemporalRow(const DenseTensor& y, const Mask& omega,
                                     const DenseTensor* subtract,
                                     const std::vector<Matrix>& factors,
                                     double ridge);

/// Gradients of `0.5 ||Ω ⊛ (Y - O - [[factors; w]])||^2` w.r.t. each
/// non-temporal factor, all evaluated at the *current* factors (so a caller
/// can apply them simultaneously, as the papers' update rules prescribe).
/// Returned matrices have the factor shapes. `subtract` may be null.
/// If `row_traces` is non-null it receives, per mode and per row, the trace
/// of the instantaneous Gauss-Newton Hessian of that row (sum of squared
/// regressors) — callers use it to cap SGD steps inside the stability
/// region, standing in for the per-dataset step grid search the paper
/// performed for its baselines.
std::vector<Matrix> FactorGradients(
    const DenseTensor& y, const Mask& omega, const DenseTensor* subtract,
    const std::vector<Matrix>& factors, const std::vector<double>& w,
    std::vector<std::vector<double>>* row_traces = nullptr);

/// Random U[0,1) factor matrices for the non-temporal modes of `slice_shape`.
std::vector<Matrix> RandomNontemporalFactors(const Shape& slice_shape,
                                             size_t rank, uint64_t seed);

/// Per-row normal equations of a slice: for each row i of mode `mode`,
/// B_i = Σ h h^T and c_i = Σ (y - o) h over observed entries with that row
/// index, where h = w ⊛ (⊛_{l != mode} u^(l)_{i_l}).
struct SliceRowSystems {
  std::vector<Matrix> b;
  std::vector<std::vector<double>> c;
};
SliceRowSystems BuildSliceRowSystems(const DenseTensor& y, const Mask& omega,
                                     const DenseTensor* subtract,
                                     const std::vector<Matrix>& factors,
                                     const std::vector<double>& w,
                                     size_t mode);

/// Closed-form proximal row updates of MAST / OR-MSTC:
/// u_i <- (B_i + μI)^{-1} (c_i + μ u_i^prev) for every row of `u`, via the
/// shared ProximalRowSolve (linalg/solve.hpp) — the same arithmetic the
/// fused observed-entry kernel (CooProximalRowUpdates) runs, so the two
/// paths stay bitwise aligned. Templated so it accepts both the dense
/// SliceRowSystems and the observed-entry RowSystems (any type with
/// aligned `b` / `c` vectors).
template <typename Systems>
void ApplyProximalRowUpdates(const Systems& sys, const Matrix& previous,
                             double mu, Matrix* u) {
  const size_t rank = u->cols();
  std::vector<double> a(rank * rank);
  std::vector<double> rhs(rank);
  for (size_t i = 0; i < u->rows(); ++i) {
    ProximalRowSolve(sys.b[i].data(), sys.c[i].data(), previous.Row(i), mu,
                     rank, a.data(), rhs.data(), u->Row(i));
  }
}

}  // namespace sofia

#endif  // SOFIA_BASELINES_COMMON_H_
