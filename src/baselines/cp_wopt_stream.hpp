#ifndef SOFIA_BASELINES_CP_WOPT_STREAM_H_
#define SOFIA_BASELINES_CP_WOPT_STREAM_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "baselines/cp_wopt.hpp"
#include "eval/streaming_method.hpp"
#include "linalg/matrix.hpp"

/// \file cp_wopt_stream.hpp
/// \brief Streaming adapter for CP-WOPT (Acar et al. [9]).
///
/// The batch CP-WOPT solver completes one incomplete tensor by joint
/// first-order optimization. Streamed, each incoming slice is completed by
/// a short warm-started quasi-Newton run on that slice's masked
/// least-squares loss: the previous step's factors seed the next step, so
/// the per-step iteration budget stays small while the factors track the
/// stream. This is the standard "re-optimize per window" adaptation the
/// comparison protocols need to place the batch method on the same axis as
/// the streaming baselines.

namespace sofia {

/// Options for CpWoptStream.
struct CpWoptStreamOptions {
  size_t rank = 5;
  int iterations_per_step = 10;      ///< Quasi-Newton cap per slice.
  double gradient_tolerance = 1e-6;  ///< Early-exit tolerance per slice.
  uint64_t seed = 37;
  /// Worker threads for the observed-entry loss/gradient kernels (0 = use
  /// the hardware concurrency).
  size_t num_threads = 1;
};

/// Streaming CP-WOPT (no init window; no forecasting).
class CpWoptStream : public StreamingMethod {
 public:
  explicit CpWoptStream(CpWoptStreamOptions options) : options_(options) {}

  std::string name() const override { return "CP-WOPT"; }

  /// Warm-started per-slice completion; the estimate stays lazy as the
  /// slice's own Kruskal structure (unit combination weights).
  StepResult StepLazy(const DenseTensor& y, const Mask& omega,
                      std::shared_ptr<const CooList> pattern =
                          nullptr) override;

  bool SupportsStateCheckpoint() const override { return true; }
  void SaveState(std::ostream& out) const override;
  void RestoreState(std::istream& in) override;

  const std::vector<Matrix>& factors() const { return factors_; }

 private:
  CpWoptStreamOptions options_;
  std::vector<Matrix> factors_;  ///< Previous slice's factors (warm start).
};

}  // namespace sofia

#endif  // SOFIA_BASELINES_CP_WOPT_STREAM_H_
