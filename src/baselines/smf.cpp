#include "baselines/smf.hpp"

#include <algorithm>
#include <utility>

#include "linalg/solve.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/state_io.hpp"

namespace sofia {

void Smf::SaveState(std::ostream& out) const {
  state_io::BeginState(out, "smf", 1);
  state_io::WriteShape(out, slice_shape_);
  out << (loadings_ != nullptr ? 1 : 0) << '\n';
  if (loadings_ != nullptr) state_io::WriteMatrix(out, *loadings_);
  state_io::WriteVector(out, level_);
  state_io::WriteVector(out, trend_);
  out << season_.size() << ' ' << season_pos_ << ' ' << steps_seen_ << '\n';
  for (const auto& s : season_) state_io::WriteVector(out, s);
}

void Smf::RestoreState(std::istream& in) {
  state_io::ReadStateHeader(in, "smf", 1);
  slice_shape_ = state_io::ReadShape(in);
  int has_loadings = 0;
  state_io::Require(static_cast<bool>(in >> has_loadings),
                    "corrupt smf checkpoint");
  // A fresh shared_ptr (never reusing the old allocation) keeps any live
  // StepLazy/ForecastLazy handles pointing at their snapshot.
  loadings_ = has_loadings != 0
                  ? std::make_shared<Matrix>(state_io::ReadMatrix(in))
                  : nullptr;
  level_ = state_io::ReadVector(in);
  trend_ = state_io::ReadVector(in);
  size_t seasons = 0;
  state_io::Require(
      static_cast<bool>(in >> seasons >> season_pos_ >> steps_seen_),
      "corrupt smf checkpoint");
  // Cap before resize: a bit-flipped count must read as corruption, not an
  // allocation. season_pos_ indexes season_, so it must stay in range too.
  state_io::Require(seasons <= (size_t{1} << 20) &&
                        (seasons == 0 || season_pos_ < seasons),
                    "corrupt smf checkpoint");
  season_.resize(seasons);
  for (auto& s : season_) s = state_io::ReadVector(in);
}

StepResult Smf::StepLazy(const DenseTensor& y, const Mask& omega,
                         std::shared_ptr<const CooList> pattern) {
  return StepShared(y, omega, std::move(pattern), /*want_result=*/true);
}

void Smf::Observe(const DenseTensor& y, const Mask& omega) {
  StepShared(y, omega, nullptr, /*want_result=*/false);
}

StepResult Smf::StepShared(const DenseTensor& y, const Mask& omega,
                           std::shared_ptr<const CooList> pattern,
                           bool want_result) {
  const size_t rank = options_.rank;
  const size_t m = options_.period;
  if (loadings_ == nullptr) {
    slice_shape_ = y.shape();
    Rng rng(options_.seed);
    loadings_ = std::make_shared<Matrix>(
        Matrix::Random(slice_shape_.NumElements(), rank, rng, 0.0, 1.0));
    level_.assign(rank, 0.0);
    trend_.assign(rank, 0.0);
    season_.assign(m, std::vector<double>(rank, 0.0));
  } else if (loadings_.use_count() > 1) {
    // A StepLazy/ForecastLazy handle still references the snapshot; clone
    // before the in-place drift (copy-on-write — the protocol loop drops
    // its handle before the next step, so this never fires there).
    loadings_ = std::make_shared<Matrix>(*loadings_);
  }
  SOFIA_CHECK(y.shape() == slice_shape_);
  Matrix& loadings = *loadings_;

  const bool sparse = sweep_.sparse();
  if (sparse) sweep_.BeginStep(y, omega, std::move(pattern));

  // Latent weights: ridge LS of the observed entries against A's rows. The
  // loading rows are keyed by the linear entry index, so the sparse path
  // walks the compacted records (same ascending order as the dense scan).
  Matrix b(rank, rank);
  std::vector<double> c(rank, 0.0);
  if (sparse) {
    const CooList& coo = sweep_.pattern();
    const std::vector<double>& values = sweep_.values();
    for (size_t k = 0; k < coo.nnz(); ++k) {
      const double* arow = loadings.Row(coo.LinearIndex(k));
      for (size_t r = 0; r < rank; ++r) {
        c[r] += values[k] * arow[r];
        double* brow = b.Row(r);
        for (size_t q = 0; q < rank; ++q) brow[q] += arow[r] * arow[q];
      }
    }
  } else {
    for (size_t k = 0; k < y.NumElements(); ++k) {
      if (!omega.Get(k)) continue;
      const double* arow = loadings.Row(k);
      for (size_t r = 0; r < rank; ++r) {
        c[r] += y[k] * arow[r];
        double* brow = b.Row(r);
        for (size_t q = 0; q < rank; ++q) brow[q] += arow[r] * arow[q];
      }
    }
  }
  for (size_t r = 0; r < rank; ++r) b(r, r) += options_.ridge;
  // Latent weights update incrementally, SMF-style: one capped gradient
  // step on the instantaneous LS objective starting from the seasonal
  // prediction. (During the first season there is no seasonal model yet, so
  // the exact LS solution seeds the state.) No outlier rejection anywhere —
  // that is the Table I gap the Fig. 6 experiment probes.
  std::vector<double> w(rank, 0.0);
  if (steps_seen_ < m) {
    w = SolveRidge(b, c);
  } else {
    double trace = 0.0;
    for (size_t r = 0; r < rank; ++r) {
      w[r] = level_[r] + trend_[r] + season_[season_pos_][r];
      trace += b(r, r);
    }
    const double mu = trace > 0.0
                          ? std::min(options_.learning_rate, 0.5 / trace)
                          : options_.learning_rate;
    std::vector<double> bw = MatVec(b, w);
    for (size_t r = 0; r < rank; ++r) {
      w[r] += 2.0 * mu * (c[r] - bw[r]);
    }
  }

  // SGD drift of the loadings toward the residual. Every loading row shares
  // the regressor w, so the per-row curvature trace is ||w||^2; capping the
  // step at 0.5 / ||w||^2 keeps the drift inside its stability region (the
  // paper grid-searched the step per dataset).
  double w_energy = 0.0;
  for (size_t r = 0; r < rank; ++r) w_energy += w[r] * w[r];
  const double mu = w_energy > 0.0
                        ? std::min(options_.learning_rate, 0.5 / w_energy)
                        : options_.learning_rate;
  if (sparse) {
    // Every record owns a distinct loading row (linear indices are unique
    // within a slice), so the drift touches only |Ω_t| rows.
    const CooList& coo = sweep_.pattern();
    const std::vector<double>& values = sweep_.values();
    for (size_t k = 0; k < coo.nnz(); ++k) {
      double* arow = loadings.Row(coo.LinearIndex(k));
      double recon = 0.0;
      for (size_t r = 0; r < rank; ++r) recon += arow[r] * w[r];
      const double resid = values[k] - recon;
      for (size_t r = 0; r < rank; ++r) {
        arow[r] += 2.0 * mu * resid * w[r];
      }
    }
  } else {
    for (size_t k = 0; k < y.NumElements(); ++k) {
      if (!omega.Get(k)) continue;
      double* arow = loadings.Row(k);
      double recon = 0.0;
      for (size_t r = 0; r < rank; ++r) recon += arow[r] * w[r];
      const double resid = y[k] - recon;
      for (size_t r = 0; r < rank; ++r) {
        arow[r] += 2.0 * mu * resid * w[r];
      }
    }
  }

  // Level/trend/seasonal update of the latent weights. During the first
  // season there is no seasonal history yet, so the seasonal slot simply
  // absorbs the de-leveled weight.
  for (size_t r = 0; r < rank; ++r) {
    const double s_old = season_[season_pos_][r];
    const double l_prev = level_[r];
    const double b_prev = trend_[r];
    double l_new, s_new;
    if (steps_seen_ < m) {
      l_new = steps_seen_ == 0 ? w[r]
                               : options_.level_alpha * w[r] +
                                     (1.0 - options_.level_alpha) *
                                         (l_prev + b_prev);
      s_new = w[r] - l_new;
    } else {
      l_new = options_.level_alpha * (w[r] - s_old) +
              (1.0 - options_.level_alpha) * (l_prev + b_prev);
      s_new = options_.season_gamma * (w[r] - l_prev - b_prev) +
              (1.0 - options_.season_gamma) * s_old;
    }
    trend_[r] = steps_seen_ == 0
                    ? 0.0
                    : options_.trend_beta * (l_new - l_prev) +
                          (1.0 - options_.trend_beta) * b_prev;
    level_[r] = l_new;
    season_[season_pos_][r] = s_new;
  }
  season_pos_ = (season_pos_ + 1) % m;
  ++steps_seen_;

  if (!want_result) return StepResult();

  // Reconstruction A w, kept lazy as the (loadings, weights) linear map.
  return StepResult::LinearMap(loadings_, std::move(w), slice_shape_);
}

StepResult Smf::ForecastLazy(size_t h) const {
  SOFIA_CHECK(loadings_ != nullptr) << "SMF has consumed no data";
  SOFIA_CHECK_GE(h, 1u);
  const size_t rank = options_.rank;
  const size_t m = options_.period;
  const std::vector<double>& s = season_[(season_pos_ + (h - 1)) % m];
  std::vector<double> w(rank);
  for (size_t r = 0; r < rank; ++r) {
    w[r] = level_[r] + static_cast<double>(h) * trend_[r] + s[r];
  }
  return StepResult::LinearMap(loadings_, std::move(w), slice_shape_);
}

}  // namespace sofia
