#ifndef SOFIA_BASELINES_OBSERVED_SWEEP_H_
#define SOFIA_BASELINES_OBSERVED_SWEEP_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "linalg/matrix.hpp"
#include "tensor/coo_list.hpp"
#include "tensor/csf_tensor.hpp"
#include "tensor/dense_tensor.hpp"
#include "tensor/mask.hpp"
#include "tensor/pattern_storage.hpp"
#include "tensor/sparse_kernels.hpp"
#include "tensor/sparse_mask.hpp"
#include "util/parallel.hpp"
#include "util/shard_executor.hpp"

/// \file observed_sweep.hpp
/// \brief Shared observed-entry solver core for the streaming baselines.
///
/// Every streaming CP baseline repeats the same per-slice motifs over the
/// observed set Ω_t: gather the observed values, solve the temporal row from
/// a global normal-equation system, accumulate per-row systems or gradients
/// with the temporal weight folded into the regressor, and evaluate the
/// Kruskal reconstruction at the observed entries. ObservedSweep packages
/// those motifs once on top of the CooList / sparse_kernels layer so each
/// baseline's sparse path costs O(|Ω_t|) per pass instead of scaling with
/// the slice volume (the same Lemma 1-2 argument that PRs 1-2 applied to
/// SOFIA itself), with:
///
/// - a mask-reuse pattern cache: the CooList depends only on the mask, so
///   identical consecutive masks (fixed sensor outages) skip the rebuild —
///   the only O(volume) term of a sparse step;
/// - shared patterns: comparison runners that drive several methods through
///   the same stream build each slice's CooList once (MakeSharedPattern) and
///   hand it to every method's BeginStep;
/// - a lazy per-instance ShardExecutor: all motifs partition work into units
///   owned by one thread (mode slices, fixed-size record blocks), so results
///   are bitwise identical for every `num_threads`.

namespace sofia {

/// Kernel-path knobs shared by every ported baseline (same naming and
/// semantics as SofiaConfig::{num_threads, use_sparse_kernels}).
struct ObservedSweepOptions {
  /// Worker threads for the observed-entry kernels; 0 = hardware
  /// concurrency. Results are bitwise identical for every setting.
  size_t num_threads = 1;
  /// Route the per-step inner loops through the observed-entry kernels;
  /// false selects the baseline's parity-tested dense-scan reference path.
  bool use_sparse_kernels = true;
  /// Reuse the cached CooList when the incoming mask is identical to the
  /// previous step's (exact: the structure depends only on the mask).
  bool reuse_step_pattern = true;
  /// Build the per-mode slice buckets when compacting a mask. Baselines
  /// that only stream the record list (SMF's linear-indexed sweeps,
  /// OLSTEC's sequential RLS) turn this off to skip the O(order |Ω_t|)
  /// bucket sort per pattern build; the bucketed motifs CHECK-fail if
  /// called without them. Adopted shared patterns keep whatever buckets
  /// they were built with.
  bool with_mode_buckets = true;
  /// Storage backend of the bound pattern: kCsf additionally compiles the
  /// pattern into per-mode fiber trees (tensor/csf_tensor.hpp, cached on
  /// the CooList so shared patterns compile once per distinct mask) and
  /// routes the bucketed motifs through the fiber-reuse kernels of
  /// tensor/csf_kernels.hpp. Regardless of this knob, an adopted shared
  /// pattern that already carries a CSF attachment is used as-is — the
  /// comparison runner's StreamEvalOptions::pattern_storage therefore
  /// routes every sweep-based method at once. Requires mode buckets.
  PatternStorage pattern_storage = PatternStorage::kCoo;
};

/// Build-once helper for sharing one mask's observed-entry pattern across
/// several consumers (all methods of a comparison run, or CP-WOPT's
/// loss/gradient pair within one quasi-Newton iterate).
std::shared_ptr<const CooList> MakeSharedPattern(const Mask& omega,
                                                 bool with_mode_buckets = true);

/// Per-baseline solver core: binds to one incoming slice at a time and
/// exposes the observed-entry motifs on the bound pattern. Stateful only in
/// the pattern cache and worker pool; all math goes through sparse_kernels.
class ObservedSweep {
 public:
  ObservedSweep() : ObservedSweep(ObservedSweepOptions{}) {}
  explicit ObservedSweep(const ObservedSweepOptions& options)
      : options_(options),
        resolved_threads_(ResolveNumThreads(options.num_threads)) {}

  const ObservedSweepOptions& options() const { return options_; }
  bool sparse() const { return options_.use_sparse_kernels; }

  /// Bind to the incoming slice: adopt `shared` when given (comparison
  /// mode), else reuse the cached pattern if the mask is unchanged, else
  /// build a fresh CooList with mode buckets. Always re-gathers the
  /// observed values of `y` (into a buffer reused across steps).
  void BeginStep(const DenseTensor& y, const Mask& omega,
                 std::shared_ptr<const CooList> shared = nullptr);

  /// Adopt an externally owned worker pool (one shared pool per comparison
  /// run instead of a lazily spawned pool per method). Kernel results are
  /// bitwise identical for every pool size, so adoption never changes a
  /// method's output. Pass nullptr to fall back to the internal pool.
  void AdoptPool(std::shared_ptr<WorkerPool> pool) {
    external_pool_ = std::move(pool);
  }

  /// The bound pattern (valid after BeginStep).
  const CooList& pattern() const;
  std::shared_ptr<const CooList> shared_pattern() const { return coo_; }
  /// The bound pattern's CSF attachment, or nullptr on the COO backend.
  const CsfTensor* csf() const { return csf_.get(); }
  size_t nnz() const { return pattern().nnz(); }
  /// Observed values of the bound slice, record-aligned.
  const std::vector<double>& values() const { return values_; }
  /// CooList builds performed by BeginStep (shared patterns excluded);
  /// stays flat across steps whose masks repeat.
  size_t pattern_builds() const { return pattern_builds_; }
  /// Unshared BeginStep calls that hit the mask-reuse cache instead of
  /// rebuilding — together with pattern_builds this pins the steady-state
  /// claim that repeated masks never re-compact.
  size_t pattern_reuses() const { return pattern_reuses_; }

  // --- Observed-entry motifs (all record-aligned, all deterministic) ----

  /// Global temporal normal equations B = Σ h h^T, c = Σ vals h with h the
  /// full Hadamard row product (CooNormalSystem on the bound pattern).
  NormalSystem TemporalSystem(const std::vector<Matrix>& factors,
                              const std::vector<double>& vals) const;

  /// Ridge-regularized temporal-row solve
  /// `min_w ||Ω ⊛ (Y* - [[factors; w]])||² + ridge ||w||²` — the sparse
  /// counterpart of baselines/common.hpp's SolveTemporalRow.
  std::vector<double> SolveTemporalRow(const std::vector<Matrix>& factors,
                                       const std::vector<double>& vals,
                                       double ridge) const;

  /// Per-row weighted normal equations of one mode (h = w ⊛ leave-one-out);
  /// the sparse counterpart of BuildSliceRowSystems.
  RowSystems WeightedRowSystems(const std::vector<Matrix>& factors,
                                const std::vector<double>& w,
                                const std::vector<double>& vals,
                                size_t mode) const;

  /// Fused WeightedRowSystems + proximal row solve (CooProximalRowUpdates):
  /// u_i <- (B_i + μI)^{-1} (c_i + μ u_i^prev), writing `u` in place. `u`
  /// may alias `factors[mode]`. Bitwise-matches ApplyProximalRowUpdates on
  /// the materialized systems.
  void ProximalRowSweep(const std::vector<Matrix>& factors,
                        const std::vector<double>& w,
                        const std::vector<double>& vals, size_t mode,
                        const Matrix& previous, double mu, Matrix* u) const;

  /// Per-mode gradient rows + curvature traces from record-aligned
  /// residuals; the sparse counterpart of FactorGradients. Pass
  /// `with_traces = false` to skip the curvature accumulation (row_trace
  /// stays empty) when only the gradients are consumed.
  ModeGradients Gradients(const std::vector<Matrix>& factors,
                          const std::vector<double>& w,
                          const std::vector<double>& residuals,
                          bool with_traces = true) const;

  /// [[factors; w]] evaluated at the observed entries (CooKruskalGather).
  std::vector<double> Reconstruct(const std::vector<Matrix>& factors,
                                  const std::vector<double>& w) const;

  /// Like Reconstruct, but replicating the KruskalSlice chain evaluation
  /// order bitwise (CooKruskalSliceGather) — for paths whose dense
  /// reference thresholds a materialized KruskalSlice residual. Always
  /// reads the COO records (which a CSF-backed pattern still carries):
  /// the bitwise pin to the dense chain order is the point, and the fiber
  /// traversal would regroup it. The result lives in a scratch buffer
  /// reused across calls and steps; it stays valid until the next
  /// SliceReconstruct on this sweep.
  const std::vector<double>& SliceReconstruct(
      const std::vector<Matrix>& factors, const std::vector<double>& w) const;

 private:
  /// The adopted pool when one was handed in; otherwise the lazily spawned
  /// internal pool, or nullptr (serial kernels) when a single thread is
  /// requested, so cheap baselines never pay for workers.
  WorkerPool* Pool() const;

  ObservedSweepOptions options_;
  size_t resolved_threads_ = 1;
  std::shared_ptr<const CooList> coo_;
  std::shared_ptr<const CsfTensor> csf_;  ///< Fiber trees of coo_ (kCsf).
  /// Pattern csf_ was built for, held as a shared_ptr: identity compare
  /// against coo_ without the ABA hazard of a raw address (a freed
  /// pattern's storage could be reused by the next build).
  std::shared_ptr<const CooList> csf_source_;
  std::vector<double> values_;
  // Mask-reuse cache as a SparseMask: O(|Ω|) storage and compare instead
  // of the dense indicator's O(volume) bytes (see tensor/sparse_mask.hpp);
  // default-constructed it is invalid and Matches() nothing.
  SparseMask mask_;
  size_t pattern_builds_ = 0;
  size_t pattern_reuses_ = 0;
  mutable std::unique_ptr<ShardExecutor> pool_;
  std::shared_ptr<WorkerPool> external_pool_;
  mutable std::vector<double> slice_gather_scratch_;
};

}  // namespace sofia

#endif  // SOFIA_BASELINES_OBSERVED_SWEEP_H_
