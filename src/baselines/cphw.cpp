#include "baselines/cphw.hpp"

#include "baselines/batch_als.hpp"
#include "util/check.hpp"
#include "util/state_io.hpp"

namespace sofia {

void Cphw::SaveState(std::ostream& out) const {
  state_io::BeginState(out, "cphw", 1);
  out << history_.size() << '\n';
  for (const auto& slice : history_) state_io::WriteTensor(out, *slice);
  for (const Mask& mask : mask_history_) state_io::WriteMask(out, mask);
}

void Cphw::RestoreState(std::istream& in) {
  state_io::ReadStateHeader(in, "cphw", 1);
  size_t steps = 0;
  state_io::Require(static_cast<bool>(in >> steps) &&
                        steps <= (size_t{1} << 20),
                    "corrupt cphw checkpoint");
  history_.clear();
  history_.reserve(steps);
  for (size_t t = 0; t < steps; ++t) {
    history_.push_back(
        std::make_shared<const DenseTensor>(state_io::ReadTensor(in)));
  }
  mask_history_.clear();
  mask_history_.reserve(steps);
  for (size_t t = 0; t < steps; ++t) {
    mask_history_.push_back(state_io::ReadMask(in));
  }
  // The factorization is derived state: refit lazily on the next forecast.
  fitted_ = false;
  nontemporal_.clear();
  hw_fits_.clear();
}

StepResult Cphw::StepLazy(const DenseTensor& y, const Mask& omega,
                          std::shared_ptr<const CooList> pattern) {
  (void)pattern;  // CPHW does no per-step observed-entry math.
  history_.push_back(std::make_shared<const DenseTensor>(y));
  mask_history_.push_back(omega);
  fitted_ = false;
  return StepResult::Masked(history_.back(), omega);
}

void Cphw::FitIfNeeded() const {
  if (fitted_) return;
  SOFIA_CHECK_GE(history_.size(), 2 * options_.period)
      << "CPHW needs two full seasons of history";

  DenseTensor batch = DenseTensor::StackSlices(history_);
  Mask omega = Mask::StackSlices(mask_history_);
  BatchAlsOptions als_options;
  als_options.rank = options_.rank;
  als_options.max_iterations = options_.max_iterations;
  als_options.tolerance = options_.tolerance;
  als_options.seed = options_.seed;
  BatchAlsResult als = BatchAls(batch, omega, als_options);

  Matrix temporal = als.factors.back();
  als.factors.pop_back();
  nontemporal_ = std::move(als.factors);
  hw_fits_.clear();
  hw_fits_.reserve(options_.rank);
  for (size_t r = 0; r < options_.rank; ++r) {
    hw_fits_.push_back(FitHoltWinters(temporal.ColVector(r), options_.period));
  }
  fitted_ = true;
}

StepResult Cphw::ForecastLazy(size_t h) const {
  SOFIA_CHECK_GE(h, 1u);
  FitIfNeeded();
  std::vector<double> row(options_.rank);
  for (size_t r = 0; r < options_.rank; ++r) {
    HoltWinters hw = ModelFromFit(hw_fits_[r], options_.period);
    row[r] = hw.Forecast(h);
  }
  return StepResult::Kruskal(nontemporal_, std::move(row));
}

}  // namespace sofia
