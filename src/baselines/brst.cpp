#include "baselines/brst.hpp"

#include <cmath>
#include <utility>

#include "baselines/common.hpp"
#include "linalg/solve.hpp"
#include "util/check.hpp"
#include "util/state_io.hpp"

namespace sofia {

void BrstLite::SaveState(std::ostream& out) const {
  state_io::BeginState(out, "brst-lite", 1);
  state_io::WriteMatrixList(out, factors_);
  state_io::WriteVector(out, ard_precision_);
  out << noise_var_ << '\n';
}

void BrstLite::RestoreState(std::istream& in) {
  state_io::ReadStateHeader(in, "brst-lite", 1);
  factors_ = state_io::ReadMatrixList(in);
  ard_precision_ = state_io::ReadVector(in);
  state_io::Require(static_cast<bool>(in >> noise_var_),
                    "corrupt brst-lite checkpoint");
}

StepResult BrstLite::StepLazy(const DenseTensor& y, const Mask& omega,
                              std::shared_ptr<const CooList> pattern) {
  return StepShared(y, omega, std::move(pattern), /*want_result=*/true);
}

void BrstLite::Observe(const DenseTensor& y, const Mask& omega) {
  StepShared(y, omega, nullptr, /*want_result=*/false);
}

StepResult BrstLite::StepShared(const DenseTensor& y, const Mask& omega,
                                std::shared_ptr<const CooList> pattern,
                                bool want_result) {
  const size_t rank = options_.rank;
  if (factors_.empty()) {
    factors_ = RandomNontemporalFactors(y.shape(), rank, options_.seed);
    ard_precision_.assign(rank, 1.0);
  }
  const double nu = options_.student_nu;

  if (sweep_.sparse()) {
    sweep_.BeginStep(y, omega, std::move(pattern));
    const std::vector<double>& values = sweep_.values();

    // Temporal row with ARD-weighted ridge: strongly-pruned columns are
    // pinned near zero.
    NormalSystem sys = sweep_.TemporalSystem(factors_, values);
    for (size_t r = 0; r < rank; ++r) {
      sys.b(r, r) += options_.ridge + noise_var_ * ard_precision_[r];
    }
    std::vector<double> w = SolveRidge(sys.b, sys.c);

    // Student-t responsibility gating: heavy residuals get weight ~ nu/r².
    // The gated pseudo-residuals g_k then drive the same gradient
    // accumulation as the dense scan, restricted to the records.
    std::vector<double> g = sweep_.Reconstruct(factors_, w);
    double weighted_sq = 0.0, weight_sum = 0.0;
    for (size_t k = 0; k < g.size(); ++k) {
      const double resid = values[k] - g[k];
      const double gate =
          (nu + 1.0) / (nu + resid * resid / std::max(noise_var_, 1e-12));
      weighted_sq += gate * resid * resid;
      weight_sum += gate;
      g[k] = gate * resid;
    }
    ModeGradients grads =
        sweep_.Gradients(factors_, w, g, /*with_traces=*/false);
    return FinishStep(std::move(w), std::move(grads.row_grads), weighted_sq,
                      weight_sum, want_result);
  }

  // Dense-scan reference path.
  const Shape& shape = y.shape();
  Matrix b(rank, rank);
  std::vector<double> c(rank, 0.0);
  std::vector<size_t> idx(shape.order(), 0);
  std::vector<double> h(rank);
  for (size_t linear = 0; linear < shape.NumElements(); ++linear) {
    if (omega.Get(linear)) {
      for (size_t r = 0; r < rank; ++r) {
        double p = 1.0;
        for (size_t l = 0; l < factors_.size(); ++l) {
          p *= factors_[l](idx[l], r);
        }
        h[r] = p;
      }
      for (size_t r = 0; r < rank; ++r) {
        c[r] += y[linear] * h[r];
        double* brow = b.Row(r);
        for (size_t q = 0; q < rank; ++q) brow[q] += h[r] * h[q];
      }
    }
    shape.Next(&idx);
  }
  for (size_t r = 0; r < rank; ++r) {
    b(r, r) += options_.ridge + noise_var_ * ard_precision_[r];
  }
  std::vector<double> w = SolveRidge(b, c);

  // Student-t responsibility gating: heavy residuals get weight ~ nu/r².
  std::vector<Matrix> grads;
  grads.reserve(factors_.size());
  for (const Matrix& f : factors_) grads.emplace_back(f.rows(), rank, 0.0);
  double weighted_sq = 0.0, weight_sum = 0.0;
  idx.assign(shape.order(), 0);
  for (size_t linear = 0; linear < shape.NumElements(); ++linear) {
    if (omega.Get(linear)) {
      double recon = 0.0;
      for (size_t r = 0; r < rank; ++r) {
        double p = w[r];
        for (size_t l = 0; l < factors_.size(); ++l) {
          p *= factors_[l](idx[l], r);
        }
        h[r] = p;  // h now holds per-rank contributions (w included).
        recon += p;
      }
      const double resid = y[linear] - recon;
      const double gate =
          (nu + 1.0) / (nu + resid * resid / std::max(noise_var_, 1e-12));
      weighted_sq += gate * resid * resid;
      weight_sum += gate;
      const double g = gate * resid;
      for (size_t l = 0; l < factors_.size(); ++l) {
        double* grow = grads[l].Row(idx[l]);
        for (size_t r = 0; r < rank; ++r) {
          // d recon / d u^(l)_r: the leave-one-out product seeded with w
          // and multiplied through in mode order — the exact accumulation
          // of the observed-entry kernel (CooModeGradients), so the two
          // paths agree bitwise.
          double loo = w[r];
          for (size_t l2 = 0; l2 < factors_.size(); ++l2) {
            if (l2 != l) loo *= factors_[l2](idx[l2], r);
          }
          grow[r] += g * loo;
        }
      }
    }
    shape.Next(&idx);
  }
  return FinishStep(std::move(w), std::move(grads), weighted_sq, weight_sum,
                    want_result);
}

StepResult BrstLite::FinishStep(std::vector<double> w,
                                std::vector<Matrix> grads,
                                double weighted_sq, double weight_sum,
                                bool want_result) {
  const size_t rank = options_.rank;
  // MAP gradient step with the ARD Gaussian prior: besides the data term,
  // each column r decays by its precision γ_r. Low-energy columns get a
  // large γ, decay further, and spiral into pruning — the rank-collapse
  // dynamic of variational robust factorization.
  for (size_t l = 0; l < factors_.size(); ++l) {
    grads[l] *= 2.0 * options_.learning_rate;
    factors_[l] += grads[l];
    for (size_t r = 0; r < rank; ++r) {
      const double decay = std::max(
          0.1, 1.0 - options_.learning_rate * noise_var_ *
                         ard_precision_[r] /
                         static_cast<double>(factors_[l].rows()));
      for (size_t i = 0; i < factors_[l].rows(); ++i) {
        factors_[l](i, r) *= decay;
      }
    }
  }
  if (weight_sum > 0.0) {
    noise_var_ = 0.9 * noise_var_ + 0.1 * (weighted_sq / weight_sum);
  }

  // ARD update: precision inversely proportional to column energy. Columns
  // with vanishing energy get an enormous precision, which pins their
  // temporal weights to zero on the next step — the rank-collapse dynamic.
  for (size_t r = 0; r < rank; ++r) {
    double energy = w[r] * w[r];
    size_t count = 1;
    for (const Matrix& f : factors_) {
      energy += f.ColNorm(r) * f.ColNorm(r);
      count += f.rows();
    }
    ard_precision_[r] = options_.ard_strength * static_cast<double>(count) /
                        std::max(energy, 1e-12);
  }

  if (!want_result) return StepResult();
  // Zero out the temporal weight of pruned columns in the reconstruction.
  for (size_t r = 0; r < rank; ++r) {
    double energy = 0.0;
    for (const Matrix& f : factors_) energy += f.ColNorm(r) * f.ColNorm(r);
    if (energy < options_.prune_threshold) w[r] = 0.0;
  }
  return StepResult::Kruskal(factors_, std::move(w));
}

size_t BrstLite::EffectiveRank() const {
  if (factors_.empty()) return options_.rank;
  size_t rank = 0;
  for (size_t r = 0; r < options_.rank; ++r) {
    // A column survives if every factor carries non-trivial energy in it
    // *and* ARD has not pinned it (precision below the pin level).
    double energy = 0.0;
    for (const Matrix& f : factors_) energy += f.ColNorm(r) * f.ColNorm(r);
    const bool pinned =
        ard_precision_[r] * noise_var_ > 1.0 / options_.prune_threshold;
    if (energy > options_.prune_threshold && !pinned) ++rank;
  }
  return rank;
}

}  // namespace sofia
