#ifndef SOFIA_BASELINES_ONLINE_SGD_H_
#define SOFIA_BASELINES_ONLINE_SGD_H_

#include <cstdint>
#include <vector>

#include "eval/streaming_method.hpp"
#include "linalg/matrix.hpp"

/// \file online_sgd.hpp
/// \brief OnlineSGD baseline (Mardani et al., TSP 2015 [11]).
///
/// Streaming CP factorization/completion under missing data: at every step
/// the temporal row is the regularized least-squares fit to the observed
/// entries and the non-temporal factors take one stochastic-gradient step on
/// the instantaneous reconstruction loss. No outlier handling, no
/// seasonality — the paper's Table I row for this method.

namespace sofia {

/// Options for OnlineSgd.
struct OnlineSgdOptions {
  size_t rank = 5;
  double learning_rate = 0.1;  ///< SGD step on the factors.
  double ridge = 1e-6;         ///< Tikhonov weight of the temporal solve.
  uint64_t seed = 7;
};

/// OnlineSGD streaming method (no init window).
class OnlineSgd : public StreamingMethod {
 public:
  explicit OnlineSgd(OnlineSgdOptions options) : options_(options) {}

  std::string name() const override { return "OnlineSGD"; }
  DenseTensor Step(const DenseTensor& y, const Mask& omega) override;

  const std::vector<Matrix>& factors() const { return factors_; }

 private:
  OnlineSgdOptions options_;
  std::vector<Matrix> factors_;  ///< Lazily created on the first slice.
};

}  // namespace sofia

#endif  // SOFIA_BASELINES_ONLINE_SGD_H_
