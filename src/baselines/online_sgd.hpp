#ifndef SOFIA_BASELINES_ONLINE_SGD_H_
#define SOFIA_BASELINES_ONLINE_SGD_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "baselines/observed_sweep.hpp"
#include "eval/streaming_method.hpp"
#include "linalg/matrix.hpp"

/// \file online_sgd.hpp
/// \brief OnlineSGD baseline (Mardani et al., TSP 2015 [11]).
///
/// Streaming CP factorization/completion under missing data: at every step
/// the temporal row is the regularized least-squares fit to the observed
/// entries and the non-temporal factors take one stochastic-gradient step on
/// the instantaneous reconstruction loss. No outlier handling, no
/// seasonality — the paper's Table I row for this method.

namespace sofia {

/// Options for OnlineSgd.
struct OnlineSgdOptions {
  size_t rank = 5;
  double learning_rate = 0.1;  ///< SGD step on the factors.
  double ridge = 1e-6;         ///< Tikhonov weight of the temporal solve.
  uint64_t seed = 7;
  /// Worker threads for the observed-entry kernels (0 = hardware
  /// concurrency); results are bitwise identical for every setting.
  size_t num_threads = 1;
  /// Route the temporal solve and gradient accumulation through the
  /// ObservedSweep core (O(|Ω_t| N R) per step); false selects the
  /// dense-scan reference path.
  bool use_sparse_kernels = true;
};

/// OnlineSGD streaming method (no init window).
class OnlineSgd : public StreamingMethod {
 public:
  explicit OnlineSgd(OnlineSgdOptions options)
      : options_(options),
        sweep_(ObservedSweepOptions{options.num_threads,
                                    options.use_sparse_kernels}) {}

  std::string name() const override { return "OnlineSGD"; }
  /// Lazy step: the refreshed factors + temporal row as a Kruskal-view
  /// StepResult (no dense reconstruction).
  StepResult StepLazy(const DenseTensor& y, const Mask& omega,
                      std::shared_ptr<const CooList> pattern =
                          nullptr) override;
  /// Advances the factors without building the estimate handle at all —
  /// the forecast-protocol fast path.
  void Observe(const DenseTensor& y, const Mask& omega) override;
  void AdoptWorkerPool(std::shared_ptr<WorkerPool> pool) override {
    sweep_.AdoptPool(std::move(pool));
  }

  bool SupportsStateCheckpoint() const override { return true; }
  void SaveState(std::ostream& out) const override;
  void RestoreState(std::istream& in) override;

  const std::vector<Matrix>& factors() const { return factors_; }

 private:
  StepResult StepShared(const DenseTensor& y, const Mask& omega,
                        std::shared_ptr<const CooList> pattern,
                        bool want_result);
  /// Capped SGD application shared by both paths (`grads` holds the descent
  /// accumulation, `traces` the per-row curvature).
  void ApplyGradients(const std::vector<Matrix>& grads,
                      const std::vector<std::vector<double>>& traces);

  OnlineSgdOptions options_;
  ObservedSweep sweep_;
  std::vector<Matrix> factors_;  ///< Lazily created on the first slice.
};

}  // namespace sofia

#endif  // SOFIA_BASELINES_ONLINE_SGD_H_
