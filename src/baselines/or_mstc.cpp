#include "baselines/or_mstc.hpp"

#include <utility>

#include "baselines/common.hpp"
#include "core/sofia_als.hpp"  // SoftThreshold
#include "linalg/solve.hpp"
#include "tensor/kruskal.hpp"
#include "util/state_io.hpp"

namespace sofia {

void OrMstc::SaveState(std::ostream& out) const {
  state_io::BeginState(out, "or-mstc", 1);
  state_io::WriteMatrixList(out, factors_);
}

void OrMstc::RestoreState(std::istream& in) {
  state_io::ReadStateHeader(in, "or-mstc", 1);
  factors_ = state_io::ReadMatrixList(in);
}

StepResult OrMstc::StepLazy(const DenseTensor& y, const Mask& omega,
                            std::shared_ptr<const CooList> pattern) {
  return StepShared(y, omega, std::move(pattern), /*want_result=*/true);
}

void OrMstc::Observe(const DenseTensor& y, const Mask& omega) {
  StepShared(y, omega, nullptr, /*want_result=*/false);
}

StepResult OrMstc::StepShared(const DenseTensor& y, const Mask& omega,
                              std::shared_ptr<const CooList> pattern,
                              bool want_result) {
  if (factors_.empty()) {
    factors_ = RandomNontemporalFactors(y.shape(), options_.rank,
                                        options_.seed);
  }
  if (!sweep_.sparse()) return StepDense(y, omega, want_result);

  const size_t rank = options_.rank;
  const double mu = options_.prox_weight;
  const std::vector<Matrix> previous = factors_;
  sweep_.BeginStep(y, omega, std::move(pattern));
  const std::vector<double>& values = sweep_.values();
  const size_t nnz = values.size();

  // The sparse slab is record-aligned: outliers exist only at observed
  // entries, so the dense O_t tensor of the reference path is never built.
  std::vector<double> outliers(nnz, 0.0);
  std::vector<double> ystar(nnz, 0.0);
  auto refresh_ystar = [&]() {
    for (size_t k = 0; k < nnz; ++k) ystar[k] = values[k] - outliers[k];
  };

  std::vector<double> w(rank, 0.0);
  for (int iter = 0; iter < options_.inner_iterations; ++iter) {
    refresh_ystar();
    w = sweep_.SolveTemporalRow(factors_, ystar, options_.ridge);
    for (size_t mode = 0; mode < factors_.size(); ++mode) {
      sweep_.ProximalRowSweep(factors_, w, ystar, mode, previous[mode], mu,
                              &factors_[mode]);
    }
    // Sparse slab: soft-threshold the observed residual. SliceReconstruct
    // reproduces the dense path's KruskalSlice entry arithmetic, keeping
    // the slab decisions aligned with the reference (bitwise whenever the
    // temporal solves agree bitwise — see CooNormalSystem's blocking note).
    const std::vector<double>& recon = sweep_.SliceReconstruct(factors_, w);
    for (size_t k = 0; k < nnz; ++k) {
      outliers[k] = SoftThreshold(values[k] - recon[k],
                                  options_.outlier_lambda);
    }
  }
  if (!want_result) return StepResult();
  refresh_ystar();
  w = sweep_.SolveTemporalRow(factors_, ystar, options_.ridge);
  return StepResult::Kruskal(factors_, std::move(w));
}

StepResult OrMstc::StepDense(const DenseTensor& y, const Mask& omega,
                             bool want_result) {
  const size_t rank = options_.rank;
  const double mu = options_.prox_weight;
  const std::vector<Matrix> previous = factors_;

  DenseTensor outliers(y.shape(), 0.0);
  std::vector<double> w(rank, 0.0);
  for (int iter = 0; iter < options_.inner_iterations; ++iter) {
    w = SolveTemporalRow(y, omega, &outliers, factors_, options_.ridge);
    for (size_t mode = 0; mode < factors_.size(); ++mode) {
      SliceRowSystems sys =
          BuildSliceRowSystems(y, omega, &outliers, factors_, w, mode);
      ApplyProximalRowUpdates(sys, previous[mode], mu, &factors_[mode]);
    }
    // Sparse slab: soft-threshold the observed residual.
    DenseTensor recon = KruskalSlice(factors_, w);
    for (size_t k = 0; k < y.NumElements(); ++k) {
      outliers[k] = omega.Get(k) ? SoftThreshold(y[k] - recon[k],
                                                 options_.outlier_lambda)
                                 : 0.0;
    }
  }
  if (!want_result) return StepResult();
  w = SolveTemporalRow(y, omega, &outliers, factors_, options_.ridge);
  return StepResult::Kruskal(factors_, std::move(w));
}

}  // namespace sofia
