#include "baselines/cp_wopt_stream.hpp"

#include <utility>

#include "util/check.hpp"
#include "util/state_io.hpp"

namespace sofia {

void CpWoptStream::SaveState(std::ostream& out) const {
  state_io::BeginState(out, "cp-wopt-stream", 1);
  state_io::WriteMatrixList(out, factors_);
}

void CpWoptStream::RestoreState(std::istream& in) {
  state_io::ReadStateHeader(in, "cp-wopt-stream", 1);
  factors_ = state_io::ReadMatrixList(in);
}

StepResult CpWoptStream::StepLazy(const DenseTensor& y, const Mask& omega,
                                  std::shared_ptr<const CooList> pattern) {
  SOFIA_CHECK(y.shape() == omega.shape());
  CpWoptOptions batch_options;
  batch_options.rank = options_.rank;
  batch_options.max_iterations = options_.iterations_per_step;
  batch_options.gradient_tolerance = options_.gradient_tolerance;
  batch_options.seed = options_.seed;
  batch_options.num_threads = options_.num_threads;

  const std::vector<Matrix>* warm =
      factors_.empty() ? nullptr : &factors_;
  CpWoptResult solved = CpWoptFactorize(y, omega, batch_options,
                                        std::move(pattern), warm);
  factors_ = std::move(solved.factors);

  // The slice *is* the full Kruskal product of its own factors: a Kruskal
  // view with unit combination weights.
  return StepResult::Kruskal(factors_,
                             std::vector<double>(options_.rank, 1.0));
}

}  // namespace sofia
