#ifndef SOFIA_BASELINES_OLSTEC_H_
#define SOFIA_BASELINES_OLSTEC_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "baselines/observed_sweep.hpp"
#include "eval/streaming_method.hpp"
#include "linalg/matrix.hpp"

/// \file olstec.hpp
/// \brief OLSTEC baseline (Kasai, ICASSP 2016 [12]).
///
/// Streaming CP completion via recursive least squares: every non-temporal
/// factor row keeps an inverse-covariance matrix P_i that is updated with a
/// forgetting factor as observations arrive, giving faster subspace tracking
/// than SGD at an O(|Ω_t| N R^2) per-step cost (visible in the Fig. 5
/// speed comparison).

namespace sofia {

/// Options for Olstec.
struct OlstecOptions {
  size_t rank = 5;
  double forgetting = 0.98;  ///< RLS forgetting factor λ_f in (0, 1].
  double delta = 10.0;       ///< P_i is initialized to delta * I.
  double ridge = 1e-6;       ///< Tikhonov weight of the temporal solve.
  uint64_t seed = 11;
  /// Worker threads for the observed-entry kernels (0 = hardware
  /// concurrency). Only the temporal solves parallelize — the RLS sweep is
  /// order-dependent and stays sequential over the observed records —
  /// so results are bitwise identical for every setting.
  size_t num_threads = 1;
  /// Route the step through the ObservedSweep core: the RLS sweep walks the
  /// |Ω_t| compacted records (same ascending linear order as the dense
  /// scan) instead of the full index space. False selects the original
  /// dense scan (the reference path).
  bool use_sparse_kernels = true;
};

/// OLSTEC streaming method (no init window).
class Olstec : public StreamingMethod {
 public:
  explicit Olstec(OlstecOptions options)
      : options_(options),
        // No bucketed motifs: the temporal solves are record-blocked and
        // the RLS sweep is a sequential record loop.
        sweep_(ObservedSweepOptions{options.num_threads,
                                    options.use_sparse_kernels,
                                    /*reuse_step_pattern=*/true,
                                    /*with_mode_buckets=*/false}) {}

  std::string name() const override { return "OLSTEC"; }
  /// Lazy step: the refreshed factors + re-solved temporal row as a
  /// Kruskal-view StepResult (no dense reconstruction).
  StepResult StepLazy(const DenseTensor& y, const Mask& omega,
                      std::shared_ptr<const CooList> pattern =
                          nullptr) override;
  /// Advances the RLS state without the output-only tail (the temporal
  /// re-solve exists purely for the returned estimate) — the
  /// forecast-protocol fast path.
  void Observe(const DenseTensor& y, const Mask& omega) override;
  void AdoptWorkerPool(std::shared_ptr<WorkerPool> pool) override {
    sweep_.AdoptPool(std::move(pool));
  }

  bool SupportsStateCheckpoint() const override { return true; }
  void SaveState(std::ostream& out) const override;
  void RestoreState(std::istream& in) override;

  const std::vector<Matrix>& factors() const { return factors_; }

 private:
  StepResult StepShared(const DenseTensor& y, const Mask& omega,
                        std::shared_ptr<const CooList> pattern,
                        bool want_result);
  StepResult StepDense(const DenseTensor& y, const Mask& omega,
                       bool want_result);
  /// The entry-wise RLS update of one observed entry (shared by both
  /// paths; `idx[l]` is the mode-l index, `value` the observed entry).
  template <typename IndexArray>
  void RlsUpdate(const IndexArray& idx, double value,
                 const std::vector<double>& w, std::vector<double>* h,
                 std::vector<double>* ph);

  OlstecOptions options_;
  ObservedSweep sweep_;
  std::vector<Matrix> factors_;
  /// cov_[mode][row] is the R x R inverse covariance P of that factor row.
  std::vector<std::vector<Matrix>> cov_;
};

}  // namespace sofia

#endif  // SOFIA_BASELINES_OLSTEC_H_
