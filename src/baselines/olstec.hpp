#ifndef SOFIA_BASELINES_OLSTEC_H_
#define SOFIA_BASELINES_OLSTEC_H_

#include <cstdint>
#include <vector>

#include "eval/streaming_method.hpp"
#include "linalg/matrix.hpp"

/// \file olstec.hpp
/// \brief OLSTEC baseline (Kasai, ICASSP 2016 [12]).
///
/// Streaming CP completion via recursive least squares: every non-temporal
/// factor row keeps an inverse-covariance matrix P_i that is updated with a
/// forgetting factor as observations arrive, giving faster subspace tracking
/// than SGD at an O(|Ω_t| N R^2) per-step cost (visible in the Fig. 5
/// speed comparison).

namespace sofia {

/// Options for Olstec.
struct OlstecOptions {
  size_t rank = 5;
  double forgetting = 0.98;  ///< RLS forgetting factor λ_f in (0, 1].
  double delta = 10.0;       ///< P_i is initialized to delta * I.
  double ridge = 1e-6;       ///< Tikhonov weight of the temporal solve.
  uint64_t seed = 11;
};

/// OLSTEC streaming method (no init window).
class Olstec : public StreamingMethod {
 public:
  explicit Olstec(OlstecOptions options) : options_(options) {}

  std::string name() const override { return "OLSTEC"; }
  DenseTensor Step(const DenseTensor& y, const Mask& omega) override;

  const std::vector<Matrix>& factors() const { return factors_; }

 private:
  OlstecOptions options_;
  std::vector<Matrix> factors_;
  /// cov_[mode][row] is the R x R inverse covariance P of that factor row.
  std::vector<std::vector<Matrix>> cov_;
};

}  // namespace sofia

#endif  // SOFIA_BASELINES_OLSTEC_H_
