#ifndef SOFIA_BASELINES_SMF_H_
#define SOFIA_BASELINES_SMF_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "baselines/observed_sweep.hpp"
#include "eval/streaming_method.hpp"
#include "linalg/matrix.hpp"

/// \file smf.hpp
/// \brief SMF baseline (Hooi et al., SDM 2019 [16]).
///
/// Drift-aware streaming matrix factorization with seasonal patterns: each
/// incoming subtensor is vectorized into a column of a matrix stream
/// vec(Y_t) ≈ A w_t; the loading matrix A drifts via SGD and the latent
/// weights w_t carry a level/trend/seasonal decomposition used for
/// forecasting. SMF assumes fully-observed data and has no outlier
/// rejection — the two Table I gaps the Fig. 6 experiment exposes.

namespace sofia {

/// Options for Smf.
struct SmfOptions {
  size_t rank = 5;
  size_t period = 7;           ///< Seasonal period m.
  double learning_rate = 0.1;  ///< SGD step on the loading matrix.
  double ridge = 1e-6;
  double level_alpha = 0.3;    ///< Level smoothing of the latent weights.
  double trend_beta = 0.05;    ///< Trend smoothing.
  double season_gamma = 0.3;   ///< Seasonal smoothing.
  uint64_t seed = 23;
  /// Worker threads for the observed-entry kernels (0 = hardware
  /// concurrency). SMF's loading rows are keyed by the linear entry index,
  /// so its sparse sweeps are sequential record loops — results are
  /// bitwise identical for every setting.
  size_t num_threads = 1;
  /// Route the latent LS accumulation and the loading drift through the
  /// compacted record list (O(|Ω_t| R) per pass); false selects the
  /// dense-scan reference path.
  bool use_sparse_kernels = true;
};

/// SMF streaming method (forecast-capable; no init window).
class Smf : public StreamingMethod {
 public:
  explicit Smf(SmfOptions options)
      : options_(options),
        // No bucketed motifs: both sweeps are linear-indexed record loops.
        sweep_(ObservedSweepOptions{options.num_threads,
                                    options.use_sparse_kernels,
                                    /*reuse_step_pattern=*/true,
                                    /*with_mode_buckets=*/false}) {}

  std::string name() const override { return "SMF"; }
  /// Lazy step: the drifted loadings + latent weights as a linear-map
  /// StepResult (vec(X̂) = A w — no dense reconstruction).
  StepResult StepLazy(const DenseTensor& y, const Mask& omega,
                      std::shared_ptr<const CooList> pattern =
                          nullptr) override;
  /// Advances loadings and level/trend/seasonal state without building the
  /// output-only estimate handle — the forecast-protocol fast path (what
  /// the Fig. 6 protocol actually drives).
  void Observe(const DenseTensor& y, const Mask& omega) override;
  void AdoptWorkerPool(std::shared_ptr<WorkerPool> pool) override {
    sweep_.AdoptPool(std::move(pool));
  }

  bool SupportsForecast() const override { return true; }
  /// Lazy forecast: A (l + h b + s) as a linear-map handle.
  StepResult ForecastLazy(size_t h) const override;

  /// Restore rebuilds the loadings under a fresh shared_ptr, so live lazy
  /// handles snapshotting the old matrix stay valid.
  bool SupportsStateCheckpoint() const override { return true; }
  void SaveState(std::ostream& out) const override;
  void RestoreState(std::istream& in) override;

 private:
  StepResult StepShared(const DenseTensor& y, const Mask& omega,
                        std::shared_ptr<const CooList> pattern,
                        bool want_result);

  SmfOptions options_;
  ObservedSweep sweep_;
  Shape slice_shape_;
  /// A: (prod slice dims) x R. Held through a shared_ptr so StepLazy /
  /// ForecastLazy handles snapshot it without copying; the step clones
  /// copy-on-write only when a live handle still references it.
  std::shared_ptr<Matrix> loadings_;
  // Level/trend/seasonal state of the latent weights (vector HW form).
  std::vector<double> level_, trend_;
  std::vector<std::vector<double>> season_;
  size_t season_pos_ = 0;
  size_t steps_seen_ = 0;
};

}  // namespace sofia

#endif  // SOFIA_BASELINES_SMF_H_
