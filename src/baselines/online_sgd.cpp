#include "baselines/online_sgd.hpp"

#include <algorithm>
#include <utility>

#include "baselines/common.hpp"
#include "util/state_io.hpp"

namespace sofia {

void OnlineSgd::SaveState(std::ostream& out) const {
  state_io::BeginState(out, "online-sgd", 1);
  state_io::WriteMatrixList(out, factors_);
}

void OnlineSgd::RestoreState(std::istream& in) {
  state_io::ReadStateHeader(in, "online-sgd", 1);
  factors_ = state_io::ReadMatrixList(in);
}

void OnlineSgd::ApplyGradients(
    const std::vector<Matrix>& grads,
    const std::vector<std::vector<double>>& traces) {
  // One SGD step on each non-temporal factor (all gradients at the current
  // iterate, applied simultaneously). The step is capped at the per-row
  // stability bound 0.5 / tr(H_row) — the paper tuned each baseline's step
  // by grid search, and an uncapped 0.1 step diverges on small slices.
  for (size_t l = 0; l < factors_.size(); ++l) {
    for (size_t i = 0; i < factors_[l].rows(); ++i) {
      const double trace = traces[l][i];
      const double mu =
          trace > 0.0 ? std::min(options_.learning_rate, 0.5 / trace)
                      : options_.learning_rate;
      double* row = factors_[l].Row(i);
      const double* grow = grads[l].Row(i);
      for (size_t r = 0; r < options_.rank; ++r) {
        row[r] += 2.0 * mu * grow[r];
      }
    }
  }
}

StepResult OnlineSgd::StepLazy(const DenseTensor& y, const Mask& omega,
                               std::shared_ptr<const CooList> pattern) {
  return StepShared(y, omega, std::move(pattern), /*want_result=*/true);
}

void OnlineSgd::Observe(const DenseTensor& y, const Mask& omega) {
  StepShared(y, omega, nullptr, /*want_result=*/false);
}

StepResult OnlineSgd::StepShared(const DenseTensor& y, const Mask& omega,
                                 std::shared_ptr<const CooList> pattern,
                                 bool want_result) {
  if (factors_.empty()) {
    factors_ = RandomNontemporalFactors(y.shape(), options_.rank,
                                        options_.seed);
  }
  if (!sweep_.sparse()) {
    // Temporal row: regularized LS on the observed entries.
    std::vector<double> w =
        SolveTemporalRow(y, omega, nullptr, factors_, options_.ridge);
    std::vector<std::vector<double>> traces;
    std::vector<Matrix> grads =
        FactorGradients(y, omega, nullptr, factors_, w, &traces);
    ApplyGradients(grads, traces);
    return want_result ? StepResult::Kruskal(factors_, std::move(w))
                       : StepResult();
  }

  sweep_.BeginStep(y, omega, std::move(pattern));
  const std::vector<double>& values = sweep_.values();
  std::vector<double> w =
      sweep_.SolveTemporalRow(factors_, values, options_.ridge);

  // Residuals at the current iterate, then per-row gradients + curvature
  // traces — FactorGradients over the |Ω_t| records only.
  std::vector<double> residuals = sweep_.Reconstruct(factors_, w);
  for (size_t k = 0; k < residuals.size(); ++k) {
    residuals[k] = values[k] - residuals[k];
  }
  ModeGradients g = sweep_.Gradients(factors_, w, residuals);
  ApplyGradients(g.row_grads, g.row_trace);
  return want_result ? StepResult::Kruskal(factors_, std::move(w))
                     : StepResult();
}

}  // namespace sofia
