#include "baselines/online_sgd.hpp"

#include <algorithm>

#include "baselines/common.hpp"
#include "tensor/kruskal.hpp"

namespace sofia {

DenseTensor OnlineSgd::Step(const DenseTensor& y, const Mask& omega) {
  if (factors_.empty()) {
    factors_ = RandomNontemporalFactors(y.shape(), options_.rank,
                                        options_.seed);
  }
  // Temporal row: regularized LS on the observed entries.
  std::vector<double> w =
      SolveTemporalRow(y, omega, nullptr, factors_, options_.ridge);

  // One SGD step on each non-temporal factor (all gradients at the current
  // iterate, applied simultaneously). The step is capped at the per-row
  // stability bound 0.5 / tr(H_row) — the paper tuned each baseline's step
  // by grid search, and an uncapped 0.1 step diverges on small slices.
  std::vector<std::vector<double>> traces;
  std::vector<Matrix> grads =
      FactorGradients(y, omega, nullptr, factors_, w, &traces);
  for (size_t l = 0; l < factors_.size(); ++l) {
    for (size_t i = 0; i < factors_[l].rows(); ++i) {
      const double trace = traces[l][i];
      const double mu =
          trace > 0.0 ? std::min(options_.learning_rate, 0.5 / trace)
                      : options_.learning_rate;
      double* row = factors_[l].Row(i);
      const double* grow = grads[l].Row(i);
      for (size_t r = 0; r < options_.rank; ++r) {
        row[r] += 2.0 * mu * grow[r];
      }
    }
  }
  return KruskalSlice(factors_, w);
}

}  // namespace sofia
