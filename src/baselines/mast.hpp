#ifndef SOFIA_BASELINES_MAST_H_
#define SOFIA_BASELINES_MAST_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "baselines/observed_sweep.hpp"
#include "eval/streaming_method.hpp"
#include "linalg/matrix.hpp"

/// \file mast.hpp
/// \brief MAST baseline (Song et al., KDD 2017 [13]), temporal-growth path.
///
/// MAST handles tensors that grow in multiple modes; the paper's streams
/// grow only along time, so we implement that path (the one the paper's
/// experiments exercise): at each step the new slice is completed by
/// alternating closed-form row updates with a proximal pull toward the
/// previous factors (the forgetting-weighted history surrogate of MAST's
/// objective). No outlier handling, no seasonality.

namespace sofia {

/// Options for Mast.
struct MastOptions {
  size_t rank = 5;
  double prox_weight = 1.0;  ///< μ: pull toward the previous factors.
  double ridge = 1e-6;       ///< Tikhonov weight of the temporal solve.
  int inner_iterations = 2;  ///< Alternating rounds per slice.
  uint64_t seed = 13;
  /// Worker threads for the observed-entry kernels (0 = hardware
  /// concurrency); results are bitwise identical for every setting.
  size_t num_threads = 1;
  /// Route the inner loops through the ObservedSweep core (O(|Ω_t|) per
  /// pass); false selects the dense-scan reference path.
  bool use_sparse_kernels = true;
};

/// MAST streaming method (temporal growth only; no init window).
class Mast : public StreamingMethod {
 public:
  explicit Mast(MastOptions options)
      : options_(options),
        sweep_(ObservedSweepOptions{options.num_threads,
                                    options.use_sparse_kernels}) {}

  std::string name() const override { return "MAST"; }
  /// Lazy step: the refreshed factors + final temporal row as a
  /// Kruskal-view StepResult (no dense reconstruction).
  StepResult StepLazy(const DenseTensor& y, const Mask& omega,
                      std::shared_ptr<const CooList> pattern =
                          nullptr) override;
  /// Advances the factors without the output-only tail (the final temporal
  /// re-solve exists purely for the returned estimate) — the
  /// forecast-protocol fast path.
  void Observe(const DenseTensor& y, const Mask& omega) override;
  void AdoptWorkerPool(std::shared_ptr<WorkerPool> pool) override {
    sweep_.AdoptPool(std::move(pool));
  }

  bool SupportsStateCheckpoint() const override { return true; }
  void SaveState(std::ostream& out) const override;
  void RestoreState(std::istream& in) override;

  const std::vector<Matrix>& factors() const { return factors_; }

 private:
  StepResult StepShared(const DenseTensor& y, const Mask& omega,
                        std::shared_ptr<const CooList> pattern,
                        bool want_result);
  StepResult StepDense(const DenseTensor& y, const Mask& omega,
                       bool want_result);

  MastOptions options_;
  ObservedSweep sweep_;
  std::vector<Matrix> factors_;
};

}  // namespace sofia

#endif  // SOFIA_BASELINES_MAST_H_
