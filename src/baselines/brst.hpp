#ifndef SOFIA_BASELINES_BRST_H_
#define SOFIA_BASELINES_BRST_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "baselines/observed_sweep.hpp"
#include "eval/streaming_method.hpp"
#include "linalg/matrix.hpp"

/// \file brst.hpp
/// \brief BRST-lite baseline (after Zhang & Hawkins, ICDM 2018 [14]).
///
/// The original BRST is a streaming variational-Bayes robust factorization
/// with automatic rank determination (ARD). The ICDE paper reports that
/// BRST collapses to rank 0 on all four streams and omits its curves; this
/// lite reimplementation keeps the two ingredients responsible for that
/// behaviour — Student-t style per-entry outlier gating and ARD column
/// precisions that prune low-energy columns — so the qualitative finding
/// can be reproduced (see tests/brst_test.cc and bench/fig3_imputation).

namespace sofia {

/// Options for BrstLite.
struct BrstOptions {
  size_t rank = 5;             ///< Initial (maximal) rank.
  double learning_rate = 0.1;  ///< Gradient step on the factors.
  double ridge = 1e-6;
  double student_nu = 3.0;     ///< Degrees of freedom of the outlier gate.
  double ard_strength = 1.0;   ///< Scale of the ARD precision update.
  double prune_threshold = 1e-3;  ///< Column-energy cutoff for pruning.
  uint64_t seed = 19;
  /// Worker threads for the observed-entry kernels (0 = hardware
  /// concurrency); results are bitwise identical for every setting.
  size_t num_threads = 1;
  /// Route the ARD temporal solve and the gated gradient pass through the
  /// ObservedSweep core (O(|Ω_t| N R) per step); false selects the
  /// dense-scan reference path.
  bool use_sparse_kernels = true;
};

/// BRST-lite streaming method (no init window).
class BrstLite : public StreamingMethod {
 public:
  explicit BrstLite(BrstOptions options)
      : options_(options),
        sweep_(ObservedSweepOptions{options.num_threads,
                                    options.use_sparse_kernels}) {}

  std::string name() const override { return "BRST"; }
  /// Lazy step: the refreshed factors + ARD-pruned temporal row as a
  /// Kruskal-view StepResult (no dense reconstruction).
  StepResult StepLazy(const DenseTensor& y, const Mask& omega,
                      std::shared_ptr<const CooList> pattern =
                          nullptr) override;
  /// Advances the factors / ARD / noise state without building the
  /// output-only estimate handle — the forecast-protocol fast path.
  void Observe(const DenseTensor& y, const Mask& omega) override;
  void AdoptWorkerPool(std::shared_ptr<WorkerPool> pool) override {
    sweep_.AdoptPool(std::move(pool));
  }

  /// Number of columns whose energy survives the ARD prune (the paper's
  /// estimated rank; expected to collapse under heavy corruption).
  size_t EffectiveRank() const;

  bool SupportsStateCheckpoint() const override { return true; }
  void SaveState(std::ostream& out) const override;
  void RestoreState(std::istream& in) override;

  const std::vector<Matrix>& factors() const { return factors_; }

 private:
  StepResult StepShared(const DenseTensor& y, const Mask& omega,
                        std::shared_ptr<const CooList> pattern,
                        bool want_result);
  /// Shared tail of both paths: MAP gradient application with ARD decay,
  /// noise-variance smoothing, the ARD precision update, and (when
  /// `want_result`) the pruned Kruskal-view handle. Takes `grads` by value
  /// so both call sites move their gradients in and the learning-rate
  /// scaling happens in place.
  StepResult FinishStep(std::vector<double> w, std::vector<Matrix> grads,
                        double weighted_sq, double weight_sum,
                        bool want_result);

  BrstOptions options_;
  ObservedSweep sweep_;
  std::vector<Matrix> factors_;
  std::vector<double> ard_precision_;  ///< γ_r per column.
  double noise_var_ = 1.0;             ///< Running residual variance σ².
};

}  // namespace sofia

#endif  // SOFIA_BASELINES_BRST_H_
