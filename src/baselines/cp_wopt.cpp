#include "baselines/cp_wopt.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "baselines/observed_sweep.hpp"
#include "optim/lbfgsb.hpp"
#include "tensor/coo_list.hpp"
#include "tensor/kruskal.hpp"
#include "tensor/sparse_kernels.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace sofia {

namespace {

/// Total number of scalar parameters across factors.
size_t ParameterCount(const Shape& shape, size_t rank) {
  size_t n = 0;
  for (size_t mode = 0; mode < shape.order(); ++mode) {
    n += shape.dim(mode) * rank;
  }
  return n;
}

/// Packs factor matrices into a flat parameter vector (mode-major).
std::vector<double> Pack(const std::vector<Matrix>& factors) {
  std::vector<double> x;
  for (const Matrix& f : factors) {
    x.insert(x.end(), f.data(), f.data() + f.size());
  }
  return x;
}

/// Unpacks a flat parameter vector into factor matrices of the given shape.
std::vector<Matrix> Unpack(const std::vector<double>& x, const Shape& shape,
                           size_t rank) {
  std::vector<Matrix> factors;
  size_t offset = 0;
  for (size_t mode = 0; mode < shape.order(); ++mode) {
    Matrix f(shape.dim(mode), rank);
    std::copy(x.begin() + static_cast<long>(offset),
              x.begin() + static_cast<long>(offset + f.size()), f.data());
    offset += f.size();
    factors.push_back(std::move(f));
  }
  return factors;
}

/// Observed-entry loss: 0.5 ||Ω ⊛ (Y - [[U]])||_F^2 over the COO records.
double CooLoss(const CooList& coo, const std::vector<double>& values,
               const std::vector<Matrix>& factors, size_t num_threads,
               WorkerPool* pool = nullptr) {
  return 0.5 * CooResidualSquaredNorm(coo, values, factors, num_threads, pool);
}

/// Observed-entry gradient. Each record contributes to one row of every
/// mode's gradient, so tasks work on contiguous record ranges with private
/// accumulators, combined in range order afterwards. The task count depends
/// only on |Ω| — never on the thread count — so the summation grouping and
/// hence the gradient bits are reproducible on any machine.
std::vector<Matrix> CooGradient(const CooList& coo,
                                const std::vector<double>& values,
                                const std::vector<Matrix>& factors,
                                size_t num_threads,
                                WorkerPool* pool = nullptr) {
  constexpr size_t kRecordsPerTask = 4096;
  constexpr size_t kMaxTasks = 16;
  const size_t rank = factors[0].cols();
  const size_t num_modes = factors.size();
  const size_t nnz = coo.nnz();
  const size_t tasks = std::max<size_t>(
      1, std::min(kMaxTasks, (nnz + kRecordsPerTask - 1) / kRecordsPerTask));

  auto zero_grads = [&]() {
    std::vector<Matrix> g;
    g.reserve(num_modes);
    for (const Matrix& f : factors) g.emplace_back(f.rows(), rank, 0.0);
    return g;
  };
  std::vector<std::vector<Matrix>> partial(tasks);

  RunTasks(pool, num_threads, tasks, [&](size_t task) {
    const size_t begin = task * nnz / tasks;
    const size_t end = (task + 1) * nnz / tasks;
    std::vector<Matrix> grads = zero_grads();
    // prefix[l] = prod of factor rows for modes < l; suffix[l] = for >= l.
    std::vector<double> prefix((num_modes + 1) * rank);
    std::vector<double> suffix((num_modes + 1) * rank);
    for (size_t k = begin; k < end; ++k) {
      const uint32_t* idx = coo.Coords(k);
      for (size_t r = 0; r < rank; ++r) prefix[r] = 1.0;
      for (size_t l = 0; l < num_modes; ++l) {
        const double* row = factors[l].Row(idx[l]);
        const double* cur = &prefix[l * rank];
        double* nxt = &prefix[(l + 1) * rank];
        for (size_t r = 0; r < rank; ++r) nxt[r] = cur[r] * row[r];
      }
      for (size_t r = 0; r < rank; ++r) suffix[num_modes * rank + r] = 1.0;
      for (size_t l = num_modes; l-- > 0;) {
        const double* row = factors[l].Row(idx[l]);
        const double* cur = &suffix[(l + 1) * rank];
        double* nxt = &suffix[l * rank];
        for (size_t r = 0; r < rank; ++r) nxt[r] = cur[r] * row[r];
      }
      double recon = 0.0;
      const double* full = &prefix[num_modes * rank];
      for (size_t r = 0; r < rank; ++r) recon += full[r];
      const double resid = values[k] - recon;
      // d loss / d U^(l)(i_l, r) = -resid * prod_{l' != l} U^(l')(i_{l'}, r).
      for (size_t l = 0; l < num_modes; ++l) {
        double* grow = grads[l].Row(idx[l]);
        const double* pre = &prefix[l * rank];
        const double* suf = &suffix[(l + 1) * rank];
        for (size_t r = 0; r < rank; ++r) {
          grow[r] -= resid * pre[r] * suf[r];
        }
      }
    }
    partial[task] = std::move(grads);
  });

  std::vector<Matrix> grads = std::move(partial[0]);
  for (size_t task = 1; task < tasks; ++task) {
    for (size_t l = 0; l < num_modes; ++l) grads[l] += partial[task][l];
  }
  return grads;
}

/// Objective adapter for the quasi-Newton solver with analytic gradients.
/// The mask never changes across iterates, so the COO structure and the
/// gathered observed values are compacted exactly once (or adopted from a
/// caller that already shares the pattern, e.g. a comparison run).
class CpWoptObjective : public Objective {
 public:
  CpWoptObjective(const DenseTensor& y, const Mask& omega, size_t rank,
                  size_t num_threads, std::shared_ptr<const CooList> pattern)
      : shape_(y.shape()),
        coo_(pattern != nullptr
                 ? std::move(pattern)
                 : MakeSharedPattern(omega, /*with_mode_buckets=*/false)),
        values_(coo_->Gather(y)),
        rank_(rank),
        pool_(ResolveNumThreads(num_threads)) {}

  double Value(const std::vector<double>& x) const override {
    return CooLoss(*coo_, values_, Unpack(x, shape_, rank_), 1, &pool_);
  }

  void Gradient(const std::vector<double>& x,
                std::vector<double>* grad) const override {
    std::vector<Matrix> g =
        CooGradient(*coo_, values_, Unpack(x, shape_, rank_), 1, &pool_);
    *grad = Pack(g);
  }

 private:
  Shape shape_;
  std::shared_ptr<const CooList> coo_;
  std::vector<double> values_;
  size_t rank_;
  // One pool for the whole quasi-Newton run: every iterate issues a Value
  // and a Gradient call, so workers are spawned once, not per evaluation.
  mutable ThreadPool pool_;
};

}  // namespace

double CpWoptLoss(const CooList& coo, const std::vector<double>& values,
                  const std::vector<Matrix>& factors) {
  return CooLoss(coo, values, factors, 1);
}

std::vector<Matrix> CpWoptGradient(const CooList& coo,
                                   const std::vector<double>& values,
                                   const std::vector<Matrix>& factors) {
  return CooGradient(coo, values, factors, 1);
}

double CpWoptLoss(const DenseTensor& y, const Mask& omega,
                  const std::vector<Matrix>& factors) {
  SOFIA_CHECK(y.shape() == omega.shape());
  const std::shared_ptr<const CooList> coo =
      MakeSharedPattern(omega, /*with_mode_buckets=*/false);
  return CpWoptLoss(*coo, coo->Gather(y), factors);
}

std::vector<Matrix> CpWoptGradient(const DenseTensor& y, const Mask& omega,
                                   const std::vector<Matrix>& factors) {
  SOFIA_CHECK(y.shape() == omega.shape());
  const std::shared_ptr<const CooList> coo =
      MakeSharedPattern(omega, /*with_mode_buckets=*/false);
  return CpWoptGradient(*coo, coo->Gather(y), factors);
}

CpWoptResult CpWoptFactorize(const DenseTensor& y, const Mask& omega,
                             const CpWoptOptions& options,
                             std::shared_ptr<const CooList> pattern,
                             const std::vector<Matrix>* initial) {
  SOFIA_CHECK(y.shape() == omega.shape());
  std::vector<Matrix> init;
  if (initial != nullptr) {
    SOFIA_CHECK_EQ(initial->size(), y.order());
    init = *initial;
  } else {
    Rng rng(options.seed);
    for (size_t mode = 0; mode < y.order(); ++mode) {
      init.push_back(
          Matrix::Random(y.dim(mode), options.rank, rng, 0.0, 1.0));
    }
  }

  CpWoptObjective objective(y, omega, options.rank, options.num_threads,
                            std::move(pattern));
  const size_t n = ParameterCount(y.shape(), options.rank);
  const std::vector<double> lower(n, -std::numeric_limits<double>::infinity());
  const std::vector<double> upper(n, std::numeric_limits<double>::infinity());
  LbfgsbOptions solver_options;
  solver_options.max_iterations = options.max_iterations;
  solver_options.gradient_tolerance = options.gradient_tolerance;
  LbfgsbResult solved =
      LbfgsbMinimize(objective, Pack(init), lower, upper, solver_options);

  CpWoptResult result;
  result.factors = Unpack(solved.x, y.shape(), options.rank);
  result.loss = solved.f;
  result.iterations = solved.iterations;
  result.converged = solved.converged;
  return result;
}

CpWoptResult CpWopt(const DenseTensor& y, const Mask& omega,
                    const CpWoptOptions& options,
                    std::shared_ptr<const CooList> pattern) {
  CpWoptResult result =
      CpWoptFactorize(y, omega, options, std::move(pattern), nullptr);
  result.completed = KruskalTensor(result.factors);
  return result;
}

}  // namespace sofia
