#include "baselines/cp_wopt.hpp"

#include <cmath>
#include <limits>

#include "optim/lbfgsb.hpp"
#include "tensor/kruskal.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace sofia {

namespace {

/// Total number of scalar parameters across factors.
size_t ParameterCount(const Shape& shape, size_t rank) {
  size_t n = 0;
  for (size_t mode = 0; mode < shape.order(); ++mode) {
    n += shape.dim(mode) * rank;
  }
  return n;
}

/// Packs factor matrices into a flat parameter vector (mode-major).
std::vector<double> Pack(const std::vector<Matrix>& factors) {
  std::vector<double> x;
  for (const Matrix& f : factors) {
    x.insert(x.end(), f.data(), f.data() + f.size());
  }
  return x;
}

/// Unpacks a flat parameter vector into factor matrices of the given shape.
std::vector<Matrix> Unpack(const std::vector<double>& x, const Shape& shape,
                           size_t rank) {
  std::vector<Matrix> factors;
  size_t offset = 0;
  for (size_t mode = 0; mode < shape.order(); ++mode) {
    Matrix f(shape.dim(mode), rank);
    std::copy(x.begin() + static_cast<long>(offset),
              x.begin() + static_cast<long>(offset + f.size()), f.data());
    offset += f.size();
    factors.push_back(std::move(f));
  }
  return factors;
}

/// Objective adapter for the quasi-Newton solver with analytic gradients.
class CpWoptObjective : public Objective {
 public:
  CpWoptObjective(const DenseTensor& y, const Mask& omega, size_t rank)
      : y_(y), omega_(omega), rank_(rank) {}

  double Value(const std::vector<double>& x) const override {
    return CpWoptLoss(y_, omega_, Unpack(x, y_.shape(), rank_));
  }

  void Gradient(const std::vector<double>& x,
                std::vector<double>* grad) const override {
    std::vector<Matrix> g =
        CpWoptGradient(y_, omega_, Unpack(x, y_.shape(), rank_));
    *grad = Pack(g);
  }

 private:
  const DenseTensor& y_;
  const Mask& omega_;
  size_t rank_;
};

}  // namespace

double CpWoptLoss(const DenseTensor& y, const Mask& omega,
                  const std::vector<Matrix>& factors) {
  const Shape& shape = y.shape();
  std::vector<size_t> idx(shape.order(), 0);
  double loss = 0.0;
  for (size_t linear = 0; linear < shape.NumElements(); ++linear) {
    if (omega.Get(linear)) {
      const double r = y[linear] - KruskalEntry(factors, idx);
      loss += 0.5 * r * r;
    }
    shape.Next(&idx);
  }
  return loss;
}

std::vector<Matrix> CpWoptGradient(const DenseTensor& y, const Mask& omega,
                                   const std::vector<Matrix>& factors) {
  const Shape& shape = y.shape();
  const size_t rank = factors[0].cols();
  const size_t num_modes = factors.size();
  std::vector<Matrix> grads;
  grads.reserve(num_modes);
  for (const Matrix& f : factors) grads.emplace_back(f.rows(), rank, 0.0);

  std::vector<size_t> idx(shape.order(), 0);
  std::vector<double> prefix((num_modes + 1) * rank);
  std::vector<double> suffix((num_modes + 1) * rank);
  for (size_t linear = 0; linear < shape.NumElements(); ++linear) {
    if (omega.Get(linear)) {
      for (size_t r = 0; r < rank; ++r) prefix[r] = 1.0;
      for (size_t l = 0; l < num_modes; ++l) {
        const double* row = factors[l].Row(idx[l]);
        const double* cur = &prefix[l * rank];
        double* nxt = &prefix[(l + 1) * rank];
        for (size_t r = 0; r < rank; ++r) nxt[r] = cur[r] * row[r];
      }
      for (size_t r = 0; r < rank; ++r) suffix[num_modes * rank + r] = 1.0;
      for (size_t l = num_modes; l-- > 0;) {
        const double* row = factors[l].Row(idx[l]);
        const double* cur = &suffix[(l + 1) * rank];
        double* nxt = &suffix[l * rank];
        for (size_t r = 0; r < rank; ++r) nxt[r] = cur[r] * row[r];
      }
      double recon = 0.0;
      const double* full = &prefix[num_modes * rank];
      for (size_t r = 0; r < rank; ++r) recon += full[r];
      const double resid = y[linear] - recon;
      // d loss / d U^(l)(i_l, r) = -resid * prod_{l' != l} U^(l')(i_{l'}, r).
      for (size_t l = 0; l < num_modes; ++l) {
        double* grow = grads[l].Row(idx[l]);
        const double* pre = &prefix[l * rank];
        const double* suf = &suffix[(l + 1) * rank];
        for (size_t r = 0; r < rank; ++r) {
          grow[r] -= resid * pre[r] * suf[r];
        }
      }
    }
    shape.Next(&idx);
  }
  return grads;
}

CpWoptResult CpWopt(const DenseTensor& y, const Mask& omega,
                    const CpWoptOptions& options) {
  SOFIA_CHECK(y.shape() == omega.shape());
  Rng rng(options.seed);
  std::vector<Matrix> init;
  for (size_t mode = 0; mode < y.order(); ++mode) {
    init.push_back(Matrix::Random(y.dim(mode), options.rank, rng, 0.0, 1.0));
  }

  CpWoptObjective objective(y, omega, options.rank);
  const size_t n = ParameterCount(y.shape(), options.rank);
  const std::vector<double> lower(n, -std::numeric_limits<double>::infinity());
  const std::vector<double> upper(n, std::numeric_limits<double>::infinity());
  LbfgsbOptions solver_options;
  solver_options.max_iterations = options.max_iterations;
  solver_options.gradient_tolerance = options.gradient_tolerance;
  LbfgsbResult solved =
      LbfgsbMinimize(objective, Pack(init), lower, upper, solver_options);

  CpWoptResult result;
  result.factors = Unpack(solved.x, y.shape(), options.rank);
  result.completed = KruskalTensor(result.factors);
  result.loss = solved.f;
  result.iterations = solved.iterations;
  result.converged = solved.converged;
  return result;
}

}  // namespace sofia
