#include "baselines/mast.hpp"

#include <utility>

#include "baselines/common.hpp"
#include "linalg/solve.hpp"
#include "tensor/kruskal.hpp"

namespace sofia {

DenseTensor Mast::Step(const DenseTensor& y, const Mask& omega) {
  return StepShared(y, omega, nullptr, /*materialize=*/true);
}

DenseTensor Mast::Step(const DenseTensor& y, const Mask& omega,
                       std::shared_ptr<const CooList> pattern) {
  return StepShared(y, omega, std::move(pattern), /*materialize=*/true);
}

void Mast::Observe(const DenseTensor& y, const Mask& omega) {
  StepShared(y, omega, nullptr, /*materialize=*/false);
}

DenseTensor Mast::StepShared(const DenseTensor& y, const Mask& omega,
                             std::shared_ptr<const CooList> pattern,
                             bool materialize) {
  if (factors_.empty()) {
    factors_ = RandomNontemporalFactors(y.shape(), options_.rank,
                                        options_.seed);
  }
  if (!sweep_.sparse()) return StepDense(y, omega, materialize);

  const double mu = options_.prox_weight;
  const std::vector<Matrix> previous = factors_;
  sweep_.BeginStep(y, omega, std::move(pattern));
  const std::vector<double>& values = sweep_.values();

  std::vector<double> w(options_.rank, 0.0);
  for (int iter = 0; iter < options_.inner_iterations; ++iter) {
    w = sweep_.SolveTemporalRow(factors_, values, options_.ridge);
    for (size_t mode = 0; mode < factors_.size(); ++mode) {
      sweep_.ProximalRowSweep(factors_, w, values, mode, previous[mode], mu,
                              &factors_[mode]);
    }
  }
  if (!materialize) return DenseTensor();
  w = sweep_.SolveTemporalRow(factors_, values, options_.ridge);
  return KruskalSlice(factors_, w);
}

DenseTensor Mast::StepDense(const DenseTensor& y, const Mask& omega,
                            bool materialize) {
  const double mu = options_.prox_weight;
  const std::vector<Matrix> previous = factors_;

  std::vector<double> w(options_.rank, 0.0);
  for (int iter = 0; iter < options_.inner_iterations; ++iter) {
    w = SolveTemporalRow(y, omega, nullptr, factors_, options_.ridge);
    // Closed-form proximal row updates:
    // u_i = (B_i + μI)^{-1} (c_i + μ u_i^{prev}).
    for (size_t mode = 0; mode < factors_.size(); ++mode) {
      SliceRowSystems sys =
          BuildSliceRowSystems(y, omega, nullptr, factors_, w, mode);
      ApplyProximalRowUpdates(sys, previous[mode], mu, &factors_[mode]);
    }
  }
  if (!materialize) return DenseTensor();
  w = SolveTemporalRow(y, omega, nullptr, factors_, options_.ridge);
  return KruskalSlice(factors_, w);
}

}  // namespace sofia
