#include "baselines/mast.hpp"

#include <utility>

#include "baselines/common.hpp"
#include "linalg/solve.hpp"
#include "util/state_io.hpp"

namespace sofia {

void Mast::SaveState(std::ostream& out) const {
  state_io::BeginState(out, "mast", 1);
  state_io::WriteMatrixList(out, factors_);
}

void Mast::RestoreState(std::istream& in) {
  state_io::ReadStateHeader(in, "mast", 1);
  factors_ = state_io::ReadMatrixList(in);
}

StepResult Mast::StepLazy(const DenseTensor& y, const Mask& omega,
                          std::shared_ptr<const CooList> pattern) {
  return StepShared(y, omega, std::move(pattern), /*want_result=*/true);
}

void Mast::Observe(const DenseTensor& y, const Mask& omega) {
  StepShared(y, omega, nullptr, /*want_result=*/false);
}

StepResult Mast::StepShared(const DenseTensor& y, const Mask& omega,
                            std::shared_ptr<const CooList> pattern,
                            bool want_result) {
  if (factors_.empty()) {
    factors_ = RandomNontemporalFactors(y.shape(), options_.rank,
                                        options_.seed);
  }
  if (!sweep_.sparse()) return StepDense(y, omega, want_result);

  const double mu = options_.prox_weight;
  const std::vector<Matrix> previous = factors_;
  sweep_.BeginStep(y, omega, std::move(pattern));
  const std::vector<double>& values = sweep_.values();

  std::vector<double> w(options_.rank, 0.0);
  for (int iter = 0; iter < options_.inner_iterations; ++iter) {
    w = sweep_.SolveTemporalRow(factors_, values, options_.ridge);
    for (size_t mode = 0; mode < factors_.size(); ++mode) {
      sweep_.ProximalRowSweep(factors_, w, values, mode, previous[mode], mu,
                              &factors_[mode]);
    }
  }
  if (!want_result) return StepResult();
  w = sweep_.SolveTemporalRow(factors_, values, options_.ridge);
  return StepResult::Kruskal(factors_, std::move(w));
}

StepResult Mast::StepDense(const DenseTensor& y, const Mask& omega,
                           bool want_result) {
  const double mu = options_.prox_weight;
  const std::vector<Matrix> previous = factors_;

  std::vector<double> w(options_.rank, 0.0);
  for (int iter = 0; iter < options_.inner_iterations; ++iter) {
    w = SolveTemporalRow(y, omega, nullptr, factors_, options_.ridge);
    // Closed-form proximal row updates:
    // u_i = (B_i + μI)^{-1} (c_i + μ u_i^{prev}).
    for (size_t mode = 0; mode < factors_.size(); ++mode) {
      SliceRowSystems sys =
          BuildSliceRowSystems(y, omega, nullptr, factors_, w, mode);
      ApplyProximalRowUpdates(sys, previous[mode], mu, &factors_[mode]);
    }
  }
  if (!want_result) return StepResult();
  w = SolveTemporalRow(y, omega, nullptr, factors_, options_.ridge);
  return StepResult::Kruskal(factors_, std::move(w));
}

}  // namespace sofia
