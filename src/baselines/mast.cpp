#include "baselines/mast.hpp"

#include "baselines/common.hpp"
#include "linalg/solve.hpp"
#include "tensor/kruskal.hpp"

namespace sofia {

DenseTensor Mast::Step(const DenseTensor& y, const Mask& omega) {
  if (factors_.empty()) {
    factors_ = RandomNontemporalFactors(y.shape(), options_.rank,
                                        options_.seed);
  }
  const size_t rank = options_.rank;
  const double mu = options_.prox_weight;
  const std::vector<Matrix> previous = factors_;

  std::vector<double> w(rank, 0.0);
  for (int iter = 0; iter < options_.inner_iterations; ++iter) {
    w = SolveTemporalRow(y, omega, nullptr, factors_, options_.ridge);
    // Closed-form proximal row updates:
    // u_i = (B_i + μI)^{-1} (c_i + μ u_i^{prev}).
    for (size_t mode = 0; mode < factors_.size(); ++mode) {
      SliceRowSystems sys =
          BuildSliceRowSystems(y, omega, nullptr, factors_, w, mode);
      Matrix& u = factors_[mode];
      for (size_t i = 0; i < u.rows(); ++i) {
        Matrix b = sys.b[i];
        std::vector<double> c = sys.c[i];
        const double* prev_row = previous[mode].Row(i);
        for (size_t r = 0; r < rank; ++r) {
          b(r, r) += mu;
          c[r] += mu * prev_row[r];
        }
        u.SetRow(i, SolveRidge(b, c));
      }
    }
  }
  w = SolveTemporalRow(y, omega, nullptr, factors_, options_.ridge);
  return KruskalSlice(factors_, w);
}

}  // namespace sofia
