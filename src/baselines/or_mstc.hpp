#ifndef SOFIA_BASELINES_OR_MSTC_H_
#define SOFIA_BASELINES_OR_MSTC_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "baselines/observed_sweep.hpp"
#include "eval/streaming_method.hpp"
#include "linalg/matrix.hpp"

/// \file or_mstc.hpp
/// \brief OR-MSTC baseline (Najafi et al., IJCAI 2019 [15]).
///
/// Outlier-robust multi-aspect streaming completion, temporal-growth path:
/// each slice is decomposed as low-rank + sparse by alternating (a) the
/// temporal row solve on the outlier-cleaned slice, (b) proximal factor row
/// updates, and (c) soft-thresholding the residual into the outlier slab.
/// The method targets structured (mode-aligned) outliers, so its threshold
/// is a global one — exactly why the paper finds it weaker on element-wise
/// corruption (Section VI-C).

namespace sofia {

/// Options for OrMstc.
struct OrMstcOptions {
  size_t rank = 5;
  double prox_weight = 1.0;     ///< μ: pull toward the previous factors.
  double outlier_lambda = 1.0;  ///< Soft threshold for the sparse slab.
  double ridge = 1e-6;
  int inner_iterations = 3;
  uint64_t seed = 17;
  /// Worker threads for the observed-entry kernels (0 = hardware
  /// concurrency); results are bitwise identical for every setting.
  size_t num_threads = 1;
  /// Route the inner loops through the ObservedSweep core — including the
  /// outlier slab, which lives only at observed entries and is kept as a
  /// record-aligned vector instead of a dense tensor. False selects the
  /// dense-scan reference path.
  bool use_sparse_kernels = true;
};

/// OR-MSTC streaming method (no init window).
class OrMstc : public StreamingMethod {
 public:
  explicit OrMstc(OrMstcOptions options)
      : options_(options),
        sweep_(ObservedSweepOptions{options.num_threads,
                                    options.use_sparse_kernels}) {}

  std::string name() const override { return "OR-MSTC"; }
  /// Lazy step: the refreshed factors + final outlier-cleaned temporal row
  /// as a Kruskal-view StepResult (no dense reconstruction).
  StepResult StepLazy(const DenseTensor& y, const Mask& omega,
                      std::shared_ptr<const CooList> pattern =
                          nullptr) override;
  /// Advances the factors without the output-only tail (the final temporal
  /// re-solve exists purely for the returned estimate) — the
  /// forecast-protocol fast path.
  void Observe(const DenseTensor& y, const Mask& omega) override;
  void AdoptWorkerPool(std::shared_ptr<WorkerPool> pool) override {
    sweep_.AdoptPool(std::move(pool));
  }

  bool SupportsStateCheckpoint() const override { return true; }
  void SaveState(std::ostream& out) const override;
  void RestoreState(std::istream& in) override;

  const std::vector<Matrix>& factors() const { return factors_; }

 private:
  StepResult StepShared(const DenseTensor& y, const Mask& omega,
                        std::shared_ptr<const CooList> pattern,
                        bool want_result);
  StepResult StepDense(const DenseTensor& y, const Mask& omega,
                       bool want_result);

  OrMstcOptions options_;
  ObservedSweep sweep_;
  std::vector<Matrix> factors_;
};

}  // namespace sofia

#endif  // SOFIA_BASELINES_OR_MSTC_H_
