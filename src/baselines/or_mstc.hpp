#ifndef SOFIA_BASELINES_OR_MSTC_H_
#define SOFIA_BASELINES_OR_MSTC_H_

#include <cstdint>
#include <vector>

#include "eval/streaming_method.hpp"
#include "linalg/matrix.hpp"

/// \file or_mstc.hpp
/// \brief OR-MSTC baseline (Najafi et al., IJCAI 2019 [15]).
///
/// Outlier-robust multi-aspect streaming completion, temporal-growth path:
/// each slice is decomposed as low-rank + sparse by alternating (a) the
/// temporal row solve on the outlier-cleaned slice, (b) proximal factor row
/// updates, and (c) soft-thresholding the residual into the outlier slab.
/// The method targets structured (mode-aligned) outliers, so its threshold
/// is a global one — exactly why the paper finds it weaker on element-wise
/// corruption (Section VI-C).

namespace sofia {

/// Options for OrMstc.
struct OrMstcOptions {
  size_t rank = 5;
  double prox_weight = 1.0;     ///< μ: pull toward the previous factors.
  double outlier_lambda = 1.0;  ///< Soft threshold for the sparse slab.
  double ridge = 1e-6;
  int inner_iterations = 3;
  uint64_t seed = 17;
};

/// OR-MSTC streaming method (no init window).
class OrMstc : public StreamingMethod {
 public:
  explicit OrMstc(OrMstcOptions options) : options_(options) {}

  std::string name() const override { return "OR-MSTC"; }
  DenseTensor Step(const DenseTensor& y, const Mask& omega) override;

  const std::vector<Matrix>& factors() const { return factors_; }

 private:
  OrMstcOptions options_;
  std::vector<Matrix> factors_;
};

}  // namespace sofia

#endif  // SOFIA_BASELINES_OR_MSTC_H_
