#ifndef SOFIA_BASELINES_BATCH_ALS_H_
#define SOFIA_BASELINES_BATCH_ALS_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.hpp"
#include "tensor/dense_tensor.hpp"
#include "tensor/mask.hpp"

/// \file batch_als.hpp
/// \brief Vanilla batch ALS for incomplete tensors [43].
///
/// The classical alternating-least-squares CP factorization that only fits
/// the observed entries — no smoothness, no outlier handling. It is the
/// Fig. 2 initialization baseline and the factorization engine of CPHW.

namespace sofia {

/// Result of a batch ALS run.
struct BatchAlsResult {
  std::vector<Matrix> factors;  ///< One I_n x R matrix per mode.
  DenseTensor completed;        ///< [[U^(1),...,U^(N)]].
  double fitness = 0.0;
  int sweeps = 0;
};

/// Options for BatchAls.
struct BatchAlsOptions {
  size_t rank = 5;
  int max_iterations = 300;
  double tolerance = 1e-4;
  uint64_t seed = 29;
};

/// Factorizes the incomplete tensor `y` (any order; last mode temporal by
/// convention) from a random start.
BatchAlsResult BatchAls(const DenseTensor& y, const Mask& omega,
                        const BatchAlsOptions& options);

}  // namespace sofia

#endif  // SOFIA_BASELINES_BATCH_ALS_H_
