#include "baselines/observed_sweep.hpp"

#include <utility>

#include "linalg/solve.hpp"
#include "obs/obs.hpp"
#include "tensor/csf_kernels.hpp"
#include "util/check.hpp"

namespace sofia {

std::shared_ptr<const CooList> MakeSharedPattern(const Mask& omega,
                                                 bool with_mode_buckets) {
  return std::make_shared<const CooList>(
      CooList::Build(omega, with_mode_buckets));
}

void ObservedSweep::BeginStep(const DenseTensor& y, const Mask& omega,
                              std::shared_ptr<const CooList> shared) {
  static obs::Counter* steps =
      obs::Registry::Global().FindOrCreateCounter("baseline.sweep_steps");
  steps->Add(1);
  SOFIA_CHECK(y.shape() == omega.shape());
  if (shared != nullptr) {
    SOFIA_CHECK(shared->shape() == omega.shape());
    coo_ = std::move(shared);
    // Seed the reuse cache so a later unshared step with the same mask can
    // still skip its rebuild. The cache is a SparseMask built from the
    // records just adopted, so both the staleness check and the reseed are
    // O(|Ω_t|) — never a dense indicator copy or byte scan.
    if (!mask_.Matches(omega)) mask_ = SparseMask::FromCoo(*coo_);
  } else {
    const bool reusable = options_.reuse_step_pattern && coo_ != nullptr &&
                          mask_.Matches(omega);
    if (!reusable) {
      coo_ = MakeSharedPattern(omega, options_.with_mode_buckets);
      mask_ = SparseMask::FromCoo(*coo_);
      ++pattern_builds_;
    } else {
      ++pattern_reuses_;
    }
  }
  BindCsf(coo_, options_.pattern_storage, &csf_, &csf_source_);
  coo_->GatherInto(y, &values_);
}

const CooList& ObservedSweep::pattern() const {
  SOFIA_CHECK(coo_ != nullptr) << "ObservedSweep used before BeginStep";
  return *coo_;
}

WorkerPool* ObservedSweep::Pool() const {
  if (external_pool_ != nullptr) {
    // A shared single-thread pool is equivalent to the serial path; skip
    // its dispatch entirely so adoption never slows serial methods down.
    return external_pool_->num_threads() > 1 ? external_pool_.get() : nullptr;
  }
  if (resolved_threads_ <= 1) return nullptr;
  if (!pool_) pool_ = std::make_unique<ShardExecutor>(resolved_threads_);
  return pool_.get();
}

NormalSystem ObservedSweep::TemporalSystem(
    const std::vector<Matrix>& factors,
    const std::vector<double>& vals) const {
  if (csf_ != nullptr) {
    return CsfNormalSystem(*csf_, vals, factors, /*num_threads=*/1, Pool());
  }
  return CooNormalSystem(pattern(), vals, factors, /*num_threads=*/1, Pool());
}

std::vector<double> ObservedSweep::SolveTemporalRow(
    const std::vector<Matrix>& factors, const std::vector<double>& vals,
    double ridge) const {
  NormalSystem sys = TemporalSystem(factors, vals);
  for (size_t r = 0; r < sys.c.size(); ++r) sys.b(r, r) += ridge;
  return SolveRidge(sys.b, sys.c);
}

RowSystems ObservedSweep::WeightedRowSystems(
    const std::vector<Matrix>& factors, const std::vector<double>& w,
    const std::vector<double>& vals, size_t mode) const {
  if (csf_ != nullptr) {
    return CsfWeightedRowSystems(*csf_, vals, factors, w, mode,
                                 /*num_threads=*/1, Pool());
  }
  return CooWeightedRowSystems(pattern(), vals, factors, w, mode,
                               /*num_threads=*/1, Pool());
}

void ObservedSweep::ProximalRowSweep(const std::vector<Matrix>& factors,
                                     const std::vector<double>& w,
                                     const std::vector<double>& vals,
                                     size_t mode, const Matrix& previous,
                                     double mu, Matrix* u) const {
  if (csf_ != nullptr) {
    CsfProximalRowUpdates(*csf_, vals, factors, w, mode, previous, mu, u,
                          /*num_threads=*/1, Pool());
    return;
  }
  CooProximalRowUpdates(pattern(), vals, factors, w, mode, previous, mu, u,
                        /*num_threads=*/1, Pool());
}

ModeGradients ObservedSweep::Gradients(
    const std::vector<Matrix>& factors, const std::vector<double>& w,
    const std::vector<double>& residuals, bool with_traces) const {
  if (csf_ != nullptr) {
    return CsfModeGradients(*csf_, residuals, factors, w, /*num_threads=*/1,
                            Pool(), with_traces);
  }
  return CooModeGradients(pattern(), residuals, factors, w, /*num_threads=*/1,
                          Pool(), with_traces);
}

std::vector<double> ObservedSweep::Reconstruct(
    const std::vector<Matrix>& factors, const std::vector<double>& w) const {
  if (csf_ != nullptr) {
    return CsfKruskalGather(*csf_, factors, w, /*num_threads=*/1, Pool());
  }
  return CooKruskalGather(pattern(), factors, w, /*num_threads=*/1, Pool());
}

const std::vector<double>& ObservedSweep::SliceReconstruct(
    const std::vector<Matrix>& factors, const std::vector<double>& w) const {
  CooKruskalSliceGather(pattern(), factors, w, &slice_gather_scratch_,
                        /*num_threads=*/1, Pool());
  return slice_gather_scratch_;
}

}  // namespace sofia
