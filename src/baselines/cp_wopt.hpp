#ifndef SOFIA_BASELINES_CP_WOPT_H_
#define SOFIA_BASELINES_CP_WOPT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "linalg/matrix.hpp"
#include "tensor/coo_list.hpp"
#include "tensor/dense_tensor.hpp"
#include "tensor/mask.hpp"

/// \file cp_wopt.hpp
/// \brief CP-WOPT baseline (Acar et al. [9], Table I).
///
/// Weighted optimization for CP factorization of incomplete tensors: all
/// factor matrices are optimized *jointly* with a first-order method on the
/// masked least-squares loss
///     f(U) = 0.5 ||Ω ⊛ (Y - [[U^(1),...,U^(N)]])||_F^2,
/// in contrast to the alternating solves of ALS. The original uses NCG;
/// we use the library's limited-memory quasi-Newton solver, which belongs
/// to the same first-order family and matches it on these problem sizes.

namespace sofia {

/// Options for CpWopt.
struct CpWoptOptions {
  size_t rank = 5;
  int max_iterations = 300;
  double gradient_tolerance = 1e-6;
  uint64_t seed = 37;
  /// Worker threads for the observed-entry loss/gradient kernels (0 = use
  /// the hardware concurrency).
  size_t num_threads = 1;
};

/// Result of a CP-WOPT run.
struct CpWoptResult {
  std::vector<Matrix> factors;  ///< One I_n x R matrix per mode.
  DenseTensor completed;        ///< [[U^(1),...,U^(N)]].
  double loss = 0.0;            ///< Final masked least-squares loss.
  int iterations = 0;
  bool converged = false;
};

/// Factorizes the incomplete tensor `y` from a random start. `pattern` may
/// hold a prebuilt CooList of `omega` (e.g. the shared per-step pattern of a
/// comparison run); when null the pattern is compacted once internally and
/// reused across every quasi-Newton iterate.
CpWoptResult CpWopt(const DenseTensor& y, const Mask& omega,
                    const CpWoptOptions& options,
                    std::shared_ptr<const CooList> pattern = nullptr);

/// Like CpWopt but leaves `completed` empty (no O(volume R) Kruskal
/// materialization — the streaming adapter wraps the factors in a lazy
/// StepResult instead) and optionally warm-starts from `initial` factors
/// (must match y's mode shapes and the configured rank). Null `initial`
/// draws the same random start as CpWopt.
CpWoptResult CpWoptFactorize(const DenseTensor& y, const Mask& omega,
                             const CpWoptOptions& options,
                             std::shared_ptr<const CooList> pattern = nullptr,
                             const std::vector<Matrix>* initial = nullptr);

/// The masked loss and its analytic gradient (exposed for testing: the
/// gradient is validated against finite differences). The dense-pair
/// overloads compact `omega` once via the shared build helper; callers that
/// evaluate both on the same mask should prebuild the pattern and use the
/// record-aligned overloads (`values` as in CooList::Gather).
double CpWoptLoss(const DenseTensor& y, const Mask& omega,
                  const std::vector<Matrix>& factors);
double CpWoptLoss(const CooList& coo, const std::vector<double>& values,
                  const std::vector<Matrix>& factors);
std::vector<Matrix> CpWoptGradient(const DenseTensor& y, const Mask& omega,
                                   const std::vector<Matrix>& factors);
std::vector<Matrix> CpWoptGradient(const CooList& coo,
                                   const std::vector<double>& values,
                                   const std::vector<Matrix>& factors);

}  // namespace sofia

#endif  // SOFIA_BASELINES_CP_WOPT_H_
