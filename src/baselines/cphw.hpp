#ifndef SOFIA_BASELINES_CPHW_H_
#define SOFIA_BASELINES_CPHW_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "eval/streaming_method.hpp"
#include "linalg/matrix.hpp"
#include "timeseries/hw_fit.hpp"

/// \file cphw.hpp
/// \brief CPHW baseline (Dunlavy et al., TKDD 2011 [17]).
///
/// Batch CP factorization of the accumulated history followed by a
/// Holt-Winters extrapolation of the temporal factor: the classic
/// "factorize, then forecast the temporal mode" recipe. It is a batch
/// method — the factorization is recomputed from scratch when a forecast is
/// requested — and it has no missing-value or outlier handling beyond what
/// ALS-on-observed-entries provides.

namespace sofia {

/// Options for Cphw.
struct CphwOptions {
  size_t rank = 5;
  size_t period = 7;
  int max_iterations = 100;
  double tolerance = 1e-4;
  uint64_t seed = 31;
};

/// CPHW method: accumulates slices, factorizes on demand, forecasts via HW.
class Cphw : public StreamingMethod {
 public:
  explicit Cphw(CphwOptions options) : options_(options) {}

  std::string name() const override { return "CPHW"; }

  /// Stores the slice; the "estimate" is the observed data itself (CPHW is
  /// a forecasting method, not an imputation competitor in the paper) —
  /// returned as a lazy masked view sharing the stored history slice, so
  /// no O(volume) Ω ⊛ Y tensor is built unless someone materializes it.
  StepResult StepLazy(const DenseTensor& y, const Mask& omega,
                      std::shared_ptr<const CooList> pattern =
                          nullptr) override;

  bool SupportsForecast() const override { return true; }
  /// Lazy HW-extrapolated Kruskal view (fits the batch factorization on
  /// first use after new data).
  StepResult ForecastLazy(size_t h) const override;

  /// Checkpoints the accumulated history (the method's only durable state);
  /// the batch factorization is derived and refits lazily after restore.
  bool SupportsStateCheckpoint() const override { return true; }
  void SaveState(std::ostream& out) const override;
  void RestoreState(std::istream& in) override;

 private:
  void FitIfNeeded() const;

  CphwOptions options_;
  /// Accumulated history, shared with the StepLazy handles (one copy per
  /// incoming slice, zero per handle).
  std::vector<std::shared_ptr<const DenseTensor>> history_;
  std::vector<Mask> mask_history_;

  // Lazily-computed factorization + HW fits (invalidated by new data).
  mutable bool fitted_ = false;
  mutable std::vector<Matrix> nontemporal_;
  mutable std::vector<HwFit> hw_fits_;
};

}  // namespace sofia

#endif  // SOFIA_BASELINES_CPHW_H_
