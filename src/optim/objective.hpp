#ifndef SOFIA_OPTIM_OBJECTIVE_H_
#define SOFIA_OPTIM_OBJECTIVE_H_

#include <functional>
#include <vector>

/// \file objective.hpp
/// \brief Differentiable objective interface for the bounded optimizer.

namespace sofia {

/// A scalar objective over R^n. Gradient defaults to central differences so
/// small problems (e.g. the 3-parameter Holt-Winters SSE) need only Value().
class Objective {
 public:
  virtual ~Objective() = default;

  /// Objective value at x.
  virtual double Value(const std::vector<double>& x) const = 0;

  /// Gradient at x; the default is a central-difference approximation.
  virtual void Gradient(const std::vector<double>& x,
                        std::vector<double>* grad) const;
};

/// Adapts a plain std::function as an Objective.
class FunctionObjective : public Objective {
 public:
  explicit FunctionObjective(
      std::function<double(const std::vector<double>&)> fn)
      : fn_(std::move(fn)) {}

  double Value(const std::vector<double>& x) const override { return fn_(x); }

 private:
  std::function<double(const std::vector<double>&)> fn_;
};

/// Central-difference gradient with step h * max(1, |x_i|).
void NumericGradient(const Objective& obj, const std::vector<double>& x,
                     std::vector<double>* grad, double h = 1e-6);

}  // namespace sofia

#endif  // SOFIA_OPTIM_OBJECTIVE_H_
