#include "optim/objective.hpp"

#include <cmath>

namespace sofia {

void Objective::Gradient(const std::vector<double>& x,
                         std::vector<double>* grad) const {
  NumericGradient(*this, x, grad);
}

void NumericGradient(const Objective& obj, const std::vector<double>& x,
                     std::vector<double>* grad, double h) {
  grad->assign(x.size(), 0.0);
  std::vector<double> probe = x;
  for (size_t i = 0; i < x.size(); ++i) {
    const double step = h * std::max(1.0, std::fabs(x[i]));
    probe[i] = x[i] + step;
    const double fp = obj.Value(probe);
    probe[i] = x[i] - step;
    const double fm = obj.Value(probe);
    probe[i] = x[i];
    (*grad)[i] = (fp - fm) / (2.0 * step);
  }
}

}  // namespace sofia
