#include "optim/lbfgsb.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "linalg/vector_ops.hpp"
#include "util/check.hpp"

namespace sofia {

namespace {

/// Clamp x into [lower, upper] component-wise.
void Project(const std::vector<double>& lower, const std::vector<double>& upper,
             std::vector<double>* x) {
  for (size_t i = 0; i < x->size(); ++i) {
    (*x)[i] = std::clamp((*x)[i], lower[i], upper[i]);
  }
}

/// Infinity norm of the projected gradient: the first-order optimality
/// measure for box-constrained problems (P(x - g) - x).
double ProjectedGradientNorm(const std::vector<double>& x,
                             const std::vector<double>& g,
                             const std::vector<double>& lower,
                             const std::vector<double>& upper) {
  double norm = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    double step = std::clamp(x[i] - g[i], lower[i], upper[i]) - x[i];
    norm = std::max(norm, std::fabs(step));
  }
  return norm;
}

/// True if coordinate i sits on a bound that the gradient pushes against.
bool AtActiveBound(double x, double g, double lo, double hi) {
  const double kBoundTol = 1e-12;
  if (x <= lo + kBoundTol && g > 0.0) return true;
  if (x >= hi - kBoundTol && g < 0.0) return true;
  return false;
}

}  // namespace

LbfgsbResult LbfgsbMinimize(const Objective& obj, std::vector<double> x0,
                            const std::vector<double>& lower,
                            const std::vector<double>& upper,
                            const LbfgsbOptions& options) {
  const size_t n = x0.size();
  SOFIA_CHECK_EQ(lower.size(), n);
  SOFIA_CHECK_EQ(upper.size(), n);
  for (size_t i = 0; i < n; ++i) SOFIA_CHECK_LE(lower[i], upper[i]);

  LbfgsbResult result;
  Project(lower, upper, &x0);
  std::vector<double> x = std::move(x0);
  double f = obj.Value(x);
  std::vector<double> g;
  obj.Gradient(x, &g);

  // L-BFGS correction pairs, newest at the back.
  std::deque<std::vector<double>> s_hist, y_hist;
  std::deque<double> rho_hist;

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    if (ProjectedGradientNorm(x, g, lower, upper) <
        options.gradient_tolerance) {
      result.converged = true;
      result.message = "projected gradient below tolerance";
      break;
    }

    // Two-loop recursion over free variables only: gradient components that
    // push against an active bound are zeroed so the direction stays in the
    // feasible cone.
    std::vector<double> q = g;
    for (size_t i = 0; i < n; ++i) {
      if (AtActiveBound(x[i], g[i], lower[i], upper[i])) q[i] = 0.0;
    }
    std::vector<double> alpha(s_hist.size());
    for (size_t k = s_hist.size(); k-- > 0;) {
      alpha[k] = rho_hist[k] * Dot(s_hist[k], q);
      Axpy(-alpha[k], y_hist[k], &q);
    }
    if (!s_hist.empty()) {
      const auto& s = s_hist.back();
      const auto& y = y_hist.back();
      const double gamma = Dot(s, y) / std::max(Dot(y, y), 1e-300);
      Scale(gamma, &q);
    }
    for (size_t k = 0; k < s_hist.size(); ++k) {
      const double beta = rho_hist[k] * Dot(y_hist[k], q);
      Axpy(alpha[k] - beta, s_hist[k], &q);
    }
    std::vector<double> direction = q;
    Scale(-1.0, &direction);
    for (size_t i = 0; i < n; ++i) {
      if (AtActiveBound(x[i], g[i], lower[i], upper[i])) direction[i] = 0.0;
    }

    // Fall back to steepest descent if the quasi-Newton direction fails to
    // be a usable descent direction — either uphill or nearly orthogonal to
    // the gradient (the angle test below). Both signal a degenerate
    // inverse-Hessian model, so the correction history is dropped too.
    double dg = Dot(direction, g);
    const double angle_floor = -1e-6 * Norm2(direction) * Norm2(g);
    if (dg >= angle_floor) {
      s_hist.clear();
      y_hist.clear();
      rho_hist.clear();
      for (size_t i = 0; i < n; ++i) {
        direction[i] =
            AtActiveBound(x[i], g[i], lower[i], upper[i]) ? 0.0 : -g[i];
      }
      dg = Dot(direction, g);
      if (dg >= 0.0) {
        result.converged = true;
        result.message = "no feasible descent direction";
        break;
      }
    }

    // Weak-Wolfe line search (Lewis-Overton bisection) along the projected
    // path P(x + t d). The curvature condition g_new^T d >= c2 * g^T d keeps
    // the accepted (s, y) pairs useful — Armijo-only acceptance stagnates in
    // ill-conditioned valleys because near-zero-curvature pairs freeze the
    // inverse-Hessian model.
    const double wolfe_c2 = 0.9;
    double t_lo = 0.0;
    double t_hi = std::numeric_limits<double>::infinity();
    double t = 1.0;
    std::vector<double> x_new(n), g_new;
    double f_new = f;
    bool accepted = false;
    std::vector<double> x_best;
    double f_best = f;
    for (int ls = 0; ls < options.max_line_search_steps; ++ls) {
      for (size_t i = 0; i < n; ++i) x_new[i] = x[i] + t * direction[i];
      Project(lower, upper, &x_new);
      f_new = obj.Value(x_new);
      if (f_new < f_best) {
        f_best = f_new;
        x_best = x_new;
      }
      // Sufficient decrease relative to the *actual* projected displacement.
      double decrease = 0.0;
      for (size_t i = 0; i < n; ++i) decrease += g[i] * (x_new[i] - x[i]);
      if (f_new > f + options.armijo_c1 * decrease || f_new >= f) {
        t_hi = t;  // Step too long (or no progress): shrink.
        t = 0.5 * (t_lo + t_hi);
      } else {
        obj.Gradient(x_new, &g_new);
        if (Dot(g_new, direction) < wolfe_c2 * dg) {
          t_lo = t;  // Step too short for useful curvature: lengthen.
          t = std::isinf(t_hi) ? 2.0 * t : 0.5 * (t_lo + t_hi);
        } else {
          accepted = true;
          break;
        }
      }
      if (t <= 1e-16 || t >= 1e16) break;
    }
    if (!accepted && f_best < f) {
      // Wolfe curvature never satisfied, but decrease was found: take the
      // best point seen (the curvature filter below guards the history).
      x_new = std::move(x_best);
      f_new = f_best;
      obj.Gradient(x_new, &g_new);
      accepted = true;
    }
    if (!accepted) {
      // One retry from a clean slate: a poisoned history can make every
      // quasi-Newton step unacceptable while plain gradient descent still
      // works. If the history is already empty, we are genuinely done.
      if (!s_hist.empty()) {
        s_hist.clear();
        y_hist.clear();
        rho_hist.clear();
        continue;
      }
      result.converged = true;
      result.message = "line search could not improve";
      break;
    }

    std::vector<double> s = Sub(x_new, x);
    std::vector<double> y = Sub(g_new, g);
    const double sy = Dot(s, y);
    if (sy > 1e-12 * Norm2(s) * Norm2(y)) {  // Curvature condition.
      s_hist.push_back(std::move(s));
      y_hist.push_back(std::move(y));
      rho_hist.push_back(1.0 / sy);
      if (static_cast<int>(s_hist.size()) > options.history) {
        s_hist.pop_front();
        y_hist.pop_front();
        rho_hist.pop_front();
      }
    }

    const double f_old = f;
    x = std::move(x_new);
    f = f_new;
    g = std::move(g_new);
    if (std::fabs(f_old - f) <=
        options.f_tolerance * std::max({std::fabs(f_old), std::fabs(f), 1.0})) {
      result.converged = true;
      result.message = "function decrease below tolerance";
      break;
    }
  }

  if (result.message.empty()) result.message = "max iterations reached";
  result.x = std::move(x);
  result.f = f;
  return result;
}

}  // namespace sofia
