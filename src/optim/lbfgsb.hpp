#ifndef SOFIA_OPTIM_LBFGSB_H_
#define SOFIA_OPTIM_LBFGSB_H_

#include <string>
#include <vector>

#include "optim/objective.hpp"

/// \file lbfgsb.hpp
/// \brief Box-constrained limited-memory quasi-Newton minimizer.
///
/// The paper fits Holt-Winters smoothing parameters with BFGS-B [42]. We
/// implement a projected L-BFGS: the two-loop recursion builds a quasi-Newton
/// direction restricted to the free (non-active-bound) variables, and an
/// Armijo backtracking search runs along the *projected* path
/// `P(x + alpha d)`. This is the classical gradient-projection simplification
/// of L-BFGS-B; for the small, smooth, low-dimensional problems in this
/// library it matches the reference solver to the tolerances we test.

namespace sofia {

/// Options for LbfgsbMinimize.
struct LbfgsbOptions {
  int max_iterations = 200;
  int history = 8;                ///< Number of (s, y) correction pairs kept.
  double gradient_tolerance = 1e-7;  ///< On the projected gradient inf-norm.
  double f_tolerance = 1e-12;     ///< Relative decrease convergence test.
  double armijo_c1 = 1e-4;
  double step_shrink = 0.5;
  int max_line_search_steps = 40;
};

/// Result of a minimization run.
struct LbfgsbResult {
  std::vector<double> x;       ///< Final iterate (always within bounds).
  double f = 0.0;              ///< Objective at x.
  int iterations = 0;
  bool converged = false;
  std::string message;
};

/// Minimize `obj` over the box [lower_i, upper_i]^n starting from x0 (which
/// is clamped into the box). Pass +/-infinity for unbounded coordinates.
LbfgsbResult LbfgsbMinimize(const Objective& obj, std::vector<double> x0,
                            const std::vector<double>& lower,
                            const std::vector<double>& upper,
                            const LbfgsbOptions& options = {});

}  // namespace sofia

#endif  // SOFIA_OPTIM_LBFGSB_H_
