#include "timeseries/robust_hw_fit.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "optim/lbfgsb.hpp"
#include "timeseries/robust.hpp"
#include "util/check.hpp"

namespace sofia {

namespace {

/// Median absolute deviation of the first two seasons: a robust seed for
/// the error scale σ̂_0.
double InitialScale(const std::vector<double>& series, size_t period) {
  const size_t n = std::min(series.size(), 2 * period);
  std::vector<double> window(series.begin(),
                             series.begin() + static_cast<long>(n));
  std::vector<double> sorted = window;
  std::nth_element(sorted.begin(), sorted.begin() + static_cast<long>(n / 2),
                   sorted.end());
  const double median = sorted[n / 2];
  std::vector<double> deviations(n);
  for (size_t i = 0; i < n; ++i) {
    deviations[i] = std::fabs(window[i] - median);
  }
  std::nth_element(deviations.begin(),
                   deviations.begin() + static_cast<long>(n / 2),
                   deviations.end());
  // 1.4826 * MAD estimates the Gaussian sigma.
  return std::max(1.4826 * deviations[n / 2], 1e-6);
}

/// Runs the pre-cleaned recursion; fills `cleaned` (if non-null) and
/// returns the accumulated bounded loss.
double Replay(const std::vector<double>& series, size_t period,
              const HwParams& params, double phi, HoltWinters* final_model,
              std::vector<double>* cleaned) {
  HoltWinters hw(period, params);
  // Initialize from the raw head of the series (two seasons); the cleaning
  // then protects the recursion from every subsequent spike.
  hw.InitializeFromHistory(series);
  double sigma = InitialScale(series, period);
  double loss = 0.0;
  if (cleaned != nullptr) cleaned->clear();
  for (double y : series) {
    const double forecast = hw.ForecastNext();
    const double e = (y - forecast) / sigma;
    loss += BiweightRho(e);
    const double y_clean = CleanObservation(y, forecast, sigma);
    // Reject first, then adapt the scale — the ordering Section V-C argues
    // for (an extreme spike must not inflate σ̂ before it is cleaned).
    sigma = UpdateErrorScale(y, forecast, sigma, phi);
    hw.Update(y_clean);
    if (cleaned != nullptr) cleaned->push_back(y_clean);
  }
  if (final_model != nullptr) *final_model = hw;
  return loss;
}

}  // namespace

double RobustHwLoss(const std::vector<double>& series, size_t period,
                    const HwParams& params, double phi) {
  if (series.size() < 2 * period) return 0.0;
  return Replay(series, period, params, phi, nullptr, nullptr);
}

RobustHwFit FitRobustHoltWinters(const std::vector<double>& series,
                                 size_t period, double phi) {
  SOFIA_CHECK_GE(series.size(), 2 * period)
      << "need two full seasons to fit Holt-Winters";

  FunctionObjective objective([&](const std::vector<double>& p) {
    auto clamp01 = [](double v) { return std::min(1.0, std::max(0.0, v)); };
    return RobustHwLoss(series, period,
                        HwParams{.alpha = clamp01(p[0]),
                                 .beta = clamp01(p[1]),
                                 .gamma = clamp01(p[2])},
                        phi);
  });
  const std::vector<double> lower(3, 0.0), upper(3, 1.0);
  LbfgsbOptions options;
  options.max_iterations = 100;
  double best_f = std::numeric_limits<double>::infinity();
  std::vector<double> best = {0.3, 0.1, 0.1};
  for (const auto& start : {std::vector<double>{0.3, 0.1, 0.1},
                            std::vector<double>{0.7, 0.05, 0.3},
                            std::vector<double>{0.1, 0.01, 0.7},
                            std::vector<double>{0.5, 0.5, 0.5}}) {
    LbfgsbResult res = LbfgsbMinimize(objective, start, lower, upper, options);
    if (res.f < best_f) {
      best_f = res.f;
      best = res.x;
    }
  }

  RobustHwFit fit;
  fit.params = HwParams{.alpha = best[0], .beta = best[1], .gamma = best[2]};
  fit.robust_loss = best_f;
  HoltWinters hw(period, fit.params);
  Replay(series, period, fit.params, phi, &hw, &fit.cleaned_series);
  fit.level = hw.level();
  fit.trend = hw.trend();
  fit.seasonal = hw.SeasonalFromNext();
  return fit;
}

HoltWinters ModelFromRobustFit(const RobustHwFit& fit, size_t period) {
  HoltWinters hw(period, fit.params);
  hw.SetState(fit.level, fit.trend, fit.seasonal);
  return hw;
}

}  // namespace sofia
