#ifndef SOFIA_TIMESERIES_PERIOD_H_
#define SOFIA_TIMESERIES_PERIOD_H_

#include <cstddef>
#include <vector>

/// \file period.hpp
/// \brief Seasonal-period detection from (possibly incomplete) series.
///
/// SOFIA takes the seasonal period m as an input. When m is unknown, the
/// standard estimate is the lag of the strongest autocorrelation peak;
/// the masked variant uses only index pairs where both samples are
/// observed, so it tolerates the missing data of real streams.

namespace sofia {

/// Autocorrelation of `series` at `lag` (mean-removed, biased normalizer).
/// With a non-null `observed` mask, only pairs with both points observed
/// contribute. Returns 0 when fewer than two pairs are available.
double Autocorrelation(const std::vector<double>& series, size_t lag,
                       const std::vector<bool>* observed = nullptr);

/// Estimates the seasonal period as the lag in [min_lag, max_lag] with the
/// largest autocorrelation that is also a local peak (greater than its
/// neighbouring lags). Falls back to the global argmax if no local peak
/// exists. Returns 0 if the series is too short (needs 2 * max_lag points).
size_t EstimatePeriod(const std::vector<double>& series, size_t min_lag,
                      size_t max_lag,
                      const std::vector<bool>* observed = nullptr);

}  // namespace sofia

#endif  // SOFIA_TIMESERIES_PERIOD_H_
