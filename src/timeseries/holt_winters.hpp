#ifndef SOFIA_TIMESERIES_HOLT_WINTERS_H_
#define SOFIA_TIMESERIES_HOLT_WINTERS_H_

#include <cstddef>
#include <vector>

/// \file holt_winters.hpp
/// \brief Additive Holt-Winters recursions (Section III-C).
///
/// The model keeps a level `l`, a trend `b`, and the last `m` seasonal
/// components `s` (a ring buffer indexed by time mod m). Update() applies the
/// smoothing equations (5a)-(5c); Forecast() applies Eq. (6).

namespace sofia {

/// Smoothing parameters, each in [0, 1].
struct HwParams {
  double alpha = 0.3;  ///< Level smoothing.
  double beta = 0.1;   ///< Trend smoothing.
  double gamma = 0.1;  ///< Seasonal smoothing.
};

/// Additive Holt-Winters model for a scalar series.
class HoltWinters {
 public:
  /// Seasonal period m >= 1 (m == 1 degrades to double exponential
  /// smoothing with a single seasonal slot).
  HoltWinters(size_t period, HwParams params);

  /// Conventional initialization from at least two full seasons of data
  /// (Hyndman & Athanasopoulos): level = mean of season 1, trend = averaged
  /// season-over-season slope, seasonal = de-leveled first-season values.
  /// Sets the state as of t = 0; call Update() on each observation (including
  /// the ones in `history`) to advance the model through the series.
  void InitializeFromHistory(const std::vector<double>& history);

  /// Directly set the state (used by SOFIA, which fits components itself).
  void SetState(double level, double trend, std::vector<double> seasonal);

  /// One-step-ahead forecast from the current state (h = 1 of Eq. (6)).
  double ForecastNext() const;

  /// h-step-ahead forecast (h >= 1), Eq. (6).
  double Forecast(size_t h) const;

  /// Consume one observation, applying the smoothing equations (5a)-(5c).
  void Update(double y);

  double level() const { return level_; }
  double trend() const { return trend_; }
  /// Seasonal component that will be used for the next observation.
  double NextSeason() const { return seasonal_[pos_]; }
  const std::vector<double>& seasonal() const { return seasonal_; }
  /// Seasonal ring buffer rotated so index 0 is the next observation's slot;
  /// feeding this to SetState() reproduces the current forecasts.
  std::vector<double> SeasonalFromNext() const;
  size_t period() const { return seasonal_.size(); }
  const HwParams& params() const { return params_; }

 private:
  HwParams params_;
  double level_ = 0.0;
  double trend_ = 0.0;
  std::vector<double> seasonal_;  ///< Ring buffer of the last m components.
  size_t pos_ = 0;                ///< Slot of the *next* observation (t mod m).
};

/// Runs HW over `series` from conventional initialization and returns the
/// sum of squared one-step-ahead forecast errors (the fitting criterion of
/// Section III-C). The first `period` observations seed the initial state.
double HoltWintersSse(const std::vector<double>& series, size_t period,
                      const HwParams& params);

}  // namespace sofia

#endif  // SOFIA_TIMESERIES_HOLT_WINTERS_H_
