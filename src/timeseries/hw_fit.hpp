#ifndef SOFIA_TIMESERIES_HW_FIT_H_
#define SOFIA_TIMESERIES_HW_FIT_H_

#include <vector>

#include "timeseries/holt_winters.hpp"

/// \file hw_fit.hpp
/// \brief Fitting the additive Holt-Winters model to a series (Section V-B).
///
/// SOFIA fits one HW model per temporal-factor column: the smoothing
/// parameters (alpha, beta, gamma) are found by minimizing the sum of squared
/// one-step-ahead forecast errors with the box-constrained quasi-Newton
/// solver, exactly as the paper prescribes (BFGS-B over [0,1]^3).

namespace sofia {

/// Outcome of FitHoltWinters: tuned parameters plus the model state after
/// consuming the whole training series (ready to forecast step t+1).
struct HwFit {
  HwParams params;
  double level = 0.0;
  double trend = 0.0;
  std::vector<double> seasonal;  ///< Last m seasonal components, slot order.
  double sse = 0.0;              ///< Training SSE at the optimum.
};

/// Fit HW to `series` (length >= 2 * period). Multi-start over a coarse grid
/// guards against the SSE surface's local minima; each start is refined with
/// the bounded quasi-Newton solver.
HwFit FitHoltWinters(const std::vector<double>& series, size_t period);

/// Build a HoltWinters model positioned at the end of `series` using the
/// fitted parameters (convenience for forecasting from a fit).
HoltWinters ModelFromFit(const HwFit& fit, size_t period);

}  // namespace sofia

#endif  // SOFIA_TIMESERIES_HW_FIT_H_
