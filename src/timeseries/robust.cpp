#include "timeseries/robust.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace sofia {

double HuberPsi(double x, double k) {
  if (std::fabs(x) < k) return x;
  return x >= 0.0 ? k : -k;
}

double BiweightRho(double x, double k, double ck) {
  if (std::fabs(x) > k) return ck;
  const double u = 1.0 - (x / k) * (x / k);
  return ck * (1.0 - u * u * u);
}

double CleanObservation(double y, double forecast, double sigma, double k) {
  SOFIA_DCHECK(sigma > 0.0);
  return HuberPsi((y - forecast) / sigma, k) * sigma + forecast;
}

double UpdateErrorScale(double y, double forecast, double sigma_prev,
                        double phi, double k, double ck) {
  SOFIA_DCHECK(sigma_prev > 0.0);
  const double standardized = (y - forecast) / sigma_prev;
  const double var = phi * BiweightRho(standardized, k, ck) * sigma_prev *
                         sigma_prev +
                     (1.0 - phi) * sigma_prev * sigma_prev;
  return std::sqrt(var);
}

}  // namespace sofia
