#ifndef SOFIA_TIMESERIES_ROBUST_H_
#define SOFIA_TIMESERIES_ROBUST_H_

/// \file robust.hpp
/// \brief Robust-statistics kernels of Section III-D.
///
/// The Huber Ψ-function caps standardized residuals at ±k; the biweight
/// ρ-function bounds the influence of residuals on the error-scale update.
/// The paper (and Gelper et al.) use k = 2 and ck = 2.52.

namespace sofia {

/// Default cap for the Huber Ψ-function (paper Section III-D).
inline constexpr double kHuberK = 2.0;
/// Default plateau constant for the biweight ρ-function.
inline constexpr double kBiweightCk = 2.52;

/// Huber Ψ: identity inside [-k, k], clipped to ±k outside.
double HuberPsi(double x, double k = kHuberK);

/// Tukey biweight ρ: ck * (1 - (1 - (x/k)^2)^3) inside [-k, k], ck outside.
double BiweightRho(double x, double k = kHuberK, double ck = kBiweightCk);

/// Gelper pre-cleaning rule (Eq. (7)): replace observation `y` by a cleaned
/// value given the one-step-ahead forecast and the current error scale.
double CleanObservation(double y, double forecast, double sigma,
                        double k = kHuberK);

/// Error-scale recursion (Eq. (8)): returns the updated sigma_t given the
/// residual `y - forecast`, the previous scale, and smoothing phi.
double UpdateErrorScale(double y, double forecast, double sigma_prev,
                        double phi, double k = kHuberK,
                        double ck = kBiweightCk);

}  // namespace sofia

#endif  // SOFIA_TIMESERIES_ROBUST_H_
