#include "timeseries/period.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace sofia {

double Autocorrelation(const std::vector<double>& series, size_t lag,
                       const std::vector<bool>* observed) {
  const size_t n = series.size();
  if (lag >= n) return 0.0;
  SOFIA_CHECK(observed == nullptr || observed->size() == n);

  auto is_observed = [&](size_t i) {
    return observed == nullptr || (*observed)[i];
  };

  double mean = 0.0;
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    if (is_observed(i)) {
      mean += series[i];
      ++count;
    }
  }
  if (count < 2) return 0.0;
  mean /= static_cast<double>(count);

  double numerator = 0.0, denominator = 0.0;
  size_t pairs = 0;
  for (size_t i = 0; i + lag < n; ++i) {
    if (is_observed(i) && is_observed(i + lag)) {
      numerator += (series[i] - mean) * (series[i + lag] - mean);
      ++pairs;
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (is_observed(i)) {
      denominator += (series[i] - mean) * (series[i] - mean);
    }
  }
  if (pairs < 2 || denominator <= 0.0) return 0.0;
  // Normalize by pair count so heavily-masked long lags are comparable.
  return (numerator / static_cast<double>(pairs)) /
         (denominator / static_cast<double>(count));
}

size_t EstimatePeriod(const std::vector<double>& series, size_t min_lag,
                      size_t max_lag, const std::vector<bool>* observed) {
  SOFIA_CHECK_GE(min_lag, 2u);
  SOFIA_CHECK_GE(max_lag, min_lag);
  if (series.size() < 2 * max_lag) return 0;

  std::vector<double> acf(max_lag + 2, 0.0);
  for (size_t lag = min_lag > 1 ? min_lag - 1 : 1; lag <= max_lag + 1; ++lag) {
    if (lag < series.size()) {
      acf[lag] = Autocorrelation(series, lag, observed);
    }
  }

  // A periodic signal peaks at every harmonic (m, 2m, 3m, ...) with nearly
  // equal autocorrelation, so "the largest peak" is ambiguous. Take the
  // *smallest* local-peak lag whose ACF is within 10% of the best peak —
  // that is the fundamental period.
  double best_value = 0.0;
  size_t best_any = min_lag;
  double best_any_value = acf[min_lag];
  for (size_t lag = min_lag; lag <= max_lag; ++lag) {
    if (acf[lag] > best_any_value) {
      best_any_value = acf[lag];
      best_any = lag;
    }
    const bool local_peak = acf[lag] > acf[lag - 1] && acf[lag] >= acf[lag + 1];
    if (local_peak) best_value = std::max(best_value, acf[lag]);
  }
  if (best_value > 0.0) {
    for (size_t lag = min_lag; lag <= max_lag; ++lag) {
      const bool local_peak =
          acf[lag] > acf[lag - 1] && acf[lag] >= acf[lag + 1];
      if (local_peak && acf[lag] >= 0.9 * best_value) return lag;
    }
  }
  return best_any;
}

}  // namespace sofia
