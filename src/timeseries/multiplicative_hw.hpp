#ifndef SOFIA_TIMESERIES_MULTIPLICATIVE_HW_H_
#define SOFIA_TIMESERIES_MULTIPLICATIVE_HW_H_

#include <cstddef>
#include <vector>

#include "timeseries/holt_winters.hpp"

/// \file multiplicative_hw.hpp
/// \brief Multiplicative Holt-Winters (Section III-C mentions both
/// variants; the paper's SOFIA uses the additive one).
///
/// Preferred when seasonal swings scale with the level of the series
/// (e.g. raw, un-logged traffic counts). The smoothing equations divide by
/// the seasonal/level components, so the series must stay positive.

namespace sofia {

/// Multiplicative Holt-Winters model for a positive scalar series.
class MultiplicativeHoltWinters {
 public:
  MultiplicativeHoltWinters(size_t period, HwParams params);

  /// Conventional initialization from >= two full seasons: level = mean of
  /// season 1, trend = averaged season-over-season slope, seasonal =
  /// first-season values divided by the level.
  void InitializeFromHistory(const std::vector<double>& history);

  /// Directly set the state.
  void SetState(double level, double trend, std::vector<double> seasonal);

  /// h-step-ahead forecast: (l + h*b) * s_{slot(t+h)}.
  double Forecast(size_t h) const;
  double ForecastNext() const { return Forecast(1); }

  /// Consume one observation:
  ///   l_t = α y_t / s_{t-m} + (1-α)(l_{t-1} + b_{t-1})
  ///   b_t = β (l_t - l_{t-1}) + (1-β) b_{t-1}
  ///   s_t = γ y_t / (l_{t-1} + b_{t-1}) + (1-γ) s_{t-m}
  void Update(double y);

  double level() const { return level_; }
  double trend() const { return trend_; }
  const std::vector<double>& seasonal() const { return seasonal_; }
  /// Ring rotated so index 0 belongs to the next observation's slot.
  std::vector<double> SeasonalFromNext() const;
  size_t period() const { return seasonal_.size(); }

 private:
  HwParams params_;
  double level_ = 1.0;
  double trend_ = 0.0;
  std::vector<double> seasonal_;
  size_t pos_ = 0;
};

/// SSE of one-step-ahead forecasts over `series` from conventional
/// initialization (fitting criterion, mirroring HoltWintersSse).
double MultiplicativeHwSse(const std::vector<double>& series, size_t period,
                           const HwParams& params);

/// Fits (alpha, beta, gamma) by SSE minimization over [0,1]^3 and returns
/// the model positioned at the end of the series.
MultiplicativeHoltWinters FitMultiplicativeHw(const std::vector<double>& series,
                                              size_t period);

}  // namespace sofia

#endif  // SOFIA_TIMESERIES_MULTIPLICATIVE_HW_H_
