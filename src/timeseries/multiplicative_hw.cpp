#include "timeseries/multiplicative_hw.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "optim/lbfgsb.hpp"
#include "util/check.hpp"

namespace sofia {

namespace {
// Guards against division blow-ups when a seasonal index or level crosses
// zero on badly-behaved series.
constexpr double kFloor = 1e-9;
}  // namespace

MultiplicativeHoltWinters::MultiplicativeHoltWinters(size_t period,
                                                     HwParams params)
    : params_(params), seasonal_(period, 1.0) {
  SOFIA_CHECK_GE(period, 1u);
}

void MultiplicativeHoltWinters::InitializeFromHistory(
    const std::vector<double>& history) {
  const size_t m = seasonal_.size();
  SOFIA_CHECK_GE(history.size(), 2 * m)
      << "need two full seasons to initialize";
  const double season1_mean =
      std::accumulate(history.begin(), history.begin() + m, 0.0) /
      static_cast<double>(m);
  const double season2_mean =
      std::accumulate(history.begin() + m, history.begin() + 2 * m, 0.0) /
      static_cast<double>(m);
  level_ = std::max(season1_mean, kFloor);
  trend_ = (season2_mean - season1_mean) / static_cast<double>(m);
  for (size_t i = 0; i < m; ++i) {
    seasonal_[i] = std::max(history[i] / level_, kFloor);
  }
  pos_ = 0;
}

void MultiplicativeHoltWinters::SetState(double level, double trend,
                                         std::vector<double> seasonal) {
  SOFIA_CHECK_EQ(seasonal.size(), seasonal_.size());
  level_ = level;
  trend_ = trend;
  seasonal_ = std::move(seasonal);
  pos_ = 0;
}

double MultiplicativeHoltWinters::Forecast(size_t h) const {
  SOFIA_CHECK_GE(h, 1u);
  const size_t slot = (pos_ + (h - 1)) % seasonal_.size();
  return (level_ + static_cast<double>(h) * trend_) * seasonal_[slot];
}

void MultiplicativeHoltWinters::Update(double y) {
  const double s_prev = std::max(seasonal_[pos_], kFloor);
  const double l_prev = level_;
  const double b_prev = trend_;
  const double base = std::max(l_prev + b_prev, kFloor);
  level_ = params_.alpha * (y / s_prev) + (1.0 - params_.alpha) * base;
  trend_ = params_.beta * (level_ - l_prev) + (1.0 - params_.beta) * b_prev;
  seasonal_[pos_] =
      params_.gamma * (y / base) + (1.0 - params_.gamma) * s_prev;
  pos_ = (pos_ + 1) % seasonal_.size();
}

std::vector<double> MultiplicativeHoltWinters::SeasonalFromNext() const {
  const size_t m = seasonal_.size();
  std::vector<double> out(m);
  for (size_t i = 0; i < m; ++i) out[i] = seasonal_[(pos_ + i) % m];
  return out;
}

double MultiplicativeHwSse(const std::vector<double>& series, size_t period,
                           const HwParams& params) {
  if (series.size() < 2 * period) return 0.0;
  MultiplicativeHoltWinters hw(period, params);
  hw.InitializeFromHistory(series);
  double sse = 0.0;
  for (double y : series) {
    const double e = y - hw.ForecastNext();
    sse += e * e;
    hw.Update(y);
  }
  return sse;
}

MultiplicativeHoltWinters FitMultiplicativeHw(
    const std::vector<double>& series, size_t period) {
  SOFIA_CHECK_GE(series.size(), 2 * period);
  FunctionObjective objective([&](const std::vector<double>& p) {
    auto clamp01 = [](double v) { return std::min(1.0, std::max(0.0, v)); };
    return MultiplicativeHwSse(series, period,
                               HwParams{.alpha = clamp01(p[0]),
                                        .beta = clamp01(p[1]),
                                        .gamma = clamp01(p[2])});
  });
  const std::vector<double> lower(3, 0.0), upper(3, 1.0);
  LbfgsbOptions options;
  options.max_iterations = 100;
  double best_f = std::numeric_limits<double>::infinity();
  std::vector<double> best = {0.3, 0.1, 0.1};
  for (const auto& start : {std::vector<double>{0.3, 0.1, 0.1},
                            std::vector<double>{0.7, 0.05, 0.3},
                            std::vector<double>{0.1, 0.01, 0.7}}) {
    LbfgsbResult res = LbfgsbMinimize(objective, start, lower, upper, options);
    if (res.f < best_f) {
      best_f = res.f;
      best = res.x;
    }
  }
  MultiplicativeHoltWinters hw(
      period, HwParams{.alpha = best[0], .beta = best[1], .gamma = best[2]});
  hw.InitializeFromHistory(series);
  for (double y : series) hw.Update(y);
  return hw;
}

}  // namespace sofia
