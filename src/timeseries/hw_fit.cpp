#include "timeseries/hw_fit.hpp"

#include <algorithm>
#include <limits>

#include "optim/lbfgsb.hpp"
#include "util/check.hpp"

namespace sofia {

HwFit FitHoltWinters(const std::vector<double>& series, size_t period) {
  SOFIA_CHECK_GE(series.size(), 2 * period)
      << "need two full seasons to fit Holt-Winters";

  FunctionObjective sse_obj([&](const std::vector<double>& p) {
    // Numeric gradients probe just outside the box; clamp so the recursion
    // always sees valid smoothing parameters.
    auto clamp01 = [](double v) { return std::min(1.0, std::max(0.0, v)); };
    return HoltWintersSse(series, period,
                          HwParams{.alpha = clamp01(p[0]),
                                   .beta = clamp01(p[1]),
                                   .gamma = clamp01(p[2])});
  });
  const std::vector<double> lower(3, 0.0);
  const std::vector<double> upper(3, 1.0);

  // The SSE surface is mildly multi-modal in (alpha, beta, gamma); a small
  // multi-start keeps the fit robust without costing much (the series per
  // factor column is short).
  const std::vector<std::vector<double>> starts = {
      {0.3, 0.1, 0.1}, {0.7, 0.05, 0.3}, {0.1, 0.01, 0.7}, {0.5, 0.5, 0.5}};

  LbfgsbOptions options;
  options.max_iterations = 100;
  double best_f = std::numeric_limits<double>::infinity();
  std::vector<double> best_x = starts[0];
  for (const auto& start : starts) {
    LbfgsbResult res = LbfgsbMinimize(sse_obj, start, lower, upper, options);
    if (res.f < best_f) {
      best_f = res.f;
      best_x = res.x;
    }
  }

  HwFit fit;
  fit.params = HwParams{.alpha = best_x[0], .beta = best_x[1],
                        .gamma = best_x[2]};
  fit.sse = best_f;

  // Replay the series with the tuned parameters to obtain the final state.
  HoltWinters hw(period, fit.params);
  hw.InitializeFromHistory(series);
  for (double y : series) hw.Update(y);
  fit.level = hw.level();
  fit.trend = hw.trend();
  fit.seasonal = hw.SeasonalFromNext();
  return fit;
}

HoltWinters ModelFromFit(const HwFit& fit, size_t period) {
  HoltWinters hw(period, fit.params);
  hw.SetState(fit.level, fit.trend, fit.seasonal);
  return hw;
}

}  // namespace sofia
