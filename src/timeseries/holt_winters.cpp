#include "timeseries/holt_winters.hpp"

#include <cmath>
#include <numeric>

#include "util/check.hpp"

namespace sofia {

HoltWinters::HoltWinters(size_t period, HwParams params)
    : params_(params), seasonal_(period, 0.0) {
  SOFIA_CHECK_GE(period, 1u);
  SOFIA_CHECK_GE(params.alpha, 0.0);
  SOFIA_CHECK_LE(params.alpha, 1.0);
  SOFIA_CHECK_GE(params.beta, 0.0);
  SOFIA_CHECK_LE(params.beta, 1.0);
  SOFIA_CHECK_GE(params.gamma, 0.0);
  SOFIA_CHECK_LE(params.gamma, 1.0);
}

void HoltWinters::InitializeFromHistory(const std::vector<double>& history) {
  const size_t m = seasonal_.size();
  SOFIA_CHECK_GE(history.size(), 2 * m)
      << "need two full seasons to initialize";
  const double season1_mean =
      std::accumulate(history.begin(), history.begin() + m, 0.0) /
      static_cast<double>(m);
  const double season2_mean =
      std::accumulate(history.begin() + m, history.begin() + 2 * m, 0.0) /
      static_cast<double>(m);
  level_ = season1_mean;
  trend_ = (season2_mean - season1_mean) / static_cast<double>(m);
  for (size_t i = 0; i < m; ++i) seasonal_[i] = history[i] - season1_mean;
  pos_ = 0;
}

void HoltWinters::SetState(double level, double trend,
                           std::vector<double> seasonal) {
  SOFIA_CHECK_EQ(seasonal.size(), seasonal_.size());
  level_ = level;
  trend_ = trend;
  seasonal_ = std::move(seasonal);
  pos_ = 0;
}

std::vector<double> HoltWinters::SeasonalFromNext() const {
  const size_t m = seasonal_.size();
  std::vector<double> out(m);
  for (size_t i = 0; i < m; ++i) out[i] = seasonal_[(pos_ + i) % m];
  return out;
}

double HoltWinters::ForecastNext() const { return Forecast(1); }

double HoltWinters::Forecast(size_t h) const {
  SOFIA_CHECK_GE(h, 1u);
  const size_t m = seasonal_.size();
  // Eq. (6): the seasonal index wraps so the forecast reuses the components
  // estimated during the last observed season.
  const size_t season_slot = (pos_ + (h - 1)) % m;
  return level_ + static_cast<double>(h) * trend_ + seasonal_[season_slot];
}

void HoltWinters::Update(double y) {
  const double s_prev = seasonal_[pos_];   // s_{t-m}
  const double l_prev = level_;            // l_{t-1}
  const double b_prev = trend_;            // b_{t-1}
  level_ = params_.alpha * (y - s_prev) +
           (1.0 - params_.alpha) * (l_prev + b_prev);
  trend_ = params_.beta * (level_ - l_prev) + (1.0 - params_.beta) * b_prev;
  seasonal_[pos_] = params_.gamma * (y - l_prev - b_prev) +
                    (1.0 - params_.gamma) * s_prev;
  pos_ = (pos_ + 1) % seasonal_.size();
}

double HoltWintersSse(const std::vector<double>& series, size_t period,
                      const HwParams& params) {
  HoltWinters hw(period, params);
  if (series.size() < 2 * period) return 0.0;
  hw.InitializeFromHistory(series);
  double sse = 0.0;
  for (double y : series) {
    const double e = y - hw.ForecastNext();
    sse += e * e;
    hw.Update(y);
  }
  return sse;
}

}  // namespace sofia
