#ifndef SOFIA_TIMESERIES_ROBUST_HW_FIT_H_
#define SOFIA_TIMESERIES_ROBUST_HW_FIT_H_

#include <vector>

#include "timeseries/hw_fit.hpp"
#include "timeseries/holt_winters.hpp"

/// \file robust_hw_fit.hpp
/// \brief Robust Holt-Winters fitting (Gelper et al. [38], Section III-D).
///
/// The standard SSE fit is dragged by outliers: a single spike inflates the
/// fitted smoothing parameters toward over-reactive values. The robust fit
/// runs the *pre-cleaning* recursion during evaluation — every observation
/// is replaced by its Huber-cleaned version against the model's one-step
/// forecast and the adaptive error scale (Eqs. (7)-(8)) — and scores the
/// bounded ρ-loss of the standardized residuals instead of their squares.
/// SOFIA itself fits on the (already robustly factorized) temporal factor,
/// so it uses the plain fit; this module serves users applying the HW
/// machinery directly to contaminated scalar series.

namespace sofia {

/// Result of a robust fit: parameters, final state, and the cleaned series.
struct RobustHwFit {
  HwParams params;
  double level = 0.0;
  double trend = 0.0;
  std::vector<double> seasonal;        ///< Slot order (next obs at 0).
  std::vector<double> cleaned_series;  ///< Pre-cleaned observations y*.
  double robust_loss = 0.0;            ///< Σ ρ(e_t / σ̂_t) at the optimum.
};

/// Robust criterion for a fixed parameter set: runs the pre-cleaned
/// recursion over `series` and returns the accumulated bounded loss.
/// `phi` is the error-scale smoothing parameter of Eq. (8).
double RobustHwLoss(const std::vector<double>& series, size_t period,
                    const HwParams& params, double phi = 0.1);

/// Fits (alpha, beta, gamma) by minimizing RobustHwLoss over [0,1]^3 with
/// multi-start quasi-Newton, then replays the cleaned recursion to produce
/// the final state.
RobustHwFit FitRobustHoltWinters(const std::vector<double>& series,
                                 size_t period, double phi = 0.1);

/// Builds a forecasting model positioned at the end of the series.
HoltWinters ModelFromRobustFit(const RobustHwFit& fit, size_t period);

}  // namespace sofia

#endif  // SOFIA_TIMESERIES_ROBUST_HW_FIT_H_
