#ifndef SOFIA_OBS_KERNEL_STATS_H_
#define SOFIA_OBS_KERNEL_STATS_H_

#include <string>

#include "obs/metrics.hpp"

/// \file kernel_stats.hpp
/// \brief Per-kernel call/volume counters for the tensor kernel layer.
///
/// Each public kernel entry point holds one `static KernelStats` (the
/// registry lookup runs once) and calls CountKernel per invocation:
/// `kernel.<name>.calls`, `kernel.<name>.nnz` (entries touched), and
/// `kernel.<name>.flop_estimate` (a nominal flops-per-entry model — a
/// relative load measure across kernels, not a hardware counter).

namespace sofia {
namespace obs {

struct KernelStats {
  Counter* calls;
  Counter* nnz;
  Counter* flops;
};

inline KernelStats MakeKernelStats(const std::string& kernel) {
  Registry& r = Registry::Global();
  const std::string base = "kernel." + kernel;
  return KernelStats{r.FindOrCreateCounter(base + ".calls"),
                     r.FindOrCreateCounter(base + ".nnz"),
                     r.FindOrCreateCounter(base + ".flop_estimate")};
}

inline void CountKernel(const KernelStats& stats, size_t nnz,
                        size_t flops_per_entry) {
  stats.calls->Add(1);
  stats.nnz->Add(nnz);
  stats.flops->Add(nnz * flops_per_entry);
}

}  // namespace obs
}  // namespace sofia

#endif  // SOFIA_OBS_KERNEL_STATS_H_
