#ifndef SOFIA_OBS_REPORT_H_
#define SOFIA_OBS_REPORT_H_

#include <cstddef>
#include <string>
#include <vector>

#include "obs/json_lite.hpp"

/// \file report.hpp
/// \brief Core of tools/obs_report: turns a metrics snapshot into a
/// per-stage time-attribution table and validates emitted artifacts.
/// Lives in the library (not the tool main) so tests can pin the logic.

namespace sofia {
namespace obs {

/// One `time.<stage>_us` counter from the snapshot.
struct AttributionRow {
  std::string stage;      ///< Counter name without the time./_us wrapping.
  double us = 0.0;        ///< Accumulated wall microseconds.
  double fraction = 0.0;  ///< Share of the pipeline wall clock (0 if none).
};

struct AttributionReport {
  /// time.pipeline.wall_us when present, else 0.
  double wall_us = 0.0;
  /// All time.*_us rows, sorted by descending time.
  std::vector<AttributionRow> rows;
  /// Driver-thread stage sum (init + ingest + stall + compute + score)
  /// over wall_us — the "do the spans account for the run" ratio the
  /// acceptance criteria pin within 10%. 0 when wall_us is 0.
  double driver_coverage = 0.0;
};

/// Extracts the attribution from one snapshot object (the last line of a
/// metrics JSONL).
AttributionReport TimeAttribution(const JsonValue& snapshot);

/// Renders the attribution + histogram summary as aligned text tables.
std::string RenderReport(const JsonValue& snapshot);

struct CheckResult {
  bool ok = true;
  std::vector<std::string> problems;

  void Problem(const std::string& what) {
    ok = false;
    problems.push_back(what);
  }
};

/// Structural validation of a metrics snapshot: counters/gauges/histograms
/// objects present, counters non-empty, and — when a pipeline ran
/// (time.pipeline.wall_us > 0) — driver stage sums within 10% of wall.
CheckResult CheckMetricsSnapshot(const JsonValue& snapshot);

struct TraceStats {
  size_t events = 0;            ///< Complete ("X") events.
  size_t tracks = 0;            ///< Distinct tids carrying events.
  std::string busiest_track;    ///< Thread name (or "tid N") with most time.
  double busiest_coverage = 0;  ///< Union(span intervals)/extent, busiest.
};

/// Validates a Chrome trace document: traceEvents array of well-formed
/// events, per-track monotonic completion timestamps, and span-interval
/// coverage of the busiest track >= 90% of its extent.
CheckResult CheckTrace(const JsonValue& trace, TraceStats* stats = nullptr);

}  // namespace obs
}  // namespace sofia

#endif  // SOFIA_OBS_REPORT_H_
