#include "obs/stats.hpp"

#ifndef SOFIA_OBS_DISABLED

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <mutex>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sofia {
namespace obs {

namespace {

void AppendKey(const std::string& key, std::string* out) {
  out->push_back('"');
  // Metric names follow the <layer>.<metric> convention — no JSON-special
  // characters; emit verbatim.
  out->append(key);
  out->append("\": ");
}

void AppendU64(uint64_t v, std::string* out) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->append(buf);
}

void AppendDouble(double v, std::string* out) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out->append(buf);
}

struct StatsSink {
  std::mutex mutex;
  std::FILE* file = nullptr;
  uint64_t every = 0;
  uint64_t ticks = 0;
  std::atomic<bool> configured{false};
};

StatsSink& Sink() {
  static StatsSink sink;
  return sink;
}

void EmitLineLocked(StatsSink& sink) {
  std::string line;
  AppendSnapshotLine(&line);
  line.push_back('\n');
  std::fwrite(line.data(), 1, line.size(), sink.file);
  std::fflush(sink.file);
}

}  // namespace

void AppendSnapshotLine(std::string* out) {
  Registry& registry = Registry::Global();
  out->append("{\"ts_us\": ");
  AppendU64(NowNs() / 1000, out);
  out->append(", \"counters\": {");
  bool first = true;
  for (const auto& [name, counter] : registry.Counters()) {
    if (!first) out->append(", ");
    first = false;
    AppendKey(name, out);
    AppendU64(counter->Value(), out);
  }
  out->append("}, \"gauges\": {");
  first = true;
  for (const auto& [name, gauge] : registry.Gauges()) {
    if (!first) out->append(", ");
    first = false;
    AppendKey(name, out);
    AppendDouble(gauge->Value(), out);
  }
  out->append("}, \"histograms\": {");
  first = true;
  for (const auto& [name, histogram] : registry.Histograms()) {
    if (!first) out->append(", ");
    first = false;
    AppendKey(name, out);
    out->append("{\"count\": ");
    AppendU64(histogram->Count(), out);
    out->append(", \"sum\": ");
    AppendU64(histogram->Sum(), out);
    out->append(", \"p50\": ");
    AppendDouble(histogram->Percentile(50.0), out);
    out->append(", \"p90\": ");
    AppendDouble(histogram->Percentile(90.0), out);
    out->append(", \"p99\": ");
    AppendDouble(histogram->Percentile(99.0), out);
    out->push_back('}');
  }
  out->append("}}");
}

void ConfigureStats(const std::string& path, uint64_t every_steps) {
  StatsSink& sink = Sink();
  std::lock_guard<std::mutex> lock(sink.mutex);
  if (sink.file != nullptr) {
    std::fclose(sink.file);
    sink.file = nullptr;
  }
  sink.every = every_steps;
  sink.ticks = 0;
  if (every_steps > 0 && !path.empty()) {
    sink.file = std::fopen(path.c_str(), "a");
  }
  sink.configured.store(sink.file != nullptr, std::memory_order_release);
}

void StatsTick() {
  StatsSink& sink = Sink();
  if (!sink.configured.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(sink.mutex);
  if (sink.file == nullptr) return;
  if (++sink.ticks % sink.every != 0) return;
  EmitLineLocked(sink);
}

void FlushStats() {
  StatsSink& sink = Sink();
  std::lock_guard<std::mutex> lock(sink.mutex);
  if (sink.file == nullptr) return;
  EmitLineLocked(sink);
  std::fclose(sink.file);
  sink.file = nullptr;
  sink.configured.store(false, std::memory_order_release);
}

}  // namespace obs
}  // namespace sofia

#endif  // SOFIA_OBS_DISABLED
