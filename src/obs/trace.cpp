#include "obs/trace.hpp"

#ifndef SOFIA_OBS_DISABLED

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>
#include <vector>

namespace sofia {
namespace obs {

namespace {

struct TraceEvent {
  const char* name;
  const char* arg_name;
  uint64_t start_ns;
  uint64_t dur_ns;
  uint64_t arg;
  uint32_t tid;
};

// Session state. The ring is preallocated at Start: recording reserves a
// slot with one relaxed fetch_add, fills it with plain stores (slots are
// distinct), then publishes via a release increment of g_committed; the
// flusher acquire-reads g_committed until it matches the reservations, so
// every flushed slot's contents happen-before the read.
std::atomic<bool> g_active{false};
bool g_worker_spans = false;  // Written before g_active, read after.
std::vector<TraceEvent> g_ring;
std::atomic<size_t> g_reserved{0};
std::atomic<size_t> g_committed{0};
std::atomic<size_t> g_dropped{0};

std::atomic<uint32_t> g_next_tid{0};

std::mutex& NamesMutex() {
  static std::mutex mutex;
  return mutex;
}
std::map<uint32_t, std::string>& ThreadNames() {
  static std::map<uint32_t, std::string> names;
  return names;
}

/// Minimal JSON string escaping (names are static strings we control, but
/// thread names are caller data).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out.push_back(' ');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

uint64_t NowNs() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

uint32_t CurrentThreadId() {
  static thread_local const uint32_t tid =
      g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

void SetThreadName(const std::string& name) {
  const uint32_t tid = CurrentThreadId();
  std::lock_guard<std::mutex> lock(NamesMutex());
  ThreadNames()[tid] = name;
}

bool TraceStart(const TraceOptions& options) {
  if (g_active.load(std::memory_order_acquire)) return false;
  g_ring.assign(std::max<size_t>(options.capacity, 1), TraceEvent{});
  g_reserved.store(0, std::memory_order_relaxed);
  g_committed.store(0, std::memory_order_relaxed);
  g_dropped.store(0, std::memory_order_relaxed);
  g_worker_spans = options.worker_spans;
  NowNs();  // Pin the epoch before the first span.
  g_active.store(true, std::memory_order_release);
  return true;
}

bool TraceActive() { return g_active.load(std::memory_order_relaxed); }

bool TraceWorkerSpans() { return TraceActive() && g_worker_spans; }

void TraceRecord(const char* name, uint64_t start_ns, uint64_t dur_ns,
                 uint64_t arg, const char* arg_name) {
  if (!TraceActive()) return;
  const size_t slot = g_reserved.fetch_add(1, std::memory_order_relaxed);
  if (slot >= g_ring.size()) {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  TraceEvent& event = g_ring[slot];
  event.name = name;
  event.arg_name = arg_name;
  event.start_ns = start_ns;
  event.dur_ns = dur_ns;
  event.arg = arg;
  event.tid = CurrentThreadId();
  g_committed.fetch_add(1, std::memory_order_release);
}

namespace {
size_t StopSession() {
  g_active.store(false, std::memory_order_release);
  // Writers that already reserved a slot finish their plain stores and
  // bump g_committed; wait them out so the flush reads complete events.
  const size_t filled =
      std::min(g_reserved.load(std::memory_order_acquire), g_ring.size());
  while (g_committed.load(std::memory_order_acquire) < filled) {
  }
  return filled;
}
}  // namespace

void TraceAbort() {
  if (!g_active.load(std::memory_order_acquire)) return;
  StopSession();
  g_ring.clear();
  g_ring.shrink_to_fit();
}

bool TraceStopAndWrite(const std::string& path, size_t* events_out,
                       size_t* dropped_out) {
  if (!g_active.load(std::memory_order_acquire)) return false;
  const size_t filled = StopSession();
  if (events_out != nullptr) *events_out = filled;
  if (dropped_out != nullptr) {
    *dropped_out = g_dropped.load(std::memory_order_relaxed);
  }

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n\"traceEvents\": [\n");
  bool first = true;
  {
    std::lock_guard<std::mutex> lock(NamesMutex());
    for (const auto& [tid, name] : ThreadNames()) {
      std::fprintf(f,
                   "%s{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, "
                   "\"tid\": %u, \"args\": {\"name\": \"%s\"}}",
                   first ? "" : ",\n", tid, JsonEscape(name).c_str());
      first = false;
    }
  }
  for (size_t i = 0; i < filled; ++i) {
    const TraceEvent& event = g_ring[i];
    std::fprintf(f,
                 "%s{\"name\": \"%s\", \"ph\": \"X\", \"pid\": 0, "
                 "\"tid\": %u, \"ts\": %.3f, \"dur\": %.3f",
                 first ? "" : ",\n", JsonEscape(event.name).c_str(),
                 event.tid, static_cast<double>(event.start_ns) / 1000.0,
                 static_cast<double>(event.dur_ns) / 1000.0);
    first = false;
    if (event.arg_name != nullptr) {
      std::fprintf(f, ", \"args\": {\"%s\": %llu}", event.arg_name,
                   static_cast<unsigned long long>(event.arg));
    }
    std::fprintf(f, "}");
  }
  std::fprintf(f, "\n],\n\"displayTimeUnit\": \"ms\"\n}\n");
  const bool ok = std::fclose(f) == 0;
  g_ring.clear();
  g_ring.shrink_to_fit();
  return ok;
}

}  // namespace obs
}  // namespace sofia

#endif  // SOFIA_OBS_DISABLED
