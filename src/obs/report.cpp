#include "obs/report.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "util/table.hpp"

namespace sofia {
namespace obs {

namespace {

constexpr const char* kWallCounter = "time.pipeline.wall_us";

/// Driver-thread stage counters: these run on the Run() caller's thread, so
/// their sum must account for the pipeline wall clock (ingest_async runs on
/// the aux lane and overlaps — it is intentionally NOT in this list).
const char* const kDriverStages[] = {
    "time.pipeline.init_us",    "time.pipeline.ingest_us",
    "time.pipeline.stall_us",   "time.pipeline.compute_us",
    "time.pipeline.score_us",
};

bool HasPrefixSuffix(const std::string& name) {
  return name.rfind("time.", 0) == 0 && name.size() > 8 &&
         name.compare(name.size() - 3, 3, "_us") == 0;
}

// Counters are integers; render them as such (Table::Num's significant-
// digit formatting would turn 690270 into 6.903e+05).
std::string Int(double value) {
  return std::to_string(static_cast<long long>(std::llround(value)));
}

}  // namespace

AttributionReport TimeAttribution(const JsonValue& snapshot) {
  AttributionReport report;
  const JsonValue* counters = snapshot.Find("counters");
  if (counters == nullptr || !counters->is_object()) return report;
  report.wall_us = counters->NumberOr(kWallCounter, 0.0);
  double driver_sum = 0.0;
  for (const auto& [name, value] : counters->object) {
    if (!HasPrefixSuffix(name) || !value.is_number()) continue;
    if (name == kWallCounter) continue;
    AttributionRow row;
    row.stage = name.substr(5, name.size() - 5 - 3);
    row.us = value.number;
    row.fraction = report.wall_us > 0.0 ? row.us / report.wall_us : 0.0;
    report.rows.push_back(std::move(row));
    for (const char* stage : kDriverStages) {
      if (name == stage) driver_sum += value.number;
    }
  }
  std::sort(report.rows.begin(), report.rows.end(),
            [](const AttributionRow& a, const AttributionRow& b) {
              return a.us > b.us;
            });
  report.driver_coverage =
      report.wall_us > 0.0 ? driver_sum / report.wall_us : 0.0;
  return report;
}

std::string RenderReport(const JsonValue& snapshot) {
  std::ostringstream out;
  const AttributionReport attribution = TimeAttribution(snapshot);
  out << "Per-stage time attribution (time.*_us counters)\n";
  Table stages({"stage", "ms", "% of pipeline wall"});
  for (const AttributionRow& row : attribution.rows) {
    stages.AddRow({row.stage, Table::Num(row.us / 1000.0, 2),
                   attribution.wall_us > 0.0
                       ? Table::Num(100.0 * row.fraction, 1)
                       : "-"});
  }
  if (attribution.wall_us > 0.0) {
    stages.AddRow({"(pipeline wall)", Table::Num(attribution.wall_us / 1000.0, 2),
                   "100.0"});
    stages.AddRow({"(driver stages / wall)", "",
                   Table::Num(100.0 * attribution.driver_coverage, 1)});
  }
  out << stages.ToString() << "\n";

  const JsonValue* histograms = snapshot.Find("histograms");
  if (histograms != nullptr && histograms->is_object() &&
      !histograms->object.empty()) {
    out << "Latency histograms (microseconds)\n";
    Table table({"histogram", "count", "p50", "p90", "p99"});
    for (const auto& [name, h] : histograms->object) {
      table.AddRow({name,
                    Int(h.NumberOr("count", 0.0)),
                    Table::Num(h.NumberOr("p50", 0.0), 1),
                    Table::Num(h.NumberOr("p90", 0.0), 1),
                    Table::Num(h.NumberOr("p99", 0.0), 1)});
    }
    out << table.ToString() << "\n";
  }

  const JsonValue* counters = snapshot.Find("counters");
  if (counters != nullptr && counters->is_object()) {
    out << "Counters\n";
    Table table({"counter", "value"});
    for (const auto& [name, value] : counters->object) {
      if (HasPrefixSuffix(name)) continue;  // Already in the stage table.
      table.AddRow({name, Int(value.number)});
    }
    out << table.ToString();
  }
  return out.str();
}

CheckResult CheckMetricsSnapshot(const JsonValue& snapshot) {
  CheckResult result;
  if (!snapshot.is_object()) {
    result.Problem("snapshot is not a JSON object");
    return result;
  }
  const JsonValue* counters = snapshot.Find("counters");
  if (counters == nullptr || !counters->is_object()) {
    result.Problem("missing \"counters\" object");
  } else if (counters->object.empty()) {
    result.Problem("\"counters\" is empty — nothing was instrumented");
  }
  for (const char* key : {"gauges", "histograms"}) {
    const JsonValue* section = snapshot.Find(key);
    if (section == nullptr || !section->is_object()) {
      result.Problem(std::string("missing \"") + key + "\" object");
    }
  }
  if (!result.ok) return result;

  const AttributionReport attribution = TimeAttribution(snapshot);
  if (attribution.wall_us > 0.0) {
    if (attribution.driver_coverage < 0.9) {
      std::ostringstream msg;
      msg << "driver stage counters cover only "
          << std::llround(100.0 * attribution.driver_coverage)
          << "% of time.pipeline.wall_us (need >= 90%)";
      result.Problem(msg.str());
    }
    if (attribution.driver_coverage > 1.05) {
      result.Problem("driver stage counters exceed pipeline wall by > 5% — "
                     "double-counted stage?");
    }
  }
  return result;
}

CheckResult CheckTrace(const JsonValue& trace, TraceStats* stats) {
  CheckResult result;
  TraceStats local;
  const JsonValue* events = trace.Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    result.Problem("missing \"traceEvents\" array");
    return result;
  }

  struct Track {
    std::string name;
    std::vector<std::pair<double, double>> intervals;  // [start, end] us.
    double last_end = -1.0;
  };
  std::map<int64_t, Track> tracks;

  for (const JsonValue& event : events->array) {
    if (!event.is_object()) {
      result.Problem("event is not an object");
      break;
    }
    const std::string ph = event.StringOr("ph", "");
    const int64_t tid =
        static_cast<int64_t>(event.NumberOr("tid", -1.0));
    if (ph == "M") {
      const JsonValue* args = event.Find("args");
      if (args != nullptr && event.StringOr("name", "") == "thread_name") {
        tracks[tid].name = args->StringOr("name", "");
      }
      continue;
    }
    if (ph != "X") continue;
    if (event.StringOr("name", "").empty()) {
      result.Problem("complete event without a name");
      break;
    }
    const double ts = event.NumberOr("ts", -1.0);
    const double dur = event.NumberOr("dur", -1.0);
    if (ts < 0.0 || dur < 0.0 || tid < 0) {
      result.Problem("complete event with missing/negative ts, dur or tid");
      break;
    }
    Track& track = tracks[tid];
    const double end = ts + dur;
    // Events are flushed in ring order = per-thread completion order, so
    // completion timestamps must be monotone per track.
    if (end + 1e-6 < track.last_end) {
      result.Problem("non-monotonic completion timestamps on tid " +
                     std::to_string(tid));
      break;
    }
    track.last_end = end;
    track.intervals.emplace_back(ts, end);
    ++local.events;
  }
  if (local.events == 0) result.Problem("trace contains no complete events");

  // Span-interval union coverage of the busiest track: the driver's stage
  // spans must account for >= 90% of its extent (nested spans do not
  // double-count — this is an interval union, not a duration sum).
  double best_busy = -1.0;
  for (auto& [tid, track] : tracks) {
    if (track.intervals.empty()) continue;
    ++local.tracks;
    std::sort(track.intervals.begin(), track.intervals.end());
    double covered = 0.0;
    double cur_begin = track.intervals[0].first;
    double cur_end = track.intervals[0].second;
    for (const auto& [begin, end] : track.intervals) {
      if (begin > cur_end) {
        covered += cur_end - cur_begin;
        cur_begin = begin;
        cur_end = end;
      } else {
        cur_end = std::max(cur_end, end);
      }
    }
    covered += cur_end - cur_begin;
    const double extent =
        track.intervals.back().second - track.intervals.front().first;
    const double coverage = extent > 0.0 ? covered / extent : 1.0;
    if (covered > best_busy) {
      best_busy = covered;
      local.busiest_track =
          track.name.empty() ? "tid " + std::to_string(tid) : track.name;
      local.busiest_coverage = coverage;
    }
  }
  if (result.ok && local.events > 0 && local.busiest_coverage < 0.9) {
    std::ostringstream msg;
    msg << "busiest track (" << local.busiest_track << ") spans cover only "
        << std::llround(100.0 * local.busiest_coverage)
        << "% of its extent (need >= 90%)";
    result.Problem(msg.str());
  }
  if (stats != nullptr) *stats = local;
  return result;
}

}  // namespace obs
}  // namespace sofia
