#ifndef SOFIA_OBS_JSON_LITE_H_
#define SOFIA_OBS_JSON_LITE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

/// \file json_lite.hpp
/// \brief Minimal recursive-descent JSON reader for the observability
/// artifacts (metrics JSONL snapshots, Chrome trace files, BENCH_*.json).
///
/// Deliberately small: objects, arrays, strings (with the escapes our own
/// writers emit), numbers, booleans, null. Not a general-purpose library —
/// it exists so tools/obs_report and the obs tests can validate emitted
/// files without adding a dependency. Always compiled (independent of
/// SOFIA_OBS_DISABLED): the report tool must read artifacts produced by
/// any build.

namespace sofia {
namespace obs {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  // Insertion-ordered object members; duplicate keys keep the last value.
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }

  /// Member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
  /// Find + numeric coercion helpers returning `def` when absent/mistyped.
  double NumberOr(const std::string& key, double def) const;
  std::string StringOr(const std::string& key,
                       const std::string& def) const;
};

/// Parses one JSON document from `text`. On failure returns false and
/// describes the problem (with byte offset) in *error when non-null.
bool ParseJson(const std::string& text, JsonValue* out,
               std::string* error = nullptr);

/// Parses the LAST non-empty line of a JSON-lines file body — the final
/// (cumulative) snapshot of a metrics JSONL.
bool ParseLastJsonLine(const std::string& body, JsonValue* out,
                       std::string* error = nullptr);

/// Reads a whole file into *out; false (with *error) when unreadable.
bool ReadFileToString(const std::string& path, std::string* out,
                      std::string* error = nullptr);

}  // namespace obs
}  // namespace sofia

#endif  // SOFIA_OBS_JSON_LITE_H_
