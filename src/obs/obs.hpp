#ifndef SOFIA_OBS_OBS_H_
#define SOFIA_OBS_OBS_H_

/// \file obs.hpp
/// \brief Umbrella header for the observability subsystem: metrics
/// registry (counters / gauges / histograms), tracing spans (Chrome
/// trace-event JSON), and the periodic stats emitter. Instrumented code
/// includes this one header; everything compiles to no-ops under
/// -DSOFIA_OBS_DISABLED.

#include "obs/metrics.hpp"   // IWYU pragma: export
#include "obs/stats.hpp"     // IWYU pragma: export
#include "obs/trace.hpp"     // IWYU pragma: export

#endif  // SOFIA_OBS_OBS_H_
