#ifndef SOFIA_OBS_TRACE_H_
#define SOFIA_OBS_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "obs/metrics.hpp"

/// \file trace.hpp
/// \brief Tracing spans: RAII scopes emitting Chrome trace-event JSON.
///
/// A trace session records ObsSpan scopes from every thread into one
/// preallocated ring of fixed-size events (slot reservation is a single
/// relaxed fetch_add — no lock, no allocation on the hot path) and flushes
/// them to disk *after* the run, as a Chrome trace-event JSON file that
/// chrome://tracing and https://ui.perfetto.dev load directly. Threads are
/// attributed to named tracks: the ShardExecutor registers
/// "shard-worker-N" and "aux-lane", the pipeline driver registers
/// "driver", so the ingest/compute overlap and the async checkpoint lane
/// are visible as parallel tracks.
///
/// Span naming convention: `<layer>.<what>` with a static string (the ring
/// stores the pointer — never pass a temporary std::string's c_str()).
/// Numeric context (slice index, task count) rides in the optional `arg`,
/// emitted under `args` in the JSON.
///
/// When the ring fills, later events are dropped and counted
/// (`dropped_events`, reported in the flush summary) — the ring never
/// wraps, so a flushed trace is always the honest prefix of the run.
///
/// ObsSpan doubles as the stage-time accumulator: give it a `time.*_us`
/// registry counter and the span's wall time lands there even when no
/// trace session is active (that is how tools/obs_report attributes time
/// per stage from a metrics snapshot alone).

namespace sofia {
namespace obs {

#ifndef SOFIA_OBS_DISABLED

/// Nanoseconds since an arbitrary process-wide steady epoch. Monotonic
/// across all threads (steady_clock).
uint64_t NowNs();

/// Small dense id for the calling thread (0, 1, 2, ... in first-use
/// order); doubles as the Chrome trace `tid`.
uint32_t CurrentThreadId();

/// Names the calling thread's trace track ("driver", "shard-worker-2",
/// "aux-lane"). Sticky across sessions; re-naming overwrites. Cheap enough
/// for thread entry points, not for hot loops.
void SetThreadName(const std::string& name);

struct TraceOptions {
  /// Ring capacity in events; the default holds a few hundred traced steps
  /// of the full pipeline with worker spans on.
  size_t capacity = size_t{1} << 16;
  /// Record a span per worker per executor batch (one Run call). Honest
  /// busy/idle tracks, but the highest-volume span in the system — turn
  /// off to trace long streams within the ring budget.
  bool worker_spans = true;
};

/// Starts the global session (false if one is already active).
bool TraceStart(const TraceOptions& options = {});
bool TraceActive();
/// Worker-batch spans wanted? (False when no session is active.)
bool TraceWorkerSpans();

/// Stops the session and writes the Chrome trace JSON. Returns false when
/// no session was active or the file cannot be written. `events_out` (may
/// be null) reports flushed events; `dropped_out` the ring overflow count.
/// Call after concurrent work has quiesced (the pipeline drains its
/// executor before returning), not mid-run.
bool TraceStopAndWrite(const std::string& path, size_t* events_out = nullptr,
                       size_t* dropped_out = nullptr);

/// Stops and discards the session (tests).
void TraceAbort();

/// Raw event record, exposed for ObsSpan and the executor; `name` and
/// `arg_name` must outlive the session (static strings).
void TraceRecord(const char* name, uint64_t start_ns, uint64_t dur_ns,
                 uint64_t arg, const char* arg_name);

/// RAII span: times its scope, then (a) adds microseconds to `accum_us`
/// when given, and (b) records a trace event when a session is active.
/// With neither, the constructor is one branch and no clock read.
class ObsSpan {
 public:
  explicit ObsSpan(const char* name, Counter* accum_us = nullptr,
                   uint64_t arg = 0, const char* arg_name = nullptr)
      : name_(name), accum_(accum_us), arg_(arg), arg_name_(arg_name) {
    armed_ = TraceActive() || (accum_ != nullptr && Enabled());
    if (armed_) start_ns_ = NowNs();
  }
  ~ObsSpan() {
    if (!armed_) return;
    const uint64_t dur = NowNs() - start_ns_;
    if (accum_ != nullptr) accum_->Add(dur / 1000);
    if (TraceActive()) TraceRecord(name_, start_ns_, dur, arg_, arg_name_);
  }

  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;

 private:
  const char* name_;
  Counter* accum_;
  uint64_t arg_;
  const char* arg_name_;
  uint64_t start_ns_ = 0;
  bool armed_;
};

#else  // SOFIA_OBS_DISABLED

inline uint64_t NowNs() { return 0; }
inline uint32_t CurrentThreadId() { return 0; }
inline void SetThreadName(const std::string&) {}

struct TraceOptions {
  size_t capacity = 0;
  bool worker_spans = false;
};

inline bool TraceStart(const TraceOptions& = {}) { return false; }
inline bool TraceActive() { return false; }
inline bool TraceWorkerSpans() { return false; }
inline bool TraceStopAndWrite(const std::string&, size_t* = nullptr,
                              size_t* = nullptr) {
  return false;
}
inline void TraceAbort() {}
inline void TraceRecord(const char*, uint64_t, uint64_t, uint64_t,
                        const char*) {}

class ObsSpan {
 public:
  explicit ObsSpan(const char*, Counter* = nullptr, uint64_t = 0,
                   const char* = nullptr) {}
  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;
};

#endif  // SOFIA_OBS_DISABLED

}  // namespace obs
}  // namespace sofia

#endif  // SOFIA_OBS_TRACE_H_
