#ifndef SOFIA_OBS_CLI_H_
#define SOFIA_OBS_CLI_H_

#include <string>

#include "util/flags.hpp"

/// \file cli.hpp
/// \brief Shared `--trace-out= / --metrics-out= / --stats-every=` plumbing
/// for the example binaries, so every CLI exposes the same observability
/// knobs with one call at the top of main and one before exit.

namespace sofia {
namespace obs {

/// Observability output configuration parsed from command-line flags.
struct ObsCliConfig {
  bool enabled = true;           ///< --obs=0 turns the hot-path metrics off.
  std::string trace_out;         ///< --trace-out=FILE (Chrome trace JSON).
  size_t trace_capacity = 0;     ///< --trace-capacity=N ring events.
  bool trace_workers = true;     ///< --trace-workers=0 drops worker spans.
  std::string metrics_out;       ///< --metrics-out=FILE (final JSONL line).
  std::string stats_out;         ///< --stats-out=FILE (periodic JSONL).
  uint64_t stats_every = 0;      ///< --stats-every=N steps between lines.
};

/// Parses the obs flags and applies them: toggles the registry, starts a
/// trace session when --trace-out is given, and wires the periodic stats
/// emitter. Returns the parsed config (pass it to FinishObs at exit).
/// Also names the calling thread "driver" so its trace track reads well.
ObsCliConfig SetupObsFromFlags(const Flags& flags);

/// Flushes everything SetupObsFromFlags armed: writes the trace file,
/// appends the final metrics snapshot line, and closes the stats sink.
/// Prints one status line per artifact to stderr. Safe to call when
/// nothing was configured (no-op), and under SOFIA_OBS_DISABLED.
void FinishObs(const ObsCliConfig& config);

/// One-line usage blurb for the shared flags, for --help texts.
const char* ObsFlagsHelp();

}  // namespace obs
}  // namespace sofia

#endif  // SOFIA_OBS_CLI_H_
