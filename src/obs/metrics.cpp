#include "obs/metrics.hpp"

#ifndef SOFIA_OBS_DISABLED

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>

namespace sofia {
namespace obs {

namespace {
std::atomic<bool> g_enabled{true};
std::atomic<size_t> g_next_shard{0};
}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }
void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

size_t ShardIndex() {
  static thread_local const size_t slot =
      g_next_shard.fetch_add(1, std::memory_order_relaxed) % kShards;
  return slot;
}

uint64_t Counter::Value() const {
  uint64_t sum = 0;
  for (const Cell& cell : cells_) {
    sum += cell.v.load(std::memory_order_relaxed);
  }
  return sum;
}

void Counter::Reset() {
  for (Cell& cell : cells_) cell.v.store(0, std::memory_order_relaxed);
}

size_t Histogram::BucketIndex(uint64_t value) {
  if (value < kSub) return static_cast<size_t>(value);
  const int msb = 63 - __builtin_clzll(value);
  const size_t group = static_cast<size_t>(msb) - kSubBits + 1;
  const size_t sub = (value >> (msb - static_cast<int>(kSubBits))) & (kSub - 1);
  return group * kSub + sub;
}

double Histogram::BucketLower(size_t bucket) {
  if (bucket < kSub) return static_cast<double>(bucket);
  const size_t group = bucket / kSub;
  const size_t sub = bucket % kSub;
  const int msb = static_cast<int>(group + kSubBits - 1);
  return std::ldexp(1.0, msb) +
         static_cast<double>(sub) * std::ldexp(1.0, msb - static_cast<int>(kSubBits));
}

double Histogram::BucketWidth(size_t bucket) {
  if (bucket < kSub) return 1.0;
  const size_t group = bucket / kSub;
  const int msb = static_cast<int>(group + kSubBits - 1);
  return std::ldexp(1.0, msb - static_cast<int>(kSubBits));
}

void Histogram::Observe(double value) {
  if (!Enabled()) return;
  if (!(value >= 0.0)) value = 0.0;  // NaN/negative clamp to bucket 0.
  const uint64_t v = value >= 9.2e18 ? UINT64_MAX
                                     : static_cast<uint64_t>(value);
  const size_t shard = ShardIndex();
  Shard& s = shards_[shard];
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(static_cast<uint64_t>(std::llround(std::min(value, 9.2e18))),
                  std::memory_order_relaxed);
  buckets_[shard].c[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const Shard& s : shards_) {
    total += s.count.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t Histogram::Sum() const {
  uint64_t total = 0;
  for (const Shard& s : shards_) {
    total += s.sum.load(std::memory_order_relaxed);
  }
  return total;
}

void Histogram::SnapshotBuckets(std::vector<uint64_t>* counts) const {
  counts->assign(kBuckets, 0);
  for (const BucketShard& shard : buckets_) {
    for (size_t b = 0; b < kBuckets; ++b) {
      (*counts)[b] += shard.c[b].load(std::memory_order_relaxed);
    }
  }
}

double Histogram::Percentile(double q) const {
  std::vector<uint64_t> counts;
  SnapshotBuckets(&counts);
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  q = std::min(100.0, std::max(0.0, q));
  // Nearest-rank target; interpolate linearly inside the landing bucket so
  // repeated quantiles of identical data are deterministic.
  const uint64_t target = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q / 100.0 *
                                         static_cast<double>(total))));
  uint64_t cumulative = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    if (counts[b] == 0) continue;
    if (cumulative + counts[b] >= target) {
      const double inside =
          static_cast<double>(target - cumulative) /
          static_cast<double>(counts[b]);
      return BucketLower(b) + inside * BucketWidth(b);
    }
    cumulative += counts[b];
  }
  return BucketLower(kBuckets - 1) + BucketWidth(kBuckets - 1);
}

void Histogram::Reset() {
  for (Shard& s : shards_) {
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
  }
  for (BucketShard& shard : buckets_) {
    for (size_t b = 0; b < kBuckets; ++b) {
      shard.c[b].store(0, std::memory_order_relaxed);
    }
  }
}

struct Registry::Impl {
  mutable std::mutex mutex;
  // std::map: stable iteration order (snapshots are name-sorted) and stable
  // element addresses (handed-out pointers never move).
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

Registry& Registry::Global() {
  static Registry registry;
  return registry;
}

Registry::Impl& Registry::impl() const {
  static Impl instance;
  return instance;
}

Counter* Registry::FindOrCreateCounter(const std::string& name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  std::unique_ptr<Counter>& slot = i.counters[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::FindOrCreateGauge(const std::string& name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  std::unique_ptr<Gauge>& slot = i.gauges[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::FindOrCreateHistogram(const std::string& name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  std::unique_ptr<Histogram>& slot = i.histograms[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::vector<std::pair<std::string, const Counter*>> Registry::Counters()
    const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  std::vector<std::pair<std::string, const Counter*>> out;
  out.reserve(i.counters.size());
  for (const auto& [name, counter] : i.counters) {
    out.emplace_back(name, counter.get());
  }
  return out;
}

std::vector<std::pair<std::string, const Gauge*>> Registry::Gauges() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  std::vector<std::pair<std::string, const Gauge*>> out;
  out.reserve(i.gauges.size());
  for (const auto& [name, gauge] : i.gauges) {
    out.emplace_back(name, gauge.get());
  }
  return out;
}

std::vector<std::pair<std::string, const Histogram*>> Registry::Histograms()
    const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  std::vector<std::pair<std::string, const Histogram*>> out;
  out.reserve(i.histograms.size());
  for (const auto& [name, histogram] : i.histograms) {
    out.emplace_back(name, histogram.get());
  }
  return out;
}

void Registry::ResetAllForTest() {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  for (auto& [name, counter] : i.counters) counter->Reset();
  for (auto& [name, gauge] : i.gauges) gauge->Reset();
  for (auto& [name, histogram] : i.histograms) histogram->Reset();
}

}  // namespace obs
}  // namespace sofia

#endif  // SOFIA_OBS_DISABLED
