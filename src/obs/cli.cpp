#include "obs/cli.hpp"

#include <cstdio>

#include "obs/metrics.hpp"
#include "obs/stats.hpp"
#include "obs/trace.hpp"

namespace sofia {
namespace obs {

ObsCliConfig SetupObsFromFlags(const Flags& flags) {
  ObsCliConfig config;
  config.enabled = flags.GetBool("obs", true);
  config.trace_out = flags.GetString("trace-out", "");
  config.trace_capacity =
      static_cast<size_t>(flags.GetInt("trace-capacity", 0));
  config.trace_workers = flags.GetBool("trace-workers", true);
  config.metrics_out = flags.GetString("metrics-out", "");
  config.stats_out = flags.GetString("stats-out", "");
  config.stats_every = static_cast<uint64_t>(flags.GetInt("stats-every", 0));
#ifndef SOFIA_OBS_DISABLED
  SetEnabled(config.enabled);
  SetThreadName("driver");
  if (!config.trace_out.empty()) {
    TraceOptions options;
    if (config.trace_capacity > 0) options.capacity = config.trace_capacity;
    options.worker_spans = config.trace_workers;
    if (!TraceStart(options)) {
      std::fprintf(stderr, "obs: trace session already active; --trace-out=%s ignored\n",
                   config.trace_out.c_str());
      config.trace_out.clear();
    }
  }
  // --stats-every without --stats-out falls back to the metrics file so a
  // single flag gives live progress lines.
  std::string stats_path =
      !config.stats_out.empty() ? config.stats_out : config.metrics_out;
  if (config.stats_every > 0 && !stats_path.empty()) {
    ConfigureStats(stats_path, config.stats_every);
  }
#endif
  return config;
}

void FinishObs(const ObsCliConfig& config) {
#ifndef SOFIA_OBS_DISABLED
  FlushStats();
  if (!config.trace_out.empty()) {
    size_t events = 0;
    size_t dropped = 0;
    if (TraceStopAndWrite(config.trace_out, &events, &dropped)) {
      std::fprintf(stderr, "obs: wrote %zu trace events to %s", events,
                   config.trace_out.c_str());
      if (dropped > 0) {
        std::fprintf(stderr, " (%zu dropped; raise --trace-capacity)", dropped);
      }
      std::fprintf(stderr, "\n");
    } else {
      std::fprintf(stderr, "obs: failed to write trace to %s\n",
                   config.trace_out.c_str());
    }
  }
  if (!config.metrics_out.empty()) {
    std::FILE* f = std::fopen(config.metrics_out.c_str(), "a");
    if (f != nullptr) {
      std::string line;
      AppendSnapshotLine(&line);
      line.push_back('\n');
      std::fwrite(line.data(), 1, line.size(), f);
      std::fclose(f);
      std::fprintf(stderr, "obs: wrote metrics snapshot to %s\n",
                   config.metrics_out.c_str());
    } else {
      std::fprintf(stderr, "obs: failed to open %s\n",
                   config.metrics_out.c_str());
    }
  }
#else
  (void)config;
#endif
}

const char* ObsFlagsHelp() {
  return "  --obs=0|1                 toggle metrics collection (default 1)\n"
         "  --trace-out=FILE          write Chrome trace JSON (Perfetto)\n"
         "  --trace-capacity=N        trace ring capacity in events\n"
         "  --trace-workers=0|1       per-worker batch spans (default 1)\n"
         "  --metrics-out=FILE        append final metrics snapshot (JSONL)\n"
         "  --stats-out=FILE          periodic stats JSONL (default: metrics file)\n"
         "  --stats-every=N           emit stats every N steps (0 = off)\n";
}

}  // namespace obs
}  // namespace sofia
