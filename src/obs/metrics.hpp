#ifndef SOFIA_OBS_METRICS_H_
#define SOFIA_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

/// \file metrics.hpp
/// \brief Lock-light metrics registry: named counters, gauges, and
/// fixed-bucket latency histograms shared by the whole runtime.
///
/// The streaming stack (kernels, pipeline stages, executor lanes, guard
/// wrappers, durability IO) each kept private telemetry structs; this
/// registry is the one place they all publish to, so a single snapshot
/// answers "where does a step's time go" without a bench build. Design
/// constraints, in order:
///
///  - *Hot-path cheap.* Handles (Counter*, Histogram*) are looked up once
///    (mutex-protected name map, stable pointers forever) and cached by the
///    instrumented site; Add()/Observe() is then one relaxed atomic RMW on
///    a per-thread shard — no lock, no allocation, one predictable branch
///    on the master enable flag.
///  - *Per-worker shards aggregated on read.* Each metric holds kShards
///    cache-line-sized cells; a thread picks its cell once (round-robin
///    thread-local slot), so the ShardExecutor's workers never contend on
///    one cache line. Value()/Percentile() sum the shards — reads are rare
///    (stats emission), writes are constant.
///  - *Exact under concurrency.* Shard cells are plain atomic adds, so the
///    aggregated value is exactly the sum of all Add() calls
///    (tests/obs_test.cc pins this under the ShardExecutor).
///  - *Compiles to nothing when disabled.* Building with -DSOFIA_OBS_DISABLED
///    (CMake option SOFIA_OBS_DISABLED) swaps every type here for an inline
///    no-op stub and empties metrics.cpp — the registry contributes zero
///    symbols and zero instructions to the hot path.
///
/// Histograms are log-linear (HdrHistogram-style): 8 linear sub-buckets per
/// power of two, so relative bucket width is <= 12.5% everywhere and
/// p50/p90/p99 read from the bucket midpoints land within ~7% of the exact
/// order statistics. Latency histograms hold microseconds by convention
/// (suffix `_us`).
///
/// Metric naming convention (see README "Observability"):
///   <layer>.<object>.<metric>[_<unit>]     e.g. kernel.csf.mttkrp.calls,
///   time.pipeline.compute_us, guard.checkpoint_us (histogram).
/// Counters under the `time.` prefix are stage wall-time accumulators in
/// microseconds — tools/obs_report turns them into the per-stage
/// attribution table.

namespace sofia {
namespace obs {

#ifndef SOFIA_OBS_DISABLED

/// Number of per-metric shard cells. More than the worker counts we run
/// (threads beyond this share cells round-robin, still exact — just with
/// occasional cache-line sharing).
constexpr size_t kShards = 16;

/// Process-wide master switch, default on ("always-on signals"). Off turns
/// every Add/Set/Observe into a load+branch — the overhead reference the
/// obs bench compares against. Not synchronized: flip between runs.
bool Enabled();
void SetEnabled(bool enabled);

/// This thread's shard slot in [0, kShards): assigned round-robin on first
/// use, stable for the thread's lifetime.
size_t ShardIndex();

/// Monotonically increasing sum of every Add() since construction/Reset.
class Counter {
 public:
  void Add(uint64_t n = 1) {
    if (!Enabled()) return;
    cells_[ShardIndex()].v.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const;
  void Reset();

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  Cell cells_[kShards];
};

/// Last-writer-wins instantaneous value (queue depths, arena growth).
class Gauge {
 public:
  void Set(double value) {
    if (!Enabled()) return;
    value_.store(value, std::memory_order_relaxed);
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket log-linear histogram: values land in 8 linear sub-buckets
/// per power of two (bucket relative width <= 1/8), sharded like Counter.
/// Unit-agnostic; latency histograms store microseconds by convention.
class Histogram {
 public:
  static constexpr size_t kSubBits = 3;                    // 8 sub-buckets.
  static constexpr size_t kSub = size_t{1} << kSubBits;
  static constexpr size_t kBuckets = (64 - kSubBits) * kSub + kSub;

  void Observe(double value);

  uint64_t Count() const;
  /// Sum of llround(value) over every Observe (integral in the value unit).
  uint64_t Sum() const;
  /// q in [0, 100]. Nearest-rank walk over the aggregated buckets with
  /// linear interpolation inside the landing bucket; 0 when empty.
  double Percentile(double q) const;
  void Reset();

  /// Aggregate per-bucket counts (sums the shards), for tests/export.
  void SnapshotBuckets(std::vector<uint64_t>* counts) const;

  /// value -> bucket index; inverse bounds for interpolation.
  static size_t BucketIndex(uint64_t value);
  static double BucketLower(size_t bucket);
  static double BucketWidth(size_t bucket);

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
  };
  Shard shards_[kShards];
  // Bucket cells are sharded too (kShards independent arrays) so concurrent
  // Observe() calls from different workers never share a cache line.
  struct BucketShard {
    std::atomic<uint32_t> c[kBuckets];
  };
  BucketShard buckets_[kShards] = {};
};

/// Global name -> metric registry. Lookups lock; returned pointers are
/// stable for the process lifetime, so instrumented sites look up once
/// (function-local static) and hit the lock never again.
class Registry {
 public:
  static Registry& Global();

  Counter* FindOrCreateCounter(const std::string& name);
  Gauge* FindOrCreateGauge(const std::string& name);
  Histogram* FindOrCreateHistogram(const std::string& name);

  /// Name-sorted views for snapshot/emission (copies the name+pointer list,
  /// not the metric payloads).
  std::vector<std::pair<std::string, const Counter*>> Counters() const;
  std::vector<std::pair<std::string, const Gauge*>> Gauges() const;
  std::vector<std::pair<std::string, const Histogram*>> Histograms() const;

  /// Zeroes every registered metric (registrations and pointers survive —
  /// cached handles stay valid). Tests and benches call this between
  /// phases; production never needs it.
  void ResetAllForTest();

 private:
  Registry() = default;
  struct Impl;
  Impl& impl() const;
};

#else  // SOFIA_OBS_DISABLED: every type is an inline no-op stub. The
       // instrumented call sites compile, then fold to nothing; metrics.cpp
       // contributes no symbols at all.

constexpr size_t kShards = 1;

inline bool Enabled() { return false; }
inline void SetEnabled(bool) {}
inline size_t ShardIndex() { return 0; }

class Counter {
 public:
  void Add(uint64_t = 1) {}
  uint64_t Value() const { return 0; }
  void Reset() {}
};

class Gauge {
 public:
  void Set(double) {}
  double Value() const { return 0.0; }
  void Reset() {}
};

class Histogram {
 public:
  static constexpr size_t kSubBits = 3;
  static constexpr size_t kSub = size_t{1} << kSubBits;
  static constexpr size_t kBuckets = (64 - kSubBits) * kSub + kSub;
  void Observe(double) {}
  uint64_t Count() const { return 0; }
  uint64_t Sum() const { return 0; }
  double Percentile(double) const { return 0.0; }
  void Reset() {}
  void SnapshotBuckets(std::vector<uint64_t>* counts) const { counts->clear(); }
  static size_t BucketIndex(uint64_t) { return 0; }
  static double BucketLower(size_t) { return 0.0; }
  static double BucketWidth(size_t) { return 1.0; }
};

class Registry {
 public:
  static Registry& Global() {
    static Registry registry;
    return registry;
  }
  Counter* FindOrCreateCounter(const std::string&) {
    static Counter counter;
    return &counter;
  }
  Gauge* FindOrCreateGauge(const std::string&) {
    static Gauge gauge;
    return &gauge;
  }
  Histogram* FindOrCreateHistogram(const std::string&) {
    static Histogram histogram;
    return &histogram;
  }
  std::vector<std::pair<std::string, const Counter*>> Counters() const {
    return {};
  }
  std::vector<std::pair<std::string, const Gauge*>> Gauges() const {
    return {};
  }
  std::vector<std::pair<std::string, const Histogram*>> Histograms() const {
    return {};
  }
  void ResetAllForTest() {}
};

#endif  // SOFIA_OBS_DISABLED

}  // namespace obs
}  // namespace sofia

#endif  // SOFIA_OBS_METRICS_H_
