#include "obs/json_lite.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace sofia {
namespace obs {

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  const JsonValue* found = nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) found = &v;  // Last duplicate wins, like our writers.
  }
  return found;
}

double JsonValue::NumberOr(const std::string& key, double def) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? v->number : def;
}

std::string JsonValue::StringOr(const std::string& key,
                                const std::string& def) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_string() ? v->string : def;
}

namespace {

struct Parser {
  const std::string& text;
  size_t pos = 0;
  std::string error;

  bool Fail(const std::string& what) {
    std::ostringstream msg;
    msg << what << " at byte " << pos;
    error = msg.str();
    return false;
  }

  void SkipWs() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos >= text.size() || text[pos] != c) return false;
    ++pos;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return Fail("expected string");
    out->clear();
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos >= text.size()) return Fail("truncated escape");
        const char e = text[pos++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'u': {
            // Our writers never emit \u; decode as '?' to stay lossless
            // enough for validation.
            if (pos + 4 > text.size()) return Fail("truncated \\u escape");
            pos += 4;
            out->push_back('?');
            break;
          }
          default:
            return Fail("unknown escape");
        }
      } else {
        out->push_back(c);
      }
    }
    return Fail("unterminated string");
  }

  bool ParseValue(JsonValue* out) {
    SkipWs();
    if (pos >= text.size()) return Fail("unexpected end of input");
    const char c = text[pos];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return ParseString(&out->string);
    }
    if (text.compare(pos, 4, "true") == 0) {
      out->type = JsonValue::Type::kBool;
      out->boolean = true;
      pos += 4;
      return true;
    }
    if (text.compare(pos, 5, "false") == 0) {
      out->type = JsonValue::Type::kBool;
      out->boolean = false;
      pos += 5;
      return true;
    }
    if (text.compare(pos, 4, "null") == 0) {
      out->type = JsonValue::Type::kNull;
      pos += 4;
      return true;
    }
    // Number.
    char* end = nullptr;
    const double value = std::strtod(text.c_str() + pos, &end);
    if (end == text.c_str() + pos) return Fail("unexpected token");
    out->type = JsonValue::Type::kNumber;
    out->number = value;
    pos = static_cast<size_t>(end - text.c_str());
    return true;
  }

  bool ParseObject(JsonValue* out) {
    if (!Consume('{')) return Fail("expected '{'");
    out->type = JsonValue::Type::kObject;
    SkipWs();
    if (Consume('}')) return true;
    for (;;) {
      std::string key;
      SkipWs();
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return Fail("expected ':'");
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace_back(std::move(key), std::move(value));
      if (Consume(',')) continue;
      if (Consume('}')) return true;
      return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray(JsonValue* out) {
    if (!Consume('[')) return Fail("expected '['");
    out->type = JsonValue::Type::kArray;
    SkipWs();
    if (Consume(']')) return true;
    for (;;) {
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->array.push_back(std::move(value));
      if (Consume(',')) continue;
      if (Consume(']')) return true;
      return Fail("expected ',' or ']'");
    }
  }
};

}  // namespace

bool ParseJson(const std::string& text, JsonValue* out, std::string* error) {
  Parser parser{text};
  *out = JsonValue{};
  if (!parser.ParseValue(out)) {
    if (error != nullptr) *error = parser.error;
    return false;
  }
  parser.SkipWs();
  if (parser.pos != text.size()) {
    if (error != nullptr) *error = "trailing data after JSON document";
    return false;
  }
  return true;
}

bool ParseLastJsonLine(const std::string& body, JsonValue* out,
                       std::string* error) {
  size_t end = body.size();
  while (end > 0 && (body[end - 1] == '\n' || body[end - 1] == '\r')) --end;
  if (end == 0) {
    if (error != nullptr) *error = "empty file";
    return false;
  }
  size_t begin = body.rfind('\n', end - 1);
  begin = begin == std::string::npos ? 0 : begin + 1;
  return ParseJson(body.substr(begin, end - begin), out, error);
}

bool ReadFileToString(const std::string& path, std::string* out,
                      std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

}  // namespace obs
}  // namespace sofia
