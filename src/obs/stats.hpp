#ifndef SOFIA_OBS_STATS_H_
#define SOFIA_OBS_STATS_H_

#include <cstdint>
#include <string>

/// \file stats.hpp
/// \brief Live-stats emitter: periodic JSON-lines snapshots of the registry.
///
/// One snapshot line captures the entire registry — every counter, gauge,
/// and histogram (count/sum/p50/p90/p99) — as a single JSON object, so a
/// `tail -f` of the stats file is a live view of steps/sec, p99 step
/// latency, ingest-hidden fraction, guard trips, journal bytes, and arena
/// growth without a bench build. The pipeline calls StatsTick() once per
/// slice; emission happens every `every_steps` ticks on the driver thread
/// (snapshot + one write, off the kernel hot path). Values are cumulative
/// since process start — consumers diff consecutive lines for rates.
///
/// The same snapshot format is what `--metrics-out` dumps once at CLI exit
/// and what tools/obs_report consumes.

namespace sofia {
namespace obs {

#ifndef SOFIA_OBS_DISABLED

/// Appends one JSON object line (no trailing newline) describing the full
/// registry: {"ts_us":..., "counters":{...}, "gauges":{...},
/// "histograms":{name:{"count":..,"sum":..,"p50":..,"p90":..,"p99":..}}}.
void AppendSnapshotLine(std::string* out);

/// Routes periodic snapshots to `path` (append mode), one line every
/// `every_steps` StatsTick() calls. every_steps == 0 disables. Replaces any
/// earlier configuration; flushes nothing by itself.
void ConfigureStats(const std::string& path, uint64_t every_steps);

/// Step heartbeat — called by the stream pipeline once per slice. Cheap
/// when unconfigured (one relaxed load); emits a snapshot line when due.
void StatsTick();

/// Writes one final snapshot line (if configured) and closes the file.
void FlushStats();

#else  // SOFIA_OBS_DISABLED

inline void AppendSnapshotLine(std::string* out) { *out += "{}"; }
inline void ConfigureStats(const std::string&, uint64_t) {}
inline void StatsTick() {}
inline void FlushStats() {}

#endif  // SOFIA_OBS_DISABLED

}  // namespace obs
}  // namespace sofia

#endif  // SOFIA_OBS_STATS_H_
