// obs_report: render and validate the observability artifacts the SOFIA
// binaries emit (--metrics-out= JSONL snapshots, --trace-out= Chrome
// traces).
//
// Usage: obs_report [--metrics=FILE] [--trace=FILE] [--check]
//
//   --metrics=FILE  metrics JSONL; the LAST line (the cumulative final
//                   snapshot) is rendered as per-stage time-attribution,
//                   histogram, and counter tables.
//   --trace=FILE    Chrome trace-event JSON; summarized (events, tracks,
//                   busiest-track coverage).
//   --check         validate instead of render: metrics must carry the
//                   registry sections and — when a pipeline ran — driver
//                   stage sums within 10% of the pipeline wall clock;
//                   traces must be well-formed with per-track monotonic
//                   completion timestamps and >= 90% busiest-track span
//                   coverage. Problems are listed and the exit status is
//                   nonzero.
//
// The logic lives in src/obs/report.cpp (test-pinned); this is the thin
// main.

#include <cstdio>
#include <string>

#include "obs/json_lite.hpp"
#include "obs/report.hpp"
#include "util/flags.hpp"

namespace {

using sofia::obs::CheckResult;
using sofia::obs::JsonValue;

void PrintProblems(const char* what, const CheckResult& result) {
  std::fprintf(stderr, "%s: %zu problem%s\n", what, result.problems.size(),
               result.problems.size() == 1 ? "" : "s");
  for (const std::string& p : result.problems) {
    std::fprintf(stderr, "  - %s\n", p.c_str());
  }
}

// Loads + parses, returns false (with a stderr line) on any failure.
bool LoadMetricsSnapshot(const std::string& path, JsonValue* out) {
  std::string body, error;
  if (!sofia::obs::ReadFileToString(path, &body, &error)) {
    std::fprintf(stderr, "obs_report: %s\n", error.c_str());
    return false;
  }
  if (!sofia::obs::ParseLastJsonLine(body, out, &error)) {
    std::fprintf(stderr, "obs_report: %s: %s\n", path.c_str(), error.c_str());
    return false;
  }
  return true;
}

bool LoadTrace(const std::string& path, JsonValue* out) {
  std::string body, error;
  if (!sofia::obs::ReadFileToString(path, &body, &error)) {
    std::fprintf(stderr, "obs_report: %s\n", error.c_str());
    return false;
  }
  if (!sofia::obs::ParseJson(body, out, &error)) {
    std::fprintf(stderr, "obs_report: %s: %s\n", path.c_str(), error.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sofia;
  Flags flags(argc, argv);
  const std::string metrics_path = flags.GetString("metrics", "");
  const std::string trace_path = flags.GetString("trace", "");
  const bool check = flags.GetBool("check", false);
  if (metrics_path.empty() && trace_path.empty()) {
    std::fprintf(stderr,
                 "usage: obs_report [--metrics=FILE] [--trace=FILE] "
                 "[--check]\n");
    return 2;
  }

  bool ok = true;
  if (!metrics_path.empty()) {
    obs::JsonValue snapshot;
    if (!LoadMetricsSnapshot(metrics_path, &snapshot)) {
      ok = false;
    } else if (check) {
      const obs::CheckResult result = obs::CheckMetricsSnapshot(snapshot);
      if (result.ok) {
        const obs::AttributionReport attribution =
            obs::TimeAttribution(snapshot);
        std::printf("metrics %s: ok (%zu time stages, driver coverage "
                    "%.3f)\n",
                    metrics_path.c_str(), attribution.rows.size(),
                    attribution.driver_coverage);
      } else {
        PrintProblems(metrics_path.c_str(), result);
        ok = false;
      }
    } else {
      std::printf("%s", obs::RenderReport(snapshot).c_str());
    }
  }

  if (!trace_path.empty()) {
    obs::JsonValue trace;
    if (!LoadTrace(trace_path, &trace)) {
      ok = false;
    } else {
      obs::TraceStats stats;
      const obs::CheckResult result = obs::CheckTrace(trace, &stats);
      if (result.ok) {
        std::printf("trace %s: ok (%zu events on %zu tracks; busiest "
                    "'%s' span coverage %.3f)\n",
                    trace_path.c_str(), stats.events, stats.tracks,
                    stats.busiest_track.c_str(), stats.busiest_coverage);
      } else {
        PrintProblems(trace_path.c_str(), result);
        ok = false;
      }
    }
  }
  return ok ? 0 : 1;
}
