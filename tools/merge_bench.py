#!/usr/bin/env python3
"""Merge the per-PR BENCH_*.json files into one BENCH_summary.json.

Each perf PR leaves a self-describing benchmark artifact (BENCH_kernels.json,
BENCH_stream.json, BENCH_baselines.json, BENCH_pipeline.json, ...) in the
repo root. This tool folds them into a single trajectory file so the speedup
story across PRs can be read (and plotted) from one place:

    python3 tools/merge_bench.py [--dir .] [--out BENCH_summary.json]

The summary keeps, per source file: the description, the unit, the machine
block, and every "speedup_*" map. Files are ordered by their git-history
first-appearance order when known, else alphabetically.
"""

import argparse
import glob
import json
import os
import sys

# Known artifacts in the order their PRs landed; unknown files sort after
# (every BENCH_*.json in --dir is globbed, so new artifacts fold in
# automatically even before they are added here).
KNOWN_ORDER = [
    "BENCH_kernels.json",    # PR 1: sparse observed-entry kernel layer.
    "BENCH_stream.json",     # PR 2: sparse streaming Step.
    "BENCH_baselines.json",  # PR 3: baselines on the ObservedSweep core.
    "BENCH_pipeline.json",   # PR 4: lazy StepResult eval pipeline.
    "BENCH_csf.json",        # PR 5: CSF tensor-storage subsystem.
    "BENCH_robustness.json", # PR 6: StreamGuard fault-tolerance layer.
    "BENCH_simd.json",       # PR 7: SIMD kernels + incremental CSF.
    "BENCH_runtime.json",    # PR 8: sharded pipelined streaming runtime.
    "BENCH_durability.json", # PR 9: crash-consistent durability layer.
    "BENCH_obs.json",        # PR 10: unified observability subsystem.
]


def order_key(name):
    base = os.path.basename(name)
    try:
        return (0, KNOWN_ORDER.index(base))
    except ValueError:
        return (1, base)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dir", default=".",
                        help="directory holding the BENCH_*.json files")
    parser.add_argument("--out", default="BENCH_summary.json",
                        help="output path of the merged summary")
    args = parser.parse_args()

    paths = sorted(glob.glob(os.path.join(args.dir, "BENCH_*.json")),
                   key=order_key)
    paths = [p for p in paths
             if os.path.basename(p) != os.path.basename(args.out)]
    if not paths:
        print(f"no BENCH_*.json files under {args.dir}", file=sys.stderr)
        return 1

    trajectory = []
    for path in paths:
        with open(path) as f:
            try:
                data = json.load(f)
            except json.JSONDecodeError as e:
                print(f"skipping unparsable {path}: {e}", file=sys.stderr)
                continue
        entry = {"file": os.path.basename(path)}
        for key in ("description", "unit", "machine"):
            if key in data:
                entry[key] = data[key]
        speedups = {k: v for k, v in data.items()
                    if k.startswith("speedup")}
        if speedups:
            entry["speedups"] = speedups
        trajectory.append(entry)

    summary = {
        "description": ("Per-PR benchmark trajectory, merged from the "
                        "individual BENCH_*.json artifacts by "
                        "tools/merge_bench.py. Each entry keeps its source "
                        "file's description and speedup maps; see the "
                        "source files for the full raw timings."),
        "trajectory": trajectory,
    }
    with open(args.out, "w") as f:
        json.dump(summary, f, indent=2)
        f.write("\n")
    print(f"wrote {args.out} ({len(trajectory)} benchmark files merged)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
