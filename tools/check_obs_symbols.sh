#!/bin/sh
# Proves the SOFIA_OBS_DISABLED build's "compiles to nothing" claim: the
# metrics/trace/stats translation units must contribute zero strong text
# symbols to the core archive (the JSON reader and report logic remain by
# design — tools/obs_report reads artifacts from any build). Invoked by the
# check-obs-disabled CMake target with the nested build's libsofia_core.a.
set -eu
archive="$1"
if nm "$archive" | grep ' T ' | grep -E \
    'TraceStart|TraceStopAndWrite|AppendSnapshotLine|ConfigureStats|FindOrCreateCounter|FindOrCreateHistogram'
then
  echo "obs symbols leaked into the disabled build: $archive" >&2
  exit 1
fi
echo "obs disabled build: zero metrics/trace/stats symbols in $archive"
