// slice_convert: translate tensor streams between the CSV record format
// (data/stream_io) and the binary journal/slice format (data/slice_format).
//
//   slice_convert --to-binary  in.csv  out.slices [--sequence=N]
//   slice_convert --to-csv     in.slices  out.csv
//   slice_convert --inspect    file.slices
//
// Both directions are bitwise-lossless: the CSV writer emits doubles at
// max_digits10 and the binary format stores raw IEEE bytes, so a
// text→binary→text roundtrip is the identity (tested in
// tests/slice_format_test.cc). --inspect prints the header and per-record
// summary of a binary file, including whether a torn tail was dropped —
// the quick triage tool for a journal left behind by a crash.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

#include "data/slice_format.hpp"
#include "data/stream_io.hpp"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --to-binary in.csv out.slices [--sequence=N]\n"
               "       %s --to-csv    in.slices out.csv\n"
               "       %s --inspect   file.slices\n",
               argv0, argv0, argv0);
  return 2;
}

int ToBinary(const std::string& in, const std::string& out,
             uint64_t sequence) {
  sofia::TensorStream stream = sofia::ReadStreamCsvFile(in);
  std::string error;
  if (!sofia::slicefmt::WriteSliceFile(out, stream, sequence, &error)) {
    std::fprintf(stderr, "%s: %s\n", out.c_str(), error.c_str());
    return 1;
  }
  std::printf("%s: %zu slices -> %s\n", in.c_str(), stream.slices.size(),
              out.c_str());
  return 0;
}

int ToCsv(const std::string& in, const std::string& out) {
  sofia::TensorStream stream;
  std::string error;
  if (!sofia::slicefmt::ReadSliceFile(in, &stream, &error)) {
    std::fprintf(stderr, "%s: %s\n", in.c_str(), error.c_str());
    return 1;
  }
  if (!sofia::WriteStreamCsvFile(out, stream)) {
    std::fprintf(stderr, "%s: write failed\n", out.c_str());
    return 1;
  }
  std::printf("%s: %zu slices -> %s\n", in.c_str(), stream.slices.size(),
              out.c_str());
  return 0;
}

int Inspect(const std::string& path) {
  sofia::slicefmt::SliceFileReader reader;
  std::string error;
  if (!reader.Open(path, &error)) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), error.c_str());
    return 1;
  }
  std::printf("%s\n  version:  %u\n  sequence: %llu\n  shape:    %s\n"
              "  records:  %zu%s\n",
              path.c_str(), reader.version(),
              static_cast<unsigned long long>(reader.sequence()),
              reader.slice_shape().ToString().c_str(), reader.num_records(),
              reader.truncated() ? "  (torn tail dropped)" : "");
  for (size_t i = 0; i < reader.num_records(); ++i) {
    const sofia::slicefmt::SliceRecordView record = reader.record(i);
    std::printf("  [%zu] step=%llu nnz=%zu\n", i,
                static_cast<unsigned long long>(record.step), record.nnz);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage(argv[0]);
  const std::string mode = argv[1];
  if (mode == "--inspect") return Inspect(argv[2]);
  if (argc < 4) return Usage(argv[0]);
  if (mode == "--to-binary") {
    uint64_t sequence = 0;
    for (int i = 4; i < argc; ++i) {
      if (std::strncmp(argv[i], "--sequence=", 11) == 0) {
        sequence = std::strtoull(argv[i] + 11, nullptr, 10);
      } else {
        return Usage(argv[0]);
      }
    }
    return ToBinary(argv[2], argv[3], sequence);
  }
  if (mode == "--to-csv") return ToCsv(argv[2], argv[3]);
  return Usage(argv[0]);
}
