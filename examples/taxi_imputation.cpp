// Taxi-trip imputation: the workload from the paper's introduction.
//
// A city collects hourly zone-to-zone trip counts as a (source, destination,
// hour) tensor stream. Entries go missing (collection outages) and some are
// corrupted (system errors). SOFIA recovers the missing counts in real time;
// we compare it against a non-robust streaming factorization (OnlineSGD) to
// show what the outlier/seasonality machinery buys.
//
// Usage: taxi_imputation [--missing=50] [--outliers=20] [--magnitude=4]
//                        [--num_threads=0] [--use_sparse_kernels=true]

#include <cstdio>

#include "baselines/online_sgd.hpp"
#include "core/sofia_stream.hpp"
#include "data/corruption.hpp"
#include "data/dataset_sim.hpp"
#include "eval/experiment.hpp"
#include "eval/stream_runner.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace sofia;
  Flags flags(argc, argv);
  CorruptionSetting setting;
  setting.missing_percent = flags.GetDouble("missing", 50.0);
  setting.outlier_percent = flags.GetDouble("outliers", 20.0);
  setting.magnitude = flags.GetDouble("magnitude", 4.0);

  Dataset taxi = MakeChicagoTaxi(DatasetScale::kSmall);
  taxi.slices.resize(6 * taxi.period);
  CorruptedStream stream = Corrupt(taxi.slices, setting, /*seed=*/7);

  std::printf("Chicago-style taxi stream: %s per slice, m=%zu, %zu steps, "
              "setting %s\n\n",
              taxi.slices[0].shape().ToString().c_str(), taxi.period,
              taxi.slices.size(), setting.ToString().c_str());

  // Kernel-path knobs, shared by SOFIA and the baseline: both run their
  // per-step work on the observed-entry kernels unless told otherwise.
  const size_t num_threads =
      static_cast<size_t>(flags.GetInt("num_threads", 0));
  const bool use_sparse_kernels = flags.GetBool("use_sparse_kernels", true);

  SofiaConfig config = MakeExperimentConfig(taxi, stream);
  config.num_threads = num_threads;
  config.use_sparse_kernels = use_sparse_kernels;
  SofiaStream sofia_method(config);
  StreamRunResult sofia_res =
      RunImputation(&sofia_method, stream, taxi.slices);

  OnlineSgdOptions sgd_options;
  sgd_options.rank = taxi.rank;
  sgd_options.num_threads = num_threads;
  sgd_options.use_sparse_kernels = use_sparse_kernels;
  OnlineSgd sgd(sgd_options);
  StreamRunResult sgd_res = RunImputation(&sgd, stream, taxi.slices);

  Table table({"method", "RAE", "RAE post-init", "ART (s/subtensor)"});
  table.AddRow({"SOFIA", Table::Num(sofia_res.rae),
                Table::Num(sofia_res.rae_post_init),
                Table::Num(sofia_res.art_seconds)});
  table.AddRow({"OnlineSGD", Table::Num(sgd_res.rae),
                Table::Num(sgd_res.rae_post_init),
                Table::Num(sgd_res.art_seconds)});
  std::printf("%s\n", table.ToString().c_str());

  // Show a few concrete recoveries: entries that were missing at the last
  // step, with SOFIA's imputed value vs the ground truth the model never
  // saw. (The adapter keeps the fitted model; reconstruct its final state.)
  const size_t last = taxi.slices.size() - 1;
  DenseTensor imputed = sofia_method.model().Reconstruct(
      sofia_method.model().last_temporal_row());
  std::printf("sample imputations at t=%zu (entries the model never saw):\n",
              last);
  size_t shown = 0;
  for (size_t k = 0; k < taxi.slices[last].NumElements() && shown < 5; ++k) {
    if (!stream.masks[last].Get(k)) {
      std::printf("  entry %3zu: truth %8.2f   imputed %8.2f\n", k,
                  taxi.slices[last][k], imputed[k]);
      ++shown;
    }
  }
  std::printf("\nSOFIA recovers the stream %0.1fx more accurately than the "
              "non-robust baseline.\n",
              sofia_res.rae > 0 ? sgd_res.rae / sofia_res.rae : 0.0);
  return 0;
}
