// Taxi-trip imputation: the workload from the paper's introduction.
//
// A city collects hourly zone-to-zone trip counts as a (source, destination,
// hour) tensor stream. Entries go missing (collection outages) and some are
// corrupted (system errors). SOFIA recovers the missing counts in real time;
// we compare it against a non-robust streaming factorization (OnlineSGD) to
// show what the outlier/seasonality machinery buys.
//
// The comparison runs on the lazy eval pipeline: both methods return
// StepResult handles and are scored at observed + held-out entries through
// shared CooList gathers — no per-step dense reconstruction anywhere
// (pass --force_dense=true to time the materializing path instead; the
// scores are bitwise identical).
//
// Usage: taxi_imputation [--missing=50] [--outliers=20] [--magnitude=4]
//                        [--num_threads=0] [--use_sparse_kernels=true]
//                        [--eval_cap=1024] [--force_dense=false]
//                        [--storage=coo|csf]
//                        [--simd=on|off] [--csf-leaf=default|auto]
//                        [--csf-churn=0.25]
//                        [--scenario=clean|bursty-outage|regime-change|
//                                    structured-outliers|garbage-slices|
//                                    combined-stress]
//                        [--guard=off|skip|rollback|reinit]
//                        [--workers=0] [--pipeline-depth=1] [--window=1]
//                        [--trace-out=FILE] [--metrics-out=FILE]
//                        [--stats-every=N] [--obs=on|off]
//
// --workers/--pipeline-depth/--window configure the sharded streaming
// runtime behind the comparison (eval/stream_pipeline.hpp): persistent
// slab-owning workers, ingest/compute overlap at depth >= 2, and batched
// ingest. All three change wall-clock shape only — scores are bitwise
// identical at every setting.
//
// --scenario replaces the plain element-wise corruption with one of the
// adversarial stream scenarios from data/scenarios.hpp; --guard wraps both
// methods in a StreamGuard with the given degradation policy (try
// --scenario=garbage-slices with and without --guard=rollback).

#include <cstdio>
#include <memory>

#include "baselines/online_sgd.hpp"
#include "core/sofia_stream.hpp"
#include "data/corruption.hpp"
#include "data/dataset_sim.hpp"
#include "data/scenarios.hpp"
#include "eval/experiment.hpp"
#include "eval/metrics.hpp"
#include "eval/step_result.hpp"
#include "eval/stream_guard.hpp"
#include "eval/stream_runner.hpp"
#include "obs/cli.hpp"
#include "tensor/csf_tensor.hpp"
#include "tensor/simd.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace sofia;
  Flags flags(argc, argv);
  // Observability: --trace-out= captures a Chrome-trace of the run,
  // --metrics-out= appends registry snapshots as JSON lines (obs/cli.hpp).
  const obs::ObsCliConfig obs_config = obs::SetupObsFromFlags(flags);
  CorruptionSetting setting;
  setting.missing_percent = flags.GetDouble("missing", 50.0);
  setting.outlier_percent = flags.GetDouble("outliers", 20.0);
  setting.magnitude = flags.GetDouble("magnitude", 4.0);

  Dataset taxi = MakeChicagoTaxi(DatasetScale::kSmall);
  taxi.slices.resize(6 * taxi.period);

  // --scenario= swaps the plain element corruption for an adversarial
  // stream (outages, regime change, garbage slices, ...); the scoring
  // truth comes from the scenario, which may transform it mid-stream.
  const std::string scenario_name = flags.GetString("scenario", "");
  CorruptedStream stream;
  std::vector<DenseTensor> truth = taxi.slices;
  if (scenario_name.empty()) {
    stream = Corrupt(taxi.slices, setting, /*seed=*/7);
  } else {
    ScenarioOptions scenario_options;
    scenario_options.element = setting;
    // Faults go into the streamed phase: init is offline, where the guard
    // fail-fasts on bad input by design (a data bug, not a stream fault).
    scenario_options.garbage_offset = 3 * taxi.period + 4;
    ScenarioStream scenario = MakeScenario(ParseScenario(scenario_name),
                                           taxi.slices, scenario_options,
                                           /*seed=*/7);
    stream = std::move(scenario.stream);
    truth = std::move(scenario.truth);
  }

  std::printf("Chicago-style taxi stream: %s per slice, m=%zu, %zu steps, "
              "setting %s%s%s\n\n",
              taxi.slices[0].shape().ToString().c_str(), taxi.period,
              taxi.slices.size(), setting.ToString().c_str(),
              scenario_name.empty() ? "" : ", scenario ",
              scenario_name.c_str());

  // Kernel-path knobs, shared by SOFIA and the baseline: both run their
  // per-step work on the observed-entry kernels unless told otherwise.
  // --storage=csf compiles each shared per-step pattern into CSF fiber
  // trees (tensor/csf_tensor.hpp) and routes every method's kernels
  // through the fiber-reuse backend.
  const size_t num_threads =
      static_cast<size_t>(flags.GetInt("num_threads", 0));
  const bool use_sparse_kernels = flags.GetBool("use_sparse_kernels", true);
  const PatternStorage storage =
      ParsePatternStorage(flags.GetString("storage", "coo"));
  // Kernel-ISA and CSF-maintenance knobs (tensor/simd.hpp,
  // tensor/csf_tensor.hpp): --simd=off forces the scalar kernel
  // instantiations; --csf-leaf=auto picks each fiber tree's leaf mode by
  // fewest distinct fibers; --csf-churn bounds the pattern-churn fraction
  // BuildDelta patches incrementally instead of recompiling.
  simd::SetEnabled(
      flags.GetString("simd", simd::Enabled() ? "on" : "off") == "on");
  csf::SetAutoLeaf(flags.GetString("csf-leaf", "default") == "auto");
  csf::SetDeltaMaxChurn(flags.GetDouble("csf-churn", csf::DeltaMaxChurn()));

  SofiaConfig config = MakeExperimentConfig(taxi, stream);
  config.num_threads = num_threads;
  config.use_sparse_kernels = use_sparse_kernels;
  config.pattern_storage = storage;
  auto sofia_owned = std::make_unique<SofiaStream>(config);
  SofiaStream* sofia_method = sofia_owned.get();  // For the final model peek.

  OnlineSgdOptions sgd_options;
  sgd_options.rank = taxi.rank;
  sgd_options.num_threads = num_threads;
  sgd_options.use_sparse_kernels = use_sparse_kernels;

  // --guard= wraps both methods in the fault-tolerance layer
  // (eval/stream_guard.hpp): input validation, health watch, and the named
  // degradation policy on trip.
  const std::string guard_name = flags.GetString("guard", "off");
  std::unique_ptr<StreamingMethod> sofia_runner = std::move(sofia_owned);
  std::unique_ptr<StreamingMethod> sgd_runner =
      std::make_unique<OnlineSgd>(sgd_options);
  if (guard_name != "off") {
    StreamGuardOptions guard_options;
    guard_options.policy = ParseGuardPolicy(guard_name);
    sofia_runner = std::make_unique<StreamGuard>(std::move(sofia_runner),
                                                 guard_options);
    sgd_runner = std::make_unique<StreamGuard>(std::move(sgd_runner),
                                               guard_options);
  }

  // Lazy comparison protocol: one shared pattern build per distinct mask
  // per step, scores from gathers, one shared worker pool for everyone.
  StreamEvalOptions options;
  options.max_eval_entries =
      static_cast<size_t>(flags.GetInt("eval_cap", 1024));
  options.force_dense = flags.GetBool("force_dense", false);
  options.num_threads = num_threads;
  options.pattern_storage = storage;
  options.workers = static_cast<size_t>(flags.GetInt("workers", 0));
  options.pipeline_depth =
      static_cast<size_t>(flags.GetInt("pipeline-depth", 1));
  options.window = static_cast<size_t>(flags.GetInt("window", 1));

  StepResult::ResetMaterializations();
  std::vector<StreamingMethod*> methods = {sofia_runner.get(),
                                           sgd_runner.get()};
  std::vector<MethodRunResult> results =
      RunImputationComparison(methods, stream, truth, options);

  Table table({"method", "RAE", "RAE held-out", "RAE post-init",
               "ART (s/subtensor)"});
  for (const MethodRunResult& r : results) {
    table.AddRow({r.name, Table::Num(r.run.rae),
                  Table::Num(Mean(r.run.missing_nre)),
                  Table::Num(r.run.rae_post_init),
                  Table::Num(r.run.art_seconds)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("dense reconstructions during the comparison: %zu\n\n",
              StepResult::materializations());
  for (const MethodRunResult& r : results) {
    if (!r.run.guarded) continue;
    std::printf("%s: %zu input trips, %zu health trips, %zu rollbacks, "
                "%zu reinits, %zu recoveries\n",
                r.name.c_str(), r.run.guard.input_trips,
                r.run.guard.health_trips, r.run.guard.rollbacks,
                r.run.guard.reinits, r.run.guard.recoveries);
  }
  if (guard_name != "off") std::printf("\n");

  // Show a few concrete recoveries: entries that were missing at the last
  // step, with SOFIA's imputed value vs the ground truth the model never
  // saw — spot reads through the lazy handle of the final model state.
  const size_t last = truth.size() - 1;
  StepResult final_state = StepResult::Kruskal(
      sofia_method->model().nontemporal_factors(),
      sofia_method->model().last_temporal_row());
  std::printf("sample imputations at t=%zu (entries the model never saw):\n",
              last);
  size_t shown = 0;
  const Shape& slice_shape = truth[last].shape();
  std::vector<size_t> idx(slice_shape.order(), 0);
  for (size_t k = 0; k < truth[last].NumElements() && shown < 5; ++k) {
    if (!stream.masks[last].Get(k)) {
      std::printf("  entry %3zu: truth %8.2f   imputed %8.2f\n", k,
                  truth[last][k], final_state.at(idx));
      ++shown;
    }
    slice_shape.Next(&idx);
  }
  const double sofia_rae = results[0].run.rae;
  const double sgd_rae = results[1].run.rae;
  std::printf("\nSOFIA recovers the stream %0.1fx more accurately than the "
              "non-robust baseline.\n",
              sofia_rae > 0 ? sgd_rae / sofia_rae : 0.0);
  obs::FinishObs(obs_config);
  return 0;
}
