// Taxi-trip imputation: the workload from the paper's introduction.
//
// A city collects hourly zone-to-zone trip counts as a (source, destination,
// hour) tensor stream. Entries go missing (collection outages) and some are
// corrupted (system errors). SOFIA recovers the missing counts in real time;
// we compare it against a non-robust streaming factorization (OnlineSGD) to
// show what the outlier/seasonality machinery buys.
//
// The comparison runs on the lazy eval pipeline: both methods return
// StepResult handles and are scored at observed + held-out entries through
// shared CooList gathers — no per-step dense reconstruction anywhere
// (pass --force_dense=true to time the materializing path instead; the
// scores are bitwise identical).
//
// Usage: taxi_imputation [--missing=50] [--outliers=20] [--magnitude=4]
//                        [--num_threads=0] [--use_sparse_kernels=true]
//                        [--eval_cap=1024] [--force_dense=false]
//                        [--storage=coo|csf]

#include <cstdio>

#include "baselines/online_sgd.hpp"
#include "core/sofia_stream.hpp"
#include "data/corruption.hpp"
#include "data/dataset_sim.hpp"
#include "eval/experiment.hpp"
#include "eval/metrics.hpp"
#include "eval/step_result.hpp"
#include "eval/stream_runner.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace sofia;
  Flags flags(argc, argv);
  CorruptionSetting setting;
  setting.missing_percent = flags.GetDouble("missing", 50.0);
  setting.outlier_percent = flags.GetDouble("outliers", 20.0);
  setting.magnitude = flags.GetDouble("magnitude", 4.0);

  Dataset taxi = MakeChicagoTaxi(DatasetScale::kSmall);
  taxi.slices.resize(6 * taxi.period);
  CorruptedStream stream = Corrupt(taxi.slices, setting, /*seed=*/7);

  std::printf("Chicago-style taxi stream: %s per slice, m=%zu, %zu steps, "
              "setting %s\n\n",
              taxi.slices[0].shape().ToString().c_str(), taxi.period,
              taxi.slices.size(), setting.ToString().c_str());

  // Kernel-path knobs, shared by SOFIA and the baseline: both run their
  // per-step work on the observed-entry kernels unless told otherwise.
  // --storage=csf compiles each shared per-step pattern into CSF fiber
  // trees (tensor/csf_tensor.hpp) and routes every method's kernels
  // through the fiber-reuse backend.
  const size_t num_threads =
      static_cast<size_t>(flags.GetInt("num_threads", 0));
  const bool use_sparse_kernels = flags.GetBool("use_sparse_kernels", true);
  const PatternStorage storage =
      ParsePatternStorage(flags.GetString("storage", "coo"));

  SofiaConfig config = MakeExperimentConfig(taxi, stream);
  config.num_threads = num_threads;
  config.use_sparse_kernels = use_sparse_kernels;
  config.pattern_storage = storage;
  SofiaStream sofia_method(config);

  OnlineSgdOptions sgd_options;
  sgd_options.rank = taxi.rank;
  sgd_options.num_threads = num_threads;
  sgd_options.use_sparse_kernels = use_sparse_kernels;
  OnlineSgd sgd(sgd_options);

  // Lazy comparison protocol: one shared pattern build per distinct mask
  // per step, scores from gathers, one shared worker pool for everyone.
  StreamEvalOptions options;
  options.max_eval_entries =
      static_cast<size_t>(flags.GetInt("eval_cap", 1024));
  options.force_dense = flags.GetBool("force_dense", false);
  options.num_threads = num_threads;
  options.pattern_storage = storage;

  StepResult::ResetMaterializations();
  std::vector<StreamingMethod*> methods = {&sofia_method, &sgd};
  std::vector<MethodRunResult> results =
      RunImputationComparison(methods, stream, taxi.slices, options);

  Table table({"method", "RAE", "RAE held-out", "RAE post-init",
               "ART (s/subtensor)"});
  for (const MethodRunResult& r : results) {
    table.AddRow({r.name, Table::Num(r.run.rae),
                  Table::Num(Mean(r.run.missing_nre)),
                  Table::Num(r.run.rae_post_init),
                  Table::Num(r.run.art_seconds)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("dense reconstructions during the comparison: %zu\n\n",
              StepResult::materializations());

  // Show a few concrete recoveries: entries that were missing at the last
  // step, with SOFIA's imputed value vs the ground truth the model never
  // saw — spot reads through the lazy handle of the final model state.
  const size_t last = taxi.slices.size() - 1;
  StepResult final_state = StepResult::Kruskal(
      sofia_method.model().nontemporal_factors(),
      sofia_method.model().last_temporal_row());
  std::printf("sample imputations at t=%zu (entries the model never saw):\n",
              last);
  size_t shown = 0;
  const Shape& slice_shape = taxi.slices[last].shape();
  std::vector<size_t> idx(slice_shape.order(), 0);
  for (size_t k = 0; k < taxi.slices[last].NumElements() && shown < 5; ++k) {
    if (!stream.masks[last].Get(k)) {
      std::printf("  entry %3zu: truth %8.2f   imputed %8.2f\n", k,
                  taxi.slices[last][k], final_state.at(idx));
      ++shown;
    }
    slice_shape.Next(&idx);
  }
  const double sofia_rae = results[0].run.rae;
  const double sgd_rae = results[1].run.rae;
  std::printf("\nSOFIA recovers the stream %0.1fx more accurately than the "
              "non-robust baseline.\n",
              sofia_rae > 0 ? sgd_rae / sofia_rae : 0.0);
  return 0;
}
