// Quickstart: factorize a corrupted seasonal tensor stream with SOFIA,
// impute its missing entries, and forecast the next season.
//
// The stream is a toy "sensor grid": 8 x 6 readings per tick, daily period
// of 12 ticks, with 30% of entries missing and 10% hit by outliers.
//
// Build & run:  ./examples/quickstart
//               [--workers=0] [--storage=coo|csf] [--simd=on|off]
//               [--trace-out=FILE] [--metrics-out=FILE]
//               [--stats-every=N] [--obs=on|off]
//
// The knobs mirror the other examples: --workers sizes SOFIA's internal
// kernel worker pool, --storage=csf selects the compressed-sparse-fiber
// pattern backend, --simd=off forces the scalar kernels. The imputation
// numbers are identical across all three. --trace-out/--metrics-out record
// an observability trace / metric snapshots of the run (obs/cli.hpp).

#include <cmath>
#include <cstdio>

#include "core/sofia.hpp"
#include "data/corruption.hpp"
#include "data/synthetic.hpp"
#include "eval/metrics.hpp"
#include "obs/cli.hpp"
#include "tensor/pattern_storage.hpp"
#include "tensor/simd.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace sofia;
  Flags flags(argc, argv);
  const obs::ObsCliConfig obs_config = obs::SetupObsFromFlags(flags);

  // 1. A ground-truth seasonal low-rank stream (what the world would look
  //    like if sensors never failed).
  const size_t kPeriod = 12;
  const size_t kSteps = 8 * kPeriod;
  SyntheticTensor world = MakeSinusoidTensor(8, 6, kSteps, /*rank=*/3,
                                             kPeriod, /*seed=*/42);
  std::vector<DenseTensor> truth;
  for (size_t t = 0; t < kSteps; ++t) {
    truth.push_back(world.tensor.SliceLastMode(t));
  }

  // 2. What we actually receive: 30% missing, 10% outliers at 3x max.
  CorruptedStream stream = Corrupt(truth, {30.0, 10.0, 3.0}, /*seed=*/43);

  // 3. Configure SOFIA. The smoothness weights work against the temporal
  //    normal-equation curvature, and λ3 should sit between the clean-data
  //    and outlier scales (see DESIGN.md §5).
  SofiaConfig config;
  config.rank = 3;
  config.period = kPeriod;
  config.lambda1 = 0.5;
  config.lambda2 = 0.5;
  // Runtime knobs — shape only, the numbers below don't move.
  config.num_threads = static_cast<size_t>(flags.GetInt("workers", 0));
  config.pattern_storage =
      ParsePatternStorage(flags.GetString("storage", "coo"));
  simd::SetEnabled(
      flags.GetString("simd", simd::Enabled() ? "on" : "off") == "on");

  // 4. Initialize on the first 3 seasons (Algorithm 1 + HW fitting)...
  const size_t window = config.InitWindow();
  std::vector<DenseTensor> init_slices(stream.slices.begin(),
                                       stream.slices.begin() + window);
  std::vector<Mask> init_masks(stream.masks.begin(),
                               stream.masks.begin() + window);
  SofiaModel model = SofiaModel::Initialize(init_slices, init_masks, config);

  // 5. ...then stream the rest (Algorithm 3), imputing as we go.
  double nre_sum = 0.0;
  size_t outliers_caught = 0;
  for (size_t t = window; t < kSteps; ++t) {
    SofiaStepResult out = model.Step(stream.slices[t], stream.masks[t]);
    nre_sum += NormalizedResidualError(out.imputed(), truth[t]);
    // Outliers live only at observed entries — count them from the sparse
    // view instead of materializing the dense O_t tensor.
    for (double o : out.observed_outliers()) {
      if (std::fabs(o) > 1e-9) ++outliers_caught;
    }
  }
  std::printf("streamed %zu subtensors; mean imputation NRE = %.4f\n",
              kSteps - window, nre_sum / static_cast<double>(kSteps - window));
  std::printf("outlier entries flagged while streaming: %zu\n",
              outliers_caught);

  // 6. Forecast one full future season (Eq. (28)).
  std::printf("next-season forecast of entry (0,0):\n ");
  for (size_t h = 1; h <= kPeriod; ++h) {
    std::printf(" %6.2f", model.Forecast(h)[0]);
  }
  std::printf("\ndone — see examples/traffic_forecast.cpp for forecast "
              "evaluation against held-out data.\n");
  obs::FinishObs(obs_config);
  return 0;
}
