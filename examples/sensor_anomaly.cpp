// Sensor anomaly detection: SOFIA's outlier tensor O_t as a streaming
// anomaly detector.
//
// An Intel-Lab-style deployment streams (position, sensor) readings every
// tick. Besides random missingness, a burst of sensor faults injects
// extreme readings. SOFIA is not told where the faults are — we check how
// precisely the entries it routes into O_t (Eq. (21)) coincide with the
// injected faults.
//
// Usage: sensor_anomaly [--fault_rate=10] [--magnitude=5]
//                       [--num_threads=0] [--use_sparse_kernels=true]
//                       [--workers=0] [--storage=coo|csf] [--simd=on|off]
//                       [--trace-out=FILE] [--metrics-out=FILE]
//                       [--stats-every=N] [--obs=on|off]
//
// --workers sizes SOFIA's internal sharded executor (overrides
// --num_threads when nonzero); --storage=csf routes the per-step pattern
// through the compressed-sparse-fiber backend; --simd=off forces the
// scalar kernel instantiations. Detection counts are identical across all
// three knobs. --trace-out/--metrics-out capture an obs trace and metric
// snapshots of the run (obs/cli.hpp).

#include <cmath>
#include <cstdio>

#include "core/sofia_stream.hpp"
#include "data/corruption.hpp"
#include "data/dataset_sim.hpp"
#include "eval/experiment.hpp"
#include "obs/cli.hpp"
#include "tensor/pattern_storage.hpp"
#include "tensor/simd.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace sofia;
  Flags flags(argc, argv);
  const obs::ObsCliConfig obs_config = obs::SetupObsFromFlags(flags);
  const double fault_rate = flags.GetDouble("fault_rate", 10.0);
  const double magnitude = flags.GetDouble("magnitude", 5.0);

  Dataset lab = MakeIntelLabSensor(DatasetScale::kSmall);
  lab.slices.resize(6 * lab.period);
  // 20% missing plus the fault injections we want to detect.
  CorruptedStream stream =
      Corrupt(lab.slices, {20.0, fault_rate, magnitude}, /*seed=*/11);

  SofiaConfig config = MakeExperimentConfig(lab, stream);
  config.num_threads = static_cast<size_t>(
      flags.GetInt("num_threads", static_cast<int64_t>(config.num_threads)));
  config.use_sparse_kernels =
      flags.GetBool("use_sparse_kernels", config.use_sparse_kernels);
  const size_t workers = static_cast<size_t>(flags.GetInt("workers", 0));
  if (workers != 0) config.num_threads = workers;
  config.pattern_storage =
      ParsePatternStorage(flags.GetString("storage", "coo"));
  simd::SetEnabled(
      flags.GetString("simd", simd::Enabled() ? "on" : "off") == "on");
  const size_t window = config.InitWindow();
  std::vector<DenseTensor> init_slices(stream.slices.begin(),
                                       stream.slices.begin() + window);
  std::vector<Mask> init_masks(stream.masks.begin(),
                               stream.masks.begin() + window);
  SofiaModel model = SofiaModel::Initialize(init_slices, init_masks, config);

  size_t true_positive = 0, false_positive = 0, false_negative = 0;
  for (size_t t = window; t < lab.slices.size(); ++t) {
    SofiaStepResult out = model.Step(stream.slices[t], stream.masks[t]);
    const Mask& injected = stream.outlier_positions[t];
    // The observed-entry view walks exactly the entries a detector can see,
    // without ever materializing the dense O_t or X̂_t slices.
    for (size_t j = 0; j < out.num_observed(); ++j) {
      const size_t k = out.observed_indices()[j];
      // Flag entries whose rejected mass clearly exceeds the entry's own
      // adaptive error scale (Eq. (22)); borderline soft-threshold residue
      // is not an alarm.
      const bool flagged =
          std::fabs(out.observed_outliers()[j]) > 3.0 * model.error_scale()[k];
      const bool faulty = injected.Get(k);
      if (flagged && faulty) ++true_positive;
      if (flagged && !faulty) ++false_positive;
      if (!flagged && faulty) ++false_negative;
    }
  }

  const double precision =
      true_positive + false_positive > 0
          ? static_cast<double>(true_positive) /
                static_cast<double>(true_positive + false_positive)
          : 0.0;
  const double recall =
      true_positive + false_negative > 0
          ? static_cast<double>(true_positive) /
                static_cast<double>(true_positive + false_negative)
          : 0.0;

  std::printf("Streaming fault detection on %zu x %zu sensor slices "
              "(faults: %.0f%% at %.0fx max)\n\n",
              lab.slices[0].dim(0), lab.slices[0].dim(1), fault_rate,
              magnitude);
  Table table({"metric", "value"});
  table.AddRow({"flagged & faulty (TP)", std::to_string(true_positive)});
  table.AddRow({"flagged & clean (FP)", std::to_string(false_positive)});
  table.AddRow({"missed faults (FN)", std::to_string(false_negative)});
  table.AddRow({"precision", Table::Num(precision, 3)});
  table.AddRow({"recall", Table::Num(recall, 3)});
  std::printf("%s\n", table.ToString().c_str());
  std::printf("SOFIA detects faults as a side effect of robust streaming "
              "factorization — no labels, thresholds tuned only through "
              "the error-scale tensor (Eq. (22)).\n");
  obs::FinishObs(obs_config);
  return 0;
}
