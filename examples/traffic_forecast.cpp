// Network traffic forecasting: predict next-day router-to-router volumes
// from a corrupted history, and compare SOFIA's Holt-Winters-on-factors
// forecasts against the seasonal matrix factorization baseline (SMF).
//
// SOFIA trains on a stream with missing data AND outliers; SMF gets the
// easier fully observed stream (it cannot handle missing entries) with the
// same outliers. The per-horizon table shows the forecast quality across
// one full future season.
//
// Usage: traffic_forecast [--missing=30] [--seed=3]
//                         [--scenario=clean|bursty-outage|regime-change|
//                                     structured-outliers|garbage-slices|
//                                     combined-stress]
//                         [--guard=off|skip|rollback|reinit]
//                         [--num_threads=0] [--use_sparse_kernels=true]
//                         [--storage=coo|csf] [--simd=on|off]
//                         [--csf-leaf=default|auto] [--csf-churn=0.25]
//                         [--workers=0]
//                         [--trace-out=FILE] [--metrics-out=FILE]
//                         [--stats-every=N] [--obs=on|off]
//
// --scenario replaces SOFIA's i.i.d. training corruption with one of the
// structured failure modes of data/scenarios.hpp (sensor outage bursts,
// a mid-stream seasonal regime change, mode-aligned outlier bursts,
// garbage payloads, or all at once); forecasts are then scored against the
// scenario's own — possibly regime-transformed — truth. --guard wraps
// SOFIA's training in the StreamGuard fault-tolerance layer, which is what
// makes the garbage-slice scenarios survivable at all.
//
// --workers sizes SOFIA's internal sharded executor for the training
// steps (util/shard_executor.hpp — each worker keeps a stable slab range
// of the pattern's fiber trees across the whole prefix); it overrides
// --num_threads for the SOFIA model when nonzero.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "baselines/smf.hpp"
#include "core/sofia_stream.hpp"
#include "eval/step_result.hpp"
#include "eval/stream_guard.hpp"
#include "data/corruption.hpp"
#include "data/dataset_sim.hpp"
#include "data/scenarios.hpp"
#include "eval/experiment.hpp"
#include "eval/metrics.hpp"
#include "obs/cli.hpp"
#include "tensor/csf_tensor.hpp"
#include "tensor/simd.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace sofia;
  Flags flags(argc, argv);
  // Observability: --trace-out= captures a Chrome-trace of the run,
  // --metrics-out= appends registry snapshots as JSON lines (obs/cli.hpp).
  const obs::ObsCliConfig obs_config = obs::SetupObsFromFlags(flags);
  const double missing = flags.GetDouble("missing", 30.0);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 3));
  const std::string scenario_name = flags.GetString("scenario", "clean");
  const std::string guard_name = flags.GetString("guard", "off");

  Dataset traffic = MakeNetworkTraffic(DatasetScale::kSmall);
  traffic.slices.resize(7 * traffic.period);
  const size_t horizon = traffic.period;  // One full future season.
  const size_t train = traffic.slices.size() - horizon;

  // SOFIA's training stream: the element-wise protocol, or a structured
  // failure scenario layered on top of it.
  const ScenarioKind kind = ParseScenario(scenario_name);
  ScenarioOptions scenario_options;
  scenario_options.element = {missing, 20.0, 5.0};
  // Garbage payloads must fall past the init window (3m slices go straight
  // into Initialize, which the guard's per-step validation cannot cover).
  scenario_options.garbage_offset = std::max(
      scenario_options.garbage_offset, 3 * traffic.period + 1);
  CorruptedStream sofia_stream;
  std::vector<DenseTensor> score_truth = traffic.slices;
  {
    ScenarioStream scenario =
        MakeScenario(kind, traffic.slices, scenario_options, seed);
    sofia_stream = std::move(scenario.stream);
    score_truth = std::move(scenario.truth);
    if (!scenario.fault_steps.empty()) {
      std::printf("scenario '%s': %zu garbage slices injected\n",
                  scenario.name.c_str(), scenario.fault_steps.size());
    }
    if (scenario.regime_step != 0) {
      std::printf("scenario '%s': regime change at step %zu\n",
                  scenario.name.c_str(), scenario.regime_step);
    }
  }
  CorruptedStream smf_stream =
      Corrupt(traffic.slices, {0.0, 20.0, 5.0}, seed + 1);

  // Kernel-path knobs, shared by SOFIA and SMF. --storage=csf selects the
  // compressed-sparse-fiber pattern backend for SOFIA's training steps
  // (SMF streams the raw record list, so the knob is a no-op there).
  const size_t num_threads =
      static_cast<size_t>(flags.GetInt("num_threads", 0));
  const bool use_sparse_kernels = flags.GetBool("use_sparse_kernels", true);
  const PatternStorage storage =
      ParsePatternStorage(flags.GetString("storage", "coo"));
  // Kernel-ISA and CSF-maintenance knobs (tensor/simd.hpp,
  // tensor/csf_tensor.hpp): scalar-vs-vector instantiations, per-tree
  // leaf-mode selection, and the BuildDelta patch-vs-rebuild threshold.
  simd::SetEnabled(
      flags.GetString("simd", simd::Enabled() ? "on" : "off") == "on");
  csf::SetAutoLeaf(flags.GetString("csf-leaf", "default") == "auto");
  csf::SetDeltaMaxChurn(flags.GetDouble("csf-churn", csf::DeltaMaxChurn()));

  // Train SOFIA on the corrupted prefix, optionally behind StreamGuard.
  SofiaConfig config = MakeExperimentConfig(traffic, sofia_stream);
  const size_t workers = static_cast<size_t>(flags.GetInt("workers", 0));
  config.num_threads = workers != 0 ? workers : num_threads;
  config.use_sparse_kernels = use_sparse_kernels;
  config.pattern_storage = storage;
  const size_t window = config.InitWindow();
  std::unique_ptr<StreamingMethod> sofia_method =
      std::make_unique<SofiaStream>(config);
  const StreamGuard* guard_view = nullptr;
  if (guard_name != "off") {
    StreamGuardOptions guard_options;
    guard_options.policy = ParseGuardPolicy(guard_name);
    auto guarded = std::make_unique<StreamGuard>(std::move(sofia_method),
                                                 guard_options);
    guard_view = guarded.get();
    sofia_method = std::move(guarded);
  }
  std::vector<DenseTensor> init_slices(sofia_stream.slices.begin(),
                                       sofia_stream.slices.begin() + window);
  std::vector<Mask> init_masks(sofia_stream.masks.begin(),
                               sofia_stream.masks.begin() + window);
  sofia_method->Initialize(init_slices, init_masks);
  for (size_t t = window; t < train; ++t) {
    // Forecast-only pass: Observe() skips even the lazy estimate handle.
    sofia_method->Observe(sofia_stream.slices[t], sofia_stream.masks[t]);
  }
  if (guard_view != nullptr) {
    const GuardTelemetry& telemetry = guard_view->telemetry();
    std::printf("guard: %zu input trips, %zu health trips, %zu recoveries "
                "over %zu training steps\n",
                telemetry.input_trips, telemetry.health_trips,
                telemetry.recoveries, telemetry.steps);
  }

  // Train SMF on its fully observed prefix.
  SmfOptions smf_options;
  smf_options.rank = traffic.rank;
  smf_options.period = traffic.period;
  smf_options.num_threads = num_threads;
  smf_options.use_sparse_kernels = use_sparse_kernels;
  Smf smf(smf_options);
  for (size_t t = 0; t < train; ++t) {
    smf.Observe(smf_stream.slices[t], smf_stream.masks[t]);
  }

  std::printf("Forecasting %zu steps of %s traffic (SOFIA trained on the "
              "'%s' scenario with %.0f%% missing; SMF fully observed + "
              "outliers)\n\n",
              horizon, traffic.slices[0].shape().ToString().c_str(),
              scenario_name.c_str(), missing);
  // Score every horizon at one shared sample of held-out entries, read
  // through lazy forecast handles — the Fig. 6 protocol without a single
  // dense forecast tensor. Truth comes from the scenario (which transforms
  // it under a regime change), so the target is what the stream's future
  // actually looks like.
  Mask sample(traffic.slices[0].shape(), false);
  for (size_t k = 0; k < sample.shape().NumElements(); k += 3) {
    sample.Set(k, true);  // Every third entry.
  }
  CooList held_out = CooList::Build(sample, /*with_mode_buckets=*/false);

  Table table({"h", "SOFIA NRE", "SMF NRE"});
  double sofia_sum = 0.0, smf_sum = 0.0;
  std::vector<double> est, ref;
  for (size_t h = 1; h <= horizon; ++h) {
    const DenseTensor& truth = score_truth[train + h - 1];
    held_out.GatherInto(truth, &ref);
    sofia_method->ForecastLazy(h).GatherAtInto(held_out, &est);
    const double sofia_nre = GatheredNre(AccumulateGatheredError(est, ref));
    smf.ForecastLazy(h).GatherAtInto(held_out, &est);
    const double smf_nre = GatheredNre(AccumulateGatheredError(est, ref));
    sofia_sum += sofia_nre;
    smf_sum += smf_nre;
    table.AddRow({std::to_string(h), Table::Num(sofia_nre),
                  Table::Num(smf_nre)});
  }
  table.AddRow({"AFE", Table::Num(sofia_sum / horizon),
                Table::Num(smf_sum / horizon)});
  std::printf("%s\n", table.ToString().c_str());
  std::printf("SOFIA's outlier rejection keeps the seasonal model clean, so "
              "its forecasts hold up even with %.0f%% of the training data "
              "missing.\n", missing);
  obs::FinishObs(obs_config);
  return 0;
}
