// End-to-end workflow on file-based data: the path a user with a real
// event log follows.
//
//   1. (Stand-in for real data) write a corrupted tensor stream to CSV in
//      the record format `t,i,j,value` — one line per *observed* entry.
//   2. Read it back with the stream loader.
//   3. Detect the seasonal period from the slice-mean series (SOFIA's one
//      required prior) using masked autocorrelation.
//   4. Run SOFIA over the stream and report imputation quality.
//
// Usage: file_stream [--path=/tmp/sofia_demo_stream.csv]
//                    [--num_threads=0] [--use_sparse_kernels=true]
//                    [--storage=coo|csf] [--guard=off|skip|rollback|reinit]
//                    [--simd=on|off] [--csf-leaf=default|auto]
//                    [--csf-churn=0.25]
//                    [--workers=0] [--pipeline-depth=2] [--window=1]
//                    [--state-dir=] [--snapshot-every=16] [--journal=on]
//                    [--kill-at=-1]
//                    [--trace-out=] [--metrics-out=] [--stats-every=0]
//                    [--stats-out=] [--obs=1]
//
// The observability flags (src/obs/cli.hpp) work in every mode:
// --trace-out writes a Chrome trace-event JSON (load it in
// https://ui.perfetto.dev) with the driver, shard workers, and aux lane as
// named tracks; --metrics-out appends the final registry snapshot as one
// JSON line (feed it to tool_obs_report); --stats-every=N emits a
// snapshot line every N steps while streaming.
//
// --guard wraps SOFIA in the StreamGuard fault-tolerance layer — real file
// streams are exactly where NaN records and blackout slices show up (the
// loader itself rejects malformed lines; the guard covers faults injected
// after loading, e.g. by upstream preprocessing).
//
// --state-dir switches on the crash-consistent durability layer
// (eval/durable_guard.hpp) and runs a kill-restart-resume demo instead of
// the pipelined comparison: SOFIA streams with every slice write-ahead
// journaled (--journal=off keeps snapshots only) and a rotated atomic
// snapshot every --snapshot-every steps; at step --kill-at (default:
// mid-stream) the "process" is killed, a fresh guard recovers from
// whatever reached disk, resumes, and the demo verifies the recovered
// estimates are bitwise identical to a run that never crashed.
//
// The run is driven by the sharded streaming runtime
// (eval/stream_pipeline.hpp): --workers sizes the persistent ShardExecutor
// (each worker keeps a stable slab range of every CSF tree),
// --pipeline-depth >= 2 overlaps slice t+1's ingest (pattern build, CSF
// delta, truth gathers) with slice t's solve on the executor's aux lane,
// and --window batches that ingest k slices at a time. Scores are bitwise
// identical for every knob combination.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/sofia_stream.hpp"
#include "eval/durable_guard.hpp"
#include "eval/stream_guard.hpp"
#include "data/corruption.hpp"
#include "data/dataset_sim.hpp"
#include "data/stream_io.hpp"
#include "eval/experiment.hpp"
#include "eval/stream_pipeline.hpp"
#include "eval/stream_runner.hpp"
#include "obs/cli.hpp"
#include "obs/obs.hpp"
#include "tensor/csf_tensor.hpp"
#include "tensor/simd.hpp"
#include "timeseries/period.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace sofia;
  Flags flags(argc, argv);
  const obs::ObsCliConfig obs_config = obs::SetupObsFromFlags(flags);
  const std::string path =
      flags.GetString("path", "/tmp/sofia_demo_stream.csv");

  // 1. Simulate "real" data on disk: a network-traffic-like stream with
  //    30% missing entries and 10% outliers.
  uint64_t phase_start = obs::NowNs();
  Dataset traffic = MakeNetworkTraffic(DatasetScale::kSmall);
  traffic.slices.resize(7 * traffic.period);
  CorruptedStream corrupted = Corrupt(traffic.slices, {30.0, 10.0, 3.0}, 71);
  if (!WriteStreamCsvFile(path, TensorStream{corrupted.slices,
                                             corrupted.masks})) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    obs::FinishObs(obs_config);
    return 1;
  }
  std::printf("wrote %zu observed-entry records to %s\n",
              [&] {
                size_t n = 0;
                for (const Mask& m : corrupted.masks) n += m.CountObserved();
                return n;
              }(),
              path.c_str());
  obs::TraceRecord("demo.write_csv", phase_start, obs::NowNs() - phase_start,
                   0, nullptr);
  phase_start = obs::NowNs();

  // 2. Load it back, as a real consumer would.
  TensorStream loaded = ReadStreamCsvFile(path);
  std::printf("loaded %zu slices of shape %s\n", loaded.slices.size(),
              loaded.slices[0].shape().ToString().c_str());
  obs::TraceRecord("demo.load", phase_start, obs::NowNs() - phase_start, 0,
                   nullptr);
  phase_start = obs::NowNs();

  // 3. Detect the seasonal period from the per-step *median* of observed
  //    entries. The median shrugs off the injected outliers that would
  //    dominate a plain mean, and the masked autocorrelation tolerates the
  //    missing data.
  std::vector<double> medians;
  std::vector<bool> has_data;
  for (size_t t = 0; t < loaded.slices.size(); ++t) {
    std::vector<double> values;
    for (size_t k = 0; k < loaded.slices[t].NumElements(); ++k) {
      if (loaded.masks[t].Get(k)) values.push_back(loaded.slices[t][k]);
    }
    if (values.empty()) {
      medians.push_back(0.0);
      has_data.push_back(false);
      continue;
    }
    auto mid = values.begin() + static_cast<long>(values.size() / 2);
    std::nth_element(values.begin(), mid, values.end());
    medians.push_back(*mid);
    has_data.push_back(true);
  }
  const size_t period = EstimatePeriod(medians, 2, 3 * traffic.period,
                                       &has_data);
  std::printf("detected seasonal period m = %zu (generator used m = %zu)\n",
              period, traffic.period);
  obs::TraceRecord("demo.detect_period", phase_start,
                   obs::NowNs() - phase_start, 0, nullptr);

  // 4. Run SOFIA with the detected period.
  Dataset as_loaded = traffic;  // Ground truth for scoring only.
  SofiaConfig config = MakeExperimentConfig(as_loaded, corrupted);
  config.period = period;
  config.num_threads = static_cast<size_t>(
      flags.GetInt("num_threads", static_cast<int64_t>(config.num_threads)));
  config.use_sparse_kernels =
      flags.GetBool("use_sparse_kernels", config.use_sparse_kernels);
  // --storage=csf routes the per-step pattern through the CSF fiber-tree
  // backend (tensor/csf_tensor.hpp) instead of the flat CooList.
  config.pattern_storage = ParsePatternStorage(
      flags.GetString("storage", PatternStorageName(config.pattern_storage)));
  // Kernel-ISA and CSF-maintenance knobs (tensor/simd.hpp,
  // tensor/csf_tensor.hpp): scalar-vs-vector instantiations, per-tree
  // leaf-mode selection, and the BuildDelta patch-vs-rebuild threshold.
  simd::SetEnabled(
      flags.GetString("simd", simd::Enabled() ? "on" : "off") == "on");
  csf::SetAutoLeaf(flags.GetString("csf-leaf", "default") == "auto");
  csf::SetDeltaMaxChurn(flags.GetDouble("csf-churn", csf::DeltaMaxChurn()));
  // --state-dir: the crash-consistent durability demo (write-ahead journal
  // + rotated atomic snapshots + kill-restart-resume) instead of the
  // pipelined comparison run.
  const std::string state_dir = flags.GetString("state-dir", "");
  if (!state_dir.empty()) {
    const size_t window = config.InitWindow();
    const size_t total = loaded.slices.size();
    const std::vector<DenseTensor> init_slices(
        loaded.slices.begin(), loaded.slices.begin() + window);
    const std::vector<Mask> init_masks(loaded.masks.begin(),
                                       loaded.masks.begin() + window);
    const auto gather_step = [&](StreamingMethod* m, size_t t) {
      StepResult result = m->StepLazy(loaded.slices[t], loaded.masks[t]);
      CooList pattern =
          CooList::Build(loaded.masks[t], /*with_mode_buckets=*/false);
      return result.GatherAt(pattern);
    };

    // Reference: the same stream, no crash, no durability wrapper.
    std::vector<std::vector<double>> reference;
    {
      SofiaStream plain(config);
      plain.Initialize(init_slices, init_masks);
      for (size_t t = window; t < total; ++t) {
        reference.push_back(gather_step(&plain, t));
      }
    }

    DurableGuardOptions durable_options;
    durable_options.state_dir = state_dir;
    durable_options.snapshot_every =
        static_cast<size_t>(flags.GetInt("snapshot-every", 16));
    durable_options.journal = flags.GetBool("journal", true);
    const int64_t kill_flag = flags.GetInt("kill-at", -1);
    const size_t kill_at =  // In post-init steps; default mid-stream.
        kill_flag < 0 ? (total - window) / 2
                      : std::min<size_t>(static_cast<size_t>(kill_flag),
                                         total - window);
    {
      DurableGuard durable(std::make_unique<SofiaStream>(config),
                           durable_options);
      durable.Initialize(init_slices, init_masks);
      for (size_t t = window; t < window + kill_at; ++t) {
        gather_step(&durable, t);
      }
      std::printf("[durable] streamed %zu steps (journal %s, snapshot "
                  "every %zu), then killed the process\n",
                  kill_at, durable_options.journal ? "on" : "off",
                  durable_options.snapshot_every);
    }  // "Power off": only what reached disk survives.

    DurableGuard rebooted(std::make_unique<SofiaStream>(config),
                          durable_options);
    const RecoveryReport report = rebooted.Recover();
    if (!report.restored) {
      std::fprintf(stderr, "[durable] nothing usable in %s\n",
                   state_dir.c_str());
      obs::FinishObs(obs_config);
      return 1;
    }
    std::printf("[durable] recovered: snapshot seq %llu @ step %llu + %zu "
                "journaled slices replayed -> resuming at step %llu\n",
                static_cast<unsigned long long>(report.snapshot_seq),
                static_cast<unsigned long long>(report.snapshot_step),
                report.replayed_records,
                static_cast<unsigned long long>(report.resume_step));
    size_t mismatches = 0;
    for (size_t t = window + report.resume_step; t < total; ++t) {
      if (gather_step(&rebooted, t) != reference[t - window]) ++mismatches;
    }
    std::printf("[durable] resumed %zu steps: %s\n",
                total - window - report.resume_step,
                mismatches == 0
                    ? "bitwise identical to the uninterrupted run"
                    : "DIVERGED — durability contract broken");
    std::remove(path.c_str());
    obs::FinishObs(obs_config);
    return mismatches == 0 ? 0 : 1;
  }

  std::unique_ptr<StreamingMethod> method =
      std::make_unique<SofiaStream>(config);
  const std::string guard_name = flags.GetString("guard", "off");
  if (guard_name != "off") {
    StreamGuardOptions guard_options;
    guard_options.policy = ParseGuardPolicy(guard_name);
    method = std::make_unique<StreamGuard>(std::move(method), guard_options);
  }
  CorruptedStream stream;
  stream.slices = loaded.slices;
  stream.masks = loaded.masks;

  // Drive the run through the sharded, pipelined streaming runtime — the
  // same path RunImputationComparison takes, with the knobs exposed.
  StreamEvalOptions options;
  options.num_threads = config.num_threads;
  options.pattern_storage = config.pattern_storage;
  options.workers = static_cast<size_t>(flags.GetInt("workers", 0));
  options.pipeline_depth =
      static_cast<size_t>(flags.GetInt("pipeline-depth", 2));
  options.window = static_cast<size_t>(flags.GetInt("window", 1));
  std::vector<StreamingMethod*> methods = {method.get()};
  std::vector<MethodRunResult> results =
      RunStreamPipeline(methods, stream, traffic.slices, options);
  const StreamRunResult& res = results[0].run;
  std::printf("imputation RAE over the stream: %.4f (vs ~1.0 for "
              "zero-filling the gaps)\n", res.rae);
  if (res.guarded) {
    std::printf("guard: %zu input trips, %zu health trips, %zu recoveries\n",
                res.guard.input_trips, res.guard.health_trips,
                res.guard.recoveries);
  }
  const PipelineTelemetry& pipe = res.pipeline;
  // Stall time also counts scheduler wakeup latency, so on a saturated
  // machine it can exceed raw ingest time — clamp the report to [0, 1].
  // At depth 1 ingest runs inline with compute, so nothing is hidden.
  const double hidden =
      pipe.pipeline_depth >= 2 && pipe.ingest_seconds > 0.0
          ? std::max(0.0, std::min(1.0, 1.0 - pipe.ingest_stall_seconds /
                                              pipe.ingest_seconds))
          : 0.0;
  std::printf("runtime: %zu workers, depth %zu, window %zu — %zu steps, "
              "%zu ingest jobs, %.0f%% of ingest hidden under compute, "
              "%llu arena growths after warm-up\n",
              pipe.workers, pipe.pipeline_depth, pipe.window, pipe.steps,
              pipe.ingest_jobs, 100.0 * hidden,
              static_cast<unsigned long long>(pipe.arena_growth_steady));
  std::remove(path.c_str());
  obs::FinishObs(obs_config);
  return 0;
}
