// Durability-layer benchmark: what crash consistency costs on the step
// path, and what recovery costs after a kill. Two representative methods
// (OnlineSGD — cheap steps, small state; SOFIA — the real workload) are
// driven over the same corrupted stream four ways:
//
//  - raw:            the bare method (baseline wall time);
//  - durable:        DurableGuard, journal + snapshots written inline on
//                    the ingest thread;
//  - durable_async:  the same writes riding a ShardExecutor's aux lane —
//                    the deployment configuration, where journal encoding
//                    stays on the ingest thread but disk IO overlaps the
//                    next step's compute;
//  - durable_fsync:  inline with sync_each_append=true — the group-commit
//                    lower bound for callers that need every slice durable
//                    the moment StepLazy returns.
//
// It also times Recover() (newest snapshot + full journal-tail replay,
// which re-runs inner steps) and reports journal throughput. The
// speedup_durability map holds the overhead ratios the README quotes.
//
//   bench_durability [--out=BENCH_durability.json] [--rows=64] [--cols=64]
//                    [--steps=128] [--reps=3] [--snapshot-every=16]
//
// The driving CMake target is gated behind SOFIA_BUILD_BENCH like every
// other bench binary.

#include <cstdio>
#include <cstdlib>
#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baselines/online_sgd.hpp"
#include "core/sofia_stream.hpp"
#include "data/corruption.hpp"
#include "data/synthetic.hpp"
#include "eval/durable_guard.hpp"
#include "util/bench_json.hpp"
#include "util/flags.hpp"
#include "util/shard_executor.hpp"
#include "util/stopwatch.hpp"

namespace sofia {
namespace {

constexpr size_t kRank = 4;
constexpr size_t kPeriod = 4;

std::string MakeTempDir() {
  char tmpl[] = "/tmp/sofia_bench_durable_XXXXXX";
  const char* dir = mkdtemp(tmpl);
  return dir == nullptr ? std::string("/tmp") : std::string(dir);
}

void RemoveTree(const std::string& dir) {
  const std::string cmd = "rm -rf '" + dir + "'";
  if (std::system(cmd.c_str()) != 0) {
    std::fprintf(stderr, "cleanup of %s failed\n", dir.c_str());
  }
}

std::unique_ptr<StreamingMethod> MakeMethod(const std::string& name) {
  if (name == "onlinesgd") {
    return std::make_unique<OnlineSgd>(OnlineSgdOptions{.rank = kRank});
  }
  SofiaConfig config;
  config.rank = kRank;
  config.period = kPeriod;
  config.num_threads = 1;
  config.max_init_iterations = 1;
  config.max_als_iterations = 2;
  config.tolerance = 0.5;
  return std::make_unique<SofiaStream>(config);
}

enum class Mode { kRaw, kDurable, kDurableAsync, kDurableFsync };

struct ModeResult {
  double seconds = 0.0;       ///< Best (min) stream wall time.
  double recover_seconds = 0.0;
  DurableTelemetry telemetry;  ///< From the rep that set `seconds`.
};

ModeResult RunMode(const std::string& method_name, Mode mode,
                   const CorruptedStream& stream, size_t snapshot_every,
                   size_t reps) {
  ModeResult best;
  for (size_t rep = 0; rep < reps; ++rep) {
    const std::string dir = MakeTempDir();
    std::unique_ptr<StreamingMethod> method = MakeMethod(method_name);
    std::unique_ptr<DurableGuard> durable;
    std::shared_ptr<ShardExecutor> executor;
    StreamingMethod* driven = method.get();
    if (mode != Mode::kRaw) {
      DurableGuardOptions options;
      options.state_dir = dir;
      options.snapshot_every = snapshot_every;
      options.sync_each_append = mode == Mode::kDurableFsync;
      durable = std::make_unique<DurableGuard>(std::move(method), options);
      if (mode == Mode::kDurableAsync) {
        executor = std::make_shared<ShardExecutor>(2);
        durable->AdoptWorkerPool(executor);
      }
      driven = durable.get();
    }

    const size_t window = driven->init_window();
    if (window > 0) {
      driven->Initialize(
          std::vector<DenseTensor>(stream.slices.begin(),
                                   stream.slices.begin() + window),
          std::vector<Mask>(stream.masks.begin(),
                            stream.masks.begin() + window));
    }
    Stopwatch timer;
    for (size_t t = window; t < stream.slices.size(); ++t) {
      driven->Observe(stream.slices[t], stream.masks[t]);
    }
    if (durable) durable->Drain();
    const double seconds = timer.ElapsedSeconds();

    double recover_seconds = 0.0;
    if (durable) {
      DurableGuard rebooted(MakeMethod(method_name),
                            durable->options());
      Stopwatch recover_timer;
      rebooted.Recover();
      recover_seconds = recover_timer.ElapsedSeconds();
    }
    if (rep == 0 || seconds < best.seconds) {
      best.seconds = seconds;
      best.recover_seconds = recover_seconds;
      if (durable) best.telemetry = durable->telemetry();
    }
    durable.reset();  // Close the journal before deleting the tree.
    RemoveTree(dir);
  }
  return best;
}

}  // namespace
}  // namespace sofia

int main(int argc, char** argv) {
  using namespace sofia;
  Flags flags(argc, argv);
  const std::string out_path =
      flags.GetString("out", "BENCH_durability.json");
  const size_t rows = static_cast<size_t>(flags.GetInt("rows", 64));
  const size_t cols = static_cast<size_t>(flags.GetInt("cols", 64));
  const size_t steps = static_cast<size_t>(flags.GetInt("steps", 128));
  const size_t reps = static_cast<size_t>(flags.GetInt("reps", 3));
  const size_t snapshot_every =
      static_cast<size_t>(flags.GetInt("snapshot-every", 16));

  std::vector<DenseTensor> truth;
  {
    SyntheticTensor syn =
        MakeSinusoidTensor(rows, cols, steps, kRank, kPeriod, /*seed=*/401);
    for (size_t t = 0; t < steps; ++t) {
      truth.push_back(syn.tensor.SliceLastMode(t));
    }
  }
  CorruptedStream stream = Corrupt(truth, {20.0, 5.0, 2.0}, 402);

  std::map<std::string, double> results;
  std::map<std::string, double> overhead;

  for (const std::string method : {"onlinesgd", "sofia"}) {
    const ModeResult raw =
        RunMode(method, Mode::kRaw, stream, snapshot_every, reps);
    const ModeResult durable =
        RunMode(method, Mode::kDurable, stream, snapshot_every, reps);
    const ModeResult async =
        RunMode(method, Mode::kDurableAsync, stream, snapshot_every, reps);
    const ModeResult fsync =
        RunMode(method, Mode::kDurableFsync, stream, snapshot_every, reps);

    results[method + "/raw_s"] = raw.seconds;
    results[method + "/durable_s"] = durable.seconds;
    results[method + "/durable_async_s"] = async.seconds;
    results[method + "/durable_fsync_s"] = fsync.seconds;
    results[method + "/recover_s"] = durable.recover_seconds;
    results[method + "/journal_mb"] =
        static_cast<double>(durable.telemetry.journal_bytes) / (1 << 20);
    results[method + "/snapshots"] =
        static_cast<double>(durable.telemetry.snapshots_written);
    overhead["durable_overhead_" + method] =
        raw.seconds > 0.0 ? durable.seconds / raw.seconds : 0.0;
    overhead["durable_async_overhead_" + method] =
        raw.seconds > 0.0 ? async.seconds / raw.seconds : 0.0;
    overhead["durable_fsync_overhead_" + method] =
        raw.seconds > 0.0 ? fsync.seconds / raw.seconds : 0.0;
    overhead["journal_mb_per_s_" + method] =
        durable.seconds > 0.0
            ? static_cast<double>(durable.telemetry.journal_bytes) /
                  (1 << 20) / durable.seconds
            : 0.0;

    std::printf("%-10s raw %6.3f s | durable %6.3f s (inline) %6.3f s "
                "(async) %6.3f s (fsync) | recover %6.3f s | %zu snapshots, "
                "%.2f MiB journaled\n",
                method.c_str(), raw.seconds, durable.seconds, async.seconds,
                fsync.seconds, durable.recover_seconds,
                static_cast<size_t>(durable.telemetry.snapshots_written),
                static_cast<double>(durable.telemetry.journal_bytes) /
                    (1 << 20));
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f,
               "  \"description\": \"Durability-layer overhead: OnlineSGD "
               "and SOFIA over a %zu-step stream of %zux%zu slices (rank "
               "%zu, 20%% missing + 5%% outliers), raw vs DurableGuard "
               "with the write-ahead slice journal and a rotated atomic "
               "snapshot every %zu steps — journal+snapshot IO inline on "
               "the ingest thread, riding a ShardExecutor aux lane "
               "(deployment config), and inline with per-append fsync "
               "(group-commit lower bound). recover_s times Recover(): "
               "newest-valid-snapshot restore plus full journal-tail "
               "replay through real inner steps. Wall times are best of "
               "%zu (bench_durability --out=BENCH_durability.json).\",\n",
               steps, rows, cols, kRank, snapshot_every, reps);
  bench::WriteMachineBlock(f);
  std::fprintf(f, "  \"unit\": \"s\",\n");
  std::fprintf(f, "  \"results\": {\n");
  size_t i = 0;
  for (const auto& [key, value] : results) {
    const double safe = std::isfinite(value) ? value : -1.0;
    std::fprintf(f, "    \"%s\": %.4f%s\n", key.c_str(), safe,
                 ++i < results.size() ? "," : "");
  }
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"speedup_durability\": {\n");
  i = 0;
  for (const auto& [key, value] : overhead) {
    const double safe = std::isfinite(value) ? value : -1.0;
    std::fprintf(f, "    \"%s\": %.3f%s\n", key.c_str(), safe,
                 ++i < overhead.size() ? "," : "");
  }
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
