// Hyperparameter sensitivity sweeps (Section VI-A notes the paper adjusted
// the rank over {4..20} by grid search and fixed λ1 = λ2 = 1e-3, λ3 = 10,
// µ = 0.1, φ = 0.01 for its data). This bench maps the sensitivity of the
// imputation RAE to each knob on a mid-corruption taxi-like stream, so a
// user can see which choices matter:
//   - rank R (under- and over-parameterization),
//   - smoothness λ1 = λ2 (too weak -> degeneracy, too strong -> bias),
//   - λ3 relative to the data scale (outlier threshold),
//   - step size µ (with the stability cap active, large µ is safe).
//
// Usage: sensitivity [--seed=31]

#include <cstdio>
#include <vector>

#include "core/sofia_stream.hpp"
#include "data/corruption.hpp"
#include "data/dataset_sim.hpp"
#include "eval/experiment.hpp"
#include "eval/stream_runner.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace sofia {
namespace {

double RunWith(const SofiaConfig& config, const CorruptedStream& stream,
               const std::vector<DenseTensor>& truth) {
  SofiaStream method(config);
  return RunImputation(&method, stream, truth).rae;
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 31));

  Dataset taxi = MakeChicagoTaxi(DatasetScale::kSmall);
  taxi.slices.resize(6 * taxi.period);
  CorruptedStream stream = Corrupt(taxi.slices, {40.0, 15.0, 4.0}, seed);
  const SofiaConfig base = MakeExperimentConfig(taxi, stream);

  std::printf("Sensitivity sweeps — ChicagoTaxi (40,15,4), base config from "
              "eval/experiment.hpp (R=%zu, λ1=λ2=%.2g, λ3=%.3g, µ=%.2g)\n\n",
              base.rank, base.lambda1, base.lambda3, base.mu);

  {
    Table t({"rank R", "RAE"});
    for (size_t rank : {4, 6, 8, 10, 14, 20}) {
      SofiaConfig c = base;
      c.rank = rank;
      t.AddRow({std::to_string(rank), Table::Num(RunWith(c, stream,
                                                         taxi.slices))});
    }
    std::printf("rank (true generative rank is 10):\n%s\n",
                t.ToString().c_str());
  }
  {
    Table t({"lambda1=lambda2", "RAE"});
    for (double lam : {1e-3, 1e-2, 1e-1, 0.5, 2.0, 10.0}) {
      SofiaConfig c = base;
      c.lambda1 = lam;
      c.lambda2 = lam;
      t.AddRow({Table::Num(lam), Table::Num(RunWith(c, stream,
                                                    taxi.slices))});
    }
    std::printf("smoothness weight:\n%s\n", t.ToString().c_str());
  }
  {
    Table t({"lambda3 / base", "RAE"});
    for (double mult : {0.1, 0.3, 1.0, 3.0, 10.0}) {
      SofiaConfig c = base;
      c.lambda3 = base.lambda3 * mult;
      t.AddRow({Table::Num(mult), Table::Num(RunWith(c, stream,
                                                     taxi.slices))});
    }
    std::printf("outlier threshold (relative to the data-scaled default):\n%s\n",
                t.ToString().c_str());
  }
  {
    Table t({"mu", "RAE"});
    for (double mu : {0.01, 0.05, 0.1, 0.3, 0.9}) {
      SofiaConfig c = base;
      c.mu = mu;
      t.AddRow({Table::Num(mu), Table::Num(RunWith(c, stream,
                                                   taxi.slices))});
    }
    std::printf("dynamic step size (stability cap active):\n%s\n",
                t.ToString().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace sofia

int main(int argc, char** argv) { return sofia::Main(argc, argv); }
