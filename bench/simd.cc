// Raw-speed kernel pass: the three levers of the kernel layer, measured
// against their own fallbacks on one machine.
//
//  1. simd — every hot Coo/Csf kernel timed with the AVX2+FMA trampoline
//     enabled vs forced scalar (simd::SetEnabled), at a narrow and a wide
//     rank. The speedup_simd_over_scalar entries are the acceptance
//     numbers; on hardware without AVX2+FMA every pair degenerates to 1x
//     and the JSON says so.
//  2. csf_delta — fiber-tree maintenance across a bursty-outage mask
//     sequence (a few root slices drop out, then recover — a few percent
//     churn per change): CsfTensor::BuildDelta patching the previous trees
//     vs recompiling from scratch on every change. CooList construction is
//     excluded from both sides (the two paths share it); the timed region
//     is exactly the tree maintenance the stream runner's pattern cache
//     pays per mask change.
//  3. auto_leaf — CsfMttkrp over all modes with per-tree leaf-mode
//     selection (csf::SetAutoLeaf) vs the default descending-mode trees on
//     a sensors x zones x time-of-day shape whose shortest fibers lie, for
//     the default order, in the *wrong* mode.
//
// Emits its summary JSON directly (same schema as BENCH_csf.json):
//
//   bench_simd [--out=BENCH_simd.json] [--d0=96] [--d1=32] [--d2=32]
//              [--density=5] [--changes=24] [--reps=5]

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "linalg/matrix.hpp"
#include "tensor/coo_list.hpp"
#include "tensor/csf_kernels.hpp"
#include "tensor/csf_tensor.hpp"
#include "tensor/mask.hpp"
#include "tensor/simd.hpp"
#include "tensor/sparse_kernels.hpp"
#include "util/bench_json.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace sofia {
namespace {

Mask BernoulliMask(const Shape& shape, double density, Rng& rng) {
  Mask omega(shape, false);
  for (size_t k = 0; k < shape.NumElements(); ++k) {
    omega.Set(k, rng.Bernoulli(density));
  }
  return omega;
}

std::vector<Matrix> RandomFactors(const Shape& shape, size_t rank, Rng& rng) {
  std::vector<Matrix> factors;
  for (size_t n = 0; n < shape.order(); ++n) {
    factors.push_back(Matrix::Random(shape.dim(n), rank, rng, -1.0, 1.0));
  }
  return factors;
}

/// Best (minimum) wall seconds of `fn` over `reps` runs.
double Best(size_t reps, const std::function<void()>& fn) {
  double best = 0.0;
  for (size_t rep = 0; rep < reps; ++rep) {
    Stopwatch timer;
    fn();
    const double s = timer.ElapsedSeconds();
    if (rep == 0 || s < best) best = s;
  }
  return best;
}

/// Times `fn` once with the simd knob off and once with it on, recording
/// both and the scalar/simd ratio under `name`.
void SimdPair(const std::string& name, size_t reps,
              std::map<std::string, double>* results,
              std::map<std::string, double>* speedups,
              const std::function<void()>& fn) {
  simd::SetEnabled(false);
  const double scalar_s = Best(reps, fn);
  simd::SetEnabled(true);
  const double simd_s = Best(reps, fn);
  simd::SetEnabled(false);
  (*results)[name + "_scalar_s"] = scalar_s;
  (*results)[name + "_simd_s"] = simd_s;
  (*speedups)[name] = simd_s > 0.0 ? scalar_s / simd_s : 0.0;
}

}  // namespace
}  // namespace sofia

int main(int argc, char** argv) {
  using namespace sofia;
  Flags flags(argc, argv);
  const std::string out_path = flags.GetString("out", "BENCH_simd.json");
  const size_t d0 = static_cast<size_t>(flags.GetInt("d0", 96));
  const size_t d1 = static_cast<size_t>(flags.GetInt("d1", 32));
  const size_t d2 = static_cast<size_t>(flags.GetInt("d2", 32));
  const int density = flags.GetInt("density", 5);
  const size_t changes = static_cast<size_t>(flags.GetInt("changes", 24));
  const size_t reps = static_cast<size_t>(flags.GetInt("reps", 5));

  const Shape shape({d0, d1, d2});
  std::map<std::string, double> results;
  std::map<std::string, double> speedups;

  if (!simd::Available()) {
    std::printf("note: no AVX2+FMA on this host — simd pairs will be ~1x\n");
  }

  // ------------------------------------------------------------- 1. simd
  for (size_t rank : {size_t{4}, size_t{16}}) {
    Rng rng(301 + rank);
    Mask omega = BernoulliMask(shape, density / 100.0, rng);
    CooList coo = CooList::Build(omega);
    CsfTensor csf = CsfTensor::Build(coo);
    std::vector<Matrix> factors = RandomFactors(shape, rank, rng);
    std::vector<double> values(coo.nnz());
    for (double& v : values) v = rng.Uniform(-2.0, 2.0);
    std::vector<double> w(rank, 0.7);
    const std::string r = "/r" + std::to_string(rank);

    SimdPair("mttkrp_coo" + r, reps, &results, &speedups, [&] {
      for (size_t mode = 0; mode < shape.order(); ++mode) {
        CooMttkrp(coo, values, factors, mode);
      }
    });
    SimdPair("mttkrp_csf" + r, reps, &results, &speedups, [&] {
      for (size_t mode = 0; mode < shape.order(); ++mode) {
        CsfMttkrp(csf, values, factors, mode);
      }
    });
    SimdPair("step_gradients_coo" + r, reps, &results, &speedups,
             [&] { CooStepGradients(coo, values, factors, w); });
    SimdPair("step_gradients_csf" + r, reps, &results, &speedups,
             [&] { CsfStepGradients(csf, values, factors, w); });
    SimdPair("row_systems_coo" + r, reps, &results, &speedups, [&] {
      for (size_t mode = 0; mode < shape.order(); ++mode) {
        CooRowSystems(coo, values, factors, mode);
      }
    });
    SimdPair("kruskal_gather_coo" + r, reps, &results, &speedups,
             [&] { CooKruskalGather(coo, factors, w); });
    SimdPair("kruskal_gather_csf" + r, reps, &results, &speedups,
             [&] { CsfKruskalGather(csf, factors, w); });

    std::printf(
        "simd r=%-2zu: mttkrp coo %.2fx csf %.2fx | step-grad coo %.2fx "
        "csf %.2fx | row-sys %.2fx | gather coo %.2fx csf %.2fx\n",
        rank, speedups["mttkrp_coo" + r], speedups["mttkrp_csf" + r],
        speedups["step_gradients_coo" + r],
        speedups["step_gradients_csf" + r], speedups["row_systems_coo" + r],
        speedups["kruskal_gather_coo" + r],
        speedups["kruskal_gather_csf" + r]);
  }

  // -------------------------------------------------------- 2. csf_delta
  {
    // Regional outage: every change drops the records inside one localized
    // sub-box of the grid (one building's sensors across a few zones and
    // hours going dark), the next change restores them. The removed
    // records cluster in *every* coordinate, so each of the three trees
    // recompiles only the few root subtrees the box touches — the regime
    // BuildDelta's span-copy fast path targets. (A whole-slice outage
    // would dirty nearly every root of the *other* modes' trees and patch
    // at rebuild cost.)
    Rng rng(401);
    Mask base = BernoulliMask(shape, density / 100.0, rng);
    const size_t s0 = std::max<size_t>(1, d0 / 8);
    const size_t s1 = std::max<size_t>(1, d1 / 8);
    const size_t s2 = std::max<size_t>(1, d2 / 8);
    std::vector<std::shared_ptr<const CooList>> patterns;
    patterns.push_back(
        std::make_shared<const CooList>(CooList::Build(base)));
    for (size_t t = 1; t <= changes; ++t) {
      if (t % 2 == 1) {
        Mask outage = base;
        const size_t a0 = (7 * t) % (d0 - s0 + 1);
        const size_t a1 = (11 * t) % (d1 - s1 + 1);
        const size_t a2 = (13 * t) % (d2 - s2 + 1);
        for (size_t i0 = a0; i0 < a0 + s0; ++i0) {
          for (size_t i1 = a1; i1 < a1 + s1; ++i1) {
            for (size_t i2 = a2; i2 < a2 + s2; ++i2) {
              outage.Set(shape.Linearize({i0, i1, i2}), false);
            }
          }
        }
        patterns.push_back(
            std::make_shared<const CooList>(CooList::Build(outage)));
      } else {
        patterns.push_back(patterns.front());  // The region recovers.
      }
    }

    const double full_s = Best(reps, [&] {
      for (size_t t = 1; t < patterns.size(); ++t) {
        CsfTensor fresh = CsfTensor::Build(*patterns[t]);
        if (fresh.order() == 0) std::abort();
      }
    });
    const double delta_s = Best(reps, [&] {
      CsfTensor current = CsfTensor::Build(*patterns[0]);
      for (size_t t = 1; t < patterns.size(); ++t) {
        CsfTensor next;
        if (!CsfTensor::BuildDelta(current, *patterns[t - 1], *patterns[t],
                                   csf::DeltaMaxChurn(), &next)) {
          next = CsfTensor::Build(*patterns[t]);
        }
        current = std::move(next);
      }
    });
    results["csf_delta_full_rebuild_s"] = full_s;
    results["csf_delta_patch_s"] = delta_s;
    speedups["csf_delta_bursty_outage"] =
        delta_s > 0.0 ? full_s / delta_s : 0.0;
    std::printf("csf-delta: %zu changes, rebuild %0.4fs -> patch %0.4fs "
                "(%.2fx)\n",
                changes, full_s, delta_s,
                speedups["csf_delta_bursty_outage"]);
  }

  // --------------------------------------------------------- 3. auto_leaf
  {
    // Sensors x zones x time-of-day: almost all the index mass lives in
    // the long last mode, so the default descending-mode order makes it
    // the first non-root level of every other tree and leaves one-record
    // leaf fibers (no prefix reuse); auto-leaf pushes it down to the leaf.
    // Measured with the simd knob in its shipping position — the tree
    // shape, not the ISA, is the variable under test.
    const Shape leaf_shape({6, 6, 4096});
    simd::SetEnabled(simd::Available());
    Rng rng(501);
    Mask omega = BernoulliMask(leaf_shape, 0.15, rng);
    CooList coo = CooList::Build(omega);
    CsfTensor default_t = CsfTensor::Build(coo, /*auto_leaf=*/false);
    CsfTensor auto_t = CsfTensor::Build(coo, /*auto_leaf=*/true);
    const size_t rank = 8;
    std::vector<Matrix> factors = RandomFactors(leaf_shape, rank, rng);
    std::vector<double> values(coo.nnz());
    for (double& v : values) v = rng.Uniform(-2.0, 2.0);

    const double def_s = Best(reps, [&] {
      for (size_t mode = 0; mode < leaf_shape.order(); ++mode) {
        CsfMttkrp(default_t, values, factors, mode);
      }
    });
    const double auto_s = Best(reps, [&] {
      for (size_t mode = 0; mode < leaf_shape.order(); ++mode) {
        CsfMttkrp(auto_t, values, factors, mode);
      }
    });
    results["autoleaf_mttkrp_default_s"] = def_s;
    results["autoleaf_mttkrp_auto_s"] = auto_s;
    speedups["autoleaf_mttkrp"] = auto_s > 0.0 ? def_s / auto_s : 0.0;
    std::printf("auto-leaf: mttkrp %0.4fs default -> %0.4fs auto (%.2fx)\n",
                def_s, auto_s, speedups["autoleaf_mttkrp"]);
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(
      f,
      "  \"description\": \"Raw-speed kernel levers on %zux%zux%zu, %d%% "
      "observed. simd pairs time each hot kernel with the AVX2+FMA "
      "trampoline on vs forced scalar (simd::SetEnabled) at ranks 4 and "
      "16 (simd ISA here: %s). csf_delta_* times fiber-tree maintenance "
      "over %zu regional-outage mask changes (one sub-box spanning 1/8 of "
      "each dimension goes dark, then recovers — the removed records "
      "cluster in every coordinate, so each tree recompiles only the few "
      "root subtrees the box touches): CsfTensor::BuildDelta patching vs "
      "a fresh Build per change, CooList construction excluded from both. "
      "autoleaf_* times CsfMttkrp over all modes with per-tree leaf-mode "
      "selection vs the default descending-mode trees on 6x6x4096 at "
      "15%% density, rank 8, simd in its shipping position. Best (min) "
      "wall time over %zu repetitions, single thread (bench_simd "
      "--out=BENCH_simd.json).\",\n",
      d0, d1, d2, density, simd::Available() ? "avx2+fma" : "scalar-only",
      changes, reps);
  bench::WriteMachineBlock(f);
  std::fprintf(f, "  \"unit\": \"s\",\n");
  std::fprintf(f, "  \"results\": {\n");
  size_t i = 0;
  for (const auto& [key, value] : results) {
    std::fprintf(f, "    \"%s\": %.5f%s\n", key.c_str(), value,
                 ++i < results.size() ? "," : "");
  }
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"speedup\": {\n");
  i = 0;
  for (const auto& [key, value] : speedups) {
    std::fprintf(f, "    \"%s\": %.2f%s\n", key.c_str(), value,
                 ++i < speedups.size() ? "," : "");
  }
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
