// Reproduces Fig. 6: average forecasting error (AFE). SOFIA consumes
// streams with X% missing entries for X in {0, 30, 50, 70} plus 20%
// outliers of magnitude 5*max|X|; SMF and CPHW are evaluated on fully
// observed streams with the same outliers (they cannot handle missing
// values). Each method consumes T - tf subtensors and forecasts tf.
//
// Usage: fig6_forecasting [--scale=small|paper] [--seasons=7] [--seed=17]

#include <cstdio>
#include <string>
#include <vector>

#include "baselines/cphw.hpp"
#include "baselines/smf.hpp"
#include "core/sofia_stream.hpp"
#include "data/corruption.hpp"
#include "data/dataset_sim.hpp"
#include "eval/experiment.hpp"
#include "eval/stream_runner.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace sofia {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const DatasetScale scale = flags.GetString("scale", "small") == "paper"
                                 ? DatasetScale::kPaper
                                 : DatasetScale::kSmall;
  const size_t seasons = static_cast<size_t>(flags.GetInt("seasons", 7));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 17));

  std::printf("Fig. 6 — average forecasting error (AFE)\n");
  std::printf("SOFIA at (X,20,5) for X in {0,30,50,70}; SMF/CPHW at "
              "(0,20,5).\n\n");

  for (Dataset& dataset : MakeAllDatasets(scale)) {
    if (scale == DatasetScale::kSmall) {
      dataset.slices.resize(
          std::min(dataset.slices.size(), seasons * dataset.period));
    }
    // Forecast horizon: paper uses 200 (100 for NYC); scaled runs use the
    // dataset's scaled-down preset capped to leave enough training data.
    const size_t horizon =
        std::min(dataset.forecast_steps,
                 dataset.slices.size() - 4 * dataset.period);

    Table table({"method (X,Y,Z)", "AFE"});
    for (double missing : {0.0, 30.0, 50.0, 70.0}) {
      CorruptedStream stream =
          Corrupt(dataset.slices, {missing, 20.0, 5.0}, seed);
      SofiaStream method(MakeExperimentConfig(dataset, stream));
      const double afe = RunForecast(&method, stream, dataset.slices, horizon);
      char label[64];
      std::snprintf(label, sizeof(label), "SOFIA (%g,20,5)", missing);
      table.AddRow({label, Table::Num(afe)});
    }
    {
      CorruptedStream stream = Corrupt(dataset.slices, {0.0, 20.0, 5.0}, seed);
      Smf smf(SmfOptions{.rank = dataset.rank, .period = dataset.period});
      table.AddRow({"SMF (0,20,5)",
                    Table::Num(RunForecast(&smf, stream, dataset.slices,
                                           horizon))});
      Cphw cphw(CphwOptions{.rank = dataset.rank, .period = dataset.period});
      table.AddRow({"CPHW (0,20,5)",
                    Table::Num(RunForecast(&cphw, stream, dataset.slices,
                                           horizon))});
    }
    std::printf("=== %s (tf=%zu) ===\n%s\n", dataset.name.c_str(), horizon,
                table.ToString().c_str());
  }
  std::printf("Paper's shape: SOFIA is the most accurate forecaster on every "
              "stream despite also facing missing data; SMF and CPHW are "
              "dragged by the outliers they cannot reject.\n");
  return 0;
}

}  // namespace
}  // namespace sofia

int main(int argc, char** argv) { return sofia::Main(argc, argv); }
