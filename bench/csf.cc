// Steady-state step cost of the CSF storage subsystem vs the CooList
// backend on a 96-step stream of order-3 slices with a fixed low-density
// mask (the fixed-sensor-outage case every mask-reuse cache targets).
//
// Two per-step pipelines are timed over the whole stream, matching what the
// streaming methods actually execute per step on each backend:
//  - coo (pre-PR-5 semantics): dense-Mask reuse compare — an O(volume)
//    byte scan per steady-state step — then CooMttkrp over every mode
//    (plus the one CooList build on the first step);
//  - csf: SparseMask reuse compare (O(|Ω|)) then CsfMttkrp over every
//    mode (plus the CooList + fiber-tree builds on the first step).
// Both gather the slice values through the same CooList, so the measured
// difference is exactly pattern bind + MTTKRP — the acceptance number.
// Micro timings for the individual kernels (MTTKRP, step gradients,
// Kruskal gather, the builds themselves) are reported alongside.
//
// Emits its summary JSON directly (same schema as BENCH_pipeline.json):
//
// The slice shape defaults to a long stride-1 mode (96x32x32): the CSF
// leaf levels are the lowest-index non-root modes, so a long first mode is
// where fiber reuse lives (a sensors x zones x channels layout).
//
//   bench_csf [--out=BENCH_csf.json] [--d0=96] [--d1=32] [--d2=32]
//             [--steps=96] [--reps=5] [--rank=4]

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "linalg/matrix.hpp"
#include "tensor/coo_list.hpp"
#include "tensor/csf_kernels.hpp"
#include "tensor/csf_tensor.hpp"
#include "tensor/mask.hpp"
#include "tensor/sparse_kernels.hpp"
#include "tensor/sparse_mask.hpp"
#include "util/bench_json.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace sofia {
namespace {

Mask BernoulliMask(const Shape& shape, double density, Rng& rng) {
  Mask omega(shape, false);
  for (size_t k = 0; k < shape.NumElements(); ++k) {
    omega.Set(k, rng.Bernoulli(density));
  }
  return omega;
}

std::vector<Matrix> RandomFactors(const Shape& shape, size_t rank, Rng& rng) {
  std::vector<Matrix> factors;
  for (size_t n = 0; n < shape.order(); ++n) {
    factors.push_back(Matrix::Random(shape.dim(n), rank, rng, -1.0, 1.0));
  }
  return factors;
}

/// Best (minimum) wall seconds of `fn` over `reps` runs.
double Best(size_t reps, const std::function<void()>& fn) {
  double best = 0.0;
  for (size_t rep = 0; rep < reps; ++rep) {
    Stopwatch timer;
    fn();
    const double s = timer.ElapsedSeconds();
    if (rep == 0 || s < best) best = s;
  }
  return best;
}

}  // namespace
}  // namespace sofia

int main(int argc, char** argv) {
  using namespace sofia;
  Flags flags(argc, argv);
  const std::string out_path = flags.GetString("out", "BENCH_csf.json");
  const size_t d0 = static_cast<size_t>(flags.GetInt("d0", 96));
  const size_t d1 = static_cast<size_t>(flags.GetInt("d1", 32));
  const size_t d2 = static_cast<size_t>(flags.GetInt("d2", 32));
  const size_t steps = static_cast<size_t>(flags.GetInt("steps", 96));
  const size_t reps = static_cast<size_t>(flags.GetInt("reps", 5));
  const size_t rank = static_cast<size_t>(flags.GetInt("rank", 4));

  const Shape shape({d0, d1, d2});
  std::map<std::string, double> results;
  std::map<std::string, double> speedups;

  const std::vector<int> densities = {1, 5};
  for (int density : densities) {
    Rng rng(101 + density);
    Mask omega = BernoulliMask(shape, density / 100.0, rng);
    omega.CountObserved();  // Prime count + hash like a loaded stream does.
    omega.ContentHash();
    // Per-step mask objects (copies, as a CorruptedStream holds them).
    std::vector<Mask> masks(steps, omega);
    std::vector<Matrix> factors = RandomFactors(shape, rank, rng);
    DenseTensor y(shape, 0.0);
    for (size_t k = 0; k < y.NumElements(); ++k) y[k] = rng.Uniform(-1, 1);

    const std::string arg = std::to_string(density);
    std::vector<double> values;

    // --- Steady-state pipeline, coo backend with the dense-mask cache the
    // SparseMask layer replaced: deep compare per step + CooMttkrp.
    const double coo_s = Best(reps, [&] {
      std::shared_ptr<const CooList> coo;
      Mask cached;
      bool valid = false;
      for (size_t t = 0; t < steps; ++t) {
        if (!valid || !(cached == masks[t])) {
          coo = std::make_shared<const CooList>(CooList::Build(masks[t]));
          cached = masks[t];
          valid = true;
        }
        coo->GatherInto(y, &values);
        for (size_t mode = 0; mode < shape.order(); ++mode) {
          Matrix m = CooMttkrp(*coo, values, factors, mode);
          if (m.rows() == 0) std::abort();
        }
      }
    });

    // --- Steady-state pipeline, csf backend: SparseMask compare per step
    // + CsfMttkrp (first step additionally compiles the fiber trees).
    const double csf_s = Best(reps, [&] {
      std::shared_ptr<const CooList> coo;
      std::shared_ptr<const CsfTensor> csf;
      SparseMask cached;
      for (size_t t = 0; t < steps; ++t) {
        if (!cached.valid() || !cached.Matches(masks[t])) {
          coo = std::make_shared<const CooList>(CooList::Build(masks[t]));
          csf = std::make_shared<const CsfTensor>(CsfTensor::Build(*coo));
          cached = SparseMask::FromCoo(*coo);
        }
        coo->GatherInto(y, &values);
        for (size_t mode = 0; mode < shape.order(); ++mode) {
          Matrix m = CsfMttkrp(*csf, values, factors, mode);
          if (m.rows() == 0) std::abort();
        }
      }
    });

    results["pattern_step_coo/" + arg + "_s"] = coo_s;
    results["pattern_step_csf/" + arg + "_s"] = csf_s;
    speedups["pattern_step_density_" + arg + "pct"] =
        csf_s > 0.0 ? coo_s / csf_s : 0.0;

    // --- Micro kernels on one bound pattern.
    CooList coo = CooList::Build(omega);
    CsfTensor csf = CsfTensor::Build(coo);
    coo.GatherInto(y, &values);
    std::vector<double> w(rank, 0.7);

    const double build_coo_s =
        Best(reps, [&] { CooList::Build(omega); });
    const double build_csf_s = Best(reps, [&] {
      CooList fresh = CooList::Build(omega);
      CsfTensor::Build(fresh);
    });
    results["build_coo/" + arg + "_s"] = build_coo_s;
    results["build_csf/" + arg + "_s"] = build_csf_s;

    const double mttkrp_coo_s = Best(reps, [&] {
      for (size_t mode = 0; mode < shape.order(); ++mode) {
        CooMttkrp(coo, values, factors, mode);
      }
    });
    const double mttkrp_csf_s = Best(reps, [&] {
      for (size_t mode = 0; mode < shape.order(); ++mode) {
        CsfMttkrp(csf, values, factors, mode);
      }
    });
    results["mttkrp_coo/" + arg + "_s"] = mttkrp_coo_s;
    results["mttkrp_csf/" + arg + "_s"] = mttkrp_csf_s;
    speedups["mttkrp_density_" + arg + "pct"] =
        mttkrp_csf_s > 0.0 ? mttkrp_coo_s / mttkrp_csf_s : 0.0;

    const double grad_coo_s = Best(reps, [&] {
      CooStepGradients(coo, values, factors, w);
    });
    const double grad_csf_s = Best(reps, [&] {
      CsfStepGradients(csf, values, factors, w);
    });
    results["step_gradients_coo/" + arg + "_s"] = grad_coo_s;
    results["step_gradients_csf/" + arg + "_s"] = grad_csf_s;
    speedups["step_gradients_density_" + arg + "pct"] =
        grad_csf_s > 0.0 ? grad_coo_s / grad_csf_s : 0.0;

    const double gather_coo_s = Best(reps, [&] {
      CooKruskalGather(coo, factors, w);
    });
    const double gather_csf_s = Best(reps, [&] {
      CsfKruskalGather(csf, factors, w);
    });
    results["kruskal_gather_coo/" + arg + "_s"] = gather_coo_s;
    results["kruskal_gather_csf/" + arg + "_s"] = gather_csf_s;
    speedups["kruskal_gather_density_" + arg + "pct"] =
        gather_csf_s > 0.0 ? gather_coo_s / gather_csf_s : 0.0;

    std::printf(
        "density %2d%%: pattern-step %0.4fs coo -> %0.4fs csf (%.2fx); "
        "mttkrp %.2fx, step-gradients %.2fx, gather %.2fx, "
        "build %0.4fs coo / %0.4fs coo+csf\n",
        density, coo_s, csf_s, csf_s > 0 ? coo_s / csf_s : 0.0,
        speedups["mttkrp_density_" + arg + "pct"],
        speedups["step_gradients_density_" + arg + "pct"],
        speedups["kruskal_gather_density_" + arg + "pct"], build_coo_s,
        build_csf_s);
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(
      f,
      "  \"description\": \"CSF storage subsystem vs CooList backend on a "
      "%zu-step stream of %zux%zux%zu slices, rank %zu, fixed Bernoulli "
      "mask, argument = percent of entries observed. pattern_step_* times "
      "the full steady-state per-step pattern pipeline over the stream: "
      "reuse check + value gather + MTTKRP over all modes — the coo "
      "variant pays the pre-PR dense-Mask byte compare (O(volume) per "
      "step) and COO record kernels, the csf variant the SparseMask "
      "compare (O(observed)) and fiber-tree kernels; each variant pays "
      "its own first-step build (CooList, resp. CooList + CSF trees). "
      "build_*, mttkrp_*, step_gradients_*, kruskal_gather_* are the "
      "isolated pieces on one bound pattern. Best (min) wall time over "
      "%zu repetitions, single thread (bench_csf --out=BENCH_csf.json).\",\n",
      steps, d0, d1, d2, rank, reps);
  bench::WriteMachineBlock(f);
  std::fprintf(f, "  \"unit\": \"s\",\n");
  std::fprintf(f, "  \"results\": {\n");
  size_t i = 0;
  for (const auto& [key, value] : results) {
    std::fprintf(f, "    \"%s\": %.5f%s\n", key.c_str(), value,
                 ++i < results.size() ? "," : "");
  }
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"speedup_csf_over_coo\": {\n");
  i = 0;
  for (const auto& [key, value] : speedups) {
    std::fprintf(f, "    \"%s\": %.2f%s\n", key.c_str(), value,
                 ++i < speedups.size() ? "," : "");
  }
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
