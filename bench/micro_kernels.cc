// Microbenchmarks of the library's hot kernels, including empirical checks
// of the complexity claims:
//  - Lemma 1: one SOFIA_ALS sweep costs O(|Ω| N R (N + R)) — linear in the
//    number of observed entries for fixed N, R.
//  - Lemma 2: one dynamic update costs O(|Ω_t| N R) — linear in the number
//    of observed entries per slice and *independent of the stream length*.
// Run with --benchmark_filter=... to select kernels.

#include <benchmark/benchmark.h>

#include "core/sofia_als.hpp"
#include "core/sofia_model.hpp"
#include "data/corruption.hpp"
#include "data/synthetic.hpp"
#include "tensor/coo_list.hpp"
#include "tensor/khatri_rao.hpp"
#include "tensor/kruskal.hpp"
#include "tensor/sparse_kernels.hpp"
#include "tensor/unfold.hpp"
#include "timeseries/hw_fit.hpp"
#include "util/rng.hpp"

namespace sofia {
namespace {

Mask BernoulliMask(const Shape& shape, double density, Rng& rng) {
  Mask omega(shape, false);
  for (size_t k = 0; k < shape.NumElements(); ++k) {
    omega.Set(k, rng.Bernoulli(density));
  }
  return omega;
}

void BM_KhatriRao(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(1);
  Matrix a = Matrix::RandomNormal(n, 8, rng);
  Matrix b = Matrix::RandomNormal(n, 8, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(KhatriRao(a, b));
  }
  state.SetComplexityN(static_cast<int64_t>(n * n));
}
BENCHMARK(BM_KhatriRao)->Range(16, 256)->Complexity(benchmark::oN);

void BM_Unfold(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(2);
  DenseTensor t = DenseTensor::RandomNormal(Shape({n, n, 8}), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Unfold(t, 1));
  }
  state.SetComplexityN(static_cast<int64_t>(t.NumElements()));
}
BENCHMARK(BM_Unfold)->Range(16, 128)->Complexity(benchmark::oN);

void BM_KruskalSlice(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(3);
  std::vector<Matrix> factors = {Matrix::RandomNormal(n, 8, rng),
                                 Matrix::RandomNormal(n, 8, rng)};
  std::vector<double> w = rng.NormalVector(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(KruskalSlice(factors, w));
  }
  state.SetComplexityN(static_cast<int64_t>(n * n));
}
BENCHMARK(BM_KruskalSlice)->Range(16, 256)->Complexity(benchmark::oN);

/// Lemma 1: ALS sweep cost scales linearly with |Ω| (fixed N, R).
void BM_SofiaAlsSweep(benchmark::State& state) {
  const size_t duration = static_cast<size_t>(state.range(0));
  SyntheticTensor syn = MakeSinusoidTensor(24, 24, duration, 4, 12, 4);
  Mask omega(syn.tensor.shape(), true);
  DenseTensor o(syn.tensor.shape(), 0.0);
  SofiaConfig config;
  config.rank = 4;
  config.period = 12;
  config.max_als_iterations = 1;  // Exactly one sweep per iteration.
  config.tolerance = 0.0;
  Rng rng(5);
  std::vector<Matrix> factors;
  for (size_t n = 0; n < 3; ++n) {
    factors.push_back(Matrix::Random(syn.tensor.dim(n), 4, rng, 0.0, 1.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(SofiaAls(syn.tensor, omega, o, config, &factors));
  }
  state.SetComplexityN(static_cast<int64_t>(syn.tensor.NumElements()));
}
BENCHMARK(BM_SofiaAlsSweep)->RangeMultiplier(2)->Range(12, 96)
    ->Complexity(benchmark::oN);

/// Lemma 2: dynamic-update cost scales linearly with |Ω_t|.
void BM_SofiaDynamicStep(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const size_t period = 8;
  std::vector<DenseTensor> truth =
      MakeScalabilityStream(rows, 64, 3 * period + 64, 4, period, 6);
  CorruptedStream stream = Corrupt(truth, {0.0, 0.0, 0.0}, 7);
  SofiaConfig config;
  config.rank = 4;
  config.period = period;
  config.max_init_iterations = 2;
  const size_t w = config.InitWindow();
  std::vector<DenseTensor> init_slices(truth.begin(), truth.begin() + w);
  std::vector<Mask> init_masks(stream.masks.begin(),
                               stream.masks.begin() + w);
  SofiaModel model =
      SofiaModel::Initialize(init_slices, init_masks, config);
  size_t t = w;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Step(stream.slices[t], stream.masks[t]));
    t = w + (t + 1 - w) % (truth.size() - w);
  }
  state.SetComplexityN(static_cast<int64_t>(rows * 64));
}
BENCHMARK(BM_SofiaDynamicStep)->RangeMultiplier(2)->Range(16, 128)
    ->Complexity(benchmark::oN);

/// Dense-scan row-system accumulation (all modes of one sweep) at a given
/// observed density (argument = percent observed). Cost is tied to the
/// tensor *volume*: it barely moves as the density drops.
void BM_DenseAccumulate(benchmark::State& state) {
  const double density = static_cast<double>(state.range(0)) / 100.0;
  Rng rng(21);
  Shape shape({48, 48, 64});
  DenseTensor y = DenseTensor::RandomNormal(shape, rng);
  DenseTensor o(shape, 0.0);
  Mask omega = BernoulliMask(shape, density, rng);
  std::vector<Matrix> factors;
  for (size_t n = 0; n < shape.order(); ++n) {
    factors.push_back(Matrix::RandomNormal(shape.dim(n), 8, rng));
  }
  for (auto _ : state) {
    for (size_t mode = 0; mode < shape.order(); ++mode) {
      benchmark::DoNotOptimize(DenseRowSystems(y, omega, o, factors, mode));
    }
  }
  state.SetComplexityN(static_cast<int64_t>(omega.CountObserved()));
}
BENCHMARK(BM_DenseAccumulate)->Arg(1)->Arg(10)->Arg(100);

/// COO row-system accumulation on the same problem. The CooList build sits
/// outside the timed loop because SOFIA builds it once per window and
/// reuses it across all modes and sweeps; the timed cost is O(|Ω|) per
/// Lemma 1 and shrinks with the density.
void BM_CooAccumulate(benchmark::State& state) {
  const double density = static_cast<double>(state.range(0)) / 100.0;
  Rng rng(21);
  Shape shape({48, 48, 64});
  DenseTensor y = DenseTensor::RandomNormal(shape, rng);
  DenseTensor o(shape, 0.0);
  Mask omega = BernoulliMask(shape, density, rng);
  std::vector<Matrix> factors;
  for (size_t n = 0; n < shape.order(); ++n) {
    factors.push_back(Matrix::RandomNormal(shape.dim(n), 8, rng));
  }
  const CooList coo = CooList::Build(omega);
  const std::vector<double> ystar = coo.GatherResidual(y, o);
  for (auto _ : state) {
    for (size_t mode = 0; mode < shape.order(); ++mode) {
      benchmark::DoNotOptimize(CooRowSystems(coo, ystar, factors, mode));
    }
  }
  state.SetComplexityN(static_cast<int64_t>(coo.nnz()));
}
BENCHMARK(BM_CooAccumulate)->Arg(1)->Arg(10)->Arg(100);

/// End-to-end SOFIA_ALS on a 10%-observed synthetic tensor: the dense-scan
/// path vs the COO sparse kernel layer (argument 0/1 = use_sparse_kernels).
/// The acceptance target for the kernel layer is >= 3x here; see
/// BENCH_kernels.json.
void BM_SofiaAls10pct(benchmark::State& state) {
  Rng rng(23);
  SyntheticTensor syn = MakeSinusoidTensor(32, 32, 48, 4, 12, 4);
  const Shape& shape = syn.tensor.shape();
  Mask omega = BernoulliMask(shape, 0.10, rng);
  DenseTensor o(shape, 0.0);
  SofiaConfig config;
  config.rank = 4;
  config.period = 12;
  config.max_als_iterations = 3;
  config.tolerance = 0.0;
  config.use_sparse_kernels = state.range(0) != 0;
  config.num_threads = 1;
  Rng frng(25);
  std::vector<Matrix> init;
  for (size_t n = 0; n < shape.order(); ++n) {
    init.push_back(Matrix::Random(shape.dim(n), 4, frng, 0.0, 1.0));
  }
  for (auto _ : state) {
    std::vector<Matrix> factors = init;
    benchmark::DoNotOptimize(SofiaAls(syn.tensor, omega, o, config, &factors));
  }
}
BENCHMARK(BM_SofiaAls10pct)->Arg(0)->Arg(1);

/// Dynamic update (SofiaModel::Step) at a given observed density (argument
/// = percent observed), dense-scan reference path vs the CooList kernel
/// path. A fixed mask across steps — the fixed-sensor-outage case — lets
/// the sparse path's pattern cache hold, so the timed cost is Lemma 2's
/// O(|Ω_t| N R) against the dense path's O(volume). The acceptance target
/// for this PR is >= 3x at <= 10% observed; see BENCH_stream.json.
void RunSofiaStepBench(benchmark::State& state, bool sparse) {
  const double density = static_cast<double>(state.range(0)) / 100.0;
  const size_t period = 8;
  std::vector<DenseTensor> truth =
      MakeScalabilityStream(48, 48, 3 * period + 16, 4, period, 31);
  SofiaConfig config;
  config.rank = 4;
  config.period = period;
  config.max_init_iterations = 2;
  config.num_threads = 1;
  config.use_sparse_kernels = sparse;
  const size_t w = config.InitWindow();
  std::vector<DenseTensor> init_slices(truth.begin(), truth.begin() + w);
  std::vector<Mask> init_masks(w, Mask(truth[0].shape(), true));
  SofiaModel model = SofiaModel::Initialize(init_slices, init_masks, config);
  Rng rng(33);
  Mask omega = BernoulliMask(truth[0].shape(), density, rng);
  size_t t = w;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Step(truth[t], omega));
    t = w + (t + 1 - w) % (truth.size() - w);
  }
  state.SetComplexityN(static_cast<int64_t>(omega.CountObserved()));
}

void BM_SofiaStepDense(benchmark::State& state) {
  RunSofiaStepBench(state, /*sparse=*/false);
}
BENCHMARK(BM_SofiaStepDense)->Arg(1)->Arg(10)->Arg(100);

void BM_SofiaStepSparse(benchmark::State& state) {
  RunSofiaStepBench(state, /*sparse=*/true);
}
BENCHMARK(BM_SofiaStepSparse)->Arg(1)->Arg(10)->Arg(100);

void BM_HoltWintersFit(benchmark::State& state) {
  const size_t seasons = static_cast<size_t>(state.range(0));
  std::vector<double> series =
      MakeSeasonalSeries(seasons * 12, 12, 1.0, 0.05, 0.01, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FitHoltWinters(series, 12));
  }
}
BENCHMARK(BM_HoltWintersFit)->Arg(3)->Arg(6)->Arg(12);

}  // namespace
}  // namespace sofia

BENCHMARK_MAIN();
