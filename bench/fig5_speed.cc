// Reproduces Fig. 5: average running time (ART) to process one subtensor,
// for SOFIA and the four streaming completion baselines across the setting
// grid. Initialization time is excluded, as in the paper.
//
// The paper's headline is that SOFIA is up to 935x faster than the
// *second-most accurate* competitor (usually OLSTEC, whose per-entry RLS
// costs O(|Ω| N R^2) against SOFIA's O(|Ω| N R)).
//
// Usage: fig5_speed [--scale=small|paper] [--seasons=5] [--seed=13]

#include <cstdio>
#include <string>
#include <vector>

#include "baselines/mast.hpp"
#include "baselines/olstec.hpp"
#include "baselines/online_sgd.hpp"
#include "baselines/or_mstc.hpp"
#include "core/sofia_stream.hpp"
#include "data/corruption.hpp"
#include "data/dataset_sim.hpp"
#include "eval/experiment.hpp"
#include "eval/stream_runner.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace sofia {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const DatasetScale scale = flags.GetString("scale", "small") == "paper"
                                 ? DatasetScale::kPaper
                                 : DatasetScale::kSmall;
  const size_t seasons = static_cast<size_t>(flags.GetInt("seasons", 5));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 13));

  std::printf("Fig. 5 — average running time per subtensor (seconds), "
              "initialization excluded\n\n");

  for (Dataset& dataset : MakeAllDatasets(scale)) {
    if (scale == DatasetScale::kSmall) {
      dataset.slices.resize(
          std::min(dataset.slices.size(), seasons * dataset.period));
    }
    Table table({"setting", "SOFIA", "OnlineSGD", "OLSTEC", "MAST",
                 "OR-MSTC", "OLSTEC/SOFIA"});
    for (const CorruptionSetting& setting : PaperSettingGrid()) {
      CorruptedStream stream = Corrupt(dataset.slices, setting, seed);

      SofiaStream sofia_method(MakeExperimentConfig(dataset, stream));
      OnlineSgd sgd(OnlineSgdOptions{.rank = dataset.rank});
      Olstec olstec(OlstecOptions{.rank = dataset.rank});
      Mast mast(MastOptions{.rank = dataset.rank});
      OrMstc ormstc(OrMstcOptions{.rank = dataset.rank});

      const double sofia_art =
          RunImputation(&sofia_method, stream, dataset.slices).art_seconds;
      const double sgd_art =
          RunImputation(&sgd, stream, dataset.slices).art_seconds;
      const double olstec_art =
          RunImputation(&olstec, stream, dataset.slices).art_seconds;
      const double mast_art =
          RunImputation(&mast, stream, dataset.slices).art_seconds;
      const double ormstc_art =
          RunImputation(&ormstc, stream, dataset.slices).art_seconds;

      table.AddRow({setting.ToString(), Table::Num(sofia_art),
                    Table::Num(sgd_art), Table::Num(olstec_art),
                    Table::Num(mast_art), Table::Num(ormstc_art),
                    Table::Num(sofia_art > 0 ? olstec_art / sofia_art : 0.0,
                               3)});
    }
    std::printf("=== %s ===\n%s\n", dataset.name.c_str(),
                table.ToString().c_str());
  }
  std::printf("Paper's shape: SOFIA fastest or tied; the second-most\n"
              "accurate method (OLSTEC / OR-MSTC, which solve per-row\n"
              "systems per step) is orders of magnitude slower.\n");
  return 0;
}

}  // namespace
}  // namespace sofia

int main(int argc, char** argv) { return sofia::Main(argc, argv); }
