// Reproduces Fig. 3 (per-step imputation NRE over the stream) and Fig. 4
// (running average error bars): SOFIA vs OLSTEC, OnlineSGD, MAST, and
// OR-MSTC on all four (simulated) datasets under the paper's setting grid
// (20,10,2) .. (70,20,5). BRST's estimated rank is reported alongside (the
// paper excludes its curves because it degenerates to rank 0).
//
// Usage: fig3_imputation [--scale=small|paper] [--seasons=6] [--seed=11]
//                        [--csv_dir=.]

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "baselines/brst.hpp"
#include "baselines/mast.hpp"
#include "baselines/olstec.hpp"
#include "baselines/online_sgd.hpp"
#include "baselines/or_mstc.hpp"
#include "core/sofia_stream.hpp"
#include "data/corruption.hpp"
#include "data/dataset_sim.hpp"
#include "eval/experiment.hpp"
#include "eval/stream_runner.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace sofia {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const DatasetScale scale = flags.GetString("scale", "small") == "paper"
                                 ? DatasetScale::kPaper
                                 : DatasetScale::kSmall;
  const size_t seasons = static_cast<size_t>(flags.GetInt("seasons", 6));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 11));
  const std::string csv_dir = flags.GetString("csv_dir", "");

  std::printf("Fig. 3 / Fig. 4 — imputation accuracy (NRE / RAE)\n");
  std::printf("Settings: (missing%%, outlier%%, magnitude) per the paper.\n\n");

  for (Dataset& dataset : MakeAllDatasets(scale)) {
    if (scale == DatasetScale::kSmall) {
      // At least ~100 steps even for short periods (NYC's m = 7), so the
      // post-init phase is long enough to be meaningful.
      dataset.slices.resize(std::min(
          dataset.slices.size(),
          std::max<size_t>(seasons * dataset.period, 100)));
    }
    Table rae_table({"setting", "SOFIA", "OnlineSGD", "OLSTEC", "MAST",
                     "OR-MSTC", "BRST est. rank"});
    Table nre_table({"setting", "t", "SOFIA", "OnlineSGD", "OLSTEC", "MAST",
                     "OR-MSTC"});
    for (const CorruptionSetting& setting : PaperSettingGrid()) {
      CorruptedStream stream = Corrupt(dataset.slices, setting, seed);
      const double outlier_lambda =
          3.0 * ObservedAbsQuantile(stream, 0.75);

      SofiaStream sofia_method(MakeExperimentConfig(dataset, stream));
      OnlineSgd sgd(OnlineSgdOptions{.rank = dataset.rank});
      Olstec olstec(OlstecOptions{.rank = dataset.rank});
      Mast mast(MastOptions{.rank = dataset.rank});
      OrMstc ormstc(OrMstcOptions{.rank = dataset.rank,
                                  .outlier_lambda = outlier_lambda});
      BrstLite brst(BrstOptions{.rank = dataset.rank, .ard_strength = 10.0});

      StreamRunResult sofia_res =
          RunImputation(&sofia_method, stream, dataset.slices);
      StreamRunResult sgd_res = RunImputation(&sgd, stream, dataset.slices);
      StreamRunResult olstec_res =
          RunImputation(&olstec, stream, dataset.slices);
      StreamRunResult mast_res = RunImputation(&mast, stream, dataset.slices);
      StreamRunResult ormstc_res =
          RunImputation(&ormstc, stream, dataset.slices);
      StreamRunResult brst_res = RunImputation(&brst, stream, dataset.slices);
      (void)brst_res;

      rae_table.AddRow({setting.ToString(), Table::Num(sofia_res.rae),
                        Table::Num(sgd_res.rae), Table::Num(olstec_res.rae),
                        Table::Num(mast_res.rae), Table::Num(ormstc_res.rae),
                        std::to_string(brst.EffectiveRank())});
      for (size_t t = 0; t < sofia_res.nre.size(); ++t) {
        nre_table.AddRow({setting.ToString(), std::to_string(t),
                          Table::Num(sofia_res.nre[t]),
                          Table::Num(sgd_res.nre[t]),
                          Table::Num(olstec_res.nre[t]),
                          Table::Num(mast_res.nre[t]),
                          Table::Num(ormstc_res.nre[t])});
      }
    }
    std::printf("=== %s (R=%zu, m=%zu, %zu steps) — RAE (Fig. 4) ===\n",
                dataset.name.c_str(), dataset.rank, dataset.period,
                dataset.slices.size());
    std::printf("%s\n", rae_table.ToString().c_str());
    if (!csv_dir.empty()) {
      nre_table.WriteCsv(csv_dir + "/fig3_" + dataset.name + ".csv");
      rae_table.WriteCsv(csv_dir + "/fig4_" + dataset.name + ".csv");
    }
  }
  std::printf("Paper's shape: SOFIA attains the lowest RAE in every cell; "
              "the gap widens with corruption; BRST's rank estimate "
              "collapses (excluded from the paper's curves).\n");
  return 0;
}

}  // namespace
}  // namespace sofia

int main(int argc, char** argv) { return sofia::Main(argc, argv); }
