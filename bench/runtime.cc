// Sharded streaming-runtime bench: what the persistent ShardExecutor and
// the ingest/compute pipeline buy on the comparison protocol.
//
// One SOFIA instance (sparse kernels, csf pattern storage) is driven over a
// 96-step stream through RunStreamPipeline under a matrix of runtime knobs:
//
//  - workers 1/2/4/8 (depth 1, window 1): steps/sec and p99 step latency of
//    the sharded compute lane alone;
//  - overlap off vs on (depth 1 vs 2) at a fixed worker count: how much of
//    the slice ingest (pattern + CSF-delta build, eval-pattern sampling,
//    truth gathers) hides under compute — the hidden fraction is
//    1 - ingest_stall_s / ingest_s, taken straight from the pipeline
//    telemetry;
//  - per-slice vs windowed ingest (window 1 vs 4) at depth 2;
//  - executor dispatch vs an ephemeral pool: the per-batch cost of the
//    persistent sharded runtime against constructing and joining a fresh
//    ThreadPool per batch (the pattern the cached ParallelFor fallback and
//    the ShardExecutor both replace). This win is real at any core count —
//    it is thread create/join overhead, not parallel speedup.
//
// Scores are bitwise identical across the whole matrix (pinned by
// tests/stream_pipeline_test.cc); this bench reports the measured
// wall-clock shape of THIS machine — on a single-core container the
// worker-count rows show contention, not speedup, and the machine block
// records the core count so downstream readers can tell which they got.
//
//   bench_runtime [--out=BENCH_runtime.json] [--rows=224] [--cols=224]
//                 [--steps=96] [--reps=3] [--density=5]
//
// Gated behind SOFIA_BUILD_BENCH like every other bench binary.

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/sofia_stream.hpp"
#include "data/corruption.hpp"
#include "data/synthetic.hpp"
#include "eval/stream_pipeline.hpp"
#include "eval/stream_runner.hpp"
#include "util/bench_json.hpp"
#include "util/flags.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/shard_executor.hpp"
#include "util/stopwatch.hpp"

namespace sofia {
namespace {

constexpr size_t kRank = 4;
constexpr size_t kPeriod = 4;

Mask BernoulliMask(const Shape& shape, double density, Rng& rng) {
  Mask omega(shape, false);
  for (size_t k = 0; k < shape.NumElements(); ++k) {
    omega.Set(k, rng.Bernoulli(density));
  }
  return omega;
}

std::unique_ptr<SofiaStream> MakeSofia() {
  SofiaConfig config;
  config.rank = kRank;
  config.period = kPeriod;
  config.lambda1 = 0.5;
  config.lambda2 = 0.5;
  config.num_threads = 1;
  config.max_init_iterations = 1;
  config.max_als_iterations = 2;
  config.tolerance = 0.5;  // Measures runtime shape, not fit quality.
  config.pattern_storage = PatternStorage::kCsf;
  return std::make_unique<SofiaStream>(config);
}

struct RunStats {
  double steps_per_s = 0.0;   ///< Post-init steps over summed step time.
  double p99_ms = 0.0;        ///< 99th-percentile step latency.
  double wall_s = 0.0;        ///< Whole protocol, init included.
  double hidden_fraction = 0.0;  ///< Of ingest time, under compute.
};

/// Best-of-`reps` pipelined run under `options` (fresh SOFIA per rep —
/// methods are stateful). "Best" = max steps/sec.
RunStats TimeRun(const CorruptedStream& stream,
                 const std::vector<DenseTensor>& truth,
                 const StreamEvalOptions& options, size_t reps) {
  RunStats best;
  for (size_t rep = 0; rep < reps; ++rep) {
    std::unique_ptr<SofiaStream> sofia = MakeSofia();
    std::vector<StreamingMethod*> methods = {sofia.get()};
    Stopwatch wall;
    std::vector<MethodRunResult> results =
        RunStreamPipeline(methods, stream, truth, options);
    RunStats stats;
    stats.wall_s = wall.ElapsedSeconds();
    std::vector<double> latencies = results[0].run.step_seconds;
    double step_sum = 0.0;
    for (double s : latencies) step_sum += s;
    stats.steps_per_s =
        step_sum > 0.0 ? static_cast<double>(latencies.size()) / step_sum
                       : 0.0;
    if (!latencies.empty()) {
      std::sort(latencies.begin(), latencies.end());
      const size_t idx =
          std::min(latencies.size() - 1, (latencies.size() * 99) / 100);
      stats.p99_ms = 1e3 * latencies[idx];
    }
    const PipelineTelemetry& telemetry = results[0].run.pipeline;
    // Stall includes scheduler wakeup latency, so it can exceed raw ingest
    // time on a saturated machine — clamp the fraction to [0, 1].
    stats.hidden_fraction =
        telemetry.ingest_seconds > 0.0
            ? std::max(0.0, std::min(1.0, 1.0 - telemetry.ingest_stall_seconds /
                                              telemetry.ingest_seconds))
            : 0.0;
    if (rep == 0 || stats.steps_per_s > best.steps_per_s) best = stats;
  }
  return best;
}

/// Per-batch dispatch cost: a persistent ShardExecutor running `batches`
/// trivial 16-task batches vs constructing + joining a fresh ThreadPool per
/// batch. Returns microseconds per batch for each.
std::pair<double, double> TimeDispatch(size_t threads, size_t batches) {
  volatile double sink = 0.0;
  auto task = [&](size_t t) { sink = sink + static_cast<double>(t); };
  Stopwatch persistent_timer;
  {
    ShardExecutor executor(threads);
    for (size_t b = 0; b < batches; ++b) executor.Run(16, task);
  }
  const double persistent_us =
      1e6 * persistent_timer.ElapsedSeconds() / static_cast<double>(batches);
  Stopwatch ephemeral_timer;
  for (size_t b = 0; b < batches; ++b) {
    ThreadPool pool(threads);
    pool.Run(16, task);
  }
  const double ephemeral_us =
      1e6 * ephemeral_timer.ElapsedSeconds() / static_cast<double>(batches);
  return {persistent_us, ephemeral_us};
}

}  // namespace
}  // namespace sofia

int main(int argc, char** argv) {
  using namespace sofia;
  Flags flags(argc, argv);
  const std::string out_path = flags.GetString("out", "BENCH_runtime.json");
  const size_t rows = static_cast<size_t>(flags.GetInt("rows", 224));
  const size_t cols = static_cast<size_t>(flags.GetInt("cols", 224));
  const size_t steps = static_cast<size_t>(flags.GetInt("steps", 96));
  const size_t reps = static_cast<size_t>(flags.GetInt("reps", 3));
  const double density = flags.GetDouble("density", 5.0) / 100.0;

  std::vector<DenseTensor> truth;
  {
    SyntheticTensor syn =
        MakeSinusoidTensor(rows, cols, steps, kRank, kPeriod, /*seed=*/101);
    for (size_t t = 0; t < steps; ++t) {
      truth.push_back(syn.tensor.SliceLastMode(t));
    }
  }
  // Mild mask churn (fresh Bernoulli mask every 8 steps) so ingest has real
  // pattern + CSF-delta builds to hide, as a live stream would.
  CorruptedStream stream;
  stream.slices = truth;
  Rng mask_rng(7);
  Mask omega = BernoulliMask(truth[0].shape(), density, mask_rng);
  for (size_t t = 0; t < steps; ++t) {
    if (t > 0 && t % 8 == 0) {
      omega = BernoulliMask(truth[0].shape(), density, mask_rng);
    }
    stream.masks.push_back(omega);
  }

  std::map<std::string, double> results;
  std::map<std::string, double> speedups;

  StreamEvalOptions base;
  base.max_eval_entries = 512;
  base.pattern_storage = PatternStorage::kCsf;
  base.pipeline_depth = 1;
  base.window = 1;

  // Worker scaling, pipeline off.
  RunStats w1;
  for (size_t workers : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    StreamEvalOptions options = base;
    options.workers = workers;
    RunStats stats = TimeRun(stream, truth, options, reps);
    if (workers == 1) w1 = stats;
    const std::string arg = std::to_string(workers);
    results["workers/" + arg + "_steps_per_s"] = stats.steps_per_s;
    results["workers/" + arg + "_p99_ms"] = stats.p99_ms;
    speedups["workers_" + arg + "_vs_1"] =
        w1.steps_per_s > 0.0 ? stats.steps_per_s / w1.steps_per_s : 0.0;
    std::printf("workers %zu: %8.1f steps/s, p99 %7.3f ms (%.2fx vs 1)\n",
                workers, stats.steps_per_s, stats.p99_ms,
                speedups["workers_" + arg + "_vs_1"]);
  }

  // Ingest/compute overlap, fixed 2 workers: depth 1 (off) vs 2 (on), and
  // windowed ingest at depth 2.
  StreamEvalOptions off = base;
  off.workers = 2;
  RunStats overlap_off = TimeRun(stream, truth, off, reps);
  StreamEvalOptions on = off;
  on.pipeline_depth = 2;
  RunStats overlap_on = TimeRun(stream, truth, on, reps);
  StreamEvalOptions windowed = on;
  windowed.window = 4;
  RunStats window4 = TimeRun(stream, truth, windowed, reps);
  results["overlap/off_steps_per_s"] = overlap_off.steps_per_s;
  results["overlap/on_steps_per_s"] = overlap_on.steps_per_s;
  results["overlap/on_hidden_fraction"] = overlap_on.hidden_fraction;
  results["overlap/on_window4_steps_per_s"] = window4.steps_per_s;
  results["overlap/on_window4_hidden_fraction"] = window4.hidden_fraction;
  speedups["overlap_on_vs_off"] = overlap_off.steps_per_s > 0.0
                                      ? overlap_on.steps_per_s /
                                            overlap_off.steps_per_s
                                      : 0.0;
  std::printf("overlap off %8.1f steps/s; on %8.1f steps/s, %.0f%% of "
              "ingest hidden; window 4: %8.1f steps/s, %.0f%% hidden\n",
              overlap_off.steps_per_s, overlap_on.steps_per_s,
              100.0 * overlap_on.hidden_fraction, window4.steps_per_s,
              100.0 * window4.hidden_fraction);

  // Persistent-vs-ephemeral dispatch (thread create/join overhead — real
  // at any core count).
  const auto [persistent_us, ephemeral_us] =
      TimeDispatch(/*threads=*/4, /*batches=*/2000);
  results["dispatch/persistent_us_per_batch"] = persistent_us;
  results["dispatch/ephemeral_pool_us_per_batch"] = ephemeral_us;
  speedups["persistent_dispatch_vs_ephemeral"] =
      persistent_us > 0.0 ? ephemeral_us / persistent_us : 0.0;
  std::printf("dispatch (4 threads, 16 tasks): persistent %.1f us/batch, "
              "ephemeral pool %.1f us/batch (%.1fx)\n",
              persistent_us, ephemeral_us,
              speedups["persistent_dispatch_vs_ephemeral"]);

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f,
               "  \"description\": \"Sharded streaming runtime "
               "(eval/stream_pipeline.hpp): SOFIA (sparse kernels, csf "
               "storage) over a %zu-step stream of %zux%zu slices, rank "
               "%zu, %.0f%%%% observed, fresh Bernoulli mask every 8 steps. "
               "workers/N = steps/sec and p99 step latency with N "
               "persistent slab-owning workers (depth 1); overlap/* = "
               "ingest/compute pipelining at 2 workers, depth 2 vs 1, "
               "hidden_fraction = share of ingest time overlapped under "
               "compute (1 - stall/ingest, from PipelineTelemetry), plus "
               "the window=4 batched-ingest variant; dispatch/* = "
               "microseconds per 16-task batch on the persistent executor "
               "vs constructing a fresh ThreadPool per batch. Scores are "
               "bitwise identical across the whole matrix "
               "(tests/stream_pipeline_test.cc); numbers are best of %zu "
               "repetitions on THIS machine — see the machine block: on a "
               "single core, worker rows measure contention, and the "
               "dispatch and overlap rows are the real wins. "
               "(bench_runtime --out=BENCH_runtime.json)\",\n",
               steps, rows, cols, kRank, 100.0 * density, reps);
  bench::WriteMachineBlock(f);
  std::fprintf(f, "  \"unit\": \"steps_per_s | ms | us | fraction\",\n");
  std::fprintf(f, "  \"results\": {\n");
  size_t i = 0;
  for (const auto& [key, value] : results) {
    std::fprintf(f, "    \"%s\": %.4f%s\n", key.c_str(), value,
                 ++i < results.size() ? "," : "");
  }
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"speedup\": {\n");
  i = 0;
  for (const auto& [key, value] : speedups) {
    std::fprintf(f, "    \"%s\": %.2f%s\n", key.c_str(), value,
                 ++i < speedups.size() ? "," : "");
  }
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
