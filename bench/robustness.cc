// Robustness benchmark: all nine streaming methods (SOFIA + 8 baselines)
// driven through every adversarial scenario of the catalog
// (data/scenarios.hpp), unguarded vs wrapped in a rollback StreamGuard.
// For each scenario it reports:
//  - how many of the nine methods finish with every score finite (the
//    guarded column must be 9/9 everywhere — pinned by
//    tests/robustness_test.cc);
//  - comparison wall-clock unguarded vs guarded, whose ratio on the clean
//    scenario is the guard's overhead headline (one O(|omega|) validation
//    pass + strided probe + checkpoint serialization per slice);
//  - the guard's aggregate trip/recovery telemetry.
//
// Emits its summary JSON directly (same schema as BENCH_pipeline.json):
//
//   bench_robustness [--out=BENCH_robustness.json] [--rows=64] [--cols=48]
//                    [--steps=64] [--reps=3]
//
// The driving CMake target is gated behind SOFIA_BUILD_BENCH like every
// other bench binary.

#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baselines/brst.hpp"
#include "baselines/cp_wopt_stream.hpp"
#include "baselines/cphw.hpp"
#include "baselines/mast.hpp"
#include "baselines/olstec.hpp"
#include "baselines/online_sgd.hpp"
#include "baselines/or_mstc.hpp"
#include "baselines/smf.hpp"
#include "core/sofia_stream.hpp"
#include "data/scenarios.hpp"
#include "data/synthetic.hpp"
#include "eval/stream_guard.hpp"
#include "eval/stream_runner.hpp"
#include "util/bench_json.hpp"
#include "util/flags.hpp"
#include "util/stopwatch.hpp"

namespace sofia {
namespace {

constexpr size_t kRank = 4;
constexpr size_t kPeriod = 4;

/// Fresh instances of all nine comparison methods (bench-friendly configs,
/// mirroring bench/pipeline.cc).
std::vector<std::unique_ptr<StreamingMethod>> MakeAllMethods() {
  std::vector<std::unique_ptr<StreamingMethod>> methods;
  SofiaConfig config;
  config.rank = kRank;
  config.period = kPeriod;
  config.lambda1 = 0.5;
  config.lambda2 = 0.5;
  config.num_threads = 1;
  config.max_init_iterations = 1;
  config.max_als_iterations = 2;
  config.tolerance = 0.5;
  methods.push_back(std::make_unique<SofiaStream>(config));
  methods.push_back(
      std::make_unique<OnlineSgd>(OnlineSgdOptions{.rank = kRank}));
  methods.push_back(std::make_unique<Olstec>(OlstecOptions{.rank = kRank}));
  methods.push_back(std::make_unique<Mast>(
      MastOptions{.rank = kRank, .inner_iterations = 1}));
  methods.push_back(std::make_unique<OrMstc>(OrMstcOptions{
      .rank = kRank, .outlier_lambda = 2.0, .inner_iterations = 1}));
  methods.push_back(std::make_unique<BrstLite>(BrstOptions{.rank = kRank}));
  methods.push_back(
      std::make_unique<Smf>(SmfOptions{.rank = kRank, .period = kPeriod}));
  methods.push_back(
      std::make_unique<Cphw>(CphwOptions{.rank = kRank, .period = kPeriod}));
  methods.push_back(std::make_unique<CpWoptStream>(
      CpWoptStreamOptions{.rank = kRank, .iterations_per_step = 1}));
  return methods;
}

enum class Sweep { kUnguarded, kGuarded, kGuardedNoCheckpoint };

/// Wraps every method of a fresh nine-method set in a rollback guard.
/// `checkpoint_slots == 0` disables the checkpoint layer, isolating the
/// validation + probe cost (history-refit methods like CPHW have O(stream)
/// state, so per-step serialization dominates their guarded wall time).
std::vector<std::unique_ptr<StreamingMethod>> MakeGuardedMethods(
    size_t checkpoint_slots) {
  StreamGuardOptions guard;
  guard.policy = GuardPolicy::kRollback;
  guard.checkpoint_slots = checkpoint_slots;
  std::vector<std::unique_ptr<StreamingMethod>> guarded;
  for (auto& method : MakeAllMethods()) {
    guarded.push_back(
        std::make_unique<StreamGuard>(std::move(method), guard));
  }
  return guarded;
}

bool AllScoresFinite(const StreamRunResult& run) {
  if (!std::isfinite(run.rae) || !std::isfinite(run.rae_post_init)) {
    return false;
  }
  for (size_t t = 0; t < run.nre.size(); ++t) {
    if (!std::isfinite(run.nre[t]) || !std::isfinite(run.observed_nre[t])) {
      return false;
    }
  }
  return true;
}

struct SweepResult {
  double seconds = 0.0;        ///< Best (min) comparison wall time.
  size_t finite_methods = 0;   ///< Methods with every score finite.
  GuardTelemetry telemetry;    ///< Summed over methods (guarded runs only).
};

SweepResult RunSweep(const ScenarioStream& scenario, Sweep mode,
                     size_t reps) {
  SweepResult sweep;
  for (size_t rep = 0; rep < reps; ++rep) {
    std::vector<std::unique_ptr<StreamingMethod>> owned;
    if (mode == Sweep::kUnguarded) {
      owned = MakeAllMethods();
    } else {
      const size_t slots = mode == Sweep::kGuarded
                               ? StreamGuardOptions{}.checkpoint_slots
                               : 0;
      owned = MakeGuardedMethods(slots);
    }
    std::vector<StreamingMethod*> methods;
    for (auto& m : owned) methods.push_back(m.get());
    Stopwatch timer;
    std::vector<MethodRunResult> results = RunImputationComparison(
        methods, scenario.stream, scenario.truth);
    const double seconds = timer.ElapsedSeconds();
    if (rep == 0 || seconds < sweep.seconds) sweep.seconds = seconds;
    if (rep == 0) {
      for (const MethodRunResult& result : results) {
        if (AllScoresFinite(result.run)) ++sweep.finite_methods;
        sweep.telemetry.input_trips += result.run.guard.input_trips;
        sweep.telemetry.health_trips += result.run.guard.health_trips;
        sweep.telemetry.rollbacks += result.run.guard.rollbacks;
        sweep.telemetry.recoveries += result.run.guard.recoveries;
      }
    }
  }
  return sweep;
}

}  // namespace
}  // namespace sofia

int main(int argc, char** argv) {
  using namespace sofia;
  Flags flags(argc, argv);
  const std::string out_path =
      flags.GetString("out", "BENCH_robustness.json");
  const size_t rows = static_cast<size_t>(flags.GetInt("rows", 64));
  const size_t cols = static_cast<size_t>(flags.GetInt("cols", 48));
  const size_t steps = static_cast<size_t>(flags.GetInt("steps", 64));
  const size_t reps = static_cast<size_t>(flags.GetInt("reps", 3));

  std::vector<DenseTensor> truth;
  {
    SyntheticTensor syn =
        MakeSinusoidTensor(rows, cols, steps, kRank, kPeriod, /*seed=*/301);
    for (size_t t = 0; t < steps; ++t) {
      truth.push_back(syn.tensor.SliceLastMode(t));
    }
  }

  ScenarioOptions options;
  options.garbage_offset = 3 * kPeriod + 4;  // Past every init window.

  std::map<std::string, double> results;
  std::map<std::string, double> overhead;  // guarded_s / unguarded_s.

  for (ScenarioKind kind : ScenarioCatalog()) {
    const std::string name = ScenarioName(kind);
    ScenarioStream scenario = MakeScenario(kind, truth, options, 302);

    const SweepResult unguarded = RunSweep(scenario, Sweep::kUnguarded,
                                           reps);
    const SweepResult guarded = RunSweep(scenario, Sweep::kGuarded, reps);
    const SweepResult validation_only =
        RunSweep(scenario, Sweep::kGuardedNoCheckpoint, reps);

    results[name + "/unguarded_s"] = unguarded.seconds;
    results[name + "/guarded_s"] = guarded.seconds;
    results[name + "/guarded_nockpt_s"] = validation_only.seconds;
    results[name + "/unguarded_finite_methods"] =
        static_cast<double>(unguarded.finite_methods);
    results[name + "/guarded_finite_methods"] =
        static_cast<double>(guarded.finite_methods);
    results[name + "/guard_input_trips"] =
        static_cast<double>(guarded.telemetry.input_trips);
    results[name + "/guard_health_trips"] =
        static_cast<double>(guarded.telemetry.health_trips);
    results[name + "/guard_rollbacks"] =
        static_cast<double>(guarded.telemetry.rollbacks);
    results[name + "/guard_recoveries"] =
        static_cast<double>(guarded.telemetry.recoveries);
    overhead["guard_overhead_" + name] =
        unguarded.seconds > 0.0 ? guarded.seconds / unguarded.seconds : 0.0;
    overhead["guard_validation_overhead_" + name] =
        unguarded.seconds > 0.0
            ? validation_only.seconds / unguarded.seconds
            : 0.0;

    std::printf("%-20s unguarded %5.3f s (%zu/9 finite), guarded %5.3f s "
                "(%zu/9 finite, %5.3f s w/o ckpt), trips %zu+%zu, "
                "recoveries %zu\n",
                name.c_str(), unguarded.seconds, unguarded.finite_methods,
                guarded.seconds, guarded.finite_methods,
                validation_only.seconds, guarded.telemetry.input_trips,
                guarded.telemetry.health_trips,
                guarded.telemetry.recoveries);
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f,
               "  \"description\": \"Robustness sweep: all nine streaming "
               "methods (SOFIA + 8 baselines) through every adversarial "
               "scenario of data/scenarios.hpp (clean, Markov bursty "
               "whole-row outages, mid-stream regime change, mode-aligned "
               "structured outlier bursts, NaN/huge garbage slices, and "
               "their combination) on a %zu-step stream of %zux%zu slices, "
               "rank %zu — unguarded vs wrapped in a rollback StreamGuard. "
               "Per scenario: comparison wall time (best of %zu), how many "
               "of the nine methods keep every score finite, and the "
               "guard's summed trip/recovery telemetry. The "
               "guard_overhead_* map is guarded over unguarded wall time "
               "with the default checkpoint cadence (every "
               "checkpoint_every-th accepted step serialized into a reused "
               "ring-slot buffer — the dominant cost is the O(state) "
               "serialization, quadratic for history-refit methods like "
               "CPHW whose state is the stream so far); "
               "guard_validation_overhead_* disables checkpointing "
               "(checkpoint_slots=0) and isolates the per-slice O(|omega|) "
               "validation scan + strided probe, the only cost the guard "
               "adds that cannot be turned off "
               "(bench_robustness --out=BENCH_robustness.json).\",\n",
               steps, rows, cols, kRank, reps);
  bench::WriteMachineBlock(f);
  std::fprintf(f, "  \"unit\": \"s\",\n");
  std::fprintf(f, "  \"results\": {\n");
  size_t i = 0;
  for (const auto& [key, value] : results) {
    // JSON has no NaN/Inf literal; every emitted value is checked.
    const double safe = std::isfinite(value) ? value : -1.0;
    std::fprintf(f, "    \"%s\": %.4f%s\n", key.c_str(), safe,
                 ++i < results.size() ? "," : "");
  }
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"speedup_guard_overhead\": {\n");
  i = 0;
  for (const auto& [key, value] : overhead) {
    const double safe = std::isfinite(value) ? value : -1.0;
    std::fprintf(f, "    \"%s\": %.3f%s\n", key.c_str(), safe,
                 ++i < overhead.size() ? "," : "");
  }
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
