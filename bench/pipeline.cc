// End-to-end cost of the imputation comparison protocol on the lazy
// StepResult pipeline vs its dense predecessors: all nine streaming methods
// (SOFIA + eight baselines) are driven through the comparison runner on a
// fig-3-shaped synthetic stream (tall slices, low observed density) at 1% /
// 5% / 10% observed (fixed Bernoulli mask across steps — the
// fixed-sensor-outage case, so every mask-reuse cache holds after the first
// step). Three paths are timed:
//  - lazy: RunImputationComparison driving StepLazy, scoring via gathers;
//  - forced dense: the same protocol and the same scored entries, but every
//    estimate materialized first (scores bitwise identical to lazy — the
//    parity twin of tests/step_result_test.cc);
//  - legacy dense: the pre-lazy (PR 3) pipeline verbatim — materialized
//    Step estimates plus full-volume NormalizedResidualError per method per
//    step (the lazy protocol's score with --eval_cap=0 matches it to
//    <= 1e-12).
// The headline speedup (lazy over legacy) is the end-to-end cost of the
// O(volume R) dense floor this PR removes; the remaining gap to the
// forced-dense twin is pure materialization overhead.
//
// Emits its summary JSON directly (same schema as BENCH_baselines.json):
//
//   bench_pipeline [--out=BENCH_pipeline.json] [--rows=448] [--cols=448]
//                  [--steps=96] [--reps=3] [--eval_cap=512]
//
// The driving CMake target is gated behind SOFIA_BUILD_BENCH like every
// other bench binary.

#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baselines/brst.hpp"
#include "baselines/cp_wopt_stream.hpp"
#include "baselines/cphw.hpp"
#include "baselines/mast.hpp"
#include "baselines/olstec.hpp"
#include "baselines/online_sgd.hpp"
#include "baselines/or_mstc.hpp"
#include "baselines/smf.hpp"
#include "core/sofia_stream.hpp"
#include "baselines/observed_sweep.hpp"
#include "data/corruption.hpp"
#include "data/synthetic.hpp"
#include "eval/metrics.hpp"
#include "eval/step_result.hpp"
#include "eval/stream_runner.hpp"
#include "util/bench_json.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace sofia {
namespace {

constexpr size_t kRank = 4;
constexpr size_t kPeriod = 4;

Mask BernoulliMask(const Shape& shape, double density, Rng& rng) {
  Mask omega(shape, false);
  for (size_t k = 0; k < shape.NumElements(); ++k) {
    omega.Set(k, rng.Bernoulli(density));
  }
  return omega;
}

/// Fresh instances of all nine comparison methods (small, bench-friendly
/// configs; SOFIA's init loop is capped so the measured wall-clock is the
/// steady-state streaming pipeline, which both paths share anyway).
std::vector<std::unique_ptr<StreamingMethod>> MakeAllMethods() {
  std::vector<std::unique_ptr<StreamingMethod>> methods;
  SofiaConfig config;
  config.rank = kRank;
  config.period = kPeriod;
  config.lambda1 = 0.5;
  config.lambda2 = 0.5;
  config.num_threads = 1;
  config.max_init_iterations = 1;
  config.max_als_iterations = 2;
  config.tolerance = 0.5;  // The bench measures pipeline cost, not fit.
  methods.push_back(std::make_unique<SofiaStream>(config));
  methods.push_back(
      std::make_unique<OnlineSgd>(OnlineSgdOptions{.rank = kRank}));
  methods.push_back(std::make_unique<Olstec>(OlstecOptions{.rank = kRank}));
  methods.push_back(std::make_unique<Mast>(
      MastOptions{.rank = kRank, .inner_iterations = 1}));
  methods.push_back(std::make_unique<OrMstc>(OrMstcOptions{
      .rank = kRank, .outlier_lambda = 2.0, .inner_iterations = 1}));
  methods.push_back(std::make_unique<BrstLite>(BrstOptions{.rank = kRank}));
  methods.push_back(
      std::make_unique<Smf>(SmfOptions{.rank = kRank, .period = kPeriod}));
  methods.push_back(
      std::make_unique<Cphw>(CphwOptions{.rank = kRank, .period = kPeriod}));
  methods.push_back(std::make_unique<CpWoptStream>(
      CpWoptStreamOptions{.rank = kRank, .iterations_per_step = 1}));
  return methods;
}

/// The pre-lazy (PR 3) comparison protocol, verbatim: methods with an init
/// window are initialized on their window prefix and its completions are
/// scored with the full-volume NormalizedResidualError; every due method's
/// Step materializes its dense estimate and every step is scored with the
/// full-volume NRE — the two O(volume) terms per method per step that the
/// lazy pipeline removes. Workload-identical to RunImputationComparison
/// (same slices consumed per method, same shared pattern builds). The lazy
/// protocol's score with max_eval_entries = 0 matches this one to <= 1e-12
/// (tests/step_result_test.cc).
void LegacyDenseComparison(const std::vector<StreamingMethod*>& methods,
                           const CorruptedStream& stream,
                           const std::vector<DenseTensor>& truth) {
  std::vector<size_t> windows(methods.size(), 0);
  std::vector<double> sink;
  for (size_t m = 0; m < methods.size(); ++m) {
    windows[m] = methods[m]->init_window();
    if (windows[m] == 0) continue;
    std::vector<DenseTensor> init_slices(
        stream.slices.begin(), stream.slices.begin() + windows[m]);
    std::vector<Mask> init_masks(stream.masks.begin(),
                                 stream.masks.begin() + windows[m]);
    std::vector<DenseTensor> completed =
        methods[m]->Initialize(init_slices, init_masks);
    for (size_t t = 0; t < windows[m]; ++t) {
      sink.push_back(NormalizedResidualError(completed[t], truth[t]));
    }
  }
  std::shared_ptr<const CooList> pattern;
  Mask pattern_mask;
  bool pattern_valid = false;
  for (size_t t = 0; t < truth.size(); ++t) {
    const Mask& omega = stream.masks[t];
    if (!pattern_valid || pattern_mask != omega) {
      pattern = MakeSharedPattern(omega);
      pattern_mask = omega;
      pattern_valid = true;
    }
    for (size_t m = 0; m < methods.size(); ++m) {
      if (t < windows[m]) continue;
      DenseTensor imputed =
          methods[m]->Step(stream.slices[t], omega, pattern);
      sink.push_back(NormalizedResidualError(imputed, truth[t]));
    }
  }
}

/// Wall seconds of one full comparison run over the stream with fresh
/// method instances; best (minimum) of `reps` runs. `options == nullptr`
/// selects the legacy dense protocol.
double TimeProtocol(const CorruptedStream& stream,
                    const std::vector<DenseTensor>& truth,
                    const StreamEvalOptions* options, size_t reps) {
  double best = 0.0;
  for (size_t rep = 0; rep < reps; ++rep) {
    std::vector<std::unique_ptr<StreamingMethod>> owned = MakeAllMethods();
    std::vector<StreamingMethod*> methods;
    for (auto& m : owned) methods.push_back(m.get());
    Stopwatch timer;
    if (options == nullptr) {
      LegacyDenseComparison(methods, stream, truth);
    } else {
      RunImputationComparison(methods, stream, truth, *options);
    }
    const double seconds = timer.ElapsedSeconds();
    if (rep == 0 || seconds < best) best = seconds;
  }
  return best;
}

}  // namespace
}  // namespace sofia

int main(int argc, char** argv) {
  using namespace sofia;
  Flags flags(argc, argv);
  const std::string out_path = flags.GetString("out", "BENCH_pipeline.json");
  const size_t rows = static_cast<size_t>(flags.GetInt("rows", 448));
  const size_t cols = static_cast<size_t>(flags.GetInt("cols", 448));
  const size_t steps = static_cast<size_t>(flags.GetInt("steps", 96));
  const size_t reps = static_cast<size_t>(flags.GetInt("reps", 3));
  const size_t eval_cap = static_cast<size_t>(flags.GetInt("eval_cap", 512));

  std::vector<DenseTensor> truth;
  {
    SyntheticTensor syn =
        MakeSinusoidTensor(rows, cols, steps, kRank, kPeriod, /*seed=*/101);
    for (size_t t = 0; t < steps; ++t) {
      truth.push_back(syn.tensor.SliceLastMode(t));
    }
  }

  const std::vector<int> densities = {1, 5, 10};
  std::map<std::string, double> results;   // "pipeline_lazy/10_s" -> s.
  std::map<std::string, double> speedups;  // "density_10pct" -> x.

  for (int density : densities) {
    // One corrupted stream per density: Bernoulli-masked truth (no outlier
    // injection — the bench measures pipeline cost, not robustness), fixed
    // mask across steps so the mask-reuse caches hold after step one.
    Rng mask_rng(7);
    Mask omega = BernoulliMask(truth[0].shape(),
                               static_cast<double>(density) / 100.0,
                               mask_rng);
    CorruptedStream stream;
    stream.slices = truth;
    stream.masks.assign(steps, omega);

    StreamEvalOptions lazy_options;
    lazy_options.max_eval_entries = eval_cap;
    StreamEvalOptions forced_options = lazy_options;
    forced_options.force_dense = true;

    StepResult::ResetMaterializations();
    const double lazy_s = TimeProtocol(stream, truth, &lazy_options, reps);
    const size_t lazy_mat = StepResult::materializations();
    // Parity twin: identical protocol and scored entries, dense estimates.
    const double forced_s = TimeProtocol(stream, truth, &forced_options,
                                         reps);
    // Pre-lazy pipeline: dense estimates + full-volume NRE (PR 3 state).
    const double legacy_s = TimeProtocol(stream, truth, nullptr, reps);

    const std::string arg = std::to_string(density);
    results["pipeline_lazy/" + arg + "_s"] = lazy_s;
    results["pipeline_forced_dense/" + arg + "_s"] = forced_s;
    results["pipeline_legacy_dense/" + arg + "_s"] = legacy_s;
    speedups["vs_legacy_dense_density_" + arg + "pct"] =
        lazy_s > 0.0 ? legacy_s / lazy_s : 0.0;
    speedups["vs_forced_dense_density_" + arg + "pct"] =
        lazy_s > 0.0 ? forced_s / lazy_s : 0.0;
    std::printf("density %3d%%: legacy %8.3f s, forced %8.3f s, lazy %8.3f "
                "s, speedup %.2fx vs legacy, %.2fx vs forced (lazy "
                "materializations: %zu)\n",
                density, legacy_s, forced_s, lazy_s,
                lazy_s > 0.0 ? legacy_s / lazy_s : 0.0,
                lazy_s > 0.0 ? forced_s / lazy_s : 0.0, lazy_mat);
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f,
               "  \"description\": \"End-to-end comparison-protocol "
               "wall-clock, lazy StepResult pipeline vs dense paths: all "
               "nine streaming methods (SOFIA + 8 baselines) over a "
               "%zu-step stream of %zux%zu slices, rank %zu, fixed "
               "Bernoulli mask, argument = percent of entries observed. "
               "pipeline_lazy drives RunImputationComparison on StepLazy "
               "handles, scoring observed + <= %zu sampled held-out "
               "entries per step via CooList gathers with zero dense "
               "reconstructions (counter-verified per run). "
               "pipeline_forced_dense runs the identical protocol and "
               "scores the identical entries from materialized estimates "
               "(scores bitwise equal to lazy; tests/step_result_test.cc). "
               "pipeline_legacy_dense is the pre-lazy PR-3 pipeline "
               "verbatim: materialized Step estimates + full-volume NRE "
               "per method per step (matched by the lazy score at "
               "eval_cap=0 to <= 1e-12) — the O(volume R) floor this PR "
               "removes end-to-end. Best (min) protocol wall time over "
               "%zu repetitions, single thread (bench_pipeline "
               "--out=BENCH_pipeline.json).\",\n",
               steps, rows, cols, kRank, eval_cap, reps);
  bench::WriteMachineBlock(f);
  std::fprintf(f, "  \"unit\": \"s\",\n");
  std::fprintf(f, "  \"results\": {\n");
  size_t i = 0;
  for (const auto& [key, value] : results) {
    std::fprintf(f, "    \"%s\": %.4f%s\n", key.c_str(), value,
                 ++i < results.size() ? "," : "");
  }
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"speedup_lazy_over_dense\": {\n");
  i = 0;
  for (const auto& [key, value] : speedups) {
    std::fprintf(f, "    \"%s\": %.2f%s\n", key.c_str(), value,
                 ++i < speedups.size() ? "," : "");
  }
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
